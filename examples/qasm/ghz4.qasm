// 4-qubit GHZ state preparation: the entanglement ladder every NISQ
// device demo starts from.  Lints clean (vqc-check lint).
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
creg c[4];
h q[0];
cx q[0], q[1];
cx q[1], q[2];
cx q[2], q[3];
barrier q;
measure q[0] -> c[0];
measure q[1] -> c[1];
measure q[2] -> c[2];
measure q[3] -> c[3];

// Tiny quantum-phase-estimation sketch: Hadamard fan-in, controlled
// phases approximated with T gates, and an inverse-QFT-flavoured tail.
// Lints clean (vqc-check lint).
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q[0];
h q[1];
x q[2];
cx q[1], q[2];
tdg q[2];
cx q[0], q[2];
t q[2];
swap q[0], q[1];
h q[0];
s q[1];
cx q[0], q[1];
h q[1];
measure q[0] -> c[0];
measure q[1] -> c[1];
measure q[2] -> c[2];

(* Equivalence suite for the optimized mapper paths.

   The layer memo (Router), the lower-bound candidate pruning (Sabre)
   and the shared cost-model cache (Cost.cached, via Compiler's [memo]
   flag) are performance features with a hard contract: the emitted
   physical gate stream, layouts and routing statistics must be
   byte-identical to the unoptimized paths.  This suite holds them to
   it on random programs and then proves the whole catalog x policy
   matrix clean under the static plan verifier. *)

module Circuit = Vqc_circuit.Circuit
module Gate = Vqc_circuit.Gate
module Calibration_model = Vqc_device.Calibration_model
module Topologies = Vqc_device.Topologies
module Layout = Vqc_mapper.Layout
module Cost = Vqc_mapper.Cost
module Router = Vqc_mapper.Router
module Sabre = Vqc_mapper.Sabre
module Allocation = Vqc_mapper.Allocation
module Compiler = Vqc_mapper.Compiler
module Catalog = Vqc_workloads.Catalog
module Context = Vqc_experiments.Context
module Policies = Vqc_service.Policies

let check = Alcotest.(check bool)

let cx c t = Gate.Cnot { control = c; target = t }
let h q = Gate.One_qubit (Gate.H, q)
let meas q = Gate.Measure { qubit = q; cbit = q }

let gen_program =
  QCheck2.Gen.(
    let* n = int_range 2 8 in
    let gate =
      let* kind = int_bound 3 in
      let* q = int_bound (n - 1) in
      match kind with
      | 0 | 1 ->
        let* other = int_bound (n - 2) in
        let t = if other >= q then other + 1 else other in
        return (cx q t)
      | 2 -> return (h q)
      | _ -> return (meas q)
    in
    let* gates = list_size (int_bound 25) gate in
    return (Circuit.of_gates n gates))

let compiled_equal (a : Compiler.compiled) (b : Compiler.compiled) =
  Circuit.equal a.Compiler.physical b.Compiler.physical
  && Layout.equal a.Compiler.initial b.Compiler.initial
  && Layout.equal a.Compiler.final b.Compiler.final

let routed_equal (a : Router.result) (b : Router.result) =
  Circuit.equal a.Router.circuit b.Router.circuit
  && Layout.equal a.Router.initial b.Router.initial
  && Layout.equal a.Router.final b.Router.final
  && a.Router.stats = b.Router.stats

(* The memo is process-wide state; deliberately NOT cleared between
   iterations, so later programs exercise lookups against entries from
   earlier ones — a key collision would surface as an inequality. *)
let prop_memo_equivalent =
  QCheck2.Test.make
    ~name:"memoized compilation emits the reference gate stream" ~count:40
    gen_program (fun program ->
      let device = Calibration_model.ibm_q20 ~seed:4 in
      List.for_all
        (fun policy ->
          compiled_equal
            (Compiler.compile ~memo:false device policy program)
            (Compiler.compile ~memo:true device policy program))
        [
          Compiler.baseline;
          Compiler.vqa_vqm;
          Compiler.sabre;
          Compiler.noise_sabre;
        ])

let prop_sabre_prune_equivalent =
  QCheck2.Test.make
    ~name:"pruned SABRE emits the unpruned gate stream" ~count:60 gen_program
    (fun program ->
      let device = Calibration_model.ibm_q20 ~seed:4 in
      let layout = Allocation.allocate device program Allocation.Locality in
      List.for_all
        (fun model ->
          let cost = Cost.make device model in
          routed_equal
            (Sabre.route ~prune:false cost layout program)
            (Sabre.route ~prune:true cost layout program))
        [ Cost.Hops; Cost.Reliability ])

let prop_router_memo_equivalent =
  (* Router.route directly, both cost models, with program SWAPs
     forbidden by construction (gen emits none) — the memo must replay
     searches across programs without contaminating results *)
  QCheck2.Test.make ~name:"memoized routing replays A* exactly" ~count:40
    gen_program (fun program ->
      let device = Calibration_model.ibm_q20 ~seed:4 in
      let layout = Allocation.allocate device program Allocation.Locality in
      List.for_all
        (fun model ->
          let cost = Cost.make device model in
          routed_equal
            (Router.route ~memo:false cost layout program)
            (Router.route ~memo:true cost layout program))
        [ Cost.Hops; Cost.Reliability ])

let test_memo_equivalent_on_workloads () =
  (* full-size workloads where the memo actually fires across layers *)
  let device = Context.default.Context.q20 in
  Router.memo_clear ();
  List.iter
    (fun name ->
      let program = (Catalog.find name).Catalog.circuit in
      List.iter
        (fun { Policies.label; policy; _ } ->
          let reference = Compiler.compile ~memo:false device policy program in
          let cold = Compiler.compile ~memo:true device policy program in
          let warm = Compiler.compile ~memo:true device policy program in
          check
            (Printf.sprintf "%s/%s cold" name label)
            true
            (compiled_equal reference cold);
          check
            (Printf.sprintf "%s/%s warm" name label)
            true
            (compiled_equal reference warm))
        Policies.all)
    [ "bv-16"; "qft-12" ]

(* Every compile below this line is replayed by the translation
   validator: a plan that is not legal and faithful raises
   Invalid_plan and fails the test. *)
let () = Vqc_check.Verify.install_compiler_check ()

let test_catalog_matrix_verifies_clean () =
  (* the whole catalog under every service policy, optimized pipeline:
     memoized routing, pruned SABRE, cached cost models — all 133 plans
     must pass the static verifier *)
  let device = Context.default.Context.q20 in
  let plans = ref 0 in
  List.iter
    (fun (entry : Catalog.entry) ->
      List.iter
        (fun { Policies.policy; _ } ->
          ignore (Compiler.compile ~memo:true device policy entry.Catalog.circuit);
          incr plans)
        Policies.all)
    Catalog.all;
  Alcotest.(check int)
    "all catalog x policy plans verified"
    (List.length Catalog.all * List.length Policies.all)
    !plans

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "vqc_mapper_equiv"
    [
      ( "memo",
        [
          Alcotest.test_case "workload equivalence" `Slow
            test_memo_equivalent_on_workloads;
        ]
        @ qcheck [ prop_memo_equivalent; prop_router_memo_equivalent ] );
      ("sabre", qcheck [ prop_sabre_prune_equivalent ]);
      ( "verify",
        [
          Alcotest.test_case "catalog matrix clean" `Slow
            test_catalog_matrix_verifies_clean;
        ] );
    ]

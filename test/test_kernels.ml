(* Differential oracle for the flat Monte-Carlo chunk kernel.

   Mc_kernel promises bit-identity with the straightforward loop over
   Rng.bernoulli: same successes, same visited-event count, and the
   chunk generator left in the same state.  The oracle below is written
   from that specification (not shared with the library), so the two
   sides can only agree by both being right.  The engine-level tests
   then hold Monte_carlo.run's Flat and Reference engines to identical
   results over compiled circuits, worker counts, and chunk-boundary
   trial counts. *)

module Circuit = Vqc_circuit.Circuit
module Gate = Vqc_circuit.Gate
module Mc_kernel = Vqc_sim.Mc_kernel
module Monte_carlo = Vqc_sim.Monte_carlo
module Estimator = Vqc_sim.Estimator
module Compiler = Vqc_mapper.Compiler
module Catalog = Vqc_workloads.Catalog
module Context = Vqc_experiments.Context
module Policies = Vqc_service.Policies
module Rng = Vqc_rng.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* The specification, transcribed: a trial visits events in order,
   counts each visit as a draw, and stops at its first failure.
   Rng.bernoulli consumes no generator draw for p <= 0 or p >= 1. *)
let oracle_chunk probabilities rng count =
  let events = Array.length probabilities in
  let successes = ref 0 in
  let draws = ref 0 in
  for _ = 1 to count do
    let rec error_free i =
      i >= events
      || (incr draws;
          (not (Rng.bernoulli rng probabilities.(i))) && error_free (i + 1))
    in
    if error_free 0 then incr successes
  done;
  (!successes, !draws)

let same_rng_state a b = Rng.dump a = Rng.dump b

(* ---- the kernel against the specification oracle ------------------- *)

let assert_kernel_matches ~name probabilities ~seed ~count =
  let kernel_rng = Rng.make seed in
  let oracle_rng = Rng.make seed in
  let table = Mc_kernel.of_probabilities probabilities in
  let kernel_result = Mc_kernel.run_chunk table kernel_rng count in
  let oracle_result = oracle_chunk probabilities oracle_rng count in
  Alcotest.(check (pair int int))
    (name ^ ": successes and draws") oracle_result kernel_result;
  check (name ^ ": generator state") true (same_rng_state kernel_rng oracle_rng)

let test_kernel_degenerate_tables () =
  (* p = 0 skips without failing, p = 1 fails without drawing; neither
     consumes a generator draw, so the RNG must come back untouched *)
  let rng = Rng.make 3 in
  let before = Rng.dump rng in
  let table = Mc_kernel.of_probabilities [| 0.0; 1.0 |] in
  check_int "events" 2 (Mc_kernel.events table);
  let successes, draws = Mc_kernel.run_chunk table rng 5 in
  check_int "certain failure" 0 successes;
  check_int "both events visited" 10 draws;
  check "no RNG consumption" true (Rng.dump rng = before);
  let empty = Mc_kernel.of_probabilities [||] in
  check_int "no events" 0 (Mc_kernel.events empty);
  Alcotest.(check (pair int int))
    "empty table: all trials succeed" (7, 0)
    (Mc_kernel.run_chunk empty rng 7);
  assert_kernel_matches ~name:"degenerate mix"
    [| 0.0; 1e-300; 0.5; 1.0; 0.25 |]
    ~seed:11 ~count:1000

let test_kernel_out_of_range_probabilities () =
  (* failure_probabilities never emits these, but the kernel contract
     clamps like Rng.bernoulli: <= 0 never fires, >= 1 always does *)
  assert_kernel_matches ~name:"clamped" [| -0.25; 0.5; 1.5 |] ~seed:5
    ~count:500;
  assert_kernel_matches ~name:"clamped edges" [| -0.0; 1.0 -. 1e-16 |] ~seed:6
    ~count:500

let gen_probability =
  QCheck2.Gen.(
    oneof
      [
        return 0.0;
        return 1.0;
        return (-0.5);
        return 1.5;
        float_range 0.0 1.0;
        map (fun f -> f *. 1e-6) (float_range 0.0 1.0);
        map (fun f -> 1.0 -. (f *. 1e-6)) (float_range 0.0 1.0);
      ])

let prop_kernel_matches_oracle =
  QCheck2.Test.make ~name:"flat kernel is bit-identical to the oracle"
    ~count:300
    QCheck2.Gen.(
      triple
        (list_size (int_bound 40) gen_probability)
        (int_bound 10_000) (int_bound 5_000))
    (fun (probabilities, seed, count) ->
      let probabilities = Array.of_list probabilities in
      let count = count + 1 in
      let kernel_rng = Rng.make seed in
      let oracle_rng = Rng.make seed in
      let table = Mc_kernel.of_probabilities probabilities in
      Mc_kernel.run_chunk table kernel_rng count
      = oracle_chunk probabilities oracle_rng count
      && same_rng_state kernel_rng oracle_rng)

(* ---- the engines against each other over compiled circuits --------- *)

let run_both ?(trials = 20_000) ?(jobs = 1) ~seed device circuit =
  let flat =
    Monte_carlo.run ~engine:Monte_carlo.Flat ~jobs ~trials (Rng.make seed)
      device circuit
  in
  let reference =
    Monte_carlo.run ~engine:Monte_carlo.Reference ~jobs ~trials
      (Rng.make seed) device circuit
  in
  (flat, reference)

let results_equal (a : Monte_carlo.result) (b : Monte_carlo.result) =
  a.Monte_carlo.trials = b.Monte_carlo.trials
  && a.Monte_carlo.successes = b.Monte_carlo.successes
  && a.Monte_carlo.pst = b.Monte_carlo.pst
  && a.Monte_carlo.ci95 = b.Monte_carlo.ci95

let test_engines_agree_on_q5_matrix () =
  (* every Section-7 workload under every service policy, serial and
     fanned out: the engines must agree to the bit *)
  let ctx = Context.default in
  let device = ctx.Context.q5 in
  List.iter
    (fun (entry : Catalog.entry) ->
      List.iter
        (fun { Policies.label; policy; _ } ->
          let compiled = Compiler.compile device policy entry.Catalog.circuit in
          List.iter
            (fun jobs ->
              let flat, reference =
                run_both ~jobs ~seed:1 device compiled.Compiler.physical
              in
              check
                (Printf.sprintf "%s/%s/jobs=%d" entry.Catalog.name label jobs)
                true
                (results_equal flat reference))
            [ 1; 4 ])
        Policies.all)
    Catalog.q5_suite

let gen_program =
  QCheck2.Gen.(
    let* n = int_range 2 5 in
    let gate =
      let* kind = int_bound 3 in
      let* q = int_bound (n - 1) in
      match kind with
      | 0 | 1 ->
        let* other = int_bound (n - 2) in
        let t = if other >= q then other + 1 else other in
        return (Gate.Cnot { control = q; target = t })
      | 2 -> return (Gate.One_qubit (Gate.H, q))
      | _ -> return (Gate.Measure { qubit = q; cbit = q })
    in
    let* gates = list_size (int_bound 15) gate in
    return (Circuit.of_gates n gates))

let prop_engines_agree_on_random_circuits =
  QCheck2.Test.make ~name:"engines agree on random compiled circuits"
    ~count:25 gen_program (fun program ->
      let device = Context.default.Context.q5 in
      let compiled = Compiler.compile device Compiler.vqa_vqm program in
      let flat, reference =
        run_both ~trials:8192 ~seed:2 device compiled.Compiler.physical
      in
      results_equal flat reference)

let test_engines_agree_at_chunk_boundaries () =
  (* trial counts straddling the 4096-trial chunk size: partial last
     chunk, exact multiple, one over *)
  let ctx = Context.default in
  let device = ctx.Context.q20 in
  let circuit = (Catalog.find "bv-16").Catalog.circuit in
  let compiled = Compiler.compile device Compiler.vqa_vqm circuit in
  List.iter
    (fun trials ->
      List.iter
        (fun jobs ->
          let flat, reference =
            run_both ~trials ~jobs ~seed:7 device compiled.Compiler.physical
          in
          check
            (Printf.sprintf "%d trials, jobs=%d" trials jobs)
            true
            (results_equal flat reference))
        [ 1; 3 ])
    [ 1; 4095; 4096; 4097; 8192; 12_289 ]

let test_jobs_do_not_change_results () =
  let ctx = Context.default in
  let device = ctx.Context.q20 in
  let circuit = (Catalog.find "qft-12").Catalog.circuit in
  let compiled = Compiler.compile device Compiler.vqa_vqm circuit in
  let run jobs =
    Monte_carlo.run ~jobs ~trials:20_480 (Rng.make 4) device
      compiled.Compiler.physical
  in
  let serial = run 1 in
  List.iter
    (fun jobs ->
      check
        (Printf.sprintf "jobs=%d matches serial" jobs)
        true
        (results_equal serial (run jobs)))
    [ 2; 4; 8 ]

(* ---- the shared chunk arithmetic ------------------------------------ *)

let test_chunks_for () =
  check_int "one trial" 1 (Estimator.chunks_for 1);
  check_int "exactly one chunk" 1 (Estimator.chunks_for Estimator.chunk_trials);
  check_int "one over" 2 (Estimator.chunks_for (Estimator.chunk_trials + 1));
  check_int "two chunks" 2 (Estimator.chunks_for (2 * Estimator.chunk_trials));
  let raises trials =
    try
      ignore (Estimator.chunks_for trials);
      false
    with Invalid_argument _ -> true
  in
  check "zero trials" true (raises 0);
  check "negative trials" true (raises (-5))

let test_effective_jobs () =
  check_int "single trial clamps to one" 1
    (Estimator.effective_jobs ~jobs:8 1);
  check_int "one full chunk clamps to one" 1
    (Estimator.effective_jobs ~jobs:8 Estimator.chunk_trials);
  check_int "two chunks allow two" 2
    (Estimator.effective_jobs ~jobs:8 (Estimator.chunk_trials + 1));
  check_int "jobs below chunk count pass through" 3
    (Estimator.effective_jobs ~jobs:3 (10 * Estimator.chunk_trials));
  let raises jobs trials =
    try
      ignore (Estimator.effective_jobs ~jobs trials);
      false
    with Invalid_argument _ -> true
  in
  check "zero jobs" true (raises 0 100);
  check "zero trials" true (raises 1 0)

let test_adaptive_full_budget_matches_fixed () =
  (* precision 0 disables early stopping, so the adaptive estimate over
     the budget equals the fixed run bit for bit — whatever the engine *)
  let ctx = Context.default in
  let device = ctx.Context.q5 in
  let circuit = (Catalog.find "GHZ-3").Catalog.circuit in
  let compiled = Compiler.compile device Compiler.vqa_vqm circuit in
  let config =
    {
      Estimator.default_config with
      Estimator.precision = 0.0;
      max_trials = 3 * Estimator.chunk_trials;
      batch_trials = Estimator.chunk_trials;
    }
  in
  List.iter
    (fun engine ->
      let fixed =
        Monte_carlo.run ~engine ~trials:config.Estimator.max_trials
          (Rng.make 9) device compiled.Compiler.physical
      in
      let adaptive =
        Monte_carlo.run_adaptive ~engine ~config (Rng.make 9) device
          compiled.Compiler.physical
      in
      check_int "same trials" fixed.Monte_carlo.trials
        adaptive.Estimator.trials;
      check_int "same successes" fixed.Monte_carlo.successes
        adaptive.Estimator.successes)
    [ Monte_carlo.Flat; Monte_carlo.Reference ]

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "vqc_kernels"
    [
      ( "kernel vs oracle",
        [
          Alcotest.test_case "degenerate tables" `Quick
            test_kernel_degenerate_tables;
          Alcotest.test_case "out-of-range probabilities" `Quick
            test_kernel_out_of_range_probabilities;
        ]
        @ qcheck [ prop_kernel_matches_oracle ] );
      ( "engines",
        [
          Alcotest.test_case "q5 suite x policies x jobs" `Slow
            test_engines_agree_on_q5_matrix;
          Alcotest.test_case "chunk boundaries" `Slow
            test_engines_agree_at_chunk_boundaries;
          Alcotest.test_case "jobs invariance" `Slow
            test_jobs_do_not_change_results;
          Alcotest.test_case "adaptive full budget" `Quick
            test_adaptive_full_budget_matches_fixed;
        ]
        @ qcheck [ prop_engines_agree_on_random_circuits ] );
      ( "chunk arithmetic",
        [
          Alcotest.test_case "chunks_for" `Quick test_chunks_for;
          Alcotest.test_case "effective_jobs" `Quick test_effective_jobs;
        ] );
    ]

(* Tests for the calibration-drift pipeline: the deterministic
   calibration diff (algebraic properties plus a seeded regression
   pinning exact figures), per-plan staleness scoring, and the
   retention contract over the full catalog x policy matrix — retained
   plans must be a strictly positive, strictly selective subset that
   re-verifies clean against the new calibration. *)

module Circuit = Vqc_circuit.Circuit
module Qasm = Vqc_circuit.Qasm
module History = Vqc_device.History
module Topologies = Vqc_device.Topologies
module Device = Vqc_device.Device
module Catalog = Vqc_workloads.Catalog
module Compiler = Vqc_mapper.Compiler
module Layout = Vqc_mapper.Layout
module Router = Vqc_mapper.Router
module Delta = Vqc_drift.Calibration_delta
module Staleness = Vqc_drift.Staleness
module Retention = Vqc_drift.Retention
module Diagnostic = Vqc_diag.Diagnostic
module Policies = Vqc_service.Policies

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-12))

(* The same seed-2 Q20 history Context.default and vqc-serve use. *)
let history =
  History.generate ~days:52 ~seed:2 ~coupling:Topologies.ibm_q20_tokyo 20

let device_on day =
  Device.make ~name:"Q20" ~coupling:Topologies.ibm_q20_tokyo
    (History.day history day)

let delta_between a b =
  Delta.compute (History.day history a) (History.day history b)

(* ---- Calibration_delta: algebraic properties ------------------------ *)

let gen_day = QCheck2.Gen.int_range 0 (History.days history - 1)

let prop_self_delta_is_zero =
  QCheck2.Test.make ~name:"delta d d is all zeros" ~count:30 gen_day
    (fun day ->
      let delta = delta_between day day in
      let zero (n : Delta.norms) =
        n.Delta.l1 = 0.0 && n.Delta.l2 = 0.0 && n.Delta.linf = 0.0
      in
      Delta.is_zero delta
      && zero (Delta.link_error_norms delta)
      && zero (Delta.readout_norms delta)
      && zero (Delta.t1_norms delta)
      && zero (Delta.t2_norms delta))

let prop_delta_antisymmetric =
  QCheck2.Test.make ~name:"delta a b = -(delta b a), link for link"
    ~count:30
    QCheck2.Gen.(pair gen_day gen_day)
    (fun (a, b) ->
      let forward = delta_between a b in
      let backward = delta_between b a in
      List.for_all
        (fun (link : Delta.link) ->
          Delta.link_delta forward link.Delta.u link.Delta.v
          = -.Delta.link_delta backward link.Delta.u link.Delta.v)
        (Delta.links forward)
      && List.for_all
           (fun (q : Delta.qubit) ->
             Delta.readout_delta forward q.Delta.index
             = -.Delta.readout_delta backward q.Delta.index)
           (Delta.qubits forward))

let prop_l1_triangle =
  QCheck2.Test.make ~name:"L1 link norms satisfy the triangle inequality"
    ~count:30
    QCheck2.Gen.(triple gen_day gen_day gen_day)
    (fun (a, b, c) ->
      let l1 x y = (Delta.link_error_norms (delta_between x y)).Delta.l1 in
      l1 a c <= l1 a b +. l1 b c +. 1e-12)

(* ---- Calibration_delta: seeded regression --------------------------- *)

(* Exact figures of the day-0 -> day-1 diff on the seed-2 Q20 history:
   the AR(1) drift model and the diff are both deterministic, so these
   are reproducible to the last bit.  If they move, either the history
   model or the delta changed — both are observable contract. *)
let test_delta_seeded_regression () =
  let delta = delta_between 0 1 in
  check_int "20 qubits" 20 (Delta.num_qubits delta);
  check_int "Q20 coupler count" 43 (List.length (Delta.links delta));
  check_float "link (0,1)" 0.0068091821996266004 (Delta.link_delta delta 0 1);
  check_float "link (0,5)" 0.0068097224164169121 (Delta.link_delta delta 0 5);
  check_float "link (1,2)" 0.0033248547725798425 (Delta.link_delta delta 1 2);
  check_float "link (1,6) (operand order irrelevant)"
    0.016507521696190283
    (Delta.link_delta delta 6 1);
  let norms = Delta.link_error_norms delta in
  check_float "L1" 0.50751695170964362 norms.Delta.l1;
  check_float "L2" 0.12257655017922672 norms.Delta.l2;
  check_float "Linf" 0.077225202163260148 norms.Delta.linf;
  check_float "readout Linf" 0.012331936781609605
    (Delta.readout_norms delta).Delta.linf

let test_delta_rejects_mismatched_machines () =
  let q5 =
    History.generate ~days:1 ~seed:5 ~coupling:Topologies.ibm_q5_tenerife 5
  in
  check "different qubit counts rejected" true
    (match Delta.compute (History.day history 0) (History.day q5 0) with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ---- Staleness ------------------------------------------------------ *)

let test_footprint_of_physical_gates () =
  let circuit =
    Qasm.of_string_exn
      "OPENQASM 2.0;\n\
       include \"qelib1.inc\";\n\
       qreg q[4];\n\
       creg c[4];\n\
       cx q[0],q[1];\n\
       h q[2];\n\
       measure q[2] -> c[2];\n"
  in
  let links, qubits = Staleness.footprint circuit in
  check "links" true (links = [ (0, 1) ]);
  check "qubits" true (qubits = [ 0; 1; 2 ]);
  check "measured" true (Staleness.measured_qubits circuit = [ 2 ])

let test_staleness_zero_on_identical_calibration () =
  let device = device_on 0 in
  let circuit = (Catalog.find "bv-16").Catalog.circuit in
  let plan = Compiler.compile device Compiler.vqa_vqm circuit in
  let score =
    Staleness.score ~before:device ~after:device plan.Compiler.physical
  in
  check_float "no drift, no loss" 0.0 (Staleness.loss score);
  check_float "no drift, no staleness" 0.0 (Staleness.staleness score);
  check_float "no link drift" 0.0 score.Staleness.max_link_drift;
  check "footprint is a subset of the couplers" true
    (List.for_all
       (fun (u, v) -> Device.connected device u v)
       score.Staleness.footprint_links)

(* ---- Retention: decisions ------------------------------------------- *)

let test_retention_decisions () =
  let device = device_on 0 in
  let circuit = (Catalog.find "GHZ-3").Catalog.circuit in
  let plan = Compiler.compile device Compiler.baseline circuit in
  let score =
    Staleness.score ~before:device ~after:(device_on 1)
      plan.Compiler.physical
  in
  check "wholesale policy recompiles everything" true
    (Retention.decide { Retention.threshold = 0.0 } score
    = Retention.Recompile);
  check "wholesale flag" true (Retention.wholesale { Retention.threshold = 0.0 });
  check "default is selective" true
    (not (Retention.wholesale Retention.default));
  check "an infinite threshold retains" true
    (Retention.decide { Retention.threshold = infinity } score
    = Retention.Retain);
  check "the cut sits exactly at the staleness" true
    (Retention.decide
       { Retention.threshold = Staleness.staleness score }
       score
    = Retention.Retain)

(* ---- Retention: full catalog x policy acceptance -------------------- *)

(* The headline contract of the subsystem, over the full 133-plan
   matrix: at the default threshold a day-to-day calibration step
   retains a strictly positive — and strictly selective — subset, and
   every retained plan re-verifies clean against the new device. *)
let test_retention_across_catalog () =
  let before = device_on 0 in
  let after = device_on 1 in
  let plans =
    List.concat_map
      (fun (entry : Catalog.entry) ->
        List.map
          (fun (p : Policies.entry) ->
            (entry, p, Compiler.compile before p.Policies.policy entry.Catalog.circuit))
          Policies.all)
      Catalog.all
  in
  check_int "catalog x policy matrix" 133 (List.length plans);
  let retained =
    List.filter
      (fun (_, _, plan) ->
        Retention.decide Retention.default
          (Staleness.score ~before ~after plan.Compiler.physical)
        = Retention.Retain)
      plans
  in
  check "a strictly positive fraction retains" true (retained <> []);
  check "retention is selective, not wholesale-keep" true
    (List.length retained < List.length plans);
  List.iter
    (fun ((entry : Catalog.entry), (p : Policies.entry), plan) ->
      let diagnostics =
        Retention.reverify ~device:after ~source:entry.Catalog.circuit
          ~physical:plan.Compiler.physical
          ~initial:(Layout.assignment plan.Compiler.initial)
          ~final:(Layout.assignment plan.Compiler.final)
          ~swaps:plan.Compiler.stats.Router.swaps_inserted
      in
      check
        (Printf.sprintf "%s/%s re-verifies clean" entry.Catalog.name
           p.Policies.label)
        true
        (not (Diagnostic.has_errors diagnostics)))
    retained

let test_reverify_rejects_malformed_layout () =
  let device = device_on 0 in
  let circuit = (Catalog.find "GHZ-3").Catalog.circuit in
  let plan = Compiler.compile device Compiler.baseline circuit in
  let diagnostics =
    Retention.reverify ~device ~source:circuit
      ~physical:plan.Compiler.physical
      ~initial:[| 0; 0; 0 |] (* not injective: malformed *)
      ~final:(Layout.assignment plan.Compiler.final)
      ~swaps:plan.Compiler.stats.Router.swaps_inserted
  in
  check "malformed layout demotes instead of crashing" true
    (Diagnostic.has_errors diagnostics)

(* ---- runner --------------------------------------------------------- *)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "vqc_drift"
    [
      ( "calibration delta",
        qcheck
          [
            prop_self_delta_is_zero;
            prop_delta_antisymmetric;
            prop_l1_triangle;
          ]
        @ [
            Alcotest.test_case "seeded regression" `Quick
              test_delta_seeded_regression;
            Alcotest.test_case "mismatched machines" `Quick
              test_delta_rejects_mismatched_machines;
          ] );
      ( "staleness",
        [
          Alcotest.test_case "footprint" `Quick
            test_footprint_of_physical_gates;
          Alcotest.test_case "zero on identical calibration" `Quick
            test_staleness_zero_on_identical_calibration;
        ] );
      ( "retention",
        [
          Alcotest.test_case "decisions" `Quick test_retention_decisions;
          Alcotest.test_case "catalog-wide retention and re-verification"
            `Quick test_retention_across_catalog;
          Alcotest.test_case "malformed layout" `Quick
            test_reverify_rejects_malformed_layout;
        ] );
    ]

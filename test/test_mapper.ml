(* Tests for the core library: layouts, cost models, routing and the full
   compiler.  The central property is semantic preservation: a routed
   circuit, with its inserted SWAPs interpreted as remappings, must
   replay the original program (per-qubit gate order preserved) while
   every two-qubit gate lands on a coupled pair. *)

module Gate = Vqc_circuit.Gate
module Circuit = Vqc_circuit.Circuit
module Calibration = Vqc_device.Calibration
module Device = Vqc_device.Device
module Topologies = Vqc_device.Topologies
module Calibration_model = Vqc_device.Calibration_model
module Layout = Vqc_mapper.Layout
module Cost = Vqc_mapper.Cost
module Router = Vqc_mapper.Router
module Allocation = Vqc_mapper.Allocation
module Compiler = Vqc_mapper.Compiler
module Reliability = Vqc_sim.Reliability
module Rng = Vqc_rng.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let cx c t = Gate.Cnot { control = c; target = t }
let h q = Gate.One_qubit (Gate.H, q)
let meas q = Gate.Measure { qubit = q; cbit = q }

(* ---- Layout -------------------------------------------------------- *)

let test_layout_identity () =
  let l = Layout.identity ~programs:3 ~physicals:5 in
  check_int "programs" 3 (Layout.programs l);
  check_int "physicals" 5 (Layout.physicals l);
  check_int "maps i to i" 1 (Layout.physical_of_program l 1);
  Alcotest.(check (option int)) "inverse" (Some 2) (Layout.program_of_physical l 2);
  Alcotest.(check (option int)) "free node" None (Layout.program_of_physical l 4)

let test_layout_of_assignment_validation () =
  let raises f = try f () |> ignore; false with Invalid_argument _ -> true in
  check "duplicate" true
    (raises (fun () -> Layout.of_assignment ~physicals:3 [| 0; 0 |]));
  check "out of range" true
    (raises (fun () -> Layout.of_assignment ~physicals:3 [| 0; 7 |]));
  check "too many programs" true
    (raises (fun () -> Layout.identity ~programs:4 ~physicals:3))

let test_layout_swap () =
  let l = Layout.identity ~programs:2 ~physicals:4 in
  let swapped = Layout.swap_physical l 0 3 in
  check_int "program 0 moved" 3 (Layout.physical_of_program swapped 0);
  Alcotest.(check (option int)) "node 0 freed" None
    (Layout.program_of_physical swapped 0);
  (* original untouched *)
  check_int "functional" 0 (Layout.physical_of_program l 0)

let test_layout_diff_swap () =
  let l = Layout.identity ~programs:3 ~physicals:4 in
  let moved = Layout.swap_physical l 1 2 in
  Alcotest.(check (option (pair int int))) "detects the swap" (Some (1, 2))
    (Layout.diff_swap l moved);
  Alcotest.(check (option (pair int int))) "no diff" None (Layout.diff_swap l l);
  let double = Layout.swap_physical (Layout.swap_physical l 0 1) 2 3 in
  Alcotest.(check (option (pair int int))) "two swaps is not one" None
    (Layout.diff_swap l double)

let test_layout_key_distinguishes () =
  let a = Layout.identity ~programs:2 ~physicals:3 in
  let b = Layout.swap_physical a 0 1 in
  check "different keys" true (Layout.key a <> Layout.key b);
  check "equal layouts equal keys" true
    (Layout.key a = Layout.key (Layout.identity ~programs:2 ~physicals:3))

(* ---- Cost ---------------------------------------------------------- *)

let line_device () =
  let c = Calibration.create 4 in
  Calibration.set_link_error c 0 1 0.02;
  Calibration.set_link_error c 1 2 0.10;
  Calibration.set_link_error c 2 3 0.02;
  Device.make ~name:"line4" ~coupling:[ (0, 1); (1, 2); (2, 3) ] c

let test_cost_hops () =
  let cost = Cost.make (line_device ()) Cost.Hops in
  check_float "swap cost 1" 1.0 (Cost.swap_cost cost 0 1);
  check_float "cnot free" 0.0 (Cost.cnot_cost cost 0 1);
  check_float "distance" 2.0 (Cost.distance cost 0 2);
  check_int "hops to adjacency" 1 (Cost.hops_to_adjacency cost 0 2);
  check_int "adjacent pair" 0 (Cost.hops_to_adjacency cost 0 1);
  check_float "entangle cost of adjacent" 0.0 (Cost.entangle_cost cost 0 1)

let test_cost_reliability () =
  let d = line_device () in
  let cost = Cost.make ~swap_bias:0.0 d Cost.Reliability in
  check_float "swap cost = -3 log p" (-3.0 *. log 0.98) (Cost.swap_cost cost 0 1);
  check_float "cnot cost" (-.log 0.90) (Cost.cnot_cost cost 1 2);
  (* entangling 0 and 2: either execute on the weak 1-2 link directly
     after a swap, or route to meet across a strong link *)
  check "entangle cost positive" true (Cost.entangle_cost cost 0 2 > 0.0);
  check "weak link execution visible" true
    (Cost.cnot_cost cost 1 2 > Cost.cnot_cost cost 0 1)

let test_cost_swap_bias_monotone () =
  let d = line_device () in
  let low = Cost.make ~swap_bias:0.0 d Cost.Reliability in
  let high = Cost.make ~swap_bias:5.0 d Cost.Reliability in
  check "bias raises swap cost" true
    (Cost.swap_cost high 0 1 > Cost.swap_cost low 0 1);
  check_float "bias does not change cnot cost" (Cost.cnot_cost low 1 2)
    (Cost.cnot_cost high 1 2)

let test_cost_route () =
  let cost = Cost.make (line_device ()) Cost.Hops in
  Alcotest.(check (list int)) "line route" [ 0; 1; 2; 3 ] (Cost.route cost 0 3)

let prop_cost_matrices_consistent =
  (* on random devices: distances are symmetric and satisfy the triangle
     inequality; the entangle cost of an adjacent pair never exceeds its
     direct execution cost *)
  QCheck2.Test.make ~name:"cost matrices are consistent" ~count:50
    QCheck2.Gen.(pair (int_range 4 10) (int_bound 10_000))
    (fun (n, seed) ->
      let device =
        let rng = Rng.make seed in
        let coupling = Topologies.ring n in
        let calibration =
          Calibration_model.generate rng ~coupling n
        in
        Device.make ~name:"ring" ~coupling calibration
      in
      let cost = Cost.make device Cost.Reliability in
      let ok = ref true in
      for p = 0 to n - 1 do
        for q = 0 to n - 1 do
          if Float.abs (Cost.distance cost p q -. Cost.distance cost q p) > 1e-9
          then ok := false;
          for r = 0 to n - 1 do
            if
              Cost.distance cost p q
              > Cost.distance cost p r +. Cost.distance cost r q +. 1e-9
            then ok := false
          done
        done
      done;
      List.iter
        (fun (u, v) ->
          if Cost.entangle_cost cost u v > Cost.cnot_cost cost u v +. 1e-9 then
            ok := false)
        (Device.coupling device);
      !ok)

let prop_layout_swap_involutive =
  QCheck2.Test.make ~name:"swapping twice restores the layout" ~count:200
    QCheck2.Gen.(triple (int_range 2 8) (int_bound 100) (int_bound 100))
    (fun (n, a, b) ->
      let physicals = n + 2 in
      let u = a mod physicals and v = b mod physicals in
      let layout = Layout.identity ~programs:n ~physicals in
      u = v
      || Layout.equal layout
           (Layout.swap_physical (Layout.swap_physical layout u v) u v))

(* ---- semantic preservation ----------------------------------------- *)

(* Replay a routed physical circuit: maintain program_of_physical from the
   initial layout, treat every SWAP as a remapping, and map gates back to
   program qubits.  (Valid for programs without explicit SWAP gates.) *)
let replay_logical compiled =
  let layout = ref compiled.Compiler.initial in
  let logical = ref [] in
  List.iter
    (fun gate ->
      match gate with
      | Gate.Swap (u, v) -> layout := Layout.swap_physical !layout u v
      | Gate.One_qubit _ | Gate.Cnot _ | Gate.Measure _ | Gate.Barrier _ ->
        let back phys =
          match Layout.program_of_physical !layout phys with
          | Some prog -> prog
          | None -> Alcotest.failf "gate on unmapped physical qubit %d" phys
        in
        logical := Gate.relabel back gate :: !logical)
    (Circuit.gates compiled.Compiler.physical);
  List.rev !logical

let projection gates q =
  List.filter (fun g -> List.mem q (Gate.qubits g)) gates

let assert_routing_sound device program compiled =
  (* every 2q gate coupled *)
  List.iter
    (fun gate ->
      match gate with
      | Gate.Cnot { control; target } ->
        check "cx on coupled pair" true (Device.connected device control target)
      | Gate.Swap (u, v) ->
        check "swap on coupled pair" true (Device.connected device u v)
      | Gate.One_qubit _ | Gate.Measure _ | Gate.Barrier _ -> ())
    (Circuit.gates compiled.Compiler.physical);
  (* per-program-qubit gate order preserved *)
  let logical = replay_logical compiled in
  let original = Circuit.gates program in
  for q = 0 to Circuit.num_qubits program - 1 do
    let got = projection logical q and expected = projection original q in
    check "projection lengths" true (List.length got = List.length expected);
    check "per-qubit order preserved" true (List.for_all2 Gate.equal got expected)
  done;
  (* final layout consistent with the swaps *)
  let final = ref compiled.Compiler.initial in
  List.iter
    (fun gate ->
      match gate with
      | Gate.Swap (u, v) -> final := Layout.swap_physical !final u v
      | Gate.One_qubit _ | Gate.Cnot _ | Gate.Measure _ | Gate.Barrier _ -> ())
    (Circuit.gates compiled.Compiler.physical);
  check "final layout matches swap trace" true
    (Layout.equal !final compiled.Compiler.final)

let q20 () = Vqc_experiments.Context.default.Vqc_experiments.Context.q20

let test_routing_preserves_semantics_bv () =
  let device = q20 () in
  let program = (Vqc_workloads.Catalog.find "bv-16").Vqc_workloads.Catalog.circuit in
  List.iter
    (fun policy ->
      assert_routing_sound device program (Compiler.compile device policy program))
    [
      Compiler.baseline; Compiler.vqm; Compiler.vqm_limited 4;
      Compiler.vqa_vqm; Compiler.sabre; Compiler.noise_sabre;
    ]

let test_routing_preserves_semantics_qft () =
  let device = q20 () in
  let program = (Vqc_workloads.Catalog.find "qft-12").Vqc_workloads.Catalog.circuit in
  List.iter
    (fun policy ->
      assert_routing_sound device program (Compiler.compile device policy program))
    [ Compiler.baseline; Compiler.vqa_vqm; Compiler.native ~seed:3 ]

let gen_program =
  QCheck2.Gen.(
    let* n = int_range 2 8 in
    let gate =
      let* kind = int_bound 3 in
      let* q = int_bound (n - 1) in
      match kind with
      | 0 | 1 ->
        let* other = int_bound (n - 2) in
        let t = if other >= q then other + 1 else other in
        return (cx q t)
      | 2 -> return (h q)
      | _ -> return (meas q)
    in
    let* gates = list_size (int_bound 25) gate in
    return (Circuit.of_gates n gates))

let prop_routing_sound_random_programs =
  QCheck2.Test.make ~name:"routing is sound on random programs" ~count:60
    gen_program (fun program ->
      let device = Calibration_model.ibm_q20 ~seed:4 in
      List.for_all
        (fun policy ->
          let compiled = Compiler.compile device policy program in
          (* raise via Alcotest.fail on violation; here just run checks *)
          try
            assert_routing_sound device program compiled;
            true
          with _ -> false)
        [ Compiler.baseline; Compiler.vqa_vqm ])

let prop_routing_sound_small_devices =
  QCheck2.Test.make ~name:"routing is sound on a line device" ~count:60
    gen_program (fun program ->
      let n = max 4 (Circuit.num_qubits program) in
      let device =
        Calibration_model.uniform_device ~name:"line"
          ~coupling:(Topologies.linear n) n ~error_2q:0.03
      in
      try
        assert_routing_sound device program
          (Compiler.compile device Compiler.vqm program);
        true
      with _ -> false)

(* ---- behaviour of the policies -------------------------------------- *)

let test_uniform_device_vqm_matches_baseline_swaps () =
  (* paper Section 5.3: with no variation VQM reduces to the baseline's
     SWAP minimization *)
  let device =
    Calibration_model.uniform_device ~name:"uniform-q20"
      ~coupling:Topologies.ibm_q20_tokyo 20 ~error_2q:0.04
  in
  let program = (Vqc_workloads.Catalog.find "bv-16").Vqc_workloads.Catalog.circuit in
  let base = Compiler.compile device Compiler.baseline program in
  let vqm = Compiler.compile device Compiler.vqm program in
  check_int "same swap count" (Compiler.swap_overhead base)
    (Compiler.swap_overhead vqm)

let test_vqm_never_below_baseline_estimate () =
  (* candidate selection guarantees VQM's estimated reliability dominates *)
  let device = q20 () in
  List.iter
    (fun name ->
      let program = (Vqc_workloads.Catalog.find name).Vqc_workloads.Catalog.circuit in
      let score policy =
        let compiled = Compiler.compile device policy program in
        Compiler.log_gate_reliability device compiled.Compiler.physical
      in
      check (name ^ ": vqm >= baseline") true
        (score Compiler.vqm >= score Compiler.baseline -. 1e-9);
      check (name ^ ": vqa+vqm >= vqm") true
        (score Compiler.vqa_vqm >= score Compiler.vqm -. 1e-9))
    [ "bv-16"; "qft-12"; "rnd-SD"; "alu" ]

let test_vqm_improves_pst_on_representative_chip () =
  let device = q20 () in
  let program = (Vqc_workloads.Catalog.find "bv-16").Vqc_workloads.Catalog.circuit in
  let pst policy =
    let compiled = Compiler.compile device policy program in
    Reliability.pst device compiled.Compiler.physical
  in
  let base = pst Compiler.baseline in
  check "vqm improves" true (pst Compiler.vqm > base);
  check "vqa+vqm improves" true (pst Compiler.vqa_vqm > base)

let test_figure1_example () =
  (* Paper Figure 1: a 5-qubit ring where the direct route crosses weak
     links; VQM prefers the longer, stronger route (the paper's numbers
     0.42 vs 0.567 imply link successes A-B 0.6, B-C 0.7, A-E 0.9,
     E-D 0.9, D-C 0.7).  Entangle Q1 (at A=0) with Q3 (at C=2). *)
  let c = Calibration.create 5 in
  List.iter
    (fun (u, v, success) -> Calibration.set_link_error c u v (1.0 -. success))
    [ (0, 1, 0.6); (1, 2, 0.7); (2, 3, 0.7); (3, 4, 0.9); (4, 0, 0.9) ];
  let device = Device.make ~name:"fig1" ~coupling:Topologies.pentagon c in
  let program = Circuit.of_gates 3 [ cx 0 2 ] in
  let layout = Layout.identity ~programs:3 ~physicals:5 in
  let route model bias =
    let cost = Cost.make ~swap_bias:bias device model in
    let result = Router.route cost layout program in
    Reliability.pst ~coherence:false device result.Router.circuit
  in
  let hop_pst = route Cost.Hops 0.0 in
  let vqm_pst = route Cost.Reliability 0.0 in
  check "vqm beats the short route" true (vqm_pst > hop_pst)

let test_mah_zero_forbids_detours () =
  (* with MAH = 0 the reliability router may not exceed the baseline's
     minimum swap count in any layer *)
  let device = q20 () in
  let program = (Vqc_workloads.Catalog.find "bv-16").Vqc_workloads.Catalog.circuit in
  let layout = Allocation.allocate device program Allocation.Locality in
  let hop = Router.route (Cost.make device Cost.Hops) layout program in
  let limited =
    Router.route ~max_additional_hops:0
      (Cost.make device Cost.Reliability)
      layout program
  in
  check "mah=0 stays near minimal swaps" true
    (limited.Router.stats.Router.swaps_inserted
    <= hop.Router.stats.Router.swaps_inserted + 2)

let test_sabre_routes_and_preserves_semantics () =
  let device = q20 () in
  let program = (Vqc_workloads.Catalog.find "qft-12").Vqc_workloads.Catalog.circuit in
  List.iter
    (fun policy ->
      assert_routing_sound device program (Compiler.compile device policy program))
    [ Compiler.sabre; Compiler.noise_sabre ]

let test_sabre_is_deterministic () =
  let device = q20 () in
  let program = (Vqc_workloads.Catalog.find "bv-16").Vqc_workloads.Catalog.circuit in
  let a = Compiler.compile device Compiler.noise_sabre program in
  let b = Compiler.compile device Compiler.noise_sabre program in
  check "same output" true
    (Circuit.equal a.Compiler.physical b.Compiler.physical)

let test_sabre_executes_adjacent_program_without_swaps () =
  let device =
    Calibration_model.uniform_device ~name:"line4"
      ~coupling:(Topologies.linear 4) 4 ~error_2q:0.03
  in
  let program = Circuit.of_gates 4 [ cx 0 1; cx 1 2; cx 2 3; meas 0 ] in
  let layout = Allocation.allocate device program Allocation.Trivial in
  let cost = Cost.make device Cost.Hops in
  let routed = Vqc_mapper.Sabre.route cost layout program in
  check_int "no swaps needed" 0 routed.Router.stats.Router.swaps_inserted

let test_greedy_router_routes_everything () =
  let device = q20 () in
  let program = (Vqc_workloads.Catalog.find "qft-12").Vqc_workloads.Catalog.circuit in
  let compiled = Compiler.compile device (Compiler.native ~seed:9) program in
  assert_routing_sound device program compiled

(* ---- Allocation ---------------------------------------------------- *)

let test_allocation_policies_are_valid_layouts () =
  let device = q20 () in
  let program = (Vqc_workloads.Catalog.find "bv-16").Vqc_workloads.Catalog.circuit in
  List.iter
    (fun policy ->
      let layout = Allocation.allocate device program policy in
      check_int "covers program" (Circuit.num_qubits program)
        (Layout.programs layout))
    [ Allocation.Trivial; Allocation.Random 3; Allocation.Locality; Allocation.vqa ]

let test_allocation_random_is_seeded () =
  let device = q20 () in
  let program = Circuit.of_gates 6 [ cx 0 1 ] in
  let a = Allocation.allocate device program (Allocation.Random 5) in
  let b = Allocation.allocate device program (Allocation.Random 5) in
  let c = Allocation.allocate device program (Allocation.Random 6) in
  check "same seed same layout" true (Layout.equal a b);
  check "different seed differs" true (not (Layout.equal a c))

let test_allocation_too_wide () =
  let device = Calibration_model.ibm_q5 ~seed:1 in
  check "raises" true
    (try
       let _ =
         Allocation.allocate device (Circuit.create 9) Allocation.Locality
       in
       false
     with Invalid_argument _ -> true)

let test_vqa_readout_extension_prefers_good_readout () =
  (* two equally-strong link pairs; the measured qubits should land on
     the pair with the better readout under the extension *)
  let c = Calibration.create 4 in
  Calibration.set_link_error c 0 1 0.03;
  Calibration.set_link_error c 1 2 0.10;
  Calibration.set_link_error c 2 3 0.03;
  let good = { Calibration.t1_us = 80.; t2_us = 40.; error_1q = 0.001; error_readout = 0.01 } in
  let bad = { good with Calibration.error_readout = 0.20 } in
  Calibration.set_qubit c 0 bad;
  Calibration.set_qubit c 1 bad;
  Calibration.set_qubit c 2 good;
  Calibration.set_qubit c 3 good;
  let device = Device.make ~name:"line4" ~coupling:[ (0, 1); (1, 2); (2, 3) ] c in
  let program = Circuit.of_gates 2 [ cx 0 1; meas 0; meas 1 ] in
  let spots policy =
    let layout = Allocation.allocate device program policy in
    List.sort compare
      [ Layout.physical_of_program layout 0; Layout.physical_of_program layout 1 ]
  in
  Alcotest.(check (list int)) "readout-aware picks the good-readout pair"
    [ 2; 3 ]
    (spots Allocation.vqa_readout)

let test_vqa_prefers_strong_links () =
  (* 2-qubit program on a 4-line whose strongest link is 2-3; VQA must
     allocate onto it, locality is free to pick anything *)
  let c = Calibration.create 4 in
  Calibration.set_link_error c 0 1 0.10;
  Calibration.set_link_error c 1 2 0.08;
  Calibration.set_link_error c 2 3 0.02;
  let device = Device.make ~name:"line4" ~coupling:[ (0, 1); (1, 2); (2, 3) ] c in
  let program = Circuit.of_gates 2 [ cx 0 1; cx 0 1; meas 0; meas 1 ] in
  let layout = Allocation.allocate device program Allocation.vqa in
  let spots =
    List.sort compare
      [ Layout.physical_of_program layout 0; Layout.physical_of_program layout 1 ]
  in
  Alcotest.(check (list int)) "strongest link chosen" [ 2; 3 ] spots

(* ---- Compiler ------------------------------------------------------ *)

let test_compile_rejects_empty_policy () =
  let device = q20 () in
  let raises f = try f () |> ignore; false with Invalid_argument _ -> true in
  check "no allocations" true
    (raises (fun () ->
         Compiler.compile device
           { Compiler.baseline with Compiler.allocations = [] }
           (Circuit.create 2)));
  check "no routings" true
    (raises (fun () ->
         Compiler.compile device
           { Compiler.baseline with Compiler.routings = [] }
           (Circuit.create 2)))

let test_log_gate_reliability_orders_circuits () =
  let d = line_device () in
  let good = Circuit.of_gates 4 [ cx 0 1 ] in
  let bad = Circuit.of_gates 4 [ cx 1 2 ] in
  check "stronger link scores higher" true
    (Compiler.log_gate_reliability d good > Compiler.log_gate_reliability d bad)

let test_compiled_preserves_measurement_cbits () =
  let device = q20 () in
  let program = Circuit.of_gates ~cbits:2 5 [ cx 0 4; meas 0; Gate.Measure { qubit = 4; cbit = 1 } ] in
  let compiled = Compiler.compile device Compiler.vqa_vqm program in
  let cbits =
    List.filter_map
      (function Gate.Measure { cbit; _ } -> Some cbit | _ -> None)
      (Circuit.gates compiled.Compiler.physical)
  in
  Alcotest.(check (list int)) "cbits preserved" [ 0; 1 ] (List.sort compare cbits);
  check_int "cbit register width" 2 (Circuit.num_cbits compiled.Compiler.physical)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

(* Every plan any test below compiles is replayed by the translation
   validator — a mapper regression that breaks plan faithfulness fails
   here even if no assertion looks at the relevant invariant. *)
let () = Vqc_check.Verify.install_compiler_check ()

let () =
  Alcotest.run "vqc_mapper"
    [
      ( "layout",
        [
          Alcotest.test_case "identity" `Quick test_layout_identity;
          Alcotest.test_case "validation" `Quick test_layout_of_assignment_validation;
          Alcotest.test_case "swap" `Quick test_layout_swap;
          Alcotest.test_case "diff swap" `Quick test_layout_diff_swap;
          Alcotest.test_case "keys" `Quick test_layout_key_distinguishes;
        ] );
      ( "cost",
        [
          Alcotest.test_case "hops" `Quick test_cost_hops;
          Alcotest.test_case "reliability" `Quick test_cost_reliability;
          Alcotest.test_case "swap bias" `Quick test_cost_swap_bias_monotone;
          Alcotest.test_case "route" `Quick test_cost_route;
        ]
        @ qcheck [ prop_cost_matrices_consistent; prop_layout_swap_involutive ]
      );
      ( "routing",
        [
          Alcotest.test_case "bv semantics" `Slow test_routing_preserves_semantics_bv;
          Alcotest.test_case "qft semantics" `Slow
            test_routing_preserves_semantics_qft;
          Alcotest.test_case "uniform device degenerates" `Slow
            test_uniform_device_vqm_matches_baseline_swaps;
          Alcotest.test_case "figure 1 example" `Quick test_figure1_example;
          Alcotest.test_case "mah zero" `Quick test_mah_zero_forbids_detours;
          Alcotest.test_case "sabre semantics" `Slow
            test_sabre_routes_and_preserves_semantics;
          Alcotest.test_case "sabre determinism" `Quick test_sabre_is_deterministic;
          Alcotest.test_case "sabre adjacency" `Quick
            test_sabre_executes_adjacent_program_without_swaps;
          Alcotest.test_case "greedy router" `Slow test_greedy_router_routes_everything;
        ]
        @ qcheck
            [ prop_routing_sound_random_programs; prop_routing_sound_small_devices ]
      );
      ( "policies",
        [
          Alcotest.test_case "estimate dominance" `Slow
            test_vqm_never_below_baseline_estimate;
          Alcotest.test_case "pst improves" `Slow
            test_vqm_improves_pst_on_representative_chip;
        ] );
      ( "allocation",
        [
          Alcotest.test_case "valid layouts" `Quick
            test_allocation_policies_are_valid_layouts;
          Alcotest.test_case "random seeded" `Quick test_allocation_random_is_seeded;
          Alcotest.test_case "too wide" `Quick test_allocation_too_wide;
          Alcotest.test_case "vqa picks strong links" `Quick
            test_vqa_prefers_strong_links;
          Alcotest.test_case "readout-aware extension" `Quick
            test_vqa_readout_extension_prefers_good_readout;
        ] );
      ( "compiler",
        [
          Alcotest.test_case "empty policy" `Quick test_compile_rejects_empty_policy;
          Alcotest.test_case "reliability estimate" `Quick
            test_log_gate_reliability_orders_circuits;
          Alcotest.test_case "measurement cbits" `Quick
            test_compiled_preserves_measurement_cbits;
        ] );
    ]

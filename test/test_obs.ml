(* Tests for the observability layer: metric registry semantics (the
   qcheck properties from the issue — commuting counters, monotone
   quantiles, exception-safe spans), trace sink behaviour and JSONL
   validity, and the load-bearing rule that attaching observability
   never changes simulation results. *)

module Metrics = Vqc_obs.Metrics
module Trace = Vqc_obs.Trace
module Span = Vqc_obs.Span
module Json = Vqc_obs.Json
module Monte_carlo = Vqc_sim.Monte_carlo
module Compiler = Vqc_mapper.Compiler
module Catalog = Vqc_workloads.Catalog
module Context = Vqc_experiments.Context
module Rng = Vqc_rng.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* fresh metric names: registry entries are process-global *)
let fresh =
  let n = ref 0 in
  fun prefix ->
    incr n;
    Printf.sprintf "test.%s.%d" prefix !n

let buffer_sink buffer =
  {
    Trace.write = (fun line -> Buffer.add_string buffer line);
    flush = ignore;
  }

(* ---- counters and gauges -------------------------------------------- *)

let test_counter_basics () =
  let c = Metrics.counter (fresh "counter") in
  check_int "starts at zero" 0 (Metrics.counter_value c);
  Metrics.incr c;
  Metrics.add c 41;
  check_int "incr + add" 42 (Metrics.counter_value c);
  let again = Metrics.counter (Metrics.counter_name c) in
  check_int "same name, same metric" 42 (Metrics.counter_value again)

let test_counter_concurrent_increments () =
  let c = Metrics.counter (fresh "concurrent") in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 10_000 do
              Metrics.incr c
            done))
  in
  List.iter Domain.join domains;
  check_int "no lost updates" 40_000 (Metrics.counter_value c)

let test_gauge_basics () =
  let g = Metrics.gauge (fresh "gauge") in
  Metrics.set g 2.5;
  Alcotest.(check (float 0.0)) "set/get" 2.5 (Metrics.gauge_value g)

let test_reset_zeroes_in_place () =
  let c = Metrics.counter (fresh "reset") in
  let h = Metrics.histogram (fresh "reset_h") in
  Metrics.add c 7;
  Metrics.observe h 1.0;
  Metrics.reset ();
  check_int "counter zeroed" 0 (Metrics.counter_value c);
  check_int "histogram cleared" 0 (Metrics.histogram_count h);
  Metrics.incr c;
  check_int "handle still live after reset" 1 (Metrics.counter_value c)

(* qcheck: the counter total is independent of increment order *)
let prop_counter_increments_commute =
  QCheck.Test.make ~count:100 ~name:"counter increments commute"
    QCheck.(small_list small_nat)
    (fun increments ->
      let forward = Metrics.counter (fresh "commute_fwd") in
      let backward = Metrics.counter (fresh "commute_bwd") in
      List.iter (Metrics.add forward) increments;
      List.iter (Metrics.add backward) (List.rev increments);
      Metrics.counter_value forward = Metrics.counter_value backward
      && Metrics.counter_value forward = List.fold_left ( + ) 0 increments)

(* ---- histograms ----------------------------------------------------- *)

let test_histogram_quantiles_exact () =
  let h = Metrics.histogram (fresh "hist") in
  List.iter (Metrics.observe h) [ 4.0; 1.0; 3.0; 2.0; 5.0 ];
  check_int "count" 5 (Metrics.histogram_count h);
  Alcotest.(check (float 1e-9)) "sum" 15.0 (Metrics.histogram_sum h);
  Alcotest.(check (float 0.0)) "p0 = min" 1.0 (Metrics.quantile h 0.0);
  Alcotest.(check (float 0.0)) "p50 = median" 3.0 (Metrics.quantile h 0.5);
  Alcotest.(check (float 0.0)) "p100 = max" 5.0 (Metrics.quantile h 1.0)

let test_histogram_rejects_bad_queries () =
  let h = Metrics.histogram (fresh "hist_bad") in
  check "empty quantile raises" true
    (try
       ignore (Metrics.quantile h 0.5);
       false
     with Invalid_argument _ -> true);
  Metrics.observe h 1.0;
  check "rank out of range raises" true
    (try
       ignore (Metrics.quantile h 1.5);
       false
     with Invalid_argument _ -> true)

let prop_histogram_quantiles_monotone =
  QCheck.Test.make ~count:100 ~name:"histogram quantiles monotone in rank"
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 40) (float_range (-1e6) 1e6))
        (pair (float_range 0.0 1.0) (float_range 0.0 1.0)))
    (fun (samples, (r1, r2)) ->
      let low = Float.min r1 r2 and high = Float.max r1 r2 in
      let h = Metrics.histogram (fresh "monotone") in
      List.iter (Metrics.observe h) samples;
      Metrics.quantile h low <= Metrics.quantile h high)

(* ---- spans ---------------------------------------------------------- *)

let test_with_span_nests_and_times () =
  let name = fresh "span" in
  let inner = fresh "span" in
  let observed_path = ref [] in
  let result =
    Span.with_span ~source:"test" name (fun () ->
        Span.with_span ~source:"test" inner (fun () ->
            observed_path := Span.stack ();
            17))
  in
  check_int "returns the body's value" 17 result;
  check "stack was innermost-first" true (!observed_path = [ inner; name ]);
  check "stack restored" true (Span.stack () = []);
  check_int "durations recorded" 1
    (Metrics.histogram_count (Metrics.histogram ("span." ^ inner)))

exception Boom

let prop_with_span_restores_stack_on_exception =
  QCheck.Test.make ~count:60 ~name:"with_span restores stack on exception"
    QCheck.(int_range 1 8)
    (fun depth ->
      let before = Span.stack () in
      let rec nest d =
        Span.with_span ~source:"test" (Printf.sprintf "level%d" d) (fun () ->
            if d = 0 then raise Boom else nest (d - 1))
      in
      (try nest depth with Boom -> ());
      Span.stack () = before)

let test_span_events_reach_the_sink () =
  let captured = Buffer.create 256 in
  Trace.with_sink (buffer_sink captured) (fun () ->
      Span.with_span ~source:"test" "outer" (fun () ->
          Span.with_span ~source:"test" "inner" ignore));
  let lines =
    Buffer.contents captured |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  check_int "one event per span" 2 (List.length lines);
  (* innermost closes first *)
  let first = Mini_json.parse (List.hd lines) in
  check "name" true
    (Mini_json.member "name" first = Some (Mini_json.String "inner"));
  check "path" true
    (Mini_json.member "path" first = Some (Mini_json.String "outer/inner"));
  check "ok" true (Mini_json.member "ok" first = Some (Mini_json.Bool true));
  check "duration under nd" true
    (match Mini_json.member "nd" first with
    | Some nd -> (
      match Mini_json.member "seconds" nd with
      | Some (Mini_json.Number s) -> s >= 0.0
      | _ -> false)
    | None -> false)

(* ---- trace sink ----------------------------------------------------- *)

let test_noop_mode_is_silent () =
  check "disabled by default" true (not (Trace.enabled ()));
  (* must be a no-op, not an error *)
  Trace.emit ~source:"test" ~event:"ignored" [];
  Trace.flush ()

let test_emitted_lines_are_valid_json () =
  let captured = Buffer.create 256 in
  Trace.with_sink (buffer_sink captured) (fun () ->
      check "enabled inside with_sink" true (Trace.enabled ());
      Trace.emit ~source:"test" ~event:"weird"
        ~nd:[ ("t", Json.Float 0.25) ]
        [
          ("text", Json.String "quote\" backslash\\ newline\n tab\t");
          ("count", Json.Int (-3));
          ("huge", Json.Float 1e300);
          ("inf", Json.Float infinity);
          ("nan", Json.Float nan);
          ("flag", Json.Bool false);
          ("nothing", Json.Null);
          ("items", Json.List [ Json.Int 1; Json.String "two" ]);
        ]);
  check "sink restored" true (not (Trace.enabled ()));
  let line = String.trim (Buffer.contents captured) in
  match Mini_json.parse line with
  | exception Mini_json.Invalid reason ->
    Alcotest.fail (Printf.sprintf "invalid JSON (%s): %s" reason line)
  | json ->
    check "source" true
      (Mini_json.member "source" json = Some (Mini_json.String "test"));
    check "string round-trips" true
      (Mini_json.member "text" json
      = Some (Mini_json.String "quote\" backslash\\ newline\n tab\t"));
    check "non-finite floats become null" true
      (Mini_json.member "inf" json = Some Mini_json.Null
      && Mini_json.member "nan" json = Some Mini_json.Null)

let test_snapshot_to_trace () =
  let counter_name = fresh "snapshot" in
  let histogram_name = fresh "snapshot_h" in
  Metrics.add (Metrics.counter counter_name) 5;
  Metrics.observe (Metrics.histogram histogram_name) 0.5;
  let captured = Buffer.create 256 in
  Trace.with_sink (buffer_sink captured) Metrics.snapshot_to_trace;
  let events =
    Buffer.contents captured |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
    |> List.map Mini_json.parse
  in
  let has_metric event name =
    List.exists
      (fun json ->
        Mini_json.member "event" json = Some (Mini_json.String event)
        && Mini_json.member "name" json = Some (Mini_json.String name))
      events
  in
  check "counter snapshot present" true (has_metric "counter" counter_name);
  check "histogram snapshot present" true
    (has_metric "histogram" histogram_name)

(* ---- determinism: observability never moves a result ---------------- *)

let mc_fixture =
  lazy
    (let ctx = Context.default in
     let circuit = (Catalog.find "GHZ-3").Catalog.circuit in
     let compiled = Compiler.compile ctx.Context.q5 Compiler.baseline circuit in
     (ctx.Context.q5, compiled.Compiler.physical))

let prop_monte_carlo_unchanged_under_tracing =
  QCheck.Test.make ~count:20
    ~name:"Monte_carlo.run unchanged with a trace sink attached"
    QCheck.(pair (int_range 1 5000) (int_range 0 1000))
    (fun (trials, seed) ->
      let device, physical = Lazy.force mc_fixture in
      let run () =
        (Monte_carlo.run ~trials (Rng.make seed) device physical)
          .Monte_carlo.successes
      in
      let plain = run () in
      let traced =
        Trace.with_sink (buffer_sink (Buffer.create 4096)) run
      in
      plain = traced)

let () =
  Alcotest.run "vqc_obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "concurrent increments" `Quick
            test_counter_concurrent_increments;
          Alcotest.test_case "gauge basics" `Quick test_gauge_basics;
          Alcotest.test_case "reset zeroes in place" `Quick
            test_reset_zeroes_in_place;
          QCheck_alcotest.to_alcotest prop_counter_increments_commute;
        ] );
      ( "histograms",
        [
          Alcotest.test_case "exact quantiles" `Quick
            test_histogram_quantiles_exact;
          Alcotest.test_case "bad queries" `Quick
            test_histogram_rejects_bad_queries;
          QCheck_alcotest.to_alcotest prop_histogram_quantiles_monotone;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting and timing" `Quick
            test_with_span_nests_and_times;
          Alcotest.test_case "events reach the sink" `Quick
            test_span_events_reach_the_sink;
          QCheck_alcotest.to_alcotest prop_with_span_restores_stack_on_exception;
        ] );
      ( "trace",
        [
          Alcotest.test_case "noop mode" `Quick test_noop_mode_is_silent;
          Alcotest.test_case "lines are valid JSON" `Quick
            test_emitted_lines_are_valid_json;
          Alcotest.test_case "registry snapshot" `Quick test_snapshot_to_trace;
        ] );
      ( "determinism",
        [ QCheck_alcotest.to_alcotest prop_monte_carlo_unchanged_under_tracing ]
      );
    ]

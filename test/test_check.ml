(* Tests for the static-analysis layer: structured diagnostics, the QASM
   /circuit linter, the repository self-lint, and the plan verifier —
   including the acceptance property (every plan the in-tree compiler
   produces is proven faithful) and mutation coverage (each seeded
   corruption is caught with its specific diagnostic code). *)

module Gate = Vqc_circuit.Gate
module Circuit = Vqc_circuit.Circuit
module Qasm = Vqc_circuit.Qasm
module Calibration = Vqc_device.Calibration
module Calibration_model = Vqc_device.Calibration_model
module Device = Vqc_device.Device
module Topologies = Vqc_device.Topologies
module Layout = Vqc_mapper.Layout
module Router = Vqc_mapper.Router
module Compiler = Vqc_mapper.Compiler
module Catalog = Vqc_workloads.Catalog
module Metrics = Vqc_obs.Metrics
module Diagnostic = Vqc_diag.Diagnostic
module Lint = Vqc_check.Lint
module Verify = Vqc_check.Verify
module Selflint = Vqc_check.Selflint
module Tokens = Vqc_check.Tokens
module Rules = Vqc_check.Rules
module Calib_lint = Vqc_check.Calib_lint
module Sarif = Vqc_check.Sarif
module Baseline = Vqc_check.Baseline
module History = Vqc_device.History
module Epoch = Vqc_service.Epoch
module Protocol = Vqc_service.Protocol
module Service = Vqc_service.Service

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let cx c t = Gate.Cnot { control = c; target = t }
let h q = Gate.One_qubit (Gate.H, q)
let meas q = Gate.Measure { qubit = q; cbit = q }
let q20 () = Calibration_model.ibm_q20 ~seed:2

let codes diagnostics = List.map (fun d -> d.Diagnostic.code) diagnostics

let has_code code diagnostics =
  Alcotest.(check bool)
    (code ^ " reported") true
    (List.mem code (codes diagnostics))

let only_code code diagnostics =
  Alcotest.(check (list string)) ("exactly " ^ code) [ code ] (codes diagnostics)

(* ---- Diagnostic ----------------------------------------------------- *)

let test_diagnostic_render_deterministic () =
  let d1 =
    Diagnostic.error ~location:(Diagnostic.Line 3) Diagnostic.code_index_range
      "index out of range"
  in
  let d2 =
    Diagnostic.warning ~location:(Diagnostic.Line 1)
      Diagnostic.code_unused_qubit "unused"
  in
  (* render_list sorts, so both input orders print identically *)
  check_string "order independent"
    (Diagnostic.render_list [ d1; d2 ])
    (Diagnostic.render_list [ d2; d1 ]);
  check_string "empty list" "[]" (Diagnostic.render_list []);
  check "line 1 sorts first" true
    (Diagnostic.compare d2 d1 < 0)

let test_diagnostic_to_json_locations () =
  let json d = Vqc_obs.Json.to_string (Diagnostic.to_json d) in
  check "line location" true
    (json (Diagnostic.error ~location:(Diagnostic.Line 7) "VQC000" "m")
    = {|{"code":"VQC000","severity":"error","message":"m","line":7}|});
  check "gate location" true
    (json (Diagnostic.info ~location:(Diagnostic.Gate 2) "VQC005" "m")
    = {|{"code":"VQC005","severity":"info","message":"m","gate":2}|});
  check "nowhere has no location fields" true
    (json (Diagnostic.warning "VQC003" "m")
    = {|{"code":"VQC003","severity":"warning","message":"m"}|})

let test_diagnostic_code_table () =
  (* every stable code documents itself, new families included *)
  List.iter
    (fun code ->
      check (code ^ " described") true
        (Diagnostic.describe code <> "unknown diagnostic code"))
    (List.map fst Diagnostic.all_codes);
  List.iter
    (fun code -> check (code ^ " registered") true (List.mem_assoc code Diagnostic.all_codes))
    [
      Diagnostic.code_calib_error_range;
      Diagnostic.code_calib_coherence;
      Diagnostic.code_calib_t2_bound;
      Diagnostic.code_calib_dead_qubit;
      Diagnostic.code_calib_coupler;
      Diagnostic.code_calib_stuck_sensor;
      Diagnostic.code_determinism;
      Diagnostic.code_stdout_hygiene;
      Diagnostic.code_unguarded_state;
      Diagnostic.code_lock_shape;
      Diagnostic.code_lock_order;
    ];
  check_string "unknown code" "unknown diagnostic code"
    (Diagnostic.describe "VQC999")

(* ---- Qasm positioned diagnostics ------------------------------------ *)

let test_qasm_diag_index_range () =
  let text =
    "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\ncreg c[3];\nx q[5];\n"
  in
  match Qasm.of_string_diag text with
  | Ok _ -> Alcotest.fail "out-of-range index accepted"
  | Error d ->
    check_string "code" Diagnostic.code_index_range d.Diagnostic.code;
    check "positioned at line 5" true (d.Diagnostic.location = Diagnostic.Line 5);
    (* the plain-string API renders the same position *)
    (match Qasm.of_string text with
    | Ok _ -> Alcotest.fail "of_string accepted"
    | Error message ->
      check "message carries line" true
        (String.length message >= 7 && String.sub message 0 7 = "line 5:"))

let test_qasm_diag_identical_operands () =
  let text = "OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\ncx q[1], q[1];\n" in
  match Qasm.of_string_diag text with
  | Ok _ -> Alcotest.fail "identical operands accepted"
  | Error d ->
    check_string "code" Diagnostic.code_identical_operands d.Diagnostic.code;
    check "positioned" true (d.Diagnostic.location = Diagnostic.Line 4)

let test_qasm_diag_parse_error () =
  match Qasm.of_string_diag "OPENQASM 2.0;\nqreg q[2];\nfrobnicate q[0];\n" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error d -> check_string "code" Diagnostic.code_parse d.Diagnostic.code

(* ---- Lint ----------------------------------------------------------- *)

let lint_text = Lint.qasm

let test_lint_clean_circuit () =
  let text =
    "OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\nh q[0];\ncx q[0], q[1];\n\
     measure q[0] -> c[0];\nmeasure q[1] -> c[1];\n"
  in
  check "no diagnostics" true (lint_text text = [])

let test_lint_gate_after_measure () =
  let text =
    "OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\nmeasure q[0] -> c[0];\nx q[0];\n\
     x q[0];\nmeasure q[1] -> c[1];\n"
  in
  let diagnostics = lint_text text in
  has_code Diagnostic.code_gate_after_measure diagnostics;
  (* flagged once per qubit, at the first offending gate *)
  check_int "one report" 1
    (List.length
       (List.filter
          (fun d -> d.Diagnostic.code = Diagnostic.code_gate_after_measure)
          diagnostics))

let test_lint_unused_qubit () =
  let text = "OPENQASM 2.0;\nqreg q[3];\ncreg c[3];\nh q[0];\nh q[2];\n" in
  let unused =
    List.filter
      (fun d -> d.Diagnostic.code = Diagnostic.code_unused_qubit)
      (lint_text text)
  in
  check_int "exactly qubit 1" 1 (List.length unused);
  check "warning severity" true
    (List.for_all (fun d -> d.Diagnostic.severity = Diagnostic.Warning) unused)

let test_lint_cancellable_pairs () =
  let circuit gates n = Lint.circuit (Circuit.of_gates n gates) in
  let cancels gates n =
    List.exists
      (fun d -> d.Diagnostic.code = Diagnostic.code_cancellable_pair)
      (circuit gates n)
  in
  check "h h cancels" true (cancels [ h 0; h 0; meas 0 ] 1);
  check "s sdg cancels" true
    (cancels
       [ Gate.One_qubit (Gate.S, 0); Gate.One_qubit (Gate.Sdg, 0); meas 0 ]
       1);
  check "repeated cx cancels" true
    (cancels [ cx 0 1; cx 0 1; meas 0; meas 1 ] 2);
  check "swap either orientation" true
    (cancels [ Gate.Swap (0, 1); Gate.Swap (1, 0); meas 0; meas 1 ] 2);
  check "h x h does not" false (cancels [ h 0; Gate.One_qubit (Gate.X, 0); h 0; meas 0 ] 1);
  check "interposed gate on operand blocks" false
    (cancels [ cx 0 1; h 1; cx 0 1; meas 0; meas 1 ] 2);
  check "barrier fences" false
    (cancels [ h 0; Gate.Barrier [ 0 ]; h 0; meas 0 ] 1)

(* ---- Selflint ------------------------------------------------------- *)

(* assembled so the self-lint does not flag this test file *)
let bad_rng = "let () = " ^ "Random." ^ "self_init" ^ " ()\n"
let bad_clock = "let now = " ^ "Unix." ^ "gettimeofday" ^ " ()\n"

let test_selflint_flags_rng () =
  let diagnostics = Selflint.scan_source ~file:"lib/foo/bar.ml" bad_rng in
  check_int "one finding" 1 (List.length diagnostics);
  has_code Diagnostic.code_determinism diagnostics

let test_selflint_wall_clock_allow_list () =
  let text = "(* prelude *)\n" ^ bad_clock in
  check "flagged outside allow list" true
    (Selflint.scan_source ~file:"lib/mapper/router.ml" text <> []);
  (match Selflint.scan_source ~file:"lib/mapper/router.ml" text with
  | [ d ] ->
    check "line 2" true
      (d.Diagnostic.location
      = Diagnostic.File_line { file = "lib/mapper/router.ml"; line = 2 })
  | _ -> Alcotest.fail "expected exactly one finding");
  List.iter
    (fun file ->
      check (file ^ " allowed") true (Selflint.scan_source ~file bad_clock = []))
    Selflint.allowed_wall_clock

let test_selflint_repo_is_clean () =
  (* the committed tree must pass its own hygiene bar; run from the
     build sandbox we can only reach the real tree via the project root
     recorded by dune *)
  match Sys.getenv_opt "DUNE_SOURCEROOT" with
  | None -> ()
  | Some root -> check "repository clean" true (Selflint.scan_tree ~root = [])

(* ---- Tokens --------------------------------------------------------- *)

(* The fixtures below spell banned call names out in plain string
   literals: the tokenizer skips string contents, so the repository
   self-lint of this very file is itself a regression test for the
   comment/string immunity they assert. *)

let ident_texts text =
  List.filter_map
    (fun (t : Tokens.token) ->
      if t.Tokens.kind = Tokens.Ident then Some t.Tokens.text else None)
    (Tokens.scan text)

let test_tokens_comment_string_immunity () =
  let text =
    "(* Random.self_init, (* nested Unix.gettimeofday *) Sys.time,\n"
    ^ {|   and a string "with a closer *) and Sys.time" skipped whole *)|}
    ^ "\n"
    ^ {|let banned = "Sys.time and print_endline and Mutex.lock"|}
    ^ "\nlet quoted = {x|Random.self_init|x}\n"
    ^ "let tricky = \"escaped quote \\\" then Unix.gettimeofday\"\n"
  in
  check "comments and strings never flag" true
    (Selflint.scan_source ~file:"lib/foo/a.ml" text = []);
  (* the same names in code do flag *)
  only_code Diagnostic.code_determinism
    (Selflint.scan_source ~file:"lib/foo/a.ml" "let cpu = Sys.time ()\n")

let test_tokens_dotted_and_char () =
  check "dotted path is one token" true
    (List.mem "Unix.gettimeofday" (ident_texts "let now = Unix.gettimeofday ()"));
  let tokens = Tokens.scan "let f (x : 'a) = 'b'" in
  check "char literal lexed" true
    (List.exists
       (fun (t : Tokens.token) ->
         t.Tokens.kind = Tokens.Char && t.Tokens.text = "'b'")
       tokens);
  check "type variable is not a char" false
    (List.exists
       (fun (t : Tokens.token) ->
         t.Tokens.kind = Tokens.Char && t.Tokens.text = "'a")
       tokens)

let test_line_index_binary_search () =
  let text = "a\nbc\n\nquux\n" in
  let index = Tokens.line_index text in
  Alcotest.(check (array int)) "line offsets" [| 0; 2; 5; 6; 11 |] index;
  (* the binary search agrees with the naive prefix rescan it replaced *)
  String.iteri
    (fun position _ ->
      let naive = ref 1 in
      String.iteri (fun i c -> if i < position && c = '\n' then incr naive) text;
      check_int
        (Printf.sprintf "line of byte %d" position)
        !naive
        (Tokens.line_of index position))
    text

(* ---- Rules: source analysis ----------------------------------------- *)

let scan file text = Selflint.scan_source ~file text

let test_rule_stdout_hygiene () =
  let print = {|let () = print_endline "hi"|} ^ "\n" in
  only_code Diagnostic.code_stdout_hygiene (scan "lib/foo/a.ml" print);
  check "cli layer may print" true (scan "bin/main.ml" print = []);
  check "formatter-parameterized output is fine" true
    (scan "lib/foo/a.ml" {|let pp f = Format.fprintf f "x"|} = [])

let test_rule_unguarded_state () =
  let table = "let table = Hashtbl.create 16\n" in
  only_code Diagnostic.code_unguarded_state (scan "lib/foo/a.ml" table);
  only_code Diagnostic.code_unguarded_state
    (scan "lib/foo/a.ml" "let hits = ref 0\n");
  check "Atomic is the sanctioned form" true
    (scan "lib/foo/a.ml" "let hits = Atomic.make 0\n" = []);
  check "registration comment above" true
    (scan "lib/foo/a.ml" ("(* guarded by pool_lock *)\n" ^ table) = []);
  check "registration comment on the line" true
    (scan "lib/foo/a.ml" "let hits = ref 0 (* domain-safe: DLS *)\n" = []);
  check "local bindings are not globals" true
    (scan "lib/foo/a.ml" "let f () =\n  let hits = ref 0 in\n  !hits\n" = []);
  check "scoped to library code" true (scan "test/a.ml" table = [])

let test_rule_lock_shape () =
  let leaky = "let f m = Mutex.lock m; work ()\n" in
  (match scan "lib/foo/a.ml" leaky with
  | [ d ] ->
    check_string "code" Diagnostic.code_lock_shape d.Diagnostic.code;
    check "at the first lock" true
      (d.Diagnostic.location
      = Diagnostic.File_line { file = "lib/foo/a.ml"; line = 1 })
  | _ -> Alcotest.fail "expected exactly one finding");
  check "balanced lock/unlock" true
    (scan "lib/foo/a.ml" "let f m = Mutex.lock m; work (); Mutex.unlock m\n"
    = []);
  check "Mutex.protect counts as a release" true
    (scan "lib/foo/a.ml"
       "let f m = Mutex.lock m; work (); Mutex.unlock m\nlet g m h = Mutex.protect m h\n"
    = [])

let test_rule_lock_order () =
  let nested name_a name_b =
    Printf.sprintf
      "let f %s %s =\n  Mutex.lock %s;\n  Mutex.lock %s;\n  Mutex.unlock %s;\n  Mutex.unlock %s\n"
      name_a name_b name_a name_b name_b name_a
  in
  only_code Diagnostic.code_lock_order (scan "lib/foo/a.ml" (nested "a" "b"));
  check "canonical order nests freely" true
    (scan "lib/foo/a.ml" (nested "registry_lock" "hlock") = []);
  only_code Diagnostic.code_lock_order
    (scan "lib/foo/a.ml" (nested "hlock" "registry_lock"))

(* ---- Calib_lint ------------------------------------------------------ *)

let tenerife = Topologies.ibm_q5_tenerife

let healthy_q5 () =
  let calibration = Calibration.create 5 in
  List.iter
    (fun (u, v) -> Calibration.set_link_error calibration u v 0.05)
    tenerife;
  calibration

let calib_codes calibration =
  codes (Calib_lint.profile ~name:"t" ~coupling:tenerife calibration)

let tweak_qubit calibration q f =
  Calibration.set_qubit calibration q (f (Calibration.qubit calibration q))

let test_calib_clean_profile () =
  check "healthy profile is clean" true (calib_codes (healthy_q5 ()) = [])

let test_calib_error_range () =
  let c = healthy_q5 () in
  tweak_qubit c 0 (fun f -> { f with Calibration.error_readout = Float.nan });
  Alcotest.(check (list string))
    "NaN readout" [ Diagnostic.code_calib_error_range ] (calib_codes c);
  let c = healthy_q5 () in
  tweak_qubit c 1 (fun f -> { f with Calibration.error_1q = -0.1 });
  Alcotest.(check (list string))
    "negative rate" [ Diagnostic.code_calib_error_range ] (calib_codes c)

let test_calib_coherence () =
  let c = healthy_q5 () in
  tweak_qubit c 0 (fun f -> { f with Calibration.t1_us = 30_000.0 });
  Alcotest.(check (list string))
    "absurd T1" [ Diagnostic.code_calib_coherence ] (calib_codes c);
  let c = healthy_q5 () in
  tweak_qubit c 2 (fun f -> { f with Calibration.t2_us = 0.0 });
  Alcotest.(check (list string))
    "zero T2" [ Diagnostic.code_calib_coherence ] (calib_codes c)

let test_calib_t2_bound () =
  let c = healthy_q5 () in
  tweak_qubit c 1 (fun f -> { f with Calibration.t1_us = 40.0; t2_us = 95.0 });
  Alcotest.(check (list string))
    "T2 > 2*T1" [ Diagnostic.code_calib_t2_bound ] (calib_codes c)

let test_calib_dead_qubit () =
  let c = healthy_q5 () in
  tweak_qubit c 3 (fun f -> { f with Calibration.error_1q = 0.6 });
  Alcotest.(check (list string))
    "hot qubit" [ Diagnostic.code_calib_dead_qubit ] (calib_codes c);
  (* both endpoints of an all-dead neighbourhood are dead *)
  let pair = Calibration.create 2 in
  Calibration.set_link_error pair 0 1 0.9;
  Alcotest.(check (list string))
    "no live incident coupler"
    [ Diagnostic.code_calib_dead_qubit; Diagnostic.code_calib_dead_qubit ]
    (codes (Calib_lint.profile ~name:"t" ~coupling:[ (0, 1) ] pair))

let test_calib_coupler_asymmetry () =
  let c = healthy_q5 () in
  Calibration.set_link_error c 1 3 0.05;
  Alcotest.(check (list string))
    "calibrated non-coupler" [ Diagnostic.code_calib_coupler ] (calib_codes c);
  let c = Calibration.create 5 in
  List.iter
    (fun (u, v) ->
      if (u, v) <> (3, 4) then Calibration.set_link_error c u v 0.05)
    tenerife;
  Alcotest.(check (list string))
    "uncalibrated coupler" [ Diagnostic.code_calib_coupler ] (calib_codes c)

let test_calib_stuck_sensor () =
  (* a core error far above the generator's clamp rail pins the link's
     base at the rail; at this seed the AR(1) deviation stays positive
     across the horizon, so every day clamps to the same value: frozen,
     hence stuck — the same mechanism behind the baselined findings *)
  let params =
    {
      Calibration_model.ibm_q20_params with
      Calibration_model.error_2q =
        {
          Calibration_model.core_mean = 1.0;
          core_std = 0.0;
          bad_fraction = 0.0;
          bad_lo = 0.1;
          bad_hi = 0.18;
        };
    }
  in
  let history =
    History.generate ~days:6 ~params ~seed:8 ~coupling:[ (0, 1) ] 2
  in
  Alcotest.(check (list string))
    "frozen link" [ Diagnostic.code_calib_stuck_sensor ]
    (codes (Calib_lint.history ~name:"t" history))

let test_calib_full_sweep_is_baselined () =
  (* the exact sweep `vqc-check calib` runs: every profile, the paper's
     52-day horizon, default seed — expected clean modulo the committed
     baseline (the generator's clamp rail legitimately freezes a few
     links, and those are accepted in check-baseline.txt) *)
  let findings =
    List.concat_map
      (fun (p : Calibration_model.profile) ->
        let history =
          History.generate ~days:52 ~params:p.Calibration_model.profile_params
            ~seed:2 ~coupling:p.Calibration_model.coupling
            p.Calibration_model.qubits
        in
        Calib_lint.history ~name:p.Calibration_model.profile_name history)
      Calibration_model.profiles
  in
  check "only stuck-sensor findings" true
    (List.for_all
       (fun d -> d.Diagnostic.code = Diagnostic.code_calib_stuck_sensor)
       findings);
  check_int "pinned count" 17 (List.length findings);
  match Sys.getenv_opt "DUNE_SOURCEROOT" with
  | None -> ()
  | Some root ->
    (match Baseline.load (Filename.concat root "check-baseline.txt") with
    | Error message -> Alcotest.fail message
    | Ok baseline ->
      check "every finding is baselined" true
        (Baseline.filter_new baseline findings = []))

(* ---- Sarif ----------------------------------------------------------- *)

let json_member name = function
  | Mini_json.Obj fields ->
    (match List.assoc_opt name fields with
    | Some value -> value
    | None -> Alcotest.fail ("missing member " ^ name))
  | _ -> Alcotest.fail ("not an object around " ^ name)

let json_string = function
  | Mini_json.String s -> s
  | _ -> Alcotest.fail "not a string"

let json_list = function
  | Mini_json.List l -> l
  | _ -> Alcotest.fail "not a list"

let sarif_fixture_findings () =
  [
    Diagnostic.error
      ~location:(Diagnostic.File_line { file = "lib/a.ml"; line = 3 })
      Diagnostic.code_determinism "wall clock";
    Diagnostic.info Diagnostic.code_calib_stuck_sensor "note-level finding";
    Diagnostic.warning Diagnostic.code_unused_qubit "w";
  ]

let test_sarif_structure () =
  let sarif = Mini_json.parse (Sarif.render (sarif_fixture_findings ())) in
  check_string "$schema" Sarif.schema (json_string (json_member "$schema" sarif));
  check_string "version" "2.1.0" (json_string (json_member "version" sarif));
  let run = List.hd (json_list (json_member "runs" sarif)) in
  let driver = json_member "driver" (json_member "tool" run) in
  check_string "tool name" "vqc-check" (json_string (json_member "name" driver));
  check_int "one rule per distinct code" 3
    (List.length (json_list (json_member "rules" driver)));
  let results = json_list (json_member "results" run) in
  let levels =
    List.sort compare
      (List.map (fun r -> json_string (json_member "level" r)) results)
  in
  Alcotest.(check (list string))
    "severity mapping (Info -> note)"
    [ "error"; "note"; "warning" ] levels;
  let located =
    List.filter_map
      (fun r ->
        match r with
        | Mini_json.Obj fields when List.mem_assoc "locations" fields ->
          Some (List.hd (json_list (List.assoc "locations" fields)))
        | _ -> None)
      results
  in
  match located with
  | [ location ] ->
    let physical = json_member "physicalLocation" location in
    check_string "uri" "lib/a.ml"
      (json_string (json_member "uri" (json_member "artifactLocation" physical)));
    check "startLine" true
      (json_member "startLine" (json_member "region" physical)
      = Mini_json.Number 3.0)
  | _ -> Alcotest.fail "expected exactly one located result"

(* A deliberately small JSON-Schema evaluator — just the keywords the
   checked-in SARIF subset schema uses: type, required, properties,
   items, const, enum. *)
let rec validate_schema ~path schema json =
  let fail message = Alcotest.fail (Printf.sprintf "%s: %s" path message) in
  match schema with
  | Mini_json.Obj fields ->
    let field name = List.assoc_opt name fields in
    (match field "const" with
    | Some c when c <> json -> fail "const mismatch"
    | _ -> ());
    (match field "enum" with
    | Some (Mini_json.List choices) when not (List.mem json choices) ->
      fail "enum mismatch"
    | _ -> ());
    (match (field "type", json) with
    | Some (Mini_json.String "object"), Mini_json.Obj _
    | Some (Mini_json.String "array"), Mini_json.List _
    | Some (Mini_json.String "string"), Mini_json.String _ ->
      ()
    | Some (Mini_json.String "integer"), Mini_json.Number n
      when Float.is_integer n ->
      ()
    | Some (Mini_json.String expected), _ -> fail ("not a " ^ expected)
    | _ -> ());
    (match (field "required", json) with
    | Some (Mini_json.List names), Mini_json.Obj members ->
      List.iter
        (function
          | Mini_json.String name ->
            if not (List.mem_assoc name members) then
              fail ("missing required member " ^ name)
          | _ -> ())
        names
    | _ -> ());
    (match (field "properties", json) with
    | Some (Mini_json.Obj properties), Mini_json.Obj members ->
      List.iter
        (fun (name, value) ->
          match List.assoc_opt name properties with
          | Some subschema ->
            validate_schema ~path:(path ^ "." ^ name) subschema value
          | None -> ())
        members
    | _ -> ());
    (match (field "items", json) with
    | Some subschema, Mini_json.List elements ->
      List.iteri
        (fun i element ->
          validate_schema ~path:(Printf.sprintf "%s[%d]" path i) subschema
            element)
        elements
    | _ -> ())
  | _ -> fail "schema node is not an object"

let test_sarif_validates_against_schema () =
  (* cwd is the test directory under `dune runtest`, the project root
     under a bare `dune exec` *)
  let fixture =
    List.find Sys.file_exists
      [ "fixtures/sarif-schema.json"; "test/fixtures/sarif-schema.json" ]
  in
  let schema =
    Mini_json.parse (In_channel.with_open_text fixture In_channel.input_all)
  in
  let validate findings =
    validate_schema ~path:"$" schema (Mini_json.parse (Sarif.render findings))
  in
  validate (sarif_fixture_findings ());
  validate [];
  validate (Calib_lint.profile ~name:"t" ~coupling:[ (0, 1) ] (Calibration.create 2))

(* ---- Baseline -------------------------------------------------------- *)

let test_baseline_round_trip () =
  let located =
    Diagnostic.error
      ~location:(Diagnostic.File_line { file = "lib/a.ml"; line = 3 })
      Diagnostic.code_determinism "m1"
  in
  let nowhere = Diagnostic.error Diagnostic.code_calib_stuck_sensor "m2" in
  check_string "location-free fingerprint" "VQC125\t-\tm2"
    (Baseline.fingerprint nowhere);
  let baseline = Baseline.of_string (Baseline.render [ located; nowhere ]) in
  check "render round-trips" true
    (Baseline.filter_new baseline [ located; nowhere ] = []);
  (* fingerprints exclude the line, so moved findings stay accepted *)
  let moved =
    Diagnostic.error
      ~location:(Diagnostic.File_line { file = "lib/a.ml"; line = 9 })
      Diagnostic.code_determinism "m1"
  in
  check "line-insensitive" true (Baseline.mem baseline moved);
  let fresh = Diagnostic.error Diagnostic.code_determinism "brand new" in
  (match Baseline.partition baseline [ located; fresh ] with
  | [ f ], [ s ] ->
    check_string "fresh survives" "brand new" f.Diagnostic.message;
    check_string "known suppressed" "m1" s.Diagnostic.message
  | _ -> Alcotest.fail "expected one fresh and one suppressed");
  check "comments and blanks ignored" true
    (Baseline.mem
       (Baseline.of_string "# header\n\nVQC201\tlib/a.ml\tm1\n")
       located);
  check "empty baseline accepts nothing" false (Baseline.mem Baseline.empty located)

let test_baseline_load_missing () =
  match Baseline.load "/nonexistent/vqc-baseline.txt" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "loading a missing baseline must fail"

(* ---- scan_tree ------------------------------------------------------- *)

let test_scan_tree_layout () =
  let root = Filename.temp_file "vqc_selflint" "" in
  Sys.remove root;
  let mkdir path = Sys.mkdir path 0o755 in
  mkdir root;
  let lib = Filename.concat root "lib" in
  mkdir lib;
  mkdir (Filename.concat lib "_build");
  let write path text =
    Out_channel.with_open_text path (fun channel ->
        Out_channel.output_string channel text)
  in
  let flagged = Filename.concat lib "flagged.ml" in
  let skipped = Filename.concat (Filename.concat lib "_build") "skipped.ml" in
  let hidden = Filename.concat lib ".hidden.ml" in
  write flagged "let () = Random.self_init ()\n";
  write skipped "let () = Random.self_init ()\n";
  write hidden "let () = Random.self_init ()\n";
  Fun.protect
    ~finally:(fun () ->
      List.iter Sys.remove [ flagged; skipped; hidden ];
      List.iter Sys.rmdir [ Filename.concat lib "_build"; lib; root ])
    (fun () ->
      match Selflint.scan_tree ~root with
      | [ d ] ->
        check_string "code" Diagnostic.code_determinism d.Diagnostic.code;
        check "root-relative path" true
          (d.Diagnostic.location
          = Diagnostic.File_line { file = "lib/flagged.ml"; line = 1 })
      | diagnostics ->
        Alcotest.fail
          (Printf.sprintf "expected one finding, got %d"
             (List.length diagnostics)))

(* ---- Verify: acceptance --------------------------------------------- *)

let accept_policies =
  [
    Compiler.baseline;
    Compiler.vqm;
    Compiler.vqa_vqm;
    Compiler.vqm_bridge;
    Compiler.sabre;
    Compiler.noise_sabre;
  ]

let test_verifier_accepts_catalog () =
  let device = q20 () in
  List.iter
    (fun (entry : Catalog.entry) ->
      List.iter
        (fun policy ->
          let plan = Compiler.compile device policy entry.Catalog.circuit in
          let diagnostics = Verify.compiled device entry.Catalog.circuit plan in
          Alcotest.(check (list string))
            (entry.Catalog.name ^ "/" ^ policy.Compiler.label)
            [] (codes diagnostics))
        accept_policies)
    Catalog.all

let gen_program =
  QCheck2.Gen.(
    let* n = int_range 2 8 in
    let gate =
      let* kind = int_bound 4 in
      let* q = int_bound (n - 1) in
      match kind with
      | 0 | 1 ->
        let* other = int_bound (n - 2) in
        let t = if other >= q then other + 1 else other in
        return (cx q t)
      | 2 -> return (h q)
      | 3 ->
        let* other = int_bound (n - 2) in
        let t = if other >= q then other + 1 else other in
        return (Gate.Swap (q, t))
      | _ -> return (meas q)
    in
    let* gates = list_size (int_bound 25) gate in
    return (Circuit.of_gates n gates))

let prop_verifier_accepts_random_plans =
  QCheck2.Test.make ~name:"verifier accepts every compiled plan" ~count:60
    gen_program (fun program ->
      let device = q20 () in
      List.for_all
        (fun policy ->
          let plan = Compiler.compile device policy program in
          Verify.compiled device program plan = [])
        [ Compiler.baseline; Compiler.vqa_vqm; Compiler.vqm_bridge;
          Compiler.sabre ])

(* ---- Verify: mutations ---------------------------------------------- *)

let compiled_subject device source (plan : Compiler.compiled) =
  {
    Verify.device;
    source;
    physical = plan.Compiler.physical;
    initial = plan.Compiler.initial;
    final = plan.Compiler.final;
    swaps_inserted = plan.Compiler.stats.Router.swaps_inserted;
  }

(* A plan guaranteed to contain inserted SWAPs: qft-12 is dense. *)
let swapful_plan device =
  let source = (Catalog.find "qft-12").Catalog.circuit in
  let plan = Compiler.compile device Compiler.vqm source in
  check "plan has inserted swaps" true
    (plan.Compiler.stats.Router.swaps_inserted > 0);
  (source, plan)

let with_physical subject gates =
  {
    subject with
    Verify.physical =
      Circuit.of_gates
        ~cbits:(Circuit.num_cbits subject.Verify.physical)
        (Circuit.num_qubits subject.Verify.physical)
        gates;
  }

let test_mutation_dropped_swap () =
  let device = q20 () in
  let source, plan = swapful_plan device in
  let subject = compiled_subject device source plan in
  (* qft-12 has no program SWAPs, so every physical SWAP was inserted *)
  let dropped = ref false in
  let gates =
    List.filter
      (fun gate ->
        match gate with
        | Gate.Swap _ when not !dropped ->
          dropped := true;
          false
        | _ -> true)
      (Circuit.gates plan.Compiler.physical)
  in
  check "a swap was dropped" true !dropped;
  (* the layouts diverge at the missing SWAP, so the first gate that
     relied on it fails to match any ready source gate *)
  let diagnostics = Verify.check (with_physical subject gates) in
  check "rejected" true (Diagnostic.has_errors diagnostics);
  has_code Diagnostic.code_replay_mismatch diagnostics

let test_mutation_swapped_cnot_operands () =
  let device = q20 () in
  let source, plan = swapful_plan device in
  let subject = compiled_subject device source plan in
  let flipped = ref false in
  let gates =
    List.map
      (fun gate ->
        match gate with
        | Gate.Cnot { control; target } when not !flipped ->
          flipped := true;
          Gate.Cnot { control = target; target = control }
        | gate -> gate)
      (Circuit.gates plan.Compiler.physical)
  in
  check "a cnot was flipped" true !flipped;
  let diagnostics = Verify.check (with_physical subject gates) in
  check "rejected" true (Diagnostic.has_errors diagnostics);
  has_code Diagnostic.code_replay_mismatch diagnostics

let test_mutation_remapped_measurement () =
  let device = q20 () in
  let source, plan = swapful_plan device in
  let subject = compiled_subject device source plan in
  let remapped = ref false in
  let gates =
    List.map
      (fun gate ->
        match gate with
        | Gate.Measure { qubit; cbit } when not !remapped ->
          remapped := true;
          Gate.Measure { qubit; cbit = (cbit + 1) mod 12 }
        | gate -> gate)
      (Circuit.gates plan.Compiler.physical)
  in
  check "a measurement was remapped" true !remapped;
  let diagnostics = Verify.check (with_physical subject gates) in
  check "rejected" true (Diagnostic.has_errors diagnostics);
  has_code Diagnostic.code_measurement_mapping diagnostics

let test_mutation_inflated_swap_count () =
  let device = q20 () in
  let source, plan = swapful_plan device in
  let subject = compiled_subject device source plan in
  let diagnostics =
    Verify.check
      { subject with Verify.swaps_inserted = subject.Verify.swaps_inserted + 1 }
  in
  Alcotest.(check (list string))
    "only the accounting is wrong"
    [ Diagnostic.code_swap_count ] (codes diagnostics)

let test_mutation_corrupted_final_layout () =
  let device = q20 () in
  let source, plan = swapful_plan device in
  let subject = compiled_subject device source plan in
  let assignment = Layout.assignment plan.Compiler.final in
  let tmp = assignment.(0) in
  assignment.(0) <- assignment.(1);
  assignment.(1) <- tmp;
  let corrupted =
    Layout.of_assignment ~physicals:(Device.num_qubits device) assignment
  in
  let diagnostics = Verify.check { subject with Verify.final = corrupted } in
  Alcotest.(check (list string))
    "final layout mismatch"
    [ Diagnostic.code_final_layout ] (codes diagnostics)

let test_mutation_truncated_physical () =
  let device = q20 () in
  let source, plan = swapful_plan device in
  let subject = compiled_subject device source plan in
  let gates = Circuit.gates plan.Compiler.physical in
  let truncated = List.filteri (fun i _ -> i < List.length gates - 1) gates in
  let diagnostics = Verify.check (with_physical subject truncated) in
  check "rejected" true (Diagnostic.has_errors diagnostics);
  has_code Diagnostic.code_unreplayed_gates diagnostics

let test_mutation_illegal_coupling () =
  let device = q20 () in
  (* a hand-built "plan" that routes cx 0,1 onto an uncoupled pair *)
  let far =
    match
      List.find_opt
        (fun q -> not (Device.connected device 0 q))
        (List.init (Device.num_qubits device - 1) (fun i -> i + 1))
    with
    | Some q -> q
    | None -> Alcotest.fail "Q20 is not a clique"
  in
  let source = Circuit.of_gates ~cbits:2 2 [ cx 0 1; meas 0; meas 1 ] in
  let layout =
    Layout.of_assignment ~physicals:(Device.num_qubits device) [| 0; far |]
  in
  let physical =
    Circuit.of_gates ~cbits:2 (Device.num_qubits device)
      [
        Gate.Cnot { control = 0; target = far };
        Gate.Measure { qubit = 0; cbit = 0 };
        Gate.Measure { qubit = far; cbit = 1 };
      ]
  in
  let diagnostics =
    Verify.check
      {
        Verify.device;
        source;
        physical;
        initial = layout;
        final = layout;
        swaps_inserted = 0;
      }
  in
  Alcotest.(check (list string))
    "illegal coupling"
    [ Diagnostic.code_illegal_coupling ] (codes diagnostics)

let test_mutation_corrupt_calibration () =
  let device = q20 () in
  let source = (Catalog.find "bv-16").Catalog.circuit in
  let plan = Compiler.compile device Compiler.baseline source in
  let calibration = Calibration.copy (Device.calibration device) in
  let qubit = Calibration.qubit calibration 0 in
  Calibration.set_qubit calibration 0
    { qubit with Calibration.error_1q = 1.5 };
  let corrupted = Device.with_calibration device calibration in
  let diagnostics =
    Verify.check (compiled_subject corrupted source plan)
  in
  check "rejected" true (Diagnostic.has_errors diagnostics);
  has_code Diagnostic.code_calibration diagnostics

let test_mutation_malformed_shape () =
  let device = q20 () in
  let source = Circuit.of_gates ~cbits:1 1 [ h 0; meas 0 ] in
  (* layout for 3 program qubits against a 1-qubit source *)
  let layout =
    Layout.of_assignment ~physicals:(Device.num_qubits device) [| 0; 1; 2 |]
  in
  let physical =
    Circuit.of_gates ~cbits:1 (Device.num_qubits device)
      [ h 0; Gate.Measure { qubit = 0; cbit = 0 } ]
  in
  let diagnostics =
    Verify.check
      {
        Verify.device;
        source;
        physical;
        initial = layout;
        final = layout;
        swaps_inserted = 0;
      }
  in
  check "rejected" true (Diagnostic.has_errors diagnostics);
  has_code Diagnostic.code_malformed_plan diagnostics

(* ---- compiler hook --------------------------------------------------- *)

let test_compiler_hook_verifies () =
  let device = q20 () in
  let source = (Catalog.find "bv-16").Catalog.circuit in
  Verify.install_compiler_check ();
  Fun.protect ~finally:Verify.uninstall_compiler_check (fun () ->
      let before = Metrics.counter_value (Metrics.counter "check.plans") in
      let plan = Compiler.compile device Compiler.vqm source in
      check "plan produced" true (Circuit.length plan.Compiler.physical > 0);
      let after = Metrics.counter_value (Metrics.counter "check.plans") in
      check "check counted" true (after > before))

(* ---- service integration --------------------------------------------- *)

let epochs () =
  let history =
    Vqc_device.History.generate ~days:2 ~seed:2
      ~coupling:Topologies.ibm_q20_tokyo 20
  in
  Epoch.of_history ~name:"Q20" ~coupling:Topologies.ibm_q20_tokyo history

let submit_ok service request =
  match Service.submit service request with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "submission rejected"

let request workload =
  {
    Protocol.id = None;
    source = Protocol.Workload workload;
    policy = "vqa+vqm";
    epoch = None;
    estimate = None;
  }

let test_service_verify_serves_and_rehits () =
  let config = { Service.default_config with Service.verify = true } in
  Service.with_service ~config (epochs ()) (fun service ->
      submit_ok service (request "bv-16");
      (match Service.flush service with
      | [ Protocol.Compiled { cache = Protocol.Miss; _ } ] -> ()
      | _ -> Alcotest.fail "expected one verified miss");
      let ok_before = Metrics.counter_value (Metrics.counter "service.verify.ok") in
      submit_ok service (request "bv-16");
      (match Service.flush service with
      | [ Protocol.Compiled { cache = Protocol.Hit; _ } ] -> ()
      | _ -> Alcotest.fail "expected one verified hit");
      let ok_after = Metrics.counter_value (Metrics.counter "service.verify.ok") in
      check "cache hit was re-verified" true (ok_after > ok_before))

let test_service_verify_matches_unverified_plans () =
  (* --verify must not change the deterministic fields of valid plans *)
  let run verify =
    let config = { Service.default_config with Service.verify } in
    Service.with_service ~config (epochs ()) (fun service ->
        submit_ok service (request "qft-12");
        submit_ok service (request "bv-16");
        List.map Protocol.render (Service.flush service))
  in
  let strip line =
    (* drop the "nd" tail: deterministic prefix ends at ,"nd": *)
    match String.index_opt line 'n' with
    | _ ->
      let marker = {|,"nd":|} in
      let rec find i =
        if i + String.length marker > String.length line then line
        else if String.sub line i (String.length marker) = marker then
          String.sub line 0 i
        else find (i + 1)
      in
      find 0
  in
  Alcotest.(check (list string))
    "identical deterministic fields"
    (List.map strip (run false))
    (List.map strip (run true))

let test_protocol_invalid_render () =
  let response =
    Protocol.Invalid
      {
        id = Some (Vqc_obs.Json.Int 9);
        diagnostics =
          [
            Diagnostic.error ~location:(Diagnostic.Gate 4)
              Diagnostic.code_replay_mismatch "physical gate matches nothing";
          ];
        cache = Protocol.Hit;
        seconds = 0.25;
      }
  in
  check_string "wire form"
    ({|{"id":9,"status":"invalid","diagnostics":[{"code":"VQC102",|}
    ^ {|"severity":"error","message":"physical gate matches nothing",|}
    ^ {|"gate":4}],"nd":{"cache":"hit","seconds":0.25}}|})
    (Protocol.render response)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "vqc_check"
    [
      ( "diagnostic",
        [
          Alcotest.test_case "deterministic rendering" `Quick
            test_diagnostic_render_deterministic;
          Alcotest.test_case "json locations" `Quick
            test_diagnostic_to_json_locations;
          Alcotest.test_case "code table" `Quick test_diagnostic_code_table;
        ] );
      ( "tokens",
        [
          Alcotest.test_case "comment/string immunity" `Quick
            test_tokens_comment_string_immunity;
          Alcotest.test_case "dotted paths and chars" `Quick
            test_tokens_dotted_and_char;
          Alcotest.test_case "line index" `Quick test_line_index_binary_search;
        ] );
      ( "rules",
        [
          Alcotest.test_case "stdout hygiene" `Quick test_rule_stdout_hygiene;
          Alcotest.test_case "unguarded state" `Quick test_rule_unguarded_state;
          Alcotest.test_case "lock shape" `Quick test_rule_lock_shape;
          Alcotest.test_case "lock order" `Quick test_rule_lock_order;
        ] );
      ( "calib",
        [
          Alcotest.test_case "clean profile" `Quick test_calib_clean_profile;
          Alcotest.test_case "error range" `Quick test_calib_error_range;
          Alcotest.test_case "coherence range" `Quick test_calib_coherence;
          Alcotest.test_case "t2 bound" `Quick test_calib_t2_bound;
          Alcotest.test_case "dead qubit" `Quick test_calib_dead_qubit;
          Alcotest.test_case "coupler asymmetry" `Quick
            test_calib_coupler_asymmetry;
          Alcotest.test_case "stuck sensor" `Quick test_calib_stuck_sensor;
          Alcotest.test_case "full sweep baselined" `Slow
            test_calib_full_sweep_is_baselined;
        ] );
      ( "sarif",
        [
          Alcotest.test_case "structure" `Quick test_sarif_structure;
          Alcotest.test_case "schema validation" `Quick
            test_sarif_validates_against_schema;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "round trip" `Quick test_baseline_round_trip;
          Alcotest.test_case "missing file" `Quick test_baseline_load_missing;
        ] );
      ( "qasm",
        [
          Alcotest.test_case "index range positioned" `Quick
            test_qasm_diag_index_range;
          Alcotest.test_case "identical operands" `Quick
            test_qasm_diag_identical_operands;
          Alcotest.test_case "parse error" `Quick test_qasm_diag_parse_error;
        ] );
      ( "lint",
        [
          Alcotest.test_case "clean circuit" `Quick test_lint_clean_circuit;
          Alcotest.test_case "gate after measure" `Quick
            test_lint_gate_after_measure;
          Alcotest.test_case "unused qubit" `Quick test_lint_unused_qubit;
          Alcotest.test_case "cancellable pairs" `Quick
            test_lint_cancellable_pairs;
        ] );
      ( "selflint",
        [
          Alcotest.test_case "flags rng" `Quick test_selflint_flags_rng;
          Alcotest.test_case "wall clock allow list" `Quick
            test_selflint_wall_clock_allow_list;
          Alcotest.test_case "repository clean" `Quick
            test_selflint_repo_is_clean;
          Alcotest.test_case "tree walk" `Quick test_scan_tree_layout;
        ] );
      ( "verify",
        [
          Alcotest.test_case "accepts catalog plans" `Slow
            test_verifier_accepts_catalog;
        ]
        @ qcheck [ prop_verifier_accepts_random_plans ] );
      ( "mutations",
        [
          Alcotest.test_case "dropped swap" `Quick test_mutation_dropped_swap;
          Alcotest.test_case "swapped cnot operands" `Quick
            test_mutation_swapped_cnot_operands;
          Alcotest.test_case "remapped measurement" `Quick
            test_mutation_remapped_measurement;
          Alcotest.test_case "inflated swap count" `Quick
            test_mutation_inflated_swap_count;
          Alcotest.test_case "corrupted final layout" `Quick
            test_mutation_corrupted_final_layout;
          Alcotest.test_case "truncated physical" `Quick
            test_mutation_truncated_physical;
          Alcotest.test_case "illegal coupling" `Quick
            test_mutation_illegal_coupling;
          Alcotest.test_case "corrupt calibration" `Quick
            test_mutation_corrupt_calibration;
          Alcotest.test_case "malformed shape" `Quick
            test_mutation_malformed_shape;
        ] );
      ( "integration",
        [
          Alcotest.test_case "compiler hook" `Quick test_compiler_hook_verifies;
          Alcotest.test_case "service verify on" `Quick
            test_service_verify_serves_and_rehits;
          Alcotest.test_case "verify does not perturb plans" `Slow
            test_service_verify_matches_unverified_plans;
          Alcotest.test_case "invalid wire form" `Quick
            test_protocol_invalid_render;
        ] );
    ]

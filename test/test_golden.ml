(* Golden-output regression harness: the experiment renders ARE the
   product of this reproduction, so they are pinned byte-for-byte
   against committed expected files.  A mismatch fails with a unified
   diff; `dune promote` (via the sibling golden_gen rules) regenerates
   the expected files intentionally.

   The same suite pins the no-perturbation rule: attaching a trace sink
   or changing the worker count must not move a single output byte. *)

module Registry = Vqc_experiments.Registry
module Context = Vqc_experiments.Context
module Pool = Vqc_engine.Pool
module Trace = Vqc_obs.Trace
module Metrics = Vqc_obs.Metrics

let check = Alcotest.(check bool)

(* Must stay in sync with the golden_gen rules in test/dune. *)
let golden_ids = [ "tab1"; "abl-model"; "tab2"; "abl-mc"; "fig12" ]

let render ?(jobs = 1) id =
  let ctx = Context.default |> Context.with_jobs jobs in
  let buffer = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buffer in
  (Registry.find id).Registry.run ppf ctx;
  Format.pp_print_flush ppf ();
  Buffer.contents buffer

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* ---- unified diff --------------------------------------------------- *)

let unified_diff ~expected ~actual =
  if String.equal expected actual then None
  else begin
    let a = Array.of_list (String.split_on_char '\n' expected) in
    let b = Array.of_list (String.split_on_char '\n' actual) in
    let n = Array.length a and m = Array.length b in
    (* lcs.(i).(j): LCS length of a[i..] and b[j..] *)
    let lcs = Array.make_matrix (n + 1) (m + 1) 0 in
    for i = n - 1 downto 0 do
      for j = m - 1 downto 0 do
        lcs.(i).(j) <-
          (if a.(i) = b.(j) then 1 + lcs.(i + 1).(j + 1)
           else max lcs.(i + 1).(j) lcs.(i).(j + 1))
      done
    done;
    let script = ref [] in
    let i = ref 0 and j = ref 0 in
    while !i < n || !j < m do
      if !i < n && !j < m && a.(!i) = b.(!j) then begin
        script := (' ', a.(!i)) :: !script;
        incr i;
        incr j
      end
      else if !j < m && (!i = n || lcs.(!i).(!j + 1) >= lcs.(!i + 1).(!j))
      then begin
        script := ('+', b.(!j)) :: !script;
        incr j
      end
      else begin
        script := ('-', a.(!i)) :: !script;
        incr i
      end
    done;
    let script = Array.of_list (List.rev !script) in
    let length = Array.length script in
    (* old/new line number before each script entry (0-based) *)
    let old_pos = Array.make (length + 1) 0 in
    let new_pos = Array.make (length + 1) 0 in
    Array.iteri
      (fun k (tag, _) ->
        old_pos.(k + 1) <- (old_pos.(k) + if tag = '+' then 0 else 1);
        new_pos.(k + 1) <- (new_pos.(k) + if tag = '-' then 0 else 1))
      script;
    (* keep changed entries plus 3 lines of context, grouped into hunks *)
    let context = 3 in
    let keep = Array.make length false in
    Array.iteri
      (fun k (tag, _) ->
        if tag <> ' ' then
          for d = max 0 (k - context) to min (length - 1) (k + context) do
            keep.(d) <- true
          done)
      script;
    let buffer = Buffer.create 1024 in
    Buffer.add_string buffer "--- expected\n+++ actual\n";
    let k = ref 0 in
    while !k < length do
      if not keep.(!k) then incr k
      else begin
        let start = !k in
        let stop = ref start in
        while !stop < length && keep.(!stop) do
          incr stop
        done;
        let old_count = old_pos.(!stop) - old_pos.(start) in
        let new_count = new_pos.(!stop) - new_pos.(start) in
        Buffer.add_string buffer
          (Printf.sprintf "@@ -%d,%d +%d,%d @@\n"
             (old_pos.(start) + 1)
             old_count
             (new_pos.(start) + 1)
             new_count);
        for d = start to !stop - 1 do
          let tag, line = script.(d) in
          Buffer.add_char buffer tag;
          Buffer.add_string buffer line;
          Buffer.add_char buffer '\n'
        done;
        k := !stop
      end
    done;
    Some (Buffer.contents buffer)
  end

(* ---- golden comparisons --------------------------------------------- *)

let test_golden id () =
  let expected = read_file (Filename.concat "golden" (id ^ ".expected")) in
  match unified_diff ~expected ~actual:(render id) with
  | None -> ()
  | Some diff ->
    Alcotest.fail
      (Printf.sprintf
         "%s drifted from test/golden/%s.expected\n\
          %s\n\
          If the change is intentional, regenerate with `dune runtest` + \
          `dune promote`."
         id id diff)

let test_detects_one_char_perturbation () =
  let expected = read_file "golden/tab1.expected" in
  check "expected file is non-trivial" true (String.length expected > 100);
  let perturbed = Bytes.of_string expected in
  let position = Bytes.length perturbed / 2 in
  let original = Bytes.get perturbed position in
  Bytes.set perturbed position (if original = 'x' then 'y' else 'x');
  match unified_diff ~expected:(Bytes.to_string perturbed) ~actual:expected with
  | None -> Alcotest.fail "a 1-character perturbation went undetected"
  | Some diff ->
    check "diff has a removal" true (String.length diff > 0 &&
      List.exists
        (fun l -> String.length l > 0 && l.[0] = '-')
        (String.split_on_char '\n' diff));
    check "diff has an addition" true
      (List.exists
         (fun l -> String.length l > 0 && l.[0] = '+')
         (String.split_on_char '\n' diff))

let test_diff_of_equal_is_none () =
  check "no diff for equal" true
    (unified_diff ~expected:"a\nb\n" ~actual:"a\nb\n" = None)

(* ---- the no-perturbation rule --------------------------------------- *)

(* abl-mc exercises compiler + Monte-Carlo, so it would catch an
   instrumentation bug that consumed RNG or wrote into the report. *)

let test_trace_sink_does_not_perturb_output () =
  let plain = render "abl-mc" in
  let captured = Buffer.create 4096 in
  let traced =
    Trace.with_sink
      {
        write = (fun line -> Buffer.add_string captured line);
        flush = ignore;
      }
      (fun () -> render "abl-mc")
  in
  Alcotest.(check string) "byte-identical with a sink attached" plain traced;
  check "the sink actually saw events" true (Buffer.length captured > 0)

let test_jobs_do_not_perturb_output () =
  Alcotest.(check string)
    "jobs=1 = jobs=4" (render ~jobs:1 "abl-mc") (render ~jobs:4 "abl-mc")

(* CLI-shaped end-to-end check: fan experiment ids across a pool the way
   bin/experiments.ml does, with a JSONL trace file attached, and pin
   (a) stdout bytes across worker counts, (b) trace validity, (c) that
   engine, sim, and mapper all reported. *)
let test_cli_fanout_trace_and_bytes () =
  let ids = [ "tab1"; "abl-mc" ] in
  let fan_out jobs =
    Pool.with_pool ~jobs (fun pool ->
        Pool.map pool ~f:(fun _ id -> render ~jobs id) ids)
    |> String.concat ""
  in
  let path = Filename.temp_file "vqc_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let parallel =
        Trace.with_file path (fun () ->
            let output = fan_out 2 in
            Metrics.snapshot_to_trace ();
            output)
      in
      Alcotest.(check string) "stdout bytes: jobs=1 = jobs=2" (fan_out 1)
        parallel;
      let lines =
        read_file path |> String.split_on_char '\n'
        |> List.filter (fun l -> l <> "")
      in
      check "trace is non-empty" true (lines <> []);
      let sources =
        List.map
          (fun line ->
            match Mini_json.parse line with
            | exception Mini_json.Invalid reason ->
              Alcotest.fail
                (Printf.sprintf "invalid JSONL line (%s): %s" reason line)
            | json -> (
              match Mini_json.member "source" json with
              | Some (Mini_json.String source) -> source
              | _ -> Alcotest.fail ("event without source: " ^ line)))
          lines
        |> List.sort_uniq compare
      in
      List.iter
        (fun source ->
          check (source ^ " events present") true (List.mem source sources))
        [ "engine"; "sim"; "mapper"; "metrics" ])

let () =
  Alcotest.run "vqc_golden"
    [
      ( "golden",
        List.map
          (fun id -> Alcotest.test_case id `Slow (test_golden id))
          golden_ids );
      ( "harness",
        [
          Alcotest.test_case "1-char perturbation detected" `Quick
            test_detects_one_char_perturbation;
          Alcotest.test_case "equal inputs diff to nothing" `Quick
            test_diff_of_equal_is_none;
        ] );
      ( "no-perturbation",
        [
          Alcotest.test_case "trace sink leaves stdout untouched" `Slow
            test_trace_sink_does_not_perturb_output;
          Alcotest.test_case "worker count leaves stdout untouched" `Slow
            test_jobs_do_not_perturb_output;
          Alcotest.test_case "cli fan-out: bytes + valid JSONL" `Slow
            test_cli_fanout_trace_and_bytes;
        ] );
    ]

(* Minimal strict JSON parser, used by the test suites to assert that
   every line the trace sink writes is valid JSON.  Parsing lives in the
   tests on purpose: the library only ever emits. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Invalid of string

let parse text =
  let pos = ref 0 in
  let len = String.length text in
  let fail message = raise (Invalid (Printf.sprintf "%s at %d" message !pos)) in
  let peek () = if !pos < len then Some text.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let skip_ws () =
    while
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') -> true
      | _ -> false
    do
      advance ()
    done
  in
  let literal word value =
    if !pos + String.length word <= len
       && String.sub text !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buffer = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char buffer '"'; advance ()
        | Some '\\' -> Buffer.add_char buffer '\\'; advance ()
        | Some '/' -> Buffer.add_char buffer '/'; advance ()
        | Some 'n' -> Buffer.add_char buffer '\n'; advance ()
        | Some 'r' -> Buffer.add_char buffer '\r'; advance ()
        | Some 't' -> Buffer.add_char buffer '\t'; advance ()
        | Some 'b' -> Buffer.add_char buffer '\b'; advance ()
        | Some 'f' -> Buffer.add_char buffer '\012'; advance ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > len then fail "truncated \\u escape";
          let hex = String.sub text !pos 4 in
          String.iter
            (fun c ->
              match c with
              | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> ()
              | _ -> fail "bad \\u escape")
            hex;
          (* tests only check validity; escaped code points render as ? *)
          Buffer.add_char buffer '?';
          pos := !pos + 4
        | _ -> fail "bad escape");
        loop ()
      | Some c when Char.code c < 0x20 -> fail "raw control char in string"
      | Some c ->
        Buffer.add_char buffer c;
        advance ();
        loop ()
    in
    loop ();
    Buffer.contents buffer
  in
  let parse_number () =
    let start = !pos in
    let number_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while match peek () with Some c -> number_char c | None -> false do
      advance ()
    done;
    let s = String.sub text start (!pos - start) in
    match float_of_string_opt s with
    | Some f -> f
    | None -> fail ("bad number " ^ s)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let value = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, value) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((key, value) :: acc)
          | _ -> fail "expected , or }"
        in
        Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let value = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (value :: acc)
          | Some ']' ->
            advance ();
            List.rev (value :: acc)
          | _ -> fail "expected , or ]"
        in
        List (items [])
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Number (parse_number ())
  in
  let value = parse_value () in
  skip_ws ();
  if !pos <> len then fail "trailing garbage";
  value

let member key json =
  match json with
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

(* Tests for the adaptive confidence-bounded estimator: interval
   mathematics (unit + qcheck properties), the determinism contract of
   run/run_adaptive, and a differential oracle against the exact
   density-matrix simulator on every small catalog circuit under every
   serving policy. *)

module Estimator = Vqc_sim.Estimator
module Monte_carlo = Vqc_sim.Monte_carlo
module Pool = Vqc_engine.Pool
module Rng = Vqc_rng.Rng
module Catalog = Vqc_workloads.Catalog
module Compiler = Vqc_mapper.Compiler
module Policies = Vqc_service.Policies
module Context = Vqc_experiments.Context
module Sv = Vqc_statevector.Statevector
module Density = Vqc_statevector.Density
module Trajectory = Vqc_statevector.Trajectory

let check = Alcotest.(check bool)

let raises_invalid f =
  try
    ignore (f ());
    false
  with Invalid_argument _ -> true

(* ---- z_score -------------------------------------------------------- *)

let test_z_score_values () =
  let near expected got = Float.abs (expected -. got) < 2e-4 in
  check "95%" true (near 1.9600 (Estimator.z_score ~confidence:0.95));
  check "99%" true (near 2.5758 (Estimator.z_score ~confidence:0.99));
  check "90%" true (near 1.6449 (Estimator.z_score ~confidence:0.90));
  check "monotone in confidence" true
    (Estimator.z_score ~confidence:0.999 > Estimator.z_score ~confidence:0.95);
  check "rejects 0" true
    (raises_invalid (fun () -> Estimator.z_score ~confidence:0.0));
  check "rejects 1" true
    (raises_invalid (fun () -> Estimator.z_score ~confidence:1.0))

(* ---- interval constructions ----------------------------------------- *)

let test_interval_edge_cases () =
  (* Wilson stays informative at the extremes where Wald collapses *)
  let w = Estimator.wilson_interval ~confidence:0.95 ~trials:1000 ~successes:0 in
  check "wilson zero successes: nonzero width" true
    (Estimator.interval_half_width w > 0.0);
  check "wilson zero successes: lower near 0" true (w.Estimator.lower < 1e-6);
  let b = Estimator.bernstein_interval ~confidence:0.95 ~trials:1 ~successes:1 in
  check "bernstein single trial vacuous" true
    (b.Estimator.lower = 0.0 && b.Estimator.upper = 1.0);
  check "rejects trials < 1" true
    (raises_invalid (fun () ->
         Estimator.wilson_interval ~confidence:0.95 ~trials:0 ~successes:0));
  check "rejects successes > trials" true
    (raises_invalid (fun () ->
         Estimator.bernstein_interval ~confidence:0.95 ~trials:5 ~successes:6))

(* qcheck: both intervals are well-formed, clamped to [0, 1], contain
   the empirical mean, and tighten monotonically as the sample grows at
   a fixed success rate. *)

let trials_successes_gen =
  QCheck2.Gen.(
    bind (int_range 1 100_000) (fun trials ->
        map (fun successes -> (trials, successes)) (int_range 0 trials)))

let prop_intervals_contain_mean =
  QCheck2.Test.make ~name:"intervals contain the empirical mean" ~count:500
    trials_successes_gen (fun (trials, successes) ->
      let mean = float_of_int successes /. float_of_int trials in
      let inside i = i.Estimator.lower <= mean && mean <= i.Estimator.upper in
      let clamped i =
        i.Estimator.lower >= 0.0
        && i.Estimator.upper <= 1.0
        && i.Estimator.lower <= i.Estimator.upper
      in
      let w = Estimator.wilson_interval ~confidence:0.95 ~trials ~successes in
      let b =
        Estimator.bernstein_interval ~confidence:0.95 ~trials ~successes
      in
      inside w && inside b && clamped w && clamped b)

let prop_half_widths_shrink =
  QCheck2.Test.make ~name:"half-widths shrink as the sample grows"
    ~count:200
    QCheck2.Gen.(
      pair (int_range 8 4096) (int_range 1 7) |> map (fun ((t, k) : int * int) -> (t, k)))
    (fun (trials, num) ->
      (* keep the success rate fixed while scaling the sample 10x *)
      let successes = trials * num / 8 in
      let big_trials = trials * 10 in
      let big_successes = successes * 10 in
      let hw f = Estimator.interval_half_width f in
      let w = Estimator.wilson_interval ~confidence:0.95 ~trials ~successes in
      let w10 =
        Estimator.wilson_interval ~confidence:0.95 ~trials:big_trials
          ~successes:big_successes
      in
      let b =
        Estimator.bernstein_interval ~confidence:0.95 ~trials ~successes
      in
      let b10 =
        Estimator.bernstein_interval ~confidence:0.95 ~trials:big_trials
          ~successes:big_successes
      in
      hw w10 < hw w +. 1e-12 && hw b10 < hw b +. 1e-12)

(* coverage: over seeded Bernoulli replications the 95% Wilson interval
   must cover the true parameter at roughly its nominal rate (binomial
   fluctuation allowed; the seed is fixed so the test is deterministic) *)
let test_wilson_coverage () =
  let p = 0.3 in
  let trials = 800 in
  let replications = 300 in
  let rng = Rng.make 42 in
  let covered = ref 0 in
  for _ = 1 to replications do
    let successes = ref 0 in
    for _ = 1 to trials do
      if Rng.float rng < p then incr successes
    done;
    let w =
      Estimator.wilson_interval ~confidence:0.95 ~trials ~successes:!successes
    in
    if w.Estimator.lower <= p && p <= w.Estimator.upper then incr covered
  done;
  let rate = float_of_int !covered /. float_of_int replications in
  check "coverage near nominal" true (rate >= 0.90 && rate <= 1.0)

(* ---- config validation ---------------------------------------------- *)

let test_validate_config () =
  let base = Estimator.default_config in
  let bad mutate =
    match Estimator.validate_config (mutate base) with
    | Ok _ -> false
    | Error _ -> true
  in
  check "default ok" true
    (match Estimator.validate_config base with Ok _ -> true | Error _ -> false);
  check "confidence 0" true (bad (fun c -> { c with Estimator.confidence = 0.0 }));
  check "confidence 1" true (bad (fun c -> { c with Estimator.confidence = 1.0 }));
  check "negative precision" true
    (bad (fun c -> { c with Estimator.precision = -1e-3 }));
  check "nan precision" true
    (bad (fun c -> { c with Estimator.precision = Float.nan }));
  check "zero budget" true (bad (fun c -> { c with Estimator.max_trials = 0 }));
  check "batch not a chunk multiple" true
    (bad (fun c -> { c with Estimator.batch_trials = Estimator.chunk_trials + 1 }));
  check "zero batch" true (bad (fun c -> { c with Estimator.batch_trials = 0 }))

(* ---- Estimator.run on a synthetic kernel ---------------------------- *)

(* a deterministic Bernoulli kernel with known success rate *)
let bernoulli_kernel p _chunk rng count =
  let successes = ref 0 in
  for _ = 1 to count do
    if Rng.float rng < p then incr successes
  done;
  !successes

let small_config =
  {
    Estimator.default_config with
    Estimator.precision = 5e-3;
    max_trials = 262_144;
    batch_trials = 16_384;
  }

let test_run_identical_across_jobs () =
  let run jobs =
    Estimator.run ~config:small_config ~jobs (Rng.make 7) (bernoulli_kernel 0.2)
  in
  let reference = run 1 in
  check "jobs 4" true (run 4 = reference);
  check "jobs 8" true (run 8 = reference);
  check "re-run" true (run 1 = reference);
  Pool.with_pool ~jobs:3 (fun pool ->
      let pooled =
        Estimator.run ~config:small_config ~pool (Rng.make 7)
          (bernoulli_kernel 0.2)
      in
      check "explicit pool" true (pooled = reference))

let test_run_stop_reasons () =
  let loose =
    Estimator.run
      ~config:{ small_config with Estimator.precision = 0.05 }
      (Rng.make 3) (bernoulli_kernel 0.5)
  in
  check "loose precision stops early" true
    (loose.Estimator.stop = Estimator.Precision_met
    && loose.Estimator.trials < loose.Estimator.budget);
  check "estimate near truth" true (Float.abs (loose.Estimator.mean -. 0.5) < 0.05);
  let starved =
    Estimator.run
      ~config:
        {
          small_config with
          Estimator.precision = 1e-6;
          max_trials = 32_768;
          batch_trials = 16_384;
        }
      (Rng.make 3) (bernoulli_kernel 0.5)
  in
  check "tiny budget exhausts" true
    (starved.Estimator.stop = Estimator.Budget_exhausted
    && starved.Estimator.trials = 32_768);
  check "saved = budget - trials" true
    (Estimator.trials_saved starved = 0
    && Estimator.trials_saved loose
       = loose.Estimator.budget - loose.Estimator.trials)

let test_run_precision_met_is_tight () =
  let e = Estimator.run ~config:small_config (Rng.make 11) (bernoulli_kernel 0.1) in
  check "stopped on precision" true (e.Estimator.stop = Estimator.Precision_met);
  check "half-width at target" true
    (Estimator.half_width e <= small_config.Estimator.precision);
  check "mean consistent" true
    (e.Estimator.mean
    = float_of_int e.Estimator.successes /. float_of_int e.Estimator.trials)

let test_run_rejects_bad_inputs () =
  check "invalid config" true
    (raises_invalid (fun () ->
         Estimator.run
           ~config:{ small_config with Estimator.max_trials = 0 }
           (Rng.make 1) (bernoulli_kernel 0.5)));
  check "jobs 0" true
    (raises_invalid (fun () ->
         Estimator.run ~config:small_config ~jobs:0 (Rng.make 1)
           (bernoulli_kernel 0.5)))

(* ---- run_adaptive: determinism + fixed-path equivalence ------------- *)

let line_device () =
  let c = Vqc_device.Calibration.create 3 in
  for q = 0 to 2 do
    Vqc_device.Calibration.set_qubit c q
      {
        Vqc_device.Calibration.t1_us = 80.0;
        t2_us = 40.0;
        error_1q = 0.002;
        error_readout = 0.03;
      }
  done;
  Vqc_device.Calibration.set_link_error c 0 1 0.02;
  Vqc_device.Calibration.set_link_error c 1 2 0.05;
  Vqc_device.Device.make ~name:"line3" ~coupling:[ (0, 1); (1, 2) ] c

let ghz3 = Vqc_workloads.Ghz.circuit 3

let test_adaptive_identical_across_jobs () =
  let device = line_device () in
  let config = { small_config with Estimator.precision = 2e-3 } in
  let run jobs =
    Monte_carlo.run_adaptive ~jobs ~config (Rng.make 5) device ghz3
  in
  let reference = run 1 in
  check "jobs 4" true (run 4 = reference);
  check "jobs 8" true (run 8 = reference);
  check "re-run byte-identical" true (run 1 = reference)

let test_adaptive_precision_zero_matches_fixed () =
  let device = line_device () in
  let trials = 65_536 in
  let config =
    {
      Estimator.default_config with
      Estimator.precision = 0.0;
      max_trials = trials;
      batch_trials = 16_384;
    }
  in
  let adaptive = Monte_carlo.run_adaptive ~config (Rng.make 9) device ghz3 in
  let fixed = Monte_carlo.run ~trials (Rng.make 9) device ghz3 in
  Alcotest.(check int)
    "identical successes over the identical chunk stream"
    fixed.Monte_carlo.successes adaptive.Estimator.successes;
  Alcotest.(check int) "full budget consumed" trials adaptive.Estimator.trials;
  check "stopped on budget" true
    (adaptive.Estimator.stop = Estimator.Budget_exhausted)

(* ---- differential oracle: adaptive MC vs exact density matrix ------- *)

(* Every catalog circuit small enough for the exact simulator, compiled
   under every serving policy on the Q5 model: the adaptive trajectory
   estimate of P(outcome in ideal support) must bracket the exact
   channel-evolution value, with a non-vacuous interval. *)
let test_density_oracle () =
  let ctx = Context.default in
  let device = ctx.Context.q5 in
  let config =
    {
      Estimator.confidence = 0.999;
      precision = 0.015;
      max_trials = 32_768;
      batch_trials = 8_192;
    }
  in
  List.iter
    (fun (entry : Catalog.entry) ->
      let ideal = Sv.measurement_distribution entry.Catalog.circuit in
      let support = List.map fst ideal in
      List.iter
        (fun (policy_entry : Policies.entry) ->
          let compiled =
            Compiler.compile device policy_entry.Policies.policy
              entry.Catalog.circuit
          in
          let physical = compiled.Compiler.physical in
          let exact =
            Density.noisy_measurement_distribution device physical
            |> List.filter (fun (outcome, _) -> List.mem outcome support)
            |> List.fold_left (fun acc (_, p) -> acc +. p) 0.0
          in
          let kernel _chunk rng count =
            let histogram = Trajectory.run ~trials:count rng device physical in
            List.fold_left
              (fun acc (outcome, hits) ->
                if List.mem outcome support then acc + hits else acc)
              0 histogram
          in
          let e = Estimator.run ~config (Rng.make 17) kernel in
          let label =
            Printf.sprintf "%s under %s" entry.Catalog.name
              policy_entry.Policies.label
          in
          let tight i = Estimator.interval_half_width i < 0.5 in
          check (label ^ ": interval not vacuous") true
            (tight e.Estimator.wilson || tight e.Estimator.bernstein);
          check (label ^ ": half-width under 2e-2") true
            (Estimator.half_width e <= 0.02);
          let covered (i : Estimator.interval) =
            i.Estimator.lower <= exact && exact <= i.Estimator.upper
          in
          check
            (Printf.sprintf "%s: exact %.4f inside [%0.4f, %0.4f]" label exact
               e.Estimator.wilson.Estimator.lower
               e.Estimator.wilson.Estimator.upper)
            true
            (covered e.Estimator.wilson || covered e.Estimator.bernstein))
        Policies.all)
    Catalog.q5_suite

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "vqc_estimator"
    [
      ( "bounds",
        [
          Alcotest.test_case "z-score" `Quick test_z_score_values;
          Alcotest.test_case "interval edges" `Quick test_interval_edge_cases;
          Alcotest.test_case "wilson coverage" `Slow test_wilson_coverage;
        ]
        @ qcheck [ prop_intervals_contain_mean; prop_half_widths_shrink ] );
      ( "config",
        [ Alcotest.test_case "validation" `Quick test_validate_config ] );
      ( "run",
        [
          Alcotest.test_case "identical across jobs" `Slow
            test_run_identical_across_jobs;
          Alcotest.test_case "stop reasons" `Quick test_run_stop_reasons;
          Alcotest.test_case "precision met is tight" `Quick
            test_run_precision_met_is_tight;
          Alcotest.test_case "rejects bad inputs" `Quick
            test_run_rejects_bad_inputs;
        ] );
      ( "adaptive monte-carlo",
        [
          Alcotest.test_case "identical across jobs" `Slow
            test_adaptive_identical_across_jobs;
          Alcotest.test_case "precision 0 = fixed path" `Slow
            test_adaptive_precision_zero_matches_fixed;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "exact density matrix brackets" `Slow
            test_density_oracle;
        ] );
    ]

// Fixture for the vqc-check golden test: every diagnostic here is a
// warning or an info, so the lint exits 0 while exercising VQC002,
// VQC003 and VQC005.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
creg c[4];
h q[0];
h q[0];
cx q[0], q[1];
measure q[1] -> c[1];
x q[1];
measure q[0] -> c[0];

(* Tests for the execution engine: the Domain-backed pool's determinism
   (the load-bearing property — results must not depend on the worker
   count), its exception protocol, its telemetry, and the parallel
   Monte-Carlo wiring built on top of it. *)

module Pool = Vqc_engine.Pool
module Monte_carlo = Vqc_sim.Monte_carlo
module Reliability = Vqc_sim.Reliability
module Compiler = Vqc_mapper.Compiler
module Catalog = Vqc_workloads.Catalog
module Context = Vqc_experiments.Context
module Rng = Vqc_rng.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---- Pool ----------------------------------------------------------- *)

let test_map_matches_list_map () =
  let xs = List.init 100 (fun i -> i * 3) in
  let f i x = (i * 1000) + x in
  let expected = List.mapi f xs in
  List.iter
    (fun jobs ->
      List.iter
        (fun chunk_size ->
          let got =
            Pool.with_pool ~jobs (fun pool ->
                Pool.map ~chunk_size pool ~f xs)
          in
          Alcotest.(check (list int))
            (Printf.sprintf "jobs=%d chunk=%d" jobs chunk_size)
            expected got)
        [ 1; 7; 100; 1000 ])
    [ 1; 2; 4 ]

let test_map_empty_and_singleton () =
  Pool.with_pool ~jobs:2 (fun pool ->
      check "empty" true (Pool.map pool ~f:(fun _ x -> x) [] = []);
      check "singleton" true (Pool.map pool ~f:(fun i x -> i + x) [ 41 ] = [ 41 ]))

let test_pool_is_reusable () =
  Pool.with_pool ~jobs:3 (fun pool ->
      check_int "jobs" 3 (Pool.jobs pool);
      for round = 1 to 5 do
        let got = Pool.map pool ~f:(fun _ x -> x * round) [ 1; 2; 3 ] in
        check ("round " ^ string_of_int round) true
          (got = [ round; 2 * round; 3 * round ])
      done)

let test_map_reduce_orders_combine () =
  (* string concatenation is not commutative: any out-of-order combine
     shows up immediately *)
  let xs = List.init 26 (fun i -> String.make 1 (Char.chr (Char.code 'a' + i))) in
  let joined =
    Pool.with_pool ~jobs:4 (fun pool ->
        Pool.map_reduce ~chunk_size:3 pool
          ~f:(fun _ s -> s)
          ~combine:( ^ ) ~init:"" xs)
  in
  Alcotest.(check string) "in order" "abcdefghijklmnopqrstuvwxyz" joined

let test_exception_reraised_at_join () =
  List.iter
    (fun jobs ->
      check
        (Printf.sprintf "raises through the join (jobs=%d)" jobs)
        true
        (try
           Pool.with_pool ~jobs (fun pool ->
               Pool.map pool
                 ~f:(fun i x -> if i = 5 then invalid_arg "boom" else x)
                 (List.init 20 Fun.id))
           |> ignore;
           false
         with Invalid_argument message -> message = "boom"))
    [ 1; 4 ]

let test_lowest_failing_chunk_wins () =
  (* two failing tasks: the join must surface the lower-indexed one no
     matter which finished first *)
  let exn =
    try
      Pool.with_pool ~jobs:4 (fun pool ->
          Pool.map pool
            ~f:(fun i _ ->
              if i = 3 then failwith "early"
              else if i = 17 then failwith "late"
              else i)
            (List.init 20 Fun.id))
      |> ignore;
      None
    with Failure m -> Some m
  in
  Alcotest.(check (option string)) "lowest index" (Some "early") exn

let test_progress_telemetry () =
  let events = ref [] in
  let n = 10 in
  Pool.with_pool ~jobs:1 (fun pool ->
      Pool.map ~chunk_size:3
        ~report:(fun p -> events := p :: !events)
        pool
        ~f:(fun _ x -> x)
        (List.init n Fun.id))
  |> ignore;
  let events = List.rev !events in
  check_int "one event per chunk" 4 (List.length events);
  let last = List.nth events 3 in
  check_int "completed counts tasks" n last.Pool.completed;
  check_int "total is task count" n last.Pool.total;
  check "chunk sizes sum to total" true
    (List.fold_left (fun acc p -> acc + p.Pool.chunk_size) 0 events = n);
  check "timings are non-negative" true
    (List.for_all
       (fun p -> p.Pool.chunk_seconds >= 0.0 && p.Pool.elapsed_seconds >= 0.0)
       events)

let test_create_rejects_bad_sizes () =
  List.iter
    (fun jobs ->
      check
        (Printf.sprintf "jobs=%d rejected" jobs)
        true
        (try
           Pool.with_pool ~jobs (fun _ -> ());
           false
         with Invalid_argument _ -> true))
    [ 0; -1 ];
  Pool.with_pool ~jobs:2 (fun pool ->
      check "chunk_size 0 rejected" true
        (try
           Pool.map ~chunk_size:0 pool ~f:(fun _ x -> x) [ 1 ] |> ignore;
           false
         with Invalid_argument _ -> true))

let test_validate_jobs_message () =
  (* bin/experiments.ml prefixes this with "--" to form its CLI error,
     so the exact wording is part of the interface *)
  check "positive accepted" true (Pool.validate_jobs 3 = Ok 3);
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "jobs=%d message" jobs)
        (Printf.sprintf "jobs must be a positive integer (got %d)" jobs)
        (match Pool.validate_jobs jobs with
        | Error message -> message
        | Ok _ -> "accepted"))
    [ 0; -2 ]

(* qcheck: Pool.map over arbitrary lists / chunk sizes / job counts is
   exactly List.map *)
let prop_map_is_list_map =
  QCheck.Test.make ~count:60 ~name:"Pool.map = List.map"
    QCheck.(
      triple (small_list small_int) (int_range 1 4) (int_range 1 9))
    (fun (xs, jobs, chunk_size) ->
      let f i x = (x * 7) - i in
      Pool.with_pool ~jobs (fun pool -> Pool.map ~chunk_size pool ~f xs)
      = List.mapi f xs)

(* ---- Monte-Carlo on the pool ---------------------------------------- *)

let compiled_bv16 ctx =
  let circuit = (Catalog.find "bv-16").Catalog.circuit in
  (Compiler.compile ctx.Context.q20 Compiler.vqa_vqm circuit).Compiler.physical

let test_monte_carlo_jobs_bit_identical () =
  let ctx = Context.default in
  let physical = compiled_bv16 ctx in
  let run jobs =
    Monte_carlo.run ~jobs ~trials:50_000 (Rng.make 11) ctx.Context.q20 physical
  in
  let serial = run 1 and parallel = run 4 in
  check_int "same successes" serial.Monte_carlo.successes
    parallel.Monte_carlo.successes;
  Alcotest.(check (float 0.0)) "same pst" serial.Monte_carlo.pst
    parallel.Monte_carlo.pst

let test_monte_carlo_jobs_odd_trial_counts () =
  (* trial counts straddling the chunk boundary: 1 short chunk, exactly
     full chunks, full + remainder *)
  let ctx = Context.default in
  let physical = compiled_bv16 ctx in
  List.iter
    (fun trials ->
      let run jobs =
        (Monte_carlo.run ~jobs ~trials (Rng.make 23) ctx.Context.q20 physical)
          .Monte_carlo.successes
      in
      check_int (Printf.sprintf "%d trials" trials) (run 1) (run 3))
    [ 1; 4096; 4097; 12_288; 10_000 ]

let test_monte_carlo_rejects_bad_jobs () =
  let ctx = Context.default in
  let physical = compiled_bv16 ctx in
  check "jobs=0 raises" true
    (try
       Monte_carlo.run ~jobs:0 ~trials:10 (Rng.make 1) ctx.Context.q20 physical
       |> ignore;
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "vqc_engine"
    [
      ( "pool",
        [
          Alcotest.test_case "map = List.map (grid)" `Quick
            test_map_matches_list_map;
          Alcotest.test_case "empty and singleton" `Quick
            test_map_empty_and_singleton;
          Alcotest.test_case "reusable" `Quick test_pool_is_reusable;
          Alcotest.test_case "map_reduce in order" `Quick
            test_map_reduce_orders_combine;
          Alcotest.test_case "exception at join" `Quick
            test_exception_reraised_at_join;
          Alcotest.test_case "lowest failing chunk" `Quick
            test_lowest_failing_chunk_wins;
          Alcotest.test_case "progress telemetry" `Quick test_progress_telemetry;
          Alcotest.test_case "bad sizes" `Quick test_create_rejects_bad_sizes;
          Alcotest.test_case "validate_jobs message" `Quick
            test_validate_jobs_message;
          QCheck_alcotest.to_alcotest prop_map_is_list_map;
        ] );
      ( "monte-carlo",
        [
          Alcotest.test_case "jobs=1 = jobs=4 (bv-16)" `Quick
            test_monte_carlo_jobs_bit_identical;
          Alcotest.test_case "chunk-boundary trial counts" `Quick
            test_monte_carlo_jobs_odd_trial_counts;
          Alcotest.test_case "bad jobs" `Quick test_monte_carlo_rejects_bad_jobs;
        ] );
    ]

(* Tests for the simulator: scheduling, analytic reliability, Monte-Carlo
   agreement and metrics. *)

module Gate = Vqc_circuit.Gate
module Circuit = Vqc_circuit.Circuit
module Calibration = Vqc_device.Calibration
module Device = Vqc_device.Device
module Schedule = Vqc_sim.Schedule
module Reliability = Vqc_sim.Reliability
module Monte_carlo = Vqc_sim.Monte_carlo
module Metrics = Vqc_sim.Metrics
module Rng = Vqc_rng.Rng

let check = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let cx c t = Gate.Cnot { control = c; target = t }
let h q = Gate.One_qubit (Gate.H, q)
let meas q = Gate.Measure { qubit = q; cbit = q }

(* A 3-qubit line with known error rates. *)
let device ?(e01 = 0.02) ?(e12 = 0.05) () =
  let c = Calibration.create 3 in
  for q = 0 to 2 do
    Calibration.set_qubit c q
      {
        Calibration.t1_us = 80.0;
        t2_us = 40.0;
        error_1q = 0.001;
        error_readout = 0.03;
      }
  done;
  Calibration.set_link_error c 0 1 e01;
  Calibration.set_link_error c 1 2 e12;
  Device.make ~name:"line3" ~coupling:[ (0, 1); (1, 2) ] c

(* ---- Schedule ------------------------------------------------------ *)

let test_gate_durations () =
  let d = device () in
  let times = Device.gate_times d in
  check_float "1q" times.Device.t_1q_ns (Schedule.gate_duration_ns d (h 0));
  check_float "cx" times.Device.t_2q_ns (Schedule.gate_duration_ns d (cx 0 1));
  check_float "swap = 3 cx" (3.0 *. times.Device.t_2q_ns)
    (Schedule.gate_duration_ns d (Gate.Swap (0, 1)));
  check_float "measure" times.Device.t_measure_ns
    (Schedule.gate_duration_ns d (meas 0));
  check_float "barrier free" 0.0 (Schedule.gate_duration_ns d (Gate.Barrier []))

let test_schedule_serializes_dependencies () =
  let d = device () in
  let c = Circuit.of_gates 3 [ h 0; cx 0 1; cx 1 2 ] in
  let s = Schedule.build d c in
  (* h(80) then cx(300) then cx(300) all share qubit chains *)
  check_float "duration" (80.0 +. 300.0 +. 300.0) s.Schedule.duration_ns

let test_schedule_parallelism () =
  let d = device () in
  let c = Circuit.of_gates 3 [ h 0; h 1; h 2 ] in
  let s = Schedule.build d c in
  check_float "parallel 1q" 80.0 s.Schedule.duration_ns

let test_schedule_idle_accounting () =
  let d = device () in
  (* qubit 0: h at t=0..80, then cx 0 1 can only start after qubit 1's
     longer prep? both free at 80: cx from 80..380.  Make qubit 1 idle by
     giving qubit 0 two gates first. *)
  let c = Circuit.of_gates 3 [ h 0; h 0; cx 0 1; h 1 ] in
  let s = Schedule.build d c in
  (* qubit 1's exposure starts at its first gate (cx at 160), so no idle
     before it; busy = 300 + 80, exposure = 380 *)
  check_float "q1 idle" 0.0 (Schedule.idle_ns s 1);
  check_float "q0 busy" (80.0 +. 80.0 +. 300.0) s.Schedule.busy_ns.(0);
  (* unused qubit: zero exposure *)
  check_float "q2 exposure" 0.0 s.Schedule.exposure_ns.(2)

let test_schedule_idle_gap () =
  let d = device () in
  (* q2 acts at t=0 (h) and then waits for cx 1 2 which waits for cx 0 1 *)
  let c = Circuit.of_gates 3 [ h 2; cx 0 1; cx 1 2 ] in
  let s = Schedule.build d c in
  (* q2: h 0..80, cx 300..600 -> idle 220 *)
  check_float "q2 idle" 220.0 (Schedule.idle_ns s 2)

let test_schedule_barrier_sync () =
  let d = device () in
  let c = Circuit.of_gates 3 [ h 0; Gate.Barrier []; h 2 ] in
  let s = Schedule.build d c in
  check_float "h2 delayed by barrier" 160.0 s.Schedule.duration_ns

let test_alap_same_duration_less_idle () =
  let d = device () in
  (* q2 acts early then waits; ALAP delays its prep *)
  let c = Circuit.of_gates 3 [ h 2; cx 0 1; cx 1 2 ] in
  let asap = Schedule.build d c in
  let alap = Schedule.build_alap d c in
  check_float "same duration" asap.Schedule.duration_ns alap.Schedule.duration_ns;
  check "q2 idle shrinks" true
    (Schedule.idle_ns alap 2 < Schedule.idle_ns asap 2);
  check_float "alap q2 idle gone" 0.0 (Schedule.idle_ns alap 2);
  check_float "busy time unchanged" asap.Schedule.busy_ns.(2)
    alap.Schedule.busy_ns.(2)

let test_alap_respects_dependencies () =
  let d = device () in
  let c = Circuit.of_gates 3 [ h 0; cx 0 1; cx 1 2; meas 2 ] in
  let alap = Schedule.build_alap d c in
  (* per-qubit op order must match program order *)
  let starts_on q =
    List.filter_map
      (fun op ->
        if List.mem q (Gate.qubits op.Schedule.gate) then
          Some op.Schedule.start_ns
        else None)
      alap.Schedule.ops
  in
  List.iter
    (fun q ->
      let starts = starts_on q in
      check "sorted starts" true (starts = List.sort compare starts))
    [ 0; 1; 2 ];
  check "no negative times" true
    (List.for_all (fun op -> op.Schedule.start_ns >= -1e-9) alap.Schedule.ops)

let test_alap_improves_reliability () =
  let d = device () in
  let c = Circuit.of_gates 3 [ h 2; cx 0 1; cx 1 2; meas 2 ] in
  check "alap pst at least asap pst" true
    (Reliability.pst ~alap:true d c >= Reliability.pst d c -. 1e-12)

let test_schedule_rejects_wide_circuit () =
  let d = device () in
  check "raises" true
    (try
       let _ = Schedule.build d (Circuit.of_gates 5 [ h 4 ]) in
       false
     with Invalid_argument _ -> true)

(* ---- Reliability --------------------------------------------------- *)

let test_gate_success_values () =
  let d = device () in
  check_float "1q" 0.999 (Reliability.gate_success d (h 0));
  check_float "cx" 0.98 (Reliability.gate_success d (cx 0 1));
  check_float "swap" (0.95 ** 3.0) (Reliability.gate_success d (Gate.Swap (1, 2)));
  check_float "measure" 0.97 (Reliability.gate_success d (meas 0));
  check_float "barrier" 1.0 (Reliability.gate_success d (Gate.Barrier []))

let test_gate_success_uncoupled_raises () =
  let d = device () in
  check "raises" true
    (try
       let _ = Reliability.gate_success d (cx 0 2) in
       false
     with Invalid_argument _ -> true)

let test_analyze_product () =
  let d = device () in
  let c = Circuit.of_gates 3 [ h 0; cx 0 1; meas 0 ] in
  let b = Reliability.analyze ~coherence:false d c in
  check_float "1q" 0.999 b.Reliability.one_qubit_success;
  check_float "2q" 0.98 b.Reliability.two_qubit_success;
  check_float "measure" 0.97 b.Reliability.measure_success;
  check_float "coherence off" 1.0 b.Reliability.coherence_survival;
  check_float "pst is the product" (0.999 *. 0.98 *. 0.97) b.Reliability.pst

let test_coherence_scale_monotone () =
  let d = device () in
  (* force an idle window on q2 *)
  let c = Circuit.of_gates 3 [ h 2; cx 0 1; cx 1 2 ] in
  let low = Reliability.pst ~coherence_scale:0.01 d c in
  let high = Reliability.pst ~coherence_scale:1.0 d c in
  check "more coherence weight, less PST" true (high < low);
  let off = Reliability.pst ~coherence:false d c in
  check "coherence only hurts" true (low <= off)

let test_paper_gate_vs_coherence_regime () =
  (* Section 4.4: gate errors are ~16x more likely to fail a bv-20 trial
     than coherence errors; pin the default scale to that ballpark on the
     simulated Q20. *)
  let ctx = Vqc_experiments.Context.default in
  let q20 = ctx.Vqc_experiments.Context.q20 in
  let circuit = (Vqc_workloads.Catalog.find "bv-20").Vqc_workloads.Catalog.circuit in
  let compiled =
    Vqc_mapper.Compiler.compile q20 Vqc_mapper.Compiler.baseline circuit
  in
  let b = Reliability.analyze q20 compiled.Vqc_mapper.Compiler.physical in
  let gate_failure =
    1.0
    -. (b.Reliability.one_qubit_success *. b.Reliability.two_qubit_success
      *. b.Reliability.measure_success)
  in
  let coherence_failure = 1.0 -. b.Reliability.coherence_survival in
  let ratio = gate_failure /. coherence_failure in
  check "gate errors dominate" true (ratio > 6.0 && ratio < 60.0)

let test_coherence_survival_formula () =
  (* pin the survival law: exp(-scale * idle_ns * (1/T1 + 1/T2)), with
     T1/T2 converted from the calibration's microseconds *)
  let d = device () in
  let c = Circuit.of_gates 3 [ h 2; cx 0 1; cx 1 2 ] in
  let s = Schedule.build d c in
  let idle = Schedule.idle_ns s 2 in
  check_float "known idle window" 220.0 idle;
  let rate = (1.0 /. 80_000.0) +. (1.0 /. 40_000.0) in
  check_float "explicit scale" (exp (-0.5 *. idle *. rate))
    (Reliability.coherence_survival ~scale:0.5 d s 2);
  check_float "default scale"
    (exp (-.Reliability.default_coherence_scale *. idle *. rate))
    (Reliability.coherence_survival d s 2);
  (* an idle-free qubit survives with probability 1 at any scale *)
  check_float "no idle, no decay" 1.0 (Reliability.coherence_survival ~scale:5.0 d s 0)

let test_esp_decomposition_per_gate_class () =
  (* every gate class lands in its own breakdown factor, barriers in
     none, and the PST is exactly the product of the factors *)
  let d = device () in
  let c =
    Circuit.of_gates 3
      [ h 0; h 1; Gate.Barrier []; cx 0 1; Gate.Swap (1, 2); meas 0; meas 2 ]
  in
  let b = Reliability.analyze d c in
  check_float "1q: two h gates" (0.999 ** 2.0) b.Reliability.one_qubit_success;
  check_float "2q: cnot and swap-as-3-cnots" (0.98 *. (0.95 ** 3.0))
    b.Reliability.two_qubit_success;
  check_float "measure: two readouts" (0.97 ** 2.0) b.Reliability.measure_success;
  let s = Schedule.build d c in
  let survival =
    List.fold_left
      (fun acc q -> acc *. Reliability.coherence_survival d s q)
      1.0 [ 0; 1; 2 ]
  in
  check_float "coherence factor is the per-qubit product" survival
    b.Reliability.coherence_survival;
  check_float "pst = product of the four factors"
    (b.Reliability.one_qubit_success *. b.Reliability.two_qubit_success
    *. b.Reliability.measure_success *. b.Reliability.coherence_survival)
    b.Reliability.pst;
  check_float "duration mirrors the schedule" s.Schedule.duration_ns
    b.Reliability.duration_ns

let test_schedule_measure_in_idle_accounting () =
  (* measurement occupies its qubit like any gate: busy time includes
     the readout window, and waiting for a late measurement is idle *)
  let d = device () in
  let times = Device.gate_times d in
  let c = Circuit.of_gates 3 [ h 0; cx 0 1; meas 0; meas 1 ] in
  let s = Schedule.build d c in
  check_float "q0 busy = h + cx + measure"
    (times.Device.t_1q_ns +. times.Device.t_2q_ns +. times.Device.t_measure_ns)
    s.Schedule.busy_ns.(0);
  check_float "q1 busy = cx + measure"
    (times.Device.t_2q_ns +. times.Device.t_measure_ns)
    s.Schedule.busy_ns.(1);
  (* q1's exposure starts at the cx, so it accrues no idle; q0 idles
     nowhere either — both chains are dense *)
  check_float "q0 dense" 0.0 (Schedule.idle_ns s 0);
  check_float "q1 dense" 0.0 (Schedule.idle_ns s 1)

(* ---- Monte-Carlo --------------------------------------------------- *)

let test_monte_carlo_matches_analytic () =
  let d = device () in
  let c = Circuit.of_gates 3 [ h 0; cx 0 1; cx 1 2; meas 0; meas 1; meas 2 ] in
  let analytic = Reliability.pst d c in
  let mc = Monte_carlo.run ~trials:100_000 (Rng.make 5) d c in
  check "within 4 sigma" true
    (Float.abs (mc.Monte_carlo.pst -. analytic) < 4.0 *. (mc.Monte_carlo.ci95 /. 1.96) +. 1e-6)

let test_monte_carlo_perfect_device () =
  let perfect = device ~e01:0.0 ~e12:0.0 () in
  (* zero out the qubit errors too *)
  let calibration = Device.calibration perfect in
  for q = 0 to 2 do
    Calibration.set_qubit calibration q
      { Calibration.t1_us = 1e9; t2_us = 1e9; error_1q = 0.0; error_readout = 0.0 }
  done;
  let c = Circuit.of_gates 3 [ h 0; cx 0 1; meas 0 ] in
  let mc = Monte_carlo.run ~trials:1_000 (Rng.make 1) perfect c in
  check_float "all trials succeed" 1.0 mc.Monte_carlo.pst

let test_monte_carlo_determinism () =
  let d = device () in
  let c = Circuit.of_gates 3 [ cx 0 1; cx 1 2 ] in
  let a = Monte_carlo.run ~trials:10_000 (Rng.make 3) d c in
  let b = Monte_carlo.run ~trials:10_000 (Rng.make 3) d c in
  check "same seed same estimate" true
    (a.Monte_carlo.successes = b.Monte_carlo.successes)

let test_monte_carlo_rejects_bad_trials () =
  let d = device () in
  let raises f = try f () |> ignore; false with Invalid_argument _ -> true in
  check "zero trials" true
    (raises (fun () -> Monte_carlo.run ~trials:0 (Rng.make 1) d (Circuit.create 3)));
  check "negative trials" true
    (raises (fun () ->
         Monte_carlo.run ~trials:(-5) (Rng.make 1) d (Circuit.create 3)));
  check "zero jobs" true
    (raises (fun () ->
         Monte_carlo.run ~jobs:0 ~trials:100 (Rng.make 1) d (Circuit.create 3)))

let test_monte_carlo_clamps_idle_jobs () =
  (* more workers than chunks: the fan-out clamps to the chunk count, so
     a 1-trial run under 8 jobs is exactly the 1-job run, and a
     several-chunk run is identical whatever the worker surplus *)
  let d = device () in
  let c = Circuit.of_gates 3 [ h 0; cx 0 1; cx 1 2; meas 0; meas 1; meas 2 ] in
  let one_trial jobs = Monte_carlo.run ~jobs ~trials:1 (Rng.make 13) d c in
  Alcotest.(check int)
    "trials 1, jobs 8 = jobs 1" (one_trial 1).Monte_carlo.successes
    (one_trial 8).Monte_carlo.successes;
  let chunked jobs = Monte_carlo.run ~jobs ~trials:10_000 (Rng.make 13) d c in
  Alcotest.(check int)
    "3 chunks, jobs 64 = jobs 1" (chunked 1).Monte_carlo.successes
    (chunked 64).Monte_carlo.successes

(* ---- Budget --------------------------------------------------------- *)

module Budget = Vqc_sim.Budget

let test_budget_sums_to_log_pst () =
  let d = device () in
  let c = Circuit.of_gates 3 [ h 0; cx 0 1; cx 1 2; meas 0; meas 2 ] in
  let lines = Budget.analyze d c in
  let total = Budget.total_log_failure lines in
  check "total equals -log PST" true
    (Float.abs (total +. log (Reliability.pst d c)) < 1e-9);
  let share_sum = List.fold_left (fun acc l -> acc +. l.Budget.share) 0.0 lines in
  check "shares sum to 1" true (Float.abs (share_sum -. 1.0) < 1e-9)

let test_budget_ranks_weak_link_first () =
  let d = device ~e01:0.01 ~e12:0.20 () in
  let c = Circuit.of_gates 3 [ cx 0 1; cx 1 2 ] in
  match Budget.analyze ~coherence:false d c with
  | { Budget.resource = Budget.Link (1, 2); uses = 1; _ } :: _ -> ()
  | other ->
    Alcotest.failf "weak link not ranked first (%d lines)" (List.length other)

let test_budget_attributes_swaps_to_links () =
  let d = device () in
  let c = Circuit.of_gates 3 [ Gate.Swap (0, 1) ] in
  match Budget.analyze ~coherence:false d c with
  | [ { Budget.resource = Budget.Link (0, 1); log_failure; _ } ] ->
    check "swap = 3 cnots worth" true
      (Float.abs (log_failure +. (3.0 *. log 0.98)) < 1e-9)
  | other -> Alcotest.failf "unexpected budget (%d lines)" (List.length other)

(* ---- Crosstalk ----------------------------------------------------- *)

module Crosstalk = Vqc_sim.Crosstalk

let test_crosstalk_serial_circuit_unaffected () =
  (* a fully serial circuit has no simultaneous 2q gates *)
  let d = device () in
  let c = Circuit.of_gates 3 [ cx 0 1; cx 1 2; cx 0 1 ] in
  let schedule = Schedule.build d c in
  List.iter
    (fun (_, factor) -> check_float "factor 1" 1.0 factor)
    (Crosstalk.inflation_factors d schedule);
  check_float "pst unchanged" (Reliability.pst d c) (Crosstalk.pst d c)

let test_crosstalk_parallel_adjacent_gates_inflate () =
  (* 4-qubit line: cx 0-1 and cx 2-3 run simultaneously on adjacent
     couplers (1-2 connects them) *)
  let cal = Calibration.create 4 in
  List.iter
    (fun (u, v) -> Calibration.set_link_error cal u v 0.05)
    [ (0, 1); (1, 2); (2, 3) ];
  let d = Device.make ~name:"line4" ~coupling:[ (0, 1); (1, 2); (2, 3) ] cal in
  let c = Circuit.of_gates 4 [ cx 0 1; cx 2 3 ] in
  let schedule = Schedule.build d c in
  List.iter
    (fun (_, factor) ->
      check_float "one neighbour each" (1.0 +. Crosstalk.default_strength)
        factor)
    (Crosstalk.inflation_factors d schedule);
  check "pst drops under crosstalk" true (Crosstalk.pst d c < Reliability.pst d c);
  check_float "strength zero is the base model" (Reliability.pst d c)
    (Crosstalk.pst ~strength:0.0 d c)

let test_crosstalk_distant_gates_unaffected () =
  (* 6-qubit line: cx 0-1 and cx 4-5 are far apart *)
  let cal = Calibration.create 6 in
  List.iter
    (fun (u, v) -> Calibration.set_link_error cal u v 0.05)
    [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5) ];
  let d =
    Device.make ~name:"line6"
      ~coupling:[ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5) ]
      cal
  in
  let c = Circuit.of_gates 6 [ cx 0 1; cx 4 5 ] in
  check_float "no interference" (Reliability.pst d c) (Crosstalk.pst d c)

let test_crosstalk_monte_carlo_agrees () =
  let cal = Calibration.create 4 in
  List.iter
    (fun (u, v) -> Calibration.set_link_error cal u v 0.05)
    [ (0, 1); (1, 2); (2, 3) ];
  let d = Device.make ~name:"line4" ~coupling:[ (0, 1); (1, 2); (2, 3) ] cal in
  let c = Circuit.of_gates 4 [ cx 0 1; cx 2 3; meas 0; meas 2 ] in
  let analytic = Crosstalk.pst ~strength:1.0 d c in
  let mc =
    Monte_carlo.run ~crosstalk_strength:1.0 ~trials:100_000 (Rng.make 7) d c
  in
  check "mc within 4 sigma of crosstalk analytic" true
    (Float.abs (mc.Monte_carlo.pst -. analytic)
    < (4.0 *. (mc.Monte_carlo.ci95 /. 1.96)) +. 1e-6)

(* ---- Metrics ------------------------------------------------------- *)

let test_relative () =
  check_float "ratio" 2.0 (Metrics.relative ~baseline:0.2 0.4);
  check "zero baseline raises" true
    (try
       let _ = Metrics.relative ~baseline:0.0 1.0 in
       false
     with Invalid_argument _ -> true)

let test_geomean () =
  check_float "geomean" 2.0 (Metrics.geomean [ 1.0; 2.0; 4.0 ]);
  check_float "singleton" 3.0 (Metrics.geomean [ 3.0 ]);
  let raises f = try f () |> ignore; false with Invalid_argument _ -> true in
  check "empty raises" true (raises (fun () -> Metrics.geomean []));
  check "non-positive raises" true (raises (fun () -> Metrics.geomean [ 1.0; 0.0 ]))

let test_stpt () =
  (* PST 0.5, duration 1 ms -> 500 successful trials per second *)
  check_float "stpt" 500.0 (Metrics.stpt ~pst:0.5 ~duration_ns:1e6);
  check_float "concurrent adds"
    (500.0 +. 250.0)
    (Metrics.stpt_concurrent [ (0.5, 1e6); (0.25, 1e6) ])

let () =
  Alcotest.run "vqc_sim"
    [
      ( "schedule",
        [
          Alcotest.test_case "durations" `Quick test_gate_durations;
          Alcotest.test_case "serializes deps" `Quick
            test_schedule_serializes_dependencies;
          Alcotest.test_case "parallelism" `Quick test_schedule_parallelism;
          Alcotest.test_case "idle accounting" `Quick test_schedule_idle_accounting;
          Alcotest.test_case "idle gap" `Quick test_schedule_idle_gap;
          Alcotest.test_case "barrier sync" `Quick test_schedule_barrier_sync;
          Alcotest.test_case "alap idle" `Quick test_alap_same_duration_less_idle;
          Alcotest.test_case "alap dependencies" `Quick
            test_alap_respects_dependencies;
          Alcotest.test_case "alap reliability" `Quick
            test_alap_improves_reliability;
          Alcotest.test_case "wide circuit" `Quick
            test_schedule_rejects_wide_circuit;
          Alcotest.test_case "measure in idle accounting" `Quick
            test_schedule_measure_in_idle_accounting;
        ] );
      ( "reliability",
        [
          Alcotest.test_case "gate success" `Quick test_gate_success_values;
          Alcotest.test_case "uncoupled cx" `Quick
            test_gate_success_uncoupled_raises;
          Alcotest.test_case "analytic product" `Quick test_analyze_product;
          Alcotest.test_case "coherence scale" `Quick test_coherence_scale_monotone;
          Alcotest.test_case "paper regime" `Slow
            test_paper_gate_vs_coherence_regime;
          Alcotest.test_case "coherence survival formula" `Quick
            test_coherence_survival_formula;
          Alcotest.test_case "esp decomposition" `Quick
            test_esp_decomposition_per_gate_class;
        ] );
      ( "monte-carlo",
        [
          Alcotest.test_case "matches analytic" `Slow
            test_monte_carlo_matches_analytic;
          Alcotest.test_case "perfect device" `Quick test_monte_carlo_perfect_device;
          Alcotest.test_case "determinism" `Quick test_monte_carlo_determinism;
          Alcotest.test_case "bad trials" `Quick test_monte_carlo_rejects_bad_trials;
          Alcotest.test_case "idle jobs clamped" `Quick
            test_monte_carlo_clamps_idle_jobs;
        ] );
      ( "budget",
        [
          Alcotest.test_case "sums to -log PST" `Quick test_budget_sums_to_log_pst;
          Alcotest.test_case "ranks weak link" `Quick
            test_budget_ranks_weak_link_first;
          Alcotest.test_case "swap attribution" `Quick
            test_budget_attributes_swaps_to_links;
        ] );
      ( "crosstalk",
        [
          Alcotest.test_case "serial unaffected" `Quick
            test_crosstalk_serial_circuit_unaffected;
          Alcotest.test_case "parallel adjacent inflates" `Quick
            test_crosstalk_parallel_adjacent_gates_inflate;
          Alcotest.test_case "distant unaffected" `Quick
            test_crosstalk_distant_gates_unaffected;
          Alcotest.test_case "monte-carlo agrees" `Slow
            test_crosstalk_monte_carlo_agrees;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "relative" `Quick test_relative;
          Alcotest.test_case "geomean" `Quick test_geomean;
          Alcotest.test_case "stpt" `Quick test_stpt;
        ] );
    ]

(* The determinism-under-concurrency test wall for the TCP front end.

   Everything here holds one promise: a client's deterministic response
   bytes are a pure function of its own request stream.  Not of the
   shard count, not of the worker count, not of what other clients do
   concurrently, not of the shared compile store's temperature.  The
   reference for every stream is the stdin session loop (the same
   Session code the TCP server runs), so single-client TCP equivalence
   is golden-enforced, and every concurrent client is held to its own
   single-client reference run.

   The robustness half feeds the server garbage — truncated JSON,
   invalid UTF-8, oversized lines, mid-line disconnects, a flooding
   client — and checks the blast radius is exactly one session. *)

module History = Vqc_device.History
module Topologies = Vqc_device.Topologies
module Epoch = Vqc_service.Epoch
module Service = Vqc_service.Service
module Session = Vqc_serve_net.Session
module Server = Vqc_serve_net.Server
module Load = Vqc_serve_net.Load
module Diagnostic = Vqc_diag.Diagnostic

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let contains haystack needle =
  let ln = String.length needle and lh = String.length haystack in
  let rec at i =
    i + ln <= lh && (String.sub haystack i ln = needle || at (i + 1))
  in
  ln > 0 && at 0

(* Small workloads on the 5-qubit device keep each compile cheap: the
   wall exercises sessions, sharding and interleavings, not the mapper. *)
let epochs () =
  Epoch.of_history ~name:"Q5" ~coupling:Topologies.ibm_q5_tenerife
    (History.generate ~days:3 ~seed:5 ~coupling:Topologies.ibm_q5_tenerife 5)

let workloads = [| "bv-3"; "bv-4"; "GHZ-3"; "TriSwap" |]

let req id workload =
  Printf.sprintf {|{"id":%d,"workload":"%s"}|} id workload

(* Per-client stream: compiles, repeats (cache hits), a flush, an epoch
   advance and an epoch pin mid-stream (so drift migration acks — whose
   census is deterministic — interleave with compiles), and one parse
   error.  Clients start at different rotation offsets so concurrent
   streams collide on the shared store without being identical. *)
let stream index =
  let w j = workloads.((index + j) mod Array.length workloads) in
  [
    req 1 (w 0);
    req 2 (w 1);
    {|{"op":"flush"}|};
    req 3 (w 2);
    req 4 (w 0);
    {|{"op":"advance_epoch"}|};
    req 5 (w 0);
    req 6 (w 3);
    Printf.sprintf {|{"op":"set_epoch","epoch":%d}|} (index mod 3);
    req 7 (w 1);
    "{not json";
    req 8 (w 2);
  ]

(* ---- nd stripping --------------------------------------------------- *)

(* Drop the [,"nd":{...}] member from a rendered response line.  The
   "nd" object is where every run-varying fact lives (latency, cache
   temperature); the rest of the line is the deterministic contract. *)
let strip_nd line =
  let marker = {|,"nd":{|} in
  let mlen = String.length marker in
  let len = String.length line in
  let rec find i =
    if i + mlen > len then None
    else if String.sub line i mlen = marker then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> line
  | Some start ->
    let rec close i depth =
      match line.[i] with
      | '{' -> close (i + 1) (depth + 1)
      | '}' -> if depth = 1 then i else close (i + 1) (depth - 1)
      | _ -> close (i + 1) depth
    in
    let last = close (start + mlen) 1 in
    String.sub line 0 start ^ String.sub line (last + 1) (len - last - 1)

let deterministic lines = List.map strip_nd lines

(* ---- reference runs over the stdin loop ----------------------------- *)

let with_temp_file f =
  let path = Filename.temp_file "vqc_serve_net" ".ndjson" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let read_lines path =
  In_channel.with_open_text path (fun ic ->
      let rec go acc =
        match In_channel.input_line ic with
        | Some line -> go (line :: acc)
        | None -> List.rev acc
      in
      go [])

(* The golden for a stream: Session.run over file channels — exactly
   the stdin front end of vqc-serve, minus the terminal. *)
let stdin_run ?(session = Session.default_config) ~config lines =
  with_temp_file (fun in_path ->
      with_temp_file (fun out_path ->
          Out_channel.with_open_text in_path (fun oc ->
              List.iter
                (fun line ->
                  Out_channel.output_string oc line;
                  Out_channel.output_char oc '\n')
                lines);
          let outcome =
            Service.with_service ~config (epochs ()) (fun service ->
                In_channel.with_open_text in_path (fun ic ->
                    Out_channel.with_open_text out_path (fun oc ->
                        let outcome = Session.run ~config:session service ic oc in
                        flush oc;
                        outcome)))
          in
          (outcome, read_lines out_path)))

(* ---- server scaffolding --------------------------------------------- *)

let base_config ~jobs ~shards =
  {
    Service.default_config with
    Service.jobs;
    cache_shards = shards;
    cache_capacity = 8;
    (* non-wholesale drift: epoch moves run the selective retention
       pipeline, whose kept/dropped census lands in deterministic
       Control_ack fields *)
    drift = Some { Vqc_drift.Retention.threshold = 0.05 };
  }

let with_server ?(clients_max = 16) ?(session = Session.default_config)
    ~jobs ~shards f =
  let server =
    Server.start
      ~config:
        {
          Server.default_config with
          Server.clients_max;
          session;
          service = base_config ~jobs ~shards;
          store_capacity = 64;
        }
      (epochs ())
  in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () -> f (Server.port server))

(* Raw socket for the robustness tests: send exact bytes (including
   broken ones Load.client would never produce), read exact lines. *)
let with_raw_client port f =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      f fd)

let send fd text = ignore (Unix.write_substring fd text 0 (String.length text))

let read_all_lines fd =
  Unix.shutdown fd Unix.SHUTDOWN_SEND;
  let ic = Unix.in_channel_of_descr fd in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  go []

(* ---- single-client TCP = stdin, golden-enforced --------------------- *)

let test_tcp_matches_stdin () =
  let lines = stream 0 in
  let _, golden = stdin_run ~config:(base_config ~jobs:1 ~shards:1) lines in
  with_server ~jobs:1 ~shards:1 (fun port ->
      let result = Load.client ~port ~requests:lines () in
      check_int "one response per request" (List.length lines)
        (List.length result.Load.lines);
      List.iteri
        (fun i (expected, actual) ->
          check_string
            (Printf.sprintf "line %d: TCP = stdin" i)
            expected actual)
        (List.combine (deterministic golden)
           (deterministic result.Load.lines)))

(* ---- multi-client determinism wall ---------------------------------- *)

(* Every concurrent client's stream must replay to the bytes of its own
   single-client reference, for every combination of shard count,
   worker count and client count.  The goldens are computed once at
   (jobs 1, shards 1): equality across the matrix IS the shards/jobs
   invariance claim. *)
let test_multi_client_determinism () =
  let goldens =
    Array.init 8 (fun index ->
        deterministic
          (snd (stdin_run ~config:(base_config ~jobs:1 ~shards:1)
                  (stream index))))
  in
  List.iter
    (fun (shards, jobs, clients) ->
      with_server ~jobs ~shards (fun port ->
          let results =
            Load.run ~port ~clients ~requests:(fun index -> stream index) ()
          in
          Array.iteri
            (fun index result ->
              match result with
              | Error e ->
                Alcotest.failf "shards=%d jobs=%d clients=%d client %d: %s"
                  shards jobs clients index e
              | Ok { Load.lines; _ } ->
                check
                  (Printf.sprintf
                     "shards=%d jobs=%d clients=%d client %d matches its \
                      solo golden"
                     shards jobs clients index)
                  true
                  (deterministic lines = goldens.(index)))
            results))
    [
      (1, 1, 2);
      (1, 4, 8);
      (4, 1, 8);
      (4, 4, 2);
      (4, 4, 8);
    ]

(* ---- backpressure renders identically on both front ends ------------ *)

let test_queue_full_same_bytes () =
  (* queue_limit 2, batch larger than the stream: requests 3..5 meet a
     full queue and must be rejected with the VQC130 code — identically
     on stdin and TCP *)
  let config =
    { (base_config ~jobs:1 ~shards:1) with Service.queue_limit = 2 }
  in
  let session = { Session.default_config with Session.batch = 100 } in
  let lines = List.init 5 (fun i -> req (i + 1) "bv-3") in
  let _, golden = stdin_run ~session ~config lines in
  let rejected =
    List.filter (fun line -> contains line "\"status\":\"rejected\"")
      golden
  in
  check_int "three rejections" 3 (List.length rejected);
  List.iter
    (fun line ->
      check "rejection carries the queue-full code" true
        (contains line
           (Printf.sprintf "\"code\":%S" Diagnostic.code_queue_full)))
    rejected;
  let server =
    Server.start
      ~config:
        {
          Server.default_config with
          Server.session = session;
          service = config;
          store_capacity = 64;
        }
      (epochs ())
  in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () ->
      let result = Load.client ~port:(Server.port server) ~requests:lines () in
      check "queue-full bytes identical on TCP" true
        (deterministic result.Load.lines = deterministic golden))

(* ---- connection-level load shedding --------------------------------- *)

let test_server_full_rejection () =
  with_server ~clients_max:1 ~jobs:1 ~shards:1 (fun port ->
      with_raw_client port (fun occupant ->
          (* prove the occupant's session is live before crowding it *)
          send occupant (req 1 "bv-3" ^ "\n");
          send occupant "{\"op\":\"flush\"}\n";
          let ic = Unix.in_channel_of_descr occupant in
          let first = input_line ic in
          check "occupant is served" true
            (contains first "\"status\":\"ok\"");
          let overflow = with_raw_client port read_all_lines in
          match overflow with
          | [ line ] ->
            check "server-full reason" true
              (contains line "\"reason\":\"server_full\"");
            check "server-full code" true
              (contains line
                 (Printf.sprintf "\"code\":%S" Diagnostic.code_server_full))
          | lines ->
            Alcotest.failf "expected exactly one rejection line, got %d"
              (List.length lines)))

(* ---- robustness: garbage kills one session, not the server ---------- *)

let test_fuzz_blast_radius () =
  let session = { Session.batch = 2; max_line = 128 } in
  let golden =
    deterministic
      (snd (stdin_run ~session ~config:(base_config ~jobs:1 ~shards:1)
              (stream 0)))
  in
  with_server ~session ~jobs:2 ~shards:4 (fun port ->
      (* a stuck client mid-line, held open across everything below: its
         unfinished garbage must not delay or corrupt anyone *)
      with_raw_client port (fun stuck ->
          send stuck "{\"id\":99,\"workl";
          (* truncated JSON: a Failed response, then normal service *)
          let truncated =
            with_raw_client port (fun fd ->
                send fd "{\"id\":1,\n";
                send fd (req 2 "bv-3" ^ "\n");
                read_all_lines fd)
          in
          (match truncated with
          | [ failed; served ] ->
            check "truncated line fails" true
              (contains failed "\"status\":\"error\"");
            check "same session still serves" true
              (contains served "\"status\":\"ok\"")
          | lines ->
            Alcotest.failf "truncated: expected 2 lines, got %d"
              (List.length lines));
          (* invalid UTF-8 bytes: a Failed response, session survives *)
          let invalid =
            with_raw_client port (fun fd ->
                send fd "\xff\xfe{\n";
                read_all_lines fd)
          in
          check_int "invalid UTF-8 answers one line" 1 (List.length invalid);
          check "invalid UTF-8 fails cleanly" true
            (contains (List.hd invalid) "\"status\":\"error\"");
          (* oversized line: accepted work is answered, then a typed
             error, then the session closes *)
          let oversized =
            with_raw_client port (fun fd ->
                send fd (req 1 "bv-3" ^ "\n");
                send fd (String.make 300 'x' ^ "\n");
                send fd (req 2 "bv-3" ^ "\n");
                read_all_lines fd)
          in
          (match oversized with
          | [ served; refused ] ->
            check "accepted request answered before dying" true
              (contains served "\"status\":\"ok\"");
            check "oversized line reported" true
              (contains refused "exceeds the 128-byte limit")
          | lines ->
            Alcotest.failf "oversized: expected 2 lines, got %d"
              (List.length lines));
          (* mid-line disconnect: the partial line fails like any other
             garbage, the server moves on *)
          let partial =
            with_raw_client port (fun fd ->
                send fd "{\"id\":7";
                read_all_lines fd)
          in
          check_int "mid-line disconnect answers one line" 1
            (List.length partial);
          check "partial line fails cleanly" true
            (contains (List.hd partial) "\"status\":\"error\"");
          (* and through all of it, a well-behaved client still gets its
             exact golden bytes *)
          let clean = Load.client ~port ~requests:(stream 0) () in
          check "well-behaved client unharmed by the chaos" true
            (deterministic clean.Load.lines = golden)))

let () =
  Alcotest.run "serve_net"
    [
      ( "determinism",
        [
          Alcotest.test_case "single-client TCP = stdin" `Quick
            test_tcp_matches_stdin;
          Alcotest.test_case "concurrent clients match solo goldens" `Slow
            test_multi_client_determinism;
        ] );
      ( "backpressure",
        [
          Alcotest.test_case "queue-full bytes identical on both front ends"
            `Quick test_queue_full_same_bytes;
          Alcotest.test_case "server-full connection shedding" `Quick
            test_server_full_rejection;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "garbage kills one session, not the server"
            `Slow test_fuzz_blast_radius;
        ] );
    ]

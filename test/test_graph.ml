(* Unit and property tests for the graph substrate: priority queue,
   weighted graphs, shortest paths, k-core, generic A*. *)

module Graph = Vqc_graph.Graph
module Paths = Vqc_graph.Paths
module Pqueue = Vqc_graph.Pqueue
module Kcore = Vqc_graph.Kcore
module Astar = Vqc_graph.Astar

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* ---- Pqueue -------------------------------------------------------- *)

let test_pqueue_order () =
  let q = Pqueue.create () in
  List.iter (fun p -> Pqueue.push q p (int_of_float p)) [ 5.; 1.; 3.; 2.; 4. ];
  let drained = ref [] in
  let rec drain () =
    match Pqueue.pop q with
    | Some (_, x) ->
      drained := x :: !drained;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "sorted drain" [ 1; 2; 3; 4; 5 ]
    (List.rev !drained)

let test_pqueue_peek_and_clear () =
  let q = Pqueue.create () in
  check "fresh empty" true (Pqueue.is_empty q);
  Pqueue.push q 2.0 "b";
  Pqueue.push q 1.0 "a";
  (match Pqueue.peek q with
  | Some (p, x) ->
    check_float "peek priority" 1.0 p;
    Alcotest.(check string) "peek payload" "a" x
  | None -> Alcotest.fail "peek on non-empty queue");
  check_int "length" 2 (Pqueue.length q);
  Pqueue.clear q;
  check "cleared" true (Pqueue.is_empty q);
  check "pop empty" true (Pqueue.pop q = None)

let test_pqueue_duplicates () =
  let q = Pqueue.create () in
  Pqueue.push q 1.0 0;
  Pqueue.push q 1.0 0;
  Pqueue.push q 0.5 1;
  check_int "three entries" 3 (Pqueue.length q);
  (match Pqueue.pop q with
  | Some (_, x) -> check_int "lowest first" 1 x
  | None -> Alcotest.fail "pop")

let prop_pqueue_sorts =
  QCheck2.Test.make ~name:"pqueue drains in priority order" ~count:200
    QCheck2.Gen.(list (float_bound_exclusive 1000.0))
    (fun priorities ->
      let q = Pqueue.create () in
      List.iter (fun p -> Pqueue.push q p p) priorities;
      let rec drain acc =
        match Pqueue.pop q with
        | Some (_, x) -> drain (x :: acc)
        | None -> List.rev acc
      in
      drain [] = List.sort compare priorities)

(* The int-keyed heap stores each priority as its IEEE-754 bit pattern
   shifted onto the native-int range.  A sign mistake in that encoding
   is invisible on priorities below 2.0 (biased-exponent bit 62 clear)
   and catastrophic above — so this seeded regression straddles the
   boundary explicitly, where the qcheck properties might not. *)
let test_pqueue_priorities_across_two () =
  let q = Pqueue.create () in
  let priorities =
    [ 1.5; 2.0; 1e9; 0.25; 3.0; 1.9999999999999998; 2.0000000000000004; 0.0 ]
  in
  List.iteri (fun i p -> Pqueue.push q p i) priorities;
  let rec drain acc =
    match Pqueue.pop q with
    | Some (p, _) -> drain (p :: acc)
    | None -> List.rev acc
  in
  Alcotest.(check (list (float 0.0)))
    "sorted across the 2.0 boundary"
    (List.sort compare priorities)
    (drain [])

let test_pqueue_round_trips_priorities () =
  (* pop must return the pushed priority bit for bit, extremes included *)
  let samples =
    [
      0.0; ldexp 1.0 (-1074) (* smallest subnormal *); ldexp 1.0 (-1022);
      1.0; 2.0; Float.pi; 1e300; max_float; infinity;
    ]
  in
  let q = Pqueue.create () in
  List.iteri (fun i p -> Pqueue.push q p i) samples;
  let rec drain acc =
    match Pqueue.pop q with
    | Some (p, _) -> drain (p :: acc)
    | None -> List.rev acc
  in
  let drained = drain [] in
  List.iter2
    (fun expected got ->
      check
        (Printf.sprintf "bits of %h survive" expected)
        true
        (Int64.bits_of_float expected = Int64.bits_of_float got))
    (List.sort compare samples)
    drained;
  (* -0.0 encodes like +0.0 (float equality), it is not rejected *)
  Pqueue.push q (-0.0) 0;
  match Pqueue.pop q with
  | Some (p, _) -> check "negative zero accepted as zero" true (p = 0.0)
  | None -> Alcotest.fail "pop after push"

let test_pqueue_rejects_negative_and_nan () =
  let q = Pqueue.create () in
  let rejected p =
    try
      Pqueue.push q p 0;
      false
    with Invalid_argument _ -> true
  in
  check "negative priority" true (rejected (-1.0));
  check "negative infinity" true (rejected neg_infinity);
  check "nan" true (rejected Float.nan);
  check "queue untouched by rejections" true (Pqueue.is_empty q)

(* The float-compared binary heap the int-keyed one replaced, kept as a
   model: same array layout, same strict-< sift logic.  Because the bit
   encoding is strictly monotone, both heaps must make identical sift
   decisions — including on ties — so interleaved push/pop sequences
   must produce identical (priority, payload) streams. *)
module Float_heap = struct
  type 'a t = {
    mutable prio : float array;
    mutable data : 'a array;
    mutable size : int;
  }

  let create () = { prio = [||]; data = [||]; size = 0 }

  let grow q x =
    let capacity = Array.length q.prio in
    if q.size = capacity then begin
      let new_capacity = max 16 (2 * capacity) in
      let prio = Array.make new_capacity 0.0 in
      let data = Array.make new_capacity x in
      Array.blit q.prio 0 prio 0 q.size;
      Array.blit q.data 0 data 0 q.size;
      q.prio <- prio;
      q.data <- data
    end

  let swap q i j =
    let pi = q.prio.(i) and di = q.data.(i) in
    q.prio.(i) <- q.prio.(j);
    q.data.(i) <- q.data.(j);
    q.prio.(j) <- pi;
    q.data.(j) <- di

  let rec sift_up q i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if q.prio.(i) < q.prio.(parent) then begin
        swap q i parent;
        sift_up q parent
      end
    end

  let rec sift_down q i =
    let left = (2 * i) + 1 and right = (2 * i) + 2 in
    let smallest = ref i in
    if left < q.size && q.prio.(left) < q.prio.(!smallest) then
      smallest := left;
    if right < q.size && q.prio.(right) < q.prio.(!smallest) then
      smallest := right;
    if !smallest <> i then begin
      swap q i !smallest;
      sift_down q !smallest
    end

  let push q prio x =
    grow q x;
    q.prio.(q.size) <- prio;
    q.data.(q.size) <- x;
    q.size <- q.size + 1;
    sift_up q (q.size - 1)

  let pop q =
    if q.size = 0 then None
    else begin
      let prio = q.prio.(0) and x = q.data.(0) in
      q.size <- q.size - 1;
      if q.size > 0 then begin
        q.prio.(0) <- q.prio.(q.size);
        q.data.(0) <- q.data.(q.size);
        sift_down q 0
      end;
      Some (prio, x)
    end
end

let prop_pqueue_replays_float_heap =
  (* duplicate-heavy priorities (multiples of 0.25 in [0, 3.75], so ties
     are common and the 2.0 bit boundary is crossed) with interleaved
     pushes and pops: payload streams must match exactly, proving the
     encoding changes nothing — not even tie-breaking order *)
  QCheck2.Test.make ~name:"int-keyed heap replays the float heap exactly"
    ~count:300
    QCheck2.Gen.(list (pair bool (int_bound 15)))
    (fun operations ->
      let q = Pqueue.create () in
      let model = Float_heap.create () in
      let counter = ref 0 in
      let step (is_pop, raw) =
        if is_pop then Pqueue.pop q = Float_heap.pop model
        else begin
          let priority = float_of_int raw /. 4.0 in
          incr counter;
          Pqueue.push q priority !counter;
          Float_heap.push model priority !counter;
          true
        end
      in
      let rec drain () =
        match (Pqueue.pop q, Float_heap.pop model) with
        | None, None -> true
        | Some a, Some b -> a = b && drain ()
        | _ -> false
      in
      List.for_all step operations && drain ())

let test_pqueue_lazy_deletion_pattern () =
  (* the A* usage pattern: "decrease-key" is a re-push of the same
     payload at a better priority, the stale entry popped later and
     skipped by the caller.  All copies must surface, best first. *)
  let q = Pqueue.create () in
  Pqueue.push q 10.0 "n";
  Pqueue.push q 6.0 "n";
  Pqueue.push q 2.5 "n";
  Pqueue.push q 4.0 "other";
  check_int "all copies retained" 4 (Pqueue.length q);
  let rec drain acc =
    match Pqueue.pop q with
    | Some (p, x) -> drain ((p, x) :: acc)
    | None -> List.rev acc
  in
  Alcotest.(check (list (pair (float 0.0) string)))
    "best copy first, stale copies later"
    [ (2.5, "n"); (4.0, "other"); (6.0, "n"); (10.0, "n") ]
    (drain [])

(* ---- Graph --------------------------------------------------------- *)

let diamond () =
  (* 0 - 1, 0 - 2, 1 - 3, 2 - 3 with distinct weights *)
  Graph.of_edges 4 [ (0, 1, 1.0); (0, 2, 2.0); (1, 3, 3.0); (2, 3, 0.5) ]

let test_graph_basics () =
  let g = diamond () in
  check_int "nodes" 4 (Graph.node_count g);
  check_int "edges" 4 (Graph.edge_count g);
  check "has 0-1" true (Graph.has_edge g 0 1);
  check "has 1-0 (undirected)" true (Graph.has_edge g 1 0);
  check "no 0-3" false (Graph.has_edge g 0 3);
  check_float "weight" 2.0 (Graph.edge_weight_exn g 2 0);
  check_int "degree of 3" 2 (Graph.degree g 3);
  check_float "strength of 0" 3.0 (Graph.node_strength g 0);
  Alcotest.(check (list (pair int (float 1e-9))))
    "neighbors sorted" [ (1, 1.0); (2, 2.0) ] (Graph.neighbors g 0)

let test_graph_replace_edge () =
  let g = diamond () in
  Graph.add_edge g 0 1 9.0;
  check_float "replaced weight" 9.0 (Graph.edge_weight_exn g 1 0);
  check_int "edge count unchanged" 4 (Graph.edge_count g)

let test_graph_remove_edge () =
  let g = diamond () in
  Graph.remove_edge g 0 1;
  check "removed" false (Graph.has_edge g 0 1);
  Graph.remove_edge g 0 1;
  check_int "three left" 3 (Graph.edge_count g)

let test_graph_rejects_self_loop () =
  let g = Graph.create 3 in
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.add_edge: self-loop")
    (fun () -> Graph.add_edge g 1 1 1.0)

let test_graph_rejects_out_of_range () =
  let g = Graph.create 3 in
  check "raises" true
    (try
       Graph.add_edge g 0 7 1.0;
       false
     with Invalid_argument _ -> true)

let test_graph_edges_each_once () =
  let g = diamond () in
  Alcotest.(check int) "4 undirected edges" 4 (List.length (Graph.edges g));
  List.iter (fun (u, v, _) -> check "u < v" true (u < v)) (Graph.edges g)

let test_graph_map_weights () =
  let g = diamond () in
  let doubled = Graph.map_weights (fun _ _ w -> 2.0 *. w) g in
  check_float "doubled" 2.0 (Graph.edge_weight_exn doubled 0 1);
  check_float "original intact" 1.0 (Graph.edge_weight_exn g 0 1)

let test_graph_connectivity () =
  let g = diamond () in
  check "connected" true (Graph.is_connected g);
  let disconnected = Graph.of_edges 4 [ (0, 1, 1.0); (2, 3, 1.0) ] in
  check "disconnected" false (Graph.is_connected disconnected);
  check "subset 0,1 connected" true (Graph.is_connected_subset disconnected [ 0; 1 ]);
  check "subset 1,2 disconnected" false
    (Graph.is_connected_subset disconnected [ 1; 2 ]);
  check "empty subset" false (Graph.is_connected_subset g []);
  check "singleton" true (Graph.is_connected_subset g [ 2 ])

let test_induced_subgraph () =
  let g = diamond () in
  let sub = Graph.induced_subgraph g [ 0; 1; 3 ] in
  check "keeps 0-1" true (Graph.has_edge sub 0 1);
  check "keeps 1-3" true (Graph.has_edge sub 1 3);
  check "drops 2-3" false (Graph.has_edge sub 2 3)

(* ---- Paths --------------------------------------------------------- *)

let test_dijkstra_diamond () =
  let g = diamond () in
  let dist, prev = Paths.dijkstra g 0 in
  check_float "dist 0" 0.0 dist.(0);
  check_float "dist 3 via 2" 2.5 dist.(3);
  check_int "prev of 3" 2 prev.(3)

let test_shortest_path () =
  let g = diamond () in
  Alcotest.(check (option (list int)))
    "path 0->3" (Some [ 0; 2; 3 ])
    (Paths.shortest_path g 0 3);
  Alcotest.(check (option (list int)))
    "path to self" (Some [ 1 ])
    (Paths.shortest_path g 1 1);
  let disconnected = Graph.of_edges 3 [ (0, 1, 1.0) ] in
  Alcotest.(check (option (list int)))
    "unreachable" None
    (Paths.shortest_path disconnected 0 2)

let test_path_cost () =
  let g = diamond () in
  check_float "cost of 0-2-3" 2.5 (Paths.path_cost g [ 0; 2; 3 ]);
  check_float "empty path" 0.0 (Paths.path_cost g []);
  check_float "single node" 0.0 (Paths.path_cost g [ 1 ])

let test_bfs_hops () =
  let g = diamond () in
  let hops = Paths.bfs_hops g 0 in
  check_int "hop to self" 0 hops.(0);
  check_int "hop to 3" 2 hops.(3);
  let disconnected = Graph.of_edges 3 [ (0, 1, 1.0) ] in
  check_int "unreachable hop" max_int (Paths.bfs_hops disconnected 0).(2)

let test_negative_weight_rejected () =
  let g = Graph.of_edges 2 [ (0, 1, -1.0) ] in
  check "raises" true
    (try
       let _ = Paths.dijkstra g 0 in
       false
     with Invalid_argument _ -> true)

let random_connected_graph =
  QCheck2.Gen.(
    let* n = int_range 2 12 in
    let* extra = list_size (int_bound 12) (pair (int_bound (n - 1)) (int_bound (n - 1))) in
    let* weights = list_repeat (n - 1 + List.length extra) (float_range 0.1 10.0) in
    (* spanning chain guarantees connectivity *)
    let chain = List.init (n - 1) (fun i -> (i, i + 1)) in
    let all_pairs = chain @ List.filter (fun (u, v) -> u <> v) extra in
    let edges =
      List.map2 (fun (u, v) w -> (min u v, max u v, w))
        (List.filteri (fun i _ -> i < List.length weights) all_pairs)
        (List.filteri (fun i _ -> i < List.length all_pairs) weights)
    in
    return (Graph.of_edges n edges))

let prop_dijkstra_triangle =
  QCheck2.Test.make ~name:"dijkstra satisfies triangle inequality" ~count:100
    random_connected_graph (fun g ->
      let n = Graph.node_count g in
      let d = Paths.all_pairs g in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          for k = 0 to n - 1 do
            if d.(i).(j) > d.(i).(k) +. d.(k).(j) +. 1e-9 then ok := false
          done
        done
      done;
      !ok)

let prop_shortest_path_cost_matches =
  QCheck2.Test.make ~name:"shortest path cost equals dijkstra distance"
    ~count:100 random_connected_graph (fun g ->
      let n = Graph.node_count g in
      let dist, _ = Paths.dijkstra g 0 in
      let ok = ref true in
      for v = 0 to n - 1 do
        match Paths.shortest_path g 0 v with
        | Some path ->
          if Float.abs (Paths.path_cost g path -. dist.(v)) > 1e-9 then
            ok := false
        | None -> ok := false
      done;
      !ok)

let prop_hops_le_weighted_path_length =
  QCheck2.Test.make ~name:"hop distance is a lower bound on path length"
    ~count:100 random_connected_graph (fun g ->
      let n = Graph.node_count g in
      let hops = Paths.all_pairs_hops g in
      let ok = ref true in
      for v = 0 to n - 1 do
        match Paths.shortest_path g 0 v with
        | Some path -> if List.length path - 1 < hops.(0).(v) then ok := false
        | None -> ok := false
      done;
      !ok)

(* ---- Kcore --------------------------------------------------------- *)

let test_core_numbers_clique_plus_tail () =
  (* triangle 0-1-2 with a tail 2-3 *)
  let g =
    Graph.of_edges 4 [ (0, 1, 1.); (0, 2, 1.); (1, 2, 1.); (2, 3, 1.) ]
  in
  let core = Kcore.core_numbers g in
  check_int "triangle node" 2 core.(0);
  check_int "triangle node" 2 core.(1);
  check_int "junction" 2 core.(2);
  check_int "tail" 1 core.(3);
  Alcotest.(check (list int)) "2-core" [ 0; 1; 2 ] (Kcore.k_core g 2)

let test_strength_helpers () =
  let g = diamond () in
  check_float "aggregate" (3.0 +. 4.0) (Kcore.aggregate_strength g [ 0; 1 ]);
  check_float "internal" 1.0 (Kcore.internal_strength g [ 0; 1 ]);
  check_float "internal of all" 6.5 (Kcore.internal_strength g [ 0; 1; 2; 3 ])

let test_strongest_subgraph_picks_strong_side () =
  (* two triangles joined by a bridge; right triangle much stronger *)
  let g =
    Graph.of_edges 6
      [
        (0, 1, 0.1); (0, 2, 0.1); (1, 2, 0.1);
        (2, 3, 0.1);
        (3, 4, 5.0); (3, 5, 5.0); (4, 5, 5.0);
      ]
  in
  Alcotest.(check (list int))
    "strong triangle" [ 3; 4; 5 ]
    (Kcore.strongest_subgraph g ~size:3)

let test_strongest_subgraph_connected =
  QCheck2.Test.make ~name:"strongest subgraph is connected and sized"
    ~count:100
    QCheck2.Gen.(pair random_connected_graph (int_range 1 6))
    (fun (g, k) ->
      let k = min k (Graph.node_count g) in
      let nodes = Kcore.strongest_subgraph g ~size:k in
      List.length nodes = k && Graph.is_connected_subset g nodes)

let test_grow_subgraph () =
  let g = diamond () in
  (match Kcore.grow_subgraph g ~size:2 ~seed:0 with
  | Some nodes ->
    check_int "size" 2 (List.length nodes);
    check "contains seed" true (List.mem 0 nodes)
  | None -> Alcotest.fail "growth failed");
  let disconnected = Graph.of_edges 4 [ (0, 1, 1.0) ] in
  check "too small component" true
    (Kcore.grow_subgraph disconnected ~size:3 ~seed:0 = None)

(* ---- Astar --------------------------------------------------------- *)

(* Sliding puzzle on a line: move a token from 0 to [goal] paying 1 per
   step; heuristic is exact distance. *)
let line_problem goal =
  {
    Astar.start = 0;
    is_goal = (fun s -> s = goal);
    successors = (fun s -> [ (s + 1, 1.0); (s - 1, 1.0) ]);
    heuristic = (fun s -> float_of_int (abs (goal - s)));
    key = string_of_int;
  }

let test_astar_line () =
  match Astar.search (line_problem 7) with
  | Some outcome ->
    check_float "cost" 7.0 outcome.Astar.cost;
    check_int "goal" 7 outcome.Astar.goal
  | None -> Alcotest.fail "no solution"

let test_astar_path_reconstruction () =
  match Astar.search_path (line_problem 3) with
  | Some (states, cost, _) ->
    Alcotest.(check (list int)) "path" [ 0; 1; 2; 3 ] states;
    check_float "cost" 3.0 cost
  | None -> Alcotest.fail "no solution"

let test_astar_expansion_cap () =
  check "cap exhausts" true (Astar.search ~max_expansions:3 (line_problem 50) = None)

let test_astar_prefers_cheap_route () =
  (* two routes to goal: direct expensive edge vs two cheap edges *)
  let problem =
    {
      Astar.start = "s";
      is_goal = (fun s -> s = "g");
      successors =
        (fun s ->
          match s with
          | "s" -> [ ("g", 10.0); ("m", 1.0) ]
          | "m" -> [ ("g", 1.0) ]
          | _ -> []);
      heuristic = (fun _ -> 0.0);
      key = Fun.id;
    }
  in
  match Astar.search_path problem with
  | Some (states, cost, _) ->
    Alcotest.(check (list string)) "via m" [ "s"; "m"; "g" ] states;
    check_float "cost 2" 2.0 cost
  | None -> Alcotest.fail "no solution"

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "vqc_graph"
    [
      ( "pqueue",
        [
          Alcotest.test_case "drains in order" `Quick test_pqueue_order;
          Alcotest.test_case "peek and clear" `Quick test_pqueue_peek_and_clear;
          Alcotest.test_case "duplicates" `Quick test_pqueue_duplicates;
          Alcotest.test_case "priorities across 2.0" `Quick
            test_pqueue_priorities_across_two;
          Alcotest.test_case "round trips" `Quick
            test_pqueue_round_trips_priorities;
          Alcotest.test_case "rejects negative and nan" `Quick
            test_pqueue_rejects_negative_and_nan;
          Alcotest.test_case "lazy deletion" `Quick
            test_pqueue_lazy_deletion_pattern;
        ]
        @ qcheck [ prop_pqueue_sorts; prop_pqueue_replays_float_heap ] );
      ( "graph",
        [
          Alcotest.test_case "basics" `Quick test_graph_basics;
          Alcotest.test_case "replace edge" `Quick test_graph_replace_edge;
          Alcotest.test_case "remove edge" `Quick test_graph_remove_edge;
          Alcotest.test_case "rejects self loop" `Quick test_graph_rejects_self_loop;
          Alcotest.test_case "rejects range" `Quick test_graph_rejects_out_of_range;
          Alcotest.test_case "edges once" `Quick test_graph_edges_each_once;
          Alcotest.test_case "map weights" `Quick test_graph_map_weights;
          Alcotest.test_case "connectivity" `Quick test_graph_connectivity;
          Alcotest.test_case "induced subgraph" `Quick test_induced_subgraph;
        ] );
      ( "paths",
        [
          Alcotest.test_case "dijkstra diamond" `Quick test_dijkstra_diamond;
          Alcotest.test_case "shortest path" `Quick test_shortest_path;
          Alcotest.test_case "path cost" `Quick test_path_cost;
          Alcotest.test_case "bfs hops" `Quick test_bfs_hops;
          Alcotest.test_case "negative weights" `Quick test_negative_weight_rejected;
        ]
        @ qcheck
            [
              prop_dijkstra_triangle;
              prop_shortest_path_cost_matches;
              prop_hops_le_weighted_path_length;
            ] );
      ( "kcore",
        [
          Alcotest.test_case "core numbers" `Quick test_core_numbers_clique_plus_tail;
          Alcotest.test_case "strength helpers" `Quick test_strength_helpers;
          Alcotest.test_case "strongest side" `Quick
            test_strongest_subgraph_picks_strong_side;
          Alcotest.test_case "grow subgraph" `Quick test_grow_subgraph;
        ]
        @ qcheck [ test_strongest_subgraph_connected ] );
      ( "astar",
        [
          Alcotest.test_case "line search" `Quick test_astar_line;
          Alcotest.test_case "path reconstruction" `Quick
            test_astar_path_reconstruction;
          Alcotest.test_case "expansion cap" `Quick test_astar_expansion_cap;
          Alcotest.test_case "prefers cheap route" `Quick
            test_astar_prefers_cheap_route;
        ] );
    ]

(* Tests for the benchmark kernels: structure, entanglement patterns and
   catalog consistency. *)

module Gate = Vqc_circuit.Gate
module Circuit = Vqc_circuit.Circuit
module Catalog = Vqc_workloads.Catalog
module Bv = Vqc_workloads.Bv
module Qft = Vqc_workloads.Qft
module Alu = Vqc_workloads.Alu
module Ghz = Vqc_workloads.Ghz
module Rnd = Vqc_workloads.Rnd
module Triswap = Vqc_workloads.Triswap
module Stdgates = Vqc_workloads.Stdgates

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* The serving layer accepts inline QASM, so the printer/parser pair
   must round-trip every kernel the catalog can hand it (the arbitrary-
   circuit qcheck property lives in test_circuit.ml). *)
let test_catalog_qasm_roundtrip () =
  List.iter
    (fun entry ->
      let circuit = entry.Catalog.circuit in
      match Vqc_circuit.Qasm.of_string (Vqc_circuit.Qasm.to_string circuit) with
      | Error message ->
        Alcotest.failf "%s does not reparse: %s" entry.Catalog.name message
      | Ok parsed ->
        check
          (Printf.sprintf "%s round-trips" entry.Catalog.name)
          true
          (Circuit.equal circuit parsed))
    Catalog.all

(* ---- Stdgates ------------------------------------------------------ *)

let test_toffoli_expansion () =
  let gates = Stdgates.toffoli 0 1 2 in
  let cx_count =
    List.length (List.filter (function Gate.Cnot _ -> true | _ -> false) gates)
  in
  check_int "6 CNOTs" 6 cx_count;
  check_int "15 gates" 15 (List.length gates);
  check "distinct operands required" true
    (try
       let _ = Stdgates.toffoli 0 0 2 in
       false
     with Invalid_argument _ -> true)

let test_cphase_expansion () =
  let gates = Stdgates.cphase 0.5 0 1 in
  let cx_count =
    List.length (List.filter (function Gate.Cnot _ -> true | _ -> false) gates)
  in
  check_int "2 CNOTs" 2 cx_count;
  check_int "5 gates" 5 (List.length gates)

(* ---- Bernstein-Vazirani -------------------------------------------- *)

let test_bv_structure () =
  let c = Bv.circuit 16 in
  check_int "16 qubits" 16 (Circuit.num_qubits c);
  let s = Circuit.stats c in
  (* all-ones secret: 15 oracle CNOTs, all into the ancilla *)
  check_int "15 CNOTs" 15 s.Circuit.cnot_gates;
  check_int "15 measures" 15 s.Circuit.measurements;
  (* hub pattern: every CNOT targets the ancilla (last qubit) *)
  List.iter
    (fun gate ->
      match gate with
      | Gate.Cnot { target; _ } -> check_int "hub target" 15 target
      | Gate.One_qubit _ | Gate.Swap _ | Gate.Measure _ | Gate.Barrier _ -> ())
    (Circuit.gates c)

let test_bv_secret_controls_oracle () =
  let c = Bv.circuit ~secret:0b101 4 in
  let controls =
    List.filter_map
      (function Gate.Cnot { control; _ } -> Some control | _ -> None)
      (Circuit.gates c)
  in
  Alcotest.(check (list int)) "only secret bits" [ 0; 2 ] (List.sort compare controls)

let test_bv_rejects_tiny () =
  check "raises" true
    (try
       let _ = Bv.circuit 1 in
       false
     with Invalid_argument _ -> true)

(* ---- QFT ------------------------------------------------------------ *)

let test_qft_structure () =
  let n = 6 in
  let c = Qft.circuit n in
  check_int "qubits" n (Circuit.num_qubits c);
  let s = Circuit.stats c in
  (* n*(n-1)/2 controlled phases, 2 CNOTs each *)
  check_int "cx count" (n * (n - 1)) s.Circuit.cnot_gates;
  check_int "measures" n s.Circuit.measurements;
  (* all-to-all interaction pattern *)
  let pairs = Circuit.interaction_counts c in
  check_int "every pair interacts" (n * (n - 1) / 2) (List.length pairs)

let test_qft_instruction_count_matches_table1 () =
  (* paper Table 1: qft-12 has 344 instructions; ours counts 354
     (12 h + 66 cphase x 5 gates + 12 measures) *)
  let s = Circuit.stats (Qft.circuit 12) in
  check "within 5% of Table 1" true (abs (s.Circuit.total_gates - 344) < 20)

(* ---- ALU ------------------------------------------------------------ *)

let test_alu_structure () =
  let c = Alu.circuit in
  check_int "10 qubits" 10 (Circuit.num_qubits c);
  let s = Circuit.stats c in
  check "instruction count near Table 1's 299" true
    (abs (s.Circuit.total_gates - 299) < 30);
  check_int "measures (4 sum bits + carry)" 5 s.Circuit.measurements

let test_alu_rounds_scale () =
  let one = Circuit.stats (Alu.adder 4) in
  let two = Circuit.stats (Alu.adder ~rounds:2 4) in
  check "two rounds roughly doubles gates" true
    (two.Circuit.total_gates > (2 * one.Circuit.total_gates) - 30);
  check "raises on zero rounds" true
    (try
       let _ = Alu.adder ~rounds:0 2 in
       false
     with Invalid_argument _ -> true)

(* ---- GHZ / TriSwap --------------------------------------------------- *)

let test_ghz_structure () =
  let c = Ghz.circuit 5 in
  let s = Circuit.stats c in
  check_int "chain of CNOTs" 4 s.Circuit.cnot_gates;
  check_int "one hadamard" 1 s.Circuit.one_qubit_gates;
  check_int "all measured" 5 s.Circuit.measurements

let test_triswap_structure () =
  let s = Circuit.stats Triswap.circuit in
  check_int "three swaps" 3 s.Circuit.swap_gates;
  check_int "three qubits" 3 (Circuit.num_qubits Triswap.circuit)

(* ---- Random kernels -------------------------------------------------- *)

let test_rnd_short_distance_span () =
  let c = Rnd.short_distance () in
  check_int "20 qubits" 20 (Circuit.num_qubits c);
  List.iter
    (fun gate ->
      match gate with
      | Gate.Cnot { control; target } ->
        check "span at most 2" true (abs (control - target) <= 2)
      | Gate.One_qubit _ | Gate.Swap _ | Gate.Measure _ | Gate.Barrier _ -> ())
    (Circuit.gates c)

let test_rnd_long_distance_span () =
  let c = Rnd.long_distance () in
  List.iter
    (fun gate ->
      match gate with
      | Gate.Cnot { control; target } ->
        check "span at least 10" true (abs (control - target) >= 10)
      | Gate.One_qubit _ | Gate.Swap _ | Gate.Measure _ | Gate.Barrier _ -> ())
    (Circuit.gates c)

let test_rnd_is_seeded () =
  let a = Rnd.short_distance ~seed:4 () in
  let b = Rnd.short_distance ~seed:4 () in
  let c = Rnd.short_distance ~seed:5 () in
  check "same seed same circuit" true (Circuit.equal a b);
  check "different seed differs" true (not (Circuit.equal a c))

let test_rnd_gate_budget () =
  let c = Rnd.short_distance ~gates:50 ~qubits:10 () in
  let s = Circuit.stats c in
  check_int "body + measures" (50 + 10) s.Circuit.total_gates

let test_rnd_rejects_impossible_filter () =
  check "raises" true
    (try
       let _ =
         Rnd.random_cnots ~seed:1 ~qubits:4 ~gates:10 ~pair_ok:(fun _ _ -> false)
       in
       false
     with Invalid_argument _ -> true)

(* ---- Catalog --------------------------------------------------------- *)

let test_catalog_names_unique () =
  let names = Catalog.names () in
  check_int "unique names" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_catalog_find () =
  let entry = Catalog.find "bv-16" in
  check_int "16 qubits" 16 (Circuit.num_qubits entry.Catalog.circuit);
  check "unknown raises" true
    (try
       let _ = Catalog.find "nope" in
       false
     with Not_found -> true)

let test_catalog_table1_matches_paper_qubits () =
  List.iter
    (fun (name, qubits) ->
      let entry = Catalog.find name in
      check_int name qubits (Circuit.num_qubits entry.Catalog.circuit))
    [
      ("alu", 10); ("bv-16", 16); ("bv-20", 20); ("qft-12", 12);
      ("qft-14", 14); ("rnd-SD", 20); ("rnd-LD", 20);
    ]

let test_catalog_suites_fit_their_devices () =
  List.iter
    (fun (e : Catalog.entry) ->
      check (e.Catalog.name ^ " fits Q5") true
        (Circuit.num_qubits e.Catalog.circuit <= 5))
    Catalog.q5_suite;
  List.iter
    (fun (e : Catalog.entry) ->
      check_int (e.Catalog.name ^ " uses 10 qubits") 10
        (Circuit.num_qubits e.Catalog.circuit))
    Catalog.partition_suite

let test_extended_suite_shapes () =
  List.iter
    (fun (name, qubits) ->
      let entry = Catalog.find name in
      check_int name qubits (Circuit.num_qubits entry.Catalog.circuit))
    [ ("dj-8", 8); ("grover-2", 2); ("grover-3", 3); ("w-6", 6); ("qaoa-12", 12) ]

let test_dj_validation () =
  let raises f = try f () |> ignore; false with Invalid_argument _ -> true in
  check "tiny" true (raises (fun () -> Vqc_workloads.Dj.circuit Vqc_workloads.Dj.Constant 1));
  check "zero mask" true
    (raises (fun () -> Vqc_workloads.Dj.circuit (Vqc_workloads.Dj.Balanced 0) 4))

let test_grover_validation () =
  let raises f = try f () |> ignore; false with Invalid_argument _ -> true in
  check "width" true (raises (fun () -> Vqc_workloads.Grover.circuit ~marked:0 4));
  check "marked range" true
    (raises (fun () -> Vqc_workloads.Grover.circuit ~marked:9 3))

let test_wstate_and_qaoa_validation () =
  let raises f = try f () |> ignore; false with Invalid_argument _ -> true in
  check "w too small" true (raises (fun () -> Vqc_workloads.Wstate.circuit 1));
  check "qaoa too small" true
    (raises (fun () -> Vqc_workloads.Qaoa.ring_maxcut 2));
  check "qaoa layers" true
    (raises (fun () -> Vqc_workloads.Qaoa.ring_maxcut ~layers:0 5))

let test_cry_and_ccz_expansions () =
  let cx_count gates =
    List.length (List.filter (function Gate.Cnot _ -> true | _ -> false) gates)
  in
  check_int "cry has 2 CNOTs" 2 (cx_count (Stdgates.cry 0.7 0 1));
  check_int "ccz has 6 CNOTs" 6 (cx_count (Stdgates.ccz 0 1 2))

let test_all_catalog_circuits_end_in_measurement () =
  List.iter
    (fun (e : Catalog.entry) ->
      let s = Circuit.stats e.Catalog.circuit in
      check (e.Catalog.name ^ " measures") true (s.Circuit.measurements > 0))
    Catalog.all

let () =
  Alcotest.run "vqc_workloads"
    [
      ( "stdgates",
        [
          Alcotest.test_case "toffoli" `Quick test_toffoli_expansion;
          Alcotest.test_case "cphase" `Quick test_cphase_expansion;
        ] );
      ( "bernstein-vazirani",
        [
          Alcotest.test_case "structure" `Quick test_bv_structure;
          Alcotest.test_case "secret" `Quick test_bv_secret_controls_oracle;
          Alcotest.test_case "tiny" `Quick test_bv_rejects_tiny;
        ] );
      ( "qft",
        [
          Alcotest.test_case "structure" `Quick test_qft_structure;
          Alcotest.test_case "table 1 size" `Quick
            test_qft_instruction_count_matches_table1;
        ] );
      ( "alu",
        [
          Alcotest.test_case "structure" `Quick test_alu_structure;
          Alcotest.test_case "rounds" `Quick test_alu_rounds_scale;
        ] );
      ( "small kernels",
        [
          Alcotest.test_case "ghz" `Quick test_ghz_structure;
          Alcotest.test_case "triswap" `Quick test_triswap_structure;
        ] );
      ( "random",
        [
          Alcotest.test_case "short distance" `Quick test_rnd_short_distance_span;
          Alcotest.test_case "long distance" `Quick test_rnd_long_distance_span;
          Alcotest.test_case "seeded" `Quick test_rnd_is_seeded;
          Alcotest.test_case "gate budget" `Quick test_rnd_gate_budget;
          Alcotest.test_case "impossible filter" `Quick
            test_rnd_rejects_impossible_filter;
        ] );
      ( "catalog",
        [
          Alcotest.test_case "unique names" `Quick test_catalog_names_unique;
          Alcotest.test_case "find" `Quick test_catalog_find;
          Alcotest.test_case "table 1 qubits" `Quick
            test_catalog_table1_matches_paper_qubits;
          Alcotest.test_case "suites fit devices" `Quick
            test_catalog_suites_fit_their_devices;
          Alcotest.test_case "all measured" `Quick
            test_all_catalog_circuits_end_in_measurement;
          Alcotest.test_case "qasm round-trip" `Quick
            test_catalog_qasm_roundtrip;
        ] );
      ( "extended suite",
        [
          Alcotest.test_case "shapes" `Quick test_extended_suite_shapes;
          Alcotest.test_case "dj validation" `Quick test_dj_validation;
          Alcotest.test_case "grover validation" `Quick test_grover_validation;
          Alcotest.test_case "wstate/qaoa validation" `Quick
            test_wstate_and_qaoa_validation;
          Alcotest.test_case "cry/ccz expansions" `Quick
            test_cry_and_ccz_expansions;
        ] );
    ]

(* Pins the static-analysis renderings byte-for-byte: the text report,
   the SARIF 2.1.0 log and the baseline file produced from one fixture
   source tree (source rules) and one corrupted calibration
   (calibration lint).  Routed through `diff` against
   test/golden/check-static.expected like every other golden.

   The fixture sources live here as quoted strings — the self-lint
   tokenizer proves the point by NOT flagging the banned names inside
   them. *)

module Diagnostic = Vqc_diag.Diagnostic
module Rules = Vqc_check.Rules
module Calib_lint = Vqc_check.Calib_lint
module Sarif = Vqc_check.Sarif
module Baseline = Vqc_check.Baseline
module Calibration = Vqc_device.Calibration
module Topologies = Vqc_device.Topologies

let fixture_unclean =
  {|(* A comment naming Random.self_init and Unix.gettimeofday must not
   flag; nor must the string below. *)
let banned = "Sys.time inside a string literal"

let () = Random.self_init ()
let now () = Unix.gettimeofday ()
let cpu () = Sys.time ()
let () = print_endline "library code printing to stdout"
let hits = ref 0

let with_lock m f =
  Mutex.lock m;
  f ()
|}

let fixture_clean =
  {|(* Only mentions: Random.self_init, Sys.time, print_endline. *)
let quoted = {x|Unix.gettimeofday in a quoted string|x}
let answer = '"'
|}

let corrupted_calibration () =
  let calibration = Calibration.create 5 in
  List.iter
    (fun (u, v) -> Calibration.set_link_error calibration u v 0.05)
    Topologies.ibm_q5_tenerife;
  let q0 = Calibration.qubit calibration 0 in
  Calibration.set_qubit calibration 0 { q0 with Calibration.error_1q = 1.5 };
  let q1 = Calibration.qubit calibration 1 in
  Calibration.set_qubit calibration 1
    { q1 with Calibration.t1_us = 40.0; t2_us = 95.0 };
  calibration

let () =
  let findings =
    Rules.scan_source ~file:"lib/demo/unclean.ml" fixture_unclean
    @ Rules.scan_source ~file:"lib/demo/clean.ml" fixture_clean
    @ Calib_lint.profile ~name:"fixture-q5"
        ~coupling:Topologies.ibm_q5_tenerife (corrupted_calibration ())
  in
  let findings = List.sort Diagnostic.compare findings in
  print_endline "== text ==";
  List.iter (fun d -> print_endline (Diagnostic.to_string d)) findings;
  print_endline "== sarif ==";
  print_endline (Sarif.render findings);
  print_endline "== baseline ==";
  print_string (Baseline.render findings)

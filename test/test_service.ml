(* Tests for the compilation service: fingerprints, the LRU plan cache,
   admission control, epoch rotation, the NDJSON protocol, and the
   end-to-end determinism contract (responses byte-identical modulo
   "nd" across worker counts and cache on/off). *)

module Circuit = Vqc_circuit.Circuit
module Qasm = Vqc_circuit.Qasm
module History = Vqc_device.History
module Topologies = Vqc_device.Topologies
module Catalog = Vqc_workloads.Catalog
module Metrics = Vqc_obs.Metrics
module Json = Vqc_obs.Json
module Json_io = Vqc_service.Json_io
module Fingerprint = Vqc_service.Fingerprint
module Policies = Vqc_service.Policies
module Plan_cache = Vqc_service.Plan_cache
module Epoch = Vqc_service.Epoch
module Admission = Vqc_service.Admission
module Protocol = Vqc_service.Protocol
module Service = Vqc_service.Service

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let counter name =
  Metrics.counter_value (Metrics.counter name)

(* ---- Json_io ------------------------------------------------------- *)

let test_json_parse_values () =
  let ok text = Result.get_ok (Json_io.parse text) in
  check "null" true (ok "null" = Json.Null);
  check "bool" true (ok "true" = Json.Bool true);
  check "int" true (ok "42" = Json.Int 42);
  check "negative int" true (ok "-7" = Json.Int (-7));
  check "float" true (ok "2.5" = Json.Float 2.5);
  check "exponent is float" true (ok "1e3" = Json.Float 1000.0);
  check "string" true (ok {|"hi"|} = Json.String "hi");
  check "escapes" true (ok {|"a\nb\"c"|} = Json.String "a\nb\"c");
  check "unicode escape" true (ok {|"A"|} = Json.String "A");
  check "nested" true
    (ok {|{"a":[1,{"b":null}],"c":""}|}
    = Json.Obj
        [
          ("a", Json.List [ Json.Int 1; Json.Obj [ ("b", Json.Null) ] ]);
          ("c", Json.String "");
        ])

let test_json_parse_errors () =
  let bad text = Result.is_error (Json_io.parse text) in
  check "empty" true (bad "");
  check "trailing garbage" true (bad "1 2");
  check "unterminated" true (bad {|"abc|});
  check "bare key" true (bad "{a:1}");
  check "trailing comma" true (bad "[1,]");
  check "lone surrogate" true (bad {|"\ud800"|})

let test_json_roundtrips_emitter () =
  (* whatever the obs emitter writes, the service parser reads back *)
  let value =
    Json.Obj
      [
        ("s", Json.String "line\nbreak\ttab\"quote\\");
        ("xs", Json.List [ Json.Int 1; Json.Float 0.5; Json.Bool false ]);
        ("n", Json.Null);
      ]
  in
  check "parse (emit x) = x" true
    (Result.get_ok (Json_io.parse (Json.to_string value)) = value)

(* ---- Fingerprint --------------------------------------------------- *)

let test_fingerprint_known_value () =
  (* FNV-1a 64 test vectors (empty string = offset basis) *)
  check_string "empty" "cbf29ce484222325" (Fingerprint.of_string "");
  check_string "a" "af63dc4c8601ec8c" (Fingerprint.of_string "a")

let test_fingerprint_follows_content () =
  let bv = (Catalog.find "bv-16").Catalog.circuit in
  let reparsed = Qasm.of_string_exn (Qasm.to_string bv) in
  check_string "structurally equal circuits fingerprint identically"
    (Fingerprint.circuit bv)
    (Fingerprint.circuit reparsed);
  let ghz = (Catalog.find "GHZ-3").Catalog.circuit in
  check "distinct circuits fingerprint distinctly" true
    (Fingerprint.circuit bv <> Fingerprint.circuit ghz)

let test_fingerprint_distinguishes_epochs () =
  let history =
    History.generate ~days:3 ~seed:5 ~coupling:Topologies.ibm_q5_tenerife 5
  in
  let fp d = Fingerprint.calibration (History.day history d) in
  check "different days fingerprint differently" true
    (fp 0 <> fp 1 && fp 1 <> fp 2)

(* ---- Plan_cache ---------------------------------------------------- *)

let key n =
  {
    Plan_cache.circuit_fp = Printf.sprintf "c%d" n;
    calibration_fp = "cal";
    policy = "p";
  }

let test_cache_lru_eviction () =
  let cache = Plan_cache.create ~capacity:2 () in
  Plan_cache.insert cache (key 1) 1;
  Plan_cache.insert cache (key 2) 2;
  (* touch key 1 so key 2 becomes the eviction candidate *)
  check "1 hit" true (Plan_cache.find cache (key 1) = Some 1);
  Plan_cache.insert cache (key 3) 3;
  check_int "bounded" 2 (Plan_cache.length cache);
  check "2 evicted" true (Plan_cache.find cache (key 2) = None);
  check "1 survives" true (Plan_cache.find cache (key 1) = Some 1);
  check "3 present" true (Plan_cache.find cache (key 3) = Some 3)

let test_cache_retain () =
  let cache = Plan_cache.create ~capacity:8 () in
  List.iter (fun n -> Plan_cache.insert cache (key n) n) [ 1; 2; 3; 4 ];
  let dropped =
    Plan_cache.retain cache (fun k -> k.Plan_cache.circuit_fp = "c2")
  in
  check_int "three dropped" 3 dropped;
  check_int "one left" 1 (Plan_cache.length cache);
  check "survivor" true (Plan_cache.find cache (key 2) = Some 2)

let test_cache_counters () =
  let hits0 = counter "service.cache.hits" in
  let misses0 = counter "service.cache.misses" in
  let evictions0 = counter "service.cache.evictions" in
  let cache = Plan_cache.create ~capacity:1 () in
  check "miss" true (Plan_cache.find cache (key 1) = None);
  Plan_cache.insert cache (key 1) 1;
  check "hit" true (Plan_cache.find cache (key 1) = Some 1);
  Plan_cache.insert cache (key 2) 2;
  check_int "one hit counted" (hits0 + 1) (counter "service.cache.hits");
  check_int "one miss counted" (misses0 + 1) (counter "service.cache.misses");
  check_int "one eviction counted" (evictions0 + 1)
    (counter "service.cache.evictions")

(* ---- Plan_cache sharding equivalence (qcheck) ----------------------- *)

(* Random op streams over a small key space, replayed against a
   single-segment reference cache and a sharded one.  With capacity at
   least the key space (no evictions), sharding must be invisible:
   identical find results, identical final contents, identical
   migration censuses, identical hit/miss counter movements (every
   segment feeds the same counters, so the sums across shards match
   the single-segment reference by observation, not by construction).
   Eviction is per-segment LRU, so under eviction pressure the wall
   asserts the bounded-size invariant and exact run-to-run
   reproducibility instead of pointwise equality. *)

type cache_op =
  | C_insert of int
  | C_find of int
  | C_migrate of int

let gen_cache_ops =
  QCheck2.Gen.(
    list_size (int_range 1 60)
      (oneof
         [
           map (fun n -> C_insert n) (int_bound 15);
           map (fun n -> C_find n) (int_bound 15);
           map (fun seed -> C_migrate seed) (int_bound 7);
         ]))

(* Deterministic, content-based migration decision: drop every fifth
   value, re-key even values to a seed-named calibration (cross-segment
   moves included — the new fingerprint hashes wherever it hashes),
   keep odd values in place. *)
let migrate_decide seed k v =
  if v mod 5 = 4 then None
  else if v mod 2 = 0 then
    Some { k with Plan_cache.calibration_fp = Printf.sprintf "cal-m%d" seed }
  else Some k

(* Replay ops, rendering each observable outcome: traces from two
   behaviourally equal caches are equal as string lists.  Migration
   drops are rendered sorted — segment walk order is the one legitimate
   representation difference between shard counts. *)
let apply_cache_ops cache ops =
  List.map
    (fun op ->
      match op with
      | C_insert n ->
        Plan_cache.insert cache (key n) n;
        Printf.sprintf "insert %d" n
      | C_find n -> begin
        match Plan_cache.find cache (key n) with
        | Some v -> Printf.sprintf "find %d -> %d" n v
        | None -> Printf.sprintf "find %d -> miss" n
      end
      | C_migrate seed ->
        let m = Plan_cache.migrate cache ~decide:(migrate_decide seed) in
        Printf.sprintf "migrate %d -> kept %d dropped [%s]" seed
          m.Plan_cache.kept
          (String.concat ";"
             (List.sort compare
                (List.map
                   (fun (k, v) ->
                     Printf.sprintf "%s=%d" (Plan_cache.key_to_string k) v)
                   m.Plan_cache.dropped))))
    ops

let sorted_entries cache =
  List.sort compare (Plan_cache.entries cache)

let prop_sharding_invisible =
  QCheck2.Test.make ~name:"sharded cache = single segment (no evictions)"
    ~count:100
    QCheck2.Gen.(pair gen_cache_ops (int_range 2 5))
    (fun (ops, shards) ->
      let reference =
        Plan_cache.create ~metrics_prefix:"test.shardeq.ref" ~capacity:32 ()
      in
      let sharded =
        Plan_cache.create ~shards ~metrics_prefix:"test.shardeq.shd"
          ~capacity:32 ()
      in
      let ref_hits0 = counter "test.shardeq.ref.hits" in
      let ref_misses0 = counter "test.shardeq.ref.misses" in
      let shd_hits0 = counter "test.shardeq.shd.hits" in
      let shd_misses0 = counter "test.shardeq.shd.misses" in
      let ref_trace = apply_cache_ops reference ops in
      let shd_trace = apply_cache_ops sharded ops in
      ref_trace = shd_trace
      && sorted_entries reference = sorted_entries sharded
      && counter "test.shardeq.ref.hits" - ref_hits0
         = counter "test.shardeq.shd.hits" - shd_hits0
      && counter "test.shardeq.ref.misses" - ref_misses0
         = counter "test.shardeq.shd.misses" - shd_misses0)

let prop_sharded_eviction_reproducible =
  QCheck2.Test.make
    ~name:"sharded eviction stays bounded and replays identically" ~count:100
    gen_cache_ops
    (fun ops ->
      let run () =
        let cache =
          Plan_cache.create ~shards:3 ~metrics_prefix:"test.shardevict"
            ~capacity:6 ()
        in
        let trace = apply_cache_ops cache ops in
        (trace, Plan_cache.entries cache, Plan_cache.length cache)
      in
      let trace1, entries1, length1 = run () in
      let trace2, entries2, length2 = run () in
      length1 <= 6 && length1 = length2 && trace1 = trace2
      && entries1 = entries2)

(* ---- Admission ----------------------------------------------------- *)

let test_admission_bounds () =
  let queue = Admission.create ~limit:2 in
  check "1 admitted" true (Result.is_ok (Admission.enqueue queue "a"));
  check "2 admitted" true (Result.is_ok (Admission.enqueue queue "b"));
  (match Admission.enqueue queue "c" with
  | Error (Admission.Queue_full { depth; limit }) ->
    check_int "depth" 2 depth;
    check_int "limit" 2 limit
  | Ok () -> Alcotest.fail "third item must be rejected");
  check "fifo drain" true (Admission.drain queue = [ "a"; "b" ]);
  check_int "empty after drain" 0 (Admission.depth queue);
  check "admits again after drain" true
    (Result.is_ok (Admission.enqueue queue "d"))

(* ---- Protocol ------------------------------------------------------ *)

let test_protocol_parse () =
  (match Protocol.parse_line {|{"id":1,"workload":"bv-16"}|} with
  | Ok (Protocol.Compile r) ->
    check "id echoed" true (r.Protocol.id = Some (Json.Int 1));
    check "workload" true (r.Protocol.source = Protocol.Workload "bv-16");
    check_string "default policy" Policies.default_label r.Protocol.policy;
    check "no epoch pin" true (r.Protocol.epoch = None)
  | _ -> Alcotest.fail "compile request expected");
  (match
     Protocol.parse_line
       {|{"qasm":"OPENQASM 2.0;","policy":"baseline","epoch":3}|}
   with
  | Ok (Protocol.Compile r) ->
    check "qasm" true (r.Protocol.source = Protocol.Inline_qasm "OPENQASM 2.0;");
    check_string "policy" "baseline" r.Protocol.policy;
    check "epoch pin" true (r.Protocol.epoch = Some 3)
  | _ -> Alcotest.fail "inline request expected");
  check "advance op" true
    (Protocol.parse_line {|{"op":"advance_epoch"}|}
    = Ok (Protocol.Control Protocol.Advance_epoch));
  check "set op" true
    (Protocol.parse_line {|{"op":"set_epoch","epoch":2}|}
    = Ok (Protocol.Control (Protocol.Set_epoch 2)))

let test_protocol_parse_errors () =
  let bad line = Result.is_error (Protocol.parse_line line) in
  check "not json" true (bad "nope");
  check "not an object" true (bad "[1]");
  check "no source" true (bad {|{"id":1}|});
  check "both sources" true (bad {|{"workload":"alu","qasm":"x"}|});
  check "bad policy type" true (bad {|{"workload":"alu","policy":3}|});
  check "bad epoch type" true (bad {|{"workload":"alu","epoch":"x"}|});
  check "unknown op" true (bad {|{"op":"restart"}|});
  check "set_epoch without epoch" true (bad {|{"op":"set_epoch"}|})

let test_protocol_render_shapes () =
  let rejected =
    Protocol.render
      (Protocol.Rejected
         {
           id = Some (Json.String "j1");
           reason = Admission.Queue_full { depth = 4; limit = 4 };
         })
  in
  check_string "rejection is structured"
    {|{"id":"j1","status":"rejected","reason":"queue_full","code":"VQC130","depth":4,"limit":4}|}
    rejected;
  let failed =
    Protocol.render (Protocol.Failed { id = None; error = "boom" })
  in
  check_string "error shape" {|{"status":"error","error":"boom"}|} failed;
  (* every rendered response reparses as one JSON object *)
  List.iter
    (fun line -> check "response is valid JSON" true
        (match Json_io.parse line with Ok (Json.Obj _) -> true | _ -> false))
    [ rejected; failed ]

(* ---- Service end-to-end -------------------------------------------- *)

let q5_epochs () =
  Epoch.of_history ~name:"Q5" ~coupling:Topologies.ibm_q5_tenerife
    (History.generate ~days:3 ~seed:5 ~coupling:Topologies.ibm_q5_tenerife 5)

let request ?id ?policy ?epoch workload =
  {
    Protocol.id = Option.map (fun i -> Json.Int i) id;
    source = Protocol.Workload workload;
    policy = Option.value policy ~default:Policies.default_label;
    epoch;
    estimate = None;
  }

let batch = [ "bv-3"; "bv-4"; "GHZ-3"; "TriSwap"; "bv-3" ]

let run_batch service =
  List.iteri
    (fun i name ->
      match Service.submit service (request ~id:i name) with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "unexpected rejection")
    batch;
  Service.flush service

(* Strip the nd section at the value level: deterministic fields must
   be byte-identical across jobs and cache configurations. *)
let deterministic_lines responses =
  List.map
    (fun response ->
      Protocol.render
        (match response with
        | Protocol.Compiled c ->
          Protocol.Compiled { c with seconds = 0.0; cache = Protocol.Bypass }
        | other -> other))
    responses

let test_service_deterministic_across_jobs_and_cache () =
  let runs =
    List.map
      (fun config ->
        Service.with_service ~config (q5_epochs ()) (fun service ->
            deterministic_lines (run_batch service)))
      [
        { Service.default_config with Service.jobs = 1 };
        { Service.default_config with Service.jobs = 4 };
        { Service.default_config with Service.jobs = 1; cache_enabled = false };
        { Service.default_config with Service.jobs = 4; cache_enabled = false };
        { Service.default_config with Service.jobs = 1; cache_shards = 4 };
        { Service.default_config with Service.jobs = 4; cache_shards = 8 };
      ]
  in
  match runs with
  | reference :: others ->
    check_int "five responses" (List.length batch) (List.length reference);
    List.iteri
      (fun i lines ->
        List.iter2
          (check_string (Printf.sprintf "run %d matches jobs-1 cached" (i + 1)))
          reference lines)
      others
  | [] -> assert false

let test_service_warm_cache_hits () =
  Service.with_service (q5_epochs ()) (fun service ->
      let hits0 = counter "service.cache.hits" in
      let cold = run_batch service in
      (* the duplicate bv-3 in the batch compiles once but both
         responses are cold-path responses *)
      check "cold run has no hits" true
        (List.for_all
           (function
             | Protocol.Compiled { cache = Protocol.Miss; _ } -> true
             | _ -> false)
           cold);
      let warm = run_batch service in
      check "warm run is all hits" true
        (List.for_all
           (function
             | Protocol.Compiled { cache = Protocol.Hit; _ } -> true
             | _ -> false)
           warm);
      check "warm hits counted" true (counter "service.cache.hits" > hits0);
      List.iter2
        (check_string "warm deterministic fields match cold")
        (deterministic_lines cold) (deterministic_lines warm))

(* The TCP server's L2: sessions sharing a store serve byte-identical
   deterministic fields to a store-less run — store temperature may
   only move metrics and the "nd" section. *)
let test_service_shared_store_warms_across_sessions () =
  let baseline =
    Service.with_service (q5_epochs ()) (fun service ->
        deterministic_lines (run_batch service))
  in
  let store = Service.shared_store ~shards:2 ~capacity:64 () in
  let run_with_store () =
    let service = Service.create ~store (q5_epochs ()) in
    Fun.protect
      ~finally:(fun () -> Service.shutdown service)
      (fun () -> run_batch service)
  in
  let first = run_with_store () in
  let store_hits0 = counter "serve.store.hits" in
  let second = run_with_store () in
  check "second session warms from the store" true
    (counter "serve.store.hits" > store_hits0);
  List.iter2
    (check_string "store-warmed bytes match the store-less run")
    baseline (deterministic_lines first);
  List.iter2
    (check_string "second session bytes match the store-less run")
    baseline (deterministic_lines second)

let test_service_queue_overflow_is_structured () =
  let config = { Service.default_config with Service.queue_limit = 2 } in
  Service.with_service ~config (q5_epochs ()) (fun service ->
      check "1 admitted" true (Result.is_ok (Service.submit service (request "bv-3")));
      check "2 admitted" true (Result.is_ok (Service.submit service (request "bv-4")));
      (match Service.submit service (request "GHZ-3") with
      | Error reason ->
        let line =
          Protocol.render (Protocol.Rejected { id = None; reason })
        in
        check "rejection renders" true
          (match Json_io.parse line with
          | Ok json ->
            Option.bind (Json_io.member "status" json) Json_io.string_value
            = Some "rejected"
          | Error _ -> false)
      | Ok () -> Alcotest.fail "third submit must be rejected");
      check_int "only admitted requests compile" 2
        (List.length (Service.flush service)))

let test_service_epoch_rotation_invalidates () =
  Service.with_service (q5_epochs ()) (fun service ->
      let compile_one ?epoch () =
        match Service.submit service (request ?epoch "bv-3") with
        | Ok () -> begin
          match Service.flush service with
          | [ Protocol.Compiled { plan; cache; _ } ] -> (cache, plan)
          | _ -> Alcotest.fail "one compiled response expected"
        end
        | Error _ -> Alcotest.fail "unexpected rejection"
      in
      let deterministic plan =
        Protocol.render
          (Protocol.Compiled
             { id = None; plan; estimate = None; cache = Protocol.Bypass;
               seconds = 0.0 })
      in
      let first_cache, first_plan = compile_one () in
      check "cold" true (first_cache = Protocol.Miss);
      check "hot on repeat" true (fst (compile_one ()) = Protocol.Hit);
      let invalidated0 = counter "service.cache.invalidated" in
      let next, migration = Service.advance_epoch service in
      check_int "rotated to epoch 1" 1 next;
      check "rotation invalidated the plan" true
        (counter "service.cache.invalidated" > invalidated0);
      check_int "migration reports the invalidation" 1
        migration.Epoch.invalidated;
      check_int "nothing retained across a wholesale advance" 0
        migration.Epoch.retained;
      let second_cache, second_plan = compile_one () in
      check "cold again after rotation" true (second_cache = Protocol.Miss);
      check "new epoch, new calibration fingerprint" true
        (second_plan.Protocol.calibration_fp
        <> first_plan.Protocol.calibration_fp);
      (* pinning the superseded epoch recompiles against it exactly *)
      let _, pinned_plan = compile_one ~epoch:0 () in
      check_string "pinned epoch reproduces the original plan fields"
        (deterministic first_plan) (deterministic pinned_plan))

(* Edge case: with a single epoch, advance wraps to itself and the
   wholesale path must invalidate nothing — every cached plan is still
   keyed by the live calibration. *)
let test_epoch_single_wraps_to_itself () =
  let single =
    Epoch.of_history ~name:"Q5" ~coupling:Topologies.ibm_q5_tenerife
      (History.generate ~days:1 ~seed:5 ~coupling:Topologies.ibm_q5_tenerife 5)
  in
  Service.with_service single (fun service ->
      (match Service.submit service (request "bv-3") with
      | Ok () -> ignore (Service.flush service)
      | Error _ -> Alcotest.fail "unexpected rejection");
      let next, migration = Service.advance_epoch service in
      check_int "wraps to epoch 0" 0 next;
      check_int "nothing invalidated" 0 migration.Epoch.invalidated;
      check_int "the plan survives" 1 migration.Epoch.retained;
      (match Service.submit service (request "bv-3") with
      | Ok () -> begin
        match Service.flush service with
        | [ Protocol.Compiled { cache = Protocol.Hit; _ } ] -> ()
        | _ -> Alcotest.fail "cached plan must survive a wrapped advance"
      end
      | Error _ -> Alcotest.fail "unexpected rejection"))

let drift_config threshold =
  {
    Service.default_config with
    Service.drift = Some { Vqc_drift.Retention.threshold };
  }

(* A forgiving threshold retains every plan across the advance (after
   re-verification); requests against the new epoch then hit the cache
   with the retained plan's original provenance. *)
let test_service_drift_retains_and_recompiles () =
  Service.with_service ~config:(drift_config 1.0) (q5_epochs ())
    (fun service ->
      let submit_all () =
        List.iter
          (fun workload ->
            match Service.submit service (request workload) with
            | Ok () -> ()
            | Error _ -> Alcotest.fail "unexpected rejection")
          [ "bv-3"; "bv-4"; "GHZ-3" ];
        Service.flush service
      in
      let cold = submit_all () in
      check_int "three compiled" 3 (List.length cold);
      let recompiles0 = counter "drift.recompiles" in
      let next, migration = Service.advance_epoch service in
      check_int "rotated to epoch 1" 1 next;
      check_int "all three retained" 3 migration.Epoch.retained;
      check_int "all three re-verified" 3 migration.Epoch.reverified;
      check_int "nothing recompiled" 0 migration.Epoch.recompiled;
      check_int "nothing invalidated" 0 migration.Epoch.invalidated;
      check_int "no background compiles" recompiles0
        (counter "drift.recompiles");
      let warm = submit_all () in
      List.iter
        (fun response ->
          match response with
          | Protocol.Compiled { plan; cache; _ } ->
            check "retained plan serves as a hit" true (cache = Protocol.Hit);
            check_int "provenance keeps the compile-time epoch" 0
              plan.Protocol.epoch
          | _ -> Alcotest.fail "compiled response expected")
        warm;
      (* an impossible threshold demotes everything: the migration
         recompiles in the background and the cache stays warm *)
      Service.with_service ~config:(drift_config 1e-12) (q5_epochs ())
        (fun strict ->
          List.iter
            (fun workload ->
              match Service.submit strict (request workload) with
              | Ok () -> ()
              | Error _ -> Alcotest.fail "unexpected rejection")
            [ "bv-3"; "bv-4"; "GHZ-3" ];
          ignore (Service.flush strict);
          let _, migration = Service.advance_epoch strict in
          check_int "nothing retained" 0 migration.Epoch.retained;
          check_int "all demoted plans recompiled" 3
            migration.Epoch.recompiled;
          check_int "all invalidated" 3 migration.Epoch.invalidated;
          List.iter
            (fun workload ->
              match Service.submit strict (request workload) with
              | Ok () -> ()
              | Error _ -> Alcotest.fail "unexpected rejection")
            [ "bv-3"; "bv-4"; "GHZ-3" ];
          List.iter
            (fun response ->
              match response with
              | Protocol.Compiled { plan; cache; _ } ->
                check "background recompile pre-warmed the cache" true
                  (cache = Protocol.Hit);
                check_int "recompiled plan carries the new epoch" 1
                  plan.Protocol.epoch
              | _ -> Alcotest.fail "compiled response expected")
            (Service.flush strict)))

(* threshold = 0 must be byte-identical to no drift configuration at
   all: same responses, same migration tallies, over the same request
   stream. *)
let test_service_drift_zero_threshold_is_wholesale () =
  let script service =
    let submit_all () =
      List.iter
        (fun workload ->
          match Service.submit service (request workload) with
          | Ok () -> ()
          | Error _ -> Alcotest.fail "unexpected rejection")
        [ "bv-3"; "bv-4"; "GHZ-3" ];
      Service.flush service
    in
    let before = submit_all () in
    let _, migration = Service.advance_epoch service in
    let after = submit_all () in
    (deterministic_lines (before @ after), migration)
  in
  let wholesale_lines, wholesale_migration =
    Service.with_service (q5_epochs ()) script
  in
  let zero_lines, zero_migration =
    Service.with_service ~config:(drift_config 0.0) (q5_epochs ()) script
  in
  List.iter2
    (check_string "threshold 0 reproduces the wholesale responses")
    wholesale_lines zero_lines;
  check "threshold 0 reproduces the wholesale migration" true
    (wholesale_migration = zero_migration)

let test_service_failures_are_responses () =
  Service.with_service (q5_epochs ()) (fun service ->
      let submit r =
        match Service.submit service r with
        | Ok () -> ()
        | Error _ -> Alcotest.fail "unexpected rejection"
      in
      submit (request "no-such-workload");
      submit (request ~policy:"no-such-policy" "bv-3");
      submit (request ~epoch:99 "bv-3");
      (* bv-16 cannot fit the 5-qubit device *)
      submit (request "bv-16");
      submit
        {
          Protocol.id = None;
          source = Protocol.Inline_qasm "OPENQASM 2.0; qreg q[broken";
          policy = Policies.default_label;
          epoch = None;
          estimate = None;
        };
      let responses = Service.flush service in
      check_int "five failures" 5 (List.length responses);
      List.iter
        (fun response ->
          check "structured failure" true
            (match response with Protocol.Failed _ -> true | _ -> false))
        responses)

(* ---- runner -------------------------------------------------------- *)

let () =
  Alcotest.run "vqc_service"
    [
      ( "json io",
        [
          Alcotest.test_case "values" `Quick test_json_parse_values;
          Alcotest.test_case "errors" `Quick test_json_parse_errors;
          Alcotest.test_case "emitter roundtrip" `Quick
            test_json_roundtrips_emitter;
        ] );
      ( "fingerprint",
        [
          Alcotest.test_case "known vectors" `Quick test_fingerprint_known_value;
          Alcotest.test_case "content addressed" `Quick
            test_fingerprint_follows_content;
          Alcotest.test_case "epoch sensitive" `Quick
            test_fingerprint_distinguishes_epochs;
        ] );
      ( "plan cache",
        [
          Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "retain" `Quick test_cache_retain;
          Alcotest.test_case "counters" `Quick test_cache_counters;
          QCheck_alcotest.to_alcotest prop_sharding_invisible;
          QCheck_alcotest.to_alcotest prop_sharded_eviction_reproducible;
        ] );
      ( "admission",
        [ Alcotest.test_case "bounds" `Quick test_admission_bounds ] );
      ( "protocol",
        [
          Alcotest.test_case "parse" `Quick test_protocol_parse;
          Alcotest.test_case "parse errors" `Quick test_protocol_parse_errors;
          Alcotest.test_case "render shapes" `Quick test_protocol_render_shapes;
        ] );
      ( "service",
        [
          Alcotest.test_case "deterministic across jobs and cache" `Quick
            test_service_deterministic_across_jobs_and_cache;
          Alcotest.test_case "warm cache hits" `Quick
            test_service_warm_cache_hits;
          Alcotest.test_case "shared store warms across sessions" `Quick
            test_service_shared_store_warms_across_sessions;
          Alcotest.test_case "queue overflow" `Quick
            test_service_queue_overflow_is_structured;
          Alcotest.test_case "epoch rotation" `Quick
            test_service_epoch_rotation_invalidates;
          Alcotest.test_case "single epoch wraps without invalidation" `Quick
            test_epoch_single_wraps_to_itself;
          Alcotest.test_case "drift retention and background recompile"
            `Quick test_service_drift_retains_and_recompiles;
          Alcotest.test_case "drift threshold 0 is wholesale" `Quick
            test_service_drift_zero_threshold_is_wholesale;
          Alcotest.test_case "failures are responses" `Quick
            test_service_failures_are_responses;
        ] );
    ]

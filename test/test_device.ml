(* Tests for the device substrate: calibration data, topologies, the
   synthetic calibration model, histories and sub-device extraction. *)

module Calibration = Vqc_device.Calibration
module Device = Vqc_device.Device
module Topologies = Vqc_device.Topologies
module Calibration_model = Vqc_device.Calibration_model
module History = Vqc_device.History
module Rng = Vqc_rng.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* ---- Calibration --------------------------------------------------- *)

let sample_calibration () =
  let c = Calibration.create 3 in
  Calibration.set_qubit c 0
    { Calibration.t1_us = 80.0; t2_us = 40.0; error_1q = 0.001; error_readout = 0.02 };
  Calibration.set_link_error c 0 1 0.03;
  Calibration.set_link_error c 1 2 0.10;
  c

let test_calibration_basics () =
  let c = sample_calibration () in
  check_int "qubits" 3 (Calibration.num_qubits c);
  check_float "t1" 80.0 (Calibration.qubit c 0).Calibration.t1_us;
  check_float "link" 0.03 (Calibration.link_error_exn c 0 1);
  check_float "link symmetric" 0.03 (Calibration.link_error_exn c 1 0);
  check "missing link" true (Calibration.link_error c 0 2 = None);
  check_int "two links" 2 (List.length (Calibration.links c))

let test_calibration_validation () =
  let c = Calibration.create 2 in
  let raises f = try f () |> ignore; false with Invalid_argument _ -> true in
  check "self link" true (raises (fun () -> Calibration.set_link_error c 1 1 0.1));
  check "probability range" true
    (raises (fun () -> Calibration.set_link_error c 0 1 1.5));
  check "qubit range" true (raises (fun () -> Calibration.qubit c 5))

let test_calibration_copy_is_deep () =
  let c = sample_calibration () in
  let d = Calibration.copy c in
  Calibration.set_link_error d 0 1 0.5;
  check_float "original intact" 0.03 (Calibration.link_error_exn c 0 1)

let test_summarize () =
  let s = Calibration.summarize [ 1.0; 2.0; 3.0; 4.0 ] in
  check_float "mean" 2.5 s.Calibration.mean;
  check_float "min" 1.0 s.Calibration.minimum;
  check_float "max" 4.0 s.Calibration.maximum;
  check "std" true (Float.abs (s.Calibration.std -. sqrt 1.25) < 1e-9)

let test_scale_link_errors () =
  let c = sample_calibration () in
  let scaled = Calibration.scale_link_errors c ~mean_factor:0.1 ~cov_factor:1.0 in
  let before = Calibration.link_error_summary c in
  let after = Calibration.link_error_summary scaled in
  check "mean scaled" true
    (Float.abs (after.Calibration.mean -. (0.1 *. before.Calibration.mean)) < 1e-9);
  (* coefficient of variation preserved *)
  let cov s = s.Calibration.std /. s.Calibration.mean in
  check "cov preserved" true (Float.abs (cov after -. cov before) < 1e-9);
  (* a gentle widening that stays clear of the clamp *)
  let widened = Calibration.scale_link_errors c ~mean_factor:0.5 ~cov_factor:1.2 in
  let after2 = Calibration.link_error_summary widened in
  check "cov widened" true (Float.abs (cov after2 -. (1.2 *. cov before)) < 1e-9)

let test_serialization_roundtrip () =
  let c = sample_calibration () in
  match Calibration.of_string (Calibration.to_string c) with
  | Ok parsed ->
    check_int "qubits" 3 (Calibration.num_qubits parsed);
    check_float "link survives" 0.10 (Calibration.link_error_exn parsed 1 2);
    check_float "qubit survives" 80.0 (Calibration.qubit parsed 0).Calibration.t1_us
  | Error m -> Alcotest.fail m

let test_serialization_errors () =
  let bad text =
    match Calibration.of_string text with Ok _ -> false | Error _ -> true
  in
  check "empty" true (bad "");
  check "garbage header" true (bad "hello");
  check "bad record" true (bad "qubits 2\nfrob 1 2 3")

(* ---- Topologies ---------------------------------------------------- *)

let test_q20_tokyo_shape () =
  let coupling = Topologies.ibm_q20_tokyo in
  check_int "43 couplers" 43 (List.length coupling);
  List.iter
    (fun (u, v) ->
      check "range" true (u >= 0 && v < 20);
      check "ordered" true (u < v))
    coupling;
  check "no duplicates" true
    (List.length (List.sort_uniq compare coupling) = List.length coupling)

let test_q5_tenerife_shape () =
  check_int "6 couplers" 6 (List.length Topologies.ibm_q5_tenerife)

let connected coupling n =
  let g = Vqc_graph.Graph.create n in
  List.iter (fun (u, v) -> Vqc_graph.Graph.add_edge g u v 1.0) coupling;
  Vqc_graph.Graph.is_connected g

let test_extended_topologies () =
  check_int "melbourne couplers" 19 (List.length Topologies.ibm_q16_melbourne);
  check "melbourne connected" true (connected Topologies.ibm_q16_melbourne 14);
  check_int "heavy-hex couplers" 28 (List.length Topologies.heavy_hex_27);
  check "heavy-hex connected" true (connected Topologies.heavy_hex_27 27);
  (* heavy hex: degree at most 3 *)
  let degree = Array.make 27 0 in
  List.iter
    (fun (u, v) ->
      degree.(u) <- degree.(u) + 1;
      degree.(v) <- degree.(v) + 1)
    Topologies.heavy_hex_27;
  Array.iter (fun d -> check "degree <= 3" true (d <= 3)) degree;
  let bristlecone = Topologies.bristlecone_like ~rows:3 ~cols:3 in
  (* 12 grid edges + 8 diagonals *)
  check_int "bristlecone couplers" 20 (List.length bristlecone);
  check "bristlecone connected" true (connected bristlecone 9)

let test_generators () =
  check_int "linear edges" 4 (List.length (Topologies.linear 5));
  check_int "ring edges" 5 (List.length (Topologies.ring 5));
  check_int "grid 2x3 edges" 7 (List.length (Topologies.grid ~rows:2 ~cols:3));
  check_int "k4 edges" 6 (List.length (Topologies.fully_connected 4));
  check "ring too small" true
    (try
       let _ = Topologies.ring 2 in
       false
     with Invalid_argument _ -> true)

(* ---- Device -------------------------------------------------------- *)

let tiny_device () =
  let c = Calibration.create 3 in
  Calibration.set_link_error c 0 1 0.02;
  Calibration.set_link_error c 1 2 0.10;
  Device.make ~name:"tiny" ~coupling:[ (0, 1); (1, 2) ] c

let test_device_basics () =
  let d = tiny_device () in
  check_int "qubits" 3 (Device.num_qubits d);
  check "connected pair" true (Device.connected d 0 1);
  check "not connected" false (Device.connected d 0 2);
  check_float "link error" 0.10 (Device.link_error d 1 2);
  check_float "cnot success" 0.98 (Device.cnot_success d 0 1);
  check_float "swap success" (0.98 ** 3.0) (Device.swap_success d 0 1)

let test_device_validation () =
  let raises f = try f () |> ignore; false with Invalid_argument _ -> true in
  check "uncalibrated coupler" true
    (raises (fun () ->
         Device.make ~name:"x" ~coupling:[ (0, 1) ] (Calibration.create 2)));
  let c = Calibration.create 3 in
  Calibration.set_link_error c 0 1 0.1;
  check "disconnected map" true
    (raises (fun () -> Device.make ~name:"x" ~coupling:[ (0, 1) ] c))

let test_device_extreme_links () =
  let d = tiny_device () in
  let u, v, e = Device.strongest_link d in
  check "strongest" true ((u, v, e) = (0, 1, 0.02));
  let u, v, e = Device.weakest_link d in
  check "weakest" true ((u, v, e) = (1, 2, 0.10))

let test_device_distances () =
  let d = tiny_device () in
  let hops = Device.hop_distance d in
  check_int "hop 0-2" 2 hops.(0).(2);
  let rel = Device.reliability_distance d in
  check_float "reliability 0-1" (-3.0 *. log 0.98) rel.(0).(1);
  check "longer is costlier" true (rel.(0).(2) > rel.(0).(1))

let test_device_restrict () =
  let d = tiny_device () in
  let sub, to_old = Device.restrict d [ 1; 2 ] in
  check_int "sub qubits" 2 (Device.num_qubits sub);
  Alcotest.(check (array int)) "index map" [| 1; 2 |] to_old;
  check_float "link error carried" 0.10 (Device.link_error sub 0 1);
  check "disconnected region rejected" true
    (try
       let _ = Device.restrict d [ 0; 2 ] in
       false
     with Invalid_argument _ -> true)

let test_device_serialization_roundtrip () =
  let d = tiny_device () in
  match Device.of_string (Device.to_string d) with
  | Ok parsed ->
    Alcotest.(check string) "name" (Device.name d) (Device.name parsed);
    check_float "link carried" 0.10 (Device.link_error parsed 1 2);
    Alcotest.(check (list (pair int int)))
      "coupling carried" (Device.coupling d) (Device.coupling parsed);
    check_float "gate times carried" (Device.gate_times d).Device.t_2q_ns
      (Device.gate_times parsed).Device.t_2q_ns
  | Error m -> Alcotest.fail m

let test_device_serialization_errors () =
  let bad text =
    match Device.of_string text with Ok _ -> false | Error _ -> true
  in
  check "empty" true (bad "");
  check "no gate_times" true (bad "device x\nqubits 2\n");
  check "garbage" true (bad "hello\nworld\n")

let test_with_calibration_swaps_errors () =
  let d = tiny_device () in
  let c2 = Calibration.create 3 in
  Calibration.set_link_error c2 0 1 0.05;
  Calibration.set_link_error c2 1 2 0.05;
  let d2 = Device.with_calibration d c2 in
  check_float "new error" 0.05 (Device.link_error d2 0 1);
  check_float "old device intact" 0.02 (Device.link_error d 0 1)

(* ---- Calibration model --------------------------------------------- *)

let test_model_matches_paper_q20_stats () =
  (* pool link samples over several draws to beat sampling noise *)
  let rng = Rng.make 99 in
  let samples = ref [] in
  for _ = 1 to 40 do
    let c =
      Calibration_model.generate rng ~coupling:Topologies.ibm_q20_tokyo 20
    in
    samples :=
      List.map (fun (_, _, e) -> e) (Calibration.links c) @ !samples
  done;
  let s = Calibration.summarize !samples in
  (* paper: mean 4.3%, std 3.02%, best 0.02, worst 0.15 *)
  check "mean near 4.3%" true (Float.abs (s.Calibration.mean -. 0.043) < 0.008);
  check "std in range" true (s.Calibration.std > 0.015 && s.Calibration.std < 0.045);
  check "best near 2%" true (s.Calibration.minimum >= 0.015 && s.Calibration.minimum < 0.035);
  check "worst above 10%" true (s.Calibration.maximum > 0.10);
  check "spread at least 4x" true
    (s.Calibration.maximum /. s.Calibration.minimum > 4.0)

let test_model_t1_t2_stats () =
  let rng = Rng.make 7 in
  let t1 = ref [] and t2 = ref [] in
  for _ = 1 to 40 do
    let c = Calibration_model.generate rng ~coupling:Topologies.ibm_q20_tokyo 20 in
    for q = 0 to 19 do
      let figures = Calibration.qubit c q in
      t1 := figures.Calibration.t1_us :: !t1;
      t2 := figures.Calibration.t2_us :: !t2;
      check "T2 <= 2 T1" true
        (figures.Calibration.t2_us <= (2.0 *. figures.Calibration.t1_us) +. 1e-9)
    done
  done;
  let s1 = Calibration.summarize !t1 and s2 = Calibration.summarize !t2 in
  check "T1 mean near 80" true (Float.abs (s1.Calibration.mean -. 80.32) < 8.0);
  check "T2 mean near 42" true (Float.abs (s2.Calibration.mean -. 42.13) < 5.0)

let test_model_determinism () =
  let draw seed =
    let rng = Rng.make seed in
    Calibration_model.generate rng ~coupling:Topologies.ibm_q5_tenerife 5
  in
  check "same seed same calibration" true
    (Calibration.to_string (draw 5) = Calibration.to_string (draw 5));
  check "different seed differs" true
    (Calibration.to_string (draw 5) <> Calibration.to_string (draw 6))

let test_spread_defective () =
  let rng = Rng.make 3 in
  let defective = Calibration_model.spread_defective rng 40 ~fraction:0.2 in
  let count = Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 defective in
  check "about 8 defects" true (count >= 6 && count <= 10);
  (* stratified: both halves get some *)
  let first_half = Array.sub defective 0 20 and second_half = Array.sub defective 20 20 in
  check "spread over halves" true
    (Array.exists Fun.id first_half && Array.exists Fun.id second_half);
  let none = Calibration_model.spread_defective rng 40 ~fraction:0.0 in
  check "zero fraction" true (not (Array.exists Fun.id none))

let test_uniform_device_is_uniform () =
  let d =
    Calibration_model.uniform_device ~name:"u" ~coupling:(Topologies.linear 4) 4
      ~error_2q:0.05
  in
  List.iter
    (fun (u, v) -> check_float "same error" 0.05 (Device.link_error d u v))
    (Device.coupling d)

let test_ready_made_devices () =
  let q20 = Calibration_model.ibm_q20 ~seed:1 in
  check_int "q20 qubits" 20 (Device.num_qubits q20);
  let q5 = Calibration_model.ibm_q5 ~seed:1 in
  check_int "q5 qubits" 5 (Device.num_qubits q5);
  check_int "q5 couplers" 6 (List.length (Device.coupling q5))

(* ---- Calibration_io -------------------------------------------------- *)

module Calibration_io = Vqc_device.Calibration_io

let sample_csv =
  {|Qubit,T1 (µs),T2 (µs),Frequency (GHz),Readout error,Single-qubit U2 error rate,CNOT error rate
Q0,83.4,41.2,5.23,0.031,0.0008,"cx0_1: 0.0373; cx0_2: 0.0265"
Q1,71.2,55.1,5.11,0.028,0.0011,"cx1_0: 0.0373; cx1_2: 0.041"
Q2,64.0,38.7,5.02,0.045,0.0009,"cx2_0: 0.0265; cx2_1: 0.043"
|}

let test_ibm_csv_parses () =
  match Calibration_io.of_ibm_csv sample_csv with
  | Error m -> Alcotest.fail m
  | Ok (calibration, coupling) ->
    check_int "3 qubits" 3 (Calibration.num_qubits calibration);
    Alcotest.(check (list (pair int int)))
      "couplers" [ (0, 1); (0, 2); (1, 2) ] coupling;
    check_float "t1" 83.4 (Calibration.qubit calibration 0).Calibration.t1_us;
    check_float "readout" 0.045
      (Calibration.qubit calibration 2).Calibration.error_readout;
    check_float "1q error" 0.0011
      (Calibration.qubit calibration 1).Calibration.error_1q;
    (* both directions reported identically -> averaged unchanged *)
    check_float "symmetric link" 0.0373
      (Calibration.link_error_exn calibration 0 1);
    (* asymmetric pair averaged *)
    check_float "averaged link" ((0.041 +. 0.043) /. 2.0)
      (Calibration.link_error_exn calibration 1 2)

let test_ibm_csv_to_device () =
  match Calibration_io.device_of_ibm_csv ~name:"from-csv" sample_csv with
  | Error m -> Alcotest.fail m
  | Ok device ->
    check_int "qubits" 3 (Device.num_qubits device);
    check "coupled" true (Device.connected device 0 2)

let test_ibm_csv_roundtrip () =
  let original, _ = Calibration_io.of_ibm_csv_exn sample_csv in
  let exported = Calibration_io.to_ibm_csv original in
  let reparsed, coupling = Calibration_io.of_ibm_csv_exn exported in
  check_int "couplers survive" 3 (List.length coupling);
  check_float "link survives" 0.0373 (Calibration.link_error_exn reparsed 0 1);
  check_float "t1 survives" 83.4 (Calibration.qubit reparsed 0).Calibration.t1_us

(* The export is documented lossless: a full synthetic Q20 calibration
   (floats with all their digits) must survive export → reparse exactly,
   so service epochs can be dumped and reloaded without perturbing
   plan-cache fingerprints. *)
let test_ibm_csv_roundtrip_q20_exact () =
  let history =
    History.generate ~days:1 ~seed:7 ~coupling:Topologies.ibm_q20_tokyo 20
  in
  let original = History.day history 0 in
  let reparsed, coupling =
    Calibration_io.of_ibm_csv_exn (Calibration_io.to_ibm_csv original)
  in
  check_int "qubit count" (Calibration.num_qubits original)
    (Calibration.num_qubits reparsed);
  Alcotest.(check (list (pair int int)))
    "coupling survives"
    (List.sort compare Topologies.ibm_q20_tokyo)
    coupling;
  for q = 0 to Calibration.num_qubits original - 1 do
    let a = Calibration.qubit original q in
    let b = Calibration.qubit reparsed q in
    check (Printf.sprintf "qubit %d exact" q) true
      (a.Calibration.t1_us = b.Calibration.t1_us
      && a.Calibration.t2_us = b.Calibration.t2_us
      && a.Calibration.error_1q = b.Calibration.error_1q
      && a.Calibration.error_readout = b.Calibration.error_readout)
  done;
  List.iter
    (fun (u, v, e) ->
      check (Printf.sprintf "link %d-%d exact" u v) true
        (Calibration.link_error_exn reparsed u v = e))
    (Calibration.links original)

let test_ibm_csv_errors () =
  let bad text =
    match Calibration_io.of_ibm_csv text with Ok _ -> false | Error _ -> true
  in
  check "empty" true (bad "");
  check "no qubit column" true (bad "A,B\n1,2\n");
  check "bad label" true (bad "Qubit,T1\nXX,1\n");
  check "bad cnot entry" true
    (bad "Qubit,CNOT error rate\nQ0,\"cx0_zero: 0.1\"\n");
  check "dangling cnot reference" true
    (bad "Qubit,CNOT error rate\nQ0,\"cx0_9: 0.1\"\n")

(* ---- History ------------------------------------------------------- *)

let history () =
  History.generate ~days:30 ~seed:11 ~coupling:Topologies.ibm_q20_tokyo 20

let test_history_shape () =
  let h = history () in
  check_int "days" 30 (History.days h);
  check_int "each day 20 qubits" 20 (Calibration.num_qubits (History.day h 0));
  check_int "all" 30 (List.length (History.all h));
  check "out of range" true
    (try
       let _ = History.day h 30 in
       false
     with Invalid_argument _ -> true)

let test_history_average_is_mean () =
  let h = history () in
  let average = History.average h in
  let u, v, _ = List.hd (Calibration.links average) in
  let series = History.link_series h u v in
  let expected =
    Array.fold_left ( +. ) 0.0 series /. float_of_int (Array.length series)
  in
  check_float "average equals mean of series" expected
    (Calibration.link_error_exn average u v)

let test_history_links_persist_rank () =
  (* strong links should tend to remain strong: correlation between first
     and second half averages should be clearly positive *)
  let h = history () in
  let average = History.average h in
  let links = Calibration.links average in
  let half_mean lo hi (u, v) =
    let series = History.link_series h u v in
    let total = ref 0.0 in
    for i = lo to hi - 1 do
      total := !total +. series.(i)
    done;
    !total /. float_of_int (hi - lo)
  in
  let xs = List.map (fun (u, v, _) -> half_mean 0 15 (u, v)) links in
  let ys = List.map (fun (u, v, _) -> half_mean 15 30 (u, v)) links in
  let mean_of l = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l) in
  let mx = mean_of xs and my = mean_of ys in
  let num =
    List.fold_left2 (fun acc x y -> acc +. ((x -. mx) *. (y -. my))) 0.0 xs ys
  in
  let sx = sqrt (mean_of (List.map (fun x -> (x -. mx) ** 2.0) xs)) in
  let sy = sqrt (mean_of (List.map (fun y -> (y -. my) ** 2.0) ys)) in
  let correlation = num /. float_of_int (List.length xs) /. (sx *. sy) in
  check "halves correlate" true (correlation > 0.4)

let test_history_dispersion_varies () =
  let h = history () in
  let dispersion = History.daily_dispersion h in
  let lo = Array.fold_left Float.min infinity dispersion in
  let hi = Array.fold_left Float.max 0.0 dispersion in
  check "some days calmer than others" true (hi > lo *. 1.2)

let test_history_unknown_link () =
  let h = history () in
  check "raises" true
    (try
       let _ = History.link_series h 0 19 in
       false
     with Not_found -> true)

let () =
  Alcotest.run "vqc_device"
    [
      ( "calibration",
        [
          Alcotest.test_case "basics" `Quick test_calibration_basics;
          Alcotest.test_case "validation" `Quick test_calibration_validation;
          Alcotest.test_case "deep copy" `Quick test_calibration_copy_is_deep;
          Alcotest.test_case "summarize" `Quick test_summarize;
          Alcotest.test_case "error scaling" `Quick test_scale_link_errors;
          Alcotest.test_case "serialization" `Quick test_serialization_roundtrip;
          Alcotest.test_case "serialization errors" `Quick
            test_serialization_errors;
        ] );
      ( "topologies",
        [
          Alcotest.test_case "q20 tokyo" `Quick test_q20_tokyo_shape;
          Alcotest.test_case "q5 tenerife" `Quick test_q5_tenerife_shape;
          Alcotest.test_case "generators" `Quick test_generators;
          Alcotest.test_case "extended topologies" `Quick
            test_extended_topologies;
        ] );
      ( "device",
        [
          Alcotest.test_case "basics" `Quick test_device_basics;
          Alcotest.test_case "validation" `Quick test_device_validation;
          Alcotest.test_case "extreme links" `Quick test_device_extreme_links;
          Alcotest.test_case "distances" `Quick test_device_distances;
          Alcotest.test_case "restrict" `Quick test_device_restrict;
          Alcotest.test_case "serialization" `Quick
            test_device_serialization_roundtrip;
          Alcotest.test_case "serialization errors" `Quick
            test_device_serialization_errors;
          Alcotest.test_case "with_calibration" `Quick
            test_with_calibration_swaps_errors;
        ] );
      ( "calibration model",
        [
          Alcotest.test_case "q20 stats" `Slow test_model_matches_paper_q20_stats;
          Alcotest.test_case "coherence stats" `Slow test_model_t1_t2_stats;
          Alcotest.test_case "determinism" `Quick test_model_determinism;
          Alcotest.test_case "spread defects" `Quick test_spread_defective;
          Alcotest.test_case "uniform device" `Quick test_uniform_device_is_uniform;
          Alcotest.test_case "ready-made devices" `Quick test_ready_made_devices;
        ] );
      ( "ibm csv",
        [
          Alcotest.test_case "parses" `Quick test_ibm_csv_parses;
          Alcotest.test_case "to device" `Quick test_ibm_csv_to_device;
          Alcotest.test_case "roundtrip" `Quick test_ibm_csv_roundtrip;
          Alcotest.test_case "roundtrip q20 exact" `Quick
            test_ibm_csv_roundtrip_q20_exact;
          Alcotest.test_case "errors" `Quick test_ibm_csv_errors;
        ] );
      ( "history",
        [
          Alcotest.test_case "shape" `Quick test_history_shape;
          Alcotest.test_case "average is mean" `Quick test_history_average_is_mean;
          Alcotest.test_case "rank persistence" `Slow test_history_links_persist_rank;
          Alcotest.test_case "dispersion varies" `Quick
            test_history_dispersion_varies;
          Alcotest.test_case "unknown link" `Quick test_history_unknown_link;
        ] );
    ]

(* Render one experiment (default context: seed 2, single job) to
   stdout.  The golden dune rules route this through `diff` against
   test/golden/<id>.expected, so `dune runtest` flags any output drift
   and `dune promote` regenerates the expected files intentionally. *)

let () =
  match Sys.argv with
  | [| _; id |] ->
    let experiment = Vqc_experiments.Registry.find id in
    let ppf = Format.std_formatter in
    experiment.Vqc_experiments.Registry.run ppf Vqc_experiments.Context.default;
    Format.pp_print_flush ppf ()
  | _ ->
    prerr_endline "usage: golden_gen <experiment-id>";
    exit 2

(* Benchmark harness.

   Part 1 regenerates every table and figure of the paper's evaluation
   (the same rows/series the paper reports; see EXPERIMENTS.md for the
   paper-vs-measured comparison).  Part 2 times the compiler policies and
   the simulation engines with Bechamel.

   Run with: dune exec bench/main.exe
   To skip the timing section: dune exec bench/main.exe -- --no-perf

   A separate mode measures what adaptive estimation saves over the
   paper's fixed-trial discipline and records it as a JSON artifact:
     dune exec bench/main.exe -- estimator \
       [--precision 1e-3] [--max-trials 1000000] [--jobs N] \
       [--out BENCH_estimator.json]
   It exits non-zero if adaptive mode ever needs more trials than fixed
   mode — the estimator's cost ceiling is part of its contract.

   Two more modes target the hot kernels themselves:
     dune exec bench/main.exe -- compile [--reference] [--repeat N]
   times the full Table-1 catalog x policy matrix (plans/s), and
     dune exec bench/main.exe -- kernels [--trials N] \
       [--out BENCH_kernels.json] [--check bench/BASELINE_kernels.json]
   measures the optimized paths against the retained reference paths
   (memoized routing vs memo-free, flat Monte-Carlo kernel vs the
   list-based oracle) and records the in-run speedup ratios.  With
   --check it exits 1 when any measured speedup falls below 90% of the
   committed baseline floor — ratios, not absolutes, so the gate holds
   across machines of different speeds.

   The drift mode replays the calibration history through the Vqc_drift
   retention pipeline over the full catalog x policy matrix:
     dune exec bench/main.exe -- drift [--days N] [--threshold LOSS] \
       [--jobs N] [--out BENCH_drift.json]
   and records per-day retained fraction, the PST given up by retaining
   instead of recompiling, and the recompile wall time saved (timing
   under "nd"; everything else byte-identical for a fixed
   history/threshold/jobs).

   The serve-load mode measures the TCP front end under concurrency:
     dune exec bench/main.exe -- serve-load [--clients 1,8,64] \
       [--requests-per-client N] [--jobs N] [--shards N] \
       [--out BENCH_serve.json] [--check-scaling]
   For each client count it starts an in-process Vqc_serve_net server,
   replays pipelined NDJSON streams from that many concurrent clients,
   and records p50/p99 latency, requests/s and cache hit rates (all
   run-varying, so under "nd").  With --check-scaling it exits 1 when
   the highest client count does not out-serve the lowest — the shared
   pool and compile store must buy throughput, not just survive. *)

module Registry = Vqc_experiments.Registry
module Context = Vqc_experiments.Context
module Compiler = Vqc_mapper.Compiler
module Monte_carlo = Vqc_sim.Monte_carlo
module Reliability = Vqc_sim.Reliability
module Catalog = Vqc_workloads.Catalog
module Rng = Vqc_rng.Rng
module History = Vqc_device.History
module Topologies = Vqc_device.Topologies
module Router = Vqc_mapper.Router
module Service = Vqc_service.Service
module Epoch = Vqc_service.Epoch
module Protocol = Vqc_service.Protocol
module Policies = Vqc_service.Policies

let regenerate_artifacts () =
  let ctx = Context.default in
  Registry.run_all Format.std_formatter ctx;
  Format.pp_print_flush Format.std_formatter ()

(* ---- Bechamel timing ------------------------------------------------ *)

let compile_test ctx name policy =
  let circuit = (Catalog.find name).Catalog.circuit in
  let device = ctx.Context.q20 in
  Bechamel.Test.make
    ~name:(Printf.sprintf "compile/%s/%s" name policy.Compiler.label)
    (Bechamel.Staged.stage (fun () ->
         ignore (Compiler.compile device policy circuit)))

let monte_carlo_test ctx trials =
  let circuit = (Catalog.find "bv-16").Catalog.circuit in
  let device = ctx.Context.q20 in
  let compiled = Compiler.compile device Compiler.vqa_vqm circuit in
  Bechamel.Test.make
    ~name:(Printf.sprintf "monte-carlo/bv-16/%d-trials" trials)
    (Bechamel.Staged.stage (fun () ->
         ignore
           (Monte_carlo.run ~trials (Rng.make 1) device
              compiled.Compiler.physical)))

(* Serial vs parallel Monte-Carlo on the same workload and seed: the
   estimates are bit-identical by construction, so the ratio of these
   two rows is pure engine speedup. *)
let monte_carlo_parallel_test ctx ~jobs trials =
  let circuit = (Catalog.find "bv-16").Catalog.circuit in
  let device = ctx.Context.q20 in
  let compiled = Compiler.compile device Compiler.vqa_vqm circuit in
  Bechamel.Test.make
    ~name:(Printf.sprintf "monte-carlo-parallel/bv-16/%d-trials/%d-jobs"
             trials jobs)
    (Bechamel.Staged.stage (fun () ->
         ignore
           (Monte_carlo.run ~jobs ~trials (Rng.make 1) device
              compiled.Compiler.physical)))

(* ---- Serving: cold vs warm-cache throughput ------------------------ *)

let serve_requests =
  List.map
    (fun workload ->
      {
        Protocol.id = None;
        source = Protocol.Workload workload;
        policy = Policies.default_label;
        epoch = None;
        estimate = None;
      })
    [ "bv-16"; "qft-12"; "alu" ]

let serve_batch service =
  List.iter
    (fun request ->
      match Service.submit service request with
      | Ok () -> ()
      | Error _ -> failwith "bench: unexpected rejection")
    serve_requests;
  ignore (Service.flush service)

let serve_service ~cache_enabled =
  let epochs =
    Epoch.of_history ~name:"Q20" ~coupling:Topologies.ibm_q20_tokyo
      (History.generate ~days:2 ~seed:2 ~coupling:Topologies.ibm_q20_tokyo 20)
  in
  Service.create
    ~config:{ Service.default_config with Service.cache_enabled }
    epochs

(* Cold: the cache is bypassed, every batch compiles all three plans.
   Warm: the cache is primed once, every batch is pure lookup — the
   ratio of these two rows is the amortization the plan cache buys a
   recompile-per-calibration serving regime. *)
let serve_cold_test () =
  let service = serve_service ~cache_enabled:false in
  Bechamel.Test.make ~name:"serve/cold/3-reqs"
    (Bechamel.Staged.stage (fun () -> serve_batch service))

let serve_warm_test () =
  let service = serve_service ~cache_enabled:true in
  serve_batch service;
  Bechamel.Test.make ~name:"serve/warm-cache/3-reqs"
    (Bechamel.Staged.stage (fun () -> serve_batch service))

let analytic_test ctx =
  let circuit = (Catalog.find "qft-14").Catalog.circuit in
  let device = ctx.Context.q20 in
  let compiled = Compiler.compile device Compiler.vqa_vqm circuit in
  Bechamel.Test.make ~name:"analytic-pst/qft-14"
    (Bechamel.Staged.stage (fun () ->
         ignore (Reliability.pst device compiled.Compiler.physical)))

let run_timings () =
  let open Bechamel in
  let ctx = Context.default in
  let tests =
    Test.make_grouped ~name:"vqc"
      [
        compile_test ctx "bv-16" Compiler.baseline;
        compile_test ctx "bv-16" Compiler.vqm;
        compile_test ctx "bv-16" Compiler.vqa_vqm;
        compile_test ctx "qft-12" Compiler.baseline;
        compile_test ctx "qft-12" Compiler.vqa_vqm;
        compile_test ctx "alu" (Compiler.native ~seed:1);
        monte_carlo_test ctx 10_000;
        analytic_test ctx;
      ]
  in
  let parallel_tests =
    Test.make_grouped ~name:"monte-carlo-parallel"
      (List.sort_uniq compare [ 1; 2; 4; Domain.recommended_domain_count () ]
      |> List.map (fun jobs -> monte_carlo_parallel_test ctx ~jobs 200_000))
  in
  let serve_tests =
    Test.make_grouped ~name:"serve" [ serve_cold_test (); serve_warm_test () ]
  in
  let tests =
    Test.make_grouped ~name:"all" [ tests; parallel_tests; serve_tests ]
  in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| "run" |])
      Toolkit.Instance.monotonic_clock raw
  in
  print_newline ();
  print_endline "Timing (Bechamel, monotonic clock)";
  print_endline "==================================";
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let nanoseconds =
          match Analyze.OLS.estimates ols with
          | Some (estimate :: _) -> estimate
          | Some [] | None -> Float.nan
        in
        (name, nanoseconds) :: acc)
      results []
    |> List.sort compare
  in
  List.iter
    (fun (name, nanoseconds) ->
      Printf.printf "%-44s %12.0f ns/run  (%.3f ms)\n" name nanoseconds
        (nanoseconds /. 1e6))
    rows

(* ---- Estimator: fixed vs adaptive trials-to-target ----------------- *)

module Estimator = Vqc_sim.Estimator
module Json = Vqc_obs.Json

type estimator_row = {
  workload : string;
  fixed_pst : float;
  fixed_seconds : float;
  adaptive : Estimator.estimate;
  adaptive_seconds : float;
}

let median values =
  match List.sort compare values with
  | [] -> Float.nan
  | sorted ->
    let n = List.length sorted in
    if n mod 2 = 1 then List.nth sorted (n / 2)
    else (List.nth sorted ((n / 2) - 1) +. List.nth sorted (n / 2)) /. 2.0

let estimator_row ctx ~config ~jobs (entry : Catalog.entry) =
  let device = ctx.Context.q20 in
  let compiled = Compiler.compile device Compiler.vqa_vqm entry.Catalog.circuit in
  let physical = compiled.Compiler.physical in
  let timed f =
    let start = Unix.gettimeofday () in
    let result = f () in
    (result, Unix.gettimeofday () -. start)
  in
  (* same seed on both sides: the adaptive run walks a prefix of the
     fixed run's chunk stream, so the comparison is trial-for-trial *)
  let fixed, fixed_seconds =
    timed (fun () ->
        Monte_carlo.run ~jobs ~trials:config.Estimator.max_trials
          (Rng.make 1) device physical)
  in
  let adaptive, adaptive_seconds =
    timed (fun () ->
        Monte_carlo.run_adaptive ~jobs ~config (Rng.make 1) device physical)
  in
  {
    workload = entry.Catalog.name;
    fixed_pst = fixed.Monte_carlo.pst;
    fixed_seconds;
    adaptive;
    adaptive_seconds;
  }

let trials_speedup row =
  float_of_int row.adaptive.Estimator.budget
  /. float_of_int row.adaptive.Estimator.trials

let estimator_json ~config rows =
  let row_json row =
    let e = row.adaptive in
    Json.Obj
      [
        ("workload", Json.String row.workload);
        ("fixed_trials", Json.Int e.Estimator.budget);
        ("fixed_pst", Json.Float row.fixed_pst);
        ("fixed_seconds", Json.Float row.fixed_seconds);
        ("adaptive_trials", Json.Int e.Estimator.trials);
        ("adaptive_pst", Json.Float e.Estimator.mean);
        ("adaptive_seconds", Json.Float row.adaptive_seconds);
        ("half_width", Json.Float (Estimator.half_width e));
        ("stop", Json.String (Estimator.stop_reason_to_string e.Estimator.stop));
        ("trials_saved", Json.Int (Estimator.trials_saved e));
        ("trials_speedup", Json.Float (trials_speedup row));
        ( "seconds_speedup",
          Json.Float (row.fixed_seconds /. row.adaptive_seconds) );
      ]
  in
  Json.Obj
    [
      ("bench", Json.String "estimator");
      ("precision", Json.Float config.Estimator.precision);
      ("confidence", Json.Float config.Estimator.confidence);
      ("max_trials", Json.Int config.Estimator.max_trials);
      ("workloads", Json.List (List.map row_json rows));
      ( "median_trials_speedup",
        Json.Float (median (List.map trials_speedup rows)) );
      ( "min_trials_speedup",
        Json.Float
          (List.fold_left Float.min infinity (List.map trials_speedup rows))
      );
    ]

let run_estimator_bench args =
  let precision = ref 1e-3 in
  let max_trials = ref 1_000_000 in
  let jobs = ref 1 in
  let out = ref "BENCH_estimator.json" in
  let usage =
    "usage: bench estimator [--precision P] [--max-trials N] [--jobs N] \
     [--out FILE]"
  in
  let rec parse = function
    | [] -> Ok ()
    | "--precision" :: v :: rest -> begin
      match float_of_string_opt v with
      | Some f ->
        precision := f;
        parse rest
      | None -> Error (Printf.sprintf "--precision: bad float %S" v)
    end
    | "--max-trials" :: v :: rest -> begin
      match int_of_string_opt v with
      | Some n ->
        max_trials := n;
        parse rest
      | None -> Error (Printf.sprintf "--max-trials: bad integer %S" v)
    end
    | "--jobs" :: v :: rest -> begin
      match int_of_string_opt v with
      | Some n when n >= 1 ->
        jobs := n;
        parse rest
      | _ -> Error (Printf.sprintf "--jobs: bad worker count %S" v)
    end
    | "--out" :: v :: rest ->
      out := v;
      parse rest
    | other :: _ -> Error (Printf.sprintf "unknown argument %S\n%s" other usage)
  in
  match parse args with
  | Error message ->
    prerr_endline ("bench estimator: " ^ message);
    2
  | Ok () -> begin
    let config =
      {
        Estimator.default_config with
        Estimator.precision = !precision;
        max_trials = !max_trials;
      }
    in
    match Estimator.validate_config config with
    | Error message ->
      prerr_endline ("bench estimator: " ^ message);
      2
    | Ok config ->
      let ctx = Context.default in
      Printf.printf
        "Estimator bench: fixed %d trials vs adaptive (precision %g at \
         %g%%), VQA+VQM on Q20\n\n"
        config.Estimator.max_trials config.Estimator.precision
        (100.0 *. config.Estimator.confidence);
      let rows =
        List.map (estimator_row ctx ~config ~jobs:!jobs) Catalog.table1
      in
      List.iter
        (fun row ->
          let e = row.adaptive in
          Printf.printf
            "%-8s fixed %.4f (%d trials, %.2fs)  adaptive %.4f +/- %.1e \
             (%d trials, %.2fs)  %5.1fx fewer trials [%s]\n"
            row.workload row.fixed_pst e.Estimator.budget row.fixed_seconds
            e.Estimator.mean
            (Estimator.half_width e)
            e.Estimator.trials row.adaptive_seconds (trials_speedup row)
            (Estimator.stop_reason_to_string e.Estimator.stop))
        rows;
      let median_speedup = median (List.map trials_speedup rows) in
      Printf.printf "\nmedian trials-to-target reduction: %.1fx\n"
        median_speedup;
      Out_channel.with_open_text !out (fun channel ->
          Out_channel.output_string channel
            (Json.to_string (estimator_json ~config rows));
          Out_channel.output_char channel '\n');
      Printf.printf "wrote %s\n" !out;
      (* contract: adaptivity never costs trials — it stops at or before
         the budget the fixed path always spends *)
      let regressions =
        List.filter
          (fun row ->
            row.adaptive.Estimator.trials > row.adaptive.Estimator.budget)
          rows
      in
      if regressions <> [] then begin
        List.iter
          (fun row ->
            Printf.eprintf
              "bench estimator: REGRESSION %s: adaptive used %d trials > \
               fixed %d\n"
              row.workload row.adaptive.Estimator.trials
              row.adaptive.Estimator.budget)
          regressions;
        1
      end
      else 0
  end

(* ---- Hot-path kernels: compile and simulate throughput ------------- *)

let wall_clock f =
  let started = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. started)

let matrix_policies () = List.map (fun e -> e.Policies.policy) Policies.all

(* One full pass over the Table-1 catalog under every service policy —
   the workload `bench compile` and `bench kernels` both time.  [memo]
   selects the optimized pipeline (layer memo + pruned SABRE + cached
   cost models) or the retained reference pipeline; both emit
   byte-identical plans (test/test_mapper_equiv.ml holds them to it). *)
let compile_matrix ~memo device policies =
  List.iter
    (fun (entry : Catalog.entry) ->
      List.iter
        (fun policy ->
          ignore (Compiler.compile ~memo device policy entry.Catalog.circuit))
        policies)
    Catalog.table1

let run_compile_bench args =
  let reference = ref false in
  let repeat = ref 1 in
  let usage = "usage: bench compile [--reference] [--repeat N]" in
  let rec parse = function
    | [] -> Ok ()
    | "--reference" :: rest ->
      reference := true;
      parse rest
    | "--repeat" :: v :: rest -> begin
      match int_of_string_opt v with
      | Some n when n >= 1 ->
        repeat := n;
        parse rest
      | _ -> Error (Printf.sprintf "--repeat: bad count %S" v)
    end
    | other :: _ -> Error (Printf.sprintf "unknown argument %S\n%s" other usage)
  in
  match parse args with
  | Error message ->
    prerr_endline ("bench compile: " ^ message);
    2
  | Ok () ->
    let ctx = Context.default in
    let device = ctx.Context.q20 in
    let policies = matrix_policies () in
    let plans = List.length Catalog.table1 * List.length policies in
    let memo = not !reference in
    Router.memo_clear ();
    for pass = 1 to !repeat do
      let (), seconds = wall_clock (fun () -> compile_matrix ~memo device policies) in
      Printf.printf
        "compile pass %d/%d (%s): %d plans in %.2fs  (%.2f plans/s)\n%!" pass
        !repeat
        (if memo then "optimized" else "reference")
        plans seconds
        (float_of_int plans /. seconds)
    done;
    0

(* Repeat a deterministic run until at least [min_seconds] of wall time
   has accumulated, so fast configurations are not timed off a single
   sub-millisecond sample. *)
let sustained_rate ~units ~min_seconds run =
  run ();
  (* warm-up: table construction, allocation, code paths *)
  let started = Unix.gettimeofday () in
  let repetitions = ref 0 in
  let elapsed = ref 0.0 in
  while !repetitions < 1 || !elapsed < min_seconds do
    run ();
    incr repetitions;
    elapsed := Unix.gettimeofday () -. started
  done;
  float_of_int (units * !repetitions) /. !elapsed

type mc_row = {
  mc_engine : string;
  mc_jobs : int;
  trials_per_s : float;
}

(* Minimal number extraction for the committed baseline file.  The file
   is flat, ours, and checked in — a full JSON parser (Mini_json lives
   in the test tree) would be overkill for three keyed floats. *)
let baseline_number text key =
  let needle = "\"" ^ key ^ "\"" in
  let needle_length = String.length needle in
  let length = String.length text in
  let rec find i =
    if i + needle_length > length then None
    else if String.sub text i needle_length = needle then
      Some (i + needle_length)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
    let i = ref start in
    while
      !i < length
      &&
      match text.[!i] with
      | ':' | ' ' | '\t' | '\n' | '\r' -> true
      | _ -> false
    do
      incr i
    done;
    let number_start = !i in
    while
      !i < length
      &&
      match text.[!i] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      incr i
    done;
    if !i = number_start then None
    else float_of_string_opt (String.sub text number_start (!i - number_start))

(* The >10% regression rule: a measured speedup may drift with machine
   load, but dropping below 90% of the committed floor means the
   optimized path lost real ground on the reference path running in the
   same process on the same hardware. *)
let check_against_baseline ~file measured =
  match In_channel.with_open_text file In_channel.input_all with
  | exception Sys_error message ->
    Printf.eprintf "bench kernels: cannot read baseline %s: %s\n" file message;
    Some 2
  | text ->
    let failures =
      List.filter_map
        (fun (key, value) ->
          match baseline_number text key with
          | None ->
            Some (Printf.sprintf "baseline %s lacks a %S number" file key)
          | Some floor ->
            if value < floor *. 0.9 then
              Some
                (Printf.sprintf
                   "%s regressed: measured %.2fx < 90%% of committed floor \
                    %.2fx"
                   key value floor)
            else None)
        measured
    in
    if failures = [] then None
    else begin
      List.iter (Printf.eprintf "bench kernels: REGRESSION %s\n") failures;
      Some 1
    end

let run_kernels_bench args =
  let trials = ref 400_000 in
  let out = ref "BENCH_kernels.json" in
  let check = ref None in
  let usage =
    "usage: bench kernels [--trials N] [--out FILE] [--check BASELINE]"
  in
  let rec parse = function
    | [] -> Ok ()
    | "--trials" :: v :: rest -> begin
      match int_of_string_opt v with
      | Some n when n >= 1 ->
        trials := n;
        parse rest
      | _ -> Error (Printf.sprintf "--trials: bad count %S" v)
    end
    | "--out" :: v :: rest ->
      out := v;
      parse rest
    | "--check" :: v :: rest ->
      check := Some v;
      parse rest
    | other :: _ -> Error (Printf.sprintf "unknown argument %S\n%s" other usage)
  in
  match parse args with
  | Error message ->
    prerr_endline ("bench kernels: " ^ message);
    2
  | Ok () ->
    let ctx = Context.default in
    let device = ctx.Context.q20 in
    let policies = matrix_policies () in
    let plans = List.length Catalog.table1 * List.length policies in
    let plans_f = float_of_int plans in
    Printf.printf "Kernel bench: %d plans (Table-1 x %d policies) on Q20\n\n%!"
      plans (List.length policies);
    (* compile: reference (memo-free) vs optimized, cold and warm memo *)
    Router.memo_clear ();
    let (), reference_seconds =
      wall_clock (fun () -> compile_matrix ~memo:false device policies)
    in
    Router.memo_clear ();
    let (), cold_seconds =
      wall_clock (fun () -> compile_matrix ~memo:true device policies)
    in
    let (), warm_seconds =
      wall_clock (fun () -> compile_matrix ~memo:true device policies)
    in
    let reference_rate = plans_f /. reference_seconds in
    let cold_rate = plans_f /. cold_seconds in
    let warm_rate = plans_f /. warm_seconds in
    let cold_speedup = reference_seconds /. cold_seconds in
    let warm_speedup = reference_seconds /. warm_seconds in
    Printf.printf "compile reference: %6.2f plans/s  (%.2fs)\n" reference_rate
      reference_seconds;
    Printf.printf "compile cold memo: %6.2f plans/s  (%.2fs)  %.2fx\n"
      cold_rate cold_seconds cold_speedup;
    Printf.printf "compile warm memo: %6.2f plans/s  (%.2fs)  %.2fx\n\n%!"
      warm_rate warm_seconds warm_speedup;
    (* simulate: flat Bigarray kernel vs the list-based oracle *)
    let circuit = (Catalog.find "bv-16").Catalog.circuit in
    let compiled = Compiler.compile device Compiler.vqa_vqm circuit in
    let physical = compiled.Compiler.physical in
    let measure ~engine ~jobs =
      sustained_rate ~units:!trials ~min_seconds:0.5 (fun () ->
          ignore
            (Monte_carlo.run ~engine ~jobs ~trials:!trials (Rng.make 1) device
               physical))
    in
    let mc_rows =
      List.concat_map
        (fun jobs ->
          [
            {
              mc_engine = "flat";
              mc_jobs = jobs;
              trials_per_s = measure ~engine:Monte_carlo.Flat ~jobs;
            };
            {
              mc_engine = "reference";
              mc_jobs = jobs;
              trials_per_s = measure ~engine:Monte_carlo.Reference ~jobs;
            };
          ])
        [ 1; 4 ]
    in
    let rate ~engine ~jobs =
      (List.find (fun r -> r.mc_engine = engine && r.mc_jobs = jobs) mc_rows)
        .trials_per_s
    in
    let mc_speedup jobs =
      rate ~engine:"flat" ~jobs /. rate ~engine:"reference" ~jobs
    in
    List.iter
      (fun row ->
        Printf.printf "mc %-9s jobs=%d: %12.0f trials/s\n" row.mc_engine
          row.mc_jobs row.trials_per_s)
      mc_rows;
    Printf.printf "mc flat speedup: %.2fx (jobs=1), %.2fx (jobs=4)\n\n%!"
      (mc_speedup 1) (mc_speedup 4);
    let json =
      Json.Obj
        [
          ("bench", Json.String "kernels");
          ( "compile",
            Json.Obj
              [
                ("catalog", Json.String "table1");
                ("policies", Json.Int (List.length policies));
                ("plans", Json.Int plans);
                ("reference_plans_per_s", Json.Float reference_rate);
                ("cold_plans_per_s", Json.Float cold_rate);
                ("warm_plans_per_s", Json.Float warm_rate);
                ("compile_cold_speedup", Json.Float cold_speedup);
                ("compile_warm_speedup", Json.Float warm_speedup);
              ] );
          ( "monte_carlo",
            Json.Obj
              [
                ("workload", Json.String "bv-16");
                ("trials", Json.Int !trials);
                ( "rows",
                  Json.List
                    (List.map
                       (fun row ->
                         Json.Obj
                           [
                             ("engine", Json.String row.mc_engine);
                             ("jobs", Json.Int row.mc_jobs);
                             ("trials_per_s", Json.Float row.trials_per_s);
                           ])
                       mc_rows) );
                ("mc_flat_speedup", Json.Float (mc_speedup 1));
                ("mc_flat_speedup_jobs4", Json.Float (mc_speedup 4));
              ] );
        ]
    in
    Out_channel.with_open_text !out (fun channel ->
        Out_channel.output_string channel (Json.to_string json);
        Out_channel.output_char channel '\n');
    Printf.printf "wrote %s\n%!" !out;
    (match !check with
    | None -> 0
    | Some file -> (
      match
        check_against_baseline ~file
          [
            ("compile_cold_speedup", cold_speedup);
            ("compile_warm_speedup", warm_speedup);
            ("mc_flat_speedup", mc_speedup 1);
          ]
      with
      | None ->
        Printf.printf "baseline check against %s: ok\n" file;
        0
      | Some code -> code))

(* ---- Calibration drift: selective retention over the history ------- *)

module Device = Vqc_device.Device
module Staleness = Vqc_drift.Staleness
module Retention = Vqc_drift.Retention
module Recompiler = Vqc_drift.Recompiler
module Layout = Vqc_mapper.Layout

(* One live plan in the simulated cache: the day it was compiled (its
   provenance device) plus the plan itself. *)
type drift_entry = {
  de_workload : string;
  de_policy : Policies.entry;
  de_compile_day : int;
  de_plan : Compiler.compiled;
}

type drift_day = {
  dd_day : int;
  dd_retained : int;
  dd_recompiled : int;
  dd_mean_loss : float;  (** mean PST given up by the retained plans *)
  dd_max_loss : float;
  dd_recompile_seconds : float;  (** nd: wall time actually spent *)
  dd_saved_seconds : float;  (** nd: wall time retention avoided *)
}

let drift_compile ~jobs device entries =
  let tasks =
    List.map
      (fun (workload, (policy : Policies.entry)) ->
        {
          Recompiler.id = workload ^ "/" ^ policy.Policies.label;
          device;
          policy = policy.Policies.policy;
          source = (Catalog.find workload).Catalog.circuit;
        })
      entries
  in
  let outcomes = Recompiler.run ~jobs tasks in
  let seconds =
    List.fold_left (fun acc o -> acc +. o.Recompiler.seconds) 0.0 outcomes
  in
  ( List.map2
      (fun (workload, policy) outcome ->
        match outcome.Recompiler.plan with
        | Ok plan -> (workload, policy, plan)
        | Error message ->
          failwith
            (Printf.sprintf "bench drift: %s/%s failed to compile: %s"
               workload policy.Policies.label message))
      entries outcomes,
    seconds )

let run_drift_bench args =
  let days = ref 52 in
  let threshold = ref Retention.default.Retention.threshold in
  let jobs = ref 1 in
  let out = ref "BENCH_drift.json" in
  let usage =
    "usage: bench drift [--days N] [--threshold LOSS] [--jobs N] [--out FILE]"
  in
  let rec parse = function
    | [] -> Ok ()
    | "--days" :: v :: rest -> begin
      match int_of_string_opt v with
      | Some n when n >= 2 ->
        days := n;
        parse rest
      | _ -> Error (Printf.sprintf "--days: need an integer >= 2, got %S" v)
    end
    | "--threshold" :: v :: rest -> begin
      match float_of_string_opt v with
      | Some f ->
        threshold := f;
        parse rest
      | None -> Error (Printf.sprintf "--threshold: bad float %S" v)
    end
    | "--jobs" :: v :: rest -> begin
      match int_of_string_opt v with
      | Some n when n >= 1 ->
        jobs := n;
        parse rest
      | _ -> Error (Printf.sprintf "--jobs: bad worker count %S" v)
    end
    | "--out" :: v :: rest ->
      out := v;
      parse rest
    | other :: _ -> Error (Printf.sprintf "unknown argument %S\n%s" other usage)
  in
  match parse args with
  | Error message ->
    prerr_endline ("bench drift: " ^ message);
    2
  | Ok () ->
    let ctx = Context.default in
    let history_days = History.days ctx.Context.history in
    if !days > history_days then begin
      Printf.eprintf "bench drift: --days %d exceeds the %d-day history\n"
        !days history_days;
      2
    end
    else begin
      let policy = { Retention.threshold = !threshold } in
      let device_on day =
        Device.with_calibration ctx.Context.q20 (History.day ctx.Context.history day)
      in
      let matrix =
        List.concat_map
          (fun (entry : Catalog.entry) ->
            List.map (fun p -> (entry.Catalog.name, p)) Policies.all)
          Catalog.all
      in
      let total = List.length matrix in
      Printf.printf
        "Drift bench: %d plans (catalog x policies), %d days, threshold %g, \
         jobs %d\n\n%!"
        total !days !threshold !jobs;
      let seeded, _ = drift_compile ~jobs:!jobs (device_on 0) matrix in
      let cache =
        ref
          (List.map
             (fun (w, p, plan) ->
               { de_workload = w; de_policy = p; de_compile_day = 0; de_plan = plan })
             seeded)
      in
      let rows = ref [] in
      for day = 1 to !days - 1 do
        let after = device_on day in
        let verdicts =
          List.map
            (fun entry ->
              let physical = entry.de_plan.Compiler.physical in
              let retain =
                if Retention.wholesale policy then false
                else begin
                  let score =
                    Staleness.score ~before:(device_on entry.de_compile_day)
                      ~after physical
                  in
                  match Retention.decide policy score with
                  | Retention.Recompile -> false
                  | Retention.Retain ->
                    not
                      (Vqc_diag.Diagnostic.has_errors
                         (Retention.reverify ~device:after
                            ~source:(Catalog.find entry.de_workload).Catalog.circuit
                            ~physical
                            ~initial:(Layout.assignment entry.de_plan.Compiler.initial)
                            ~final:(Layout.assignment entry.de_plan.Compiler.final)
                            ~swaps:
                              entry.de_plan.Compiler.stats.Router.swaps_inserted))
                end
              in
              (entry, retain))
            !cache
        in
        let retained = List.filter_map (fun (e, r) -> if r then Some e else None) verdicts in
        let demoted = List.filter_map (fun (e, r) -> if r then None else Some e) verdicts in
        let key e = (e.de_workload, e.de_policy) in
        let fresh_demoted, recompile_seconds =
          drift_compile ~jobs:!jobs after (List.map key demoted)
        in
        (* price what retention kept: compile the retained plans fresh
           too (time we would have spent; PST we might have gained) *)
        let fresh_retained, saved_seconds =
          drift_compile ~jobs:!jobs after (List.map key retained)
        in
        let losses =
          List.map2
            (fun entry (_, _, fresh) ->
              1.
              -. Reliability.pst after entry.de_plan.Compiler.physical
                 /. Reliability.pst after fresh.Compiler.physical)
            retained fresh_retained
        in
        let mean = function
          | [] -> 0.
          | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)
        in
        rows :=
          {
            dd_day = day;
            dd_retained = List.length retained;
            dd_recompiled = List.length demoted;
            dd_mean_loss = mean losses;
            dd_max_loss = List.fold_left Float.max 0. losses;
            dd_recompile_seconds = recompile_seconds;
            dd_saved_seconds = saved_seconds;
          }
          :: !rows;
        cache :=
          retained
          @ List.map
              (fun (w, p, plan) ->
                { de_workload = w; de_policy = p; de_compile_day = day; de_plan = plan })
              fresh_demoted
      done;
      let rows = List.rev !rows in
      List.iter
        (fun row ->
          Printf.printf
            "day %2d: retained %3d/%d (%.2f)  recompiled %3d  mean loss \
             %.4f  max loss %.4f  (%.2fs spent, %.2fs saved)\n%!"
            row.dd_day row.dd_retained total
            (float_of_int row.dd_retained /. float_of_int total)
            row.dd_recompiled row.dd_mean_loss row.dd_max_loss
            row.dd_recompile_seconds row.dd_saved_seconds)
        rows;
      let mean f =
        List.fold_left (fun acc row -> acc +. f row) 0. rows
        /. float_of_int (List.length rows)
      in
      let sum f = List.fold_left (fun acc row -> acc +. f row) 0. rows in
      let mean_fraction =
        mean (fun r -> float_of_int r.dd_retained /. float_of_int total)
      in
      Printf.printf
        "\nmean retained fraction: %.3f  mean PST loss (retained): %.4f  \
         recompile time saved: %.2fs of %.2fs\n"
        mean_fraction
        (mean (fun r -> r.dd_mean_loss))
        (sum (fun r -> r.dd_saved_seconds))
        (sum (fun r -> r.dd_saved_seconds +. r.dd_recompile_seconds));
      let json =
        Json.Obj
          [
            ("bench", Json.String "drift");
            ("threshold", Json.Float !threshold);
            ("days", Json.Int !days);
            ("plans", Json.Int total);
            ( "rows",
              Json.List
                (List.map
                   (fun row ->
                     Json.Obj
                       [
                         ("day", Json.Int row.dd_day);
                         ("retained", Json.Int row.dd_retained);
                         ("recompiled", Json.Int row.dd_recompiled);
                         ( "retained_fraction",
                           Json.Float
                             (float_of_int row.dd_retained /. float_of_int total)
                         );
                         ("mean_pst_loss", Json.Float row.dd_mean_loss);
                         ("max_pst_loss", Json.Float row.dd_max_loss);
                         ( "nd",
                           Json.Obj
                             [
                               ( "recompile_seconds",
                                 Json.Float row.dd_recompile_seconds );
                               ("saved_seconds", Json.Float row.dd_saved_seconds);
                             ] );
                       ])
                   rows) );
            ("mean_retained_fraction", Json.Float mean_fraction);
            ("mean_pst_loss", Json.Float (mean (fun r -> r.dd_mean_loss)));
            ( "nd",
              Json.Obj
                [
                  ( "total_recompile_seconds",
                    Json.Float (sum (fun r -> r.dd_recompile_seconds)) );
                  ( "total_saved_seconds",
                    Json.Float (sum (fun r -> r.dd_saved_seconds)) );
                ] );
          ]
      in
      Out_channel.with_open_text !out (fun channel ->
          Out_channel.output_string channel (Json.to_string json);
          Out_channel.output_char channel '\n');
      Printf.printf "wrote %s\n%!" !out;
      0
    end

(* ---- Serving under concurrency: bench serve-load ------------------- *)

module Server = Vqc_serve_net.Server
module Session = Vqc_serve_net.Session
module Load = Vqc_serve_net.Load
module Metrics = Vqc_obs.Metrics

(* Nearest-rank percentile over an ascending-sorted array. *)
let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then Float.nan
  else begin
    let rank = int_of_float (Float.ceil (p /. 100.0 *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) rank))
  end

(* Small circuits keep each compile cheap, so the bench exercises the
   serving machinery (sockets, sessions, striped caches, the shared
   store) rather than the mapper.  Clients start at different offsets
   of the same rotation: every workload is compiled somewhere early,
   then every other client's first touch is a shared-store hit and
   every repeat a private-cache hit. *)
let serve_load_workloads = [| "bv-3"; "bv-4"; "GHZ-3"; "TriSwap" |]

let serve_load_stream ~requests index =
  List.init requests (fun j ->
      let workload =
        serve_load_workloads.((index + j) mod Array.length serve_load_workloads)
      in
      Json.to_string
        (Json.Obj
           [ ("id", Json.Int (j + 1)); ("workload", Json.String workload) ]))

let bench_counter name = Metrics.counter_value (Metrics.counter name)

let hit_rate hits misses =
  let total = hits + misses in
  if total = 0 then 0.0 else float_of_int hits /. float_of_int total

type serve_round = {
  sr_clients : int;
  sr_requests : int;
  sr_seconds : float;
  sr_p50_ms : float;
  sr_p99_ms : float;
  sr_req_per_s : float;
  sr_l1_hit_rate : float;
  sr_store_hit_rate : float;
  sr_failures : string list;
}

let run_serve_round ~jobs ~shards ~requests_per_client clients =
  let epochs =
    Epoch.of_history ~name:"Q20" ~coupling:Topologies.ibm_q20_tokyo
      (History.generate ~days:2 ~seed:2 ~coupling:Topologies.ibm_q20_tokyo 20)
  in
  let server =
    Server.start
      ~config:
        {
          Server.default_config with
          Server.clients_max = clients + 8;
          session = { Session.default_config with Session.batch = 1 };
          service =
            {
              Service.default_config with
              Service.jobs;
              cache_shards = shards;
            };
        }
      epochs
  in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () ->
      let counters () =
        ( bench_counter "service.cache.hits",
          bench_counter "service.cache.misses",
          bench_counter "serve.store.hits",
          bench_counter "serve.store.misses" )
      in
      let l1_hits0, l1_misses0, store_hits0, store_misses0 = counters () in
      let results, seconds =
        wall_clock (fun () ->
            Load.run ~port:(Server.port server) ~clients ~window:8
              ~requests:(serve_load_stream ~requests:requests_per_client)
              ())
      in
      let l1_hits1, l1_misses1, store_hits1, store_misses1 = counters () in
      let failures =
        Array.to_list results
        |> List.filter_map (function Error e -> Some e | Ok _ -> None)
      in
      let latencies =
        Array.to_list results
        |> List.concat_map (function
             | Ok { Load.latencies; _ } -> Array.to_list latencies
             | Error _ -> [])
        |> Array.of_list
      in
      Array.sort compare latencies;
      let answered = Array.length latencies in
      {
        sr_clients = clients;
        sr_requests = clients * requests_per_client;
        sr_seconds = seconds;
        sr_p50_ms = 1e3 *. percentile latencies 50.0;
        sr_p99_ms = 1e3 *. percentile latencies 99.0;
        sr_req_per_s =
          (if seconds > 0.0 then float_of_int answered /. seconds else 0.0);
        sr_l1_hit_rate =
          hit_rate (l1_hits1 - l1_hits0) (l1_misses1 - l1_misses0);
        sr_store_hit_rate =
          hit_rate (store_hits1 - store_hits0) (store_misses1 - store_misses0);
        sr_failures = failures;
      })

let serve_round_json round =
  Json.Obj
    [
      ("clients", Json.Int round.sr_clients);
      ("requests", Json.Int round.sr_requests);
      ( "nd",
        Json.Obj
          [
            ("seconds", Json.Float round.sr_seconds);
            ("p50_ms", Json.Float round.sr_p50_ms);
            ("p99_ms", Json.Float round.sr_p99_ms);
            ("req_per_s", Json.Float round.sr_req_per_s);
            ("l1_hit_rate", Json.Float round.sr_l1_hit_rate);
            ("store_hit_rate", Json.Float round.sr_store_hit_rate);
          ] );
    ]

let run_serve_bench args =
  let clients = ref [ 1; 8; 64 ] in
  let requests_per_client = ref 32 in
  let jobs = ref 4 in
  let shards = ref 4 in
  let out = ref "BENCH_serve.json" in
  let check_scaling = ref false in
  let usage =
    "usage: bench serve-load [--clients N,N,...] [--requests-per-client N] \
     [--jobs N] [--shards N] [--out FILE] [--check-scaling]"
  in
  let positive flag v =
    match int_of_string_opt v with
    | Some n when n >= 1 -> Ok n
    | _ -> Error (Printf.sprintf "%s: bad positive integer %S" flag v)
  in
  let rec parse = function
    | [] -> Ok ()
    | "--clients" :: v :: rest -> begin
      let parsed =
        String.split_on_char ',' v
        |> List.map (positive "--clients")
        |> List.fold_left
             (fun acc one ->
               match (acc, one) with
               | Ok ns, Ok n -> Ok (ns @ [ n ])
               | (Error _ as e), _ -> e
               | _, (Error _ as e) -> e)
             (Ok [])
      in
      match parsed with
      | Ok [] -> Error "--clients: empty list"
      | Ok ns ->
        clients := ns;
        parse rest
      | Error e -> Error e
    end
    | "--requests-per-client" :: v :: rest -> begin
      match positive "--requests-per-client" v with
      | Ok n ->
        requests_per_client := n;
        parse rest
      | Error e -> Error e
    end
    | "--jobs" :: v :: rest -> begin
      match positive "--jobs" v with
      | Ok n ->
        jobs := n;
        parse rest
      | Error e -> Error e
    end
    | "--shards" :: v :: rest -> begin
      match positive "--shards" v with
      | Ok n ->
        shards := n;
        parse rest
      | Error e -> Error e
    end
    | "--out" :: v :: rest ->
      out := v;
      parse rest
    | "--check-scaling" :: rest ->
      check_scaling := true;
      parse rest
    | other :: _ -> Error (Printf.sprintf "unknown argument %S\n%s" other usage)
  in
  match parse args with
  | Error message ->
    prerr_endline ("bench serve-load: " ^ message);
    2
  | Ok () ->
    Printf.printf
      "Serve-load bench: %d requests/client over %s, jobs=%d shards=%d\n\n"
      !requests_per_client
      (String.concat "+" (Array.to_list serve_load_workloads))
      !jobs !shards;
    let rounds =
      List.map
        (fun count ->
          let round =
            run_serve_round ~jobs:!jobs ~shards:!shards
              ~requests_per_client:!requests_per_client count
          in
          Printf.printf
            "%3d clients  %5d reqs  %8.1f req/s  p50 %7.2f ms  p99 %7.2f ms  \
             L1 %4.0f%%  store %4.0f%%\n\
             %!"
            round.sr_clients round.sr_requests round.sr_req_per_s
            round.sr_p50_ms round.sr_p99_ms
            (100.0 *. round.sr_l1_hit_rate)
            (100.0 *. round.sr_store_hit_rate);
          round)
        !clients
    in
    let failures = List.concat_map (fun r -> r.sr_failures) rounds in
    List.iter
      (fun failure ->
        Printf.eprintf "bench serve-load: client failed: %s\n" failure)
      failures;
    let json =
      Json.Obj
        [
          ("bench", Json.String "serve-load");
          ("jobs", Json.Int !jobs);
          ("shards", Json.Int !shards);
          ("requests_per_client", Json.Int !requests_per_client);
          ("rounds", Json.List (List.map serve_round_json rounds));
        ]
    in
    Out_channel.with_open_text !out (fun channel ->
        Out_channel.output_string channel (Json.to_string json);
        Out_channel.output_char channel '\n');
    Printf.printf "wrote %s\n" !out;
    if failures <> [] then 1
    else if not !check_scaling then 0
    else begin
      (* the whole point of concurrent serving: more clients, more
         served — the shared pool and store must scale, not serialize *)
      match (rounds, List.rev rounds) with
      | first :: _, last :: _ when first.sr_clients < last.sr_clients ->
        if last.sr_req_per_s > first.sr_req_per_s then 0
        else begin
          Printf.eprintf
            "bench serve-load: REGRESSION: %d clients served %.1f req/s, not \
             above the %.1f req/s of %d client(s)\n"
            last.sr_clients last.sr_req_per_s first.sr_req_per_s
            first.sr_clients;
          1
        end
      | _ -> 0
    end

let () =
  match Array.to_list Sys.argv with
  | _ :: "estimator" :: rest -> exit (run_estimator_bench rest)
  | _ :: "compile" :: rest -> exit (run_compile_bench rest)
  | _ :: "kernels" :: rest -> exit (run_kernels_bench rest)
  | _ :: "drift" :: rest -> exit (run_drift_bench rest)
  | _ :: "serve-load" :: rest -> exit (run_serve_bench rest)
  | argv ->
    let skip_perf = List.mem "--no-perf" argv in
    regenerate_artifacts ();
    if not skip_perf then run_timings ()

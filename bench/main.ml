(* Benchmark harness.

   Part 1 regenerates every table and figure of the paper's evaluation
   (the same rows/series the paper reports; see EXPERIMENTS.md for the
   paper-vs-measured comparison).  Part 2 times the compiler policies and
   the simulation engines with Bechamel.

   Run with: dune exec bench/main.exe
   To skip the timing section: dune exec bench/main.exe -- --no-perf *)

module Registry = Vqc_experiments.Registry
module Context = Vqc_experiments.Context
module Compiler = Vqc_mapper.Compiler
module Monte_carlo = Vqc_sim.Monte_carlo
module Reliability = Vqc_sim.Reliability
module Catalog = Vqc_workloads.Catalog
module Rng = Vqc_rng.Rng
module History = Vqc_device.History
module Topologies = Vqc_device.Topologies
module Service = Vqc_service.Service
module Epoch = Vqc_service.Epoch
module Protocol = Vqc_service.Protocol
module Policies = Vqc_service.Policies

let regenerate_artifacts () =
  let ctx = Context.default in
  Registry.run_all Format.std_formatter ctx;
  Format.pp_print_flush Format.std_formatter ()

(* ---- Bechamel timing ------------------------------------------------ *)

let compile_test ctx name policy =
  let circuit = (Catalog.find name).Catalog.circuit in
  let device = ctx.Context.q20 in
  Bechamel.Test.make
    ~name:(Printf.sprintf "compile/%s/%s" name policy.Compiler.label)
    (Bechamel.Staged.stage (fun () ->
         ignore (Compiler.compile device policy circuit)))

let monte_carlo_test ctx trials =
  let circuit = (Catalog.find "bv-16").Catalog.circuit in
  let device = ctx.Context.q20 in
  let compiled = Compiler.compile device Compiler.vqa_vqm circuit in
  Bechamel.Test.make
    ~name:(Printf.sprintf "monte-carlo/bv-16/%d-trials" trials)
    (Bechamel.Staged.stage (fun () ->
         ignore
           (Monte_carlo.run ~trials (Rng.make 1) device
              compiled.Compiler.physical)))

(* Serial vs parallel Monte-Carlo on the same workload and seed: the
   estimates are bit-identical by construction, so the ratio of these
   two rows is pure engine speedup. *)
let monte_carlo_parallel_test ctx ~jobs trials =
  let circuit = (Catalog.find "bv-16").Catalog.circuit in
  let device = ctx.Context.q20 in
  let compiled = Compiler.compile device Compiler.vqa_vqm circuit in
  Bechamel.Test.make
    ~name:(Printf.sprintf "monte-carlo-parallel/bv-16/%d-trials/%d-jobs"
             trials jobs)
    (Bechamel.Staged.stage (fun () ->
         ignore
           (Monte_carlo.run ~jobs ~trials (Rng.make 1) device
              compiled.Compiler.physical)))

(* ---- Serving: cold vs warm-cache throughput ------------------------ *)

let serve_requests =
  List.map
    (fun workload ->
      {
        Protocol.id = None;
        source = Protocol.Workload workload;
        policy = Policies.default_label;
        epoch = None;
      })
    [ "bv-16"; "qft-12"; "alu" ]

let serve_batch service =
  List.iter
    (fun request ->
      match Service.submit service request with
      | Ok () -> ()
      | Error _ -> failwith "bench: unexpected rejection")
    serve_requests;
  ignore (Service.flush service)

let serve_service ~cache_enabled =
  let epochs =
    Epoch.of_history ~name:"Q20" ~coupling:Topologies.ibm_q20_tokyo
      (History.generate ~days:2 ~seed:2 ~coupling:Topologies.ibm_q20_tokyo 20)
  in
  Service.create
    ~config:{ Service.default_config with Service.cache_enabled }
    epochs

(* Cold: the cache is bypassed, every batch compiles all three plans.
   Warm: the cache is primed once, every batch is pure lookup — the
   ratio of these two rows is the amortization the plan cache buys a
   recompile-per-calibration serving regime. *)
let serve_cold_test () =
  let service = serve_service ~cache_enabled:false in
  Bechamel.Test.make ~name:"serve/cold/3-reqs"
    (Bechamel.Staged.stage (fun () -> serve_batch service))

let serve_warm_test () =
  let service = serve_service ~cache_enabled:true in
  serve_batch service;
  Bechamel.Test.make ~name:"serve/warm-cache/3-reqs"
    (Bechamel.Staged.stage (fun () -> serve_batch service))

let analytic_test ctx =
  let circuit = (Catalog.find "qft-14").Catalog.circuit in
  let device = ctx.Context.q20 in
  let compiled = Compiler.compile device Compiler.vqa_vqm circuit in
  Bechamel.Test.make ~name:"analytic-pst/qft-14"
    (Bechamel.Staged.stage (fun () ->
         ignore (Reliability.pst device compiled.Compiler.physical)))

let run_timings () =
  let open Bechamel in
  let ctx = Context.default in
  let tests =
    Test.make_grouped ~name:"vqc"
      [
        compile_test ctx "bv-16" Compiler.baseline;
        compile_test ctx "bv-16" Compiler.vqm;
        compile_test ctx "bv-16" Compiler.vqa_vqm;
        compile_test ctx "qft-12" Compiler.baseline;
        compile_test ctx "qft-12" Compiler.vqa_vqm;
        compile_test ctx "alu" (Compiler.native ~seed:1);
        monte_carlo_test ctx 10_000;
        analytic_test ctx;
      ]
  in
  let parallel_tests =
    Test.make_grouped ~name:"monte-carlo-parallel"
      (List.sort_uniq compare [ 1; 2; 4; Domain.recommended_domain_count () ]
      |> List.map (fun jobs -> monte_carlo_parallel_test ctx ~jobs 200_000))
  in
  let serve_tests =
    Test.make_grouped ~name:"serve" [ serve_cold_test (); serve_warm_test () ]
  in
  let tests =
    Test.make_grouped ~name:"all" [ tests; parallel_tests; serve_tests ]
  in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| "run" |])
      Toolkit.Instance.monotonic_clock raw
  in
  print_newline ();
  print_endline "Timing (Bechamel, monotonic clock)";
  print_endline "==================================";
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let nanoseconds =
          match Analyze.OLS.estimates ols with
          | Some (estimate :: _) -> estimate
          | Some [] | None -> Float.nan
        in
        (name, nanoseconds) :: acc)
      results []
    |> List.sort compare
  in
  List.iter
    (fun (name, nanoseconds) ->
      Printf.printf "%-44s %12.0f ns/run  (%.3f ms)\n" name nanoseconds
        (nanoseconds /. 1e6))
    rows

let () =
  let skip_perf = Array.exists (( = ) "--no-perf") Sys.argv in
  regenerate_artifacts ();
  if not skip_perf then run_timings ()

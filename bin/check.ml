(* vqc-check: the static-analysis front door.

     vqc-check lint FILE...     lint OpenQASM sources (VQC000-VQC005)
     vqc-check verify [IDS]     compile catalog workloads and verify the
                                plans (translation validation, VQC101+)
     vqc-check self [--root D]  repository source analysis (VQC2xx)
     vqc-check calib            calibration-data lint over every model
                                profile and its history (VQC12x)

   Exit status 0 when no error-severity diagnostic was produced (lint
   warnings and infos do not fail the run), 1 otherwise.  --json renders
   diagnostics with the deterministic JSON encoding shared with
   vqc-serve's "invalid" responses.  self and calib additionally take
   --sarif FILE (SARIF 2.1.0 log, '-' for stdout) and --baseline FILE
   (fail only on findings absent from the committed baseline;
   --update-baseline rewrites the file to accept the current set). *)

module Diagnostic = Vqc_diag.Diagnostic
module Lint = Vqc_check.Lint
module Verify = Vqc_check.Verify
module Selflint = Vqc_check.Selflint
module Calib_lint = Vqc_check.Calib_lint
module Sarif = Vqc_check.Sarif
module Baseline = Vqc_check.Baseline
module Calibration_model = Vqc_device.Calibration_model
module Circuit = Vqc_circuit.Circuit
module Catalog = Vqc_workloads.Catalog
module Compiler = Vqc_mapper.Compiler
module History = Vqc_device.History
module Topologies = Vqc_device.Topologies
module Epoch = Vqc_service.Epoch
module Policies = Vqc_service.Policies
module Json = Vqc_obs.Json

open Cmdliner

let json_term =
  let doc =
    "Render diagnostics as deterministic JSON (the encoding of \
     vqc-serve's 'invalid' responses) instead of one-line text."
  in
  Arg.(value & flag & info [ "json" ] ~doc)

let print_text ~prefix diagnostics =
  List.iter
    (fun d -> print_endline (prefix ^ Diagnostic.to_string d))
    diagnostics

let status diagnostics = if Diagnostic.has_errors diagnostics then 1 else 0

(* ---- lint ----------------------------------------------------------- *)

let read_source path =
  if path = "-" then Ok (In_channel.input_all stdin)
  else
    match In_channel.with_open_text path In_channel.input_all with
    | text -> Ok text
    | exception Sys_error message -> Error message

let run_lint json files =
  let files = if files = [] then [ "-" ] else files in
  let codes =
    List.map
      (fun path ->
        match read_source path with
        | Error message ->
          prerr_endline ("vqc-check: " ^ message);
          1
        | Ok text ->
          let diagnostics = Lint.qasm text in
          if json then print_endline (Diagnostic.render_list diagnostics)
          else begin
            let prefix = if path = "-" then "" else path ^ ": " in
            print_text ~prefix diagnostics
          end;
          status diagnostics)
      files
  in
  List.fold_left max 0 codes

let lint_cmd =
  let doc = "lint OpenQASM 2.0 sources" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Parses each $(i,FILE) (or stdin for '-') as OpenQASM 2.0 and \
         reports structured diagnostics: positioned parse errors \
         (VQC000, VQC001, VQC004), gates after measurement (VQC002), \
         unused qubits (VQC003) and trivially cancellable adjacent \
         pairs (VQC005).  With --json, one JSON array is printed per \
         input file.";
    ]
  in
  let files =
    let doc = "OpenQASM files to lint ('-' or nothing reads stdin)." in
    Arg.(value & pos_all string [] & info [] ~docv:"FILE" ~doc)
  in
  Cmd.v (Cmd.info "lint" ~doc ~man) Term.(const run_lint $ json_term $ files)

(* ---- verify --------------------------------------------------------- *)

let verify_result ~json ~workload ~policy diagnostics =
  if json then
    print_endline
      (Json.to_string
         (Json.Obj
            [
              ("workload", Json.String workload);
              ("policy", Json.String policy);
              ( "status",
                Json.String
                  (if Diagnostic.has_errors diagnostics then "invalid"
                   else "ok") );
              ( "diagnostics",
                Json.List (List.map Diagnostic.to_json diagnostics) );
            ]))
  else if Diagnostic.has_errors diagnostics then begin
    Printf.printf "%s under %s: INVALID\n" workload policy;
    print_text ~prefix:"  " diagnostics
  end
  else Printf.printf "%s under %s: ok\n" workload policy

let run_verify json seed policies workloads =
  let entries =
    match workloads with
    | [] -> Ok Catalog.all
    | names ->
      let unknown =
        List.filter
          (fun name -> not (List.mem name (Catalog.names ())))
          names
      in
      if unknown <> [] then
        Error
          (Printf.sprintf "unknown workload(s) %s; available: %s"
             (String.concat ", " unknown)
             (String.concat ", " (Catalog.names ())))
      else Ok (List.map Catalog.find names)
  in
  let policy_entries =
    match policies with
    | [] -> Ok Policies.all
    | labels ->
      let resolved = List.map (fun l -> (l, Policies.find l)) labels in
      (match List.filter (fun (_, e) -> e = None) resolved with
      | [] ->
        Ok
          (List.map
             (function _, Some e -> e | _, None -> assert false)
             resolved)
      | missing ->
        Error
          (Printf.sprintf "unknown policy(ies) %s; available: %s"
             (String.concat ", " (List.map fst missing))
             (String.concat ", " (Policies.names ()))))
  in
  match (entries, policy_entries) with
  | Error message, _ | _, Error message ->
    prerr_endline ("vqc-check: " ^ message);
    2
  | Ok entries, Ok policy_entries ->
    let history =
      History.generate ~days:1 ~seed ~coupling:Topologies.ibm_q20_tokyo 20
    in
    let epochs =
      Epoch.of_history ~name:"Q20" ~coupling:Topologies.ibm_q20_tokyo history
    in
    let device = Epoch.device epochs 0 in
    let codes =
      List.concat_map
        (fun (entry : Catalog.entry) ->
          List.map
            (fun (p : Policies.entry) ->
              match
                Compiler.compile device p.Policies.policy entry.Catalog.circuit
              with
              | plan ->
                let diagnostics =
                  Verify.compiled device entry.Catalog.circuit plan
                in
                verify_result ~json ~workload:entry.Catalog.name
                  ~policy:p.Policies.label diagnostics;
                status diagnostics
              | exception Invalid_argument message ->
                Printf.eprintf "vqc-check: %s under %s: %s\n"
                  entry.Catalog.name p.Policies.label message;
                1)
            policy_entries)
        entries
    in
    List.fold_left max 0 codes

let verify_cmd =
  let doc = "compile catalog workloads and statically verify the plans" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Compiles every requested catalog workload under every requested \
         policy against the synthetic Q20 calibration (--seed), then \
         replays each physical circuit against its source program: \
         coupling legality (VQC101), dependency order (VQC102), \
         measurement mapping (VQC103), SWAP accounting (VQC104), final \
         layout (VQC105), completeness (VQC106) and calibration sanity \
         (VQC107).  An empty report line means the plan is proven \
         faithful.";
    ]
  in
  let seed =
    let doc = "Seed for the synthetic calibration model." in
    Arg.(value & opt int 2 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let policies =
    let doc =
      "Policy label to verify under (repeatable; default: every \
       registered policy)."
    in
    Arg.(value & opt_all string [] & info [ "policy" ] ~docv:"LABEL" ~doc)
  in
  let workloads =
    let doc = "Catalog workloads (default: the whole catalog)." in
    Arg.(value & pos_all string [] & info [] ~docv:"WORKLOAD" ~doc)
  in
  Cmd.v
    (Cmd.info "verify" ~doc ~man)
    Term.(const run_verify $ json_term $ seed $ policies $ workloads)

(* ---- shared reporting for self / calib ------------------------------ *)

let sarif_term =
  let doc =
    "Also emit the findings (baseline not applied) as a SARIF 2.1.0 log \
     to $(docv); '-' writes the log to stdout and suppresses the text \
     report."
  in
  Arg.(
    value & opt (some string) None & info [ "sarif" ] ~docv:"FILE" ~doc)

let baseline_term =
  let doc =
    "Committed baseline file: findings whose fingerprints it lists are \
     suppressed, so the exit status reflects only new findings."
  in
  Arg.(
    value & opt (some string) None & info [ "baseline" ] ~docv:"FILE" ~doc)

let update_term =
  let doc =
    "Rewrite the --baseline file to accept exactly the current findings, \
     then exit 0."
  in
  Arg.(value & flag & info [ "update-baseline" ] ~doc)

let write_file path contents =
  Out_channel.with_open_text path (fun channel ->
      Out_channel.output_string channel contents)

(* Render findings (text or JSON or SARIF-to-stdout), apply the
   baseline, honor --update-baseline; returns the exit code. *)
let report ~json ~sarif ~baseline ~update ~clean diagnostics =
  let sarif_stdout = sarif = Some "-" in
  (match sarif with
  | Some "-" -> print_endline (Sarif.render diagnostics)
  | Some path -> write_file path (Sarif.render diagnostics ^ "\n")
  | None -> ());
  match (baseline, update) with
  | Some path, true ->
    write_file path (Baseline.render diagnostics);
    if not sarif_stdout then
      Printf.printf "baseline updated: %s now accepts %d finding(s)\n" path
        (List.length diagnostics);
    0
  | None, true ->
    prerr_endline "vqc-check: --update-baseline needs --baseline FILE";
    2
  | baseline, false ->
    let accepted =
      match baseline with
      | None -> Ok Baseline.empty
      | Some path -> Baseline.load path
    in
    (match accepted with
    | Error message ->
      prerr_endline ("vqc-check: baseline: " ^ message);
      2
    | Ok accepted ->
      let fresh, suppressed = Baseline.partition accepted diagnostics in
      if sarif_stdout then status fresh
      else begin
        if json then print_endline (Diagnostic.render_list fresh)
        else begin
          print_text ~prefix:"" fresh;
          if suppressed <> [] then
            Printf.printf "%d baselined finding(s) suppressed\n"
              (List.length suppressed);
          if fresh = [] then print_endline clean
        end;
        status fresh
      end)

(* ---- self ----------------------------------------------------------- *)

let run_self json root sarif baseline update =
  let diagnostics = Selflint.scan_tree ~root in
  report ~json ~sarif ~baseline ~update ~clean:"self-lint: clean" diagnostics

let self_cmd =
  let doc = "source analysis over the repository tree" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Tokenizes every .ml file under lib/, bin/, examples/, test/ and \
         bench/ (comment- and string-literal-aware) and runs the source \
         rules: determinism hygiene (VQC201: environment-seeded RNG, \
         wall-clock reads outside the allow-listed timing sites), stdout \
         hygiene in library code (VQC202), and the domain-safety \
         discipline the concurrent server depends on (VQC210 unguarded \
         top-level mutable state, VQC211 lock/unlock shape, VQC212 \
         nested lock order).";
    ]
  in
  let root =
    let doc = "Repository root to scan." in
    Arg.(value & opt string "." & info [ "root" ] ~docv:"DIR" ~doc)
  in
  Cmd.v (Cmd.info "self" ~doc ~man)
    Term.(
      const run_self $ json_term $ root $ sarif_term $ baseline_term
      $ update_term)

(* ---- calib ---------------------------------------------------------- *)

let run_calib json seed days profiles sarif baseline update =
  let selected =
    match profiles with
    | [] -> Ok Calibration_model.profiles
    | names ->
      let unknown =
        List.filter
          (fun name -> Calibration_model.find_profile name = None)
          names
      in
      if unknown <> [] then
        Error
          (Printf.sprintf "unknown profile(s) %s; available: %s"
             (String.concat ", " unknown)
             (String.concat ", "
                (List.map
                   (fun p -> p.Calibration_model.profile_name)
                   Calibration_model.profiles)))
      else
        Ok
          (List.filter_map Calibration_model.find_profile names)
  in
  match selected with
  | Error message ->
    prerr_endline ("vqc-check: " ^ message);
    2
  | Ok selected ->
    let diagnostics =
      List.concat_map
        (fun (p : Calibration_model.profile) ->
          let history =
            History.generate ~days ~params:p.Calibration_model.profile_params
              ~seed ~coupling:p.Calibration_model.coupling
              p.Calibration_model.qubits
          in
          Calib_lint.history ~name:p.Calibration_model.profile_name history)
        selected
      |> List.sort Diagnostic.compare
    in
    report ~json ~sarif ~baseline ~update ~clean:"calibration lint: clean"
      diagnostics

let calib_cmd =
  let doc = "lint every calibration profile the device model produces" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Generates the full multi-day calibration history of every \
         registered device profile (--seed, --days) and lints the data \
         itself: error-rate ranges (VQC120), coherence ranges (VQC121), \
         the T2 <= 2*T1 bound (VQC122), dead qubits (VQC123), \
         coupling/calibration asymmetry (VQC124) and cross-day stuck \
         sensors (VQC125).  The policies are only as good as this data \
         — lint it like source.";
    ]
  in
  let seed =
    let doc = "Seed for the synthetic calibration model." in
    Arg.(value & opt int 2 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let days =
    let doc = "History length in days (the paper's horizon is 52)." in
    Arg.(value & opt int 52 & info [ "days" ] ~docv:"N" ~doc)
  in
  let profiles =
    let doc = "Profile to lint (repeatable; default: every profile)." in
    Arg.(value & opt_all string [] & info [ "profile" ] ~docv:"NAME" ~doc)
  in
  Cmd.v (Cmd.info "calib" ~doc ~man)
    Term.(
      const run_calib $ json_term $ seed $ days $ profiles $ sarif_term
      $ baseline_term $ update_term)

let cmd =
  let doc = "static analysis for variability-aware compilation artifacts" in
  let info = Cmd.info "vqc-check" ~doc in
  Cmd.group info [ lint_cmd; verify_cmd; self_cmd; calib_cmd ]

let () = exit (Cmd.eval' cmd)

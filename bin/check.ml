(* vqc-check: the static-analysis front door.

     vqc-check lint FILE...     lint OpenQASM sources (VQC000-VQC005)
     vqc-check verify [IDS]     compile catalog workloads and verify the
                                plans (translation validation, VQC101+)
     vqc-check self [--root D]  repository determinism-hygiene lint

   Exit status 0 when no error-severity diagnostic was produced (lint
   warnings and infos do not fail the run), 1 otherwise.  --json renders
   diagnostics with the deterministic JSON encoding shared with
   vqc-serve's "invalid" responses. *)

module Diagnostic = Vqc_diag.Diagnostic
module Lint = Vqc_check.Lint
module Verify = Vqc_check.Verify
module Selflint = Vqc_check.Selflint
module Circuit = Vqc_circuit.Circuit
module Catalog = Vqc_workloads.Catalog
module Compiler = Vqc_mapper.Compiler
module History = Vqc_device.History
module Topologies = Vqc_device.Topologies
module Epoch = Vqc_service.Epoch
module Policies = Vqc_service.Policies
module Json = Vqc_obs.Json

open Cmdliner

let json_term =
  let doc =
    "Render diagnostics as deterministic JSON (the encoding of \
     vqc-serve's 'invalid' responses) instead of one-line text."
  in
  Arg.(value & flag & info [ "json" ] ~doc)

let print_text ~prefix diagnostics =
  List.iter
    (fun d -> print_endline (prefix ^ Diagnostic.to_string d))
    diagnostics

let status diagnostics = if Diagnostic.has_errors diagnostics then 1 else 0

(* ---- lint ----------------------------------------------------------- *)

let read_source path =
  if path = "-" then Ok (In_channel.input_all stdin)
  else
    match In_channel.with_open_text path In_channel.input_all with
    | text -> Ok text
    | exception Sys_error message -> Error message

let run_lint json files =
  let files = if files = [] then [ "-" ] else files in
  let codes =
    List.map
      (fun path ->
        match read_source path with
        | Error message ->
          prerr_endline ("vqc-check: " ^ message);
          1
        | Ok text ->
          let diagnostics = Lint.qasm text in
          if json then print_endline (Diagnostic.render_list diagnostics)
          else begin
            let prefix = if path = "-" then "" else path ^ ": " in
            print_text ~prefix diagnostics
          end;
          status diagnostics)
      files
  in
  List.fold_left max 0 codes

let lint_cmd =
  let doc = "lint OpenQASM 2.0 sources" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Parses each $(i,FILE) (or stdin for '-') as OpenQASM 2.0 and \
         reports structured diagnostics: positioned parse errors \
         (VQC000, VQC001, VQC004), gates after measurement (VQC002), \
         unused qubits (VQC003) and trivially cancellable adjacent \
         pairs (VQC005).  With --json, one JSON array is printed per \
         input file.";
    ]
  in
  let files =
    let doc = "OpenQASM files to lint ('-' or nothing reads stdin)." in
    Arg.(value & pos_all string [] & info [] ~docv:"FILE" ~doc)
  in
  Cmd.v (Cmd.info "lint" ~doc ~man) Term.(const run_lint $ json_term $ files)

(* ---- verify --------------------------------------------------------- *)

let verify_result ~json ~workload ~policy diagnostics =
  if json then
    print_endline
      (Json.to_string
         (Json.Obj
            [
              ("workload", Json.String workload);
              ("policy", Json.String policy);
              ( "status",
                Json.String
                  (if Diagnostic.has_errors diagnostics then "invalid"
                   else "ok") );
              ( "diagnostics",
                Json.List (List.map Diagnostic.to_json diagnostics) );
            ]))
  else if Diagnostic.has_errors diagnostics then begin
    Printf.printf "%s under %s: INVALID\n" workload policy;
    print_text ~prefix:"  " diagnostics
  end
  else Printf.printf "%s under %s: ok\n" workload policy

let run_verify json seed policies workloads =
  let entries =
    match workloads with
    | [] -> Ok Catalog.all
    | names ->
      let unknown =
        List.filter
          (fun name -> not (List.mem name (Catalog.names ())))
          names
      in
      if unknown <> [] then
        Error
          (Printf.sprintf "unknown workload(s) %s; available: %s"
             (String.concat ", " unknown)
             (String.concat ", " (Catalog.names ())))
      else Ok (List.map Catalog.find names)
  in
  let policy_entries =
    match policies with
    | [] -> Ok Policies.all
    | labels ->
      let resolved = List.map (fun l -> (l, Policies.find l)) labels in
      (match List.filter (fun (_, e) -> e = None) resolved with
      | [] ->
        Ok
          (List.map
             (function _, Some e -> e | _, None -> assert false)
             resolved)
      | missing ->
        Error
          (Printf.sprintf "unknown policy(ies) %s; available: %s"
             (String.concat ", " (List.map fst missing))
             (String.concat ", " (Policies.names ()))))
  in
  match (entries, policy_entries) with
  | Error message, _ | _, Error message ->
    prerr_endline ("vqc-check: " ^ message);
    2
  | Ok entries, Ok policy_entries ->
    let history =
      History.generate ~days:1 ~seed ~coupling:Topologies.ibm_q20_tokyo 20
    in
    let epochs =
      Epoch.of_history ~name:"Q20" ~coupling:Topologies.ibm_q20_tokyo history
    in
    let device = Epoch.device epochs 0 in
    let codes =
      List.concat_map
        (fun (entry : Catalog.entry) ->
          List.map
            (fun (p : Policies.entry) ->
              match
                Compiler.compile device p.Policies.policy entry.Catalog.circuit
              with
              | plan ->
                let diagnostics =
                  Verify.compiled device entry.Catalog.circuit plan
                in
                verify_result ~json ~workload:entry.Catalog.name
                  ~policy:p.Policies.label diagnostics;
                status diagnostics
              | exception Invalid_argument message ->
                Printf.eprintf "vqc-check: %s under %s: %s\n"
                  entry.Catalog.name p.Policies.label message;
                1)
            policy_entries)
        entries
    in
    List.fold_left max 0 codes

let verify_cmd =
  let doc = "compile catalog workloads and statically verify the plans" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Compiles every requested catalog workload under every requested \
         policy against the synthetic Q20 calibration (--seed), then \
         replays each physical circuit against its source program: \
         coupling legality (VQC101), dependency order (VQC102), \
         measurement mapping (VQC103), SWAP accounting (VQC104), final \
         layout (VQC105), completeness (VQC106) and calibration sanity \
         (VQC107).  An empty report line means the plan is proven \
         faithful.";
    ]
  in
  let seed =
    let doc = "Seed for the synthetic calibration model." in
    Arg.(value & opt int 2 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let policies =
    let doc =
      "Policy label to verify under (repeatable; default: every \
       registered policy)."
    in
    Arg.(value & opt_all string [] & info [ "policy" ] ~docv:"LABEL" ~doc)
  in
  let workloads =
    let doc = "Catalog workloads (default: the whole catalog)." in
    Arg.(value & pos_all string [] & info [] ~docv:"WORKLOAD" ~doc)
  in
  Cmd.v
    (Cmd.info "verify" ~doc ~man)
    Term.(const run_verify $ json_term $ seed $ policies $ workloads)

(* ---- self ----------------------------------------------------------- *)

let run_self json root =
  let diagnostics = Selflint.scan_tree ~root in
  if json then print_endline (Diagnostic.render_list diagnostics)
  else begin
    print_text ~prefix:"" diagnostics;
    if diagnostics = [] then print_endline "self-lint: clean"
  end;
  status diagnostics

let self_cmd =
  let doc = "determinism-hygiene lint over the repository sources" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Scans every .ml file under lib/, bin/, examples/, test/ and \
         bench/ for calls that silently break reproducibility \
         (environment-seeded RNG, wall-clock reads outside the \
         allow-listed timing sites) and reports VQC201 errors.";
    ]
  in
  let root =
    let doc = "Repository root to scan." in
    Arg.(value & opt string "." & info [ "root" ] ~docv:"DIR" ~doc)
  in
  Cmd.v (Cmd.info "self" ~doc ~man) Term.(const run_self $ json_term $ root)

let cmd =
  let doc = "static analysis for variability-aware compilation artifacts" in
  let info = Cmd.info "vqc-check" ~doc in
  Cmd.group info [ lint_cmd; verify_cmd; self_cmd ]

let () = exit (Cmd.eval' cmd)

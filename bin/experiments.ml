(* Run paper-artifact reproductions by id: `vqc-experiments fig12 tab3`,
   or everything with `vqc-experiments all`.  `--jobs N` fans the
   requested ids across N domains via the execution engine; each
   experiment renders into its own buffer and the buffers are printed in
   request order, so stdout is byte-identical for every N. *)

module Registry = Vqc_experiments.Registry
module Context = Vqc_experiments.Context
module Pool = Vqc_engine.Pool

open Cmdliner

let resolve ids =
  let requested = if ids = [] then [ "all" ] else ids in
  let expand id = if id = "all" then Registry.ids () else [ id ] in
  match
    List.find_opt
      (fun id -> id <> "all" && not (List.mem id (Registry.ids ())))
      requested
  with
  | Some unknown ->
    Error
      (Printf.sprintf "unknown experiment %S; available: %s" unknown
         (String.concat ", " ("all" :: Registry.ids ())))
  | None -> Ok (List.concat_map expand requested)

let progress_reporter total =
  if total < 2 then None
  else
    Some
      (fun (p : Pool.progress) ->
        Printf.eprintf "[%d/%d] experiments done (last %.1fs, total %.1fs)\n%!"
          p.Pool.completed p.Pool.total p.Pool.chunk_seconds
          p.Pool.elapsed_seconds)

let run_ids seed jobs ids =
  if jobs < 1 then begin
    prerr_endline "vqc-experiments: --jobs must be at least 1";
    exit 1
  end;
  match resolve ids with
  | Error message ->
    prerr_endline message;
    1
  | Ok ids ->
    (* Each task gets its own deterministic context (contexts derive
       everything from the seed) and its own buffer, so tasks share no
       mutable state; ctx.jobs lets the heavy sweeps inside fig14 /
       abl-seeds / abl-mc fan out too. *)
    let outputs =
      Pool.with_pool ~jobs (fun pool ->
          Pool.map ?report:(progress_reporter (List.length ids)) pool
            ~f:(fun _ id ->
              let ctx = Context.make ~seed |> Context.with_jobs jobs in
              let buffer = Buffer.create 4096 in
              let ppf = Format.formatter_of_buffer buffer in
              (Registry.find id).Registry.run ppf ctx;
              Format.pp_print_flush ppf ();
              Buffer.contents buffer)
            ids)
    in
    List.iter print_string outputs;
    0

let seed_term =
  let doc =
    "Seed for the synthetic calibration model (2 is the documented \
     representative chip)."
  in
  Arg.(value & opt int 2 & info [ "seed" ] ~docv:"SEED" ~doc)

let jobs_term =
  let doc =
    "Worker domains for the execution engine (default 1).  Experiment \
     ids — and the sweeps inside them — are fanned across the pool; \
     results and output are identical for every value."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"JOBS" ~doc)

let ids_term =
  let doc = "Experiment ids (fig5..fig16, tab1..tab3, abl-*, or 'all')." in
  Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc)

let cmd =
  let doc = "reproduce the figures and tables of the ASPLOS'19 paper" in
  Cmd.v
    (Cmd.info "vqc-experiments" ~doc)
    Term.(const run_ids $ seed_term $ jobs_term $ ids_term)

let () = exit (Cmd.eval' cmd)

(* Run paper-artifact reproductions by id: `vqc-experiments fig12 tab3`,
   or everything with `vqc-experiments all`.  `--jobs N` fans the
   requested ids across N domains via the execution engine; each
   experiment renders into its own buffer and the buffers are printed in
   request order, so stdout is byte-identical for every N. *)

module Registry = Vqc_experiments.Registry
module Context = Vqc_experiments.Context
module Pool = Vqc_engine.Pool
module Metrics = Vqc_obs.Metrics
module Trace = Vqc_obs.Trace

open Cmdliner

let resolve ids =
  let requested = if ids = [] then [ "all" ] else ids in
  let expand id = if id = "all" then Registry.ids () else [ id ] in
  match
    List.find_opt
      (fun id -> id <> "all" && not (List.mem id (Registry.ids ())))
      requested
  with
  | Some unknown ->
    Error
      (Printf.sprintf "unknown experiment %S; available: %s" unknown
         (String.concat ", " ("all" :: Registry.ids ())))
  | None -> Ok (List.concat_map expand requested)

let progress_reporter total =
  if total < 2 then None
  else
    Some
      (fun (p : Pool.progress) ->
        Printf.eprintf "[%d/%d] experiments done (last %.1fs, total %.1fs)\n%!"
          p.Pool.completed p.Pool.total p.Pool.chunk_seconds
          p.Pool.elapsed_seconds)

let list_experiments () =
  List.iter
    (fun e ->
      Printf.printf "%-12s %s\n" e.Registry.id e.Registry.title)
    Registry.all;
  0

(* --precision / --max-trials switch every Monte-Carlo experiment to the
   adaptive estimator; absent both, the fixed-trials paths (and their
   byte-exact golden output) run. *)
let estimator_config precision max_trials =
  match (precision, max_trials) with
  | None, None -> Ok None
  | _ ->
    let default = Vqc_sim.Estimator.default_config in
    let config =
      {
        default with
        Vqc_sim.Estimator.precision =
          Option.value precision
            ~default:default.Vqc_sim.Estimator.precision;
        max_trials =
          Option.value max_trials
            ~default:default.Vqc_sim.Estimator.max_trials;
      }
    in
    Result.map Option.some (Vqc_sim.Estimator.validate_config config)

let run_ids list seed jobs precision max_trials verify trace metrics ids =
  if list then list_experiments ()
  else
    match Pool.validate_jobs jobs with
  | Error message ->
    prerr_endline ("vqc-experiments: --" ^ message);
    1
  | Ok jobs -> (
    match estimator_config precision max_trials with
    | Error message ->
      prerr_endline ("vqc-experiments: " ^ message);
      1
    | Ok estimator -> (
    match resolve ids with
    | Error message ->
      prerr_endline message;
      1
    | Ok ids ->
      (* Each task gets its own deterministic context (contexts derive
         everything from the seed) and its own buffer, so tasks share no
         mutable state; ctx.jobs lets the heavy sweeps inside fig14 /
         abl-seeds / abl-mc fan out too.

         Observability never perturbs stdout: trace events and the
         metrics dump carry their non-deterministic fields out of band
         (the JSONL "nd" key, stderr), so the printed report stays
         byte-identical with tracing on or off and for any --jobs. *)
      (* with --verify, every plan any experiment compiles is replayed
         by the translation validator; a violation aborts the run with
         the diagnostics instead of printing a corrupted table *)
      if verify then Vqc_check.Verify.install_compiler_check ();
      let execute () =
        let outputs =
          Pool.with_pool ~jobs (fun pool ->
              Pool.map ?report:(progress_reporter (List.length ids)) pool
                ~f:(fun _ id ->
                  let ctx = Context.make ~seed |> Context.with_jobs jobs in
                  let ctx =
                    match estimator with
                    | Some config -> Context.with_estimator config ctx
                    | None -> ctx
                  in
                  let buffer = Buffer.create 4096 in
                  let ppf = Format.formatter_of_buffer buffer in
                  (Registry.find id).Registry.run ppf ctx;
                  Format.pp_print_flush ppf ();
                  Buffer.contents buffer)
                ids)
        in
        List.iter print_string outputs;
        (* registry snapshot lands at the tail of the trace file *)
        Metrics.snapshot_to_trace ()
      in
      match
        (match trace with
        | Some path -> Trace.with_file path execute
        | None -> execute ())
      with
      | () ->
        if metrics then Format.eprintf "%a@." Metrics.pp ();
        0
      | exception Vqc_check.Verify.Invalid_plan diagnostics ->
        prerr_endline "vqc-experiments: plan verification failed:";
        List.iter
          (fun d ->
            prerr_endline ("  " ^ Vqc_diag.Diagnostic.to_string d))
          diagnostics;
        1))

let list_term =
  let doc = "List the available experiment ids with their titles and exit." in
  Arg.(value & flag & info [ "l"; "list" ] ~doc)

let seed_term =
  let doc =
    "Seed for the synthetic calibration model (2 is the documented \
     representative chip)."
  in
  Arg.(value & opt int 2 & info [ "seed" ] ~docv:"SEED" ~doc)

let jobs_term =
  let doc =
    "Worker domains for the execution engine (default 1).  Experiment \
     ids — and the sweeps inside them — are fanned across the pool; \
     results and output are identical for every value."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"JOBS" ~doc)

let precision_term =
  let doc =
    "Switch the Monte-Carlo experiments to adaptive estimation targeting \
     this 95% confidence-interval half-width (e.g. 1e-3).  Tables gain \
     CI columns; output stays byte-identical across --jobs.  0 disables \
     early stopping (the full budget runs, still with CI columns)."
  in
  Arg.(
    value
    & opt (some float) None
    & info [ "precision" ] ~docv:"HALF_WIDTH" ~doc)

let max_trials_term =
  let doc =
    "Trial budget for adaptive estimation (default 1000000, the paper's \
     fixed-mode cost).  Implies adaptive mode, at the default 1e-3 \
     precision unless --precision is also given."
  in
  Arg.(
    value & opt (some int) None & info [ "max-trials" ] ~docv:"TRIALS" ~doc)

let verify_term =
  let doc =
    "Statically verify every plan the experiments compile (translation \
     validation via the plan checker); a violation aborts with the \
     diagnostics.  Verification never changes experiment output."
  in
  Arg.(value & flag & info [ "verify" ] ~doc)

let trace_term =
  let doc =
    "Append structured JSONL trace events (engine chunks, simulator \
     chunks, mapper routing/compilation, span timings, final metric \
     snapshot) to $(docv).  Tracing never changes experiment output: \
     non-deterministic fields live under the event's 'nd' key."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_term =
  let doc =
    "After the experiments finish, dump the metric registry (counters, \
     histograms) to stderr."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let ids_term =
  let doc = "Experiment ids (fig5..fig16, tab1..tab3, abl-*, or 'all')." in
  Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc)

let cmd =
  let doc = "reproduce the figures and tables of the ASPLOS'19 paper" in
  Cmd.v
    (Cmd.info "vqc-experiments" ~doc)
    Term.(
      const run_ids $ list_term $ seed_term $ jobs_term $ precision_term
      $ max_trials_term $ verify_term $ trace_term $ metrics_term $ ids_term)

let () = exit (Cmd.eval' cmd)

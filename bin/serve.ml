(* vqc-serve: compilation-as-a-service over newline-delimited JSON.

   Requests arrive one JSON object per line (workload name or inline
   QASM, policy label, optional pinned epoch); responses leave one JSON
   object per line, in input order.  Accepted requests batch onto the
   worker pool and flush every --batch requests, on control lines, and
   at EOF; a full admission queue yields structured "rejected"
   responses (code VQC130) instead of an exception.  Deterministic
   fields are byte-identical across --jobs, --shards and cache on/off —
   anything run-varying (latency, cache temperature) lives under "nd".

   Two front ends share the same session loop (Vqc_serve_net.Session):
   the default reads stdin and writes stdout; --tcp PORT serves many
   concurrent clients, each an isolated session (private cache, queue
   and epoch cursor) over a shared worker pool and a shared
   content-addressed compile store.  A single TCP client receives
   byte-identical responses to the stdin loop for the same stream. *)

module Service = Vqc_service.Service
module Epoch = Vqc_service.Epoch
module Session = Vqc_serve_net.Session
module Server = Vqc_serve_net.Server
module History = Vqc_device.History
module Topologies = Vqc_device.Topologies
module Calibration_io = Vqc_device.Calibration_io
module Pool = Vqc_engine.Pool
module Metrics = Vqc_obs.Metrics
module Trace = Vqc_obs.Trace

open Cmdliner

let positive flag value =
  if value < 1 then
    Error (Printf.sprintf "--%s must be a positive integer (got %d)" flag value)
  else Ok value

let build_epochs ~seed ~days ~csv_files =
  match csv_files with
  | [] ->
    let history =
      History.generate ~days ~seed ~coupling:Topologies.ibm_q20_tokyo 20
    in
    Ok (Epoch.of_history ~name:"Q20" ~coupling:Topologies.ibm_q20_tokyo history)
  | files ->
    let devices =
      List.map
        (fun path ->
          match In_channel.with_open_text path In_channel.input_all with
          | text -> begin
            match
              Calibration_io.device_of_ibm_csv ~name:(Filename.basename path)
                text
            with
            | Ok device -> Ok device
            | Error message ->
              Error (Printf.sprintf "%s: %s" path message)
          end
          | exception Sys_error message -> Error message)
        files
    in
    (match
       List.find_opt (function Error _ -> true | Ok _ -> false) devices
     with
    | Some (Error message) -> Error message
    | _ ->
      Ok
        (Epoch.of_devices
           (List.map (function Ok d -> d | Error _ -> assert false) devices)))

let run jobs batch queue_depth cache_capacity no_cache shards verify
    drift_threshold seed days csv_files tcp clients_max max_line
    store_capacity metrics trace =
  let ( let* ) r f = Result.bind r f in
  let checked =
    let* jobs =
      Result.map_error (fun m -> "--" ^ m) (Pool.validate_jobs jobs)
    in
    let* batch = positive "batch" batch in
    let* queue_depth = positive "queue-depth" queue_depth in
    let* cache_capacity = positive "cache-capacity" cache_capacity in
    let* shards = positive "shards" shards in
    let* max_line = positive "max-line" max_line in
    let* (_ : int) = positive "store-capacity" store_capacity in
    let* (_ : int) = positive "clients-max" clients_max in
    let* _days = positive "days" days in
    let* () =
      if shards > cache_capacity then
        Error
          (Printf.sprintf "--shards (%d) must not exceed --cache-capacity (%d)"
             shards cache_capacity)
      else Ok ()
    in
    Ok (jobs, batch, queue_depth, cache_capacity, shards, max_line)
  in
  match checked with
  | Error message ->
    prerr_endline ("vqc-serve: " ^ message);
    1
  | Ok (jobs, batch, queue_depth, cache_capacity, shards, max_line) -> (
    match build_epochs ~seed ~days ~csv_files with
    | Error message ->
      prerr_endline ("vqc-serve: " ^ message);
      1
    | Ok epochs ->
      let config =
        {
          Service.jobs;
          cache_capacity;
          cache_enabled = not no_cache;
          cache_shards = shards;
          queue_limit = queue_depth;
          verify;
          drift =
            Option.map
              (fun threshold -> { Vqc_drift.Retention.threshold })
              drift_threshold;
        }
      in
      let session = { Session.batch; max_line } in
      let execute () =
        (match tcp with
        | None ->
          Service.with_service ~config epochs (fun service ->
              ignore (Session.run ~config:session service stdin stdout))
        | Some port ->
          let server =
            Server.start
              ~config:
                {
                  Server.port;
                  clients_max;
                  session;
                  service = config;
                  store_capacity;
                }
              epochs
          in
          Printf.eprintf "vqc-serve: listening on 127.0.0.1:%d\n%!"
            (Server.port server);
          Server.wait server);
        Metrics.snapshot_to_trace ()
      in
      (match trace with
      | Some path -> Trace.with_file path execute
      | None -> execute ());
      if metrics then Format.eprintf "%a@." Metrics.pp ();
      0)

let jobs_term =
  let doc =
    "Worker domains compiling each batch in parallel.  Responses are \
     byte-identical for every value (latency lives under 'nd')."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"JOBS" ~doc)

let batch_term =
  let doc = "Flush the admission queue every $(docv) accepted requests." in
  Arg.(value & opt int 16 & info [ "batch" ] ~docv:"N" ~doc)

let queue_depth_term =
  let doc =
    "Admission-queue limit (per session under --tcp): requests beyond \
     $(docv) pending are rejected with a structured 'rejected' response \
     carrying code VQC130 (backpressure, not a crash)."
  in
  Arg.(value & opt int 64 & info [ "queue-depth" ] ~docv:"N" ~doc)

let cache_capacity_term =
  let doc = "Plan-cache capacity (LRU entries; per session under --tcp)." in
  Arg.(value & opt int 256 & info [ "cache-capacity" ] ~docv:"N" ~doc)

let no_cache_term =
  let doc =
    "Disable the plan cache: every request compiles (cache status \
     'bypass').  Deterministic response fields are unchanged."
  in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

let shards_term =
  let doc =
    "Lock-striped segments of each plan cache (and of the shared store \
     under --tcp).  Sharding cuts lock contention between concurrent \
     sessions; responses are byte-identical for every value."
  in
  Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N" ~doc)

let verify_term =
  let doc =
    "Statically verify every plan before serving it (translation \
     validation, including cache hits): an invalid plan becomes a \
     structured 'invalid' response carrying the verifier's diagnostics.  \
     Deterministic response fields of valid plans are unchanged."
  in
  Arg.(value & flag & info [ "verify" ] ~doc)

let drift_threshold_term =
  let doc =
    "Selective epoch invalidation: on an epoch move, retain cached \
     plans whose predicted relative PST change against the new \
     calibration stays within $(docv) (re-verified statically), and \
     recompile the rest in the background.  0 reproduces the default \
     wholesale flush byte-identically.  Epoch-advance acks report the \
     retained/reverified/recompiled/invalidated tally either way."
  in
  Arg.(
    value
    & opt (some float) None
    & info [ "drift-threshold" ] ~docv:"LOSS" ~doc)

let seed_term =
  let doc = "Seed for the synthetic calibration history." in
  Arg.(value & opt int 2 & info [ "seed" ] ~docv:"SEED" ~doc)

let days_term =
  let doc =
    "Calibration epochs to synthesize (one per simulated day) when no \
     CSV files are given."
  in
  Arg.(value & opt int 8 & info [ "days" ] ~docv:"N" ~doc)

let csv_term =
  let doc =
    "Load a calibration epoch from an IBM-style calibration CSV \
     (repeatable; epoch order follows the flag order).  Overrides the \
     synthetic history."
  in
  Arg.(
    value & opt_all string [] & info [ "calibration-csv" ] ~docv:"FILE" ~doc)

let tcp_term =
  let doc =
    "Serve many concurrent clients on 127.0.0.1:$(docv) instead of \
     stdin/stdout (0 picks an ephemeral port, printed to stderr).  Each \
     connection is an isolated session — private plan cache, admission \
     queue and epoch cursor — over a shared worker pool and a shared \
     content-addressed compile store, so one client's compile becomes \
     every client's warm hit without ever changing anyone's \
     deterministic response bytes."
  in
  Arg.(value & opt (some int) None & info [ "tcp" ] ~docv:"PORT" ~doc)

let clients_max_term =
  let doc =
    "Concurrent-client cap under --tcp: further connections receive one \
     'rejected' line (reason server_full, code VQC131) and are closed."
  in
  Arg.(value & opt int 64 & info [ "clients-max" ] ~docv:"N" ~doc)

let max_line_term =
  let doc =
    "Refuse input lines longer than $(docv) bytes: the session answers \
     what it already accepted, emits a final structured error, and \
     closes.  Other sessions are unaffected."
  in
  Arg.(value & opt int (1 lsl 20) & info [ "max-line" ] ~docv:"BYTES" ~doc)

let store_capacity_term =
  let doc = "Shared compile-store capacity under --tcp (entries)." in
  Arg.(value & opt int 1024 & info [ "store-capacity" ] ~docv:"N" ~doc)

let metrics_term =
  let doc =
    "At exit, dump the metric registry (cache hits/misses/evictions, \
     queue accepted/rejected, compile latencies) to stderr."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let trace_term =
  let doc =
    "Append structured JSONL trace events (per-response and per-batch \
     service events, engine chunks, mapper passes, final metric \
     snapshot) to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let cmd =
  let doc = "serve variability-aware compilation requests over NDJSON" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Reads one JSON request per stdin line and writes one JSON \
         response per stdout line, in input order.  A request names a \
         catalog workload or carries inline OpenQASM 2.0, picks a \
         policy, and may pin a calibration epoch; control lines \
         ({\"op\": \"advance_epoch\"|\"set_epoch\"|\"flush\"}) rotate \
         the calibration epoch (invalidating superseded cached plans) \
         or force a flush.";
      `P
        "With --tcp PORT the same protocol serves many concurrent \
         clients over loopback TCP, one isolated session per \
         connection; a single client's response stream is \
         byte-identical to the stdin front end.";
      `P
        "A request carrying any of \"precision\", \"max_trials\" or \
         \"mc_seed\" additionally receives an adaptive Monte-Carlo PST \
         estimate of its plan: trials stream in fixed chunks until the \
         tighter of the Wilson / empirical-Bernstein 95% intervals \
         reaches the precision target (default 1e-3) or the trial \
         budget (default 1000000) runs out.  The \"estimate\" response \
         object (trials, successes, pst, both intervals, half_width, \
         stop reason, budget, saved) is deterministic — seeded by \
         \"mc_seed\" (default 1) and identical for every --jobs — so \
         it renders top-level, not under \"nd\".  Estimator telemetry \
         lands under sim.estimator.* and service.estimates in \
         --metrics output.";
      `S Manpage.s_examples;
      `Pre
        "  echo '{\"id\":1,\"workload\":\"bv-16\"}' | vqc-serve\n\
        \  echo '{\"id\":2,\"workload\":\"bv-16\",\"precision\":1e-3}' \
         | vqc-serve\n\
        \  vqc-serve --jobs 4 --no-cache < requests.ndjson\n\
        \  vqc-serve --tcp 7421 --jobs 4 --shards 4 --clients-max 128";
    ]
  in
  Cmd.v
    (Cmd.info "vqc-serve" ~doc ~man)
    Term.(
      const run $ jobs_term $ batch_term $ queue_depth_term
      $ cache_capacity_term $ no_cache_term $ shards_term $ verify_term
      $ drift_threshold_term $ seed_term $ days_term $ csv_term $ tcp_term
      $ clients_max_term $ max_line_term $ store_capacity_term
      $ metrics_term $ trace_term)

let () = exit (Cmd.eval' cmd)

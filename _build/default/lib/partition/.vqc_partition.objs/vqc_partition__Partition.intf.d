lib/partition/partition.mli: Circuit Vqc_circuit Vqc_device Vqc_mapper

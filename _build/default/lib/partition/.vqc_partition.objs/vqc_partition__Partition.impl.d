lib/partition/partition.ml: Array Circuit Float Hashtbl List Vqc_circuit Vqc_device Vqc_graph Vqc_mapper Vqc_sim

(** Bernstein–Vazirani kernels (paper benchmarks bv-16, bv-20, bv-3/4,
    bv-10).

    The oracle encodes a hidden bit string; one ancilla qubit is entangled
    with every data qubit whose secret bit is 1, giving the hub-and-spokes
    entanglement pattern the paper calls out ("one qubit entangled with
    the rest").  Data qubits are measured at the end. *)

open Vqc_circuit

val circuit : ?secret:int -> int -> Circuit.t
(** [circuit n] is the [n]-qubit kernel: [n - 1] data qubits plus one
    ancilla (the last qubit).  [secret] is the hidden string over the data
    qubits (default: all ones, the worst case for communication).
    @raise Invalid_argument if [n < 2]. *)

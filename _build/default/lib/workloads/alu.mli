(** Quantum adder kernel ("alu" in Table 1): a Cuccaro ripple-carry adder
    with Toffolis expanded by {!Stdgates.toffoli}.

    An [n]-bit adder uses [2n + 2] qubits (operand A, operand B, carry-in,
    carry-out); the paper's 10-qubit "alu" is the 4-bit instance. *)

open Vqc_circuit

val adder : ?rounds:int -> int -> Circuit.t
(** [adder n]: [n]-bit ripple-carry adder over [2n + 2] qubits, with
    operand-B and carry-out measured.  [rounds] (default 1) repeats the
    addition (B += A per round), scaling the kernel's length.
    @raise Invalid_argument if [n < 1] or [rounds < 1]. *)

val circuit : Circuit.t
(** The paper's 10-qubit instance: [adder ~rounds:2 4] (two additions,
    ~290 instructions — Table 1 lists 299 for "alu"). *)

open Vqc_circuit

let circuit n =
  if n < 2 then invalid_arg "Ghz.circuit: need at least 2 qubits";
  let chain =
    List.init (n - 1) (fun i -> Gate.Cnot { control = i; target = i + 1 })
  in
  let readout = List.init n (fun q -> Gate.Measure { qubit = q; cbit = q }) in
  Circuit.of_gates n ((Gate.One_qubit (Gate.H, 0) :: chain) @ readout)

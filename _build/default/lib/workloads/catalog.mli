(** Benchmark catalog: the suites used in the paper's evaluation. *)

open Vqc_circuit

type entry = {
  name : string;
  description : string;
  circuit : Circuit.t;
}

val table1 : entry list
(** The seven Q20 micro-benchmarks of Table 1: alu, bv-16, bv-20, qft-12,
    qft-14, rnd-SD, rnd-LD. *)

val q5_suite : entry list
(** The Section 7 real-machine suite: bv-3, bv-4, TriSwap, GHZ-3. *)

val partition_suite : entry list
(** The Section 8 10-qubit workloads: alu-10, bv-10, qft-10. *)

val extended_suite : entry list
(** Kernels beyond the paper's benchmarks: Deutsch–Jozsa, Grover search,
    W-state preparation and a QAOA MaxCut ansatz — the application
    classes the paper's introduction motivates. *)

val all : entry list
(** Every catalog entry, names unique. *)

val find : string -> entry
(** @raise Not_found on an unknown name. *)

val names : unit -> string list

open Vqc_circuit

(* exp(-i gamma Z_a Z_b) up to global phase: cx a b; rz(2 gamma) b; cx a b *)
let zz_coupling gamma a b =
  [
    Gate.Cnot { control = a; target = b };
    Gate.One_qubit (Gate.Rz (2.0 *. gamma), b);
    Gate.Cnot { control = a; target = b };
  ]

let ring_maxcut ?(layers = 1) ?(gamma = 0.7) ?(beta = 0.4) n =
  if n < 3 then invalid_arg "Qaoa.ring_maxcut: need at least 3 qubits";
  if layers < 1 then invalid_arg "Qaoa.ring_maxcut: need at least 1 layer";
  let edges = (n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1)) in
  let one_layer =
    List.concat_map (fun (a, b) -> zz_coupling gamma a b) edges
    @ List.init n (fun q -> Gate.One_qubit (Gate.Rx (2.0 *. beta), q))
  in
  let body =
    List.init n (fun q -> Gate.One_qubit (Gate.H, q))
    @ List.concat (List.init layers (fun _ -> one_layer))
  in
  let readout = List.init n (fun q -> Gate.Measure { qubit = q; cbit = q }) in
  Circuit.of_gates n (body @ readout)

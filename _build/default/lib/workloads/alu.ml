open Vqc_circuit

(* Cuccaro et al. ripple-carry adder.  Qubit plan for an n-bit adder:
   carry-in = 0, a_i = 1 + 2i, b_i = 2 + 2i, carry-out = 2n + 1.
   MAJ(c, b, a)  = cx a b; cx a c; ccx c b a
   UMA(c, b, a)  = ccx c b a; cx a c; cx c b *)
let adder ?(rounds = 1) n =
  if n < 1 then invalid_arg "Alu.adder: need at least 1 bit";
  if rounds < 1 then invalid_arg "Alu.adder: need at least 1 round";
  let qubits = (2 * n) + 2 in
  let cin = 0 in
  let a i = 1 + (2 * i) in
  let b i = 2 + (2 * i) in
  let cout = (2 * n) + 1 in
  let cx control target = Gate.Cnot { control; target } in
  let maj c bq aq = [ cx aq bq; cx aq c ] @ Stdgates.toffoli c bq aq in
  let uma c bq aq = Stdgates.toffoli c bq aq @ [ cx aq c; cx c bq ] in
  let carry_into i = if i = 0 then cin else a (i - 1) in
  let majs = List.concat_map (fun i -> maj (carry_into i) (b i) (a i)) (List.init n Fun.id) in
  let carry = [ cx (a (n - 1)) cout ] in
  let umas =
    List.concat_map
      (fun k ->
        let i = n - 1 - k in
        uma (carry_into i) (b i) (a i))
      (List.init n Fun.id)
  in
  (* prepare a nontrivial input so the sum exercises the carries *)
  let prep =
    List.concat (List.init n (fun i -> [ Gate.One_qubit (Gate.X, a i); Gate.One_qubit (Gate.H, b i) ]))
  in
  let one_round = majs @ carry @ umas in
  let body = List.concat (List.init rounds (fun _ -> one_round)) in
  let readout =
    List.init n (fun i -> Gate.Measure { qubit = b i; cbit = i })
    @ [ Gate.Measure { qubit = cout; cbit = n } ]
  in
  Circuit.of_gates ~cbits:(n + 1) qubits (prep @ body @ readout)

let circuit = adder ~rounds:2 4

open Vqc_circuit

let circuit n =
  if n < 1 then invalid_arg "Qft.circuit: need at least 1 qubit";
  let body =
    List.concat_map
      (fun i ->
        Gate.One_qubit (Gate.H, i)
        :: List.concat
             (List.init (n - 1 - i) (fun k ->
                  let j = i + 1 + k in
                  let theta = Float.pi /. Float.of_int (1 lsl (j - i)) in
                  Stdgates.cphase theta j i)))
      (List.init n Fun.id)
  in
  let readout = List.init n (fun q -> Gate.Measure { qubit = q; cbit = q }) in
  Circuit.of_gates n (body @ readout)

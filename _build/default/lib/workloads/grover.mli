(** Grover search kernels on 2 or 3 data qubits (extended suite).

    2 qubits: a single iteration finds the marked state with
    probability 1.  3 qubits: two iterations reach ~94.5%.  Phase
    oracles and the diffusion operator are built from {!Stdgates.ccz}
    (3 qubits) or a CZ (2 qubits), so everything decomposes to the
    native gate set. *)

open Vqc_circuit

val circuit : marked:int -> int -> Circuit.t
(** [circuit ~marked n] for [n] in {2, 3}; [marked] is the basis state
    the oracle flips.
    @raise Invalid_argument if [n] is not 2 or 3, or [marked] is out of
    range. *)

(** QAOA MaxCut ansatz on a ring (extended suite): alternating cost
    layers (ZZ phase couplings along ring edges, 2 CNOTs each) and mixer
    layers (Rx on every qubit) — the canonical near-term variational
    kernel, with nearest-neighbour-friendly structure. *)

open Vqc_circuit

val ring_maxcut : ?layers:int -> ?gamma:float -> ?beta:float -> int -> Circuit.t
(** [ring_maxcut n]: the depth-[layers] (default 1) ansatz on the
    [n]-cycle with cost angle [gamma] (default 0.7) and mixer angle
    [beta] (default 0.4), all qubits measured.
    @raise Invalid_argument if [n < 3] or [layers < 1]. *)

(** Seeded random CNOT kernels (rnd-SD and rnd-LD in Table 1).

    The two benchmarks differ in their communication pattern: rnd-SD
    draws CNOTs between {e nearby} program qubits (index distance at most
    [span]), so a locality-preserving mapping can serve most of them
    directly; rnd-LD draws pairs at index distance at least [span], which
    forces long SWAP routes regardless of the initial placement. *)

open Vqc_circuit

val short_distance : ?seed:int -> ?qubits:int -> ?gates:int -> unit -> Circuit.t
(** rnd-SD: defaults 20 qubits, 100 gates (3/5 CNOT, 2/5 single-qubit),
    CNOT index span at most 2, all qubits measured. *)

val long_distance : ?seed:int -> ?qubits:int -> ?gates:int -> unit -> Circuit.t
(** rnd-LD: same shape with CNOT index span at least half the machine. *)

val random_cnots :
  seed:int -> qubits:int -> gates:int -> pair_ok:(int -> int -> bool) ->
  Circuit.t
(** General form: [gates] operations (two Hadamards per five gates, the
    rest CNOTs on uniformly drawn pairs satisfying [pair_ok]), then a
    full measurement round (not counted in [gates]).
    @raise Invalid_argument if no qubit pair satisfies [pair_ok]. *)

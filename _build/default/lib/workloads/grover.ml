open Vqc_circuit

let h q = Gate.One_qubit (Gate.H, q)
let x q = Gate.One_qubit (Gate.X, q)

(* cz via h + cx + h on the target *)
let cz a b = [ h b; Gate.Cnot { control = a; target = b }; h b ]

(* phase-flip the all-ones state of the register *)
let flip_all_ones = function
  | [ a; b ] -> cz a b
  | [ a; b; c ] -> Stdgates.ccz a b c
  | _ -> invalid_arg "Grover: unsupported register width"

(* phase-flip exactly [marked]: conjugate the all-ones flip with X on the
   zero bits *)
let oracle qubits marked =
  let mask_x =
    List.concat
      (List.mapi
         (fun i q -> if marked land (1 lsl i) = 0 then [ x q ] else [])
         qubits)
  in
  mask_x @ flip_all_ones qubits @ mask_x

(* inversion about the mean: H X (flip all-ones) X H *)
let diffusion qubits =
  let hs = List.map h qubits in
  let xs = List.map x qubits in
  hs @ xs @ flip_all_ones qubits @ xs @ hs

let circuit ~marked n =
  if n <> 2 && n <> 3 then invalid_arg "Grover.circuit: n must be 2 or 3";
  if marked < 0 || marked >= 1 lsl n then
    invalid_arg "Grover.circuit: marked state out of range";
  let qubits = List.init n Fun.id in
  let iterations = if n = 2 then 1 else 2 in
  let iteration = oracle qubits marked @ diffusion qubits in
  let body =
    List.map h qubits
    @ List.concat (List.init iterations (fun _ -> iteration))
  in
  let readout = List.init n (fun q -> Gate.Measure { qubit = q; cbit = q }) in
  Circuit.of_gates n (body @ readout)

lib/workloads/qft.ml: Circuit Float Fun Gate List Stdgates Vqc_circuit

lib/workloads/catalog.ml: Alu Bv Circuit Dj Ghz Grover List Qaoa Qft Rnd Triswap Vqc_circuit Wstate

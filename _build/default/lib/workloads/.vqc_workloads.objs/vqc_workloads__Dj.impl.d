lib/workloads/dj.ml: Circuit Gate List Vqc_circuit

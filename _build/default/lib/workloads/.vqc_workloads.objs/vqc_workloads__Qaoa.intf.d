lib/workloads/qaoa.mli: Circuit Vqc_circuit

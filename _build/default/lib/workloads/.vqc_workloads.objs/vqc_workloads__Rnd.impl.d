lib/workloads/rnd.ml: Array Circuit Fun Gate List Vqc_circuit Vqc_rng

lib/workloads/qft.mli: Circuit Vqc_circuit

lib/workloads/catalog.mli: Circuit Vqc_circuit

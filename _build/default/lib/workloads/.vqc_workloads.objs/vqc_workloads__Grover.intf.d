lib/workloads/grover.mli: Circuit Vqc_circuit

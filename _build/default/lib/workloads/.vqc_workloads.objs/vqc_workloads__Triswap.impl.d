lib/workloads/triswap.ml: Circuit Gate Vqc_circuit

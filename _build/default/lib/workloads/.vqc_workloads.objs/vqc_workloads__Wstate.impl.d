lib/workloads/wstate.ml: Circuit Gate List Stdgates Vqc_circuit

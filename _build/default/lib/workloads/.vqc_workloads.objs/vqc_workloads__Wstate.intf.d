lib/workloads/wstate.mli: Circuit Vqc_circuit

lib/workloads/bv.ml: Circuit Gate List Option Vqc_circuit

lib/workloads/ghz.mli: Circuit Vqc_circuit

lib/workloads/triswap.mli: Circuit Vqc_circuit

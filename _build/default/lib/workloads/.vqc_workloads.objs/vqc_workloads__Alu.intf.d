lib/workloads/alu.mli: Circuit Vqc_circuit

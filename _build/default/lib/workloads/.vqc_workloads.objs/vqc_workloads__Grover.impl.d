lib/workloads/grover.ml: Circuit Fun Gate List Stdgates Vqc_circuit

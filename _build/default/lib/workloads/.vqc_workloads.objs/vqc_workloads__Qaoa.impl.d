lib/workloads/qaoa.ml: Circuit Gate List Vqc_circuit

lib/workloads/stdgates.mli: Gate Vqc_circuit

lib/workloads/ghz.ml: Circuit Gate List Vqc_circuit

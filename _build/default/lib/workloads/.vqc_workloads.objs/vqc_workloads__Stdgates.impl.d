lib/workloads/stdgates.ml: Gate Printf Vqc_circuit

lib/workloads/alu.ml: Circuit Fun Gate List Stdgates Vqc_circuit

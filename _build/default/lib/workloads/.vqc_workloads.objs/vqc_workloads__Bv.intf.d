lib/workloads/bv.mli: Circuit Vqc_circuit

lib/workloads/dj.mli: Circuit Vqc_circuit

lib/workloads/rnd.mli: Circuit Vqc_circuit

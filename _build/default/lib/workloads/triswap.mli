(** TriSwap kernel (IBM-Q5 suite, Table 3): cyclically rotate the states
    of three qubits with SWAPs — 9 CNOTs once decomposed, the most
    SWAP-intensive of the Q5 benchmarks, which is why the paper sees its
    largest real-machine win (1.9x) here. *)

open Vqc_circuit

val circuit : Circuit.t
(** Three qubits: prepare [|100>], rotate with two SWAPs plus a checking
    SWAP, measure all three. *)

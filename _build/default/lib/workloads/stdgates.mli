(** Composite gates expanded into the library's native gate set. *)

open Vqc_circuit

val toffoli : int -> int -> int -> Gate.t list
(** [toffoli a b c]: doubly-controlled NOT on target [c], expanded into
    the standard 6-CNOT Clifford+T network.
    @raise Invalid_argument if operands are not distinct. *)

val cphase : float -> int -> int -> Gate.t list
(** [cphase theta a b]: controlled-phase, expanded as
    [u1(t/2) a; cx a b; u1(-t/2) b; cx a b; u1(t/2) b] (2 CNOTs).
    @raise Invalid_argument if operands are not distinct. *)

val cry : float -> int -> int -> Gate.t list
(** [cry theta c t]: controlled-Ry, expanded as
    [ry(t/2) t; cx c t; ry(-t/2) t; cx c t] (2 CNOTs).
    @raise Invalid_argument if operands are not distinct. *)

val ccz : int -> int -> int -> Gate.t list
(** [ccz a b c]: doubly-controlled Z — [h c; toffoli a b c; h c].
    @raise Invalid_argument if operands are not distinct. *)

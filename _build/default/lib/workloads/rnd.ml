open Vqc_circuit
module Rng = Vqc_rng.Rng

let random_cnots ~seed ~qubits ~gates ~pair_ok =
  let candidates =
    List.init qubits (fun a ->
        List.filter_map
          (fun b -> if b <> a && pair_ok a b then Some (a, b) else None)
          (List.init qubits Fun.id))
    |> List.concat
    |> Array.of_list
  in
  if Array.length candidates = 0 then
    invalid_arg "Rnd.random_cnots: no admissible qubit pair";
  let rng = Rng.make seed in
  let body =
    List.init gates (fun i ->
        if i mod 5 >= 3 then Gate.One_qubit (Gate.H, Rng.int rng qubits)
        else begin
          let control, target = Rng.choose rng candidates in
          Gate.Cnot { control; target }
        end)
  in
  let readout = List.init qubits (fun q -> Gate.Measure { qubit = q; cbit = q }) in
  Circuit.of_gates qubits (body @ readout)

let short_distance ?(seed = 17) ?(qubits = 20) ?(gates = 100) () =
  random_cnots ~seed ~qubits ~gates ~pair_ok:(fun a b -> abs (a - b) <= 2)

let long_distance ?(seed = 23) ?(qubits = 20) ?(gates = 100) () =
  let span = max 2 (qubits / 2) in
  random_cnots ~seed ~qubits ~gates ~pair_ok:(fun a b -> abs (a - b) >= span)

open Vqc_circuit

type oracle = Constant | Balanced of int

let circuit oracle n =
  if n < 2 then invalid_arg "Dj.circuit: need at least 2 qubits";
  let data = n - 1 in
  let ancilla = data in
  (match oracle with
  | Constant -> ()
  | Balanced mask ->
    if mask <= 0 || mask >= 1 lsl data then
      invalid_arg "Dj.circuit: balanced mask out of range");
  let prep =
    List.init data (fun q -> Gate.One_qubit (Gate.H, q))
    @ [ Gate.One_qubit (Gate.X, ancilla); Gate.One_qubit (Gate.H, ancilla) ]
  in
  let oracle_gates =
    match oracle with
    | Constant -> []
    | Balanced mask ->
      List.concat
        (List.init data (fun q ->
             if mask land (1 lsl q) <> 0 then
               [ Gate.Cnot { control = q; target = ancilla } ]
             else []))
  in
  let unprep = List.init data (fun q -> Gate.One_qubit (Gate.H, q)) in
  let readout = List.init data (fun q -> Gate.Measure { qubit = q; cbit = q }) in
  Circuit.of_gates ~cbits:data n (prep @ oracle_gates @ unprep @ readout)

(** W-state preparation (extended suite): the equal superposition of all
    one-hot basis states, built from a controlled-Ry cascade — a chain
    entanglement pattern distinct from GHZ's and BV's. *)

open Vqc_circuit

val circuit : int -> Circuit.t
(** [circuit n] prepares |W_n> and measures every qubit.
    @raise Invalid_argument if [n < 2]. *)

(** Deutsch–Jozsa kernels: decide whether an oracle is constant or
    balanced with one query.  The data register reads all-zeros for a
    constant oracle and something non-zero for a balanced one.

    Structurally a sibling of Bernstein–Vazirani (hub entanglement into
    one ancilla) — an extended-suite benchmark beyond the paper's seven. *)

open Vqc_circuit

type oracle =
  | Constant  (** f(x) = 0: the oracle applies nothing *)
  | Balanced of int
      (** parity of the masked bits; the mask must be non-zero *)

val circuit : oracle -> int -> Circuit.t
(** [circuit oracle n]: [n - 1] data qubits plus one ancilla.
    @raise Invalid_argument if [n < 2] or a balanced mask is zero /
    out of range. *)

open Vqc_circuit

(* Standard cascade: start from |10...0>; at step i move amplitude from
   qubit i-1 onto qubit i with a controlled-Ry whose angle keeps exactly
   1/(n-i+1) of the remaining weight behind, then a CNOT re-localizes the
   excitation. *)
let circuit n =
  if n < 2 then invalid_arg "Wstate.circuit: need at least 2 qubits";
  let steps =
    List.concat
      (List.init (n - 1) (fun k ->
           let i = k + 1 in
           let remaining = float_of_int (n - i + 1) in
           let theta = 2.0 *. acos (sqrt (1.0 /. remaining)) in
           Stdgates.cry theta (i - 1) i
           @ [ Gate.Cnot { control = i; target = i - 1 } ]))
  in
  let readout = List.init n (fun q -> Gate.Measure { qubit = q; cbit = q }) in
  Circuit.of_gates n ((Gate.One_qubit (Gate.X, 0) :: steps) @ readout)

(** GHZ-state preparation (GHZ-3 on the IBM-Q5 suite): a Hadamard and a
    CNOT chain entangling all qubits, then full measurement. *)

open Vqc_circuit

val circuit : int -> Circuit.t
(** @raise Invalid_argument if [n < 2]. *)

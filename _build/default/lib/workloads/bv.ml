open Vqc_circuit

let circuit ?secret n =
  if n < 2 then invalid_arg "Bv.circuit: need at least 2 qubits";
  let data = n - 1 in
  let secret = Option.value secret ~default:((1 lsl data) - 1) in
  let ancilla = data in
  let prep =
    List.init data (fun q -> Gate.One_qubit (Gate.H, q))
    @ [ Gate.One_qubit (Gate.X, ancilla); Gate.One_qubit (Gate.H, ancilla) ]
  in
  let oracle =
    List.init data (fun q ->
        if secret land (1 lsl q) <> 0 then
          [ Gate.Cnot { control = q; target = ancilla } ]
        else [])
    |> List.concat
  in
  let unprep = List.init data (fun q -> Gate.One_qubit (Gate.H, q)) in
  let readout = List.init data (fun q -> Gate.Measure { qubit = q; cbit = q }) in
  Circuit.of_gates ~cbits:data n (prep @ oracle @ unprep @ readout)

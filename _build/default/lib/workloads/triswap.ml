open Vqc_circuit

let circuit =
  let gates =
    [
      Gate.One_qubit (Gate.X, 0);
      Gate.Swap (0, 1);
      Gate.Swap (1, 2);
      Gate.Swap (0, 2);
      Gate.Measure { qubit = 0; cbit = 0 };
      Gate.Measure { qubit = 1; cbit = 1 };
      Gate.Measure { qubit = 2; cbit = 2 };
    ]
  in
  Circuit.of_gates 3 gates

open Vqc_circuit

type entry = {
  name : string;
  description : string;
  circuit : Circuit.t;
}

let table1 =
  [
    { name = "alu"; description = "quantum adder (4-bit Cuccaro)"; circuit = Alu.circuit };
    { name = "bv-16"; description = "Bernstein-Vazirani, 16 qubits"; circuit = Bv.circuit 16 };
    { name = "bv-20"; description = "Bernstein-Vazirani, 20 qubits"; circuit = Bv.circuit 20 };
    { name = "qft-12"; description = "Quantum Fourier Transform, 12 qubits"; circuit = Qft.circuit 12 };
    { name = "qft-14"; description = "Quantum Fourier Transform, 14 qubits"; circuit = Qft.circuit 14 };
    {
      name = "rnd-SD";
      description = "random CNOTs, short-distance communication";
      circuit = Rnd.short_distance ();
    };
    {
      name = "rnd-LD";
      description = "random CNOTs, long-distance communication";
      circuit = Rnd.long_distance ();
    };
  ]

let q5_suite =
  [
    { name = "bv-3"; description = "Bernstein-Vazirani, 3 qubits"; circuit = Bv.circuit 3 };
    { name = "bv-4"; description = "Bernstein-Vazirani, 4 qubits"; circuit = Bv.circuit 4 };
    { name = "TriSwap"; description = "three-qubit state rotation"; circuit = Triswap.circuit };
    { name = "GHZ-3"; description = "3-qubit GHZ preparation"; circuit = Ghz.circuit 3 };
  ]

let partition_suite =
  [
    { name = "alu-10"; description = "quantum adder, 10 qubits"; circuit = Alu.adder 4 };
    { name = "bv-10"; description = "Bernstein-Vazirani, 10 qubits"; circuit = Bv.circuit 10 };
    { name = "qft-10"; description = "Quantum Fourier Transform, 10 qubits"; circuit = Qft.circuit 10 };
  ]

let extended_suite =
  [
    {
      name = "dj-8";
      description = "Deutsch-Jozsa, 8 qubits, balanced oracle";
      circuit = Dj.circuit (Dj.Balanced 0b1010110) 8;
    };
    {
      name = "grover-2";
      description = "Grover search, 2 qubits, 1 iteration";
      circuit = Grover.circuit ~marked:0b11 2;
    };
    {
      name = "grover-3";
      description = "Grover search, 3 qubits, 2 iterations";
      circuit = Grover.circuit ~marked:0b101 3;
    };
    {
      name = "w-6";
      description = "W-state preparation, 6 qubits";
      circuit = Wstate.circuit 6;
    };
    {
      name = "qaoa-12";
      description = "QAOA MaxCut ansatz, 12-qubit ring, 2 layers";
      circuit = Qaoa.ring_maxcut ~layers:2 12;
    };
  ]

let all = table1 @ q5_suite @ partition_suite @ extended_suite

let find name =
  match List.find_opt (fun e -> e.name = name) all with
  | Some entry -> entry
  | None -> raise Not_found

let names () = List.map (fun e -> e.name) all

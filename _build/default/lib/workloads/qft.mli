(** Quantum Fourier Transform kernels (qft-12, qft-14, qft-10).

    Every qubit is phase-coupled with every other (the all-to-all
    entanglement pattern of Table 1), each controlled phase expanding to
    two CNOTs ({!Stdgates.cphase}).  All qubits are measured. *)

open Vqc_circuit

val circuit : int -> Circuit.t
(** @raise Invalid_argument if [n < 1]. *)

open Vqc_circuit

let distinct3 a b c name =
  if a = b || b = c || a = c then
    invalid_arg (Printf.sprintf "Stdgates.%s: operands must be distinct" name)

let cx control target = Gate.Cnot { control; target }

let toffoli a b c =
  distinct3 a b c "toffoli";
  [
    Gate.One_qubit (Gate.H, c);
    cx b c;
    Gate.One_qubit (Gate.Tdg, c);
    cx a c;
    Gate.One_qubit (Gate.T, c);
    cx b c;
    Gate.One_qubit (Gate.Tdg, c);
    cx a c;
    Gate.One_qubit (Gate.T, b);
    Gate.One_qubit (Gate.T, c);
    Gate.One_qubit (Gate.H, c);
    cx a b;
    Gate.One_qubit (Gate.T, a);
    Gate.One_qubit (Gate.Tdg, b);
    cx a b;
  ]

let cphase theta a b =
  if a = b then invalid_arg "Stdgates.cphase: operands must be distinct";
  [
    Gate.One_qubit (Gate.U1 (theta /. 2.0), a);
    cx a b;
    Gate.One_qubit (Gate.U1 (-.theta /. 2.0), b);
    cx a b;
    Gate.One_qubit (Gate.U1 (theta /. 2.0), b);
  ]

let cry theta c t =
  if c = t then invalid_arg "Stdgates.cry: operands must be distinct";
  [
    Gate.One_qubit (Gate.Ry (theta /. 2.0), t);
    cx c t;
    Gate.One_qubit (Gate.Ry (-.theta /. 2.0), t);
    cx c t;
  ]

let ccz a b c =
  distinct3 a b c "ccz";
  (Gate.One_qubit (Gate.H, c) :: toffoli a b c) @ [ Gate.One_qubit (Gate.H, c) ]

type qubit = {
  t1_us : float;
  t2_us : float;
  error_1q : float;
  error_readout : float;
}

let default_qubit =
  { t1_us = 100.0; t2_us = 70.0; error_1q = 0.0; error_readout = 0.0 }

type t = {
  num_qubits : int;
  qubits : qubit array;
  link_errors : (int * int, float) Hashtbl.t;
}

let create n =
  if n < 0 then invalid_arg "Calibration.create: negative qubit count";
  {
    num_qubits = n;
    qubits = Array.make n default_qubit;
    link_errors = Hashtbl.create 32;
  }

let num_qubits c = c.num_qubits

let check_qubit c q name =
  if q < 0 || q >= c.num_qubits then
    invalid_arg
      (Printf.sprintf "Calibration.%s: qubit %d out of range [0, %d)" name q
         c.num_qubits)

let qubit c q =
  check_qubit c q "qubit";
  c.qubits.(q)

let set_qubit c q data =
  check_qubit c q "set_qubit";
  c.qubits.(q) <- data

let key u v = (min u v, max u v)

let link_error c u v =
  check_qubit c u "link_error";
  check_qubit c v "link_error";
  Hashtbl.find_opt c.link_errors (key u v)

let link_error_exn c u v =
  match link_error c u v with Some e -> e | None -> raise Not_found

let set_link_error c u v e =
  check_qubit c u "set_link_error";
  check_qubit c v "set_link_error";
  if u = v then invalid_arg "Calibration.set_link_error: self-link";
  if e < 0.0 || e > 1.0 then
    invalid_arg "Calibration.set_link_error: probability out of [0, 1]";
  Hashtbl.replace c.link_errors (key u v) e

let links c =
  Hashtbl.fold (fun (u, v) e acc -> (u, v, e) :: acc) c.link_errors []
  |> List.sort compare

let copy c =
  {
    num_qubits = c.num_qubits;
    qubits = Array.copy c.qubits;
    link_errors = Hashtbl.copy c.link_errors;
  }

type summary = {
  mean : float;
  std : float;
  minimum : float;
  maximum : float;
}

let summarize values =
  match values with
  | [] -> invalid_arg "Calibration.summarize: empty sample"
  | first :: _ ->
    let count = float_of_int (List.length values) in
    let total = List.fold_left ( +. ) 0.0 values in
    let mean = total /. count in
    let sq_dev = List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 values in
    {
      mean;
      std = sqrt (sq_dev /. count);
      minimum = List.fold_left Float.min first values;
      maximum = List.fold_left Float.max first values;
    }

let link_error_summary c = summarize (List.map (fun (_, _, e) -> e) (links c))

let qubit_field_summary c field =
  summarize (Array.to_list (Array.map field c.qubits))

let t1_summary c = qubit_field_summary c (fun q -> q.t1_us)
let t2_summary c = qubit_field_summary c (fun q -> q.t2_us)
let error_1q_summary c = qubit_field_summary c (fun q -> q.error_1q)

let scale_link_errors c ~mean_factor ~cov_factor =
  let stats = link_error_summary c in
  let new_mean = stats.mean *. mean_factor in
  let new_std = stats.std *. mean_factor *. cov_factor in
  let rescale e =
    let z = if stats.std > 0.0 then (e -. stats.mean) /. stats.std else 0.0 in
    let e' = new_mean +. (z *. new_std) in
    Float.min 0.75 (Float.max 1e-6 e')
  in
  let scaled = copy c in
  List.iter (fun (u, v, e) -> set_link_error scaled u v (rescale e)) (links c);
  scaled

(* --- serialization -------------------------------------------------- *)

let to_string c =
  let buffer = Buffer.create 512 in
  Buffer.add_string buffer (Printf.sprintf "qubits %d\n" c.num_qubits);
  Array.iteri
    (fun i q ->
      Buffer.add_string buffer
        (Printf.sprintf "q %d %.9g %.9g %.9g %.9g\n" i q.t1_us q.t2_us
           q.error_1q q.error_readout))
    c.qubits;
  List.iter
    (fun (u, v, e) ->
      Buffer.add_string buffer (Printf.sprintf "link %d %d %.9g\n" u v e))
    (links c);
  Buffer.contents buffer

let of_string text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  match lines with
  | [] -> Error "empty calibration"
  | header :: rest -> begin
    match String.split_on_char ' ' header with
    | [ "qubits"; n_text ] -> begin
      match int_of_string_opt n_text with
      | None -> Error (Printf.sprintf "bad qubit count %S" n_text)
      | Some n ->
        if n < 0 then Error "negative qubit count"
        else begin
          let c = create n in
          let parse_line line =
            match String.split_on_char ' ' line with
            | [ "q"; i; t1; t2; e1; er ] -> begin
              match
                ( int_of_string_opt i,
                  float_of_string_opt t1,
                  float_of_string_opt t2,
                  float_of_string_opt e1,
                  float_of_string_opt er )
              with
              | Some i, Some t1_us, Some t2_us, Some error_1q, Some error_readout ->
                set_qubit c i { t1_us; t2_us; error_1q; error_readout };
                Ok ()
              | _ -> Error (Printf.sprintf "bad qubit record %S" line)
            end
            | [ "link"; u; v; e ] -> begin
              match
                (int_of_string_opt u, int_of_string_opt v, float_of_string_opt e)
              with
              | Some u, Some v, Some e ->
                set_link_error c u v e;
                Ok ()
              | _ -> Error (Printf.sprintf "bad link record %S" line)
            end
            | _ -> Error (Printf.sprintf "unrecognized record %S" line)
          in
          let rec parse_all = function
            | [] -> Ok c
            | line :: rest -> begin
              match parse_line line with
              | Ok () -> parse_all rest
              | Error _ as e -> e
            end
          in
          try parse_all rest with Invalid_argument m -> Error m
        end
    end
    | _ -> Error "missing 'qubits N' header"
  end

let of_string_exn text =
  match of_string text with Ok c -> c | Error m -> failwith m

let pp ppf c =
  Format.fprintf ppf "@[<v>calibration (%d qubits, %d links)" c.num_qubits
    (Hashtbl.length c.link_errors);
  Array.iteri
    (fun i q ->
      Format.fprintf ppf "@,  q%-2d T1=%.1fus T2=%.1fus e1q=%.4f ero=%.4f" i
        q.t1_us q.t2_us q.error_1q q.error_readout)
    c.qubits;
  List.iter
    (fun (u, v, e) -> Format.fprintf ppf "@,  %d--%d e2q=%.4f" u v e)
    (links c);
  Format.fprintf ppf "@]"

(** Architecture-level model of a NISQ machine: a coupling map plus the
    current calibration and the gate-time model used for coherence-error
    accounting.

    The derived graphs are what the policies consume:
    - {!error_graph}: edge weight = two-qubit error probability (paper
      Figure 9's labels);
    - {!success_graph}: edge weight = [1 - error];
    - {!swap_cost_graph}: edge weight = [-3 log(1 - error)], the negated
      log-reliability of one SWAP (3 CNOTs) across the link, so shortest
      weighted paths are most-reliable SWAP routes (VQM, Section 5.3);
    - {!hop_graph}: unit weights, the variation-unaware baseline metric. *)

type gate_times = {
  t_1q_ns : float;
  t_2q_ns : float;
  t_measure_ns : float;
}

val default_gate_times : gate_times
(** 1q 80 ns, CNOT 300 ns, measurement 1000 ns — representative of IBM
    superconducting devices of the paper's era. *)

type t

val make :
  ?gate_times:gate_times ->
  name:string ->
  coupling:(int * int) list ->
  Calibration.t ->
  t
(** Build a device.  Every coupler must have a link-error entry in the
    calibration; every qubit of the calibration becomes a node.
    @raise Invalid_argument on a coupler without calibration, an
    out-of-range coupler, or a disconnected coupling map. *)

val with_calibration : t -> Calibration.t -> t
(** Same topology and gate times, new calibration (e.g. another day). *)

val name : t -> string
val num_qubits : t -> int
val calibration : t -> Calibration.t
val gate_times : t -> gate_times
val coupling : t -> (int * int) list
(** Undirected couplers, [(u, v)] with [u < v], sorted. *)

val connected : t -> int -> int -> bool
(** Whether a CNOT can be applied directly between two qubits. *)

val neighbors : t -> int -> int list
(** Qubits coupled to a qubit, in increasing order. *)

val link_error : t -> int -> int -> float
(** @raise Invalid_argument if the qubits are not coupled. *)

val cnot_success : t -> int -> int -> float
val swap_success : t -> int -> int -> float
(** [swap_success d u v = (cnot_success d u v) ** 3.]. *)

val error_graph : t -> Vqc_graph.Graph.t
val success_graph : t -> Vqc_graph.Graph.t
val swap_cost_graph : t -> Vqc_graph.Graph.t
val hop_graph : t -> Vqc_graph.Graph.t

val hop_distance : t -> int array array
(** All-pairs hop distances over the coupling map (cached). *)

val reliability_distance : t -> float array array
(** All-pairs minimal [-3 log p] SWAP-route costs (cached). *)

val restrict : t -> int list -> t * int array
(** [restrict d region] is the sub-device induced by the (distinct)
    listed qubits, renumbered [0 .. k-1] in increasing original order,
    together with the new→original index map.  Calibration figures carry
    over; the name gains a ["/sub"] suffix.  Used by the partitioning
    case study (paper Section 8) to run a copy inside one region.
    @raise Invalid_argument if the region is empty, out of range, or not
    connected in the coupling map. *)

val strongest_link : t -> int * int * float
val weakest_link : t -> int * int * float
(** Extremes by two-qubit error rate (strongest = lowest error). *)

val to_string : t -> string
(** Plain-text serialization: name, gate times, then the calibration
    (couplers are exactly the calibrated links). *)

val of_string : string -> (t, string) result
val of_string_exn : string -> t

val pp : Format.formatter -> t -> unit

(* IBM Q20 Tokyo: 4 rows of 5 qubits (0-4 / 5-9 / 10-14 / 15-19) with
   horizontal, vertical and the published diagonal couplers. *)
let ibm_q20_tokyo =
  let horizontals =
    List.concat_map
      (fun row ->
        List.init 4 (fun i ->
            let q = (5 * row) + i in
            (q, q + 1)))
      [ 0; 1; 2; 3 ]
  in
  let verticals = List.init 15 (fun q -> (q, q + 5)) in
  let diagonals =
    [
      (1, 7); (2, 6); (3, 9); (4, 8);
      (5, 11); (6, 10); (7, 13); (8, 12);
      (11, 17); (12, 16); (13, 19); (14, 18);
    ]
  in
  List.sort compare (horizontals @ verticals @ diagonals)

let ibm_q5_tenerife = [ (0, 1); (0, 2); (1, 2); (2, 3); (2, 4); (3, 4) ]

let linear n =
  if n < 1 then invalid_arg "Topologies.linear: need at least 1 qubit";
  List.init (max 0 (n - 1)) (fun i -> (i, i + 1))

let ring n =
  if n < 3 then invalid_arg "Topologies.ring: need at least 3 qubits";
  (0, n - 1) :: List.init (n - 1) (fun i -> (i, i + 1)) |> List.sort compare

let grid ~rows ~cols =
  if rows < 1 || cols < 1 then invalid_arg "Topologies.grid: empty grid";
  let horizontal =
    List.concat_map
      (fun r -> List.init (cols - 1) (fun c -> ((r * cols) + c, (r * cols) + c + 1)))
      (List.init rows Fun.id)
  in
  let vertical =
    List.concat_map
      (fun r -> List.init cols (fun c -> ((r * cols) + c, ((r + 1) * cols) + c)))
      (List.init (rows - 1) Fun.id)
  in
  List.sort compare (horizontal @ vertical)

let fully_connected n =
  List.concat_map
    (fun u -> List.init (n - 1 - u) (fun k -> (u, u + 1 + k)))
    (List.init n Fun.id)

let pentagon = ring 5

let mesh_2x3 = grid ~rows:2 ~cols:3

(* Two rails of 7 (0-6 upper, 7-13 lower, lower reversed on the device)
   with a rung at every column. *)
let ibm_q16_melbourne =
  let upper = List.init 6 (fun i -> (i, i + 1)) in
  let lower = List.init 6 (fun i -> (i + 7, i + 8)) in
  let rungs = List.init 7 (fun i -> (i, 13 - i)) in
  List.sort compare (upper @ lower @ List.map (fun (u, v) -> (min u v, max u v)) rungs)

(* The 27-qubit Falcon heavy-hex map (degree <= 3). *)
let heavy_hex_27 =
  [
    (0, 1); (1, 2); (1, 4); (2, 3); (3, 5); (4, 7); (5, 8); (6, 7);
    (7, 10); (8, 9); (8, 11); (10, 12); (11, 14); (12, 13); (12, 15);
    (13, 14); (14, 16); (15, 18); (16, 19); (17, 18); (18, 21); (19, 20);
    (19, 22); (21, 23); (22, 25); (23, 24); (24, 25); (25, 26);
  ]

let bristlecone_like ~rows ~cols =
  if rows < 2 || cols < 2 then
    invalid_arg "Topologies.bristlecone_like: need at least a 2x2 grid";
  let base = grid ~rows ~cols in
  let diagonals =
    List.concat_map
      (fun r ->
        List.concat_map
          (fun c ->
            let q = (r * cols) + c in
            [ (q, q + cols + 1); (q + 1, q + cols) ])
          (List.init (cols - 1) Fun.id))
      (List.init (rows - 1) Fun.id)
  in
  List.sort compare (base @ List.map (fun (u, v) -> (min u v, max u v)) diagonals)

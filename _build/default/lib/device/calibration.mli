(** Device calibration data: the per-qubit and per-link error figures that
    IBM publishes after each calibration cycle (paper Section 3).

    Link keys are unordered qubit pairs — the model treats a coupler's CNOT
    error as direction-independent, matching the per-link numbers the paper
    reports in Figure 9. *)

type qubit = {
  t1_us : float;  (** relaxation time, microseconds *)
  t2_us : float;  (** dephasing time, microseconds *)
  error_1q : float;  (** single-qubit gate error probability *)
  error_readout : float;  (** measurement error probability *)
}

type t

val create : int -> t
(** Calibration for [n] qubits with default (idealized) figures and no
    link entries.  @raise Invalid_argument if [n < 0]. *)

val num_qubits : t -> int

val qubit : t -> int -> qubit
(** @raise Invalid_argument on an out-of-range qubit. *)

val set_qubit : t -> int -> qubit -> unit

val link_error : t -> int -> int -> float option
(** Two-qubit (CNOT) error probability of a coupler, if calibrated. *)

val link_error_exn : t -> int -> int -> float
(** @raise Not_found when the pair has no calibration entry. *)

val set_link_error : t -> int -> int -> float -> unit
(** @raise Invalid_argument if the probability is outside [\[0, 1\]] or the
    qubits coincide. *)

val links : t -> (int * int * float) list
(** All calibrated links as [(u, v, error)] with [u < v], sorted. *)

val copy : t -> t

(** Summary statistics of a sample (used to check the synthetic model
    against the paper's published numbers). *)
type summary = {
  mean : float;
  std : float;
  minimum : float;
  maximum : float;
}

val summarize : float list -> summary
(** @raise Invalid_argument on an empty list. *)

val link_error_summary : t -> summary
val t1_summary : t -> summary
val t2_summary : t -> summary
val error_1q_summary : t -> summary

val scale_link_errors : t -> mean_factor:float -> cov_factor:float -> t
(** Affine rescale of the two-qubit error distribution (paper Table 2):
    the mean is multiplied by [mean_factor] and the coefficient of
    variation (std/mean) by [cov_factor]; each link keeps its z-score.
    Results are clamped to [\[1e-6, 0.75\]]. *)

val to_string : t -> string
(** Plain-text serialization (one record per line). *)

val of_string : string -> (t, string) result
val of_string_exn : string -> t

val pp : Format.formatter -> t -> unit

lib/device/calibration.mli: Format

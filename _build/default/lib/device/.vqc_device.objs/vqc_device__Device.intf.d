lib/device/device.mli: Calibration Format Vqc_graph

lib/device/calibration_io.ml: Buffer Calibration Device Hashtbl List Option Printf String

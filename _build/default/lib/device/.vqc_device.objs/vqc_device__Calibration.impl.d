lib/device/calibration.ml: Array Buffer Float Format Hashtbl List Printf String

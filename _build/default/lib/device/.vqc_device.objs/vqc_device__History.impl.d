lib/device/history.ml: Array Calibration Calibration_model Float Hashtbl List Printf Vqc_rng

lib/device/history.mli: Calibration Calibration_model

lib/device/calibration_model.mli: Calibration Device Vqc_rng

lib/device/topologies.ml: Fun List

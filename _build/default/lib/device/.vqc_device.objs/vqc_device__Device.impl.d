lib/device/device.ml: Array Calibration Float Format Hashtbl List Printf String Vqc_graph

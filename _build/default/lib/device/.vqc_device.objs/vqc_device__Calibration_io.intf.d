lib/device/calibration_io.mli: Calibration Device

lib/device/calibration_model.ml: Array Calibration Device Float List Topologies Vqc_rng

lib/device/topologies.mli:

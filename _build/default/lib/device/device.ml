module Graph = Vqc_graph.Graph
module Paths = Vqc_graph.Paths

type gate_times = {
  t_1q_ns : float;
  t_2q_ns : float;
  t_measure_ns : float;
}

let default_gate_times =
  { t_1q_ns = 80.0; t_2q_ns = 300.0; t_measure_ns = 1000.0 }

type t = {
  name : string;
  calibration : Calibration.t;
  gate_times : gate_times;
  error_graph : Graph.t;
  mutable hop_cache : int array array option;
  mutable reliability_cache : float array array option;
}

let make ?(gate_times = default_gate_times) ~name ~coupling calibration =
  let n = Calibration.num_qubits calibration in
  let error_graph = Graph.create n in
  List.iter
    (fun (u, v) ->
      match Calibration.link_error calibration u v with
      | Some e -> Graph.add_edge error_graph u v e
      | None ->
        invalid_arg
          (Printf.sprintf "Device.make: coupler %d--%d has no calibration" u v))
    coupling;
  if n > 0 && not (Graph.is_connected error_graph) then
    invalid_arg "Device.make: coupling map is not connected";
  {
    name;
    calibration;
    gate_times;
    error_graph;
    hop_cache = None;
    reliability_cache = None;
  }

let coupling d = List.map (fun (u, v, _) -> (u, v)) (Graph.edges d.error_graph)

let with_calibration d calibration =
  make ~gate_times:d.gate_times ~name:d.name ~coupling:(coupling d) calibration

let name d = d.name
let num_qubits d = Calibration.num_qubits d.calibration
let calibration d = d.calibration
let gate_times d = d.gate_times

let connected d u v = Graph.has_edge d.error_graph u v
let neighbors d u = Graph.neighbor_ids d.error_graph u

let link_error d u v =
  match Graph.edge_weight d.error_graph u v with
  | Some e -> e
  | None ->
    invalid_arg (Printf.sprintf "Device.link_error: %d--%d not coupled" u v)

let cnot_success d u v = 1.0 -. link_error d u v
let swap_success d u v = cnot_success d u v ** 3.0

(* Guard against log 0 when a link error reaches 1. *)
let neg_log_success error =
  let p = Float.max 1e-12 (1.0 -. error) in
  -.log p

let error_graph d = Graph.copy d.error_graph
let success_graph d = Graph.map_weights (fun _ _ e -> 1.0 -. e) d.error_graph

let swap_cost_graph d =
  Graph.map_weights (fun _ _ e -> 3.0 *. neg_log_success e) d.error_graph

let hop_graph d = Graph.map_weights (fun _ _ _ -> 1.0) d.error_graph

let hop_distance d =
  match d.hop_cache with
  | Some m -> m
  | None ->
    let m = Paths.all_pairs_hops d.error_graph in
    d.hop_cache <- Some m;
    m

let reliability_distance d =
  match d.reliability_cache with
  | Some m -> m
  | None ->
    let m = Paths.all_pairs (swap_cost_graph d) in
    d.reliability_cache <- Some m;
    m

let restrict d region =
  let region = List.sort_uniq compare region in
  if region = [] then invalid_arg "Device.restrict: empty region";
  if not (Graph.is_connected_subset d.error_graph region) then
    invalid_arg "Device.restrict: region is not connected";
  let to_old = Array.of_list region in
  let k = Array.length to_old in
  let to_new = Hashtbl.create k in
  Array.iteri (fun fresh old -> Hashtbl.replace to_new old fresh) to_old;
  let sub_calibration = Calibration.create k in
  Array.iteri
    (fun fresh old ->
      Calibration.set_qubit sub_calibration fresh (Calibration.qubit d.calibration old))
    to_old;
  let sub_coupling = ref [] in
  Graph.iter_edges
    (fun u v e ->
      match (Hashtbl.find_opt to_new u, Hashtbl.find_opt to_new v) with
      | Some nu, Some nv ->
        Calibration.set_link_error sub_calibration nu nv e;
        sub_coupling := (min nu nv, max nu nv) :: !sub_coupling
      | _ -> ())
    d.error_graph;
  let sub =
    make ~gate_times:d.gate_times ~name:(d.name ^ "/sub")
      ~coupling:(List.sort compare !sub_coupling)
      sub_calibration
  in
  (sub, to_old)

let extreme_link better d =
  match Graph.edges d.error_graph with
  | [] -> invalid_arg "Device: no links"
  | first :: rest ->
    List.fold_left
      (fun ((_, _, eb) as best) ((_, _, e) as candidate) ->
        if better e eb then candidate else best)
      first rest

let strongest_link d = extreme_link ( < ) d
let weakest_link d = extreme_link ( > ) d

let to_string d =
  let times = d.gate_times in
  Printf.sprintf "device %s\ngate_times %g %g %g\n%s" d.name times.t_1q_ns
    times.t_2q_ns times.t_measure_ns
    (Calibration.to_string d.calibration)

let of_string text =
  match String.index_opt text '\n' with
  | None -> Error "missing device header"
  | Some first_break -> begin
    let header = String.sub text 0 first_break in
    let rest =
      String.sub text (first_break + 1) (String.length text - first_break - 1)
    in
    match String.split_on_char ' ' header with
    | [ "device"; name ] -> begin
      match String.index_opt rest '\n' with
      | None -> Error "missing gate_times line"
      | Some second_break -> begin
        let times_line = String.sub rest 0 second_break in
        let body =
          String.sub rest (second_break + 1)
            (String.length rest - second_break - 1)
        in
        match String.split_on_char ' ' times_line with
        | [ "gate_times"; t1q; t2q; tm ] -> begin
          match
            (float_of_string_opt t1q, float_of_string_opt t2q,
             float_of_string_opt tm)
          with
          | Some t_1q_ns, Some t_2q_ns, Some t_measure_ns -> begin
            match Calibration.of_string body with
            | Error _ as e -> e
            | Ok calibration -> begin
              let coupling =
                List.map (fun (u, v, _) -> (u, v)) (Calibration.links calibration)
              in
              match
                make ~gate_times:{ t_1q_ns; t_2q_ns; t_measure_ns } ~name
                  ~coupling calibration
              with
              | device -> Ok device
              | exception Invalid_argument message -> Error message
            end
          end
          | _ -> Error "bad gate_times values"
        end
        | _ -> Error "missing 'gate_times' line"
      end
    end
    | _ -> Error "missing 'device NAME' header"
  end

let of_string_exn text =
  match of_string text with Ok d -> d | Error message -> failwith message

let pp ppf d =
  Format.fprintf ppf "@[<v>device %s: %d qubits, %d couplers" d.name
    (num_qubits d)
    (Graph.edge_count d.error_graph);
  Graph.iter_edges
    (fun u v e -> Format.fprintf ppf "@,  %2d -- %-2d  e2q=%.4f" u v e)
    d.error_graph;
  Format.fprintf ppf "@]"

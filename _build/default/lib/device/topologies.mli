(** Coupling maps of the devices the paper studies, plus synthetic
    topologies for tests and examples.

    All maps are undirected coupler lists [(u, v)] with [u < v]. *)

val ibm_q20_tokyo : (int * int) list
(** The 20-qubit IBM-Q20 "Tokyo" map of paper Figure 9: a 4×5 grid with
    the published diagonal couplers (43 undirected couplers; IBM's
    calibration reports list both directions of most of them, which is
    the "76 links" the paper quotes). *)

val ibm_q5_tenerife : (int * int) list
(** The 5-qubit IBM-Q5 "Tenerife" bow-tie map used in Section 7. *)

val linear : int -> (int * int) list
(** A line of [n] qubits. *)

val ring : int -> (int * int) list
(** A cycle of [n >= 3] qubits. *)

val grid : rows:int -> cols:int -> (int * int) list
(** A [rows × cols] mesh, row-major numbering. *)

val fully_connected : int -> (int * int) list

val pentagon : (int * int) list
(** The 5-qubit ring of paper Figure 1(a). *)

val mesh_2x3 : (int * int) list
(** The 6-qubit mesh of paper Figures 3, 11 and 15, numbered
    A=0 B=1 C=2 D=3 E=4 F=5 with rows A-D-E / B-C-F...  see the layout in
    {!val:grid}: we use row-major 2×3 (0 1 2 / 3 4 5). *)

val ibm_q16_melbourne : (int * int) list
(** The 14-qubit IBM Q16 "Melbourne" ladder (two rails of 7 with rungs)
    — a sparser contemporary of the Q20, useful for cross-topology
    studies. *)

val heavy_hex_27 : (int * int) list
(** A 27-qubit heavy-hex lattice in the style of IBM's Falcon devices —
    the post-NISQ-era sparse topology (degree <= 3). *)

val bristlecone_like : rows:int -> cols:int -> (int * int) list
(** A dense grid-with-diagonals in the style of Google's Bristlecone:
    the [rows x cols] mesh plus both diagonals of every plaquette.
    @raise Invalid_argument if either dimension is below 2. *)

module Compiler = Vqc_mapper.Compiler
module Reliability = Vqc_sim.Reliability
module Catalog = Vqc_workloads.Catalog

let pst_under device policy circuit =
  let compiled = Compiler.compile device policy circuit in
  Reliability.pst device compiled.Compiler.physical

let fig12 ppf (ctx : Context.t) =
  Report.section ppf
    "Figure 12: impact of VQM on PST (relative to variation-unaware baseline)";
  let rows =
    List.map
      (fun (entry : Catalog.entry) ->
        let base = pst_under ctx.q20 Compiler.baseline entry.circuit in
        let vqm = pst_under ctx.q20 Compiler.vqm entry.circuit in
        let limited = pst_under ctx.q20 (Compiler.vqm_limited 4) entry.circuit in
        [
          entry.name;
          Report.float_cell base;
          Report.ratio_cell 1.0;
          Report.ratio_cell (vqm /. base);
          Report.ratio_cell (limited /. base);
        ])
      Catalog.table1
  in
  Report.table ppf
    ~header:
      [ "workload"; "baseline PST"; "baseline"; "VQM"; "VQM (MAH=4)" ]
    rows;
  Format.fprintf ppf
    "@[<v>[paper: every benchmark improves; qft and rnd-LD improve most; \
     MAH=4 tracks unconstrained VQM]@,@]"

let fig13 ppf (ctx : Context.t) =
  Report.section ppf
    "Figure 13: PST of native / baseline / VQM / VQA+VQM (normalized to \
     baseline)";
  let native_seeds = List.init 32 (fun i -> 1000 + i) in
  let rows =
    List.map
      (fun (entry : Catalog.entry) ->
        let base = pst_under ctx.q20 Compiler.baseline entry.circuit in
        let vqm = pst_under ctx.q20 Compiler.vqm entry.circuit in
        let best = pst_under ctx.q20 Compiler.vqa_vqm entry.circuit in
        let native_psts =
          List.map
            (fun seed ->
              pst_under ctx.q20 (Compiler.native ~seed) entry.circuit)
            native_seeds
        in
        let count = float_of_int (List.length native_psts) in
        let native_avg = List.fold_left ( +. ) 0.0 native_psts /. count in
        let native_min = List.fold_left Float.min infinity native_psts in
        let native_max = List.fold_left Float.max 0.0 native_psts in
        [
          entry.name;
          Printf.sprintf "%.2fx [%.2f-%.2f]" (native_avg /. base)
            (native_min /. base) (native_max /. base);
          Report.ratio_cell 1.0;
          Report.ratio_cell (vqm /. base);
          Report.ratio_cell (best /. base);
        ])
      Catalog.table1
  in
  Report.table ppf
    ~header:[ "workload"; "IBM native (avg [min-max])"; "baseline"; "VQM"; "VQA+VQM" ]
    rows;
  Format.fprintf ppf
    "@[<v>[paper: baseline ~4x over native; VQA+VQM up to 1.7x over \
     baseline and up to 7x over native]@,@]";
  (* where VQA put qft-12 on the chip *)
  let compiled =
    Compiler.compile ctx.q20 Compiler.vqa_vqm
      (Catalog.find "qft-12").Catalog.circuit
  in
  let region =
    Vqc_mapper.Layout.used_physicals compiled.Compiler.initial
  in
  Format.fprintf ppf "@[<v>VQA's region for qft-12 (bracketed qubits):@,@]";
  Chip_render.q20 ~highlight:region ppf ctx.q20

(** Experiment registry: every paper artifact (and ablation) by id. *)

type experiment = {
  id : string;  (** e.g. ["fig12"] *)
  title : string;
  run : Format.formatter -> Context.t -> unit;
}

val all : experiment list
(** In paper order: fig5–fig9, tab1, fig12, fig13, fig14, tab2, tab3,
    fig16, then the ablations. *)

val find : string -> experiment
(** @raise Not_found on an unknown id. *)

val ids : unit -> string list

val run_all : Format.formatter -> Context.t -> unit
(** Run every experiment in order into one report. *)

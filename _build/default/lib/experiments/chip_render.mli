(** ASCII rendering of a grid-shaped device with per-link error rates —
    the visual form of the paper's Figure 9.

    Works for row-major grid numbering (the Q20 Tokyo layout is 4x5);
    horizontal and vertical couplers are drawn in place, diagonal
    couplers are listed below the grid.  Weak links (error at or above
    [weak_threshold]) are flagged with [!]; qubits in [highlight] are
    drawn as [[q]] instead of [(q)] (e.g. a VQA region). *)

val grid :
  ?highlight:int list ->
  ?weak_threshold:float ->
  rows:int ->
  cols:int ->
  Format.formatter ->
  Vqc_device.Device.t ->
  unit
(** @raise Invalid_argument if the device has fewer qubits than the
    grid. *)

val q20 :
  ?highlight:int list -> Format.formatter -> Vqc_device.Device.t -> unit
(** [grid ~rows:4 ~cols:5] with the default weak threshold (0.06). *)

lib/experiments/fig_policies.mli: Context Format

lib/experiments/fig_scaling.ml: Context Format List Report Vqc_device Vqc_mapper Vqc_sim Vqc_workloads

lib/experiments/table1.mli: Context Format

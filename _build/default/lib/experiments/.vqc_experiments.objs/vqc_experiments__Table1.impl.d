lib/experiments/table1.ml: Circuit Context Format List Report Vqc_circuit Vqc_mapper Vqc_workloads

lib/experiments/context.mli: Vqc_device

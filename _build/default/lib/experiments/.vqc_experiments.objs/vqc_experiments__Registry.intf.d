lib/experiments/registry.mli: Context Format

lib/experiments/fig_daily.mli: Context Format

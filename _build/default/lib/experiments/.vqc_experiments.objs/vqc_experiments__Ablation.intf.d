lib/experiments/ablation.mli: Context Format

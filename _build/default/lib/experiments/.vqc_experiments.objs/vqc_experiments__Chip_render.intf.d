lib/experiments/chip_render.mli: Format Vqc_device

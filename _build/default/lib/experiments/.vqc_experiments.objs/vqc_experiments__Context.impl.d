lib/experiments/context.ml: Vqc_device

lib/experiments/fig_q5.mli: Context Format

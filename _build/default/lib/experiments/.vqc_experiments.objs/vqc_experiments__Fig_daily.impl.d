lib/experiments/fig_daily.ml: Array Context Format List Printf Report Vqc_device Vqc_mapper Vqc_sim Vqc_workloads

lib/experiments/ablation.ml: Context Float Format List Printf Report Vqc_circuit Vqc_device Vqc_mapper Vqc_opt Vqc_rng Vqc_sim Vqc_statevector Vqc_workloads

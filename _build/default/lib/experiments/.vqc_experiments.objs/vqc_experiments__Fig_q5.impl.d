lib/experiments/fig_q5.ml: Context Format List Report Vqc_device Vqc_mapper Vqc_sim Vqc_workloads

lib/experiments/fig_scaling.mli: Context Format

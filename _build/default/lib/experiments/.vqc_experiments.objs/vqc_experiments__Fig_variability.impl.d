lib/experiments/fig_variability.ml: Array Chip_render Context Format List Printf Report Vqc_device

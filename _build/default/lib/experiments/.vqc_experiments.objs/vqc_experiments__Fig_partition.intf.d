lib/experiments/fig_partition.mli: Context Format

lib/experiments/fig_variability.mli: Context Format

lib/experiments/fig_partition.ml: Context Format List Report Vqc_partition Vqc_workloads

lib/experiments/registry.ml: Ablation Context Fig_daily Fig_partition Fig_policies Fig_q5 Fig_scaling Fig_variability Format List Table1

lib/experiments/fig_policies.ml: Chip_render Context Float Format List Printf Report Vqc_mapper Vqc_sim Vqc_workloads

lib/experiments/report.ml: Array Float Format List Printf String

lib/experiments/chip_render.ml: Buffer Format List Printf Vqc_device

(** Section 7 / Table 3: baseline vs VQA+VQM on the IBM-Q5 Tenerife model
    (the paper ran these four kernels on the real machine; we run them
    through the same fault-injection methodology on the Q5 model). *)

val run : Format.formatter -> Context.t -> unit

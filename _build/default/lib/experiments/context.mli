(** Shared experiment configuration: the simulated devices and calibration
    histories every figure/table reproduction draws from.

    Everything is derived deterministically from one seed, so a whole
    experiment run is repeatable; pass a different seed to check that the
    conclusions are not an artifact of one calibration draw. *)

type t = {
  seed : int;
  history : Vqc_device.History.t;
      (** 52 daily Q20 calibrations (Figures 8 and 14) *)
  samples : Vqc_device.History.t;
      (** 100 calibration reports (the distribution Figures 5–7) *)
  q20 : Vqc_device.Device.t;
      (** Q20 with the 52-day average calibration — the main configuration *)
  q5 : Vqc_device.Device.t;  (** Q5 Tenerife (Section 7) *)
}

val make : seed:int -> t
val default : t
(** [make ~seed:2019]. *)

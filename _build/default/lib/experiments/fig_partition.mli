(** Section 8 / Figure 16: successful trials per unit time for two
    concurrent weak copies vs one strong copy of the 10-qubit workloads
    on the Q20 model, both normalized to the two-copy configuration. *)

val run : Format.formatter -> Context.t -> unit

module Device = Vqc_device.Device

let default_weak_threshold = 0.06

let grid ?(highlight = []) ?(weak_threshold = default_weak_threshold) ~rows
    ~cols ppf device =
  if Device.num_qubits device < rows * cols then
    invalid_arg "Chip_render.grid: device smaller than the grid";
  let node q =
    let label = Printf.sprintf "%2d" q in
    if List.mem q highlight then Printf.sprintf "[%s]" label
    else Printf.sprintf "(%s)" label
  in
  let link u v =
    if not (Device.connected device u v) then None
    else begin
      let e = Device.link_error device u v in
      let flag = if e >= weak_threshold then "!" else "" in
      Some (Printf.sprintf ".%03.0f%s" (1000.0 *. e) flag)
    end
  in
  Format.fprintf ppf "@[<v>";
  for r = 0 to rows - 1 do
    (* node row with horizontal links *)
    let buffer = Buffer.create 80 in
    for c = 0 to cols - 1 do
      let q = (r * cols) + c in
      Buffer.add_string buffer (node q);
      if c < cols - 1 then begin
        match link q (q + 1) with
        | Some label -> Buffer.add_string buffer (Printf.sprintf "-%-6s-" label)
        | None -> Buffer.add_string buffer "        "
      end
    done;
    Format.fprintf ppf "%s@," (Buffer.contents buffer);
    (* vertical link row *)
    if r < rows - 1 then begin
      let buffer = Buffer.create 80 in
      for c = 0 to cols - 1 do
        let q = (r * cols) + c in
        let cell =
          match link q (q + cols) with
          | Some label -> Printf.sprintf " %-6s" label
          | None -> "       "
        in
        Buffer.add_string buffer (Printf.sprintf "%-12s" cell)
      done;
      Format.fprintf ppf "%s@," (Buffer.contents buffer)
    end
  done;
  (* diagonals and any other non-grid couplers *)
  let grid_link u v =
    let du = abs (u - v) in
    du = 1 && u / cols = v / cols || du = cols
  in
  let extras =
    List.filter (fun (u, v) -> not (grid_link u v)) (Device.coupling device)
  in
  if extras <> [] then begin
    Format.fprintf ppf "diagonal couplers:@,";
    List.iter
      (fun (u, v) ->
        match link u v with
        | Some label -> Format.fprintf ppf "  %2d--%-2d %s@," u v label
        | None -> ())
      extras
  end;
  Format.fprintf ppf
    "(link labels are failure rates in thousandths; '!' marks links at or \
     above %.0f%%)@,@]"
    (100.0 *. weak_threshold)

let q20 ?highlight ppf device = grid ?highlight ~rows:4 ~cols:5 ppf device

open Vqc_circuit
module Compiler = Vqc_mapper.Compiler
module Catalog = Vqc_workloads.Catalog

let run ppf (ctx : Context.t) =
  Report.section ppf "Table 1: benchmark characteristics";
  let rows =
    List.map
      (fun (entry : Catalog.entry) ->
        let s = Circuit.stats entry.circuit in
        let compiled = Compiler.compile ctx.q20 Compiler.baseline entry.circuit in
        [
          entry.name;
          entry.description;
          string_of_int (Circuit.num_qubits entry.circuit);
          string_of_int s.Circuit.total_gates;
          string_of_int s.Circuit.cnot_gates;
          string_of_int s.Circuit.depth;
          string_of_int (Compiler.swap_overhead compiled);
        ])
      Catalog.table1
  in
  Report.table ppf
    ~header:
      [ "workload"; "description"; "qubits"; "inst"; "cx"; "depth"; "swaps" ]
    rows;
  Format.fprintf ppf
    "@[<v>[paper: alu 10q/299 inst/19 swaps; bv-16 16q/66/7; bv-20 \
     20q/90/10; qft-12 12q/344/35; qft-14 14q/550/53; rnd-SD 20q/100/24; \
     rnd-LD 20q/100/35]@,@]"

module Device = Vqc_device.Device
module Calibration = Vqc_device.Calibration
module Compiler = Vqc_mapper.Compiler
module Reliability = Vqc_sim.Reliability
module Catalog = Vqc_workloads.Catalog

let benefit device circuit =
  let pst policy =
    let compiled = Compiler.compile device policy circuit in
    Reliability.pst device compiled.Compiler.physical
  in
  pst Compiler.vqa_vqm /. pst Compiler.baseline

let run ppf (ctx : Context.t) =
  Report.section ppf "Table 2: sensitivity of VQA+VQM to error scaling (bv-16)";
  let circuit = (Catalog.find "bv-16").Catalog.circuit in
  let base_calibration = Device.calibration ctx.q20 in
  let configs =
    [
      ("1x", "0.5*Cov-Base", 1.0, 0.5);
      ("1x", "Cov-Base", 1.0, 1.0);
      ("1x", "2*Cov-Base", 1.0, 2.0);
      ("10x lower", "Cov-Base", 0.1, 1.0);
      ("10x lower", "2*Cov-Base", 0.1, 2.0);
    ]
  in
  let rows =
    List.map
      (fun (mean_label, cov_label, mean_factor, cov_factor) ->
        let calibration =
          Calibration.scale_link_errors base_calibration ~mean_factor
            ~cov_factor
        in
        let device = Device.with_calibration ctx.q20 calibration in
        [
          "bv-16";
          mean_label;
          cov_label;
          Report.ratio_cell (benefit device circuit);
        ])
      configs
  in
  Report.table ppf
    ~header:[ "benchmark"; "avg error rate"; "covariation"; "relative PST" ]
    rows;
  Format.fprintf ppf
    "@[<v>[paper Table 2 rows: (1x, Cov-Base) 1.43x; (10x lower, \
     Cov-Base) 2.02x; (10x lower, 2*Cov-Base) 2.59x]@,\
     [the benefit-grows-with-relative-variation trend shows in the \
     base-scale cov sweep; under independent errors a uniform 10x \
     scaling maps a PST ratio r to r^0.1, so the paper's growth at '10x \
     lower' cannot follow from gate-error scaling alone -- see \
     EXPERIMENTS.md]@,@]"

(** Section 6.6 / Table 2: sensitivity of the VQA+VQM benefit to scaled
    error rates — 10x lower mean with the same coefficient of variation,
    and with twice the coefficient of variation. *)

val run : Format.formatter -> Context.t -> unit

(** Section 3 characterization figures: the variability of the simulated
    IBM-Q20 calibration data.

    Each function prints one paper artifact and the summary statistics the
    paper quotes, so the match can be checked at a glance. *)

val fig5 : Format.formatter -> Context.t -> unit
(** T1/T2 coherence-time distributions (20 qubits x 100 samples). *)

val fig6 : Format.formatter -> Context.t -> unit
(** Single-qubit gate-error distribution. *)

val fig7 : Format.formatter -> Context.t -> unit
(** Two-qubit gate-error distribution (all links x 100 samples). *)

val fig8 : Format.formatter -> Context.t -> unit
(** 52-day error series of three links (strong / median / weak), plus the
    rank-stability statistic behind "strong links tend to remain strong". *)

val fig9 : Format.formatter -> Context.t -> unit
(** Q20 layout with average per-link failure rates, and the best/worst
    spread (the paper's 7.5x). *)

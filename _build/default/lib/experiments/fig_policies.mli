(** Sections 5.4 and 6.3/6.4: the headline policy comparisons on the Q20
    model (analytic PST; the Monte-Carlo engine converges to the same
    values and is cross-checked by the test suite and the bench). *)

val fig12 : Format.formatter -> Context.t -> unit
(** Relative PST of VQM and hop-limited VQM (MAH=4) over the baseline,
    per Table-1 benchmark. *)

val fig13 : Format.formatter -> Context.t -> unit
(** Relative PST of the IBM-native stand-in (32 random seeds, avg and
    min/max), baseline, VQM and VQA+VQM, normalized to the baseline. *)

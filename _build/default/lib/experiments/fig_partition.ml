module Catalog = Vqc_workloads.Catalog

let run ppf (ctx : Context.t) =
  Report.section ppf
    "Figure 16: STPT, two weak copies vs one strong copy (normalized to \
     two copies)";
  let rows =
    List.map
      (fun (entry : Catalog.entry) ->
        let cmp = Vqc_partition.Partition.compare_strategies ctx.q20 entry.circuit in
        [
          entry.name;
          Report.float_cell ~digits:3 cmp.Vqc_partition.Partition.copy_x.pst;
          Report.float_cell ~digits:3 cmp.Vqc_partition.Partition.copy_y.pst;
          Report.float_cell ~digits:3 cmp.Vqc_partition.Partition.single.pst;
          "1.00";
          Report.float_cell ~digits:2
            (cmp.Vqc_partition.Partition.stpt_single
           /. cmp.Vqc_partition.Partition.stpt_two);
        ])
      Catalog.partition_suite
  in
  Report.table ppf
    ~header:
      [
        "workload";
        "PST copy-X";
        "PST copy-Y";
        "PST single";
        "two copies (norm)";
        "one strong copy";
      ]
    rows;
  Format.fprintf ppf
    "@[<v>[paper: two copies win for bv-10, one strong copy wins for \
     qft-10 -- the decision is workload-dependent]@,@]"

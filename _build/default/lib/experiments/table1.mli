(** Table 1: benchmark characteristics — qubit counts, instruction counts
    and the SWAPs the baseline compiler inserts on the Q20 model. *)

val run : Format.formatter -> Context.t -> unit

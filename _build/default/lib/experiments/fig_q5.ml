module Device = Vqc_device.Device
module Calibration = Vqc_device.Calibration
module Compiler = Vqc_mapper.Compiler
module Reliability = Vqc_sim.Reliability
module Metrics = Vqc_sim.Metrics
module Catalog = Vqc_workloads.Catalog

let run ppf (ctx : Context.t) =
  Report.section ppf "Table 3: baseline vs VQA+VQM on IBM-Q5 (Tenerife model)";
  let s = Calibration.link_error_summary (Device.calibration ctx.q5) in
  Format.fprintf ppf
    "@[<v>Q5 two-qubit errors: mean %.1f%%, worst %.1f%%  [paper: avg \
     4.2%%, worst 12%%]@,@]"
    (100.0 *. s.Calibration.mean)
    (100.0 *. s.Calibration.maximum);
  let results =
    List.map
      (fun (entry : Catalog.entry) ->
        let pst policy =
          let compiled = Compiler.compile ctx.q5 policy entry.circuit in
          Reliability.pst ctx.q5 compiled.Compiler.physical
        in
        let base = pst Compiler.baseline in
        let best = pst Compiler.vqa_vqm in
        (entry.name, base, best))
      Catalog.q5_suite
  in
  let rows =
    List.map
      (fun (name, base, best) ->
        [
          name;
          Report.float_cell ~digits:2 base;
          Report.float_cell ~digits:2 best;
          Report.ratio_cell (best /. base);
        ])
      results
  in
  let geo list = Metrics.geomean list in
  let geomean_row =
    [
      "GeoMean";
      Report.float_cell ~digits:2 (geo (List.map (fun (_, b, _) -> b) results));
      Report.float_cell ~digits:2 (geo (List.map (fun (_, _, v) -> v) results));
      Report.ratio_cell (geo (List.map (fun (_, b, v) -> v /. b) results));
    ]
  in
  Report.table ppf
    ~header:[ "benchmark"; "PST (baseline)"; "PST (VQA+VQM)"; "relative" ]
    (rows @ [ geomean_row ]);
  Format.fprintf ppf
    "@[<v>[paper: bv-3 1.22x, bv-4 1.09x, TriSwap 1.90x, GHZ-3 1.35x, \
     geomean 1.36x]@,@]"

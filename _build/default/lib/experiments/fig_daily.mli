(** Section 6.5 / Figure 14: per-day benefit of VQA+VQM for bv-16 across
    the 52-day calibration history, with each day's error-rate dispersion
    (higher-variability days should show larger benefit). *)

val run : Format.formatter -> Context.t -> unit

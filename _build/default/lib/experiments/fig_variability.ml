module Calibration = Vqc_device.Calibration
module Device = Vqc_device.Device
module History = Vqc_device.History

let qubit_samples history field =
  List.concat_map
    (fun snapshot ->
      List.init (Calibration.num_qubits snapshot) (fun q ->
          field (Calibration.qubit snapshot q)))
    (History.all history)

let link_samples history =
  List.concat_map
    (fun snapshot -> List.map (fun (_, _, e) -> e) (Calibration.links snapshot))
    (History.all history)

let print_summary ppf label values =
  let s = Calibration.summarize values in
  Format.fprintf ppf "%s: mean=%.4g std=%.4g min=%.4g max=%.4g@," label
    s.Calibration.mean s.Calibration.std s.Calibration.minimum
    s.Calibration.maximum

let fig5 ppf (ctx : Context.t) =
  Report.section ppf "Figure 5: coherence-time distributions (IBM-Q20 model)";
  let t1 = qubit_samples ctx.samples (fun q -> q.Calibration.t1_us) in
  let t2 = qubit_samples ctx.samples (fun q -> q.Calibration.t2_us) in
  Format.fprintf ppf "@[<v>";
  print_summary ppf "T1 (us)   [paper: mean 80.32, std 35.23]" t1;
  print_summary ppf "T2 (us)   [paper: mean 42.13, std 13.34]" t2;
  Format.fprintf ppf "@]";
  Report.histogram ppf ~title:"T1 coherence" ~unit_label:"us" t1;
  Report.histogram ppf ~title:"T2 coherence" ~unit_label:"us" t2

let fig6 ppf (ctx : Context.t) =
  Report.section ppf "Figure 6: single-qubit gate-error distribution";
  let errors =
    qubit_samples ctx.samples (fun q -> 100.0 *. q.Calibration.error_1q)
  in
  Format.fprintf ppf "@[<v>";
  print_summary ppf "1q error (%)  [paper: large fraction below 1%]" errors;
  let below_1pct =
    List.length (List.filter (fun e -> e < 1.0) errors) * 100
    / List.length errors
  in
  Format.fprintf ppf "fraction below 1%%: %d%%@,@]" below_1pct;
  Report.histogram ppf ~title:"single-qubit error" ~unit_label:"%" errors

let fig7 ppf (ctx : Context.t) =
  Report.section ppf "Figure 7: two-qubit gate-error distribution";
  let errors = List.map (fun e -> 100.0 *. e) (link_samples ctx.samples) in
  Format.fprintf ppf "@[<v>";
  print_summary ppf "2q error (%)  [paper: mean 4.3, std 3.02]" errors;
  Format.fprintf ppf "@]";
  Report.histogram ppf ~title:"two-qubit error" ~unit_label:"%" errors

(* Rank stability: Spearman correlation between each day's link ranking
   and the average ranking — high when strong links stay strong. *)
let rank_stability history =
  let average = History.average history in
  let links = Calibration.links average in
  let rank_of values =
    let indexed = List.mapi (fun i v -> (v, i)) values in
    let sorted = List.sort compare indexed in
    let ranks = Array.make (List.length values) 0.0 in
    List.iteri (fun rank (_, i) -> ranks.(i) <- float_of_int rank) sorted;
    ranks
  in
  let base_rank = rank_of (List.map (fun (_, _, e) -> e) links) in
  let correlations =
    List.map
      (fun snapshot ->
        let day_rank =
          rank_of
            (List.map (fun (u, v, _) -> Calibration.link_error_exn snapshot u v) links)
        in
        let n = float_of_int (Array.length base_rank) in
        let d2 =
          Array.to_list (Array.mapi (fun i r -> (r -. day_rank.(i)) ** 2.0) base_rank)
          |> List.fold_left ( +. ) 0.0
        in
        1.0 -. (6.0 *. d2 /. (n *. ((n *. n) -. 1.0))))
      (History.all history)
  in
  List.fold_left ( +. ) 0.0 correlations
  /. float_of_int (List.length correlations)

let fig8 ppf (ctx : Context.t) =
  Report.section ppf "Figure 8: temporal variation of three links";
  let average = History.average ctx.history in
  let links = Calibration.links average in
  let sorted = List.sort (fun (_, _, a) (_, _, b) -> compare a b) links in
  let pick k = List.nth sorted k in
  let strong = pick 0 in
  let median = pick (List.length sorted / 2) in
  let weak = pick (List.length sorted - 1) in
  List.iter
    (fun ((u, v, avg), label) ->
      let series = History.link_series ctx.history u v in
      let points =
        Array.to_list
          (Array.mapi
             (fun day e -> (Printf.sprintf "day %02d" (day + 1), 100.0 *. e))
             series)
      in
      (* print one in four days to keep the series readable *)
      let thinned = List.filteri (fun i _ -> i mod 4 = 0) points in
      Report.series ppf
        ~title:
          (Printf.sprintf "%s link CX%d_%d (52-day avg %.2f%%), CNOT error %%"
             label u v (100.0 *. avg))
        thinned)
    [ (strong, "strong"); (median, "median"); (weak, "weak") ];
  Format.fprintf ppf
    "@[<v>rank stability (mean Spearman vs 52-day average): %.2f@,\
     [paper: strong links tend to remain strong]@,@]"
    (rank_stability ctx.history)

let fig9 ppf (ctx : Context.t) =
  Report.section ppf "Figure 9: IBM-Q20 layout with average failure rates";
  Chip_render.q20 ppf ctx.q20;
  let rows =
    List.map
      (fun (u, v, e) ->
        [ Printf.sprintf "%d -- %d" u v; Report.float_cell ~digits:3 e ])
      (Calibration.links (Device.calibration ctx.q20))
  in
  Report.table ppf ~header:[ "link"; "avg failure rate" ] rows;
  let u, v, best = Device.strongest_link ctx.q20 in
  let x, y, worst = Device.weakest_link ctx.q20 in
  Format.fprintf ppf
    "@[<v>best link %d--%d: %.3f; worst link %d--%d: %.3f; spread %.1fx@,\
     [paper: best 0.02, worst 0.15, spread 7.5x]@,@]"
    u v best x y worst (worst /. best)

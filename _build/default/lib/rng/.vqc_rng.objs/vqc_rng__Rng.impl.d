lib/rng/rng.ml: Array Float Int64

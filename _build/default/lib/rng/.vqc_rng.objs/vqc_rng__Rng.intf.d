lib/rng/rng.mli:

module Device = Vqc_device.Device
module Graph = Vqc_graph.Graph
module Paths = Vqc_graph.Paths

type model = Hops | Reliability

type t = {
  model : model;
  device : Device.t;
  cost_graph : Graph.t;  (* weight = cost of one SWAP across the edge *)
  dist : float array array;  (* all-pairs cheapest swap-route cost *)
  adjacency : float array array;
  hop : int array array;
}

let execution_cost model device u v =
  match model with
  | Hops -> 0.0
  | Reliability ->
    let p = Float.max 1e-12 (Device.cnot_success device u v) in
    -.log p

let default_swap_bias = 3.2

let make ?(swap_bias = default_swap_bias) device model =
  let cost_graph =
    match model with
    | Hops -> Device.hop_graph device
    | Reliability ->
      (* The bias is relative to the device's mean SWAP cost so that its
         effect is scale-free: when error rates shrink 10x, SWAPs become
         10x cheaper and the router may roam proportionally further for
         good links (paper Table 2's benefit *grows* at lower error
         rates precisely because steering gets cheaper). *)
      let raw = Device.swap_cost_graph device in
      let total = Graph.fold_edges (fun _ _ w acc -> acc +. w) raw 0.0 in
      let mean_swap_cost = total /. float_of_int (max 1 (Graph.edge_count raw)) in
      Graph.map_weights (fun _ _ w -> w +. (swap_bias *. mean_swap_cost)) raw
  in
  let dist = Paths.all_pairs cost_graph in
  let hop = Device.hop_distance device in
  let n = Device.num_qubits device in
  let couplers = Device.coupling device in
  let execution u v = execution_cost model device u v in
  let adjacency = Array.make_matrix n n 0.0 in
  for p = 0 to n - 1 do
    for q = 0 to n - 1 do
      if p <> q then begin
        let best = ref Float.infinity in
        List.iter
          (fun (a, b) ->
            let route =
              Float.min
                (dist.(p).(a) +. dist.(q).(b))
                (dist.(p).(b) +. dist.(q).(a))
            in
            let via = route +. execution a b in
            if via < !best then best := via)
          couplers;
        adjacency.(p).(q) <- !best
      end
    done
  done;
  { model; device; cost_graph; dist; adjacency; hop }

let model t = t.model
let device t = t.device

let swap_cost t u v =
  match Graph.edge_weight t.cost_graph u v with
  | Some w -> w
  | None ->
    invalid_arg (Printf.sprintf "Cost.swap_cost: %d--%d not coupled" u v)

let cnot_cost t u v =
  if not (Device.connected t.device u v) then
    invalid_arg (Printf.sprintf "Cost.cnot_cost: %d--%d not coupled" u v);
  execution_cost t.model t.device u v

let distance t p q = t.dist.(p).(q)
let entangle_cost t p q = t.adjacency.(p).(q)
let hops_to_adjacency t p q = max 0 (t.hop.(p).(q) - 1)

let route t p q =
  match Paths.shortest_path t.cost_graph p q with
  | Some path -> path
  | None -> invalid_arg (Printf.sprintf "Cost.route: %d and %d disconnected" p q)

(** Initial qubit-allocation policies (paper Sections 4.5, 6.2 and 6.4).

    - [Trivial]: program qubit [i] on physical qubit [i].
    - [Random]: a seeded random placement — the "IBM native compiler"
      comparison point of Section 6.4.
    - [Locality]: the variation-unaware baseline — qubits that interact a
      lot are placed close (by hop distance), centred on the device.
    - [Vqa]: Variation-Aware Qubit Allocation — pick the connected
      subgraph with the highest aggregate node strength of the success
      graph, then map program qubits in decreasing activity order onto it
      so that frequently-entangled pairs sit on the most reliable links
      (Algorithm 2).  [activity_window] bounds the instruction-analysis
      prefix (first-N layers); [None] analyzes the whole program.
      [readout_aware] extends the paper's policy: measured program qubits
      additionally prefer physical qubits with low readout error (the
      paper optimizes two-qubit links only; its VQA can silently trade
      measurement fidelity away — an extension in the spirit of
      Section 9's limitations). *)

type policy =
  | Trivial
  | Random of int
  | Locality
  | Vqa of { activity_window : int option; readout_aware : bool }

val vqa : policy
(** The paper's policy:
    [Vqa { activity_window = None; readout_aware = false }]. *)

val vqa_readout : policy
(** The readout-aware extension:
    [Vqa { activity_window = None; readout_aware = true }]. *)

val allocate : Vqc_device.Device.t -> Vqc_circuit.Circuit.t -> policy -> Layout.t
(** Compute the initial layout.
    @raise Invalid_argument if the program needs more qubits than the
    device provides. *)

val policy_name : policy -> string

(** Program-to-physical qubit mappings.

    A layout places each of the [k] program qubits on a distinct physical
    qubit of an [n >= k]-qubit device.  SWAPs permute the {e physical}
    occupancy: swapping physical qubits [u] and [v] exchanges whatever
    program qubits (possibly none) reside there. *)

type t

val identity : programs:int -> physicals:int -> t
(** Program qubit [i] on physical qubit [i].
    @raise Invalid_argument if [programs > physicals] or either is
    negative. *)

val of_assignment : physicals:int -> int array -> t
(** [of_assignment ~physicals a] places program qubit [i] on physical
    [a.(i)].  @raise Invalid_argument on duplicates or range errors. *)

val programs : t -> int
val physicals : t -> int

val physical_of_program : t -> int -> int
(** Where a program qubit currently resides. *)

val program_of_physical : t -> int -> int option
(** Which program qubit occupies a physical qubit, if any. *)

val occupied : t -> int -> bool

val swap_physical : t -> int -> int -> t
(** Functional update: exchange the occupants of two physical qubits.
    @raise Invalid_argument on out-of-range or identical qubits. *)

val assignment : t -> int array
(** Copy of the program→physical array. *)

val used_physicals : t -> int list
(** Physical qubits hosting a program qubit, sorted. *)

val key : t -> string
(** Canonical serialization (for A* duplicate detection). *)

val diff_swap : t -> t -> (int * int) option
(** [diff_swap a b] is the physical pair whose exchange turns [a] into
    [b], if the two layouts differ by exactly one swap. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

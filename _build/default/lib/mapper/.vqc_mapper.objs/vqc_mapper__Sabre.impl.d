lib/mapper/sabre.ml: Array Circuit Cost Dag Gate Hashtbl Layout List Queue Router Vqc_circuit Vqc_device

lib/mapper/router.ml: Circuit Cost Gate Hashtbl Layers Layout List Logs Vqc_circuit Vqc_device Vqc_graph

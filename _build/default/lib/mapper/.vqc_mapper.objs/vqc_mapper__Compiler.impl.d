lib/mapper/compiler.ml: Allocation Circuit Cost Float Gate Layout List Logs Printf Router Sabre Vqc_circuit Vqc_device

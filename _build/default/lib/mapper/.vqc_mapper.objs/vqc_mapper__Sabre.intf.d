lib/mapper/sabre.mli: Circuit Cost Layout Router Vqc_circuit

lib/mapper/allocation.ml: Array Circuit Float Fun Gate Hashtbl Layers Layout List Option Printf Vqc_circuit Vqc_device Vqc_graph Vqc_rng

lib/mapper/router.mli: Circuit Cost Layout Vqc_circuit

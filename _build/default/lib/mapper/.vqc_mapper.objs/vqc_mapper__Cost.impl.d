lib/mapper/cost.ml: Array Float List Printf Vqc_device Vqc_graph

lib/mapper/cost.mli: Vqc_device

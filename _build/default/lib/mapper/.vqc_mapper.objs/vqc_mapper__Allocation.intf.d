lib/mapper/allocation.mli: Layout Vqc_circuit Vqc_device

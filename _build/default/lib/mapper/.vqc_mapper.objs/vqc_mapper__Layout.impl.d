lib/mapper/layout.ml: Array Buffer Format Fun List Printf

lib/mapper/layout.mli: Format

lib/mapper/compiler.mli: Allocation Circuit Cost Layout Router Vqc_circuit Vqc_device

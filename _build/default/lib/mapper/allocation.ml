open Vqc_circuit
module Device = Vqc_device.Device
module Graph = Vqc_graph.Graph
module Kcore = Vqc_graph.Kcore
module Rng = Vqc_rng.Rng

type policy =
  | Trivial
  | Random of int
  | Locality
  | Vqa of { activity_window : int option; readout_aware : bool }

let vqa = Vqa { activity_window = None; readout_aware = false }
let vqa_readout = Vqa { activity_window = None; readout_aware = true }

let policy_name = function
  | Trivial -> "trivial"
  | Random seed -> Printf.sprintf "random-%d" seed
  | Locality -> "locality"
  | Vqa { readout_aware = false; _ } -> "vqa"
  | Vqa { readout_aware = true; _ } -> "vqa-readout"

(* Interaction counts restricted to the first [window] layers (all layers
   when [None]); paper Section 6.2 step 2. *)
let windowed_interactions circuit window =
  let layers = Layers.partition circuit in
  let layers =
    match window with
    | None -> layers
    | Some w -> List.filteri (fun i _ -> i < w) layers
  in
  let table = Hashtbl.create 32 in
  List.iter
    (fun layer ->
      List.iter
        (fun (a, b) ->
          let k = (min a b, max a b) in
          let current = Option.value (Hashtbl.find_opt table k) ~default:0 in
          Hashtbl.replace table k (current + 1))
        (Layers.two_qubit_pairs layer))
    layers;
  table

let activity_of_interactions num_qubits table =
  let activity = Array.make num_qubits 0 in
  Hashtbl.iter
    (fun (a, b) count ->
      activity.(a) <- activity.(a) + count;
      activity.(b) <- activity.(b) + count)
    table;
  activity

(* Program qubits in decreasing activity (ties: lower index first). *)
let by_activity activity =
  let order = List.init (Array.length activity) Fun.id in
  List.stable_sort (fun a b -> compare activity.(b) activity.(a)) order

(* Greedy placement: walk program qubits in decreasing activity; place each
   on the free candidate that minimizes interaction-weighted distance to its
   already-placed partners (falling back to distance to the anchor), plus an
   optional per-(program, physical) penalty (e.g. readout cost). *)
let greedy_place ?(node_penalty = fun ~prog:_ ~phys:_ -> 0.0) ~candidates
    ~distance ~anchor interactions activity =
  let placement = Hashtbl.create 16 in
  let free = Hashtbl.create 16 in
  List.iter (fun phys -> Hashtbl.replace free phys ()) candidates;
  let partner_weight prog other =
    let k = (min prog other, max prog other) in
    Option.value (Hashtbl.find_opt interactions k) ~default:0
  in
  let place prog =
    let placed = Hashtbl.fold (fun p phys acc -> (p, phys) :: acc) placement [] in
    let score phys =
      let penalty = node_penalty ~prog ~phys in
      let interaction_term =
        List.fold_left
          (fun acc (other, other_phys) ->
            let weight = partner_weight prog other in
            if weight = 0 then acc
            else acc +. (float_of_int weight *. distance phys other_phys))
          0.0 placed
      in
      if interaction_term > 0.0 then
        (0, interaction_term +. penalty, distance phys anchor)
      else (1, distance phys anchor +. penalty, 0.0)
    in
    let best = ref None in
    Hashtbl.iter
      (fun phys () ->
        let key = (score phys, phys) in
        match !best with
        | Some best_key when best_key <= key -> ()
        | _ -> best := Some key)
      free;
    match !best with
    | None -> invalid_arg "Allocation: not enough physical qubits"
    | Some (_, phys) ->
      Hashtbl.remove free phys;
      Hashtbl.replace placement prog phys
  in
  List.iter place (by_activity activity);
  placement

let layout_of_placement ~programs ~physicals placement =
  let assignment = Array.make programs (-1) in
  Hashtbl.iter (fun prog phys -> assignment.(prog) <- phys) placement;
  Array.iteri
    (fun prog phys ->
      if phys = -1 then
        invalid_arg (Printf.sprintf "Allocation: program qubit %d unplaced" prog))
    assignment;
  Layout.of_assignment ~physicals assignment

(* The hop-central physical qubit: minimum total hop distance to others. *)
let device_center device =
  let hop = Device.hop_distance device in
  let n = Device.num_qubits device in
  let total u = Array.fold_left (fun acc h -> acc + h) 0 hop.(u) in
  let rec best u champion champion_total =
    if u >= n then champion
    else begin
      let t = total u in
      if t < champion_total then best (u + 1) u t else best (u + 1) champion champion_total
    end
  in
  best 1 0 (total 0)

let allocate device circuit policy =
  let programs = Circuit.num_qubits circuit in
  let physicals = Device.num_qubits device in
  if programs > physicals then
    invalid_arg
      (Printf.sprintf "Allocation: %d program qubits on a %d-qubit device"
         programs physicals);
  match policy with
  | Trivial -> Layout.identity ~programs ~physicals
  | Random seed ->
    let rng = Rng.make seed in
    let nodes = Array.init physicals Fun.id in
    Rng.shuffle rng nodes;
    Layout.of_assignment ~physicals (Array.sub nodes 0 programs)
  | Locality ->
    let interactions = windowed_interactions circuit None in
    let activity = activity_of_interactions programs interactions in
    let hop = Device.hop_distance device in
    let distance u v = float_of_int hop.(u).(v) in
    let anchor = device_center device in
    let candidates = List.init physicals Fun.id in
    greedy_place ~candidates ~distance ~anchor interactions activity
    |> layout_of_placement ~programs ~physicals
  | Vqa { activity_window; readout_aware } ->
    let interactions = windowed_interactions circuit activity_window in
    let activity = activity_of_interactions programs interactions in
    let success = Device.success_graph device in
    (* Region selection.  The readout extension discounts every edge by
       the endpoints' readout survival (split as a square root so each
       node is counted once per incident edge side): regions built from
       strong links around poor-readout qubits stop looking strong. *)
    let region_graph =
      if not readout_aware then success
      else begin
        let calibration = Device.calibration device in
        let survival q =
          1.0
          -. (Vqc_device.Calibration.qubit calibration q)
               .Vqc_device.Calibration.error_readout
        in
        Graph.map_weights
          (fun u v w -> w *. sqrt (survival u *. survival v))
          success
      end
    in
    let region = Kcore.strongest_subgraph region_graph ~size:programs in
    let reliability = Device.reliability_distance device in
    let distance u v = reliability.(u).(v) in
    (* Readout extension: a measured program qubit pays the physical
       qubit's -log readout survival, the same log-failure units as the
       route terms. *)
    let node_penalty =
      if not readout_aware then fun ~prog:_ ~phys:_ -> 0.0
      else begin
        let measures = Array.make programs 0 in
        List.iter
          (fun gate ->
            match gate with
            | Gate.Measure { qubit; _ } -> measures.(qubit) <- measures.(qubit) + 1
            | Gate.One_qubit _ | Gate.Cnot _ | Gate.Swap _ | Gate.Barrier _ ->
              ())
          (Circuit.gates circuit);
        let calibration = Device.calibration device in
        fun ~prog ~phys ->
          if measures.(prog) = 0 then 0.0
          else begin
            let e =
              (Vqc_device.Calibration.qubit calibration phys)
                .Vqc_device.Calibration.error_readout
            in
            float_of_int measures.(prog) *. -.log (Float.max 1e-12 (1.0 -. e))
          end
      end
    in
    (* Anchor at the region's reliability centroid: the node with the
       cheapest total most-reliable routes to the rest of the region.
       (The raw strongest node can sit in a corner, which wrecks the
       locality of hub-patterned programs such as Bernstein-Vazirani.) *)
    let closeness v =
      List.fold_left (fun acc u -> acc +. reliability.(v).(u)) 0.0 region
    in
    let anchor =
      List.fold_left
        (fun champion candidate ->
          if closeness candidate < closeness champion then candidate
          else champion)
        (List.hd region) region
    in
    greedy_place ~node_penalty ~candidates:region ~distance ~anchor
      interactions activity
    |> layout_of_placement ~programs ~physicals

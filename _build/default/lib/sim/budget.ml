open Vqc_circuit
module Device = Vqc_device.Device

type resource =
  | Link of int * int
  | One_qubit_gates of int
  | Readout of int
  | Idle of int

type line = {
  resource : resource;
  uses : int;
  log_failure : float;
  share : float;
}

let neg_log p = -.log (Float.max 1e-12 p)

let analyze ?(coherence = true)
    ?(coherence_scale = Reliability.default_coherence_scale) device circuit =
  let table : (resource, float * int) Hashtbl.t = Hashtbl.create 32 in
  let charge resource amount =
    let total, uses =
      Option.value (Hashtbl.find_opt table resource) ~default:(0.0, 0)
    in
    Hashtbl.replace table resource (total +. amount, uses + 1)
  in
  List.iter
    (fun gate ->
      let cost = neg_log (Reliability.gate_success device gate) in
      match gate with
      | Gate.One_qubit (_, q) -> charge (One_qubit_gates q) cost
      | Gate.Cnot { control; target } ->
        charge (Link (min control target, max control target)) cost
      | Gate.Swap (a, b) -> charge (Link (min a b, max a b)) cost
      | Gate.Measure { qubit; _ } -> charge (Readout qubit) cost
      | Gate.Barrier _ -> ())
    (Circuit.gates circuit);
  if coherence then begin
    let schedule = Schedule.build device circuit in
    List.iter
      (fun q ->
        let survival =
          Reliability.coherence_survival ~scale:coherence_scale device schedule q
        in
        let cost = neg_log survival in
        if cost > 1e-12 then begin
          let total, uses =
            Option.value (Hashtbl.find_opt table (Idle q)) ~default:(0.0, 0)
          in
          (* idle lines count exposure, not operations *)
          Hashtbl.replace table (Idle q) (total +. cost, uses)
        end)
      (Circuit.used_qubits circuit)
  end;
  let total =
    Hashtbl.fold (fun _ (amount, _) acc -> acc +. amount) table 0.0
  in
  Hashtbl.fold
    (fun resource (log_failure, uses) acc ->
      {
        resource;
        uses;
        log_failure;
        share = (if total > 0.0 then log_failure /. total else 0.0);
      }
      :: acc)
    table []
  |> List.sort (fun a b -> compare b.log_failure a.log_failure)

let total_log_failure lines =
  List.fold_left (fun acc line -> acc +. line.log_failure) 0.0 lines

let resource_label = function
  | Link (u, v) -> Printf.sprintf "link %d--%d" u v
  | One_qubit_gates q -> Printf.sprintf "1q gates on q%d" q
  | Readout q -> Printf.sprintf "readout of q%d" q
  | Idle q -> Printf.sprintf "idle decay of q%d" q

let pp_line ppf line =
  Format.fprintf ppf "%-20s %4d ops  -log p = %.4f  (%4.1f%%)"
    (resource_label line.resource)
    line.uses line.log_failure (100.0 *. line.share)

let pp ppf lines =
  Format.fprintf ppf "@[<v>";
  List.iter (fun line -> Format.fprintf ppf "%a@," pp_line line) lines;
  Format.fprintf ppf "total -log PST = %.4f@]" (total_log_failure lines)

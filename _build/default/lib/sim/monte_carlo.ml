open Vqc_circuit
module Rng = Vqc_rng.Rng

type result = {
  trials : int;
  successes : int;
  pst : float;
  ci95 : float;
}

let run ?(coherence = true)
    ?(coherence_scale = Reliability.default_coherence_scale)
    ?(crosstalk_strength = 0.0) ~trials rng device circuit =
  if trials <= 0 then invalid_arg "Monte_carlo.run: need positive trials";
  (* Per-operation failure probabilities, fixed across trials.  The order
     of the events is irrelevant (a trial fails if ANY event fires), so
     under crosstalk the two-qubit failures come from the schedule-order
     inflation list and the rest from the circuit. *)
  let one_qubit_and_measure_failures =
    Circuit.gates circuit
    |> List.filter_map (fun gate ->
           match gate with
           | Gate.Barrier _ | Gate.Cnot _ | Gate.Swap _ -> None
           | Gate.One_qubit _ | Gate.Measure _ ->
             Some (1.0 -. Reliability.gate_success device gate))
  in
  let two_qubit_failures =
    if crosstalk_strength <= 0.0 then
      Circuit.gates circuit
      |> List.filter_map (fun gate ->
             match gate with
             | Gate.Cnot _ | Gate.Swap _ ->
               Some (1.0 -. Reliability.gate_success device gate)
             | Gate.One_qubit _ | Gate.Measure _ | Gate.Barrier _ -> None)
    else
      Crosstalk.inflation_factors ~strength:crosstalk_strength device
        (Schedule.build device circuit)
      |> List.map (fun (gate, factor) ->
             let e = 1.0 -. Reliability.gate_success device gate in
             Float.min 0.5 (e *. factor))
  in
  let gate_failures = one_qubit_and_measure_failures @ two_qubit_failures in
  let coherence_failures =
    if not coherence then []
    else begin
      let schedule = Schedule.build device circuit in
      List.map
        (fun q ->
          1.0
          -. Reliability.coherence_survival ~scale:coherence_scale device
               schedule q)
        (Circuit.used_qubits circuit)
    end
  in
  let failure_probabilities =
    Array.of_list (gate_failures @ coherence_failures)
  in
  let events = Array.length failure_probabilities in
  let successes = ref 0 in
  for _ = 1 to trials do
    let rec error_free i =
      i >= events
      || ((not (Rng.bernoulli rng failure_probabilities.(i)))
         && error_free (i + 1))
    in
    if error_free 0 then incr successes
  done;
  let pst = float_of_int !successes /. float_of_int trials in
  let ci95 =
    1.96 *. sqrt (Float.max 0.0 (pst *. (1.0 -. pst)) /. float_of_int trials)
  in
  { trials; successes = !successes; pst; ci95 }

let pp_result ppf r =
  Format.fprintf ppf "PST = %.4f +/- %.4f  (%d/%d trials)" r.pst r.ci95
    r.successes r.trials

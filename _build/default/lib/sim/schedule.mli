(** ASAP scheduling of a physical (post-mapping) circuit onto a device's
    gate-time model.

    The schedule provides what the coherence-error model needs: the total
    trial duration and, for each qubit, the {e exposure window} (from its
    first gate to its last) and the idle time inside that window during
    which the qubit holds state but performs no operation. *)

open Vqc_circuit

type timed_gate = {
  gate : Gate.t;
  start_ns : float;
  finish_ns : float;
}

type t = {
  ops : timed_gate list;  (** in start-time order *)
  duration_ns : float;  (** completion time of the last gate *)
  busy_ns : float array;  (** per-qubit total gate time *)
  exposure_ns : float array;  (** per-qubit first-gate → last-gate window *)
}

val gate_duration_ns : Vqc_device.Device.t -> Gate.t -> float
(** SWAPs cost three CNOT times; barriers cost zero. *)

val build : Vqc_device.Device.t -> Circuit.t -> t
(** ASAP schedule: each gate starts when all its qubits are free.
    Barriers synchronize their qubits.
    @raise Invalid_argument if the circuit is wider than the device. *)

val build_alap : Vqc_device.Device.t -> Circuit.t -> t
(** As-late-as-possible schedule: same total duration and dependency
    order as {!build}, but every gate is pushed as late as its dependents
    allow.  A qubit's first gate moves later, shrinking its exposure
    window — the standard idle-reduction trick (a |0> qubit does not
    decohere, so delaying state preparation costs nothing). *)

val idle_ns : t -> int -> float
(** [exposure - busy] for a qubit (0 for unused qubits). *)

open Vqc_circuit
module Device = Vqc_device.Device

let default_strength = 0.3

(* Two couplers are adjacent when they share a qubit or some coupler
   connects a qubit of one to a qubit of the other. *)
let couplers_adjacent device (a1, a2) (b1, b2) =
  a1 = b1 || a1 = b2 || a2 = b1 || a2 = b2
  || Device.connected device a1 b1
  || Device.connected device a1 b2
  || Device.connected device a2 b1
  || Device.connected device a2 b2

let two_qubit_ops schedule =
  List.filter_map
    (fun timed ->
      match timed.Schedule.gate with
      | Gate.Cnot { control; target } -> Some (timed, (control, target))
      | Gate.Swap (a, b) -> Some (timed, (a, b))
      | Gate.One_qubit _ | Gate.Measure _ | Gate.Barrier _ -> None)
    schedule.Schedule.ops

let overlap a b =
  a.Schedule.start_ns < b.Schedule.finish_ns
  && b.Schedule.start_ns < a.Schedule.finish_ns

let inflation_factors ?(strength = default_strength) device schedule =
  if strength < 0.0 then invalid_arg "Crosstalk: negative strength";
  let ops = two_qubit_ops schedule in
  List.map
    (fun (timed, coupler) ->
      let neighbours =
        List.length
          (List.filter
             (fun (other, other_coupler) ->
               (not (other == timed))
               && overlap timed other
               && couplers_adjacent device coupler other_coupler)
             ops)
      in
      (timed.Schedule.gate, 1.0 +. (strength *. float_of_int neighbours)))
    ops

let pst ?(strength = default_strength) ?coherence ?coherence_scale device
    circuit =
  let base = Reliability.analyze ?coherence ?coherence_scale device circuit in
  let schedule = Schedule.build device circuit in
  (* replace each 2q gate's success with its inflated version *)
  let adjustment =
    List.fold_left
      (fun acc (gate, factor) ->
        let e = 1.0 -. Reliability.gate_success device gate in
        let inflated = Float.min 0.5 (e *. factor) in
        acc
        *. (Float.max 1e-12 (1.0 -. inflated) /. Float.max 1e-12 (1.0 -. e)))
      1.0
      (inflation_factors ~strength device schedule)
  in
  base.Reliability.pst *. adjustment

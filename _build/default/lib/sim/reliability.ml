open Vqc_circuit
module Device = Vqc_device.Device
module Calibration = Vqc_device.Calibration

type breakdown = {
  pst : float;
  one_qubit_success : float;
  two_qubit_success : float;
  measure_success : float;
  coherence_survival : float;
  duration_ns : float;
}

let gate_success device gate =
  let calibration = Device.calibration device in
  match gate with
  | Gate.One_qubit (_, q) ->
    1.0 -. (Calibration.qubit calibration q).Calibration.error_1q
  | Gate.Cnot { control; target } -> Device.cnot_success device control target
  | Gate.Swap (a, b) -> Device.swap_success device a b
  | Gate.Measure { qubit; _ } ->
    1.0 -. (Calibration.qubit calibration qubit).Calibration.error_readout
  | Gate.Barrier _ -> 1.0

let default_coherence_scale = 0.02

let coherence_survival ?(scale = default_coherence_scale) device schedule q =
  let idle = Schedule.idle_ns schedule q in
  let figures = Calibration.qubit (Device.calibration device) q in
  let t1_ns = figures.Calibration.t1_us *. 1000.0 in
  let t2_ns = figures.Calibration.t2_us *. 1000.0 in
  exp (-.scale *. idle *. ((1.0 /. t1_ns) +. (1.0 /. t2_ns)))

let analyze ?(coherence = true) ?(coherence_scale = default_coherence_scale)
    ?(alap = false) device circuit =
  let schedule =
    if alap then Schedule.build_alap device circuit
    else Schedule.build device circuit
  in
  let one_q = ref 1.0 and two_q = ref 1.0 and measure = ref 1.0 in
  let account gate =
    let p = gate_success device gate in
    match gate with
    | Gate.One_qubit _ -> one_q := !one_q *. p
    | Gate.Cnot _ | Gate.Swap _ -> two_q := !two_q *. p
    | Gate.Measure _ -> measure := !measure *. p
    | Gate.Barrier _ -> ()
  in
  List.iter account (Circuit.gates circuit);
  let survival =
    if not coherence then 1.0
    else
      List.fold_left
        (fun acc q ->
          acc *. coherence_survival ~scale:coherence_scale device schedule q)
        1.0
        (Circuit.used_qubits circuit)
  in
  {
    pst = !one_q *. !two_q *. !measure *. survival;
    one_qubit_success = !one_q;
    two_qubit_success = !two_q;
    measure_success = !measure;
    coherence_survival = survival;
    duration_ns = schedule.Schedule.duration_ns;
  }

let pst ?coherence ?coherence_scale ?alap device circuit =
  (analyze ?coherence ?coherence_scale ?alap device circuit).pst

let pp_breakdown ppf b =
  Format.fprintf ppf
    "@[<v>PST                 %.6f@,1q gate success     %.6f@,2q gate \
     success     %.6f@,measure success     %.6f@,coherence survival  \
     %.6f@,duration            %.0f ns@]"
    b.pst b.one_qubit_success b.two_qubit_success b.measure_success
    b.coherence_survival b.duration_ns

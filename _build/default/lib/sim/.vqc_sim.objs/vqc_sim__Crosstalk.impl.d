lib/sim/crosstalk.ml: Float Gate List Reliability Schedule Vqc_circuit Vqc_device

lib/sim/monte_carlo.ml: Array Circuit Crosstalk Float Format Gate List Reliability Schedule Vqc_circuit Vqc_rng

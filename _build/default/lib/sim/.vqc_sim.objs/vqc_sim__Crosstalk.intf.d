lib/sim/crosstalk.mli: Circuit Gate Schedule Vqc_circuit Vqc_device

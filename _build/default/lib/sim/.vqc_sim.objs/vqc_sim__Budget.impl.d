lib/sim/budget.ml: Circuit Float Format Gate Hashtbl List Option Printf Reliability Schedule Vqc_circuit Vqc_device

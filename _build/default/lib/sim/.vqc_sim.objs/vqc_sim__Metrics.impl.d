lib/sim/metrics.ml: List

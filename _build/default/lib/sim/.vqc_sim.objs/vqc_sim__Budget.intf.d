lib/sim/budget.mli: Circuit Format Vqc_circuit Vqc_device

lib/sim/reliability.ml: Circuit Format Gate List Schedule Vqc_circuit Vqc_device

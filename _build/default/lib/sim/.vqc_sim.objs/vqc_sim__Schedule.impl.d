lib/sim/schedule.ml: Array Circuit Float Fun Gate List Vqc_circuit Vqc_device

lib/sim/metrics.mli:

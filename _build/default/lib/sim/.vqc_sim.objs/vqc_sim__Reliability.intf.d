lib/sim/reliability.mli: Circuit Format Gate Schedule Vqc_circuit Vqc_device

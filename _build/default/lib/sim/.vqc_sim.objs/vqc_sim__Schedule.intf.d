lib/sim/schedule.mli: Circuit Gate Vqc_circuit Vqc_device

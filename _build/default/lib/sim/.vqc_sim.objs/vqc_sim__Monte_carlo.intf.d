lib/sim/monte_carlo.mli: Circuit Format Vqc_circuit Vqc_device Vqc_rng

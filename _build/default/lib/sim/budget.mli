(** Error-budget analysis: where does a compiled circuit lose its PST?

    Attributes each operation's [-log success] to the hardware resource
    that executes it (a coupler, a qubit's 1q gates, a qubit's readout,
    or a qubit's idle decoherence) and ranks the resources by their share
    of the total log-failure.  This is the "explain" tool behind the
    policies: the baseline's budget is dominated by a few weak links, and
    the variation-aware plans show those lines shrinking. *)

open Vqc_circuit

type resource =
  | Link of int * int  (** coupler, [u < v], charged by CNOT/SWAP use *)
  | One_qubit_gates of int
  | Readout of int
  | Idle of int  (** coherence exposure of a qubit *)

type line = {
  resource : resource;
  uses : int;  (** operations charged to the resource (0 for [Idle]) *)
  log_failure : float;  (** total [-log success] attributed *)
  share : float;  (** fraction of the circuit's total log-failure *)
}

val analyze :
  ?coherence:bool ->
  ?coherence_scale:float ->
  Vqc_device.Device.t ->
  Circuit.t ->
  line list
(** Budget lines sorted by decreasing [log_failure].  The sum of
    [log_failure] equals [-log PST] (up to rounding); shares sum to 1
    when the total is non-zero. *)

val total_log_failure : line list -> float

val pp_line : Format.formatter -> line -> unit
val pp : Format.formatter -> line list -> unit
(** Print the top lines of a budget as a table. *)

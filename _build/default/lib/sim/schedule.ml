open Vqc_circuit
module Device = Vqc_device.Device

type timed_gate = {
  gate : Gate.t;
  start_ns : float;
  finish_ns : float;
}

type t = {
  ops : timed_gate list;
  duration_ns : float;
  busy_ns : float array;
  exposure_ns : float array;
}

let gate_duration_ns device gate =
  let times = Device.gate_times device in
  match gate with
  | Gate.One_qubit _ -> times.Device.t_1q_ns
  | Gate.Cnot _ -> times.Device.t_2q_ns
  | Gate.Swap _ -> 3.0 *. times.Device.t_2q_ns
  | Gate.Measure _ -> times.Device.t_measure_ns
  | Gate.Barrier _ -> 0.0

let build device circuit =
  let n = Device.num_qubits device in
  if Circuit.num_qubits circuit > n then
    invalid_arg "Schedule.build: circuit wider than device";
  let free_at = Array.make n 0.0 in
  let busy_ns = Array.make n 0.0 in
  let first_start = Array.make n Float.infinity in
  let last_finish = Array.make n 0.0 in
  let ops = ref [] in
  let place gate =
    match gate with
    | Gate.Barrier qs ->
      let qs = if qs = [] then List.init n Fun.id else qs in
      let sync = List.fold_left (fun acc q -> Float.max acc free_at.(q)) 0.0 qs in
      List.iter (fun q -> free_at.(q) <- sync) qs
    | Gate.One_qubit _ | Gate.Cnot _ | Gate.Swap _ | Gate.Measure _ ->
      let qs = Gate.qubits gate in
      let start_ns =
        List.fold_left (fun acc q -> Float.max acc free_at.(q)) 0.0 qs
      in
      let duration = gate_duration_ns device gate in
      let finish_ns = start_ns +. duration in
      List.iter
        (fun q ->
          free_at.(q) <- finish_ns;
          busy_ns.(q) <- busy_ns.(q) +. duration;
          first_start.(q) <- Float.min first_start.(q) start_ns;
          last_finish.(q) <- Float.max last_finish.(q) finish_ns)
        qs;
      ops := { gate; start_ns; finish_ns } :: !ops
  in
  List.iter place (Circuit.gates circuit);
  let exposure_ns =
    Array.init n (fun q ->
        if first_start.(q) = Float.infinity then 0.0
        else last_finish.(q) -. first_start.(q))
  in
  let duration_ns = Array.fold_left Float.max 0.0 last_finish in
  {
    ops =
      List.stable_sort
        (fun a b -> Float.compare a.start_ns b.start_ns)
        (List.rev !ops);
    duration_ns;
    busy_ns;
    exposure_ns;
  }

let idle_ns schedule q =
  Float.max 0.0 (schedule.exposure_ns.(q) -. schedule.busy_ns.(q))

let build_alap device circuit =
  let n = Device.num_qubits device in
  if Circuit.num_qubits circuit > n then
    invalid_arg "Schedule.build_alap: circuit wider than device";
  let horizon = (build device circuit).duration_ns in
  (* backward pass: each qubit's next-use time, initialized to the end *)
  let due_at = Array.make n horizon in
  let busy_ns = Array.make n 0.0 in
  let first_start = Array.make n Float.infinity in
  let last_finish = Array.make n 0.0 in
  let ops = ref [] in
  let place gate =
    match gate with
    | Gate.Barrier qs ->
      let qs = if qs = [] then List.init n Fun.id else qs in
      let sync = List.fold_left (fun acc q -> Float.min acc due_at.(q)) horizon qs in
      List.iter (fun q -> due_at.(q) <- sync) qs
    | Gate.One_qubit _ | Gate.Cnot _ | Gate.Swap _ | Gate.Measure _ ->
      let qs = Gate.qubits gate in
      let finish_ns =
        List.fold_left (fun acc q -> Float.min acc due_at.(q)) horizon qs
      in
      let duration = gate_duration_ns device gate in
      let start_ns = finish_ns -. duration in
      List.iter
        (fun q ->
          due_at.(q) <- start_ns;
          busy_ns.(q) <- busy_ns.(q) +. duration;
          first_start.(q) <- Float.min first_start.(q) start_ns;
          last_finish.(q) <- Float.max last_finish.(q) finish_ns)
        qs;
      ops := { gate; start_ns; finish_ns } :: !ops
  in
  List.iter place (List.rev (Circuit.gates circuit));
  (* shift so the earliest start sits at 0 (pure relabeling of time) *)
  let earliest =
    List.fold_left (fun acc op -> Float.min acc op.start_ns) 0.0 !ops
  in
  let shift t = t -. earliest in
  let exposure_ns =
    Array.init n (fun q ->
        if first_start.(q) = Float.infinity then 0.0
        else last_finish.(q) -. first_start.(q))
  in
  let duration_ns =
    List.fold_left (fun acc op -> Float.max acc (shift op.finish_ns)) 0.0 !ops
  in
  {
    ops =
      List.stable_sort
        (fun a b -> Float.compare a.start_ns b.start_ns)
        (List.map
           (fun op ->
             { op with start_ns = shift op.start_ns; finish_ns = shift op.finish_ns })
           !ops);
    duration_ns;
    busy_ns;
    exposure_ns;
  }

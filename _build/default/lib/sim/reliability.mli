(** Analytic Probability of a Successful Trial (PST).

    Under the paper's error model (Section 4.3/4.4) every operation fails
    independently, so the exact PST is the product of per-operation
    success probabilities, times each active qubit's coherence survival
    over its idle time.  The Monte-Carlo engine ({!Monte_carlo}) estimates
    the same quantity by fault injection; the two must agree within
    sampling noise — a property the test suite checks. *)

open Vqc_circuit

type breakdown = {
  pst : float;
  one_qubit_success : float;  (** product over 1-q gates *)
  two_qubit_success : float;  (** product over CNOT/SWAP gates *)
  measure_success : float;  (** product over measurements *)
  coherence_survival : float;  (** product over active qubits *)
  duration_ns : float;
}

val gate_success : Vqc_device.Device.t -> Gate.t -> float
(** Success probability of one gate on {e physical} qubits.  SWAPs count
    as three CNOTs.  Barriers succeed with probability 1.
    @raise Invalid_argument if a two-qubit gate spans uncoupled qubits. *)

val default_coherence_scale : float
(** Weight of the idle-decay exponent (0.02).  The paper's simulator
    charges coherence errors lightly: Section 4.4 reports that for bv-20
    gate errors are ~16x more likely to cause a failed trial than
    coherence errors.  A raw [exp (-idle (1/T1 + 1/T2))] accumulated over
    every qubit overwhelms that ratio on hub-serialized circuits, so the
    exponent is scaled down to the paper's regime; the test suite pins
    the resulting gate/coherence failure ratio to the paper's ballpark,
    and an ablation bench sweeps the scale. *)

val coherence_survival :
  ?scale:float -> Vqc_device.Device.t -> Schedule.t -> int -> float
(** Probability that a qubit keeps its state over its idle time:
    [exp (-scale * idle * (1/T1 + 1/T2))]. *)

val analyze :
  ?coherence:bool ->
  ?coherence_scale:float ->
  ?alap:bool ->
  Vqc_device.Device.t ->
  Circuit.t ->
  breakdown
(** Exact PST of a physical circuit ([coherence] defaults to [true]).
    [alap] (default [false]) charges idle decay against the
    as-late-as-possible schedule instead of ASAP — delayed state
    preparation shortens exposure windows ({!Schedule.build_alap}). *)

val pst :
  ?coherence:bool ->
  ?coherence_scale:float ->
  ?alap:bool ->
  Vqc_device.Device.t ->
  Circuit.t ->
  float
(** [(analyze d c).pst]. *)

val pp_breakdown : Format.formatter -> breakdown -> unit

(** Optional crosstalk extension to the error model.

    The paper's model treats every operation as an independent Bernoulli
    trial and lists "no correlations between errors" as a limitation
    (Section 9).  This module supplies the simplest physically-motivated
    refinement: two-qubit gates that execute {e simultaneously} on
    {e adjacent} couplers (sharing a qubit or connected by a coupler)
    interfere, inflating each other's error rates — the dominant
    correlated-noise mechanism reported for fixed-frequency transmon
    devices.

    The inflation is multiplicative on the error rate:
    [e' = min (e * (1 + strength * neighbours), 0.5)] where [neighbours]
    counts simultaneous 2q gates on adjacent couplers (overlapping
    execution windows in the ASAP schedule). *)

open Vqc_circuit

val default_strength : float
(** 0.3 — a 2q gate running next to one simultaneous neighbour gets a
    30% relative error increase, in the range reported by crosstalk
    characterization studies of IBM devices. *)

val inflation_factors :
  ?strength:float -> Vqc_device.Device.t -> Schedule.t -> (Gate.t * float) list
(** Per-two-qubit-gate inflation factor (>= 1) for a scheduled circuit,
    in schedule order.  One-qubit gates and measurements are unaffected
    (factor 1 entries are omitted only for non-2q gates). *)

val pst :
  ?strength:float ->
  ?coherence:bool ->
  ?coherence_scale:float ->
  Vqc_device.Device.t ->
  Circuit.t ->
  float
(** Analytic PST under the crosstalk-inflated error model.  With
    [strength = 0] this equals {!Reliability.pst}. *)

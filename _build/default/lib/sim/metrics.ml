let relative ~baseline x =
  if baseline <= 0.0 then invalid_arg "Metrics.relative: non-positive baseline";
  x /. baseline

let geomean values =
  match values with
  | [] -> invalid_arg "Metrics.geomean: empty list"
  | _ ->
    let log_sum =
      List.fold_left
        (fun acc v ->
          if v <= 0.0 then invalid_arg "Metrics.geomean: non-positive value";
          acc +. log v)
        0.0 values
    in
    exp (log_sum /. float_of_int (List.length values))

let stpt ~pst ~duration_ns =
  if duration_ns <= 0.0 then invalid_arg "Metrics.stpt: non-positive duration";
  pst /. (duration_ns *. 1e-9)

let stpt_concurrent copies =
  List.fold_left
    (fun acc (pst, duration_ns) -> acc +. stpt ~pst ~duration_ns)
    0.0 copies

(** Figures of merit (paper Sections 4.1 and 8.2).

    PST is the probability that one trial finishes error-free; STPT
    (Successful Trials Per unit Time) additionally values trial rate, the
    metric of the partitioning case study. *)

val relative : baseline:float -> float -> float
(** [relative ~baseline x = x /. baseline].
    @raise Invalid_argument if [baseline <= 0]. *)

val geomean : float list -> float
(** Geometric mean of positive values.
    @raise Invalid_argument on an empty list or a non-positive value. *)

val stpt : pst:float -> duration_ns:float -> float
(** Expected successful trials per second for back-to-back trials:
    [pst / duration_seconds].
    @raise Invalid_argument if [duration_ns <= 0]. *)

val stpt_concurrent : (float * float) list -> float
(** STPT of several copies running concurrently: each [(pst, duration)]
    copy contributes its own trial stream; total successful trials per
    second is the sum. *)

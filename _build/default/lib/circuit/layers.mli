(** Layer partitioning (paper Section 4.5, step 3).

    A layer is a set of gates acting on pairwise-disjoint qubits that can
    execute in parallel while respecting program order.  The mapper walks
    the layer list and inserts SWAPs between consecutive layers. *)

val partition : Circuit.t -> Gate.t list list
(** ASAP layering: each gate is placed in the earliest layer after the
    last gate touching any of its qubits.  Barriers synchronize their
    qubits but do not appear in the output.  Within a layer gates keep
    program order. *)

val two_qubit_pairs : Gate.t list -> (int * int) list
(** The (control/first, target/second) qubit pairs of the CNOT and SWAP
    gates of a layer, in order. *)

val count : Circuit.t -> int
(** Number of layers ([List.length (partition c)]). *)

(** Quantum circuits: an ordered list of {!Gate.t} over a fixed number of
    qubits and classical bits, with the statistics reported in the paper's
    Table 1. *)

type t

val create : ?cbits:int -> int -> t
(** [create ~cbits n] is the empty circuit on [n] qubits and [cbits]
    classical bits ([cbits] defaults to [n]).
    @raise Invalid_argument on negative sizes. *)

val of_gates : ?cbits:int -> int -> Gate.t list -> t
(** Build a circuit and validate every gate against the qubit/cbit ranges.
    @raise Invalid_argument if a gate references an out-of-range qubit or
    classical bit, or a two-qubit gate with identical operands. *)

val num_qubits : t -> int
val num_cbits : t -> int
val gates : t -> Gate.t list
(** Gates in program order. *)

val length : t -> int
(** Total number of gates (barriers included). *)

val append : t -> Gate.t -> t
(** Functional append with the same validation as {!of_gates}. *)

val concat : t -> t -> t
(** Sequential composition; both circuits must have identical sizes. *)

val relabel : (int -> int) -> t -> t
(** Rename every qubit operand; sizes are unchanged.  Used to apply an
    initial program-to-physical allocation. *)

val used_qubits : t -> int list
(** Distinct qubits referenced by at least one gate, sorted. *)

(** Table 1 columns for a compiled or source circuit. *)
type stats = {
  qubits_used : int;
  total_gates : int;  (** all gates except barriers *)
  one_qubit_gates : int;
  two_qubit_gates : int;  (** CNOT + SWAP *)
  cnot_gates : int;
  swap_gates : int;
  measurements : int;
  depth : int;  (** number of dependency layers, barriers excluded *)
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit

val interaction_counts : t -> ((int * int) * int) list
(** CNOT/SWAP activity per unordered qubit pair, sorted by decreasing
    count.  This is the "qubit activity" input of VQA (Section 6.2). *)

val qubit_activity : t -> int array
(** [qubit_activity c] counts two-qubit gates touching each qubit. *)

val decompose_swaps : t -> t
(** Replace every SWAP with the 3-CNOT expansion of paper Figure 2(d). *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

(** Quantum gates.

    Qubit operands are plain integers; before mapping they denote {e
    program} qubits, after mapping they denote {e physical} qubits.  The
    gate set covers what the paper's benchmarks need (Clifford+T plus
    parametric rotations, CNOT, SWAP, measurement, barrier) and matches the
    OpenQASM 2.0 standard-gate names emitted by {!Qasm}. *)

type one_qubit_kind =
  | H
  | X
  | Y
  | Z
  | S
  | Sdg
  | T
  | Tdg
  | Rx of float
  | Ry of float
  | Rz of float
  | U1 of float  (** phase gate; synonym of [Rz] up to global phase *)

type t =
  | One_qubit of one_qubit_kind * int
  | Cnot of { control : int; target : int }
  | Swap of int * int
  | Measure of { qubit : int; cbit : int }
  | Barrier of int list
      (** Synchronization across the listed qubits; [[]] means all. *)

val qubits : t -> int list
(** Qubits the gate acts on (distinct, in operand order). *)

val is_two_qubit : t -> bool
(** True for [Cnot] and [Swap] — the operations whose error rates dominate
    (paper Section 2.2). *)

val is_unitary : t -> bool
(** False for [Measure] and [Barrier]. *)

val relabel : (int -> int) -> t -> t
(** Apply a qubit renaming (classical bits are left unchanged).
    @raise Invalid_argument if the renaming maps a two-qubit gate's
    operands to the same qubit. *)

val one_qubit_name : one_qubit_kind -> string
(** OpenQASM mnemonic, e.g. ["rz"]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

lib/circuit/layers.mli: Circuit Gate

lib/circuit/circuit.ml: Array Format Fun Gate Hashtbl List Option Printf

lib/circuit/dag.ml: Array Circuit Fun Gate List Printf

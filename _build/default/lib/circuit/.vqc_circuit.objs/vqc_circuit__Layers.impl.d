lib/circuit/layers.ml: Array Circuit Fun Gate List

lib/circuit/qasm.ml: Buffer Char Circuit Float Gate List Printf String

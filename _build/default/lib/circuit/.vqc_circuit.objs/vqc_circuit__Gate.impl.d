lib/circuit/gate.ml: Float Format List Printf String

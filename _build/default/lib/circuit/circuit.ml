type t = {
  num_qubits : int;
  num_cbits : int;
  rev_gates : Gate.t list;  (* reverse program order for O(1) append *)
}

let create ?cbits num_qubits =
  let num_cbits = Option.value cbits ~default:num_qubits in
  if num_qubits < 0 then invalid_arg "Circuit.create: negative qubit count";
  if num_cbits < 0 then invalid_arg "Circuit.create: negative cbit count";
  { num_qubits; num_cbits; rev_gates = [] }

let num_qubits c = c.num_qubits
let num_cbits c = c.num_cbits
let gates c = List.rev c.rev_gates
let length c = List.length c.rev_gates

let validate c gate =
  let check_qubit q =
    if q < 0 || q >= c.num_qubits then
      invalid_arg
        (Printf.sprintf "Circuit: gate %s references qubit %d outside [0, %d)"
           (Gate.to_string gate) q c.num_qubits)
  in
  List.iter check_qubit (Gate.qubits gate);
  (match gate with
  | Gate.Measure { cbit; _ } ->
    if cbit < 0 || cbit >= c.num_cbits then
      invalid_arg
        (Printf.sprintf "Circuit: measurement into cbit %d outside [0, %d)"
           cbit c.num_cbits)
  | Gate.One_qubit _ | Gate.Cnot _ | Gate.Swap _ | Gate.Barrier _ -> ());
  match gate with
  | Gate.Cnot { control; target } when control = target ->
    invalid_arg "Circuit: cnot with identical operands"
  | Gate.Swap (a, b) when a = b ->
    invalid_arg "Circuit: swap with identical operands"
  | Gate.One_qubit _ | Gate.Cnot _ | Gate.Swap _ | Gate.Measure _
  | Gate.Barrier _ ->
    ()

let append c gate =
  validate c gate;
  { c with rev_gates = gate :: c.rev_gates }

let of_gates ?cbits num_qubits gate_list =
  List.fold_left append (create ?cbits num_qubits) gate_list

let concat a b =
  if a.num_qubits <> b.num_qubits || a.num_cbits <> b.num_cbits then
    invalid_arg "Circuit.concat: size mismatch";
  { a with rev_gates = b.rev_gates @ a.rev_gates }

let relabel f c = of_gates ~cbits:c.num_cbits c.num_qubits (List.map (Gate.relabel f) (gates c))

let used_qubits c =
  let seen = Array.make c.num_qubits false in
  List.iter
    (fun gate -> List.iter (fun q -> seen.(q) <- true) (Gate.qubits gate))
    c.rev_gates;
  let used = ref [] in
  for q = c.num_qubits - 1 downto 0 do
    if seen.(q) then used := q :: !used
  done;
  !used

type stats = {
  qubits_used : int;
  total_gates : int;
  one_qubit_gates : int;
  two_qubit_gates : int;
  cnot_gates : int;
  swap_gates : int;
  measurements : int;
  depth : int;
}

(* ASAP depth: a gate sits one layer after the latest gate on any operand.
   Barriers advance every listed qubit to a common layer without counting
   as a layer of work themselves. *)
let depth c =
  if c.num_qubits = 0 then 0
  else begin
    let frontier = Array.make c.num_qubits 0 in
    let measure_gate gate =
      match gate with
      | Gate.Barrier qs ->
        let qs = if qs = [] then List.init c.num_qubits Fun.id else qs in
        let level = List.fold_left (fun acc q -> max acc frontier.(q)) 0 qs in
        List.iter (fun q -> frontier.(q) <- level) qs
      | Gate.One_qubit _ | Gate.Cnot _ | Gate.Swap _ | Gate.Measure _ ->
        let qs = Gate.qubits gate in
        let level = List.fold_left (fun acc q -> max acc frontier.(q)) 0 qs in
        List.iter (fun q -> frontier.(q) <- level + 1) qs
    in
    List.iter measure_gate (gates c);
    Array.fold_left max 0 frontier
  end

let stats c =
  let count pred = List.length (List.filter pred c.rev_gates) in
  let one_qubit_gates =
    count (function Gate.One_qubit _ -> true | _ -> false)
  in
  let cnot_gates = count (function Gate.Cnot _ -> true | _ -> false) in
  let swap_gates = count (function Gate.Swap _ -> true | _ -> false) in
  let measurements = count (function Gate.Measure _ -> true | _ -> false) in
  {
    qubits_used = List.length (used_qubits c);
    total_gates = one_qubit_gates + cnot_gates + swap_gates + measurements;
    one_qubit_gates;
    two_qubit_gates = cnot_gates + swap_gates;
    cnot_gates;
    swap_gates;
    measurements;
    depth = depth c;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<v>qubits used: %d@,total gates: %d@,1q gates:    %d@,2q gates:    \
     %d (cx %d, swap %d)@,measures:    %d@,depth:       %d@]"
    s.qubits_used s.total_gates s.one_qubit_gates s.two_qubit_gates
    s.cnot_gates s.swap_gates s.measurements s.depth

let interaction_counts c =
  let table = Hashtbl.create 32 in
  let record a b =
    let key = (min a b, max a b) in
    let current = Option.value (Hashtbl.find_opt table key) ~default:0 in
    Hashtbl.replace table key (current + 1)
  in
  List.iter
    (function
      | Gate.Cnot { control; target } -> record control target
      | Gate.Swap (a, b) -> record a b
      | Gate.One_qubit _ | Gate.Measure _ | Gate.Barrier _ -> ())
    c.rev_gates;
  Hashtbl.fold (fun pair count acc -> (pair, count) :: acc) table []
  |> List.sort (fun (pa, ca) (pb, cb) ->
         match compare cb ca with 0 -> compare pa pb | order -> order)

let qubit_activity c =
  let activity = Array.make c.num_qubits 0 in
  List.iter
    (fun gate ->
      if Gate.is_two_qubit gate then
        List.iter (fun q -> activity.(q) <- activity.(q) + 1) (Gate.qubits gate))
    c.rev_gates;
  activity

let decompose_swaps c =
  let expand gate =
    match gate with
    | Gate.Swap (a, b) ->
      [
        Gate.Cnot { control = a; target = b };
        Gate.Cnot { control = b; target = a };
        Gate.Cnot { control = a; target = b };
      ]
    | Gate.One_qubit _ | Gate.Cnot _ | Gate.Measure _ | Gate.Barrier _ ->
      [ gate ]
  in
  of_gates ~cbits:c.num_cbits c.num_qubits (List.concat_map expand (gates c))

let pp ppf c =
  Format.fprintf ppf "@[<v>circuit (%d qubits, %d cbits, %d gates)"
    c.num_qubits c.num_cbits (length c);
  List.iter (fun g -> Format.fprintf ppf "@,  %a" Gate.pp g) (gates c);
  Format.fprintf ppf "@]"

let equal a b =
  a.num_qubits = b.num_qubits
  && a.num_cbits = b.num_cbits
  && List.length a.rev_gates = List.length b.rev_gates
  && List.for_all2 Gate.equal a.rev_gates b.rev_gates

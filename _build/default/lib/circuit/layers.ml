let partition c =
  let n = Circuit.num_qubits c in
  let frontier = Array.make (max n 1) 0 in
  (* layers are built in reverse, each layer in reverse gate order *)
  let layers : Gate.t list array ref = ref (Array.make 0 []) in
  let ensure_layer index =
    let current = !layers in
    if index >= Array.length current then begin
      let bigger = Array.make (max 8 (2 * (index + 1))) [] in
      Array.blit current 0 bigger 0 (Array.length current);
      layers := bigger
    end
  in
  let place gate =
    match gate with
    | Gate.Barrier qs ->
      let qs = if qs = [] then List.init n Fun.id else qs in
      let level = List.fold_left (fun acc q -> max acc frontier.(q)) 0 qs in
      List.iter (fun q -> frontier.(q) <- level) qs
    | Gate.One_qubit _ | Gate.Cnot _ | Gate.Swap _ | Gate.Measure _ ->
      let qs = Gate.qubits gate in
      let level = List.fold_left (fun acc q -> max acc frontier.(q)) 0 qs in
      ensure_layer level;
      !layers.(level) <- gate :: !layers.(level);
      List.iter (fun q -> frontier.(q) <- level + 1) qs
  in
  List.iter place (Circuit.gates c);
  let depth = Array.fold_left max 0 frontier in
  List.init depth (fun i -> List.rev !layers.(i))

let two_qubit_pairs layer =
  List.filter_map
    (function
      | Gate.Cnot { control; target } -> Some (control, target)
      | Gate.Swap (a, b) -> Some (a, b)
      | Gate.One_qubit _ | Gate.Measure _ | Gate.Barrier _ -> None)
    layer

let count c = List.length (partition c)

(** Gate dependency DAG.

    Gate [j] depends on gate [i] when [i] is the latest earlier gate
    touching one of [j]'s qubits (barriers depend on, and are depended on
    by, everything crossing them).  The DAG backs the SABRE router's
    front-layer iteration and exposes the structural circuit metrics
    (ASAP levels, critical path) independently of any device. *)

type t

val build : Circuit.t -> t
(** Indices follow the circuit's gate order. *)

val gate_count : t -> int

val gate : t -> int -> Gate.t
(** @raise Invalid_argument when out of range. *)

val successors : t -> int -> int list
(** Direct dependents, in increasing index order. *)

val predecessors : t -> int -> int list
(** Direct dependencies, in increasing index order. *)

val predecessor_count : t -> int -> int

val front : t -> int list
(** Gates with no predecessors (the initial front layer), increasing. *)

val asap_levels : t -> int array
(** [levels.(i)] is the earliest layer gate [i] can run in (0-based);
    matches {!Layers.partition} for barrier-free circuits. *)

val critical_path_length : t -> int
(** [1 + max asap level], i.e. the dependency depth (0 when empty). *)

val topological_order : t -> int list
(** A dependency-respecting order (the original gate order qualifies and
    is what is returned). *)

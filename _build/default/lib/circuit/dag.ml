type t = {
  gates : Gate.t array;
  successors : int list array;
  predecessors : int list array;
}

let build circuit =
  let gates = Array.of_list (Circuit.gates circuit) in
  let n = Circuit.num_qubits circuit in
  let count = Array.length gates in
  let successors = Array.make count [] in
  let predecessors = Array.make count [] in
  let last_on_wire = Array.make (max n 1) (-1) in
  Array.iteri
    (fun index gate ->
      let qs =
        match gate with
        | Gate.Barrier [] -> List.init n Fun.id
        | _ -> Gate.qubits gate
      in
      List.iter
        (fun q ->
          let prev = last_on_wire.(q) in
          if prev >= 0 then begin
            successors.(prev) <- index :: successors.(prev);
            predecessors.(index) <- prev :: predecessors.(index)
          end;
          last_on_wire.(q) <- index)
        qs)
    gates;
  let dedup_sorted l = List.sort_uniq compare l in
  Array.iteri (fun i s -> successors.(i) <- dedup_sorted s) successors;
  Array.iteri (fun i p -> predecessors.(i) <- dedup_sorted p) predecessors;
  { gates; successors; predecessors }

let gate_count d = Array.length d.gates

let check d i =
  if i < 0 || i >= gate_count d then
    invalid_arg (Printf.sprintf "Dag: gate index %d out of range" i)

let gate d i =
  check d i;
  d.gates.(i)

let successors d i =
  check d i;
  d.successors.(i)

let predecessors d i =
  check d i;
  d.predecessors.(i)

let predecessor_count d i = List.length (predecessors d i)

let front d =
  Array.to_list (Array.mapi (fun i p -> (i, p)) d.predecessors)
  |> List.filter_map (fun (i, p) -> if p = [] then Some i else None)

let asap_levels d =
  let levels = Array.make (gate_count d) 0 in
  (* original order is topological *)
  Array.iteri
    (fun i _ ->
      let level =
        List.fold_left
          (fun acc p -> max acc (levels.(p) + 1))
          0 d.predecessors.(i)
      in
      levels.(i) <- level)
    d.gates;
  levels

let critical_path_length d =
  if gate_count d = 0 then 0
  else 1 + Array.fold_left max 0 (asap_levels d)

let topological_order d = List.init (gate_count d) Fun.id

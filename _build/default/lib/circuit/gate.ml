type one_qubit_kind =
  | H
  | X
  | Y
  | Z
  | S
  | Sdg
  | T
  | Tdg
  | Rx of float
  | Ry of float
  | Rz of float
  | U1 of float

type t =
  | One_qubit of one_qubit_kind * int
  | Cnot of { control : int; target : int }
  | Swap of int * int
  | Measure of { qubit : int; cbit : int }
  | Barrier of int list

let qubits = function
  | One_qubit (_, q) -> [ q ]
  | Cnot { control; target } -> [ control; target ]
  | Swap (a, b) -> [ a; b ]
  | Measure { qubit; _ } -> [ qubit ]
  | Barrier qs -> qs

let is_two_qubit = function
  | Cnot _ | Swap _ -> true
  | One_qubit _ | Measure _ | Barrier _ -> false

let is_unitary = function
  | One_qubit _ | Cnot _ | Swap _ -> true
  | Measure _ | Barrier _ -> false

let relabel f = function
  | One_qubit (kind, q) -> One_qubit (kind, f q)
  | Cnot { control; target } ->
    let control = f control and target = f target in
    if control = target then invalid_arg "Gate.relabel: cnot operands collide";
    Cnot { control; target }
  | Swap (a, b) ->
    let a = f a and b = f b in
    if a = b then invalid_arg "Gate.relabel: swap operands collide";
    Swap (a, b)
  | Measure { qubit; cbit } -> Measure { qubit = f qubit; cbit }
  | Barrier qs -> Barrier (List.map f qs)

let one_qubit_name = function
  | H -> "h"
  | X -> "x"
  | Y -> "y"
  | Z -> "z"
  | S -> "s"
  | Sdg -> "sdg"
  | T -> "t"
  | Tdg -> "tdg"
  | Rx _ -> "rx"
  | Ry _ -> "ry"
  | Rz _ -> "rz"
  | U1 _ -> "u1"

let one_qubit_angle = function
  | Rx a | Ry a | Rz a | U1 a -> Some a
  | H | X | Y | Z | S | Sdg | T | Tdg -> None

let equal_kind a b =
  match (a, b) with
  | Rx x, Rx y | Ry x, Ry y | Rz x, Rz y | U1 x, U1 y ->
    Float.equal x y
  | H, H | X, X | Y, Y | Z, Z | S, S | Sdg, Sdg | T, T | Tdg, Tdg -> true
  | ( (H | X | Y | Z | S | Sdg | T | Tdg | Rx _ | Ry _ | Rz _ | U1 _),
      (H | X | Y | Z | S | Sdg | T | Tdg | Rx _ | Ry _ | Rz _ | U1 _) ) ->
    false

let equal a b =
  match (a, b) with
  | One_qubit (ka, qa), One_qubit (kb, qb) -> qa = qb && equal_kind ka kb
  | Cnot a, Cnot b -> a.control = b.control && a.target = b.target
  | Swap (a1, a2), Swap (b1, b2) -> a1 = b1 && a2 = b2
  | Measure a, Measure b -> a.qubit = b.qubit && a.cbit = b.cbit
  | Barrier a, Barrier b -> a = b
  | ( (One_qubit _ | Cnot _ | Swap _ | Measure _ | Barrier _),
      (One_qubit _ | Cnot _ | Swap _ | Measure _ | Barrier _) ) ->
    false

let pp ppf = function
  | One_qubit (kind, q) -> begin
    match one_qubit_angle kind with
    | Some angle ->
      Format.fprintf ppf "%s(%g) q%d" (one_qubit_name kind) angle q
    | None -> Format.fprintf ppf "%s q%d" (one_qubit_name kind) q
  end
  | Cnot { control; target } -> Format.fprintf ppf "cx q%d, q%d" control target
  | Swap (a, b) -> Format.fprintf ppf "swap q%d, q%d" a b
  | Measure { qubit; cbit } ->
    Format.fprintf ppf "measure q%d -> c%d" qubit cbit
  | Barrier [] -> Format.fprintf ppf "barrier"
  | Barrier qs ->
    Format.fprintf ppf "barrier %s"
      (String.concat ", " (List.map (Printf.sprintf "q%d") qs))

let to_string g = Format.asprintf "%a" pp g

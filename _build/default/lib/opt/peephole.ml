open Vqc_circuit

type stats = {
  cancelled : int;
  merged : int;
  passes : int;
}

(* Outcome of combining two adjacent one-qubit gates on the same wire. *)
type combination =
  | Cancel  (** the pair is the identity *)
  | Replace of Gate.one_qubit_kind  (** the pair fuses into one gate *)
  | Keep  (** not combinable *)

let two_pi = 2.0 *. Float.pi

let trivial_angle theta =
  let remainder = Float.rem theta two_pi in
  Float.abs remainder < 1e-12
  || Float.abs (Float.abs remainder -. two_pi) < 1e-12

let fuse_rotation make a b =
  let total = a +. b in
  if trivial_angle total then Cancel else Replace (make total)

let combine_one_qubit (first : Gate.one_qubit_kind)
    (second : Gate.one_qubit_kind) =
  match (first, second) with
  | Gate.H, Gate.H | Gate.X, Gate.X | Gate.Y, Gate.Y | Gate.Z, Gate.Z
  | Gate.S, Gate.Sdg | Gate.Sdg, Gate.S | Gate.T, Gate.Tdg | Gate.Tdg, Gate.T
    ->
    Cancel
  | Gate.S, Gate.S | Gate.Sdg, Gate.Sdg -> Replace Gate.Z
  | Gate.T, Gate.T -> Replace Gate.S
  | Gate.Tdg, Gate.Tdg -> Replace Gate.Sdg
  | Gate.Rz a, Gate.Rz b -> fuse_rotation (fun t -> Gate.Rz t) a b
  | Gate.Rx a, Gate.Rx b -> fuse_rotation (fun t -> Gate.Rx t) a b
  | Gate.Ry a, Gate.Ry b -> fuse_rotation (fun t -> Gate.Ry t) a b
  | Gate.U1 a, Gate.U1 b -> fuse_rotation (fun t -> Gate.U1 t) a b
  | _, _ -> Keep

(* Self-inverse two-qubit pairs with identical operands. *)
let two_qubit_pair_cancels a b =
  match (a, b) with
  | Gate.Cnot x, Gate.Cnot y -> x.control = y.control && x.target = y.target
  | Gate.Swap (x1, x2), Gate.Swap (y1, y2) ->
    (x1 = y1 && x2 = y2) || (x1 = y2 && x2 = y1)
  | _, _ -> false

(* One stack-based pass.  [slots] holds the surviving gates ([None] =
   removed); [tops] is, per qubit, the slot indices of the gates still
   live on that wire, most recent first — popping on cancellation exposes
   earlier gates, so nested pairs like [H X X H] collapse in one pass. *)
let pass circuit =
  let n = Circuit.num_qubits circuit in
  let gates = Array.of_list (Circuit.gates circuit) in
  let slots = Array.map (fun g -> Some g) gates in
  let tops = Array.make (max n 1) [] in
  let cancelled = ref 0 and merged = ref 0 in
  let top q = match tops.(q) with [] -> None | j :: _ -> Some j in
  let pop q =
    match tops.(q) with [] -> () | _ :: rest -> tops.(q) <- rest
  in
  let push q j = tops.(q) <- j :: tops.(q) in
  let place index gate =
    match gate with
    | Gate.One_qubit (kind, q) -> begin
      let previous =
        match top q with
        | Some j -> begin
          match slots.(j) with
          | Some (Gate.One_qubit (prev_kind, _)) -> Some (j, prev_kind)
          | Some _ | None -> None
        end
        | None -> None
      in
      match previous with
      | Some (j, prev_kind) -> begin
        match combine_one_qubit prev_kind kind with
        | Cancel ->
          slots.(j) <- None;
          slots.(index) <- None;
          pop q;
          cancelled := !cancelled + 2
        | Replace fused ->
          slots.(j) <- Some (Gate.One_qubit (fused, q));
          slots.(index) <- None;
          incr merged
        | Keep -> push q index
      end
      | None -> push q index
    end
    | Gate.Cnot _ | Gate.Swap _ -> begin
      let qs = Gate.qubits gate in
      let common_top =
        match List.map top qs with
        | [ Some j; Some k ] when j = k -> Some j
        | _ -> None
      in
      match common_top with
      | Some j
        when (match slots.(j) with
             | Some prev -> two_qubit_pair_cancels prev gate
             | None -> false) ->
        slots.(j) <- None;
        slots.(index) <- None;
        List.iter pop qs;
        cancelled := !cancelled + 2
      | Some _ | None -> List.iter (fun q -> push q index) qs
    end
    | Gate.Measure { qubit; _ } -> push qubit index
    | Gate.Barrier qs ->
      let qs = if qs = [] then List.init n Fun.id else qs in
      List.iter (fun q -> push q index) qs
  in
  Array.iteri place gates;
  let survivors =
    Array.to_list slots |> List.filter_map Fun.id
  in
  ( Circuit.of_gates ~cbits:(Circuit.num_cbits circuit)
      (Circuit.num_qubits circuit) survivors,
    !cancelled,
    !merged )

let optimize_with_stats ?(max_passes = 32) circuit =
  if max_passes < 1 then invalid_arg "Peephole: need at least one pass";
  let rec go current cancelled merged passes =
    if passes >= max_passes then
      (current, { cancelled; merged; passes })
    else begin
      let next, c, m = pass current in
      if c = 0 && m = 0 then (current, { cancelled; merged; passes = passes + 1 })
      else go next (cancelled + c) (merged + m) (passes + 1)
    end
  in
  go circuit 0 0 0

let optimize ?max_passes circuit = fst (optimize_with_stats ?max_passes circuit)

let pp_stats ppf s =
  Format.fprintf ppf "cancelled %d gates, merged %d rotation pairs (%d passes)"
    s.cancelled s.merged s.passes

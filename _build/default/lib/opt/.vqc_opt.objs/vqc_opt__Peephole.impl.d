lib/opt/peephole.ml: Array Circuit Float Format Fun Gate List Vqc_circuit

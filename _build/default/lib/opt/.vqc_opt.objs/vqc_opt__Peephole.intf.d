lib/opt/peephole.mli: Circuit Format Vqc_circuit

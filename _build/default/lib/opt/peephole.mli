(** Peephole circuit optimization.

    Fewer gates means fewer error opportunities, so local simplification
    composes with the variability-aware policies: it shrinks the factor
    every policy pays, without changing what the circuit computes (the
    test suite proves equivalence with the state-vector oracle on random
    circuits).

    Rules, applied to gates that are adjacent on their qubits (no
    intervening gate touches any shared operand):
    - involution cancellation: [H H], [X X], [Y Y], [Z Z],
      [CNOT CNOT] (same operands), [SWAP SWAP];
    - inverse-pair cancellation: [S Sdg], [T Tdg] (both orders);
    - same-axis rotation merging: [Rz(a) Rz(b) -> Rz(a+b)], likewise
      [Rx], [Ry], [U1];
    - phase promotion: [S S -> Z], [T T -> S], [Sdg Sdg -> Z],
      [Tdg Tdg -> Sdg];
    - identity elimination: rotations by multiples of 2pi (and merged
      rotations that become one) disappear.

    Measurements and barriers are fences: nothing moves across them. *)

open Vqc_circuit

type stats = {
  cancelled : int;  (** gates removed by pair cancellation *)
  merged : int;  (** rotation pairs fused into one gate *)
  passes : int;  (** fixpoint iterations *)
}

val optimize : ?max_passes:int -> Circuit.t -> Circuit.t
(** Simplify to a fixpoint ([max_passes] defaults to 32). *)

val optimize_with_stats : ?max_passes:int -> Circuit.t -> Circuit.t * stats

val pp_stats : Format.formatter -> stats -> unit

lib/qgraph/paths.mli: Graph

lib/qgraph/pqueue.ml: Array

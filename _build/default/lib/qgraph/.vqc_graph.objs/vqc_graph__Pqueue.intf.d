lib/qgraph/pqueue.mli:

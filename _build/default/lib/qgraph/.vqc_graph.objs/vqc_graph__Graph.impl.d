lib/qgraph/graph.ml: Array Format Hashtbl List Printf

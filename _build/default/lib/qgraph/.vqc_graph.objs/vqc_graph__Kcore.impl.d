lib/qgraph/kcore.ml: Array Graph List Printf

lib/qgraph/astar.mli:

lib/qgraph/graph.mli: Format

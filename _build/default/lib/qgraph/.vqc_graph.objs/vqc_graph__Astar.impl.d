lib/qgraph/astar.ml: Hashtbl List Pqueue

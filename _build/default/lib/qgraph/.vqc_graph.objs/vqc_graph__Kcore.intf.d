lib/qgraph/kcore.mli: Graph

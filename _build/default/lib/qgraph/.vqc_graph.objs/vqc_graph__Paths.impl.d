lib/qgraph/paths.ml: Array Graph List Pqueue Queue

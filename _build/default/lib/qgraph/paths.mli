(** Shortest-path computations over {!Graph.t}.

    Two distance notions are used by the mapper:
    - {e hop distance} (unweighted BFS), the SWAP count of the baseline
      variation-unaware policy;
    - {e weighted distance} (Dijkstra over non-negative edge costs such as
      [-log p_success]), the reliability cost used by VQM. *)

val infinity_cost : float
(** Distance reported for unreachable node pairs. *)

val dijkstra : Graph.t -> int -> float array * int array
(** [dijkstra g src] is [(dist, prev)]: [dist.(v)] is the least total edge
    weight from [src] to [v] ({!infinity_cost} if unreachable) and
    [prev.(v)] the predecessor of [v] on such a path ([-1] for [src] and
    unreachable nodes).  Edge weights must be non-negative.
    @raise Invalid_argument on a negative edge weight. *)

val shortest_path : Graph.t -> int -> int -> int list option
(** Minimum-weight path from [src] to [dst], inclusive of both endpoints.
    [None] when unreachable; [Some [src]] when [src = dst]. *)

val path_cost : Graph.t -> int list -> float
(** Total edge weight along a node path.
    @raise Not_found if consecutive nodes are not adjacent. *)

val all_pairs : Graph.t -> float array array
(** [all_pairs g] is the weighted distance matrix (repeated Dijkstra). *)

val bfs_hops : Graph.t -> int -> int array
(** Hop distances from a source; [max_int] when unreachable. *)

val all_pairs_hops : Graph.t -> int array array
(** Hop-distance matrix. *)

val hop_count : Graph.t -> int -> int -> int
(** BFS hop distance between a pair; [max_int] when unreachable. *)

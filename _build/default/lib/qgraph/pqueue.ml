type 'a t = {
  mutable prio : float array;
  mutable data : 'a array;
  mutable size : int;
}

let create () = { prio = [||]; data = [||]; size = 0 }

let length q = q.size

let is_empty q = q.size = 0

let grow q x =
  let capacity = Array.length q.prio in
  if q.size = capacity then begin
    let new_capacity = max 16 (2 * capacity) in
    let prio = Array.make new_capacity 0.0 in
    let data = Array.make new_capacity x in
    Array.blit q.prio 0 prio 0 q.size;
    Array.blit q.data 0 data 0 q.size;
    q.prio <- prio;
    q.data <- data
  end

let swap q i j =
  let pi = q.prio.(i) and di = q.data.(i) in
  q.prio.(i) <- q.prio.(j);
  q.data.(i) <- q.data.(j);
  q.prio.(j) <- pi;
  q.data.(j) <- di

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if q.prio.(i) < q.prio.(parent) then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < q.size && q.prio.(left) < q.prio.(!smallest) then smallest := left;
  if right < q.size && q.prio.(right) < q.prio.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    swap q i !smallest;
    sift_down q !smallest
  end

let push q prio x =
  grow q x;
  q.prio.(q.size) <- prio;
  q.data.(q.size) <- x;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let pop q =
  if q.size = 0 then None
  else begin
    let prio = q.prio.(0) and x = q.data.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.prio.(0) <- q.prio.(q.size);
      q.data.(0) <- q.data.(q.size);
      sift_down q 0
    end;
    Some (prio, x)
  end

let peek q = if q.size = 0 then None else Some (q.prio.(0), q.data.(0))

let clear q = q.size <- 0

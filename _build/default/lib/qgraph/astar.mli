(** Generic A* search over an abstract state space.

    The mapper's SWAP search (paper Sections 4.5 and 5.3) explores
    permutations of the program-to-physical mapping; each state is one such
    mapping and each move is a SWAP.  This module provides the search
    skeleton; the mapper supplies successors, goal test and heuristic. *)

type 'state problem = {
  start : 'state;
  is_goal : 'state -> bool;
  successors : 'state -> ('state * float) list;
      (** [(next, cost)] moves; costs must be non-negative. *)
  heuristic : 'state -> float;
      (** Admissible lower bound on remaining cost (0 at goals). *)
  key : 'state -> string;
      (** Canonical serialization used to detect revisits. *)
}

type 'state outcome = {
  goal : 'state;
  cost : float;  (** Total path cost from [start] to [goal]. *)
  expanded : int;  (** Number of states popped from the frontier. *)
}

val search : ?max_expansions:int -> 'state problem -> 'state outcome option
(** Best-first A* with duplicate detection.  Returns [None] when the space
    is exhausted or [max_expansions] (default 200_000) states were popped
    without reaching a goal. *)

val search_path :
  ?max_expansions:int ->
  'state problem ->
  ('state list * float * int) option
(** Like {!search}, additionally reconstructing the state sequence from
    start to goal (inclusive).  Returns [(states, cost, expanded)]. *)

(* Batagelj-Zaversnik O(m) core decomposition: process nodes in increasing
   degree order, repeatedly removing the minimum-degree node; its degree at
   removal time is its core number. *)
let core_numbers g =
  let n = Graph.node_count g in
  let degree = Array.init n (Graph.degree g) in
  let max_degree = Array.fold_left max 0 degree in
  (* bucket sort nodes by current degree *)
  let bin = Array.make (max_degree + 2) 0 in
  Array.iter (fun d -> bin.(d) <- bin.(d) + 1) degree;
  let start = ref 0 in
  for d = 0 to max_degree do
    let count = bin.(d) in
    bin.(d) <- !start;
    start := !start + count
  done;
  let pos = Array.make n 0 in
  let vert = Array.make n 0 in
  Array.iteri
    (fun v d ->
      pos.(v) <- bin.(d);
      vert.(pos.(v)) <- v;
      bin.(d) <- bin.(d) + 1)
    degree;
  for d = max_degree downto 1 do
    bin.(d) <- bin.(d - 1)
  done;
  if max_degree >= 0 then bin.(0) <- 0;
  let core = Array.copy degree in
  for i = 0 to n - 1 do
    let v = vert.(i) in
    let lower_neighbor u =
      if core.(u) > core.(v) then begin
        (* swap u with the first node of its degree bucket, then shrink *)
        let du = core.(u) in
        let pu = pos.(u) in
        let pw = bin.(du) in
        let w = vert.(pw) in
        if u <> w then begin
          pos.(u) <- pw;
          vert.(pu) <- w;
          pos.(w) <- pu;
          vert.(pw) <- u
        end;
        bin.(du) <- bin.(du) + 1;
        core.(u) <- core.(u) - 1
      end
    in
    List.iter lower_neighbor (Graph.neighbor_ids g v)
  done;
  core

let k_core g k =
  let core = core_numbers g in
  let chosen = ref [] in
  for v = Graph.node_count g - 1 downto 0 do
    if core.(v) >= k then chosen := v :: !chosen
  done;
  !chosen

let aggregate_strength g nodes =
  List.fold_left (fun acc v -> acc +. Graph.node_strength g v) 0.0 nodes

let internal_strength g nodes =
  let inside = Array.make (Graph.node_count g) false in
  List.iter (fun v -> inside.(v) <- true) nodes;
  Graph.fold_edges
    (fun u v w acc -> if inside.(u) && inside.(v) then acc +. w else acc)
    g 0.0

(* Grow a connected set from [seed], always adding the frontier node that
   gains the most internal strength (ties broken by full-graph strength). *)
let grow_from g size seed =
  let n = Graph.node_count g in
  let inside = Array.make n false in
  inside.(seed) <- true;
  let chosen = ref [ seed ] in
  let gain v =
    List.fold_left
      (fun acc (u, w) -> if inside.(u) then acc +. w else acc)
      0.0 (Graph.neighbors g v)
  in
  let exception No_candidate in
  try
    for _ = 2 to size do
      let best = ref None in
      let consider v =
        if not inside.(v) then begin
          let key = (gain v, Graph.node_strength g v) in
          match !best with
          | Some (best_key, _) when best_key >= key -> ()
          | _ -> best := Some (key, v)
        end
      in
      List.iter (fun u -> List.iter consider (Graph.neighbor_ids g u)) !chosen;
      match !best with
      | None -> raise No_candidate
      | Some (_, v) ->
        inside.(v) <- true;
        chosen := v :: !chosen
    done;
    Some (List.sort compare !chosen)
  with No_candidate -> None

let grow_subgraph g ~size ~seed =
  let n = Graph.node_count g in
  if size < 1 || size > n then
    invalid_arg
      (Printf.sprintf "Kcore.grow_subgraph: size %d not in [1, %d]" size n);
  if seed < 0 || seed >= n then
    invalid_arg (Printf.sprintf "Kcore.grow_subgraph: seed %d out of range" seed);
  grow_from g size seed

let strongest_subgraph g ~size =
  let n = Graph.node_count g in
  if size < 1 || size > n then
    invalid_arg
      (Printf.sprintf "Kcore.strongest_subgraph: size %d not in [1, %d]" size n);
  let best = ref None in
  for seed = 0 to n - 1 do
    match grow_from g size seed with
    | None -> ()
    | Some nodes ->
      let key = (internal_strength g nodes, aggregate_strength g nodes) in
      (match !best with
      | Some (best_key, _) when best_key >= key -> ()
      | _ -> best := Some (key, nodes))
  done;
  match !best with
  | Some (_, nodes) -> nodes
  | None ->
    invalid_arg "Kcore.strongest_subgraph: no connected subset of that size"

type t = {
  n : int;
  adjacency : (int, float) Hashtbl.t array;
}

let create n =
  if n < 0 then invalid_arg "Graph.create: negative node count";
  { n; adjacency = Array.init n (fun _ -> Hashtbl.create 4) }

let node_count g = g.n

let check_node g u name =
  if u < 0 || u >= g.n then
    invalid_arg (Printf.sprintf "Graph.%s: node %d out of range [0, %d)" name u g.n)

let add_edge g u v w =
  check_node g u "add_edge";
  check_node g v "add_edge";
  if u = v then invalid_arg "Graph.add_edge: self-loop";
  Hashtbl.replace g.adjacency.(u) v w;
  Hashtbl.replace g.adjacency.(v) u w

let remove_edge g u v =
  check_node g u "remove_edge";
  check_node g v "remove_edge";
  Hashtbl.remove g.adjacency.(u) v;
  Hashtbl.remove g.adjacency.(v) u

let edge_weight g u v =
  check_node g u "edge_weight";
  check_node g v "edge_weight";
  Hashtbl.find_opt g.adjacency.(u) v

let has_edge g u v = edge_weight g u v <> None

let edge_weight_exn g u v =
  match edge_weight g u v with Some w -> w | None -> raise Not_found

let neighbors g u =
  check_node g u "neighbors";
  Hashtbl.fold (fun v w acc -> (v, w) :: acc) g.adjacency.(u) []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let neighbor_ids g u = List.map fst (neighbors g u)

let degree g u =
  check_node g u "degree";
  Hashtbl.length g.adjacency.(u)

let node_strength g u =
  check_node g u "node_strength";
  Hashtbl.fold (fun _ w acc -> acc +. w) g.adjacency.(u) 0.0

let iter_edges f g =
  for u = 0 to g.n - 1 do
    let per_neighbor v w = if u < v then f u v w in
    Hashtbl.iter per_neighbor g.adjacency.(u)
  done

let fold_edges f g init =
  let acc = ref init in
  iter_edges (fun u v w -> acc := f u v w !acc) g;
  !acc

let edges g =
  fold_edges (fun u v w acc -> (u, v, w) :: acc) g []
  |> List.sort compare

let edge_count g = fold_edges (fun _ _ _ acc -> acc + 1) g 0

let of_edges n edge_list =
  let g = create n in
  List.iter (fun (u, v, w) -> add_edge g u v w) edge_list;
  g

let copy g = of_edges g.n (edges g)

let map_weights f g =
  of_edges g.n (List.map (fun (u, v, w) -> (u, v, f u v w)) (edges g))

let induced_subgraph g nodes =
  List.iter (fun u -> check_node g u "induced_subgraph") nodes;
  let keep = Array.make g.n false in
  List.iter (fun u -> keep.(u) <- true) nodes;
  let sub = create g.n in
  iter_edges (fun u v w -> if keep.(u) && keep.(v) then add_edge sub u v w) g;
  sub

(* Reachability from a seed, restricted to nodes where [allowed] is true. *)
let reachable_count g seed allowed =
  let visited = Array.make g.n false in
  let rec visit u count =
    if visited.(u) then count
    else begin
      visited.(u) <- true;
      Hashtbl.fold
        (fun v _ acc -> if allowed.(v) then visit v acc else acc)
        g.adjacency.(u) (count + 1)
    end
  in
  visit seed 0

let is_connected g =
  if g.n = 0 then true
  else reachable_count g 0 (Array.make g.n true) = g.n

let is_connected_subset g nodes =
  match List.sort_uniq compare nodes with
  | [] -> false
  | seed :: _ as distinct ->
    List.iter (fun u -> check_node g u "is_connected_subset") distinct;
    let allowed = Array.make g.n false in
    List.iter (fun u -> allowed.(u) <- true) distinct;
    reachable_count g seed allowed = List.length distinct

let pp ppf g =
  Format.fprintf ppf "@[<v>graph (%d nodes, %d edges)" g.n (edge_count g);
  iter_edges (fun u v w -> Format.fprintf ppf "@,  %d -- %d  %.4f" u v w) g;
  Format.fprintf ppf "@]"

(** Weighted undirected graphs over a dense range of integer nodes
    [0 .. node_count - 1].

    This is the common substrate for the device coupling maps: nodes are
    physical qubits and edge weights carry whatever per-link quantity a
    client cares about (failure rate, success probability, or a routing
    cost such as [-log p_success]).  The structure is mutable; policies
    that need a reweighted view use {!map_weights} to obtain a copy. *)

type t

val create : int -> t
(** [create n] is a graph with [n] nodes and no edges.
    @raise Invalid_argument if [n < 0]. *)

val node_count : t -> int

val edge_count : t -> int
(** Number of undirected edges. *)

val add_edge : t -> int -> int -> float -> unit
(** [add_edge g u v w] adds (or replaces) the undirected edge [u -- v] with
    weight [w].  Self-loops are rejected.
    @raise Invalid_argument on a self-loop or out-of-range node. *)

val remove_edge : t -> int -> int -> unit
(** Remove the edge if present; no-op otherwise. *)

val has_edge : t -> int -> int -> bool

val edge_weight : t -> int -> int -> float option

val edge_weight_exn : t -> int -> int -> float
(** @raise Not_found if the edge is absent. *)

val neighbors : t -> int -> (int * float) list
(** Adjacent nodes with edge weights, in increasing node order. *)

val neighbor_ids : t -> int -> int list

val degree : t -> int -> int

val node_strength : t -> int -> float
(** Weighted degree: the sum of incident edge weights (paper Section 5.3,
    step 2: [d_i = sum_j w_ij]). *)

val edges : t -> (int * int * float) list
(** Every undirected edge exactly once as [(u, v, w)] with [u < v], sorted. *)

val iter_edges : (int -> int -> float -> unit) -> t -> unit
(** Iterate over each undirected edge once with [u < v]. *)

val fold_edges : (int -> int -> float -> 'a -> 'a) -> t -> 'a -> 'a

val of_edges : int -> (int * int * float) list -> t
(** [of_edges n edges] builds an [n]-node graph from an edge list. *)

val copy : t -> t

val map_weights : (int -> int -> float -> float) -> t -> t
(** [map_weights f g] is a fresh graph in which edge [u -- v] of weight [w]
    has weight [f u v w] (called with [u < v]). *)

val induced_subgraph : t -> int list -> t
(** [induced_subgraph g nodes] keeps the same node numbering but only the
    edges with both endpoints in [nodes]. *)

val is_connected : t -> bool
(** True when every node is reachable from node 0 (vacuously true for the
    empty graph). *)

val is_connected_subset : t -> int list -> bool
(** True when the induced subgraph on the (distinct) listed nodes is
    connected and the list is non-empty. *)

val pp : Format.formatter -> t -> unit

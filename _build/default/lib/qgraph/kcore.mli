(** K-core decomposition and strongest-subgraph selection.

    The VQA policy (paper Section 6.2) selects the connected [k]-node
    subgraph with the highest {e aggregate node strength} (ANS, the sum of
    weighted degrees of the chosen nodes) and restricts allocation to it.
    The paper computes candidate dense regions with the k-core algorithm of
    Batagelj and Zaversnik; {!core_numbers} is that algorithm, and
    {!strongest_subgraph} combines it with a greedy strength-driven growth
    from every seed node. *)

val core_numbers : Graph.t -> int array
(** [core_numbers g] gives for each node the largest [k] such that the node
    belongs to the [k]-core of [g] (O(m) bucket algorithm). *)

val k_core : Graph.t -> int -> int list
(** Nodes whose core number is at least [k], in increasing order. *)

val aggregate_strength : Graph.t -> int list -> float
(** ANS of a node set: the sum of full-graph node strengths
    [sum_i d_i] with [d_i = sum_j w_ij] (paper Section 6.2 step 1). *)

val internal_strength : Graph.t -> int list -> float
(** Sum of edge weights internal to the node set.  Used as a tie-breaker:
    links leaving the allocated region cannot be exercised by the program,
    so internal strength is what the schedule can actually use. *)

val grow_subgraph : Graph.t -> size:int -> seed:int -> int list option
(** Greedy strength-driven growth of a connected [size]-node subset from
    one seed node ([None] when the seed's component is too small).
    Result is sorted and contains [seed]. *)

val strongest_subgraph : Graph.t -> size:int -> int list
(** [strongest_subgraph g ~size:k] is a connected subset of [k] nodes
    chosen to (heuristically) maximize its strength: grow greedily by
    internal-strength gain from every possible seed and keep the best
    result by (internal strength, ANS).  Internal strength is primary —
    a program confined to the region can only exercise internal links,
    and the paper's raw ANS (full-graph weighted degrees, Section 6.2)
    rewards links that leave the region.  Result is sorted.
    @raise Invalid_argument if [k] is not in [1 .. node_count] or if no
    connected subset of size [k] exists. *)

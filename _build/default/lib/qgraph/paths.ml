let infinity_cost = infinity

let dijkstra g src =
  let n = Graph.node_count g in
  let dist = Array.make n infinity_cost in
  let prev = Array.make n (-1) in
  let settled = Array.make n false in
  let queue = Pqueue.create () in
  dist.(src) <- 0.0;
  Pqueue.push queue 0.0 src;
  let relax u (v, w) =
    if w < 0.0 then invalid_arg "Paths.dijkstra: negative edge weight";
    let candidate = dist.(u) +. w in
    if candidate < dist.(v) then begin
      dist.(v) <- candidate;
      prev.(v) <- u;
      Pqueue.push queue candidate v
    end
  in
  let rec drain () =
    match Pqueue.pop queue with
    | None -> ()
    | Some (d, u) ->
      if not settled.(u) && d <= dist.(u) then begin
        settled.(u) <- true;
        List.iter (relax u) (Graph.neighbors g u)
      end;
      drain ()
  in
  drain ();
  (dist, prev)

let shortest_path g src dst =
  if src = dst then Some [ src ]
  else begin
    let dist, prev = dijkstra g src in
    if dist.(dst) = infinity_cost then None
    else begin
      let rec walk v acc = if v = src then v :: acc else walk prev.(v) (v :: acc) in
      Some (walk dst [])
    end
  end

let path_cost g path =
  let rec total = function
    | [] | [ _ ] -> 0.0
    | u :: (v :: _ as rest) -> Graph.edge_weight_exn g u v +. total rest
  in
  total path

let all_pairs g =
  let n = Graph.node_count g in
  Array.init n (fun src -> fst (dijkstra g src))

let bfs_hops g src =
  let n = Graph.node_count g in
  let hops = Array.make n max_int in
  hops.(src) <- 0;
  let queue = Queue.create () in
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    let visit v =
      if hops.(v) = max_int then begin
        hops.(v) <- hops.(u) + 1;
        Queue.add v queue
      end
    in
    List.iter visit (Graph.neighbor_ids g u)
  done;
  hops

let all_pairs_hops g =
  Array.init (Graph.node_count g) (fun src -> bfs_hops g src)

let hop_count g src dst = (bfs_hops g src).(dst)

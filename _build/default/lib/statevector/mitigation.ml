module Device = Vqc_device.Device
module Calibration = Vqc_device.Calibration

let correct ?(clip = true) device circuit observed =
  let calibration = Device.calibration device in
  let wiring = Statevector.measurement_wiring circuit in
  let table = Hashtbl.create 64 in
  List.iter
    (fun (outcome, p) ->
      let current = Option.value (Hashtbl.find_opt table outcome) ~default:0.0 in
      Hashtbl.replace table outcome (current +. p))
    observed;
  (* invert one bit's symmetric confusion matrix at a time:
     true = A^{-1} observed with A = [[1-r, r], [r, 1-r]] *)
  List.iter
    (fun (cbit, wire) ->
      let r = (Calibration.qubit calibration wire).Calibration.error_readout in
      if r > 0.0 then begin
        let denominator = 1.0 -. (2.0 *. r) in
        if Float.abs denominator < 1e-9 then
          invalid_arg
            (Printf.sprintf
               "Mitigation: readout error of qubit %d is 1/2, not invertible"
               wire);
        let bit = 1 lsl cbit in
        (* collect the affected outcome pairs first, then rewrite *)
        let keys =
          Hashtbl.fold (fun outcome _ acc -> outcome :: acc) table []
          |> List.map (fun o -> min o (o lxor bit))
          |> List.sort_uniq compare
        in
        List.iter
          (fun low ->
            let high = low lor bit in
            let p_low = Option.value (Hashtbl.find_opt table low) ~default:0.0 in
            let p_high = Option.value (Hashtbl.find_opt table high) ~default:0.0 in
            let true_low = (((1.0 -. r) *. p_low) -. (r *. p_high)) /. denominator in
            let true_high = (((1.0 -. r) *. p_high) -. (r *. p_low)) /. denominator in
            Hashtbl.replace table low true_low;
            Hashtbl.replace table high true_high)
          keys
      end)
    wiring;
  let corrected =
    Hashtbl.fold (fun outcome p acc -> (outcome, p) :: acc) table []
  in
  let corrected =
    if not clip then corrected
    else begin
      let clipped =
        List.map (fun (o, p) -> (o, Float.max 0.0 p)) corrected
      in
      let total = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 clipped in
      if total > 0.0 then List.map (fun (o, p) -> (o, p /. total)) clipped
      else clipped
    end
  in
  corrected
  |> List.filter (fun (_, p) -> Float.abs p > 1e-12)
  |> List.sort compare

let correct_histogram ?clip device circuit histogram =
  correct ?clip device circuit (Trajectory.frequencies histogram)

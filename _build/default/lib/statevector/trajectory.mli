(** Noisy quantum-trajectory simulation (Monte-Carlo wavefunction).

    The PST methodology counts a trial as lost the moment any error
    fires; a real machine still returns {e some} outcome, which is
    sometimes right anyway.  This engine simulates what the machine
    returns: each trial evolves the ideal state but injects a uniformly
    random Pauli error on a gate's operands with that gate's calibrated
    error probability (Pauli-twirled noise), flips sampled readout bits
    with the per-qubit readout error, and applies idle-decoherence Pauli
    kicks.  The observed outcome histogram connects PST to application
    success: [P(correct) >= PST] always, and the gap is the share of
    errors the algorithm tolerates.

    Cost per trial is a full state-vector evolution — intended for
    physical circuits of up to ~14 qubits (use {!Vqc_device.Device.restrict}
    to carve a region out of a larger machine). *)

open Vqc_circuit

type histogram = (int * int) list
(** [(classical outcome, trial count)] pairs, sorted by outcome. *)

val run :
  ?coherence:bool ->
  ?coherence_scale:float ->
  trials:int ->
  Vqc_rng.Rng.t ->
  Vqc_device.Device.t ->
  Circuit.t ->
  histogram
(** Simulate [trials] noisy executions of a physical circuit.
    @raise Invalid_argument if [trials <= 0], the circuit is wider than
    the device, or a two-qubit gate spans uncoupled qubits. *)

val frequencies : histogram -> (int * float) list
(** Normalize a histogram to an outcome distribution. *)

val top_outcome_accuracy : ideal:(int * float) list -> histogram -> float
(** Fraction of trials that returned the ideal distribution's most
    probable outcome — the figure of merit for search-style kernels.
    @raise Invalid_argument on an empty ideal distribution or empty
    histogram. *)

val support_accuracy : ideal:(int * float) list -> histogram -> float
(** Fraction of trials whose outcome lies in the ideal distribution's
    support — the metric for which [accuracy >= PST] holds for every
    kernel (an error-free trial always lands in the ideal support).
    For deterministic kernels it coincides with
    {!top_outcome_accuracy}. *)

val total_variation : ideal:(int * float) list -> histogram -> float
(** Total-variation distance between the observed frequencies and the
    ideal distribution (0 = noiseless). *)

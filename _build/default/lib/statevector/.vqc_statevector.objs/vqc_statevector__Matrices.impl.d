lib/statevector/matrices.ml: Complex Float Gate Vqc_circuit

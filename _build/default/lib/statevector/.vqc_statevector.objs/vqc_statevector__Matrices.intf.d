lib/statevector/matrices.mli: Complex Gate Vqc_circuit

lib/statevector/density.mli: Circuit Gate Statevector Vqc_circuit Vqc_device

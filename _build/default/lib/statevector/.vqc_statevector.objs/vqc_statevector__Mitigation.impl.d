lib/statevector/mitigation.ml: Float Hashtbl List Option Printf Statevector Trajectory Vqc_device

lib/statevector/density.ml: Array Circuit Complex Gate Hashtbl List Matrices Option Printf Statevector Vqc_circuit Vqc_device Vqc_sim

lib/statevector/trajectory.mli: Circuit Vqc_circuit Vqc_device Vqc_rng

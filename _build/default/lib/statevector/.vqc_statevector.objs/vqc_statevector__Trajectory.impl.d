lib/statevector/trajectory.ml: Array Circuit Gate Hashtbl List Option Statevector Vqc_circuit Vqc_device Vqc_rng Vqc_sim

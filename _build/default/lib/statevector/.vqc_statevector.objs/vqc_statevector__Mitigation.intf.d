lib/statevector/mitigation.mli: Circuit Trajectory Vqc_circuit Vqc_device

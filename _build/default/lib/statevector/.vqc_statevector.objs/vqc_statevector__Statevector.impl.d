lib/statevector/statevector.ml: Array Circuit Complex Float Format Gate Hashtbl List Matrices Option Printf String Vqc_circuit Vqc_rng

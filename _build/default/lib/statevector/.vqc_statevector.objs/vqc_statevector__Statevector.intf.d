lib/statevector/statevector.mli: Circuit Complex Format Gate Vqc_circuit Vqc_rng

(** Readout-error mitigation by confusion-matrix inversion.

    The calibration tells us each measured qubit's flip probability, so
    the observed outcome distribution is the true one pushed through a
    known tensor-product confusion matrix; applying the inverse undoes
    it in expectation.  The standard NISQ post-processing step — the
    measurement-error counterpart of the compile-time policies (use the
    calibration everywhere it helps). *)

open Vqc_circuit

val correct :
  ?clip:bool ->
  Vqc_device.Device.t ->
  Circuit.t ->
  (int * float) list ->
  (int * float) list
(** [correct device circuit observed] applies the per-wire inverse
    confusion matrices implied by the device's readout calibration and
    the circuit's measurement wiring.  Inversion can produce small
    negative quasi-probabilities on finite samples; [clip] (default
    [true]) clamps them to zero and renormalizes.  Result sorted by
    outcome.
    @raise Invalid_argument if a wire's flip probability reaches 1/2
    (the confusion matrix is singular there). *)

val correct_histogram :
  ?clip:bool ->
  Vqc_device.Device.t ->
  Circuit.t ->
  Trajectory.histogram ->
  (int * float) list
(** Convenience: normalize a trajectory histogram and correct it. *)

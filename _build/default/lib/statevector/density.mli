(** Exact density-matrix simulation of the noisy execution model.

    This is the analytic ground truth behind {!Trajectory}: the same
    Pauli-twirled gate channels, idle channels and readout confusion,
    evolved exactly as quantum channels on the density matrix instead of
    sampled trajectory by trajectory.  The trajectory histogram must
    converge to {!noisy_measurement_distribution} — a property the test
    suite checks — giving the noise engine an exact cross-validation.

    Memory is [2^{2n+1}] floats: practical up to ~10 qubits, intended
    for the small-device studies (Q5, restricted regions). *)

open Vqc_circuit

type t
(** An [n]-qubit mixed state. *)

val init : int -> t
(** |0...0><0...0|.  @raise Invalid_argument if [n] outside [0, 12]. *)

val num_qubits : t -> int

val of_statevector : Statevector.t -> t
(** The pure state's projector. *)

val trace : t -> float
(** 1 for any valid evolution (up to rounding). *)

val purity : t -> float
(** [tr(rho^2)]: 1 for pure states, decreasing under noise. *)

val population : t -> int -> float
(** Diagonal entry: probability of a basis state. *)

val apply_gate : t -> Gate.t -> unit
(** Unitary conjugation; [Measure]/[Barrier] are no-ops. *)

val apply_pauli_channel : t -> error:float -> int list -> unit
(** Uniform non-identity Pauli channel over one or two qubits with total
    error probability [error] — exactly the channel {!Trajectory}
    samples.  @raise Invalid_argument for other operand counts or an
    error outside [0, 1]. *)

val measurement_distribution : t -> Circuit.t -> (int * float) list
(** Readout of the final state through the circuit's measurement wiring
    (no readout noise); sorted by outcome, negligible entries dropped. *)

val noisy_measurement_distribution :
  ?coherence:bool ->
  ?coherence_scale:float ->
  Vqc_device.Device.t ->
  Circuit.t ->
  (int * float) list
(** Evolve the circuit under the full noise model (per-gate Pauli
    channels with calibrated error rates, terminal idle channels,
    readout confusion) and return the exact outcome distribution. *)

open Vqc_circuit
module Rng = Vqc_rng.Rng
module Device = Vqc_device.Device
module Calibration = Vqc_device.Calibration
module Schedule = Vqc_sim.Schedule
module Reliability = Vqc_sim.Reliability

type histogram = (int * int) list

let pauli_gates = [| Gate.X; Gate.Y; Gate.Z |]

let inject_random_pauli rng state q =
  let kind = pauli_gates.(Rng.int rng 3) in
  Statevector.apply_gate state (Gate.One_qubit (kind, q))

(* A gate error scrambles the gate's operands: a uniformly random
   non-identity Pauli over the operand set (Pauli twirling turns coherent
   gate errors into exactly this channel). *)
let inject_gate_error rng state gate =
  match Gate.qubits gate with
  | [ q ] -> inject_random_pauli rng state q
  | [ a; b ] ->
    (* pick one of the 15 non-identity two-qubit Paulis: draw both legs
       until at least one is non-identity *)
    let leg () = Rng.int rng 4 in
    let rec draw () =
      let la = leg () and lb = leg () in
      if la = 0 && lb = 0 then draw () else (la, lb)
    in
    let la, lb = draw () in
    if la > 0 then
      Statevector.apply_gate state (Gate.One_qubit (pauli_gates.(la - 1), a));
    if lb > 0 then
      Statevector.apply_gate state (Gate.One_qubit (pauli_gates.(lb - 1), b))
  | _ -> ()

let sample_basis rng state =
  let u = Rng.float rng in
  let size = 1 lsl Statevector.num_qubits state in
  let rec walk acc basis =
    if basis >= size - 1 then basis
    else begin
      let acc = acc +. Statevector.probability state basis in
      if u < acc then basis else walk acc (basis + 1)
    end
  in
  walk 0.0 0

let run ?(coherence = true)
    ?(coherence_scale = Reliability.default_coherence_scale) ~trials rng device
    circuit =
  if trials <= 0 then invalid_arg "Trajectory.run: need positive trials";
  let n = Circuit.num_qubits circuit in
  if n > Device.num_qubits device then
    invalid_arg "Trajectory.run: circuit wider than device";
  let calibration = Device.calibration device in
  let wiring = Statevector.measurement_wiring circuit in
  let schedule = Schedule.build device circuit in
  let unitaries = List.filter Gate.is_unitary (Circuit.gates circuit) in
  (* validate couplings and precompute per-gate error rates once *)
  let gate_plan =
    List.map (fun gate -> (gate, 1.0 -. Reliability.gate_success device gate)) unitaries
  in
  let idle_failure q =
    if not coherence then 0.0
    else
      1.0 -. Reliability.coherence_survival ~scale:coherence_scale device schedule q
  in
  let readout_error q = (Calibration.qubit calibration q).Calibration.error_readout in
  let active = Circuit.used_qubits circuit in
  let counts = Hashtbl.create 64 in
  for _ = 1 to trials do
    let state = Statevector.init n in
    List.iter
      (fun (gate, failure) ->
        Statevector.apply_gate state gate;
        if failure > 0.0 && Rng.bernoulli rng failure then
          inject_gate_error rng state gate)
      gate_plan;
    (* idle decoherence as a terminal Pauli kick per exposed qubit *)
    List.iter
      (fun q -> if Rng.bernoulli rng (idle_failure q) then inject_random_pauli rng state q)
      active;
    let basis = sample_basis rng state in
    let outcome =
      List.fold_left
        (fun acc (cbit, wire) ->
          let bit = basis land (1 lsl wire) <> 0 in
          (* readout error flips the recorded bit *)
          let bit = if Rng.bernoulli rng (readout_error wire) then not bit else bit in
          if bit then acc lor (1 lsl cbit) else acc)
        0 wiring
    in
    let current = Option.value (Hashtbl.find_opt counts outcome) ~default:0 in
    Hashtbl.replace counts outcome (current + 1)
  done;
  Hashtbl.fold (fun outcome count acc -> (outcome, count) :: acc) counts []
  |> List.sort compare

let frequencies histogram =
  let total =
    float_of_int (List.fold_left (fun acc (_, c) -> acc + c) 0 histogram)
  in
  List.map (fun (outcome, count) -> (outcome, float_of_int count /. total)) histogram

let top_outcome_accuracy ~ideal histogram =
  if ideal = [] then invalid_arg "Trajectory: empty ideal distribution";
  if histogram = [] then invalid_arg "Trajectory: empty histogram";
  let best, _ =
    List.fold_left
      (fun ((_, best_p) as champion) ((_, p) as candidate) ->
        if p > best_p then candidate else champion)
      (List.hd ideal) (List.tl ideal)
  in
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 histogram in
  let hits = Option.value (List.assoc_opt best histogram) ~default:0 in
  float_of_int hits /. float_of_int total

let support_accuracy ~ideal histogram =
  if ideal = [] then invalid_arg "Trajectory: empty ideal distribution";
  if histogram = [] then invalid_arg "Trajectory: empty histogram";
  let support = List.map fst ideal in
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 histogram in
  let hits =
    List.fold_left
      (fun acc (outcome, count) ->
        if List.mem outcome support then acc + count else acc)
      0 histogram
  in
  float_of_int hits /. float_of_int total

let total_variation ~ideal histogram =
  Statevector.distribution_distance ideal (frequencies histogram)

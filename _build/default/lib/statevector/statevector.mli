(** Dense state-vector simulation of ideal (noiseless) circuits.

    This is the functional-correctness oracle of the repository: a
    compiled circuit must compute the same function as its source
    program, and comparing their measurement distributions under ideal
    execution proves it end-to-end (the routed SWAPs, the relabelled
    gates, the measurement wiring).  The fault-injection engine
    ({!Vqc_sim.Monte_carlo}) answers "how often does a trial survive";
    this module answers "is the surviving trial computing the right
    thing".

    Memory is [2^{n+1}] floats; practical up to ~20 qubits. *)

open Vqc_circuit

type t
(** An [n]-qubit pure state. *)

val init : int -> t
(** [init n] is |0...0> on [n] qubits.
    @raise Invalid_argument if [n < 0] or [n > 24]. *)

val num_qubits : t -> int

val copy : t -> t

val amplitude : t -> int -> Complex.t
(** Amplitude of a basis state (qubit 0 is the least-significant bit).
    @raise Invalid_argument when out of range. *)

val probability : t -> int -> float
(** Probability of a basis state. *)

val norm : t -> float
(** Total probability (1 up to rounding for any unitary circuit). *)

val apply_gate : t -> Gate.t -> unit
(** Apply a gate in place.  [Measure] and [Barrier] are no-ops here —
    measurement is handled by {!measurement_distribution} (this module
    simulates the pre-measurement state).
    @raise Invalid_argument on out-of-range operands. *)

val run : Circuit.t -> t
(** Fresh |0...0> state evolved through all unitary gates of a circuit. *)

val probabilities : t -> float array
(** Probability of every basis state (length [2^n]). *)

val measurement_wiring : Circuit.t -> (int * int) list
(** The final [(cbit, wire)] readout map of a circuit, with measured
    wires tracked through any subsequent SWAPs (deferred-measurement
    wire following; routed circuits SWAP through measured qubits).
    @raise Invalid_argument if a classical bit is written twice or a
    non-SWAP gate rewrites a measured wire. *)

val measurement_distribution : Circuit.t -> (int * float) list
(** Ideal-execution distribution over {e classical-bit} outcomes: run
    the circuit, then marginalize the final state onto the classical
    register according to the circuit's [Measure] gates (for circuits
    that measure at the end, the standard NISQ shape).  Keys are cbit
    strings (cbit 0 = least-significant bit); entries with probability
    below 1e-12 are dropped; result is sorted by key.
    @raise Invalid_argument if a classical bit is written twice. *)

val distribution_distance : (int * float) list -> (int * float) list -> float
(** Total-variation distance between two outcome distributions
    (0 = identical, 1 = disjoint). *)

val sample : Vqc_rng.Rng.t -> Circuit.t -> trials:int -> (int * int) list
(** Sample classical outcomes of ideal execution: [(outcome, count)]
    pairs, sorted by outcome.  A cheap stand-in for running the program
    on a perfect machine. *)

val pp : Format.formatter -> t -> unit
(** Print non-negligible amplitudes. *)

open Vqc_circuit
module Device = Vqc_device.Device
module Calibration = Vqc_device.Calibration
module Schedule = Vqc_sim.Schedule
module Reliability = Vqc_sim.Reliability

(* Row-major d x d complex matrix, d = 2^n: entry (r, c) at r*d + c. *)
type t = {
  num_qubits : int;
  dim : int;
  re : float array;
  im : float array;
}

let max_qubits = 12

let init n =
  if n < 0 || n > max_qubits then
    invalid_arg
      (Printf.sprintf "Density.init: %d qubits outside [0, %d]" n max_qubits);
  let dim = 1 lsl n in
  let size = dim * dim in
  let re = Array.make size 0.0 and im = Array.make size 0.0 in
  re.(0) <- 1.0;
  { num_qubits = n; dim; re; im }

let num_qubits rho = rho.num_qubits

let of_statevector state =
  let n = Statevector.num_qubits state in
  let rho = init n in
  for r = 0 to rho.dim - 1 do
    let ar = Statevector.amplitude state r in
    for c = 0 to rho.dim - 1 do
      let ac = Statevector.amplitude state c in
      (* rho[r,c] = a_r * conj(a_c) *)
      let index = (r * rho.dim) + c in
      rho.re.(index) <-
        (ar.Complex.re *. ac.Complex.re) +. (ar.Complex.im *. ac.Complex.im);
      rho.im.(index) <-
        (ar.Complex.im *. ac.Complex.re) -. (ar.Complex.re *. ac.Complex.im)
    done
  done;
  rho

let trace rho =
  let total = ref 0.0 in
  for r = 0 to rho.dim - 1 do
    total := !total +. rho.re.((r * rho.dim) + r)
  done;
  !total

let purity rho =
  (* tr(rho^2) = sum_{r,c} |rho[r,c]|^2 for Hermitian rho *)
  let total = ref 0.0 in
  Array.iteri
    (fun i re -> total := !total +. (re *. re) +. (rho.im.(i) *. rho.im.(i)))
    rho.re;
  !total

let population rho basis =
  if basis < 0 || basis >= rho.dim then
    invalid_arg "Density.population: basis state out of range";
  rho.re.((basis * rho.dim) + basis)

(* Apply the 2x2 matrix [[a b][c d]] to the chosen bit of the ROW index,
   for every column: the columns transform like statevectors. *)
let apply_left rho q (a : Complex.t) b c d =
  let bit = 1 lsl q in
  let dim = rho.dim in
  for row = 0 to dim - 1 do
    if row land bit = 0 then begin
      let row1 = row lor bit in
      for col = 0 to dim - 1 do
        let i0 = (row * dim) + col and i1 = (row1 * dim) + col in
        let re0 = rho.re.(i0) and im0 = rho.im.(i0) in
        let re1 = rho.re.(i1) and im1 = rho.im.(i1) in
        rho.re.(i0) <-
          (a.Complex.re *. re0) -. (a.Complex.im *. im0)
          +. (b.Complex.re *. re1) -. (b.Complex.im *. im1);
        rho.im.(i0) <-
          (a.Complex.re *. im0) +. (a.Complex.im *. re0)
          +. (b.Complex.re *. im1) +. (b.Complex.im *. re1);
        rho.re.(i1) <-
          (c.Complex.re *. re0) -. (c.Complex.im *. im0)
          +. (d.Complex.re *. re1) -. (d.Complex.im *. im1);
        rho.im.(i1) <-
          (c.Complex.re *. im0) +. (c.Complex.im *. re0)
          +. (d.Complex.re *. im1) +. (d.Complex.im *. re1)
      done
    end
  done

(* Right-multiplication by U+ acts on the COLUMN index with conj(U):
   (rho U+)[r, c] = sum_k rho[r, k] conj(U[c, k]). *)
let apply_right_dagger rho q (a : Complex.t) b c d =
  let conj (z : Complex.t) = { z with Complex.im = -.z.Complex.im } in
  let a = conj a and b = conj b and c = conj c and d = conj d in
  let bit = 1 lsl q in
  let dim = rho.dim in
  for row = 0 to dim - 1 do
    for col = 0 to dim - 1 do
      if col land bit = 0 then begin
        let col1 = col lor bit in
        let i0 = (row * dim) + col and i1 = (row * dim) + col1 in
        let re0 = rho.re.(i0) and im0 = rho.im.(i0) in
        let re1 = rho.re.(i1) and im1 = rho.im.(i1) in
        rho.re.(i0) <-
          (a.Complex.re *. re0) -. (a.Complex.im *. im0)
          +. (b.Complex.re *. re1) -. (b.Complex.im *. im1);
        rho.im.(i0) <-
          (a.Complex.re *. im0) +. (a.Complex.im *. re0)
          +. (b.Complex.re *. im1) +. (b.Complex.im *. re1);
        rho.re.(i1) <-
          (c.Complex.re *. re0) -. (c.Complex.im *. im0)
          +. (d.Complex.re *. re1) -. (d.Complex.im *. im1);
        rho.im.(i1) <-
          (c.Complex.re *. im0) +. (c.Complex.im *. re0)
          +. (d.Complex.re *. im1) +. (d.Complex.im *. re1)
      end
    done
  done

(* permutation of basis states applied to rows then columns *)
let apply_permutation rho permute =
  let dim = rho.dim in
  let size = dim * dim in
  let re = Array.make size 0.0 and im = Array.make size 0.0 in
  for row = 0 to dim - 1 do
    let prow = permute row in
    for col = 0 to dim - 1 do
      let source = (row * dim) + col in
      let target = (prow * dim) + permute col in
      re.(target) <- rho.re.(source);
      im.(target) <- rho.im.(source)
    done
  done;
  Array.blit re 0 rho.re 0 size;
  Array.blit im 0 rho.im 0 size

let one_qubit_matrix = Matrices.one_qubit_matrix

let apply_gate rho gate =
  match gate with
  | Gate.One_qubit (kind, q) ->
    if q < 0 || q >= rho.num_qubits then
      invalid_arg "Density.apply_gate: qubit out of range";
    let a, b, c, d = one_qubit_matrix kind in
    apply_left rho q a b c d;
    apply_right_dagger rho q a b c d
  | Gate.Cnot { control; target } ->
    let cbit = 1 lsl control and tbit = 1 lsl target in
    apply_permutation rho (fun basis ->
        if basis land cbit <> 0 then basis lxor tbit else basis)
  | Gate.Swap (qa, qb) ->
    let abit = 1 lsl qa and bbit = 1 lsl qb in
    apply_permutation rho (fun basis ->
        let ba = basis land abit <> 0 and bb = basis land bbit <> 0 in
        if ba = bb then basis else basis lxor abit lxor bbit)
  | Gate.Measure _ | Gate.Barrier _ -> ()

let copy rho =
  {
    num_qubits = rho.num_qubits;
    dim = rho.dim;
    re = Array.copy rho.re;
    im = Array.copy rho.im;
  }

let accumulate ~weight target source =
  Array.iteri (fun i re -> target.re.(i) <- target.re.(i) +. (weight *. re)) source.re;
  Array.iteri (fun i im -> target.im.(i) <- target.im.(i) +. (weight *. im)) source.im

let scale rho factor =
  Array.iteri (fun i re -> rho.re.(i) <- factor *. re) rho.re;
  Array.iteri (fun i im -> rho.im.(i) <- factor *. im) rho.im

let paulis = [ Gate.X; Gate.Y; Gate.Z ]

let apply_pauli_channel rho ~error operands =
  if error < 0.0 || error > 1.0 then
    invalid_arg "Density.apply_pauli_channel: error outside [0, 1]";
  if error > 0.0 then begin
    let conjugations =
      match operands with
      | [ q ] -> List.map (fun p -> [ Gate.One_qubit (p, q) ]) paulis
      | [ qa; qb ] ->
        (* 15 non-identity two-qubit Paulis *)
        let legs = None :: List.map Option.some paulis in
        List.concat_map
          (fun la ->
            List.filter_map
              (fun lb ->
                match (la, lb) with
                | None, None -> None
                | _ ->
                  let gates =
                    Option.to_list
                      (Option.map (fun p -> Gate.One_qubit (p, qa)) la)
                    @ Option.to_list
                        (Option.map (fun p -> Gate.One_qubit (p, qb)) lb)
                  in
                  Some gates)
              legs)
          legs
      | _ -> invalid_arg "Density.apply_pauli_channel: need 1 or 2 operands"
    in
    let share = error /. float_of_int (List.length conjugations) in
    let original = copy rho in
    scale rho (1.0 -. error);
    List.iter
      (fun gates ->
        let branch = copy original in
        List.iter (apply_gate branch) gates;
        accumulate ~weight:share rho branch)
      conjugations
  end

let measurement_distribution rho circuit =
  let wiring = Statevector.measurement_wiring circuit in
  let outcomes = Hashtbl.create 64 in
  for basis = 0 to rho.dim - 1 do
    let p = population rho basis in
    if p > 1e-14 then begin
      let outcome =
        List.fold_left
          (fun acc (cbit, wire) ->
            if basis land (1 lsl wire) <> 0 then acc lor (1 lsl cbit) else acc)
          0 wiring
      in
      let current = Option.value (Hashtbl.find_opt outcomes outcome) ~default:0.0 in
      Hashtbl.replace outcomes outcome (current +. p)
    end
  done;
  Hashtbl.fold (fun outcome p acc -> (outcome, p) :: acc) outcomes []
  |> List.filter (fun (_, p) -> p > 1e-12)
  |> List.sort compare

let noisy_measurement_distribution ?(coherence = true)
    ?(coherence_scale = Reliability.default_coherence_scale) device circuit =
  let n = Circuit.num_qubits circuit in
  let rho = init n in
  List.iter
    (fun gate ->
      if Gate.is_unitary gate then begin
        apply_gate rho gate;
        let error = 1.0 -. Reliability.gate_success device gate in
        if error > 0.0 then apply_pauli_channel rho ~error (Gate.qubits gate)
      end)
    (Circuit.gates circuit);
  if coherence then begin
    let schedule = Schedule.build device circuit in
    List.iter
      (fun q ->
        let failure =
          1.0
          -. Reliability.coherence_survival ~scale:coherence_scale device
               schedule q
        in
        if failure > 0.0 then apply_pauli_channel rho ~error:failure [ q ])
      (Circuit.used_qubits circuit)
  end;
  (* readout confusion: independently flip each measured wire's bit *)
  let calibration = Device.calibration device in
  let wiring = Statevector.measurement_wiring circuit in
  let clean = measurement_distribution rho circuit in
  let flip_probability wire =
    (Calibration.qubit calibration wire).Calibration.error_readout
  in
  let confused = Hashtbl.create 64 in
  List.iter
    (fun (outcome, p) ->
      (* expand over flip patterns of the measured cbits *)
      let rec expand wires acc_outcome acc_p =
        match wires with
        | [] ->
          let current =
            Option.value (Hashtbl.find_opt confused acc_outcome) ~default:0.0
          in
          Hashtbl.replace confused acc_outcome (current +. acc_p)
        | (cbit, wire) :: rest ->
          let r = flip_probability wire in
          expand rest acc_outcome (acc_p *. (1.0 -. r));
          if r > 0.0 then
            expand rest (acc_outcome lxor (1 lsl cbit)) (acc_p *. r)
      in
      expand wiring outcome p)
    clean;
  Hashtbl.fold (fun outcome p acc -> (outcome, p) :: acc) confused []
  |> List.filter (fun (_, p) -> p > 1e-12)
  |> List.sort compare

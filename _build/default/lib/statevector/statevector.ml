open Vqc_circuit
module Rng = Vqc_rng.Rng

type t = {
  num_qubits : int;
  re : float array;
  im : float array;
}

let max_qubits = 24

let init n =
  if n < 0 || n > max_qubits then
    invalid_arg
      (Printf.sprintf "Statevector.init: %d qubits outside [0, %d]" n max_qubits);
  let size = 1 lsl n in
  let re = Array.make size 0.0 and im = Array.make size 0.0 in
  re.(0) <- 1.0;
  { num_qubits = n; re; im }

let num_qubits s = s.num_qubits

let copy s =
  { num_qubits = s.num_qubits; re = Array.copy s.re; im = Array.copy s.im }

let check_basis s index name =
  if index < 0 || index >= Array.length s.re then
    invalid_arg (Printf.sprintf "Statevector.%s: basis state out of range" name)

let amplitude s index =
  check_basis s index "amplitude";
  { Complex.re = s.re.(index); im = s.im.(index) }

let probability s index =
  check_basis s index "probability";
  (s.re.(index) *. s.re.(index)) +. (s.im.(index) *. s.im.(index))

let norm s =
  let total = ref 0.0 in
  for i = 0 to Array.length s.re - 1 do
    total := !total +. (s.re.(i) *. s.re.(i)) +. (s.im.(i) *. s.im.(i))
  done;
  !total

let check_qubit s q =
  if q < 0 || q >= s.num_qubits then
    invalid_arg (Printf.sprintf "Statevector: qubit %d out of range" q)

(* Apply a general 2x2 unitary [[a b][c d]] to one qubit: iterate over
   every pair of basis states that differ in that qubit's bit. *)
let apply_one_qubit s q (a : Complex.t) b c d =
  check_qubit s q;
  let bit = 1 lsl q in
  let size = Array.length s.re in
  let i = ref 0 in
  while !i < size do
    if !i land bit = 0 then begin
      let j = !i lor bit in
      let re0 = s.re.(!i) and im0 = s.im.(!i) in
      let re1 = s.re.(j) and im1 = s.im.(j) in
      s.re.(!i) <-
        (a.Complex.re *. re0) -. (a.Complex.im *. im0)
        +. (b.Complex.re *. re1) -. (b.Complex.im *. im1);
      s.im.(!i) <-
        (a.Complex.re *. im0) +. (a.Complex.im *. re0)
        +. (b.Complex.re *. im1) +. (b.Complex.im *. re1);
      s.re.(j) <-
        (c.Complex.re *. re0) -. (c.Complex.im *. im0)
        +. (d.Complex.re *. re1) -. (d.Complex.im *. im1);
      s.im.(j) <-
        (c.Complex.re *. im0) +. (c.Complex.im *. re0)
        +. (d.Complex.re *. im1) +. (d.Complex.im *. re1)
    end;
    incr i
  done

let one_qubit_matrix = Matrices.one_qubit_matrix

let apply_cnot s ~control ~target =
  check_qubit s control;
  check_qubit s target;
  if control = target then invalid_arg "Statevector: cnot operands collide";
  let cbit = 1 lsl control and tbit = 1 lsl target in
  let size = Array.length s.re in
  for i = 0 to size - 1 do
    (* swap amplitudes of (c=1, t=0) with (c=1, t=1): visit each pair once *)
    if i land cbit <> 0 && i land tbit = 0 then begin
      let j = i lor tbit in
      let re = s.re.(i) and im = s.im.(i) in
      s.re.(i) <- s.re.(j);
      s.im.(i) <- s.im.(j);
      s.re.(j) <- re;
      s.im.(j) <- im
    end
  done

let apply_swap s a b =
  check_qubit s a;
  check_qubit s b;
  if a = b then invalid_arg "Statevector: swap operands collide";
  let abit = 1 lsl a and bbit = 1 lsl b in
  let size = Array.length s.re in
  for i = 0 to size - 1 do
    (* swap amplitudes of (a=1, b=0) with (a=0, b=1): visit once *)
    if i land abit <> 0 && i land bbit = 0 then begin
      let j = (i lxor abit) lor bbit in
      let re = s.re.(i) and im = s.im.(i) in
      s.re.(i) <- s.re.(j);
      s.im.(i) <- s.im.(j);
      s.re.(j) <- re;
      s.im.(j) <- im
    end
  done

let apply_gate s gate =
  match gate with
  | Gate.One_qubit (kind, q) ->
    let a, b, c, d = one_qubit_matrix kind in
    apply_one_qubit s q a b c d
  | Gate.Cnot { control; target } -> apply_cnot s ~control ~target
  | Gate.Swap (a, b) -> apply_swap s a b
  | Gate.Measure _ | Gate.Barrier _ -> ()

let run circuit =
  let s = init (Circuit.num_qubits circuit) in
  List.iter (apply_gate s) (Circuit.gates circuit);
  s

let probabilities s = Array.init (Array.length s.re) (probability s)

(* cbit -> final wire location.  A routed circuit may SWAP through an
   already-measured qubit, relocating the recorded state; by the deferred
   measurement principle, reading the wire's *final* location at the end
   of a purely-unitary simulation is exact as long as nothing but SWAPs
   (and controls, which act classically) touch the measured wire. *)
let measurement_map circuit =
  let tag_of_wire = Hashtbl.create 8 in
  (* wire -> cbit *)
  let seen_cbits = Hashtbl.create 8 in
  let fail_on_tagged gate q =
    if Hashtbl.mem tag_of_wire q then
      invalid_arg
        (Printf.sprintf
           "Statevector: gate %s rewrites already-measured qubit %d"
           (Gate.to_string gate) q)
  in
  List.iter
    (fun gate ->
      match gate with
      | Gate.Measure { qubit; cbit } ->
        if Hashtbl.mem seen_cbits cbit then
          invalid_arg
            (Printf.sprintf "Statevector: classical bit %d written twice" cbit);
        fail_on_tagged gate qubit;
        Hashtbl.replace seen_cbits cbit ();
        Hashtbl.replace tag_of_wire qubit cbit
      | Gate.Swap (a, b) ->
        let tag_a = Hashtbl.find_opt tag_of_wire a in
        let tag_b = Hashtbl.find_opt tag_of_wire b in
        Hashtbl.remove tag_of_wire a;
        Hashtbl.remove tag_of_wire b;
        Option.iter (fun c -> Hashtbl.replace tag_of_wire b c) tag_a;
        Option.iter (fun c -> Hashtbl.replace tag_of_wire a c) tag_b
      | Gate.One_qubit (_, q) -> fail_on_tagged gate q
      | Gate.Cnot { control; target } ->
        (* a measured wire may act as a (classical) control, but may not
           be rewritten as a target *)
        ignore control;
        fail_on_tagged gate target
      | Gate.Barrier _ -> ())
    (Circuit.gates circuit);
  Hashtbl.fold (fun wire cbit acc -> (cbit, wire) :: acc) tag_of_wire []

let measurement_wiring = measurement_map

let measurement_distribution circuit =
  let wiring = measurement_map circuit in
  let s = run circuit in
  let outcomes = Hashtbl.create 64 in
  let size = Array.length s.re in
  for basis = 0 to size - 1 do
    let p = probability s basis in
    if p > 1e-12 then begin
      let outcome =
        List.fold_left
          (fun acc (cbit, qubit) ->
            if basis land (1 lsl qubit) <> 0 then acc lor (1 lsl cbit) else acc)
          0 wiring
      in
      let current = Option.value (Hashtbl.find_opt outcomes outcome) ~default:0.0 in
      Hashtbl.replace outcomes outcome (current +. p)
    end
  done;
  Hashtbl.fold (fun outcome p acc -> (outcome, p) :: acc) outcomes []
  |> List.filter (fun (_, p) -> p > 1e-12)
  |> List.sort compare

let distribution_distance a b =
  let table = Hashtbl.create 64 in
  List.iter (fun (k, p) -> Hashtbl.replace table k p) a;
  let overlap_keys = Hashtbl.copy table in
  List.iter (fun (k, _) -> Hashtbl.replace overlap_keys k 0.0) b;
  let b_table = Hashtbl.create 64 in
  List.iter (fun (k, p) -> Hashtbl.replace b_table k p) b;
  let total =
    Hashtbl.fold
      (fun k _ acc ->
        let pa = Option.value (Hashtbl.find_opt table k) ~default:0.0 in
        let pb = Option.value (Hashtbl.find_opt b_table k) ~default:0.0 in
        acc +. Float.abs (pa -. pb))
      overlap_keys 0.0
  in
  total /. 2.0

let sample rng circuit ~trials =
  if trials <= 0 then invalid_arg "Statevector.sample: need positive trials";
  let distribution = measurement_distribution circuit in
  let counts = Hashtbl.create 16 in
  for _ = 1 to trials do
    let u = Rng.float rng in
    let rec pick acc = function
      | [] -> fst (List.hd (List.rev distribution))
      | (outcome, p) :: rest ->
        if u < acc +. p then outcome else pick (acc +. p) rest
    in
    let outcome = pick 0.0 distribution in
    let current = Option.value (Hashtbl.find_opt counts outcome) ~default:0 in
    Hashtbl.replace counts outcome (current + 1)
  done;
  Hashtbl.fold (fun outcome count acc -> (outcome, count) :: acc) counts []
  |> List.sort compare

let bits_of_basis n basis =
  String.init n (fun b ->
      if basis land (1 lsl (n - 1 - b)) <> 0 then '1' else '0')

let pp ppf s =
  Format.fprintf ppf "@[<v>state (%d qubits)" s.num_qubits;
  Array.iteri
    (fun basis _ ->
      let p = probability s basis in
      if p > 1e-9 then
        Format.fprintf ppf "@,  |%s>  %.4f%+.4fi  (p=%.4f)"
          (bits_of_basis s.num_qubits basis)
          s.re.(basis) s.im.(basis) p)
    s.re;
  Format.fprintf ppf "@]"

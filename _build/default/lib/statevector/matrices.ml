open Vqc_circuit

let complex re im = { Complex.re; im }
let c0 = complex 0.0 0.0
let c1 = complex 1.0 0.0
let ci = complex 0.0 1.0
let cneg1 = complex (-1.0) 0.0
let cnegi = complex 0.0 (-1.0)
let inv_sqrt2 = 1.0 /. sqrt 2.0

let phase theta = complex (cos theta) (sin theta)

let one_qubit_matrix kind =
  match kind with
  | Gate.H ->
    ( complex inv_sqrt2 0.0, complex inv_sqrt2 0.0,
      complex inv_sqrt2 0.0, complex (-.inv_sqrt2) 0.0 )
  | Gate.X -> (c0, c1, c1, c0)
  | Gate.Y -> (c0, cnegi, ci, c0)
  | Gate.Z -> (c1, c0, c0, cneg1)
  | Gate.S -> (c1, c0, c0, ci)
  | Gate.Sdg -> (c1, c0, c0, cnegi)
  | Gate.T -> (c1, c0, c0, phase (Float.pi /. 4.0))
  | Gate.Tdg -> (c1, c0, c0, phase (-.Float.pi /. 4.0))
  | Gate.Rx theta ->
    let c = cos (theta /. 2.0) and s = sin (theta /. 2.0) in
    (complex c 0.0, complex 0.0 (-.s), complex 0.0 (-.s), complex c 0.0)
  | Gate.Ry theta ->
    let c = cos (theta /. 2.0) and s = sin (theta /. 2.0) in
    (complex c 0.0, complex (-.s) 0.0, complex s 0.0, complex c 0.0)
  | Gate.Rz theta -> (phase (-.theta /. 2.0), c0, c0, phase (theta /. 2.0))
  | Gate.U1 theta -> (c1, c0, c0, phase theta)

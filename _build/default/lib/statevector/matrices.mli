(** 2x2 unitaries of the one-qubit gate set (shared by the state-vector
    and density-matrix engines). *)

open Vqc_circuit

val one_qubit_matrix :
  Gate.one_qubit_kind -> Complex.t * Complex.t * Complex.t * Complex.t
(** Row-major entries [(a, b, c, d)] of [[a b][c d]]. *)

(* Tests for the exact density-matrix engine, including the verification
   triangle: the trajectory sampler's histogram must converge to the
   density matrix's exact noisy distribution. *)

module Gate = Vqc_circuit.Gate
module Circuit = Vqc_circuit.Circuit
module Calibration = Vqc_device.Calibration
module Device = Vqc_device.Device
module Sv = Vqc_statevector.Statevector
module Density = Vqc_statevector.Density
module Trajectory = Vqc_statevector.Trajectory
module Rng = Vqc_rng.Rng

let check = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let cx c t = Gate.Cnot { control = c; target = t }
let h q = Gate.One_qubit (Gate.H, q)
let meas q = Gate.Measure { qubit = q; cbit = q }

let test_init_is_pure_ground () =
  let rho = Density.init 2 in
  check_float "trace" 1.0 (Density.trace rho);
  check_float "purity" 1.0 (Density.purity rho);
  check_float "p(00)" 1.0 (Density.population rho 0)

let test_unitaries_match_statevector () =
  let gates =
    [
      h 0; cx 0 1; Gate.One_qubit (Gate.T, 1); Gate.One_qubit (Gate.Ry 0.7, 2);
      cx 1 2; Gate.Swap (0, 2); Gate.One_qubit (Gate.Rz (-1.2), 0);
    ]
  in
  let rho = Density.init 3 in
  let state = Sv.init 3 in
  List.iter
    (fun gate ->
      Density.apply_gate rho gate;
      Sv.apply_gate state gate)
    gates;
  for basis = 0 to 7 do
    check_float
      (Printf.sprintf "population %d" basis)
      (Sv.probability state basis)
      (Density.population rho basis)
  done;
  check_float "still pure" 1.0 (Density.purity rho);
  check_float "trace preserved" 1.0 (Density.trace rho)

let test_of_statevector () =
  let state = Sv.init 2 in
  Sv.apply_gate state (h 0);
  Sv.apply_gate state (cx 0 1);
  let rho = Density.of_statevector state in
  check_float "purity" 1.0 (Density.purity rho);
  check_float "p(00)" 0.5 (Density.population rho 0);
  check_float "p(11)" 0.5 (Density.population rho 3)

let test_pauli_channel_properties () =
  let rho = Density.init 2 in
  Density.apply_gate rho (h 0);
  Density.apply_gate rho (cx 0 1);
  Density.apply_pauli_channel rho ~error:0.2 [ 0 ];
  check "trace preserved" true (Float.abs (Density.trace rho -. 1.0) < 1e-9);
  check "purity dropped" true (Density.purity rho < 0.999);
  Density.apply_pauli_channel rho ~error:0.1 [ 0; 1 ];
  check "trace still preserved" true
    (Float.abs (Density.trace rho -. 1.0) < 1e-9);
  (* zero-error channel is a no-op *)
  let before = Density.purity rho in
  Density.apply_pauli_channel rho ~error:0.0 [ 0 ];
  check_float "no-op at zero error" before (Density.purity rho)

let test_full_depolarization_is_uniform () =
  (* complete 1q Pauli scrambling of a |+> qubit gives the maximally
     mixed qubit: p(0) = p(1) = 1/2 with purity 1/2 *)
  let rho = Density.init 1 in
  Density.apply_gate rho (h 0);
  (* error 3/4 of uniform X/Y/Z mixing equals full depolarizing *)
  Density.apply_pauli_channel rho ~error:0.75 [ 0 ];
  check "p(0) = 1/2" true (Float.abs (Density.population rho 0 -. 0.5) < 1e-9);
  check "purity 1/2" true (Float.abs (Density.purity rho -. 0.5) < 1e-9)

let noisy_device () =
  let coupling = [ (0, 1); (1, 2) ] in
  let c = Calibration.create 3 in
  for q = 0 to 2 do
    Calibration.set_qubit c q
      { Calibration.t1_us = 60.; t2_us = 35.; error_1q = 0.004; error_readout = 0.05 }
  done;
  Calibration.set_link_error c 0 1 0.04;
  Calibration.set_link_error c 1 2 0.09;
  Device.make ~name:"noisy3" ~coupling c

let test_noiseless_distribution_matches_statevector () =
  let circuit = Vqc_workloads.Ghz.circuit 3 in
  let rho = Density.init 3 in
  List.iter (Density.apply_gate rho) (Circuit.gates circuit);
  let dm = Density.measurement_distribution rho circuit in
  let sv = Sv.measurement_distribution circuit in
  check "identical distributions" true
    (Sv.distribution_distance dm sv < 1e-9)

let test_trajectory_converges_to_density () =
  (* the verification triangle: sampled noisy trajectories vs the exact
     channel evolution *)
  let device = noisy_device () in
  List.iter
    (fun circuit ->
      let exact = Density.noisy_measurement_distribution device circuit in
      let histogram = Trajectory.run ~trials:60_000 (Rng.make 11) device circuit in
      let observed = Trajectory.frequencies histogram in
      check "distributions agree" true
        (Sv.distribution_distance exact observed < 0.02))
    [
      Vqc_workloads.Ghz.circuit 3;
      Circuit.of_gates 3 [ Gate.One_qubit (Gate.X, 0); cx 0 1; cx 1 2; meas 0; meas 1; meas 2 ];
      Vqc_workloads.Wstate.circuit 3;
    ]

let test_noisy_distribution_is_normalized () =
  let device = noisy_device () in
  let circuit = Vqc_workloads.Ghz.circuit 3 in
  let d = Density.noisy_measurement_distribution device circuit in
  let total = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 d in
  check "normalized" true (Float.abs (total -. 1.0) < 1e-9);
  List.iter (fun (_, p) -> check "positive" true (p > 0.0)) d

let test_readout_confusion_applied () =
  (* pure |0> with 10% readout error reads 1 with probability 0.1 *)
  let c = Calibration.create 1 in
  Calibration.set_qubit c 0
    { Calibration.t1_us = 1e9; t2_us = 1e9; error_1q = 0.0; error_readout = 0.10 };
  let device = Device.make ~name:"ro" ~coupling:[] c in
  let circuit = Circuit.of_gates 1 [ meas 0 ] in
  match Density.noisy_measurement_distribution device circuit with
  | [ (0, p0); (1, p1) ] ->
    check_float "p(0)" 0.9 p0;
    check_float "p(1)" 0.1 p1
  | other -> Alcotest.failf "unexpected distribution (%d)" (List.length other)

let test_rejects_bad_inputs () =
  let raises f = try f () |> ignore; false with Invalid_argument _ -> true in
  check "too many qubits" true (raises (fun () -> Density.init 13));
  let rho = Density.init 2 in
  check "channel arity" true
    (raises (fun () -> Density.apply_pauli_channel rho ~error:0.1 [ 0; 1; 0 ]));
  check "error range" true
    (raises (fun () -> Density.apply_pauli_channel rho ~error:1.5 [ 0 ]))

let () =
  Alcotest.run "vqc_density"
    [
      ( "states",
        [
          Alcotest.test_case "pure ground" `Quick test_init_is_pure_ground;
          Alcotest.test_case "unitaries = statevector" `Quick
            test_unitaries_match_statevector;
          Alcotest.test_case "of_statevector" `Quick test_of_statevector;
        ] );
      ( "channels",
        [
          Alcotest.test_case "pauli channel" `Quick test_pauli_channel_properties;
          Alcotest.test_case "full depolarization" `Quick
            test_full_depolarization_is_uniform;
          Alcotest.test_case "bad inputs" `Quick test_rejects_bad_inputs;
        ] );
      ( "noisy distributions",
        [
          Alcotest.test_case "noiseless = statevector" `Quick
            test_noiseless_distribution_matches_statevector;
          Alcotest.test_case "normalized" `Quick
            test_noisy_distribution_is_normalized;
          Alcotest.test_case "readout confusion" `Quick
            test_readout_confusion_applied;
          Alcotest.test_case "trajectory converges" `Slow
            test_trajectory_converges_to_density;
        ] );
    ]

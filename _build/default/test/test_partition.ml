(* Tests for the partitioning case study (paper Section 8). *)

module Circuit = Vqc_circuit.Circuit
module Gate = Vqc_circuit.Gate
module Device = Vqc_device.Device
module Calibration = Vqc_device.Calibration
module Topologies = Vqc_device.Topologies
module Partition = Vqc_partition.Partition
module Metrics = Vqc_sim.Metrics
module Catalog = Vqc_workloads.Catalog

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let q20 () = Vqc_experiments.Context.default.Vqc_experiments.Context.q20

let disjoint a b = List.for_all (fun x -> not (List.mem x b)) a

let test_two_copy_candidates_are_disjoint_and_sized () =
  let device = q20 () in
  let candidates = Partition.two_copy_candidates device ~size:8 in
  check "some candidates" true (candidates <> []);
  List.iter
    (fun (x, y) ->
      check_int "x size" 8 (List.length x);
      check_int "y size" 8 (List.length y);
      check "disjoint" true (disjoint x y))
    candidates

let test_two_copy_candidates_impossible_size () =
  (* two disjoint 11-qubit regions cannot fit on 20 qubits *)
  let device = q20 () in
  check "no candidates" true (Partition.two_copy_candidates device ~size:11 = [])

let test_evaluate_on_region () =
  let device = q20 () in
  let ghz = Vqc_workloads.Ghz.circuit 4 in
  let copy = Partition.evaluate_on_region device [ 0; 1; 2; 5; 6 ] ghz in
  check "positive pst" true (copy.Partition.pst > 0.0 && copy.Partition.pst <= 1.0);
  check "positive duration" true (copy.Partition.duration_ns > 0.0);
  Alcotest.(check (list int)) "region recorded" [ 0; 1; 2; 5; 6 ]
    copy.Partition.region;
  check "too-small region raises" true
    (try
       let _ = Partition.evaluate_on_region device [ 0; 1 ] ghz in
       false
     with Invalid_argument _ -> true)

let test_compare_strategies_invariants () =
  let device = q20 () in
  let circuit = (Catalog.find "bv-10").Catalog.circuit in
  let cmp = Partition.compare_strategies device circuit in
  (* copies occupy disjoint regions of the right size *)
  check_int "copy x size" 10 (List.length cmp.Partition.copy_x.Partition.region);
  check_int "copy y size" 10 (List.length cmp.Partition.copy_y.Partition.region);
  check "copies disjoint" true
    (disjoint cmp.Partition.copy_x.Partition.region
       cmp.Partition.copy_y.Partition.region);
  (* copy x is the stronger one by construction *)
  check "x at least as strong as y" true
    (cmp.Partition.copy_x.Partition.pst >= cmp.Partition.copy_y.Partition.pst);
  (* the single strong copy is at least as reliable as the best split copy *)
  check "single copy strongest" true
    (cmp.Partition.single.Partition.pst
    >= cmp.Partition.copy_x.Partition.pst -. 1e-9);
  (* the paper's core trade-off: two copies buy rate, one copy buys PST.
     Both copies share the merged circuit's shot clock, so the two-copy
     rate is at least the stronger copy's under that clock. *)
  let shot =
    Float.max cmp.Partition.copy_x.Partition.duration_ns
      cmp.Partition.copy_y.Partition.duration_ns
  in
  let stpt_x_shared =
    Metrics.stpt ~pst:cmp.Partition.copy_x.Partition.pst ~duration_ns:shot
  in
  check "two-copy stpt dominates its stronger copy" true
    (cmp.Partition.stpt_two >= stpt_x_shared -. 1e-9)

let test_compare_strategies_rejects_wide_program () =
  let device = q20 () in
  check "raises" true
    (try
       let _ =
         Partition.compare_strategies device
           ((Catalog.find "bv-16").Catalog.circuit)
       in
       false
     with Invalid_argument _ -> true)

(* A hand-built machine where the only strong links sit mid-chip, so any
   two-copy split has to break them up while a single copy can claim them
   (the paper's Figure 15 story: two copies "resort to the weaker
   links"). *)
let test_single_copy_wins_on_contrived_machine () =
  let c = Calibration.create 6 in
  List.iter
    (fun (u, v, e) -> Calibration.set_link_error c u v e)
    [ (0, 1, 0.4); (1, 2, 0.4); (2, 3, 0.01); (3, 4, 0.01); (4, 5, 0.4) ];
  let device = Device.make ~name:"lopsided" ~coupling:(Topologies.linear 6) c in
  let program =
    Circuit.of_gates 3
      [
        Gate.Cnot { control = 0; target = 1 };
        Gate.Cnot { control = 1; target = 2 };
        Gate.Measure { qubit = 0; cbit = 0 };
        Gate.Measure { qubit = 1; cbit = 1 };
        Gate.Measure { qubit = 2; cbit = 2 };
      ]
  in
  let cmp = Partition.compare_strategies device program in
  check "one strong copy wins" true
    (cmp.Partition.stpt_single > cmp.Partition.stpt_two)

let test_two_copies_win_on_uniform_machine () =
  (* no variation: two copies double the trial rate at identical PST *)
  let device =
    Vqc_device.Calibration_model.uniform_device ~name:"uniform"
      ~coupling:(Topologies.grid ~rows:2 ~cols:4) 8 ~error_2q:0.02
  in
  let program =
    Circuit.of_gates 3
      [
        Gate.Cnot { control = 0; target = 1 };
        Gate.Measure { qubit = 0; cbit = 0 };
        Gate.Measure { qubit = 1; cbit = 1 };
      ]
  in
  let cmp = Partition.compare_strategies device program in
  check "two copies win" true (cmp.Partition.stpt_two > cmp.Partition.stpt_single)

let () =
  Alcotest.run "vqc_partition"
    [
      ( "candidates",
        [
          Alcotest.test_case "disjoint and sized" `Quick
            test_two_copy_candidates_are_disjoint_and_sized;
          Alcotest.test_case "impossible size" `Quick
            test_two_copy_candidates_impossible_size;
        ] );
      ( "evaluation",
        [
          Alcotest.test_case "region evaluation" `Quick test_evaluate_on_region;
          Alcotest.test_case "comparison invariants" `Slow
            test_compare_strategies_invariants;
          Alcotest.test_case "wide program" `Quick
            test_compare_strategies_rejects_wide_program;
        ] );
      ( "crossover",
        [
          Alcotest.test_case "single copy wins when lopsided" `Quick
            test_single_copy_wins_on_contrived_machine;
          Alcotest.test_case "two copies win when uniform" `Quick
            test_two_copies_win_on_uniform_machine;
        ] );
    ]

test/test_device.ml: Alcotest Array Float Fun List Vqc_device Vqc_graph Vqc_rng

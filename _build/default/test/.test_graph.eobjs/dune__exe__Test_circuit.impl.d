test/test_circuit.ml: Alcotest Float List Printf QCheck2 QCheck_alcotest Vqc_circuit Vqc_workloads

test/test_graph.ml: Alcotest Array Float Fun List QCheck2 QCheck_alcotest Vqc_graph

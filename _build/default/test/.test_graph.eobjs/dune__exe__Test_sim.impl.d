test/test_sim.ml: Alcotest Array Float List Vqc_circuit Vqc_device Vqc_experiments Vqc_mapper Vqc_rng Vqc_sim Vqc_workloads

test/test_workloads.ml: Alcotest List Vqc_circuit Vqc_workloads

test/test_statevector.ml: Alcotest Array Float List Option QCheck2 QCheck_alcotest Vqc_circuit Vqc_device Vqc_experiments Vqc_mapper Vqc_rng Vqc_statevector Vqc_workloads

test/test_partition.ml: Alcotest Float List Vqc_circuit Vqc_device Vqc_experiments Vqc_partition Vqc_sim Vqc_workloads

test/test_rng.ml: Alcotest Array Float Fun List Vqc_rng

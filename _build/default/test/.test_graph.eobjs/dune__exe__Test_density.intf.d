test/test_density.mli:

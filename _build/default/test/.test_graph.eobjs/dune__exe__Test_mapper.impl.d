test/test_mapper.ml: Alcotest Float List QCheck2 QCheck_alcotest Vqc_circuit Vqc_device Vqc_experiments Vqc_mapper Vqc_rng Vqc_sim Vqc_workloads

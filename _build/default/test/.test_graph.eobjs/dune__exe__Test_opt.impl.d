test/test_opt.ml: Alcotest Float List QCheck2 QCheck_alcotest Vqc_circuit Vqc_opt Vqc_statevector Vqc_workloads

test/test_density.ml: Alcotest Float List Printf Vqc_circuit Vqc_device Vqc_rng Vqc_statevector Vqc_workloads

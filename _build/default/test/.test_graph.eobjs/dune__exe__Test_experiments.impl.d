test/test_experiments.ml: Alcotest Buffer Float Format Fun List Printf String Vqc_device Vqc_experiments Vqc_mapper Vqc_sim Vqc_workloads

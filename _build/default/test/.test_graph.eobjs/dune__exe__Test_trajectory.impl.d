test/test_trajectory.ml: Alcotest Float List Option Vqc_circuit Vqc_device Vqc_mapper Vqc_rng Vqc_sim Vqc_statevector Vqc_workloads

test/test_trajectory.mli:

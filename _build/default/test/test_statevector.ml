(* Tests for the ideal state-vector simulator, plus the end-to-end
   functional checks it enables: a compiled circuit must compute the same
   classical outcome distribution as its source program. *)

module Gate = Vqc_circuit.Gate
module Circuit = Vqc_circuit.Circuit
module Sv = Vqc_statevector.Statevector
module Compiler = Vqc_mapper.Compiler
module Calibration_model = Vqc_device.Calibration_model
module Catalog = Vqc_workloads.Catalog
module Rng = Vqc_rng.Rng

let check = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let cx c t = Gate.Cnot { control = c; target = t }
let h q = Gate.One_qubit (Gate.H, q)
let x q = Gate.One_qubit (Gate.X, q)
let meas q = Gate.Measure { qubit = q; cbit = q }

(* ---- elementary states ---------------------------------------------- *)

let test_init_is_ground_state () =
  let s = Sv.init 3 in
  check_float "p(|000>)" 1.0 (Sv.probability s 0);
  check_float "norm" 1.0 (Sv.norm s);
  check "rejects huge registers" true
    (try
       let _ = Sv.init 30 in
       false
     with Invalid_argument _ -> true)

let test_x_flips () =
  let s = Sv.init 2 in
  Sv.apply_gate s (x 1);
  check_float "p(|10>)" 1.0 (Sv.probability s 0b10)

let test_h_superposition () =
  let s = Sv.init 1 in
  Sv.apply_gate s (h 0);
  check_float "p(0)" 0.5 (Sv.probability s 0);
  check_float "p(1)" 0.5 (Sv.probability s 1)

let test_h_squared_is_identity () =
  let s = Sv.init 1 in
  Sv.apply_gate s (h 0);
  Sv.apply_gate s (h 0);
  check_float "back to |0>" 1.0 (Sv.probability s 0)

let test_bell_state () =
  let s = Sv.init 2 in
  Sv.apply_gate s (h 0);
  Sv.apply_gate s (cx 0 1);
  check_float "p(00)" 0.5 (Sv.probability s 0b00);
  check_float "p(11)" 0.5 (Sv.probability s 0b11);
  check_float "p(01)" 0.0 (Sv.probability s 0b01)

let test_swap_moves_amplitude () =
  let s = Sv.init 2 in
  Sv.apply_gate s (x 0);
  Sv.apply_gate s (Gate.Swap (0, 1));
  check_float "p(|10>)" 1.0 (Sv.probability s 0b10)

let test_swap_equals_three_cnots () =
  let direct = Sv.init 3 in
  Sv.apply_gate direct (h 0);
  Sv.apply_gate direct (Gate.One_qubit (Gate.T, 1));
  Sv.apply_gate direct (x 1);
  Sv.apply_gate direct (Gate.Swap (0, 1));
  let expanded = Sv.init 3 in
  Sv.apply_gate expanded (h 0);
  Sv.apply_gate expanded (Gate.One_qubit (Gate.T, 1));
  Sv.apply_gate expanded (x 1);
  Sv.apply_gate expanded (cx 0 1);
  Sv.apply_gate expanded (cx 1 0);
  Sv.apply_gate expanded (cx 0 1);
  for basis = 0 to 7 do
    check_float "amplitudes agree"
      (Sv.probability direct basis)
      (Sv.probability expanded basis)
  done

let test_rotation_identities () =
  (* Rz(pi) = Z up to global phase; check probabilities after H *)
  let with_gates gates =
    let s = Sv.init 1 in
    List.iter (Sv.apply_gate s) gates;
    Sv.probabilities s
  in
  let a = with_gates [ h 0; Gate.One_qubit (Gate.Rz Float.pi, 0); h 0 ] in
  let b = with_gates [ h 0; Gate.One_qubit (Gate.Z, 0); h 0 ] in
  Array.iteri (fun i p -> check_float "rz(pi) ~ z" p b.(i)) a;
  (* S = T^2 *)
  let s1 = with_gates [ h 0; Gate.One_qubit (Gate.S, 0); h 0 ] in
  let t2 = with_gates [ h 0; Gate.One_qubit (Gate.T, 0); Gate.One_qubit (Gate.T, 0); h 0 ] in
  Array.iteri (fun i p -> check_float "s = t^2" p t2.(i)) s1

let test_unitarity_preserves_norm () =
  let rng = Rng.make 5 in
  let s = Sv.init 4 in
  for _ = 1 to 50 do
    let q = Rng.int rng 4 in
    let other = (q + 1 + Rng.int rng 3) mod 4 in
    let gate =
      match Rng.int rng 5 with
      | 0 -> h q
      | 1 -> Gate.One_qubit (Gate.Rz (Rng.uniform rng (-3.0) 3.0), q)
      | 2 -> Gate.One_qubit (Gate.Ry (Rng.uniform rng (-3.0) 3.0), q)
      | 3 -> cx q other
      | _ -> Gate.Swap (q, other)
    in
    Sv.apply_gate s gate
  done;
  check "norm stays 1" true (Float.abs (Sv.norm s -. 1.0) < 1e-9)

(* ---- measurement distributions -------------------------------------- *)

let test_ghz_distribution () =
  let circuit = Vqc_workloads.Ghz.circuit 3 in
  match Sv.measurement_distribution circuit with
  | [ (0b000, p0); (0b111, p1) ] ->
    check_float "p(000)" 0.5 p0;
    check_float "p(111)" 0.5 p1
  | other ->
    Alcotest.failf "unexpected GHZ distribution (%d entries)"
      (List.length other)

let test_bv_recovers_secret () =
  (* Bernstein-Vazirani is deterministic: the data register reads the
     secret with probability 1 *)
  let secret = 0b1011 in
  let circuit = Vqc_workloads.Bv.circuit ~secret 6 in
  match Sv.measurement_distribution circuit with
  | [ (outcome, p) ] ->
    check_float "deterministic" 1.0 p;
    Alcotest.(check int) "reads the secret" secret outcome
  | other ->
    Alcotest.failf "BV should be deterministic, got %d outcomes"
      (List.length other)

let test_triswap_rotates () =
  (* excitation on qubit 0; swap(0,1) moves it to 1, swap(1,2) to 2,
     swap(0,2) back to 0 *)
  match Sv.measurement_distribution Vqc_workloads.Triswap.circuit with
  | [ (outcome, p) ] ->
    check_float "deterministic" 1.0 p;
    Alcotest.(check int) "excitation returns to qubit 0" 0b001 outcome
  | other ->
    Alcotest.failf "TriSwap should be deterministic, got %d outcomes"
      (List.length other)

(* ---- extended-suite kernels (functional correctness) ----------------- *)

let test_deutsch_jozsa_distinguishes () =
  (match Sv.measurement_distribution (Vqc_workloads.Dj.circuit Vqc_workloads.Dj.Constant 5) with
  | [ (0, p) ] -> check_float "constant reads zero" 1.0 p
  | _ -> Alcotest.fail "constant oracle should be deterministic zero");
  match
    Sv.measurement_distribution
      (Vqc_workloads.Dj.circuit (Vqc_workloads.Dj.Balanced 0b0110) 5)
  with
  | [ (outcome, p) ] ->
    check_float "balanced deterministic" 1.0 p;
    check "balanced reads non-zero" true (outcome <> 0);
    Alcotest.(check int) "reads the mask" 0b0110 outcome
  | _ -> Alcotest.fail "balanced oracle should be deterministic"

let test_grover_finds_marked () =
  (* 2 qubits: exact; 3 qubits: ~94.5% after two iterations *)
  List.iter
    (fun marked ->
      let outcomes =
        Sv.measurement_distribution (Vqc_workloads.Grover.circuit ~marked 2)
      in
      let p = Option.value (List.assoc_opt marked outcomes) ~default:0.0 in
      check "2-qubit grover exact" true (Float.abs (p -. 1.0) < 1e-9))
    [ 0b00; 0b01; 0b10; 0b11 ];
  let outcomes =
    Sv.measurement_distribution (Vqc_workloads.Grover.circuit ~marked:0b101 3)
  in
  let p = Option.value (List.assoc_opt 0b101 outcomes) ~default:0.0 in
  check "3-qubit grover amplifies" true (p > 0.9)

let test_wstate_uniform_one_hot () =
  let n = 5 in
  let outcomes = Sv.measurement_distribution (Vqc_workloads.Wstate.circuit n) in
  Alcotest.(check int) "n outcomes" n (List.length outcomes);
  List.iter
    (fun (outcome, p) ->
      check "one-hot" true
        (outcome > 0 && outcome land (outcome - 1) = 0);
      check_float "uniform" (1.0 /. float_of_int n) p)
    outcomes

let test_qaoa_structure () =
  let module Circuit = Vqc_circuit.Circuit in
  let c = Vqc_workloads.Qaoa.ring_maxcut ~layers:2 6 in
  let s = Circuit.stats c in
  (* 2 layers x 6 ring edges x 2 CNOTs *)
  Alcotest.(check int) "cx count" 24 s.Circuit.cnot_gates;
  check "valid distribution" true
    (let outcomes = Sv.measurement_distribution c in
     let total = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 outcomes in
     Float.abs (total -. 1.0) < 1e-9)

let test_distribution_distance () =
  let a = [ (0, 0.5); (3, 0.5) ] in
  check_float "identical" 0.0 (Sv.distribution_distance a a);
  check_float "disjoint" 1.0
    (Sv.distribution_distance a [ (1, 0.5); (2, 0.5) ]);
  check_float "half-overlap" 0.5
    (Sv.distribution_distance a [ (0, 0.5); (2, 0.5) ])

let test_sampling_matches_distribution () =
  let circuit = Vqc_workloads.Ghz.circuit 2 in
  let samples = Sv.sample (Rng.make 3) circuit ~trials:10_000 in
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 samples in
  Alcotest.(check int) "all trials counted" 10_000 total;
  List.iter
    (fun (outcome, count) ->
      check "only 00 and 11" true (outcome = 0b00 || outcome = 0b11);
      check "roughly half" true (abs (count - 5000) < 300))
    samples

let test_double_write_rejected () =
  let circuit =
    Circuit.of_gates 2
      [ Gate.Measure { qubit = 0; cbit = 0 }; Gate.Measure { qubit = 1; cbit = 0 } ]
  in
  check "raises" true
    (try
       let _ = Sv.measurement_distribution circuit in
       false
     with Invalid_argument _ -> true)

(* ---- end-to-end compiler correctness --------------------------------- *)

(* The compiled circuit (on the device's physical qubits, SWAPs inserted,
   measurements rewired) must produce exactly the source program's
   classical outcome distribution under ideal execution. *)
let assert_functionally_equivalent device policy circuit =
  let compiled = Compiler.compile device policy circuit in
  let source = Sv.measurement_distribution circuit in
  let routed = Sv.measurement_distribution compiled.Compiler.physical in
  let distance = Sv.distribution_distance source routed in
  check "compiled circuit computes the same function" true (distance < 1e-9)

let test_compiled_bv_still_finds_secret () =
  let device = Calibration_model.ibm_q5 ~seed:21 in
  let circuit = Vqc_workloads.Bv.circuit ~secret:0b101 4 in
  List.iter
    (fun policy -> assert_functionally_equivalent device policy circuit)
    [
      Compiler.baseline; Compiler.vqm; Compiler.vqa_vqm;
      Compiler.native ~seed:1; Compiler.sabre; Compiler.noise_sabre;
    ]

let test_bridge_routing_is_equivalent () =
  (* bridged CNOT execution must preserve the function; a line device
     makes hop-2 pairs common *)
  let device =
    Calibration_model.uniform_device ~name:"line6"
      ~coupling:(Vqc_device.Topologies.linear 6) 6 ~error_2q:0.03
  in
  List.iter
    (fun circuit ->
      assert_functionally_equivalent device Compiler.vqm_bridge circuit)
    [
      Vqc_workloads.Bv.circuit 5;
      Vqc_workloads.Qft.circuit 4;
      Vqc_workloads.Ghz.circuit 6;
      Circuit.of_gates 5 [ cx 0 2; cx 2 4; cx 0 4; meas 0; meas 2; meas 4 ];
    ]

let test_bridge_emits_bridges_on_sparse_device () =
  (* route from a pinned identity layout: entangling the two ends of a
     3-line must bridge (no SWAPs, 4 CNOTs) instead of swapping *)
  let module Router = Vqc_mapper.Router in
  let module Cost = Vqc_mapper.Cost in
  let module Layout = Vqc_mapper.Layout in
  let device =
    Calibration_model.uniform_device ~name:"line3"
      ~coupling:(Vqc_device.Topologies.linear 3) 3 ~error_2q:0.03
  in
  let program = Circuit.of_gates 3 [ cx 0 2; meas 0; meas 2 ] in
  let layout = Layout.identity ~programs:3 ~physicals:3 in
  let cost = Cost.make device Cost.Reliability in
  let routed = Router.route ~bridges:true cost layout program in
  let stats = Circuit.stats routed.Router.circuit in
  Alcotest.(check int) "no swaps" 0 stats.Circuit.swap_gates;
  Alcotest.(check int) "bridge = 4 cnots" 4 stats.Circuit.cnot_gates;
  (* and the bridged circuit computes the original function *)
  let source = Sv.measurement_distribution program in
  let bridged = Sv.measurement_distribution routed.Router.circuit in
  check "bridge preserves function" true
    (Sv.distribution_distance source bridged < 1e-9)

let test_compiled_q5_suite_is_equivalent () =
  let device = Calibration_model.ibm_q5 ~seed:21 in
  List.iter
    (fun (entry : Catalog.entry) ->
      assert_functionally_equivalent device Compiler.vqa_vqm entry.Catalog.circuit)
    Catalog.q5_suite

let test_compiled_kernels_on_q20_are_equivalent () =
  (* 16 physical qubits is 65k amplitudes: cheap.  Use a restricted Q20
     so routed circuits stay simulable. *)
  let ctx = Vqc_experiments.Context.default in
  let q20 = ctx.Vqc_experiments.Context.q20 in
  let region = [ 0; 1; 2; 3; 5; 6; 7; 8; 10; 11; 12; 13 ] in
  let device, _ = Vqc_device.Device.restrict q20 region in
  List.iter
    (fun circuit ->
      List.iter
        (fun policy -> assert_functionally_equivalent device policy circuit)
        [ Compiler.baseline; Compiler.vqa_vqm ])
    [
      Vqc_workloads.Qft.circuit 5;
      Vqc_workloads.Bv.circuit 8;
      Vqc_workloads.Ghz.circuit 6;
      Vqc_workloads.Alu.adder 2;
    ]

let gen_small_program =
  (* unitary body followed by terminal measurements (the NISQ program
     shape the simulator's deferred-measurement readout supports) *)
  QCheck2.Gen.(
    let* n = int_range 2 5 in
    let gate =
      let* kind = int_bound 3 in
      let* q = int_bound (n - 1) in
      match kind with
      | 0 -> return (h q)
      | 1 ->
        let* angle = float_range (-3.0) 3.0 in
        return (Gate.One_qubit (Gate.Ry angle, q))
      | _ ->
        let* other = int_bound (n - 2) in
        let t = if other >= q then other + 1 else other in
        return (cx q t)
    in
    let* body = list_size (int_bound 15) gate in
    let* measured = list_size (int_range 1 n) (int_bound (n - 1)) in
    let readout = List.map meas (List.sort_uniq compare measured) in
    return (Circuit.of_gates n (body @ readout)))

let prop_sabre_preserves_function =
  QCheck2.Test.make ~name:"sabre routing preserves the computed function"
    ~count:40 gen_small_program (fun circuit ->
      let device =
        Calibration_model.uniform_device ~name:"line"
          ~coupling:(Vqc_device.Topologies.linear 6) 6 ~error_2q:0.03
      in
      let compiled = Compiler.compile device Compiler.noise_sabre circuit in
      let source = Sv.measurement_distribution circuit in
      let routed = Sv.measurement_distribution compiled.Compiler.physical in
      Sv.distribution_distance source routed < 1e-9)

let prop_compilation_preserves_function =
  QCheck2.Test.make ~name:"compilation preserves the computed function"
    ~count:40 gen_small_program (fun circuit ->
      let device =
        Calibration_model.uniform_device ~name:"line"
          ~coupling:(Vqc_device.Topologies.linear 6) 6 ~error_2q:0.03
      in
      let compiled = Compiler.compile device Compiler.vqa_vqm circuit in
      let source = Sv.measurement_distribution circuit in
      let routed = Sv.measurement_distribution compiled.Compiler.physical in
      Sv.distribution_distance source routed < 1e-9)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "vqc_statevector"
    [
      ( "states",
        [
          Alcotest.test_case "ground state" `Quick test_init_is_ground_state;
          Alcotest.test_case "x flips" `Quick test_x_flips;
          Alcotest.test_case "h superposition" `Quick test_h_superposition;
          Alcotest.test_case "h involutive" `Quick test_h_squared_is_identity;
          Alcotest.test_case "bell state" `Quick test_bell_state;
          Alcotest.test_case "swap" `Quick test_swap_moves_amplitude;
          Alcotest.test_case "swap = 3 cnots" `Quick test_swap_equals_three_cnots;
          Alcotest.test_case "rotation identities" `Quick test_rotation_identities;
          Alcotest.test_case "unitarity" `Quick test_unitarity_preserves_norm;
        ] );
      ( "measurement",
        [
          Alcotest.test_case "ghz" `Quick test_ghz_distribution;
          Alcotest.test_case "bv secret" `Quick test_bv_recovers_secret;
          Alcotest.test_case "triswap" `Quick test_triswap_rotates;
          Alcotest.test_case "deutsch-jozsa" `Quick test_deutsch_jozsa_distinguishes;
          Alcotest.test_case "grover" `Quick test_grover_finds_marked;
          Alcotest.test_case "w-state" `Quick test_wstate_uniform_one_hot;
          Alcotest.test_case "qaoa" `Quick test_qaoa_structure;
          Alcotest.test_case "distance" `Quick test_distribution_distance;
          Alcotest.test_case "sampling" `Slow test_sampling_matches_distribution;
          Alcotest.test_case "double write" `Quick test_double_write_rejected;
        ] );
      ( "compiler equivalence",
        [
          Alcotest.test_case "bv finds secret after routing" `Quick
            test_compiled_bv_still_finds_secret;
          Alcotest.test_case "bridge routing" `Quick
            test_bridge_routing_is_equivalent;
          Alcotest.test_case "bridge on sparse device" `Quick
            test_bridge_emits_bridges_on_sparse_device;
          Alcotest.test_case "q5 suite" `Quick test_compiled_q5_suite_is_equivalent;
          Alcotest.test_case "q20 kernels" `Slow
            test_compiled_kernels_on_q20_are_equivalent;
        ]
        @ qcheck
            [ prop_compilation_preserves_function; prop_sabre_preserves_function ]
      );
    ]

(* Tests for the noisy trajectory engine. *)

module Gate = Vqc_circuit.Gate
module Circuit = Vqc_circuit.Circuit
module Calibration = Vqc_device.Calibration
module Device = Vqc_device.Device
module Sv = Vqc_statevector.Statevector
module Trajectory = Vqc_statevector.Trajectory
module Reliability = Vqc_sim.Reliability
module Compiler = Vqc_mapper.Compiler
module Rng = Vqc_rng.Rng

let check = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let cx c t = Gate.Cnot { control = c; target = t }
let h q = Gate.One_qubit (Gate.H, q)
let meas q = Gate.Measure { qubit = q; cbit = q }

let noiseless_device n coupling =
  let c = Calibration.create n in
  for q = 0 to n - 1 do
    Calibration.set_qubit c q
      { Calibration.t1_us = 1e9; t2_us = 1e9; error_1q = 0.0; error_readout = 0.0 }
  done;
  List.iter (fun (u, v) -> Calibration.set_link_error c u v 0.0) coupling;
  Device.make ~name:"noiseless" ~coupling c

let noisy_device () =
  let coupling = [ (0, 1); (1, 2) ] in
  let c = Calibration.create 3 in
  for q = 0 to 2 do
    Calibration.set_qubit c q
      { Calibration.t1_us = 80.; t2_us = 40.; error_1q = 0.002; error_readout = 0.03 }
  done;
  List.iter (fun (u, v) -> Calibration.set_link_error c u v 0.05) coupling;
  Device.make ~name:"noisy3" ~coupling c

let test_noiseless_matches_ideal () =
  let device = noiseless_device 3 [ (0, 1); (1, 2) ] in
  let circuit = Vqc_workloads.Ghz.circuit 3 in
  let histogram = Trajectory.run ~trials:4000 (Rng.make 1) device circuit in
  let ideal = Sv.measurement_distribution circuit in
  check "tv small" true (Trajectory.total_variation ~ideal histogram < 0.03);
  List.iter
    (fun (outcome, _) -> check "only ideal outcomes" true (outcome = 0 || outcome = 7))
    histogram

let test_histogram_accounting () =
  let device = noisy_device () in
  let circuit = Circuit.of_gates 3 [ h 0; cx 0 1; meas 0; meas 1 ] in
  let histogram = Trajectory.run ~trials:5000 (Rng.make 2) device circuit in
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 histogram in
  Alcotest.(check int) "all trials counted" 5000 total;
  let freqs = Trajectory.frequencies histogram in
  check_float "frequencies normalized" 1.0
    (List.fold_left (fun acc (_, p) -> acc +. p) 0.0 freqs)

let test_noise_degrades_but_respects_pst_bound () =
  (* P(correct outcome) >= PST: the trials that survive error-free always
     report an ideal outcome *)
  let device = noisy_device () in
  let circuit =
    Circuit.of_gates 3 [ Gate.One_qubit (Gate.X, 0); cx 0 1; meas 0; meas 1 ]
  in
  (* ideal outcome is deterministic: 0b11 *)
  let ideal = Sv.measurement_distribution circuit in
  let histogram = Trajectory.run ~trials:20_000 (Rng.make 3) device circuit in
  let accuracy = Trajectory.top_outcome_accuracy ~ideal histogram in
  let pst = Reliability.pst device circuit in
  check "noise visible" true (accuracy < 0.999);
  check "accuracy at least PST" true (accuracy >= pst -. 0.02)

let test_readout_errors_flip_bits () =
  (* only readout noise: |0> should misread roughly 10% of the time *)
  let c = Calibration.create 1 in
  Calibration.set_qubit c 0
    { Calibration.t1_us = 1e9; t2_us = 1e9; error_1q = 0.0; error_readout = 0.10 };
  let device = Device.make ~name:"ro" ~coupling:[] c in
  let circuit = Circuit.of_gates 1 [ meas 0 ] in
  let histogram = Trajectory.run ~trials:20_000 (Rng.make 4) device circuit in
  let ones = Option.value (List.assoc_opt 1 histogram) ~default:0 in
  let rate = float_of_int ones /. 20_000.0 in
  check "flip rate near 10%" true (Float.abs (rate -. 0.10) < 0.01)

let test_determinism () =
  let device = noisy_device () in
  let circuit = Vqc_workloads.Ghz.circuit 3 in
  let a = Trajectory.run ~trials:2000 (Rng.make 9) device circuit in
  let b = Trajectory.run ~trials:2000 (Rng.make 9) device circuit in
  check "same seed same histogram" true (a = b)

let test_policies_improve_observed_accuracy () =
  (* end to end: on the Q5 model, VQA+VQM's compiled TriSwap returns the
     right answer more often than the baseline's *)
  let device = Vqc_device.Calibration_model.ibm_q5 ~seed:21 in
  let circuit = Vqc_workloads.Triswap.circuit in
  let ideal = Sv.measurement_distribution circuit in
  let accuracy policy seed =
    let compiled = Compiler.compile device policy circuit in
    let histogram =
      Trajectory.run ~trials:20_000 (Rng.make seed) device
        compiled.Compiler.physical
    in
    Trajectory.top_outcome_accuracy ~ideal histogram
  in
  let base = accuracy Compiler.baseline 5 in
  let best = accuracy Compiler.vqa_vqm 5 in
  check "variation-aware answers more often correctly" true (best > base)

let test_support_accuracy_bounds_pst () =
  (* GHZ's ideal support has two outcomes; support accuracy must
     lower-bound at PST while top-outcome accuracy caps near 0.5 *)
  let device = noisy_device () in
  let circuit = Vqc_workloads.Ghz.circuit 3 in
  let ideal = Sv.measurement_distribution circuit in
  let histogram = Trajectory.run ~trials:20_000 (Rng.make 6) device circuit in
  let support = Trajectory.support_accuracy ~ideal histogram in
  let top = Trajectory.top_outcome_accuracy ~ideal histogram in
  let pst = Reliability.pst device circuit in
  check "support >= PST" true (support >= pst -. 0.02);
  check "top outcome near half of support" true
    (Float.abs (top -. (support /. 2.0)) < 0.05)

(* ---- readout mitigation --------------------------------------------- *)

module Mitigation = Vqc_statevector.Mitigation

let readout_only_device r =
  let c = Calibration.create 2 in
  for q = 0 to 1 do
    Calibration.set_qubit c q
      { Calibration.t1_us = 1e9; t2_us = 1e9; error_1q = 0.0; error_readout = r }
  done;
  Calibration.set_link_error c 0 1 0.0;
  Device.make ~name:"ro2" ~coupling:[ (0, 1) ] c

let test_mitigation_inverts_exact_confusion () =
  (* exact distribution through the confusion channel, then corrected:
     must recover the ideal exactly *)
  let device = readout_only_device 0.08 in
  let circuit = Vqc_workloads.Ghz.circuit 2 in
  let ideal = Sv.measurement_distribution circuit in
  let noisy =
    Vqc_statevector.Density.noisy_measurement_distribution device circuit
  in
  check "confusion visible" true (Sv.distribution_distance ideal noisy > 0.05);
  let corrected = Mitigation.correct ~clip:false device circuit noisy in
  check "exactly recovered" true
    (Sv.distribution_distance ideal corrected < 1e-9)

let test_mitigation_improves_sampled_histogram () =
  let device = readout_only_device 0.10 in
  let circuit = Vqc_workloads.Ghz.circuit 2 in
  let ideal = Sv.measurement_distribution circuit in
  let histogram = Trajectory.run ~trials:40_000 (Rng.make 8) device circuit in
  let raw_distance =
    Sv.distribution_distance ideal (Trajectory.frequencies histogram)
  in
  let corrected = Mitigation.correct_histogram device circuit histogram in
  let corrected_distance = Sv.distribution_distance ideal corrected in
  check "mitigation shrinks the distance" true
    (corrected_distance < raw_distance /. 3.0);
  let total = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 corrected in
  check "normalized after clipping" true (Float.abs (total -. 1.0) < 1e-9)

let test_mitigation_rejects_singular_confusion () =
  let device = readout_only_device 0.5 in
  let circuit = Vqc_workloads.Ghz.circuit 2 in
  check "raises at r = 1/2" true
    (try
       let _ = Mitigation.correct device circuit [ (0, 1.0) ] in
       false
     with Invalid_argument _ -> true)

let test_rejects_bad_inputs () =
  let device = noisy_device () in
  let raises f = try f () |> ignore; false with Invalid_argument _ -> true in
  check "zero trials" true
    (raises (fun () ->
         Trajectory.run ~trials:0 (Rng.make 1) device (Circuit.create 2)));
  check "too wide" true
    (raises (fun () ->
         Trajectory.run ~trials:10 (Rng.make 1) device (Circuit.create 9)))

let () =
  Alcotest.run "vqc_trajectory"
    [
      ( "engine",
        [
          Alcotest.test_case "noiseless = ideal" `Quick test_noiseless_matches_ideal;
          Alcotest.test_case "histogram accounting" `Quick test_histogram_accounting;
          Alcotest.test_case "PST lower-bounds accuracy" `Slow
            test_noise_degrades_but_respects_pst_bound;
          Alcotest.test_case "readout flips" `Slow test_readout_errors_flip_bits;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "support accuracy" `Slow
            test_support_accuracy_bounds_pst;
          Alcotest.test_case "rejects bad inputs" `Quick test_rejects_bad_inputs;
        ] );
      ( "mitigation",
        [
          Alcotest.test_case "exact inversion" `Quick
            test_mitigation_inverts_exact_confusion;
          Alcotest.test_case "sampled improvement" `Slow
            test_mitigation_improves_sampled_histogram;
          Alcotest.test_case "singular confusion" `Quick
            test_mitigation_rejects_singular_confusion;
        ] );
      ( "end to end",
        [
          Alcotest.test_case "policies improve accuracy" `Slow
            test_policies_improve_observed_accuracy;
        ] );
    ]

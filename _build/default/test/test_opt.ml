(* Tests for the peephole optimizer, anchored by the state-vector oracle:
   optimization must never change what a circuit computes. *)

module Gate = Vqc_circuit.Gate
module Circuit = Vqc_circuit.Circuit
module Peephole = Vqc_opt.Peephole
module Sv = Vqc_statevector.Statevector

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cx c t = Gate.Cnot { control = c; target = t }
let h q = Gate.One_qubit (Gate.H, q)
let x q = Gate.One_qubit (Gate.X, q)
let rz theta q = Gate.One_qubit (Gate.Rz theta, q)
let t q = Gate.One_qubit (Gate.T, q)
let meas q = Gate.Measure { qubit = q; cbit = q }

let length_after gates =
  Circuit.length (Peephole.optimize (Circuit.of_gates 3 gates))

let test_cancels_involutions () =
  check_int "hh" 0 (length_after [ h 0; h 0 ]);
  check_int "xx" 0 (length_after [ x 1; x 1 ]);
  check_int "cnot pair" 0 (length_after [ cx 0 1; cx 0 1 ]);
  check_int "swap pair" 0 (length_after [ Gate.Swap (0, 1); Gate.Swap (1, 0) ]);
  check_int "s sdg" 0
    (length_after [ Gate.One_qubit (Gate.S, 0); Gate.One_qubit (Gate.Sdg, 0) ])

let test_nested_pairs_collapse () =
  check_int "h x x h" 0 (length_after [ h 0; x 0; x 0; h 0 ]);
  check_int "deep nesting" 0
    (length_after [ h 0; x 0; t 0; Gate.One_qubit (Gate.Tdg, 0); x 0; h 0 ])

let test_does_not_cancel_across_blockers () =
  check_int "gate on same wire blocks" 3 (length_after [ h 0; t 0; h 0 ]);
  check_int "measure blocks" 3 (length_after [ h 0; meas 0; h 0 ]);
  check_int "barrier blocks" 3 (length_after [ h 0; Gate.Barrier [ 0 ]; h 0 ]);
  (* cnot pair with a gate on the control in between survives *)
  check_int "intervening control gate" 3
    (length_after [ cx 0 1; h 0; cx 0 1 ])

let test_cancel_across_unrelated_wire_activity () =
  (* activity on another qubit does not block cancellation *)
  check_int "independent wire" 1 (length_after [ h 0; h 2; h 0 ])

let test_merges_rotations () =
  let optimized = Peephole.optimize (Circuit.of_gates 2 [ rz 0.3 0; rz 0.4 0 ]) in
  (match Circuit.gates optimized with
  | [ Gate.One_qubit (Gate.Rz total, 0) ] ->
    Alcotest.(check (float 1e-12)) "sum" 0.7 total
  | _ -> Alcotest.fail "expected one fused rz");
  check_int "full turn disappears" 0
    (length_after [ rz Float.pi 0; rz Float.pi 0 ]);
  check_int "t t -> s" 1 (length_after [ t 0; t 0 ])

let test_mixed_kinds_not_merged () =
  check_int "rz rx kept" 2 (length_after [ rz 0.3 0; Gate.One_qubit (Gate.Rx 0.4, 0) ])

let test_stats_reported () =
  let _, stats =
    Peephole.optimize_with_stats (Circuit.of_gates 2 [ h 0; h 0; rz 0.1 1; rz 0.2 1 ])
  in
  check_int "cancelled" 2 stats.Peephole.cancelled;
  check_int "merged" 1 stats.Peephole.merged;
  check "at least one pass" true (stats.Peephole.passes >= 1)

let test_preserves_measures_and_cbits () =
  let c = Circuit.of_gates ~cbits:2 3 [ h 0; h 0; meas 0; Gate.Measure { qubit = 2; cbit = 1 } ] in
  let optimized = Peephole.optimize c in
  check_int "cbits kept" 2 (Circuit.num_cbits optimized);
  check_int "both measures kept" 2
    (Circuit.stats optimized).Circuit.measurements

let test_real_kernel_shrinks () =
  (* qft's cphase chains contain fusable u1 rotations after... they don't
     cancel structurally, but bv's double-H prep does when composed with
     itself *)
  let bv = (Vqc_workloads.Catalog.find "bv-16").Vqc_workloads.Catalog.circuit in
  let doubled =
    Circuit.of_gates 16
      (List.filter Gate.is_unitary (Circuit.gates bv)
      @ List.filter Gate.is_unitary (Circuit.gates bv))
  in
  let optimized = Peephole.optimize doubled in
  check "self-composition shrinks" true
    (Circuit.length optimized < Circuit.length doubled)

let gen_unitary_circuit =
  QCheck2.Gen.(
    let* n = int_range 2 5 in
    let gate =
      let* kind = int_bound 7 in
      let* q = int_bound (n - 1) in
      match kind with
      | 0 -> return (h q)
      | 1 -> return (x q)
      | 2 -> return (t q)
      | 3 ->
        let* angle = float_range (-6.0) 6.0 in
        return (rz angle q)
      | 4 ->
        let* angle = float_range (-6.0) 6.0 in
        return (Gate.One_qubit (Gate.Ry angle, q))
      | _ ->
        let* other = int_bound (n - 2) in
        let target = if other >= q then other + 1 else other in
        if kind = 7 then return (Gate.Swap (q, target))
        else return (cx q target)
    in
    let* body = list_size (int_bound 40) gate in
    let readout = List.init n meas in
    return (Circuit.of_gates n (body @ readout)))

let prop_optimization_preserves_function =
  QCheck2.Test.make ~name:"peephole preserves the computed function"
    ~count:150 gen_unitary_circuit (fun circuit ->
      let optimized = Peephole.optimize circuit in
      Sv.distribution_distance
        (Sv.measurement_distribution circuit)
        (Sv.measurement_distribution optimized)
      < 1e-9)

let prop_optimization_never_grows =
  QCheck2.Test.make ~name:"peephole never grows a circuit" ~count:150
    gen_unitary_circuit (fun circuit ->
      Circuit.length (Peephole.optimize circuit) <= Circuit.length circuit)

let prop_optimization_idempotent =
  QCheck2.Test.make ~name:"peephole is idempotent" ~count:100
    gen_unitary_circuit (fun circuit ->
      let once = Peephole.optimize circuit in
      Circuit.equal once (Peephole.optimize once))

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "vqc_opt"
    [
      ( "cancellation",
        [
          Alcotest.test_case "involutions" `Quick test_cancels_involutions;
          Alcotest.test_case "nested pairs" `Quick test_nested_pairs_collapse;
          Alcotest.test_case "blockers" `Quick test_does_not_cancel_across_blockers;
          Alcotest.test_case "independent wires" `Quick
            test_cancel_across_unrelated_wire_activity;
        ] );
      ( "merging",
        [
          Alcotest.test_case "rotations" `Quick test_merges_rotations;
          Alcotest.test_case "mixed kinds" `Quick test_mixed_kinds_not_merged;
          Alcotest.test_case "stats" `Quick test_stats_reported;
          Alcotest.test_case "measures kept" `Quick
            test_preserves_measures_and_cbits;
          Alcotest.test_case "real kernel" `Quick test_real_kernel_shrinks;
        ] );
      ( "properties",
        qcheck
          [
            prop_optimization_preserves_function;
            prop_optimization_never_grows;
            prop_optimization_idempotent;
          ] );
    ]

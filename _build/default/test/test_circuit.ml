(* Tests for the circuit substrate: gates, circuits, layering and the
   OpenQASM subset. *)

module Gate = Vqc_circuit.Gate
module Circuit = Vqc_circuit.Circuit
module Layers = Vqc_circuit.Layers
module Qasm = Vqc_circuit.Qasm

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cx c t = Gate.Cnot { control = c; target = t }
let h q = Gate.One_qubit (Gate.H, q)
let meas q = Gate.Measure { qubit = q; cbit = q }

(* ---- Gate ---------------------------------------------------------- *)

let test_gate_qubits () =
  Alcotest.(check (list int)) "1q" [ 3 ] (Gate.qubits (h 3));
  Alcotest.(check (list int)) "cx" [ 1; 2 ] (Gate.qubits (cx 1 2));
  Alcotest.(check (list int)) "swap" [ 4; 0 ] (Gate.qubits (Gate.Swap (4, 0)));
  Alcotest.(check (list int)) "measure" [ 2 ] (Gate.qubits (meas 2));
  Alcotest.(check (list int)) "barrier" [] (Gate.qubits (Gate.Barrier []))

let test_gate_classifiers () =
  check "cx is 2q" true (Gate.is_two_qubit (cx 0 1));
  check "swap is 2q" true (Gate.is_two_qubit (Gate.Swap (0, 1)));
  check "h is not 2q" false (Gate.is_two_qubit (h 0));
  check "measure not unitary" false (Gate.is_unitary (meas 0));
  check "barrier not unitary" false (Gate.is_unitary (Gate.Barrier []));
  check "rz unitary" true (Gate.is_unitary (Gate.One_qubit (Gate.Rz 0.1, 0)))

let test_gate_relabel () =
  let shifted = Gate.relabel (fun q -> q + 10) (cx 1 2) in
  check "relabeled" true (Gate.equal shifted (cx 11 12));
  let measured = Gate.relabel (fun q -> q + 1) (meas 0) in
  check "cbit untouched" true
    (Gate.equal measured (Gate.Measure { qubit = 1; cbit = 0 }));
  check "collision raises" true
    (try
       let _ = Gate.relabel (fun _ -> 0) (cx 1 2) in
       false
     with Invalid_argument _ -> true)

let test_gate_equal_distinguishes_angles () =
  check "same angle" true
    (Gate.equal (Gate.One_qubit (Gate.Rz 0.5, 0)) (Gate.One_qubit (Gate.Rz 0.5, 0)));
  check "different angle" false
    (Gate.equal (Gate.One_qubit (Gate.Rz 0.5, 0)) (Gate.One_qubit (Gate.Rz 0.6, 0)));
  check "different kind" false
    (Gate.equal (Gate.One_qubit (Gate.Rz 0.5, 0)) (Gate.One_qubit (Gate.Rx 0.5, 0)))

(* ---- Circuit ------------------------------------------------------- *)

let ghz3 = Circuit.of_gates 3 [ h 0; cx 0 1; cx 1 2; meas 0; meas 1; meas 2 ]

let test_circuit_sizes () =
  check_int "qubits" 3 (Circuit.num_qubits ghz3);
  check_int "cbits default to qubits" 3 (Circuit.num_cbits ghz3);
  check_int "length" 6 (Circuit.length ghz3)

let test_circuit_validation () =
  let raises f = try f () |> ignore; false with Invalid_argument _ -> true in
  check "qubit range" true (raises (fun () -> Circuit.of_gates 2 [ h 5 ]));
  check "cbit range" true
    (raises (fun () ->
         Circuit.of_gates ~cbits:1 2 [ Gate.Measure { qubit = 0; cbit = 1 } ]));
  check "cx collision" true (raises (fun () -> Circuit.of_gates 2 [ cx 1 1 ]));
  check "negative size" true (raises (fun () -> Circuit.create (-1)))

let test_circuit_concat_and_relabel () =
  let a = Circuit.of_gates 2 [ h 0 ] in
  let b = Circuit.of_gates 2 [ cx 0 1 ] in
  let joined = Circuit.concat a b in
  check_int "joined length" 2 (Circuit.length joined);
  let swapped = Circuit.relabel (fun q -> 1 - q) joined in
  check "relabel flips" true
    (List.nth (Circuit.gates swapped) 1 = cx 1 0);
  check "size mismatch raises" true
    (try
       let _ = Circuit.concat a (Circuit.create 3) in
       false
     with Invalid_argument _ -> true)

let test_used_qubits () =
  let c = Circuit.of_gates 5 [ h 1; cx 3 1 ] in
  Alcotest.(check (list int)) "used" [ 1; 3 ] (Circuit.used_qubits c)

let test_stats () =
  let c =
    Circuit.of_gates 3
      [ h 0; h 1; cx 0 1; Gate.Swap (1, 2); meas 0; Gate.Barrier [] ]
  in
  let s = Circuit.stats c in
  check_int "total excludes barrier" 5 s.Circuit.total_gates;
  check_int "1q" 2 s.Circuit.one_qubit_gates;
  check_int "2q" 2 s.Circuit.two_qubit_gates;
  check_int "cx" 1 s.Circuit.cnot_gates;
  check_int "swap" 1 s.Circuit.swap_gates;
  check_int "measures" 1 s.Circuit.measurements;
  check_int "qubits used" 3 s.Circuit.qubits_used

let test_depth () =
  (* h0 and h1 parallel; cx 0 1 after both; cx 1 2 after that *)
  let c = Circuit.of_gates 3 [ h 0; h 1; cx 0 1; cx 1 2 ] in
  check_int "depth" 3 (Circuit.stats c).Circuit.depth;
  let empty = Circuit.create 3 in
  check_int "empty depth" 0 (Circuit.stats empty).Circuit.depth

let test_barrier_synchronizes_depth () =
  (* without barrier, h2 is parallel with h0; with barrier it waits *)
  let without = Circuit.of_gates 3 [ h 0; h 2 ] in
  check_int "parallel" 1 (Circuit.stats without).Circuit.depth;
  let with_barrier = Circuit.of_gates 3 [ h 0; Gate.Barrier []; h 2 ] in
  check_int "barrier serializes" 2 (Circuit.stats with_barrier).Circuit.depth

let test_interaction_counts () =
  let c = Circuit.of_gates 3 [ cx 0 1; cx 1 0; cx 1 2 ] in
  Alcotest.(check (list (pair (pair int int) int)))
    "unordered pair counts"
    [ ((0, 1), 2); ((1, 2), 1) ]
    (Circuit.interaction_counts c)

let test_qubit_activity () =
  let c = Circuit.of_gates 3 [ cx 0 1; cx 1 2; h 0 ] in
  Alcotest.(check (array int)) "activity" [| 1; 2; 1 |] (Circuit.qubit_activity c)

let test_decompose_swaps () =
  let c = Circuit.of_gates 2 [ Gate.Swap (0, 1) ] in
  let expanded = Circuit.decompose_swaps c in
  Alcotest.(check (list bool))
    "three cnots"
    [ true; true; true ]
    (List.map (function Gate.Cnot _ -> true | _ -> false) (Circuit.gates expanded));
  check_int "3 gates" 3 (Circuit.length expanded)

(* ---- Layers -------------------------------------------------------- *)

let test_layer_partition () =
  let c = Circuit.of_gates 4 [ cx 0 1; cx 2 3; cx 1 2 ] in
  let layers = Layers.partition c in
  check_int "two layers" 2 (List.length layers);
  check_int "first layer parallel" 2 (List.length (List.hd layers))

let test_layers_disjoint_and_ordered () =
  let c =
    Circuit.of_gates 4 [ h 0; cx 0 1; h 2; cx 2 3; cx 1 2; meas 0; meas 1 ]
  in
  let layers = Layers.partition c in
  List.iter
    (fun layer ->
      let qubits = List.concat_map Gate.qubits layer in
      check "disjoint qubits per layer" true
        (List.length qubits = List.length (List.sort_uniq compare qubits)))
    layers;
  (* flattening layers preserves per-qubit gate order *)
  let flat = List.concat layers in
  let projection gates q =
    List.filter (fun g -> List.mem q (Gate.qubits g)) gates
  in
  for q = 0 to 3 do
    check "projection preserved" true
      (List.for_all2 Gate.equal
         (projection (Circuit.gates c) q)
         (projection flat q))
  done

let test_two_qubit_pairs () =
  let layer = [ h 0; cx 1 2; Gate.Swap (3, 4) ] in
  Alcotest.(check (list (pair int int)))
    "pairs" [ (1, 2); (3, 4) ]
    (Layers.two_qubit_pairs layer)

let test_layer_count_matches_depth () =
  let c = Circuit.of_gates 3 [ h 0; cx 0 1; cx 1 2; meas 2 ] in
  check_int "count = depth" (Circuit.stats c).Circuit.depth (Layers.count c)

(* ---- Dag ------------------------------------------------------------ *)

module Dag = Vqc_circuit.Dag

let test_dag_structure () =
  (* h0; cx01; h1; cx12 *)
  let c = Circuit.of_gates 3 [ h 0; cx 0 1; h 1; cx 1 2 ] in
  let d = Dag.build c in
  check_int "4 gates" 4 (Dag.gate_count d);
  Alcotest.(check (list int)) "front" [ 0 ] (Dag.front d);
  Alcotest.(check (list int)) "h0 enables cx01" [ 1 ] (Dag.successors d 0);
  Alcotest.(check (list int)) "cx01 enables h1" [ 2 ] (Dag.successors d 1);
  Alcotest.(check (list int)) "cx12 depends on h1" [ 2 ] (Dag.predecessors d 3);
  check_int "no predecessors at front" 0 (Dag.predecessor_count d 0)

let test_dag_parallel_fronts () =
  let c = Circuit.of_gates 4 [ cx 0 1; cx 2 3; cx 1 2 ] in
  let d = Dag.build c in
  Alcotest.(check (list int)) "two independent fronts" [ 0; 1 ] (Dag.front d);
  Alcotest.(check (array int)) "asap levels" [| 0; 0; 1 |] (Dag.asap_levels d);
  check_int "critical path" 2 (Dag.critical_path_length d)

let test_dag_matches_layers_depth () =
  let c = (Vqc_workloads.Catalog.find "qft-12").Vqc_workloads.Catalog.circuit in
  let d = Dag.build c in
  check_int "critical path equals layer count" (Layers.count c)
    (Dag.critical_path_length d)

let test_dag_barrier_fences () =
  let c = Circuit.of_gates 2 [ h 0; Gate.Barrier []; h 1 ] in
  let d = Dag.build c in
  Alcotest.(check (list int)) "h1 waits on the barrier" [ 1 ]
    (Dag.predecessors d 2);
  check_int "empty dag" 0 (Dag.critical_path_length (Dag.build (Circuit.create 2)))

(* ---- Qasm ---------------------------------------------------------- *)

let test_qasm_roundtrip_ghz () =
  let text = Qasm.to_string ghz3 in
  match Qasm.of_string text with
  | Ok parsed -> check "roundtrip" true (Circuit.equal ghz3 parsed)
  | Error m -> Alcotest.fail m

let test_qasm_roundtrip_angles () =
  let c =
    Circuit.of_gates 2
      [
        Gate.One_qubit (Gate.Rz 0.12345, 0);
        Gate.One_qubit (Gate.Rx (-1.5), 1);
        Gate.One_qubit (Gate.U1 (Float.pi /. 8.0), 0);
        Gate.One_qubit (Gate.Tdg, 1);
        Gate.Swap (0, 1);
      ]
  in
  match Qasm.of_string (Qasm.to_string c) with
  | Ok parsed -> check "roundtrip with angles" true (Circuit.equal c parsed)
  | Error m -> Alcotest.fail m

let test_qasm_parse_standard_program () =
  let program =
    {|OPENQASM 2.0;
include "qelib1.inc";
// a comment
qreg q[3];
creg c[3];
h q[0];
cx q[0],q[1];
rz(pi/2) q[2];
barrier q;
measure q[0] -> c[0];
|}
  in
  match Qasm.of_string program with
  | Ok c ->
    check_int "3 qubits" 3 (Circuit.num_qubits c);
    check_int "5 gates" 5 (Circuit.length c);
    (match List.nth (Circuit.gates c) 2 with
    | Gate.One_qubit (Gate.Rz a, 2) ->
      Alcotest.(check (float 1e-12)) "angle" (Float.pi /. 2.0) a
    | g -> Alcotest.failf "unexpected gate %s" (Gate.to_string g))
  | Error m -> Alcotest.fail m

let test_qasm_whole_register_forms () =
  let program =
    "qreg q[3]; creg c[3]; h q; measure q -> c;"
  in
  match Qasm.of_string program with
  | Ok c ->
    check_int "3 h + 3 measures" 6 (Circuit.length c)
  | Error m -> Alcotest.fail m

let test_qasm_multiple_registers_flatten () =
  let program = "qreg a[2]; qreg b[2]; creg c[4]; cx a[1],b[0];" in
  match Qasm.of_string program with
  | Ok c ->
    check_int "4 qubits" 4 (Circuit.num_qubits c);
    check "flat indices" true
      (List.hd (Circuit.gates c) = cx 1 2)
  | Error m -> Alcotest.fail m

let test_qasm_angle_arithmetic () =
  List.iter
    (fun (expr, expected) ->
      let program = Printf.sprintf "qreg q[1]; rz(%s) q[0];" expr in
      match Qasm.of_string program with
      | Ok c -> begin
        match Circuit.gates c with
        | [ Gate.One_qubit (Gate.Rz a, 0) ] ->
          Alcotest.(check (float 1e-9)) expr expected a
        | _ -> Alcotest.failf "bad parse of %s" expr
      end
      | Error m -> Alcotest.fail m)
    [
      ("1.5", 1.5);
      ("pi", Float.pi);
      ("-pi/4", -.Float.pi /. 4.0);
      ("2*pi/3", 2.0 *. Float.pi /. 3.0);
      ("(1+2)*3", 9.0);
      ("1e-3", 1e-3);
    ]

let test_qasm_errors () =
  let bad text =
    match Qasm.of_string text with Ok _ -> false | Error _ -> true
  in
  check "unknown gate" true (bad "qreg q[1]; frob q[0];");
  check "range" true (bad "qreg q[2]; h q[5];");
  check "unknown register" true (bad "qreg q[2]; h r[0];");
  check "measure arrow" true (bad "qreg q[1]; creg c[1]; measure q[0];");
  check "rz without angle" true (bad "qreg q[1]; rz q[0];")

let gen_circuit =
  QCheck2.Gen.(
    let* n = int_range 2 6 in
    let gate =
      let* kind = int_bound 3 in
      let* q = int_bound (n - 1) in
      match kind with
      | 0 -> return (h q)
      | 1 ->
        let* angle = float_range (-3.0) 3.0 in
        return (Gate.One_qubit (Gate.Rz angle, q))
      | 2 ->
        let* other = int_bound (n - 2) in
        let t = if other >= q then other + 1 else other in
        return (cx q t)
      | _ -> return (meas q)
    in
    let* gates = list_size (int_bound 30) gate in
    return (Circuit.of_gates n gates))

let prop_qasm_roundtrip =
  QCheck2.Test.make ~name:"qasm roundtrips arbitrary circuits" ~count:200
    gen_circuit (fun c ->
      match Qasm.of_string (Qasm.to_string c) with
      | Ok parsed -> Circuit.equal c parsed
      | Error _ -> false)

let prop_layers_cover_all_gates =
  QCheck2.Test.make ~name:"layer partition preserves the gate multiset"
    ~count:200 gen_circuit (fun c ->
      let flat = List.concat (Layers.partition c) in
      List.length flat = Circuit.length c)

let prop_depth_le_length =
  QCheck2.Test.make ~name:"depth never exceeds gate count" ~count:200
    gen_circuit (fun c ->
      (Circuit.stats c).Circuit.depth <= Circuit.length c)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "vqc_circuit"
    [
      ( "gate",
        [
          Alcotest.test_case "qubits" `Quick test_gate_qubits;
          Alcotest.test_case "classifiers" `Quick test_gate_classifiers;
          Alcotest.test_case "relabel" `Quick test_gate_relabel;
          Alcotest.test_case "equality" `Quick test_gate_equal_distinguishes_angles;
        ] );
      ( "circuit",
        [
          Alcotest.test_case "sizes" `Quick test_circuit_sizes;
          Alcotest.test_case "validation" `Quick test_circuit_validation;
          Alcotest.test_case "concat/relabel" `Quick test_circuit_concat_and_relabel;
          Alcotest.test_case "used qubits" `Quick test_used_qubits;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "depth" `Quick test_depth;
          Alcotest.test_case "barrier depth" `Quick test_barrier_synchronizes_depth;
          Alcotest.test_case "interactions" `Quick test_interaction_counts;
          Alcotest.test_case "activity" `Quick test_qubit_activity;
          Alcotest.test_case "swap decomposition" `Quick test_decompose_swaps;
        ] );
      ( "layers",
        [
          Alcotest.test_case "partition" `Quick test_layer_partition;
          Alcotest.test_case "disjoint and ordered" `Quick
            test_layers_disjoint_and_ordered;
          Alcotest.test_case "two qubit pairs" `Quick test_two_qubit_pairs;
          Alcotest.test_case "count = depth" `Quick test_layer_count_matches_depth;
        ]
        @ qcheck [ prop_layers_cover_all_gates; prop_depth_le_length ] );
      ( "dag",
        [
          Alcotest.test_case "structure" `Quick test_dag_structure;
          Alcotest.test_case "parallel fronts" `Quick test_dag_parallel_fronts;
          Alcotest.test_case "matches layer depth" `Quick
            test_dag_matches_layers_depth;
          Alcotest.test_case "barrier fences" `Quick test_dag_barrier_fences;
        ] );
      ( "qasm",
        [
          Alcotest.test_case "ghz roundtrip" `Quick test_qasm_roundtrip_ghz;
          Alcotest.test_case "angle roundtrip" `Quick test_qasm_roundtrip_angles;
          Alcotest.test_case "standard program" `Quick
            test_qasm_parse_standard_program;
          Alcotest.test_case "whole-register forms" `Quick
            test_qasm_whole_register_forms;
          Alcotest.test_case "multiple registers" `Quick
            test_qasm_multiple_registers_flatten;
          Alcotest.test_case "angle arithmetic" `Quick test_qasm_angle_arithmetic;
          Alcotest.test_case "parse errors" `Quick test_qasm_errors;
        ]
        @ qcheck [ prop_qasm_roundtrip ] );
    ]

(* Tests for the deterministic RNG: reproducibility, stream independence
   and the first two moments of each distribution. *)

module Rng = Vqc_rng.Rng

let check = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-12))

let sample n f =
  let rng = Rng.make 42 in
  List.init n (fun _ -> f rng)

let mean values =
  List.fold_left ( +. ) 0.0 values /. float_of_int (List.length values)

let std values =
  let m = mean values in
  sqrt (mean (List.map (fun x -> (x -. m) ** 2.0) values))

let test_determinism () =
  let a = Rng.make 7 and b = Rng.make 7 in
  for _ = 1 to 100 do
    check_float "same stream" (Rng.float a) (Rng.float b)
  done

let test_seed_sensitivity () =
  let a = Rng.make 7 and b = Rng.make 8 in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Float.equal (Rng.float a) (Rng.float b)) then differs := true
  done;
  check "different seeds differ" true !differs

let test_copy_is_independent () =
  let a = Rng.make 7 in
  let b = Rng.copy a in
  check_float "copies agree" (Rng.float a) (Rng.float b);
  let _ = Rng.float a in
  (* advancing one does not advance the other *)
  let a2 = Rng.float a and b2 = Rng.float b in
  check "streams diverge after unequal draws" false (Float.equal a2 b2)

let test_split_decorrelates () =
  let parent = Rng.make 7 in
  let child = Rng.split parent in
  let xs = List.init 50 (fun _ -> Rng.float parent) in
  let ys = List.init 50 (fun _ -> Rng.float child) in
  check "split streams differ" true (xs <> ys)

let test_float_range () =
  List.iter
    (fun x -> check "in [0,1)" true (x >= 0.0 && x < 1.0))
    (sample 10_000 Rng.float)

let test_uniform_range () =
  List.iter
    (fun x -> check "in [lo,hi)" true (x >= -2.0 && x < 3.0))
    (sample 10_000 (fun r -> Rng.uniform r (-2.0) 3.0))

let test_uniform_rejects_empty () =
  let rng = Rng.make 1 in
  check "raises" true
    (try
       let _ = Rng.uniform rng 1.0 0.0 in
       false
     with Invalid_argument _ -> true)

let test_int_range_and_coverage () =
  let rng = Rng.make 1 in
  let seen = Array.make 7 false in
  for _ = 1 to 10_000 do
    let x = Rng.int rng 7 in
    check "in range" true (x >= 0 && x < 7);
    seen.(x) <- true
  done;
  check "all values hit" true (Array.for_all Fun.id seen)

let test_int_rejects_nonpositive () =
  let rng = Rng.make 1 in
  check "raises" true
    (try
       let _ = Rng.int rng 0 in
       false
     with Invalid_argument _ -> true)

let test_bernoulli_edges () =
  let rng = Rng.make 1 in
  check "p=0 never" false (Rng.bernoulli rng 0.0);
  check "p=1 always" true (Rng.bernoulli rng 1.0);
  check "p<0 never" false (Rng.bernoulli rng (-0.5));
  check "p>1 always" true (Rng.bernoulli rng 1.5)

let test_bernoulli_rate () =
  let hits =
    List.length (List.filter Fun.id (sample 20_000 (fun r -> Rng.bernoulli r 0.3)))
  in
  let rate = float_of_int hits /. 20_000.0 in
  check "rate near 0.3" true (Float.abs (rate -. 0.3) < 0.02)

let test_gaussian_moments () =
  let xs = sample 40_000 (fun r -> Rng.gaussian r ~mean:2.0 ~std:3.0) in
  check "mean" true (Float.abs (mean xs -. 2.0) < 0.1);
  check "std" true (Float.abs (std xs -. 3.0) < 0.1)

let test_lognormal_moments () =
  let xs = sample 60_000 (fun r -> Rng.lognormal r ~mean:0.04 ~std:0.03) in
  check "positive" true (List.for_all (fun x -> x > 0.0) xs);
  check "mean" true (Float.abs (mean xs -. 0.04) < 0.004;);
  check "std" true (Float.abs (std xs -. 0.03) < 0.006)

let test_truncated_gaussian_bounds () =
  List.iter
    (fun x -> check "within bounds" true (x >= 1.0 && x <= 2.0))
    (sample 5_000 (fun r ->
         Rng.truncated_gaussian r ~mean:0.0 ~std:5.0 ~lo:1.0 ~hi:2.0))

let test_exponential_mean () =
  let xs = sample 40_000 (fun r -> Rng.exponential r ~rate:2.0) in
  check "positive" true (List.for_all (fun x -> x >= 0.0) xs);
  check "mean 1/rate" true (Float.abs (mean xs -. 0.5) < 0.02)

let test_shuffle_is_permutation () =
  let rng = Rng.make 11 in
  let a = Array.init 20 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 20 Fun.id) sorted

let test_choose () =
  let rng = Rng.make 11 in
  for _ = 1 to 100 do
    let x = Rng.choose rng [| 5; 6; 7 |] in
    check "member" true (List.mem x [ 5; 6; 7 ])
  done;
  check "empty raises" true
    (try
       let _ = Rng.choose rng [||] in
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "vqc_rng"
    [
      ( "streams",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_copy_is_independent;
          Alcotest.test_case "split" `Quick test_split_decorrelates;
        ] );
      ( "distributions",
        [
          Alcotest.test_case "float range" `Quick test_float_range;
          Alcotest.test_case "uniform range" `Quick test_uniform_range;
          Alcotest.test_case "uniform empty" `Quick test_uniform_rejects_empty;
          Alcotest.test_case "int range" `Quick test_int_range_and_coverage;
          Alcotest.test_case "int nonpositive" `Quick test_int_rejects_nonpositive;
          Alcotest.test_case "bernoulli edges" `Quick test_bernoulli_edges;
          Alcotest.test_case "bernoulli rate" `Slow test_bernoulli_rate;
          Alcotest.test_case "gaussian moments" `Slow test_gaussian_moments;
          Alcotest.test_case "lognormal moments" `Slow test_lognormal_moments;
          Alcotest.test_case "truncated gaussian" `Quick
            test_truncated_gaussian_bounds;
          Alcotest.test_case "exponential mean" `Slow test_exponential_mean;
          Alcotest.test_case "shuffle permutation" `Quick
            test_shuffle_is_permutation;
          Alcotest.test_case "choose" `Quick test_choose;
        ] );
    ]

(* Tests for the experiment layer: reporting helpers, the registry, and
   smoke + shape checks for the paper-artifact reproductions. *)

module Report = Vqc_experiments.Report
module Registry = Vqc_experiments.Registry
module Context = Vqc_experiments.Context
module Compiler = Vqc_mapper.Compiler
module Reliability = Vqc_sim.Reliability
module Catalog = Vqc_workloads.Catalog
module Calibration = Vqc_device.Calibration
module Device = Vqc_device.Device
module History = Vqc_device.History

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let render f =
  let buffer = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buffer in
  f ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buffer

(* ---- Report -------------------------------------------------------- *)

let test_table_renders_aligned () =
  let text =
    render (fun ppf ->
        Report.table ppf ~header:[ "a"; "beta" ]
          [ [ "1"; "2" ]; [ "333"; "4" ] ])
  in
  check "header present" true (String.length text > 0);
  check "has rule" true
    (String.split_on_char '\n' text
    |> List.exists (fun l -> String.length l > 0 && l.[0] = '-'))

let test_table_rejects_ragged () =
  check "raises" true
    (try
       render (fun ppf -> Report.table ppf ~header:[ "a"; "b" ] [ [ "1" ] ])
       |> ignore;
       false
     with Invalid_argument _ -> true)

let test_histogram_renders () =
  let text =
    render (fun ppf ->
        Report.histogram ppf ~bins:4 ~title:"t" ~unit_label:"u"
          [ 1.0; 2.0; 2.5; 9.0 ])
  in
  check "bars present" true (String.contains text '#');
  check "empty raises" true
    (try
       render (fun ppf ->
           Report.histogram ppf ~title:"t" ~unit_label:"u" [])
       |> ignore;
       false
     with Invalid_argument _ -> true)

let test_series_renders () =
  let text =
    render (fun ppf -> Report.series ppf ~title:"s" [ ("d1", 1.0); ("d2", 2.0) ])
  in
  check "labels present" true
    (String.length text > 0
    && String.split_on_char '\n' text |> List.exists (fun l ->
           String.length l >= 4 && String.trim l <> "" && String.trim l <> "s"))

let test_cells () =
  Alcotest.(check string) "float" "0.1235" (Report.float_cell 0.12345);
  Alcotest.(check string) "digits" "0.12" (Report.float_cell ~digits:2 0.12345);
  Alcotest.(check string) "ratio" "1.43x" (Report.ratio_cell 1.43)

(* ---- Chip_render ----------------------------------------------------- *)

module Chip_render = Vqc_experiments.Chip_render

let test_chip_render_q20 () =
  let ctx = Context.default in
  let text = render (fun ppf -> Chip_render.q20 ppf ctx.Context.q20) in
  check "renders all 20 nodes" true
    (List.for_all
       (fun q ->
         let needle = Printf.sprintf "(%2d)" q in
         let rec scan i =
           i + String.length needle <= String.length text
           && (String.sub text i (String.length needle) = needle || scan (i + 1))
         in
         scan 0)
       (List.init 20 Fun.id));
  check "mentions diagonals" true
    (String.length text > 0
    &&
    let rec contains i =
      i + 8 <= String.length text
      && (String.sub text i 8 = "diagonal" || contains (i + 1))
    in
    contains 0)

let test_chip_render_highlight () =
  let ctx = Context.default in
  let text =
    render (fun ppf -> Chip_render.q20 ~highlight:[ 7 ] ppf ctx.Context.q20)
  in
  let rec contains needle i =
    i + String.length needle <= String.length text
    && (String.sub text i (String.length needle) = needle
       || contains needle (i + 1))
  in
  check "highlighted node bracketed" true (contains "[ 7]" 0)

let test_chip_render_rejects_small_device () =
  let device = Vqc_device.Calibration_model.ibm_q5 ~seed:1 in
  check "raises" true
    (try
       render (fun ppf -> Chip_render.q20 ppf device) |> ignore;
       false
     with Invalid_argument _ -> true)

(* ---- Context ------------------------------------------------------- *)

let test_context_is_deterministic () =
  let a = Context.make ~seed:3 and b = Context.make ~seed:3 in
  let text ctx =
    Calibration.to_string (Device.calibration ctx.Context.q20)
  in
  Alcotest.(check string) "same q20" (text a) (text b);
  check "52-day history" true (History.days a.Context.history = 52);
  check "100 samples" true (History.days a.Context.samples = 100)

let test_context_q20_is_average_of_history () =
  let ctx = Context.make ~seed:3 in
  let average = History.average ctx.Context.history in
  Alcotest.(check string) "q20 carries the average calibration"
    (Calibration.to_string average)
    (Calibration.to_string (Device.calibration ctx.Context.q20))

(* ---- Registry ------------------------------------------------------ *)

let test_registry_complete () =
  let ids = Registry.ids () in
  List.iter
    (fun id -> check (id ^ " registered") true (List.mem id ids))
    [
      "fig5"; "fig6"; "fig7"; "fig8"; "fig9"; "tab1"; "fig12"; "fig13";
      "fig14"; "tab2"; "tab3"; "fig16";
    ];
  check_int "ids unique" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  check "unknown id" true
    (try
       let _ = Registry.find "fig99" in
       false
     with Not_found -> true)

(* Run the cheap experiments end to end; expensive ones (fig13, fig14,
   fig16) are exercised by the bench harness. *)
let test_cheap_experiments_smoke () =
  let ctx = Context.make ~seed:3 in
  List.iter
    (fun id ->
      let e = Registry.find id in
      let text = render (fun ppf -> e.Registry.run ppf ctx) in
      check (id ^ " produces output") true (String.length text > 100))
    [ "fig5"; "fig6"; "fig7"; "fig8"; "fig9"; "tab1"; "tab3" ]

(* ---- headline shape checks (the paper's qualitative claims) -------- *)

let pst ctx policy name =
  let circuit = (Catalog.find name).Catalog.circuit in
  let compiled = Compiler.compile ctx.Context.q20 policy circuit in
  Reliability.pst ctx.Context.q20 compiled.Compiler.physical

let test_policies_never_hurt_on_default_chip () =
  let ctx = Context.default in
  List.iter
    (fun name ->
      let base = pst ctx Compiler.baseline name in
      let vqm = pst ctx Compiler.vqm name in
      let best = pst ctx Compiler.vqa_vqm name in
      check (name ^ ": vqm >= baseline") true (vqm >= base *. 0.999);
      check (name ^ ": vqa+vqm >= baseline") true (best >= base *. 0.999))
    [ "bv-16"; "bv-20"; "rnd-SD" ]

let test_vqa_vqm_improves_somewhere () =
  let ctx = Context.default in
  let improvements =
    List.map
      (fun name -> pst ctx Compiler.vqa_vqm name /. pst ctx Compiler.baseline name)
      [ "bv-16"; "bv-20"; "rnd-SD" ]
  in
  check "max improvement >= 1.2x" true
    (List.fold_left Float.max 0.0 improvements >= 1.2)

let test_baseline_beats_native_on_average () =
  let ctx = Context.default in
  let name = "bv-16" in
  let base = pst ctx Compiler.baseline name in
  let native_psts =
    List.map (fun seed -> pst ctx (Compiler.native ~seed) name)
      (List.init 8 (fun i -> 100 + i))
  in
  let avg =
    List.fold_left ( +. ) 0.0 native_psts
    /. float_of_int (List.length native_psts)
  in
  check "baseline above average native" true (base > avg)

let test_q5_policies_improve () =
  let ctx = Context.default in
  let q5 = ctx.Context.q5 in
  List.iter
    (fun (e : Catalog.entry) ->
      let run policy =
        let compiled = Compiler.compile q5 policy e.Catalog.circuit in
        Reliability.pst q5 compiled.Compiler.physical
      in
      check (e.Catalog.name ^ " q5 no regression") true
        (run Compiler.vqa_vqm >= run Compiler.baseline *. 0.999))
    Catalog.q5_suite

let () =
  Alcotest.run "vqc_experiments"
    [
      ( "report",
        [
          Alcotest.test_case "table" `Quick test_table_renders_aligned;
          Alcotest.test_case "ragged table" `Quick test_table_rejects_ragged;
          Alcotest.test_case "histogram" `Quick test_histogram_renders;
          Alcotest.test_case "series" `Quick test_series_renders;
          Alcotest.test_case "cells" `Quick test_cells;
        ] );
      ( "chip render",
        [
          Alcotest.test_case "q20" `Quick test_chip_render_q20;
          Alcotest.test_case "highlight" `Quick test_chip_render_highlight;
          Alcotest.test_case "small device" `Quick
            test_chip_render_rejects_small_device;
        ] );
      ( "context",
        [
          Alcotest.test_case "deterministic" `Quick test_context_is_deterministic;
          Alcotest.test_case "q20 = history average" `Quick
            test_context_q20_is_average_of_history;
        ] );
      ( "registry",
        [
          Alcotest.test_case "complete" `Quick test_registry_complete;
          Alcotest.test_case "smoke" `Slow test_cheap_experiments_smoke;
        ] );
      ( "paper shape",
        [
          Alcotest.test_case "policies never hurt" `Slow
            test_policies_never_hurt_on_default_chip;
          Alcotest.test_case "improvement exists" `Slow
            test_vqa_vqm_improves_somewhere;
          Alcotest.test_case "baseline beats native" `Slow
            test_baseline_beats_native_on_average;
          Alcotest.test_case "q5 improves" `Slow test_q5_policies_improve;
        ] );
    ]

(* Functional verification: compile Grover's search for the simulated
   IBM-Q20 and prove, with the ideal state-vector simulator, that the
   routed circuit still finds the marked item — then show what the noisy
   machine does to the success probability and how much the
   variation-aware policies claw back.

   Run with: dune exec examples/verify_compilation.exe *)

module Sv = Vqc_statevector.Statevector
module Compiler = Vqc_mapper.Compiler
module Reliability = Vqc_sim.Reliability
module Circuit = Vqc_circuit.Circuit

let () =
  let marked = 0b101 in
  let program = Vqc_workloads.Grover.circuit ~marked 3 in
  let ctx = Vqc_experiments.Context.default in
  let device = ctx.Vqc_experiments.Context.q20 in

  Printf.printf "Grover search, 3 qubits, marked item |%d> (0b101)\n\n" marked;
  let ideal = Sv.measurement_distribution program in
  Printf.printf "ideal source-program outcomes:\n";
  List.iter
    (fun (outcome, p) -> Printf.printf "  %03d -> %.4f\n" outcome p)
    ideal;

  List.iter
    (fun policy ->
      let compiled = Compiler.compile device policy program in
      let routed = Sv.measurement_distribution compiled.Compiler.physical in
      let distance = Sv.distribution_distance ideal routed in
      let stats = Circuit.stats compiled.Compiler.physical in
      let pst = Reliability.pst device compiled.Compiler.physical in
      let p_marked =
        Option.value (List.assoc_opt marked routed) ~default:0.0
      in
      Printf.printf
        "\n%-10s %d two-qubit ops after routing\n" policy.Compiler.label
        stats.Circuit.two_qubit_gates;
      Printf.printf
        "  functional check: ideal-vs-routed distance %.2e (%s)\n" distance
        (if distance < 1e-9 then "equivalent" else "BROKEN");
      Printf.printf "  ideal P(marked) = %.3f; noisy trial survives with PST = %.3f\n"
        p_marked pst;
      Printf.printf "  expected successful searches per trial ~ %.3f\n"
        (p_marked *. pst))
    [ Compiler.baseline; Compiler.vqm; Compiler.vqa_vqm ]

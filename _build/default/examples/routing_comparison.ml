(* Routing comparison on a custom device: reproduce the paper's Figure 1
   intuition on a hand-built 5-qubit ring, then show the same effect on a
   generated 20-qubit machine.

   Run with: dune exec examples/routing_comparison.exe *)

module Gate = Vqc_circuit.Gate
module Circuit = Vqc_circuit.Circuit
module Calibration = Vqc_device.Calibration
module Device = Vqc_device.Device
module Topologies = Vqc_device.Topologies
module Layout = Vqc_mapper.Layout
module Cost = Vqc_mapper.Cost
module Router = Vqc_mapper.Router
module Compiler = Vqc_mapper.Compiler
module Reliability = Vqc_sim.Reliability

let figure1_machine () =
  (* Paper Figure 1(a): five qubits on a ring.  Link successes chosen so
     the 1-swap route A-B-C is weaker than the 2-swap route A-E-D-C. *)
  let c = Calibration.create 5 in
  List.iter
    (fun (u, v, success) -> Calibration.set_link_error c u v (1.0 -. success))
    [ (0, 1, 0.6); (1, 2, 0.7); (2, 3, 0.7); (3, 4, 0.9); (4, 0, 0.9) ];
  Device.make ~name:"figure-1" ~coupling:Topologies.pentagon c

let () =
  let device = figure1_machine () in
  Printf.printf "Figure 1 machine: %s\n" (Device.name device);
  List.iter
    (fun (u, v) ->
      Printf.printf "  link %d--%d  success %.2f\n" u v
        (Device.cnot_success device u v))
    (Device.coupling device);

  (* entangle program qubit 0 (at A) with program qubit 2 (at C) *)
  let program = Circuit.of_gates 3 [ Gate.Cnot { control = 0; target = 2 } ] in
  let layout = Layout.identity ~programs:3 ~physicals:5 in
  let describe label model =
    let cost = Cost.make ~swap_bias:0.0 device model in
    let routed = Router.route cost layout program in
    let pst = Reliability.pst ~coherence:false device routed.Router.circuit in
    Printf.printf "\n%s routing:\n" label;
    List.iter
      (fun g -> Printf.printf "  %s\n" (Gate.to_string g))
      (Circuit.gates routed.Router.circuit);
    Printf.printf "  probability of success: %.3f\n" pst
  in
  describe "variation-unaware (fewest SWAPs)" Cost.Hops;
  describe "variation-aware (VQM)" Cost.Reliability;

  (* the same effect at device scale *)
  let ctx = Vqc_experiments.Context.default in
  let q20 = ctx.Vqc_experiments.Context.q20 in
  let bench = Vqc_workloads.Catalog.find "qft-12" in
  Printf.printf "\nqft-12 on the simulated IBM-Q20:\n";
  List.iter
    (fun policy ->
      let compiled =
        Compiler.compile q20 policy bench.Vqc_workloads.Catalog.circuit
      in
      Printf.printf "  %-10s swaps=%-3d PST=%.2e\n" policy.Compiler.label
        (Compiler.swap_overhead compiled)
        (Reliability.pst q20 compiled.Compiler.physical))
    [ Compiler.baseline; Compiler.vqm; Compiler.vqa_vqm ]

(* Quickstart: compile one benchmark for a simulated IBM-Q20 with the
   variation-unaware baseline and with VQA+VQM, then compare the
   Probability of a Successful Trial (analytically and by Monte-Carlo
   fault injection).

   Run with: dune exec examples/quickstart.exe *)

module Device = Vqc_device.Device
module Calibration_model = Vqc_device.Calibration_model
module Compiler = Vqc_mapper.Compiler
module Reliability = Vqc_sim.Reliability
module Monte_carlo = Vqc_sim.Monte_carlo
module Rng = Vqc_rng.Rng

let () =
  (* A 20-qubit device whose calibration is drawn from the statistical
     model matched to the paper's IBM-Q20 data. *)
  let device = Calibration_model.ibm_q20 ~seed:2019 in
  let u, v, e = Device.weakest_link device in
  Printf.printf "device: %s\n" (Device.name device);
  Printf.printf "weakest link: %d--%d at %.1f%% CNOT error\n" u v (100. *. e);
  let u, v, e = Device.strongest_link device in
  Printf.printf "strongest link: %d--%d at %.1f%% CNOT error\n\n" u v
    (100. *. e);

  let benchmark = Vqc_workloads.Catalog.find "bv-16" in
  Printf.printf "benchmark: %s (%s)\n\n" benchmark.name benchmark.description;

  let evaluate policy =
    let compiled = Compiler.compile device policy benchmark.circuit in
    let analytic = Reliability.analyze device compiled.Compiler.physical in
    let mc =
      Monte_carlo.run ~trials:200_000 (Rng.make 7) device
        compiled.Compiler.physical
    in
    Printf.printf
      "%-10s swaps=%-3d PST(analytic)=%.4f PST(monte-carlo)=%.4f +/- %.4f\n"
      policy.Compiler.label
      (Compiler.swap_overhead compiled)
      analytic.Reliability.pst mc.Monte_carlo.pst mc.Monte_carlo.ci95;
    analytic.Reliability.pst
  in
  let base = evaluate Compiler.baseline in
  let vqm = evaluate Compiler.vqm in
  let best = evaluate Compiler.vqa_vqm in
  Printf.printf "\nrelative PST: VQM %.2fx, VQA+VQM %.2fx over baseline\n"
    (vqm /. base) (best /. base)

(* Partitioning case study (paper Section 8): when a program needs at most
   half the machine, is it better to run two concurrent copies (more
   trials per second) or one copy on the strongest region (more reliable
   trials)?

   Run with: dune exec examples/partitioning.exe *)

module Partition = Vqc_partition.Partition

let show name circuit =
  let ctx = Vqc_experiments.Context.default in
  let device = ctx.Vqc_experiments.Context.q20 in
  let cmp = Partition.compare_strategies device circuit in
  let region_text region = String.concat "," (List.map string_of_int region) in
  Printf.printf "%s\n" name;
  Printf.printf "  copy X  region {%s}  PST %.4f\n"
    (region_text cmp.Partition.copy_x.Partition.region)
    cmp.Partition.copy_x.Partition.pst;
  Printf.printf "  copy Y  region {%s}  PST %.4f\n"
    (region_text cmp.Partition.copy_y.Partition.region)
    cmp.Partition.copy_y.Partition.pst;
  Printf.printf "  single  region {%s}  PST %.4f\n"
    (region_text cmp.Partition.single.Partition.region)
    cmp.Partition.single.Partition.pst;
  let ratio = cmp.Partition.stpt_single /. cmp.Partition.stpt_two in
  Printf.printf
    "  successful trials per second: two copies %.0f, one strong copy %.0f \
     (%.2fx)\n"
    cmp.Partition.stpt_two cmp.Partition.stpt_single ratio;
  Printf.printf "  -> %s\n\n"
    (if ratio > 1.0 then "run ONE STRONG copy"
     else "run TWO CONCURRENT copies")

let () =
  Printf.printf "One strong copy vs two weak copies on the simulated IBM-Q20\n\n";
  List.iter
    (fun (entry : Vqc_workloads.Catalog.entry) ->
      show entry.Vqc_workloads.Catalog.name entry.Vqc_workloads.Catalog.circuit)
    Vqc_workloads.Catalog.partition_suite

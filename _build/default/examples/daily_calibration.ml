(* Daily recalibration (paper Section 6.5): compile the same program
   against each day of a calibration history and watch the benefit of the
   variation-aware policies track the machine's day-to-day variability.

   Run with: dune exec examples/daily_calibration.exe *)

module Device = Vqc_device.Device
module History = Vqc_device.History
module Calibration = Vqc_device.Calibration
module Compiler = Vqc_mapper.Compiler
module Reliability = Vqc_sim.Reliability

let () =
  let ctx = Vqc_experiments.Context.default in
  let history = ctx.Vqc_experiments.Context.history in
  let base_device = ctx.Vqc_experiments.Context.q20 in
  let circuit =
    (Vqc_workloads.Catalog.find "bv-16").Vqc_workloads.Catalog.circuit
  in
  Printf.printf
    "bv-16 compiled fresh for each of 14 days of Q20 calibration:\n\n";
  Printf.printf "%-6s  %-12s  %-14s  %-14s  %s\n" "day" "worst link"
    "PST(baseline)" "PST(VQA+VQM)" "benefit";
  let total = ref 0.0 in
  let days = 14 in
  for day = 0 to days - 1 do
    let calibration = History.day history day in
    let device = Device.with_calibration base_device calibration in
    let pst policy =
      let compiled = Compiler.compile device policy circuit in
      Reliability.pst device compiled.Compiler.physical
    in
    let base = pst Compiler.baseline in
    let best = pst Compiler.vqa_vqm in
    let summary = Calibration.link_error_summary calibration in
    total := !total +. (best /. base);
    Printf.printf "%-6d  %-12s  %-14.4f  %-14.4f  %.2fx\n" (day + 1)
      (Printf.sprintf "%.1f%%" (100.0 *. summary.Calibration.maximum))
      base best (best /. base)
  done;
  Printf.printf "\naverage benefit over %d days: %.2fx\n" days
    (!total /. float_of_int days);
  Printf.printf
    "(the paper's runtime model, footnote 2: recompile at every \
     calibration cycle and run trials with the fresh executable)\n"

examples/routing_comparison.mli:

examples/daily_calibration.ml: Printf Vqc_device Vqc_experiments Vqc_mapper Vqc_sim Vqc_workloads

examples/verify_compilation.ml: List Option Printf Vqc_circuit Vqc_experiments Vqc_mapper Vqc_sim Vqc_statevector Vqc_workloads

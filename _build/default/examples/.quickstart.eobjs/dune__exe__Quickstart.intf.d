examples/quickstart.mli:

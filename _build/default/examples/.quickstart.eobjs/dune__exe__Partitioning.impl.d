examples/partitioning.ml: List Printf String Vqc_experiments Vqc_partition Vqc_workloads

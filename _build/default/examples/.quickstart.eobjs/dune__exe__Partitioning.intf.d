examples/partitioning.mli:

examples/daily_calibration.mli:

examples/routing_comparison.ml: List Printf Vqc_circuit Vqc_device Vqc_experiments Vqc_mapper Vqc_sim Vqc_workloads

examples/quickstart.ml: Printf Vqc_device Vqc_mapper Vqc_rng Vqc_sim Vqc_workloads

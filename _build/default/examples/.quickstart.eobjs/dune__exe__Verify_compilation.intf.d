examples/verify_compilation.mli:

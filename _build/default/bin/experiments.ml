(* Run paper-artifact reproductions by id: `vqc-experiments fig12 tab3`,
   or everything with `vqc-experiments all`. *)

module Registry = Vqc_experiments.Registry
module Context = Vqc_experiments.Context

open Cmdliner

let run_ids seed ids =
  let ctx = Context.make ~seed in
  let ppf = Format.std_formatter in
  let run_one id =
    match id with
    | "all" ->
      Registry.run_all ppf ctx;
      Ok ()
    | id -> begin
      match Registry.find id with
      | e ->
        e.Registry.run ppf ctx;
        Format.pp_print_flush ppf ();
        Ok ()
      | exception Not_found ->
        Error
          (Printf.sprintf "unknown experiment %S; available: %s" id
             (String.concat ", " ("all" :: Registry.ids ())))
    end
  in
  let rec run_list = function
    | [] -> Ok ()
    | id :: rest -> begin
      match run_one id with Ok () -> run_list rest | Error _ as e -> e
    end
  in
  match run_list (if ids = [] then [ "all" ] else ids) with
  | Ok () -> 0
  | Error message ->
    prerr_endline message;
    1

let seed_term =
  let doc =
    "Seed for the synthetic calibration model (2 is the documented \
     representative chip)."
  in
  Arg.(value & opt int 2 & info [ "seed" ] ~docv:"SEED" ~doc)

let ids_term =
  let doc = "Experiment ids (fig5..fig16, tab1..tab3, abl-*, or 'all')." in
  Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc)

let cmd =
  let doc = "reproduce the figures and tables of the ASPLOS'19 paper" in
  Cmd.v
    (Cmd.info "vqc-experiments" ~doc)
    Term.(const run_ids $ seed_term $ ids_term)

let () = exit (Cmd.eval' cmd)

(* qmap: compile a benchmark (or a QASM file) for a simulated NISQ device
   under a chosen policy and report SWAP overhead and PST.

   Examples:
     qmap --workload bv-16 --policy vqa+vqm
     qmap --qasm circuit.qasm --device q5 --policy baseline --trials 100000
     qmap --workload qft-12 --policy all --emit-qasm out.qasm *)

module Device = Vqc_device.Device
module Calibration_model = Vqc_device.Calibration_model
module History = Vqc_device.History
module Topologies = Vqc_device.Topologies
module Circuit = Vqc_circuit.Circuit
module Qasm = Vqc_circuit.Qasm
module Compiler = Vqc_mapper.Compiler
module Reliability = Vqc_sim.Reliability
module Monte_carlo = Vqc_sim.Monte_carlo
module Budget = Vqc_sim.Budget
module Rng = Vqc_rng.Rng

open Cmdliner

let load_circuit workload qasm_path =
  match (workload, qasm_path) with
  | Some _, Some _ -> Error "--workload and --qasm are mutually exclusive"
  | None, None -> Error "one of --workload or --qasm is required"
  | Some name, None -> begin
    match Vqc_workloads.Catalog.find name with
    | entry -> Ok entry.Vqc_workloads.Catalog.circuit
    | exception Not_found ->
      Error
        (Printf.sprintf "unknown workload %S; try one of: %s" name
           (String.concat ", " (Vqc_workloads.Catalog.names ())))
  end
  | None, Some path -> begin
    match In_channel.with_open_text path In_channel.input_all with
    | text -> begin
      match Qasm.of_string text with
      | Ok circuit -> Ok circuit
      | Error message -> Error (Printf.sprintf "%s: %s" path message)
    end
    | exception Sys_error message -> Error message
  end

let make_device name seed device_file calibration_csv =
  match (device_file, calibration_csv) with
  | Some _, Some _ ->
    Error "--device-file and --calibration-csv are mutually exclusive"
  | _, Some path -> begin
    match In_channel.with_open_text path In_channel.input_all with
    | text -> begin
      match
        Vqc_device.Calibration_io.device_of_ibm_csv
          ~name:(Filename.basename path) text
      with
      | Ok device -> Ok device
      | Error message -> Error (Printf.sprintf "%s: %s" path message)
    end
    | exception Sys_error message -> Error message
  end
  | Some path, None -> begin
    match In_channel.with_open_text path In_channel.input_all with
    | text -> begin
      match Device.of_string text with
      | Ok device -> Ok device
      | Error message -> Error (Printf.sprintf "%s: %s" path message)
    end
    | exception Sys_error message -> Error message
  end
  | None, None -> begin
    match name with
    | "q20" ->
      let history =
        History.generate ~days:52 ~seed ~coupling:Topologies.ibm_q20_tokyo 20
      in
      Ok
        (Device.make ~name:"ibm-q20-tokyo" ~coupling:Topologies.ibm_q20_tokyo
           (History.average history))
    | "q5" -> Ok (Calibration_model.ibm_q5 ~seed)
    | other -> Error (Printf.sprintf "unknown device %S (try q20 or q5)" other)
  end

let policies_of label =
  match label with
  | "baseline" -> Ok [ Compiler.baseline ]
  | "vqm" -> Ok [ Compiler.vqm ]
  | "vqm-mah4" -> Ok [ Compiler.vqm_limited 4 ]
  | "vqa+vqm" -> Ok [ Compiler.vqa_vqm ]
  | "vqa+vqm+readout" -> Ok [ Compiler.vqa_vqm_readout ]
  | "vqm+bridge" -> Ok [ Compiler.vqm_bridge ]
  | "sabre" -> Ok [ Compiler.sabre ]
  | "noise-sabre" -> Ok [ Compiler.noise_sabre ]
  | "native" -> Ok [ Compiler.native ~seed:1 ]
  | "all" ->
    Ok
      [
        Compiler.native ~seed:1;
        Compiler.baseline;
        Compiler.vqm;
        Compiler.vqm_limited 4;
        Compiler.vqa_vqm;
      ]
  | "all-extended" ->
    Ok
      [
        Compiler.native ~seed:1;
        Compiler.baseline;
        Compiler.vqm;
        Compiler.vqa_vqm;
        Compiler.vqa_vqm_readout;
        Compiler.vqm_bridge;
        Compiler.sabre;
        Compiler.noise_sabre;
      ]
  | other ->
    Error
      (Printf.sprintf
         "unknown policy %S (baseline, vqm, vqm-mah4, vqa+vqm, \
          vqa+vqm+readout, vqm+bridge, sabre, noise-sabre, native, all, \
          all-extended)"
         other)

let setup_logging verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let run workload qasm_path device_name device_file calibration_csv save_device
    policy_label seed trials emit_qasm verbose explain =
  setup_logging verbose;
  let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e in
  let result =
    let* circuit = load_circuit workload qasm_path in
    let* device = make_device device_name seed device_file calibration_csv in
    (match save_device with
    | Some path ->
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc (Device.to_string device));
      Printf.printf "wrote device configuration to %s\n" path
    | None -> ());
    let* policies = policies_of policy_label in
    let stats = Circuit.stats circuit in
    Printf.printf "program: %d qubits, %d gates (%d two-qubit), depth %d\n"
      (Circuit.num_qubits circuit)
      stats.Circuit.total_gates stats.Circuit.two_qubit_gates
      stats.Circuit.depth;
    Printf.printf "device:  %s (%d qubits, %d couplers), seed %d\n\n"
      (Device.name device) (Device.num_qubits device)
      (List.length (Device.coupling device))
      seed;
    List.iter
      (fun policy ->
        let compiled = Compiler.compile device policy circuit in
        let breakdown = Reliability.analyze device compiled.Compiler.physical in
        Printf.printf "%-12s swaps=%-3d depth=%-4d PST=%.6f duration=%.1fus\n"
          policy.Compiler.label
          (Compiler.swap_overhead compiled)
          (Circuit.stats compiled.Compiler.physical).Circuit.depth
          breakdown.Reliability.pst
          (breakdown.Reliability.duration_ns /. 1000.0);
        if explain then begin
          let budget = Budget.analyze device compiled.Compiler.physical in
          let top = List.filteri (fun i _ -> i < 8) budget in
          Printf.printf "  error budget (top lines):\n";
          List.iter
            (fun line -> Format.printf "    %a@." Budget.pp_line line)
            top;
          Printf.printf "  total -log PST = %.4f\n"
            (Budget.total_log_failure budget)
        end;
        if trials > 0 then begin
          let mc =
            Monte_carlo.run ~trials (Rng.make seed) device
              compiled.Compiler.physical
          in
          Printf.printf "%-12s monte-carlo PST = %.6f +/- %.6f (%d trials)\n"
            "" mc.Monte_carlo.pst mc.Monte_carlo.ci95 mc.Monte_carlo.trials
        end;
        match emit_qasm with
        | Some path ->
          Out_channel.with_open_text path (fun oc ->
              Out_channel.output_string oc
                (Qasm.to_string compiled.Compiler.physical));
          Printf.printf "wrote compiled circuit to %s\n" path
        | None -> ())
      policies;
    Ok ()
  in
  match result with
  | Ok () -> 0
  | Error message ->
    prerr_endline message;
    1

let workload_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "w"; "workload" ] ~docv:"NAME" ~doc:"Benchmark from the catalog.")

let qasm_term =
  Arg.(
    value
    & opt (some file) None
    & info [ "qasm" ] ~docv:"FILE" ~doc:"OpenQASM 2.0 program to compile.")

let device_term =
  Arg.(
    value & opt string "q20"
    & info [ "d"; "device" ] ~docv:"DEVICE" ~doc:"Target device: q20 or q5.")

let device_file_term =
  Arg.(
    value
    & opt (some file) None
    & info [ "device-file" ] ~docv:"FILE"
        ~doc:"Load the device from a file written by --save-device.")

let calibration_csv_term =
  Arg.(
    value
    & opt (some file) None
    & info [ "calibration-csv" ] ~docv:"FILE"
        ~doc:"Build the device from an IBM-style calibration CSV report.")

let save_device_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "save-device" ] ~docv:"FILE"
        ~doc:"Write the (generated or loaded) device configuration.")

let policy_term =
  Arg.(
    value & opt string "all"
    & info [ "p"; "policy" ] ~docv:"POLICY"
        ~doc:"baseline, vqm, vqm-mah4, vqa+vqm, native, or all.")

let seed_term =
  Arg.(
    value & opt int 2
    & info [ "seed" ] ~docv:"SEED"
        ~doc:
          "Calibration-model seed (2 is the documented representative chip).")

let trials_term =
  Arg.(
    value & opt int 0
    & info [ "trials" ] ~docv:"N"
        ~doc:"Also run N Monte-Carlo fault-injection trials (0 = skip).")

let emit_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "emit-qasm" ] ~docv:"FILE"
        ~doc:"Write the compiled physical circuit as OpenQASM.")

let verbose_term =
  Arg.(
    value & flag
    & info [ "v"; "verbose" ]
        ~doc:"Log the compiler's candidate plans and decisions.")

let explain_term =
  Arg.(
    value & flag
    & info [ "explain" ]
        ~doc:
          "Print each compiled plan's error budget: which links, readouts \
           and idle windows cost the most PST.")

let cmd =
  let doc = "variability-aware qubit mapping for NISQ devices" in
  Cmd.v
    (Cmd.info "qmap" ~doc)
    Term.(
      const run $ workload_term $ qasm_term $ device_term $ device_file_term
      $ calibration_csv_term $ save_device_term $ policy_term $ seed_term
      $ trials_term $ emit_term $ verbose_term $ explain_term)

let () = exit (Cmd.eval' cmd)

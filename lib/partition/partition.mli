(** Partitioning case study: one strong copy vs. two weak copies
    (paper Section 8).

    When a workload needs at most half the machine, the device can host
    two concurrent copies of the program, doubling the trial rate at the
    price of pushing one copy onto weaker qubits; or it can run a single
    copy on the strongest region, maximizing per-trial PST.  The figure
    of merit is STPT — successful trials per unit time. *)

open Vqc_circuit

type copy = {
  region : int list;  (** device qubits hosting this copy, sorted *)
  pst : float;
  duration_ns : float;
  device : Vqc_device.Device.t;
      (** the region restricted to a standalone device — the machine this
          copy's physical circuit addresses *)
  physical : Circuit.t;
      (** the compiled plan, in [device]'s qubit numbering — what a
          trial-level simulator ({!Vqc_sim.Monte_carlo}) replays *)
}

type comparison = {
  single : copy;
      (** one copy on the best connected region of the full device —
          including the centre regions no disjoint split can offer *)
  copy_x : copy;  (** the stronger of the best two-copy split *)
  copy_y : copy;  (** the weaker of the best two-copy split *)
  stpt_single : float;
  stpt_two : float;
      (** both copies run inside one merged circuit, so they share the
          shot clock of the slower copy:
          [(pst_x + pst_y) / max duration] *)
}

val evaluate_on_region :
  ?policy:Vqc_mapper.Compiler.policy ->
  Vqc_device.Device.t ->
  int list ->
  Circuit.t ->
  copy
(** Compile and score one copy inside a region of the device (the policy
    defaults to VQA+VQM).
    @raise Invalid_argument if the region is smaller than the program or
    not connected. *)

val two_copy_candidates :
  Vqc_device.Device.t -> size:int -> (int list * int list) list
(** Disjoint connected region pairs of the given size, produced by
    greedy strength-driven growth from every seed with the complement
    re-grown around each remaining seed.  Deduplicated; never empty for
    feasible sizes on the stock topologies. *)

val recommend : comparison -> [ `One_strong_copy | `Two_copies ]
(** The adaptive-partitioning decision the paper's Section 8 closes
    with: pick whichever configuration yields more successful trials
    per unit time. *)

val compare_strategies :
  ?policy:Vqc_mapper.Compiler.policy ->
  Vqc_device.Device.t ->
  Circuit.t ->
  comparison
(** Evaluate the single strong copy against the best two-copy split (the
    split maximizing summed STPT, as the paper's exhaustive search does).
    @raise Invalid_argument if the program needs more than half the
    device or no disjoint split exists. *)

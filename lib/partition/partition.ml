open Vqc_circuit
module Device = Vqc_device.Device
module Graph = Vqc_graph.Graph
module Kcore = Vqc_graph.Kcore
module Compiler = Vqc_mapper.Compiler
module Reliability = Vqc_sim.Reliability
module Metrics = Vqc_sim.Metrics

type copy = {
  region : int list;
  pst : float;
  duration_ns : float;
  device : Device.t;
  physical : Circuit.t;
}

type comparison = {
  single : copy;
  copy_x : copy;
  copy_y : copy;
  stpt_single : float;
  stpt_two : float;
}

let recommend comparison =
  if comparison.stpt_single > comparison.stpt_two then `One_strong_copy
  else `Two_copies

let evaluate_on_region ?(policy = Compiler.vqa_vqm) device region circuit =
  let sub, _to_old = Device.restrict device region in
  if Device.num_qubits sub < Circuit.num_qubits circuit then
    invalid_arg "Partition: region smaller than the program";
  let compiled = Compiler.compile sub policy circuit in
  let breakdown = Reliability.analyze sub compiled.Compiler.physical in
  {
    region = List.sort compare region;
    pst = breakdown.Reliability.pst;
    duration_ns = breakdown.Reliability.duration_ns;
    device = sub;
    physical = compiled.Compiler.physical;
  }

(* Candidate splits: grow a connected [size]-region from every seed, then
   grow a second region inside the complement from every remaining seed,
   keeping the strongest complement growth per first region. *)
let two_copy_candidates device ~size =
  let success = Device.success_graph device in
  let n = Graph.node_count success in
  let seen = Hashtbl.create 16 in
  let candidates = ref [] in
  for seed = 0 to n - 1 do
    match Kcore.grow_subgraph success ~size ~seed with
    | None -> ()
    | Some region_x ->
      let blocked = Array.make n false in
      List.iter (fun q -> blocked.(q) <- true) region_x;
      (* complement graph: drop every edge touching region_x *)
      let complement = Graph.copy success in
      Graph.iter_edges
        (fun u v _ ->
          if blocked.(u) || blocked.(v) then Graph.remove_edge complement u v)
        success;
      let best_y = ref None in
      for seed_y = 0 to n - 1 do
        if not blocked.(seed_y) then
          match Kcore.grow_subgraph complement ~size ~seed:seed_y with
          | None -> ()
          | Some region_y ->
            if List.for_all (fun q -> not blocked.(q)) region_y then begin
              let strength = Kcore.internal_strength success region_y in
              match !best_y with
              | Some (s, _) when s >= strength -> ()
              | _ -> best_y := Some (strength, region_y)
            end
      done;
      (match !best_y with
      | None -> ()
      | Some (_, region_y) ->
        let key =
          if region_x <= region_y then (region_x, region_y)
          else (region_y, region_x)
        in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.replace seen key ();
          candidates := (region_x, region_y) :: !candidates
        end)
  done;
  List.rev !candidates

let single_copy_candidates device ~size =
  let success = Device.success_graph device in
  let n = Graph.node_count success in
  let seen = Hashtbl.create 16 in
  let regions = ref [] in
  let consider region =
    if not (Hashtbl.mem seen region) then begin
      Hashtbl.replace seen region ();
      regions := region :: !regions
    end
  in
  for seed = 0 to n - 1 do
    match Kcore.grow_subgraph success ~size ~seed with
    | Some region -> consider region
    | None -> ()
  done;
  consider (Kcore.strongest_subgraph success ~size);
  List.rev !regions

let compare_strategies ?(policy = Compiler.vqa_vqm) device circuit =
  let size = Circuit.num_qubits circuit in
  if 2 * size > Device.num_qubits device then
    invalid_arg "Partition: program needs more than half the device";
  let stpt_of c = Metrics.stpt ~pst:c.pst ~duration_ns:c.duration_ns in
  (* The single copy may claim any connected region of the machine —
     including the centre regions that no disjoint split can offer
     (paper Figure 15: two copies "resort to the weaker links"). *)
  let single =
    match
      List.map
        (fun region -> evaluate_on_region ~policy device region circuit)
        (single_copy_candidates device ~size)
    with
    | [] -> invalid_arg "Partition: no region candidates"
    | first :: rest ->
      List.fold_left
        (fun champion candidate ->
          if stpt_of candidate > stpt_of champion then candidate else champion)
        first rest
  in
  let splits = two_copy_candidates device ~size in
  if splits = [] then invalid_arg "Partition: no disjoint split found";
  (* Two concurrent copies are submitted as one merged circuit, so both
     share the shot clock of the slower copy. *)
  let two_copy_stpt x y =
    let shot = Float.max x.duration_ns y.duration_ns in
    Metrics.stpt ~pst:x.pst ~duration_ns:shot
    +. Metrics.stpt ~pst:y.pst ~duration_ns:shot
  in
  let scored =
    List.map
      (fun (rx, ry) ->
        let x = evaluate_on_region ~policy device rx circuit in
        let y = evaluate_on_region ~policy device ry circuit in
        let x, y = if x.pst >= y.pst then (x, y) else (y, x) in
        (two_copy_stpt x y, x, y))
      splits
  in
  let best_total, copy_x, copy_y =
    List.fold_left
      (fun ((best, _, _) as champion) ((total, _, _) as candidate) ->
        if total > best then candidate else champion)
      (List.hd scored) (List.tl scored)
  in
  {
    single;
    copy_x;
    copy_y;
    stpt_single = stpt_of single;
    stpt_two = best_total;
  }

module Circuit = Vqc_circuit.Circuit
module Gate = Vqc_circuit.Gate
module Device = Vqc_device.Device
module Reliability = Vqc_sim.Reliability

type score = {
  footprint_links : (int * int) list;
  footprint_qubits : int list;
  max_link_drift : float;
  max_readout_drift : float;
  before : Reliability.breakdown;
  after : Reliability.breakdown;
}

module Pair_set = Set.Make (struct
  type t = int * int

  let compare = compare
end)

module Int_set = Set.Make (Int)

let footprint circuit =
  let links, qubits =
    List.fold_left
      (fun (links, qubits) gate ->
        match gate with
        | Gate.Cnot { control = u; target = v } | Gate.Swap (u, v) ->
          ( Pair_set.add (min u v, max u v) links,
            Int_set.add u (Int_set.add v qubits) )
        | Gate.One_qubit (_, q) | Gate.Measure { qubit = q; _ } ->
          (links, Int_set.add q qubits)
        | Gate.Barrier _ -> (links, qubits))
      (Pair_set.empty, Int_set.empty)
      (Circuit.gates circuit)
  in
  (Pair_set.elements links, Int_set.elements qubits)

let measured_qubits circuit =
  List.fold_left
    (fun acc gate ->
      match gate with
      | Gate.Measure { qubit; _ } -> Int_set.add qubit acc
      | _ -> acc)
    Int_set.empty (Circuit.gates circuit)
  |> Int_set.elements

let score ~before ~after physical =
  let delta =
    Calibration_delta.compute
      (Device.calibration before)
      (Device.calibration after)
  in
  let footprint_links, footprint_qubits = footprint physical in
  let max_link_drift =
    List.fold_left
      (fun acc (u, v) ->
        Float.max acc (Float.abs (Calibration_delta.link_delta delta u v)))
      0.0 footprint_links
  in
  let max_readout_drift =
    List.fold_left
      (fun acc q ->
        Float.max acc (Float.abs (Calibration_delta.readout_delta delta q)))
      0.0 (measured_qubits physical)
  in
  {
    footprint_links;
    footprint_qubits;
    max_link_drift;
    max_readout_drift;
    before = Reliability.analyze before physical;
    after = Reliability.analyze after physical;
  }

let loss score =
  1.0 -. (score.after.Reliability.pst /. score.before.Reliability.pst)

let staleness score = Float.abs (loss score)

let pp ppf score =
  Format.fprintf ppf
    "staleness %.4f (pst %.4f -> %.4f, %d links, 2q drift %.2e, readout \
     drift %.2e)"
    (staleness score) score.before.Reliability.pst
    score.after.Reliability.pst
    (List.length score.footprint_links)
    score.max_link_drift score.max_readout_drift

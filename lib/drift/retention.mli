(** Thresholded retain / re-verify / recompile decisions.

    The wholesale regime the paper describes (recompile everything at
    every calibration) is the [threshold = 0] point of a dial: a plan is
    a candidate for retention when its {!Staleness.staleness} — the
    magnitude of its predicted relative PST change — stays within the
    threshold.  A candidate is only actually retained after it
    {e re-verifies}: {!Vqc_check.Verify} replays it against the device
    carrying the {e new} calibration, so a retained plan is held to
    exactly the bar a fresh compile is held to under [--verify]
    (adjacency, replay, SWAP accounting, calibration sanity).  Anything
    else is demoted to the recompile set.

    Determinism contract: decisions are pure functions of
    (policy, score); re-verification is the deterministic checker.  A
    policy with [threshold <= 0] is {!wholesale} — callers must take
    the plain flush path, byte-identical to the paper's regime. *)

type policy = {
  threshold : float;
      (** largest tolerated {!Staleness.staleness}; [<= 0] means the
          wholesale-flush regime (no scoring, no background
          recompilation) *)
}

val default : policy
(** [threshold = 0.05]: tolerate up to a 5% predicted relative PST
    change.  On the synthetic Q20 history this retains the plans whose
    routes dodge the links that moved while recompiling the rest — the
    selective middle ground between never recompiling and the paper's
    always-recompile. *)

val wholesale : policy -> bool
(** Whether the policy degenerates to the paper's wholesale flush
    ([threshold <= 0]). *)

type decision =
  | Retain  (** keep the plan, subject to re-verification *)
  | Recompile  (** demote: recompile against the new calibration *)

val decide : policy -> Staleness.score -> decision
(** [Retain] iff [Staleness.staleness score <= threshold] (and the
    policy is not {!wholesale}). *)

val reverify :
  device:Vqc_device.Device.t ->
  source:Vqc_circuit.Circuit.t ->
  physical:Vqc_circuit.Circuit.t ->
  initial:int array ->
  final:int array ->
  swaps:int ->
  Vqc_diag.Diagnostic.t list
(** Replay a cached plan against a device (normally the one carrying the
    new calibration) through {!Vqc_check.Verify.check}.  Layout arrays
    that do not form valid layouts come back as a [VQC108] diagnostic
    instead of an exception, so a corrupted cache entry demotes rather
    than crashes. *)

val decision_to_string : decision -> string

(** Per-plan staleness: how much a compiled plan's predicted PST moved
    under a calibration update, judged only on the hardware the plan
    actually touches.

    A routed plan commits to a concrete set of physical qubits and
    couplers — the {e footprint} of its physical gate stream (the
    SWAP-tracked permutation is already baked into that stream, so the
    footprint needs no layout bookkeeping).  When a new calibration is
    published, links outside the footprint cannot change what the plan
    delivers; links inside it can.  The score therefore re-derives the
    plan's predicted PST under both calibrations with
    {!Vqc_sim.Reliability.analyze} — the same ESP decomposition
    (1q / 2q / measurement / coherence) the estimator validates — and
    reports the relative change, alongside the {!Calibration_delta}
    restricted to the footprint.

    Everything here is deterministic: equal devices and circuits give
    bit-equal scores. *)

(** The score of one plan under one calibration update. *)
type score = {
  footprint_links : (int * int) list;
      (** couplers carrying a CNOT or SWAP of the plan, [(u, v)] with
          [u < v], sorted *)
  footprint_qubits : int list;
      (** physical qubits touched by any non-barrier gate, sorted *)
  max_link_drift : float;
      (** largest absolute two-qubit error delta over the footprint links *)
  max_readout_drift : float;
      (** largest absolute readout-error delta over the measured qubits *)
  before : Vqc_sim.Reliability.breakdown;
      (** predicted PST under the calibration the plan was compiled
          against *)
  after : Vqc_sim.Reliability.breakdown;
      (** predicted PST under the new calibration *)
}

val footprint : Vqc_circuit.Circuit.t -> (int * int) list * int list
(** [(links, qubits)] of a physical circuit: the couplers under its
    two-qubit gates and the qubits under any non-barrier gate. *)

val measured_qubits : Vqc_circuit.Circuit.t -> int list
(** Physical qubits read by a measurement, sorted. *)

val score :
  before:Vqc_device.Device.t ->
  after:Vqc_device.Device.t ->
  Vqc_circuit.Circuit.t ->
  score
(** Score one physical circuit across a calibration update.  [before]
    is the device the plan was compiled against, [after] the device
    carrying the new calibration (same topology).
    @raise Invalid_argument if the two devices disagree on qubit count
    or coupler set. *)

val loss : score -> float
(** Predicted {e relative} PST loss of running the stale plan on the new
    calibration: [1 - after.pst / before.pst].  Negative when the
    footprint improved. *)

val staleness : score -> float
(** The scalar the retention threshold cuts on: [abs (loss score)] — the
    magnitude of the predicted relative PST change.  [0] exactly when
    the footprint's predicted PST is unchanged; drift in either
    direction (degraded links {e or} improved ones that make the old
    trade-offs obsolete) counts. *)

val pp : Format.formatter -> score -> unit

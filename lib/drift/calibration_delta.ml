module Calibration = Vqc_device.Calibration

type link = {
  u : int;
  v : int;
  error_before : float;
  error_after : float;
}

type qubit = {
  index : int;
  before : Calibration.qubit;
  after : Calibration.qubit;
}

type t = {
  delta_qubits : qubit array;
  delta_links : link array;  (** sorted by [(u, v)] *)
  link_index : (int * int, int) Hashtbl.t;  (** (u, v) with u < v → array slot *)
}

let compute before after =
  let n = Calibration.num_qubits before in
  if Calibration.num_qubits after <> n then
    invalid_arg
      (Printf.sprintf
         "Calibration_delta.compute: qubit counts differ (%d vs %d)" n
         (Calibration.num_qubits after));
  let before_links = Calibration.links before in
  let after_links = Calibration.links after in
  if
    List.map (fun (u, v, _) -> (u, v)) before_links
    <> List.map (fun (u, v, _) -> (u, v)) after_links
  then invalid_arg "Calibration_delta.compute: coupler sets differ";
  let delta_links =
    Array.of_list
      (List.map2
         (fun (u, v, error_before) (_, _, error_after) ->
           { u; v; error_before; error_after })
         before_links after_links)
  in
  let link_index = Hashtbl.create (Array.length delta_links) in
  Array.iteri
    (fun slot link -> Hashtbl.replace link_index (link.u, link.v) slot)
    delta_links;
  {
    delta_qubits =
      Array.init n (fun index ->
          {
            index;
            before = Calibration.qubit before index;
            after = Calibration.qubit after index;
          });
    delta_links;
    link_index;
  }

let num_qubits t = Array.length t.delta_qubits
let links t = Array.to_list t.delta_links
let qubits t = Array.to_list t.delta_qubits

let link_delta t u v =
  let key = (min u v, max u v) in
  match Hashtbl.find_opt t.link_index key with
  | Some slot ->
    let link = t.delta_links.(slot) in
    link.error_after -. link.error_before
  | None -> raise Not_found

let readout_delta t q =
  if q < 0 || q >= Array.length t.delta_qubits then
    invalid_arg (Printf.sprintf "Calibration_delta.readout_delta: qubit %d" q);
  let { before; after; _ } = t.delta_qubits.(q) in
  after.Calibration.error_readout -. before.Calibration.error_readout

type norms = {
  l1 : float;
  l2 : float;
  linf : float;
}

let norms_of deltas =
  Array.fold_left
    (fun acc delta ->
      let a = Float.abs delta in
      { l1 = acc.l1 +. a; l2 = acc.l2 +. (a *. a); linf = Float.max acc.linf a })
    { l1 = 0.0; l2 = 0.0; linf = 0.0 }
    deltas
  |> fun n -> { n with l2 = sqrt n.l2 }

let link_error_norms t =
  norms_of
    (Array.map (fun link -> link.error_after -. link.error_before) t.delta_links)

let qubit_norms t figure =
  norms_of (Array.map (fun q -> figure q.before q.after) t.delta_qubits)

let readout_norms t =
  qubit_norms t (fun b a ->
      a.Calibration.error_readout -. b.Calibration.error_readout)

(* T1/T2 are tens-of-microseconds quantities; the comparable drift figure
   is relative.  A non-positive "before" would make the ratio meaningless,
   but the calibration model never emits one (and VQC107 rejects it). *)
let relative before after = (after -. before) /. before

let t1_norms t =
  qubit_norms t (fun b a -> relative b.Calibration.t1_us a.Calibration.t1_us)

let t2_norms t =
  qubit_norms t (fun b a -> relative b.Calibration.t2_us a.Calibration.t2_us)

let is_zero t =
  Array.for_all (fun l -> l.error_after = l.error_before) t.delta_links
  && Array.for_all
       (fun q ->
         let b = q.before and a = q.after in
         b.Calibration.t1_us = a.Calibration.t1_us
         && b.Calibration.t2_us = a.Calibration.t2_us
         && b.Calibration.error_1q = a.Calibration.error_1q
         && b.Calibration.error_readout = a.Calibration.error_readout)
       t.delta_qubits

let pp ppf t =
  let le = link_error_norms t in
  let ro = readout_norms t in
  Format.fprintf ppf
    "delta over %d qubits / %d links: 2q |d|max %.2e l1 %.2e, readout \
     |d|max %.2e"
    (num_qubits t)
    (Array.length t.delta_links)
    le.linf le.l1 ro.linf

module Compiler = Vqc_mapper.Compiler
module Pool = Vqc_engine.Pool
module Metrics = Vqc_obs.Metrics
module Trace = Vqc_obs.Trace
module Json = Vqc_obs.Json

type task = {
  id : string;
  device : Vqc_device.Device.t;
  policy : Compiler.policy;
  source : Vqc_circuit.Circuit.t;
}

type outcome = {
  task : task;
  plan : (Compiler.compiled, string) result;
  seconds : float;
}

let recompiles = Metrics.counter "drift.recompiles"
let failures = Metrics.counter "drift.recompile_failures"

(* Worker-side: pure data, no metrics (counters are bumped serially
   after the fan-in, like the service's compile phase). *)
let compile_task task =
  let start = Unix.gettimeofday () in
  let plan =
    match Compiler.compile task.device task.policy task.source with
    | compiled -> Ok compiled
    | exception Vqc_check.Verify.Invalid_plan diagnostics ->
      Error
        (String.concat "; "
           (List.map Vqc_diag.Diagnostic.to_string diagnostics))
    | exception (Invalid_argument message | Failure message) -> Error message
  in
  { task; plan; seconds = Unix.gettimeofday () -. start }

let run ?pool ?(jobs = 1) tasks =
  if tasks = [] then []
  else begin
    let fan pool = Pool.map pool ~f:(fun _ task -> compile_task task) tasks in
    let outcomes =
      match pool with
      | Some pool -> fan pool
      | None -> Pool.with_pool ~jobs fan
    in
    let failed =
      List.length
        (List.filter (fun o -> Result.is_error o.plan) outcomes)
    in
    Metrics.add recompiles (List.length outcomes);
    Metrics.add failures failed;
    if Trace.enabled () then
      Trace.emit ~source:"drift" ~event:"recompile"
        ~nd:
          [
            ( "seconds",
              Json.Float
                (List.fold_left (fun acc o -> acc +. o.seconds) 0.0 outcomes)
            );
          ]
        [
          ("tasks", Json.Int (List.length outcomes));
          ("failures", Json.Int failed);
        ];
    outcomes
  end

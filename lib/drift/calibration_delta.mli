(** Deterministic diff between two calibrations of the same device.

    The paper's runtime model treats a calibration update as an opaque
    event: everything recompiles (Section 6, footnote 2).  The drift
    pipeline instead asks {e what actually moved}: per-link two-qubit
    error deltas, per-qubit T1/T2/readout deltas, and summary norms over
    them.  A delta is a pure function of its two calibrations — equal
    inputs give equal deltas, field for field — which is what lets the
    staleness scores, retention decisions and bench artifacts built on
    top stay byte-reproducible.

    Both calibrations must describe the same machine: identical qubit
    count and identical coupler set.  (Epoch rotations satisfy this by
    construction — a {!Vqc_device.History} varies figures over a fixed
    topology.) *)

(** One coupler's two-qubit error on both sides of the update. *)
type link = {
  u : int;
  v : int;  (** [u < v], as in {!Vqc_device.Calibration.links} *)
  error_before : float;
  error_after : float;
}

(** One qubit's figures on both sides of the update. *)
type qubit = {
  index : int;
  before : Vqc_device.Calibration.qubit;
  after : Vqc_device.Calibration.qubit;
}

type t

val compute : Vqc_device.Calibration.t -> Vqc_device.Calibration.t -> t
(** [compute before after] diffs two calibrations of one machine.
    @raise Invalid_argument if the qubit counts or coupler sets differ. *)

val num_qubits : t -> int

val links : t -> link list
(** All couplers as [(u, v)] pairs with [u < v], sorted. *)

val qubits : t -> qubit list
(** All qubits in index order. *)

val link_delta : t -> int -> int -> float
(** [link_delta t u v] is [error_after -. error_before] of a coupler
    (operand order irrelevant).
    @raise Not_found if [(u, v)] is not a coupler. *)

val readout_delta : t -> int -> float
(** Readout-error change of one qubit.
    @raise Invalid_argument when out of range. *)

(** Summary norms over a family of per-entry deltas. *)
type norms = {
  l1 : float;  (** sum of absolute deltas *)
  l2 : float;  (** Euclidean norm of the deltas *)
  linf : float;  (** largest absolute delta *)
}

val link_error_norms : t -> norms
(** Norms over the absolute two-qubit error deltas (one per coupler). *)

val readout_norms : t -> norms
(** Norms over the absolute readout-error deltas (one per qubit). *)

val t1_norms : t -> norms
val t2_norms : t -> norms
(** Norms over the {e relative} coherence-time changes,
    [(after - before) / before] — T1/T2 live on a microsecond scale, so
    relative drift is the comparable figure. *)

val is_zero : t -> bool
(** Whether nothing moved at all (every delta exactly zero). *)

val pp : Format.formatter -> t -> unit
(** One-line summary of the norms, for traces and error messages. *)

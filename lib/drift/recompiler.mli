(** Background selective recompilation over the worker pool.

    The demoted plans of a retention pass recompile {e behind} the
    response path: the epoch has already advanced and requests already
    resolve against the new calibration; this pass just re-warms the
    cache so the first request for each demoted plan finds a hit instead
    of paying a cold compile.  Because the compiler is deterministic and
    cache temperature is quarantined under ["nd"], whether a plan was
    recompiled here or on first request is invisible in any
    deterministic response field.

    Tasks fan out over {!Vqc_engine.Pool} keyed by list order, so the
    outcome list is deterministic for any worker count — the same
    contract every other fan-out in the tree honors. *)

type task = {
  id : string;
      (** caller's stable identifier (e.g. the cache-key rendering);
          carried through to the outcome *)
  device : Vqc_device.Device.t;  (** carries the new calibration *)
  policy : Vqc_mapper.Compiler.policy;
  source : Vqc_circuit.Circuit.t;
}

type outcome = {
  task : task;
  plan : (Vqc_mapper.Compiler.compiled, string) result;
      (** [Error message] when the compiler rejects the task (including
          a rejection by an installed plan check) *)
  seconds : float;  (** wall-clock compile time; report under ["nd"] only *)
}

val run : ?pool:Vqc_engine.Pool.t -> ?jobs:int -> task list -> outcome list
(** Compile every task against its device, in parallel, returning
    outcomes in task order.  [pool] reuses a caller's pool; otherwise a
    fresh pool of [jobs] workers (default 1) runs the batch.  Counts
    [drift.recompiles] / [drift.recompile_failures] in
    {!Vqc_obs.Metrics} (outside the worker domains) and emits one
    ["recompile"] trace event per batch. *)

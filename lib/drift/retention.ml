module Device = Vqc_device.Device
module Layout = Vqc_mapper.Layout
module Verify = Vqc_check.Verify
module Diagnostic = Vqc_diag.Diagnostic

type policy = { threshold : float }

let default = { threshold = 0.05 }
let wholesale policy = policy.threshold <= 0.0

type decision =
  | Retain
  | Recompile

let decide policy score =
  if wholesale policy then Recompile
  else if Staleness.staleness score <= policy.threshold then Retain
  else Recompile

let reverify ~device ~source ~physical ~initial ~final ~swaps =
  let physicals = Device.num_qubits device in
  match
    ( Layout.of_assignment ~physicals initial,
      Layout.of_assignment ~physicals final )
  with
  | initial, final ->
    Verify.check
      { Verify.device; source; physical; initial; final; swaps_inserted = swaps }
  | exception Invalid_argument message ->
    [
      Diagnostic.errorf Diagnostic.code_malformed_plan
        "cached plan carries a malformed layout: %s" message;
    ]

let decision_to_string = function
  | Retain -> "retain"
  | Recompile -> "recompile"

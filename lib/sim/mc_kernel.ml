module Rng = Vqc_rng.Rng

(* The flat Monte-Carlo chunk kernel.

   The list-shaped trial loop in [Monte_carlo] spends its time boxing:
   every Bernoulli draw loads a boxed float probability, runs the boxed
   Int64 xoshiro step ([Rng.uint64] stores each state word back into a
   mutable record field, which allocates under the Closure backend), and
   converts the draw to a float to compare.  This kernel runs the same
   trial walk over flat buffers instead:

   - the failure table becomes an integer threshold per event (below);
   - the xoshiro256** state lives in a 4-word int64 [Bigarray], whose
     reads and writes are unboxed primitives, so the whole step compiles
     to straight-line word arithmetic;
   - the per-draw test is a native int compare.

   Bit-identity with the reference loop.  [Rng.bernoulli t p] is
   [p <= 0 -> false] and [p >= 1 -> true] with {e no} generator draw,
   else one draw [k] of 53 bits and the test [k * 2^-53 < p].  Both
   [Int64.to_float k] and the [2^-53] scaling are exact, so the float
   test decides exactly the real inequality [k < p * 2^53].  [p * 2^53]
   is itself an exact float product (a power-of-two scaling of a double
   in (0, 1) neither rounds nor overflows), [Float.ceil] is exact, and
   the result is an integer at most [2^53], so

     k < p * 2^53   <=>   k < ceil(p * 2^53)   (integers)

   — the threshold precomputed by {!of_probabilities}.  Each trial walks
   the events in order, draws exactly when the reference would (skipping
   [p <= 0] and [p >= 1] events), and stops at the first failure, so the
   draw stream, the success count, and the draw count all match the
   reference bit for bit; {!run_chunk} finally writes the walked state
   back into the caller's generator, leaving it exactly as if the
   reference loop had advanced it. *)

type table = {
  thresholds : (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t;
      (* 0: never fires (no draw); -1: always fires (no draw);
         t in [1, 2^53]: fires iff the next 53-bit draw is < t *)
  events : int;
}

let of_probabilities probabilities =
  let events = Array.length probabilities in
  let thresholds =
    Bigarray.Array1.create Bigarray.int Bigarray.c_layout (max 1 events)
  in
  Array.iteri
    (fun i p ->
      Bigarray.Array1.set thresholds i
        (if p <= 0.0 then 0
         else if p >= 1.0 then -1
         else int_of_float (Float.ceil (p *. 0x1.0p53))))
    probabilities;
  { thresholds; events }

let events table = table.events

let run_chunk { thresholds; events } rng count =
  let state = Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout 4 in
  let words = Rng.dump rng in
  for i = 0 to 3 do
    Bigarray.Array1.unsafe_set state i words.(i)
  done;
  let successes = ref 0 in
  let draws = ref 0 in
  for _ = 1 to count do
    let i = ref 0 in
    let failed = ref false in
    while (not !failed) && !i < events do
      incr draws;
      let t = Bigarray.Array1.unsafe_get thresholds !i in
      if t = 0 then incr i
      else if t < 0 then failed := true
      else begin
        (* xoshiro256** step, states let-bound into unboxed word ops *)
        let s0 = Bigarray.Array1.unsafe_get state 0 in
        let s1 = Bigarray.Array1.unsafe_get state 1 in
        let s2 = Bigarray.Array1.unsafe_get state 2 in
        let s3 = Bigarray.Array1.unsafe_get state 3 in
        let r5 = Int64.mul s1 5L in
        let result =
          Int64.mul
            (Int64.logor (Int64.shift_left r5 7)
               (Int64.shift_right_logical r5 57))
            9L
        in
        let tmp = Int64.shift_left s1 17 in
        let s2x = Int64.logxor s2 s0 in
        let s3x = Int64.logxor s3 s1 in
        Bigarray.Array1.unsafe_set state 0 (Int64.logxor s0 s3x);
        Bigarray.Array1.unsafe_set state 1 (Int64.logxor s1 s2x);
        Bigarray.Array1.unsafe_set state 2 (Int64.logxor s2x tmp);
        Bigarray.Array1.unsafe_set state 3
          (Int64.logor (Int64.shift_left s3x 45)
             (Int64.shift_right_logical s3x 19));
        let k = Int64.to_int (Int64.shift_right_logical result 11) in
        if k < t then failed := true else incr i
      end
    done;
    if not !failed then incr successes
  done;
  for i = 0 to 3 do
    words.(i) <- Bigarray.Array1.unsafe_get state i
  done;
  Rng.load rng words;
  (!successes, !draws)

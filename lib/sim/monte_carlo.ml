open Vqc_circuit
module Rng = Vqc_rng.Rng
module Pool = Vqc_engine.Pool
module Metrics = Vqc_obs.Metrics
module Trace = Vqc_obs.Trace
module Span = Vqc_obs.Span
module Json = Vqc_obs.Json

(* Telemetry is aggregated per chunk (one counter add each), never per
   trial, so the hot Bernoulli loop stays hot.  Every recorded value is
   a deterministic function of the inputs — only the chunk timings are
   not, and those live in the histogram / under the trace "nd" key. *)
let runs_total = Metrics.counter "sim.mc.runs"
let trials_total = Metrics.counter "sim.mc.trials"
let chunks_total = Metrics.counter "sim.mc.chunks"
let draws_total = Metrics.counter "sim.mc.draws"
let early_exits_total = Metrics.counter "sim.mc.early_exits"
let chunk_seconds = Metrics.histogram "sim.mc.chunk_seconds"

type result = {
  trials : int;
  successes : int;
  pst : float;
  ci95 : float;
}

(* Trials per unit of parallel work.  Fixed (never derived from the
   worker count) so the chunk boundaries — and therefore each chunk's
   split-off RNG stream — are identical whatever [jobs] is.  Shared with
   the adaptive estimator, whose rounds are multiples of it: an adaptive
   run walks the same chunk layout the fixed path would. *)
let chunk_trials = Estimator.chunk_trials

let failure_probabilities ?(coherence = true)
    ?(coherence_scale = Reliability.default_coherence_scale)
    ?(crosstalk_strength = 0.0) device circuit =
  let schedule = lazy (Schedule.build device circuit) in
  (* Per-operation failure probabilities, fixed across trials.  The order
     of the events is irrelevant (a trial fails if ANY event fires), so
     under crosstalk the two-qubit failures come from the schedule-order
     inflation list and the rest from the circuit. *)
  let one_qubit_and_measure_failures =
    Circuit.gates circuit
    |> List.filter_map (fun gate ->
           match gate with
           | Gate.Barrier _ | Gate.Cnot _ | Gate.Swap _ -> None
           | Gate.One_qubit _ | Gate.Measure _ ->
             Some (1.0 -. Reliability.gate_success device gate))
  in
  let two_qubit_failures =
    if crosstalk_strength <= 0.0 then
      Circuit.gates circuit
      |> List.filter_map (fun gate ->
             match gate with
             | Gate.Cnot _ | Gate.Swap _ ->
               Some (1.0 -. Reliability.gate_success device gate)
             | Gate.One_qubit _ | Gate.Measure _ | Gate.Barrier _ -> None)
    else
      Crosstalk.inflation_factors ~strength:crosstalk_strength device
        (Lazy.force schedule)
      |> List.map (fun (gate, factor) ->
             let e = 1.0 -. Reliability.gate_success device gate in
             Float.min 0.5 (e *. factor))
  in
  let gate_failures = one_qubit_and_measure_failures @ two_qubit_failures in
  let coherence_failures =
    if not coherence then []
    else
      List.map
        (fun q ->
          1.0
          -. Reliability.coherence_survival ~scale:coherence_scale device
               (Lazy.force schedule) q)
        (Circuit.used_qubits circuit)
  in
  Array.of_list (gate_failures @ coherence_failures)

(* The list-based reference trial loop, kept verbatim as the oracle the
   flat kernel is differentially tested against (test/test_kernels.ml).
   Returns (successes, draws) for one chunk. *)
let run_chunk_reference failure_probabilities rng count =
  let events = Array.length failure_probabilities in
  let successes = ref 0 in
  let draws = ref 0 in
  for _ = 1 to count do
    let rec error_free i =
      i >= events
      || (incr draws;
          (not (Rng.bernoulli rng failure_probabilities.(i)))
          && error_free (i + 1))
    in
    if error_free 0 then incr successes
  done;
  (!successes, !draws)

type engine = Flat | Reference

(* One chunk of Bernoulli trials against a fixed failure table — the
   unit of work both the fixed and the adaptive path fan out.  [k] is
   the chunk's global index (trace labelling only).  The engines return
   identical counts and leave the chunk RNG in identical states (see
   {!Mc_kernel}); [Flat] is simply faster. *)
let chunk_kernel ~engine failure_probabilities =
  let kernel =
    match engine with
    | Flat ->
      let table = Mc_kernel.of_probabilities failure_probabilities in
      Mc_kernel.run_chunk table
    | Reference -> run_chunk_reference failure_probabilities
  in
  fun k rng count ->
    let chunk_started = Unix.gettimeofday () in
    let successes, draws = kernel rng count in
    let seconds = Unix.gettimeofday () -. chunk_started in
    Metrics.add draws_total draws;
    Metrics.add early_exits_total (count - successes);
    Metrics.observe chunk_seconds seconds;
    if Trace.enabled () then
      Trace.emit ~source:"sim" ~event:"mc_chunk"
        ~nd:[ ("seconds", Json.Float seconds) ]
        [
          ("chunk", Json.Int k);
          ("trials", Json.Int count);
          ("successes", Json.Int successes);
          ("draws", Json.Int draws);
        ];
    successes

let run ?coherence ?coherence_scale ?crosstalk_strength ?(engine = Flat)
    ?(jobs = 1) ~trials rng device circuit =
  if trials <= 0 then invalid_arg "Monte_carlo.run: need positive trials";
  if jobs < 1 then invalid_arg "Monte_carlo.run: need at least one job";
  Span.with_span ~source:"sim" "sim.mc.run"
    ~fields:[ ("trials", Json.Int trials) ]
  @@ fun () ->
  let failure_probabilities =
    failure_probabilities ?coherence ?coherence_scale ?crosstalk_strength
      device circuit
  in
  let run_chunk = chunk_kernel ~engine failure_probabilities in
  (* Chunked fan-out with per-chunk RNG streams: chunk k draws from the
     k-th [Rng.split] child of the caller's generator, derived here in
     index order on the calling domain.  Results are summed in chunk
     order by [Pool.map_reduce], so [jobs = 1] and [jobs = N] agree
     bit-for-bit. *)
  let nchunks = Estimator.chunks_for trials in
  let chunks =
    let rec build k acc =
      if k >= nchunks then List.rev acc
      else
        let count = min chunk_trials (trials - (k * chunk_trials)) in
        build (k + 1) ((count, Rng.split rng) :: acc)
    in
    build 0 []
  in
  Metrics.incr runs_total;
  Metrics.add trials_total trials;
  Metrics.add chunks_total nchunks;
  (* A worker with no chunk to run would sit idle for the whole fan-out:
     clamp the pool to the chunk count (pure resource economics — the
     chunk layout, RNG streams and result are unchanged).  The clamp
     rule lives in {!Estimator} so both paths share it. *)
  let jobs = Estimator.effective_jobs ~jobs trials in
  let successes =
    if jobs = 1 then
      List.fold_left
        (fun (k, acc) (count, rng) -> (k + 1, acc + run_chunk k rng count))
        (0, 0) chunks
      |> snd
    else
      Pool.with_pool ~jobs (fun pool ->
          Pool.map_reduce pool
            ~f:(fun k (count, rng) -> run_chunk k rng count)
            ~combine:( + ) ~init:0 chunks)
  in
  let pst = float_of_int successes /. float_of_int trials in
  let ci95 =
    1.96 *. sqrt (Float.max 0.0 (pst *. (1.0 -. pst)) /. float_of_int trials)
  in
  { trials; successes; pst; ci95 }

let run_adaptive ?coherence ?coherence_scale ?crosstalk_strength
    ?(engine = Flat) ?jobs ?pool ?config rng device circuit =
  let failure_probabilities =
    failure_probabilities ?coherence ?coherence_scale ?crosstalk_strength
      device circuit
  in
  Metrics.incr runs_total;
  let estimate =
    Estimator.run ?config ?jobs ?pool rng
      (chunk_kernel ~engine failure_probabilities)
  in
  Metrics.add trials_total estimate.Estimator.trials;
  Metrics.add chunks_total (Estimator.chunks_for estimate.Estimator.trials);
  estimate

let pp_result ppf r =
  Format.fprintf ppf "PST = %.4f +/- %.4f  (%d/%d trials)" r.pst r.ci95
    r.successes r.trials

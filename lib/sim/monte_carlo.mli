(** Monte-Carlo fault-injection simulator (paper Section 4.3, Figure 10).

    A trial executes the physical circuit and injects an error into each
    operation with that operation's calibrated probability (and into each
    active qubit with its coherence-decay probability over idle time); a
    trial with any injected error is a failed trial.  PST is the fraction
    of error-free trials.  The paper runs 1M trials per workload; the
    engine precomputes per-operation failure probabilities so trials are
    a vector of Bernoulli draws with early exit.

    Trials are partitioned into fixed-size chunks, each drawing from its
    own {!Vqc_rng.Rng.split} child stream derived in chunk-index order,
    and fanned across a {!Vqc_engine.Pool} — so the estimate is
    bit-identical for any [jobs] count. *)

open Vqc_circuit

type result = {
  trials : int;
  successes : int;
  pst : float;
  ci95 : float;  (** half-width of the 95% normal-approximation interval *)
}

val failure_probabilities :
  ?coherence:bool ->
  ?coherence_scale:float ->
  ?crosstalk_strength:float ->
  Vqc_device.Device.t ->
  Circuit.t ->
  float array
(** The per-operation failure table a trial Bernoulli-samples: one entry
    per gate/measurement (crosstalk-inflated when [crosstalk_strength] >
    0) plus, when [coherence] (default true), one coherence-decay entry
    per used qubit.  A trial succeeds iff no entry fires.
    @raise Invalid_argument if the circuit uses an uncoupled qubit
    pair. *)

type engine =
  | Flat  (** the {!Mc_kernel} flat-buffer chunk kernel (default) *)
  | Reference
      (** the original list-based trial loop, kept as the differential
          oracle — bit-identical to [Flat], only slower *)

val run :
  ?coherence:bool ->
  ?coherence_scale:float ->
  ?crosstalk_strength:float ->
  ?engine:engine ->
  ?jobs:int ->
  trials:int ->
  Vqc_rng.Rng.t ->
  Vqc_device.Device.t ->
  Circuit.t ->
  result
(** [crosstalk_strength] (default 0, the paper's independent-error model)
    inflates simultaneous adjacent two-qubit gates per {!Crosstalk}.
    [jobs] (default 1) fans the trial chunks across that many domains;
    the result is the same for every [jobs] value.  [jobs] beyond the
    number of {!Estimator.chunk_trials}-sized chunks ([ceil(trials /
    4096)]) buys nothing — the extra workers would idle — so the fan-out
    is clamped to the chunk count ({!Estimator.effective_jobs};
    [trials = 1, jobs = 8] runs exactly like [jobs = 1], same result
    included).  [engine] (default [Flat]) selects the chunk kernel; both
    engines produce identical results, draw streams included.
    @raise Invalid_argument if [trials <= 0], [jobs < 1], or the circuit
    uses an uncoupled qubit pair. *)

val run_adaptive :
  ?coherence:bool ->
  ?coherence_scale:float ->
  ?crosstalk_strength:float ->
  ?engine:engine ->
  ?jobs:int ->
  ?pool:Vqc_engine.Pool.t ->
  ?config:Estimator.config ->
  Vqc_rng.Rng.t ->
  Vqc_device.Device.t ->
  Circuit.t ->
  Estimator.estimate
(** Adaptive counterpart of {!run}: streams the same trial chunks (same
    failure table, same chunk layout, same per-chunk RNG streams)
    through {!Estimator.run}, stopping once the configured precision is
    met or the [max_trials] budget is exhausted.  With
    [config.precision = 0] the run never stops early, so its successes
    over [config.max_trials] trials equal those of
    [run ~trials:config.max_trials] bit for bit.  Passing [pool] reuses
    an existing pool ([jobs] is then ignored).
    @raise Invalid_argument on an invalid [config], [jobs < 1], or an
    uncoupled qubit pair. *)

val pp_result : Format.formatter -> result -> unit

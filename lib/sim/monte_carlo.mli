(** Monte-Carlo fault-injection simulator (paper Section 4.3, Figure 10).

    A trial executes the physical circuit and injects an error into each
    operation with that operation's calibrated probability (and into each
    active qubit with its coherence-decay probability over idle time); a
    trial with any injected error is a failed trial.  PST is the fraction
    of error-free trials.  The paper runs 1M trials per workload; the
    engine precomputes per-operation failure probabilities so trials are
    a vector of Bernoulli draws with early exit.

    Trials are partitioned into fixed-size chunks, each drawing from its
    own {!Vqc_rng.Rng.split} child stream derived in chunk-index order,
    and fanned across a {!Vqc_engine.Pool} — so the estimate is
    bit-identical for any [jobs] count. *)

open Vqc_circuit

type result = {
  trials : int;
  successes : int;
  pst : float;
  ci95 : float;  (** half-width of the 95% normal-approximation interval *)
}

val run :
  ?coherence:bool ->
  ?coherence_scale:float ->
  ?crosstalk_strength:float ->
  ?jobs:int ->
  trials:int ->
  Vqc_rng.Rng.t ->
  Vqc_device.Device.t ->
  Circuit.t ->
  result
(** [crosstalk_strength] (default 0, the paper's independent-error model)
    inflates simultaneous adjacent two-qubit gates per {!Crosstalk}.
    [jobs] (default 1) fans the trial chunks across that many domains;
    the result is the same for every [jobs] value.
    @raise Invalid_argument if [trials <= 0], [jobs < 1], or the circuit
    uses an uncoupled qubit pair. *)

val pp_result : Format.formatter -> result -> unit

(** Flat Monte-Carlo chunk kernel.

    Runs {!Monte_carlo}'s per-chunk trial loop over flat buffers: the
    failure-probability table is precompiled to one integer threshold
    per event, the xoshiro256** state lives in an int64 [Bigarray]
    (reads/writes are unboxed), and each Bernoulli draw is a native int
    compare — no float boxing, no Int64 record stores, branch-light.

    The kernel is {e bit-identical} to the straightforward loop over
    [Rng.bernoulli]: same draw stream (events with probability [<= 0]
    or [>= 1] consume no draw, a trial stops drawing at its first
    failure), same success and draw counts, and the caller's generator
    ends in the same state.  The threshold encoding is exact — see the
    proof sketch in the implementation — so this is an optimization,
    never an approximation.  [test/test_kernels.ml] holds the
    differential oracle. *)

type table

val of_probabilities : float array -> table
(** Compile a per-event failure-probability table (the output of
    {!Monte_carlo.failure_probabilities}) into integer thresholds. *)

val events : table -> int
(** Number of events per trial. *)

val run_chunk : table -> Vqc_rng.Rng.t -> int -> int * int
(** [run_chunk table rng count] runs [count] trials, advancing [rng]
    exactly as the reference loop would, and returns
    [(successes, draws)] where [draws] counts visited events (the
    telemetry the reference loop reports). *)

(** Adaptive confidence-bounded Monte-Carlo estimation.

    The paper estimates every success probability by brute force — one
    million trials per workload — even when the estimate has converged
    after a fraction of them.  This estimator streams trial batches and
    stops as soon as a target confidence-interval half-width is reached,
    so cheap questions (a PST near 0 or 1, a loose precision target) cost
    thousands of trials instead of a million, while the reported interval
    makes the residual uncertainty explicit.

    Two interval constructions are maintained side by side and the
    tighter one gates the stopping rule:

    - the {e Wilson score} interval — the normal-approximation interval
      recentred so it behaves at the extremes ([p] near 0 or 1, where
      the naive Wald interval collapses to zero width);
    - the {e empirical Bernstein} bound (Maurer–Pontil) — a
      distribution-free concentration bound driven by the observed
      sample variance, valid non-asymptotically.

    {b Determinism contract.}  Trials are consumed in fixed-size chunks
    of {!chunk_trials}; chunk [k] always covers trials
    [k * chunk_trials .. (k+1) * chunk_trials - 1] and draws from the
    [k]-th {!Vqc_rng.Rng.split} child of the caller's generator, derived
    in index order on the calling domain.  The stopping rule is
    evaluated only at round boundaries (every [batch_trials] trials, a
    multiple of the chunk size), and per-chunk results are combined in
    chunk order — so the estimate is {e bit-identical} for any [jobs]
    count, for re-runs with the same seed, and (with [precision = 0])
    to the fixed-trials path over the same chunk layout. *)

type config = {
  confidence : float;  (** two-sided coverage, in (0, 1); default 0.95 *)
  precision : float;
      (** target CI half-width; [0] disables early stopping (the full
          [max_trials] budget always runs) *)
  max_trials : int;  (** trial budget — the fixed-mode cost ceiling *)
  batch_trials : int;
      (** trials added per adaptive round, a positive multiple of
          {!chunk_trials}; the stopping rule is evaluated only at these
          boundaries *)
}

val default_config : config
(** confidence 0.95, precision 1e-3, max_trials 1_000_000,
    batch_trials 65_536 (16 chunks). *)

val chunk_trials : int
(** Trials per unit of parallel work (4096) — fixed, never derived from
    the worker count, so chunk boundaries and their RNG streams are
    identical whatever [jobs] is.  {!Monte_carlo} shares this constant. *)

val chunks_for : int -> int
(** [ceil(trials / chunk_trials)]: how many chunks a trial count spans.
    @raise Invalid_argument if [trials <= 0]. *)

val effective_jobs : jobs:int -> int -> int
(** [effective_jobs ~jobs trials] clamps a requested worker count to
    {!chunks_for}[ trials] — workers beyond the chunk count would idle
    for the whole fan-out.  The single clamp rule shared by
    {!Monte_carlo.run} and {!run} (results never depend on it; it is
    pure resource economics).
    @raise Invalid_argument if [jobs < 1] or [trials <= 0]. *)

val validate_config : config -> (config, string) result
(** [Ok config] for a usable configuration, [Error message] (fit for a
    CLI) otherwise: confidence must lie strictly inside (0, 1),
    precision must be finite and non-negative, max_trials positive, and
    batch_trials a positive multiple of {!chunk_trials}. *)

(** A two-sided confidence interval, clamped to [0, 1]. *)
type interval = {
  lower : float;
  upper : float;
}

val interval_half_width : interval -> float

type stop_reason =
  | Precision_met  (** a bound's half-width reached [precision] *)
  | Budget_exhausted  (** [max_trials] ran without convergence *)

val stop_reason_to_string : stop_reason -> string
(** ["precision"] / ["budget"] — the wire encoding [vqc-serve] uses. *)

type estimate = {
  trials : int;  (** trials actually consumed *)
  successes : int;
  mean : float;  (** successes / trials *)
  wilson : interval;
  bernstein : interval;
  stop : stop_reason;
  rounds : int;  (** stopping-rule evaluations that consumed trials *)
  budget : int;  (** the [max_trials] the run was configured with *)
}

val half_width : estimate -> float
(** Half-width of the tighter of the two intervals — the quantity the
    stopping rule compares against [precision]. *)

val trials_saved : estimate -> int
(** [budget - trials]: what adaptivity saved over the fixed path. *)

(** {1 The bounds themselves} *)

val z_score : confidence:float -> float
(** Two-sided normal critical value: [z_score ~confidence:0.95] is
    ~1.95996.  @raise Invalid_argument outside (0, 1). *)

val wilson_interval :
  confidence:float -> trials:int -> successes:int -> interval
(** Wilson score interval for [successes] out of [trials] Bernoulli
    draws.  @raise Invalid_argument if [trials < 1] or [successes]
    outside [0, trials]. *)

val bernstein_interval :
  confidence:float -> trials:int -> successes:int -> interval
(** Empirical-Bernstein (Maurer–Pontil) interval.  With one trial the
    sample variance is undefined and the interval is the vacuous
    [0, 1].  @raise Invalid_argument if [trials < 1] or [successes]
    outside [0, trials]. *)

(** {1 Running} *)

val run :
  ?config:config ->
  ?jobs:int ->
  ?pool:Vqc_engine.Pool.t ->
  Vqc_rng.Rng.t ->
  (int -> Vqc_rng.Rng.t -> int -> int) ->
  estimate
(** [run rng kernel] estimates the success probability of the Bernoulli
    process behind [kernel].  [kernel chunk_index chunk_rng count] must
    return the number of successes among [count] fresh trials drawn from
    [chunk_rng] — a pure function of its arguments (it runs on worker
    domains; see {!Monte_carlo.run_adaptive} for the canonical kernel).

    [jobs] (default 1) fans each round's chunks across that many
    domains; passing [pool] reuses an existing pool instead (and [jobs]
    is ignored).  Results are bit-identical in all cases.

    Telemetry lands under [sim.estimator.*]: runs, rounds, trials,
    trials_saved, and stop_precision / stop_budget counters.

    @raise Invalid_argument on an invalid [config] ({!validate_config})
    or [jobs < 1]. *)

module Rng = Vqc_rng.Rng
module Pool = Vqc_engine.Pool
module Metrics = Vqc_obs.Metrics
module Trace = Vqc_obs.Trace
module Span = Vqc_obs.Span
module Json = Vqc_obs.Json

(* Telemetry is per run and per round, never per trial: the counters
   record what adaptivity bought (trials consumed vs the budget), and
   every recorded value is a deterministic function of the inputs. *)
let runs_total = Metrics.counter "sim.estimator.runs"
let rounds_total = Metrics.counter "sim.estimator.rounds"
let trials_total = Metrics.counter "sim.estimator.trials"
let trials_saved_total = Metrics.counter "sim.estimator.trials_saved"
let stop_precision_total = Metrics.counter "sim.estimator.stop_precision"
let stop_budget_total = Metrics.counter "sim.estimator.stop_budget"

(* Must match the fixed path's chunking ([Monte_carlo] imports it): with
   identical chunk boundaries and per-chunk RNG streams, an adaptive run
   that never stops early reproduces the fixed run bit for bit. *)
let chunk_trials = 4096

let chunks_for trials =
  if trials <= 0 then invalid_arg "Estimator.chunks_for: need positive trials";
  ((trials - 1) / chunk_trials) + 1

(* The one jobs-clamp rule, shared with [Monte_carlo.run]: a worker
   beyond the chunk count would idle for the whole fan-out.  Pure
   resource economics — chunk layout, RNG streams and results are
   independent of the worker count. *)
let effective_jobs ~jobs trials =
  if jobs < 1 then
    invalid_arg "Estimator.effective_jobs: need at least one job";
  min jobs (chunks_for trials)

type config = {
  confidence : float;
  precision : float;
  max_trials : int;
  batch_trials : int;
}

let default_config =
  {
    confidence = 0.95;
    precision = 1e-3;
    max_trials = 1_000_000;
    batch_trials = 16 * chunk_trials;
  }

let validate_config config =
  if
    not
      (Float.is_finite config.confidence
      && config.confidence > 0.0
      && config.confidence < 1.0)
  then
    Error
      (Printf.sprintf "confidence must lie strictly inside (0, 1) (got %g)"
         config.confidence)
  else if not (Float.is_finite config.precision && config.precision >= 0.0)
  then
    Error
      (Printf.sprintf
         "precision must be a finite non-negative half-width (got %g)"
         config.precision)
  else if config.max_trials < 1 then
    Error
      (Printf.sprintf "max-trials must be a positive integer (got %d)"
         config.max_trials)
  else if
    config.batch_trials < chunk_trials
    || config.batch_trials mod chunk_trials <> 0
  then
    Error
      (Printf.sprintf
         "batch-trials must be a positive multiple of the %d-trial chunk \
          (got %d)"
         chunk_trials config.batch_trials)
  else Ok config

type interval = {
  lower : float;
  upper : float;
}

let interval_half_width i = (i.upper -. i.lower) /. 2.0

type stop_reason =
  | Precision_met
  | Budget_exhausted

let stop_reason_to_string = function
  | Precision_met -> "precision"
  | Budget_exhausted -> "budget"

type estimate = {
  trials : int;
  successes : int;
  mean : float;
  wilson : interval;
  bernstein : interval;
  stop : stop_reason;
  rounds : int;
  budget : int;
}

let half_width e =
  Float.min (interval_half_width e.wilson) (interval_half_width e.bernstein)

let trials_saved e = e.budget - e.trials

(* ---- the bounds ----------------------------------------------------- *)

(* Acklam's rational approximation to the inverse normal CDF (relative
   error < 1.15e-9 over (0, 1)) — pure float arithmetic, so the critical
   value is a deterministic function of the confidence level. *)
let inverse_normal_cdf p =
  let a1 = -3.969683028665376e+01 and a2 = 2.209460984245205e+02 in
  let a3 = -2.759285104469687e+02 and a4 = 1.383577518672690e+02 in
  let a5 = -3.066479806614716e+01 and a6 = 2.506628277459239e+00 in
  let b1 = -5.447609879822406e+01 and b2 = 1.615858368580409e+02 in
  let b3 = -1.556989798598866e+02 and b4 = 6.680131188771972e+01 in
  let b5 = -1.328068155288572e+01 in
  let c1 = -7.784894002430293e-03 and c2 = -3.223964580411365e-01 in
  let c3 = -2.400758277161838e+00 and c4 = -2.549732539343734e+00 in
  let c5 = 4.374664141464968e+00 and c6 = 2.938163982698783e+00 in
  let d1 = 7.784695709041462e-03 and d2 = 3.224671290700398e-01 in
  let d3 = 2.445134137142996e+00 and d4 = 3.754408661907416e+00 in
  let p_low = 0.02425 in
  let tail q =
    (((((c1 *. q) +. c2) *. q +. c3) *. q +. c4) *. q +. c5) *. q +. c6
  in
  let tail_denominator q =
    ((((d1 *. q) +. d2) *. q +. d3) *. q +. d4) *. q +. 1.0
  in
  if p < p_low then
    let q = sqrt (-2.0 *. log p) in
    tail q /. tail_denominator q
  else if p <= 1.0 -. p_low then
    let q = p -. 0.5 in
    let r = q *. q in
    (((((a1 *. r) +. a2) *. r +. a3) *. r +. a4) *. r +. a5) *. r +. a6
    |> fun numerator ->
    numerator *. q
    /. ((((((b1 *. r) +. b2) *. r +. b3) *. r +. b4) *. r +. b5) *. r +. 1.0)
  else
    let q = sqrt (-2.0 *. log (1.0 -. p)) in
    -.(tail q /. tail_denominator q)

let z_score ~confidence =
  if not (confidence > 0.0 && confidence < 1.0) then
    invalid_arg "Estimator.z_score: confidence must lie inside (0, 1)";
  inverse_normal_cdf (1.0 -. ((1.0 -. confidence) /. 2.0))

let check_counts ~who ~trials ~successes =
  if trials < 1 then
    invalid_arg (Printf.sprintf "Estimator.%s: need at least one trial" who);
  if successes < 0 || successes > trials then
    invalid_arg
      (Printf.sprintf "Estimator.%s: successes outside [0, trials]" who)

let clamp01 x = Float.max 0.0 (Float.min 1.0 x)

let wilson_interval ~confidence ~trials ~successes =
  check_counts ~who:"wilson_interval" ~trials ~successes;
  let z = z_score ~confidence in
  let n = float_of_int trials in
  let p = float_of_int successes /. n in
  let z2 = z *. z in
  let denominator = 1.0 +. (z2 /. n) in
  let center = (p +. (z2 /. (2.0 *. n))) /. denominator in
  let spread =
    z
    *. sqrt ((p *. (1.0 -. p) /. n) +. (z2 /. (4.0 *. n *. n)))
    /. denominator
  in
  { lower = clamp01 (center -. spread); upper = clamp01 (center +. spread) }

(* Maurer & Pontil's empirical Bernstein bound for [0, 1]-valued samples:
   each tail deviates by more than
     sqrt(2 V ln(2/d) / n) + 7 ln(2/d) / (3 (n - 1))
   with probability at most d, where V is the unbiased sample variance.
   A two-sided interval at confidence c spends (1 - c)/2 per tail. *)
let bernstein_interval ~confidence ~trials ~successes =
  check_counts ~who:"bernstein_interval" ~trials ~successes;
  if not (confidence > 0.0 && confidence < 1.0) then
    invalid_arg "Estimator.bernstein_interval: confidence outside (0, 1)";
  if trials < 2 then { lower = 0.0; upper = 1.0 }
  else begin
    let n = float_of_int trials in
    let p = float_of_int successes /. n in
    let variance = p *. (1.0 -. p) *. n /. (n -. 1.0) in
    let log_term = log (4.0 /. (1.0 -. confidence)) in
    let spread =
      sqrt (2.0 *. variance *. log_term /. n)
      +. (7.0 *. log_term /. (3.0 *. (n -. 1.0)))
    in
    { lower = clamp01 (p -. spread); upper = clamp01 (p +. spread) }
  end

(* ---- the sequential run --------------------------------------------- *)

let run ?(config = default_config) ?(jobs = 1) ?pool rng kernel =
  (match validate_config config with
  | Ok _ -> ()
  | Error message -> invalid_arg ("Estimator.run: " ^ message));
  if jobs < 1 then invalid_arg "Estimator.run: need at least one job";
  Span.with_span ~source:"sim" "sim.estimator.run"
    ~fields:
      [
        ("max_trials", Json.Int config.max_trials);
        ("precision", Json.Float config.precision);
      ]
  @@ fun () ->
  Metrics.incr runs_total;
  (* Chunk indices are global across rounds: round r consumes the next
     batch of the same trial stream the fixed path would, and each
     chunk's RNG is split off here, in index order, on the calling
     domain — workers never touch the parent generator. *)
  let build_chunks ~first_chunk count =
    let nchunks = ((count - 1) / chunk_trials) + 1 in
    let rec build k acc =
      if k >= nchunks then List.rev acc
      else
        let trials = min chunk_trials (count - (k * chunk_trials)) in
        build (k + 1) ((first_chunk + k, trials, Rng.split rng) :: acc)
    in
    build 0 []
  in
  let run_round run_chunks ~trials ~successes ~rounds =
    let count = min config.batch_trials (config.max_trials - trials) in
    let chunks = build_chunks ~first_chunk:(trials / chunk_trials) count in
    let batch_successes = run_chunks chunks in
    (trials + count, successes + batch_successes, rounds + 1)
  in
  let finish ~trials ~successes ~rounds stop =
    Metrics.add rounds_total rounds;
    Metrics.add trials_total trials;
    Metrics.add trials_saved_total (config.max_trials - trials);
    Metrics.incr
      (match stop with
      | Precision_met -> stop_precision_total
      | Budget_exhausted -> stop_budget_total);
    {
      trials;
      successes;
      mean = float_of_int successes /. float_of_int trials;
      wilson =
        wilson_interval ~confidence:config.confidence ~trials ~successes;
      bernstein =
        bernstein_interval ~confidence:config.confidence ~trials ~successes;
      stop;
      rounds;
      budget = config.max_trials;
    }
  in
  let rec loop run_chunks ~trials ~successes ~rounds =
    let stop =
      if trials = 0 then None
      else begin
        let wilson =
          wilson_interval ~confidence:config.confidence ~trials ~successes
        in
        let bernstein =
          bernstein_interval ~confidence:config.confidence ~trials ~successes
        in
        let width =
          Float.min
            (interval_half_width wilson)
            (interval_half_width bernstein)
        in
        if Trace.enabled () then
          Trace.emit ~source:"sim" ~event:"estimator_round"
            [
              ("round", Json.Int rounds);
              ("trials", Json.Int trials);
              ("successes", Json.Int successes);
              ("half_width", Json.Float width);
            ];
        if config.precision > 0.0 && width <= config.precision then
          Some Precision_met
        else if trials >= config.max_trials then Some Budget_exhausted
        else None
      end
    in
    match stop with
    | Some reason -> finish ~trials ~successes ~rounds reason
    | None ->
      let trials, successes, rounds =
        run_round run_chunks ~trials ~successes ~rounds
      in
      loop run_chunks ~trials ~successes ~rounds
  in
  let start run_chunks = loop run_chunks ~trials:0 ~successes:0 ~rounds:0 in
  let pooled pool chunks =
    Pool.map_reduce pool
      ~f:(fun _ (k, count, rng) -> kernel k rng count)
      ~combine:( + ) ~init:0 chunks
  in
  match pool with
  | Some pool -> start (pooled pool)
  | None -> (
    (* no round ever fans out more chunks than a full batch (or the
       whole budget, if smaller) contains *)
    match
      effective_jobs ~jobs (min config.batch_trials config.max_trials)
    with
    | 1 ->
      start
        (List.fold_left
           (fun acc (k, count, rng) -> acc + kernel k rng count)
           0)
    | jobs -> Pool.with_pool ~jobs (fun pool -> start (pooled pool)))

type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
}

(* SplitMix64: used to expand a seed into the xoshiro state and to derive
   child generators. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let make seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let dump t = [| t.s0; t.s1; t.s2; t.s3 |]

let load t state =
  if Array.length state <> 4 then
    invalid_arg "Rng.load: state must be 4 words";
  t.s0 <- state.(0);
  t.s1 <- state.(1);
  t.s2 <- state.(2);
  t.s3 <- state.(3)

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let uint64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let state = ref (uint64 t) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

(* 53 random mantissa bits -> [0, 1) *)
let float t =
  let bits = Int64.shift_right_logical (uint64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let uniform t lo hi =
  if hi < lo then invalid_arg "Rng.uniform: empty interval";
  lo +. ((hi -. lo) *. float t)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: non-positive bound";
  (* rejection sampling to avoid modulo bias *)
  let bound = Int64.of_int n in
  let rec draw () =
    let raw = Int64.shift_right_logical (uint64 t) 1 in
    let value = Int64.rem raw bound in
    if Int64.sub raw value > Int64.sub Int64.max_int (Int64.sub bound 1L) then
      draw ()
    else Int64.to_int value
  in
  draw ()

let bool t = Int64.logand (uint64 t) 1L = 1L

let bernoulli t p =
  if p <= 0.0 then false else if p >= 1.0 then true else float t < p

let gaussian t ~mean ~std =
  let rec nonzero () =
    let u = float t in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float t in
  let radius = sqrt (-2.0 *. log u1) in
  mean +. (std *. radius *. cos (2.0 *. Float.pi *. u2))

let lognormal t ~mean ~std =
  if mean <= 0.0 || std <= 0.0 then
    invalid_arg "Rng.lognormal: mean and std must be positive";
  let sigma2 = log (1.0 +. (std *. std /. (mean *. mean))) in
  let mu = log mean -. (sigma2 /. 2.0) in
  exp (gaussian t ~mean:mu ~std:(sqrt sigma2))

let truncated_gaussian t ~mean ~std ~lo ~hi =
  if hi < lo then invalid_arg "Rng.truncated_gaussian: empty interval";
  let rec attempt k =
    let x = gaussian t ~mean ~std in
    if x >= lo && x <= hi then x
    else if k >= 64 then Float.min hi (Float.max lo x)
    else attempt (k + 1)
  in
  attempt 0

let exponential t ~rate =
  if rate <= 0.0 then invalid_arg "Rng.exponential: non-positive rate";
  let rec nonzero () =
    let u = float t in
    if u > 0.0 then u else nonzero ()
  in
  -.log (nonzero ()) /. rate

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))

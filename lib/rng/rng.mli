(** Deterministic pseudo-random numbers (the xoshiro256** generator).

    Every stochastic component of the reproduction — the synthetic
    calibration model, the random benchmarks and the Monte-Carlo fault
    injector — draws from an explicitly seeded generator so that each
    experiment is bit-for-bit repeatable.  [split] derives an independent
    child stream (via SplitMix64 reseeding), which lets one experiment
    seed give every benchmark, day and trial batch its own stream without
    correlation. *)

type t

val make : int -> t
(** Seed a generator.  Different seeds give decorrelated streams. *)

val copy : t -> t

val split : t -> t
(** Derive an independent child generator; the parent advances. *)

val uint64 : t -> int64
(** Next raw 64-bit output. *)

val dump : t -> int64 array
(** Snapshot of the four xoshiro256** state words (a fresh array; the
    generator is not advanced).  With {!load} this lets a specialized
    kernel draw from a private copy of the state and then advance the
    generator in place, exactly as if it had drawn via {!uint64}. *)

val load : t -> int64 array -> unit
(** Overwrite the state with {!dump}-shaped words.
    @raise Invalid_argument unless given exactly 4 words. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform in [\[lo, hi)].
    @raise Invalid_argument if [hi < lo]. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)].
    @raise Invalid_argument if [n <= 0]. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is true with probability [p] (clamped to [0, 1]). *)

val gaussian : t -> mean:float -> std:float -> float
(** Normal deviate (Box–Muller). *)

val lognormal : t -> mean:float -> std:float -> float
(** Log-normal deviate parameterized by the {e arithmetic} mean and
    standard deviation of the distribution itself (not of the underlying
    normal).  Both must be positive. *)

val truncated_gaussian : t -> mean:float -> std:float -> lo:float -> hi:float -> float
(** Normal deviate re-sampled (up to a bound) to land in [\[lo, hi\]];
    falls back to clamping. *)

val exponential : t -> rate:float -> float
(** Exponential deviate with the given rate.
    @raise Invalid_argument if [rate <= 0]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array.
    @raise Invalid_argument on an empty array. *)

module Rng = Vqc_rng.Rng

type t = {
  coupling : (int * int) list;
  snapshots : Calibration.t array;
}

let generate ?(days = 52) ?(params = Calibration_model.ibm_q20_params)
    ?(persistence = 0.7) ?(daily_sigma = 0.22) ~seed ~coupling n =
  if days < 1 then invalid_arg "History.generate: need at least one day";
  if persistence < 0.0 || persistence >= 1.0 then
    invalid_arg "History.generate: persistence must be in [0, 1)";
  let rng = Rng.make seed in
  (* Persistent base calibration of the healthy chip: who is strong and
     who is weak among the non-defective couplers. *)
  let healthy_params =
    {
      params with
      Calibration_model.error_2q =
        { params.Calibration_model.error_2q with
          Calibration_model.bad_fraction = 0.0 };
    }
  in
  let base = Calibration_model.generate ~params:healthy_params rng ~coupling n in
  (* Marginal couplers are weak only on a fraction of days: a marginal
     link sometimes calibrates acceptably (paper Figure 8's weak link
     drifts day to day).  Averaging over the horizon then yields the
     milder 0.05-0.10 tail of paper Figure 9, while individual days reach
     the 0.15+ of Figure 7.  One link is persistently terrible — the
     standout worst link of Figure 9. *)
  let coupling = List.sort compare coupling in
  let noise = params.Calibration_model.error_2q in
  let link_count = List.length coupling in
  let defective_link =
    Calibration_model.spread_defective rng link_count
      ~fraction:noise.Calibration_model.bad_fraction
  in
  let defect_rate =
    Array.map
      (fun is_defective ->
        if is_defective then Rng.uniform rng 0.2 0.6 else 0.0)
      defective_link
  in
  let worst_slot =
    let slots = ref [] in
    Array.iteri (fun i d -> if d then slots := i :: !slots) defective_link;
    match !slots with
    | [] -> -1
    | slots ->
      let chosen = List.nth slots (Rng.int rng (List.length slots)) in
      defect_rate.(chosen) <- Rng.uniform rng 0.85 1.0;
      chosen
  in
  (* one AR(1) deviation state per link and per qubit figure *)
  let link_dev = Hashtbl.create 64 in
  List.iter (fun (u, v) -> Hashtbl.replace link_dev (u, v) 0.0) coupling;
  let qubit_dev = Array.make (max n 1) 0.0 in
  (* day-level weather: some days are calm, some noisy *)
  let day_factor () = Rng.uniform rng 0.5 1.6 in
  let step dev =
    (persistence *. dev) +. Rng.gaussian rng ~mean:0.0 ~std:daily_sigma
  in
  let snapshots =
    Array.init days (fun _ ->
        let weather = day_factor () in
        let snapshot = Calibration.create n in
        for q = 0 to n - 1 do
          qubit_dev.(q) <- step qubit_dev.(q);
          let b = Calibration.qubit base q in
          let wobble scale = exp (scale *. qubit_dev.(q) *. weather) in
          let t1_us = Float.max 5.0 (b.Calibration.t1_us *. wobble 0.3) in
          let t2_us =
            Float.min (2.0 *. t1_us)
              (Float.max 2.0 (b.Calibration.t2_us *. wobble 0.3))
          in
          let error_1q =
            Float.min 0.045
              (Float.max 0.0005 (b.Calibration.error_1q /. wobble 0.5))
          in
          let error_readout =
            Float.min 0.25
              (Float.max 0.005 (b.Calibration.error_readout /. wobble 0.4))
          in
          Calibration.set_qubit snapshot q
            { t1_us; t2_us; error_1q; error_readout }
        done;
        List.iteri
          (fun index (u, v) ->
            let dev = step (Hashtbl.find link_dev (u, v)) in
            Hashtbl.replace link_dev (u, v) dev;
            let weak_today =
              defect_rate.(index) > 0.0 && Rng.bernoulli rng defect_rate.(index)
            in
            let e =
              if weak_today && index = worst_slot then
                Rng.uniform rng 0.12 noise.Calibration_model.bad_hi
              else if weak_today then
                Rng.uniform rng noise.Calibration_model.bad_lo
                  (0.7 *. noise.Calibration_model.bad_hi)
              else begin
                let base_error = Calibration.link_error_exn base u v in
                Calibration_model.clamp_2q (base_error *. exp (dev *. weather))
              end
            in
            Calibration.set_link_error snapshot u v e)
          coupling;
        snapshot)
  in
  { coupling; snapshots }

let days h = Array.length h.snapshots

let day h i =
  if i < 0 || i >= days h then
    invalid_arg (Printf.sprintf "History.day: %d out of range [0, %d)" i (days h));
  h.snapshots.(i)

let all h = Array.to_list h.snapshots

let average h =
  let count = float_of_int (days h) in
  let n = Calibration.num_qubits h.snapshots.(0) in
  let mean = Calibration.create n in
  for q = 0 to n - 1 do
    let sum field =
      Array.fold_left
        (fun acc snapshot -> acc +. field (Calibration.qubit snapshot q))
        0.0 h.snapshots
    in
    Calibration.set_qubit mean q
      {
        Calibration.t1_us = sum (fun c -> c.Calibration.t1_us) /. count;
        t2_us = sum (fun c -> c.Calibration.t2_us) /. count;
        error_1q = sum (fun c -> c.Calibration.error_1q) /. count;
        error_readout = sum (fun c -> c.Calibration.error_readout) /. count;
      }
  done;
  List.iter
    (fun (u, v) ->
      let total =
        Array.fold_left
          (fun acc snapshot -> acc +. Calibration.link_error_exn snapshot u v)
          0.0 h.snapshots
      in
      Calibration.set_link_error mean u v (total /. count))
    h.coupling;
  mean

let coupling h = h.coupling

let qubit_series h q =
  Array.map (fun snapshot -> Calibration.qubit snapshot q) h.snapshots

let link_series h u v =
  if not (List.mem (min u v, max u v) h.coupling) then raise Not_found;
  Array.map (fun snapshot -> Calibration.link_error_exn snapshot u v) h.snapshots

let daily_dispersion h =
  Array.map
    (fun snapshot ->
      let s = Calibration.link_error_summary snapshot in
      s.Calibration.std /. s.Calibration.mean)
    h.snapshots

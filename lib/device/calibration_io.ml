(* ---- CSV primitives ------------------------------------------------ *)

(* Split one CSV line honouring double-quoted fields. *)
let split_csv_line line =
  let fields = ref [] in
  let buffer = Buffer.create 32 in
  let in_quotes = ref false in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> in_quotes := not !in_quotes
      | ',' when not !in_quotes ->
        fields := Buffer.contents buffer :: !fields;
        Buffer.clear buffer
      | c -> Buffer.add_char buffer c)
    line;
  fields := Buffer.contents buffer :: !fields;
  List.rev_map String.trim !fields

let lines_of text =
  String.split_on_char '\n' text
  |> List.map (fun l -> String.trim l)
  |> List.filter (fun l -> l <> "")

(* case-insensitive substring match *)
let contains haystack needle =
  let h = String.lowercase_ascii haystack and n = String.lowercase_ascii needle in
  let hl = String.length h and nl = String.length n in
  let rec scan i = i + nl <= hl && (String.sub h i nl = n || scan (i + 1)) in
  nl > 0 && scan 0

type columns = {
  qubit : int;
  t1 : int option;
  t2 : int option;
  readout : int option;
  single : int option;
  cnot : int option;
}

let locate_columns header =
  let indexed = List.mapi (fun i name -> (i, name)) header in
  let find predicate =
    List.find_opt (fun (_, name) -> predicate name) indexed |> Option.map fst
  in
  match find (fun name -> contains name "qubit") with
  | None -> Error "no 'Qubit' column in header"
  | Some qubit ->
    Ok
      {
        qubit;
        t1 = find (fun name -> contains name "t1");
        t2 = find (fun name -> contains name "t2");
        readout = find (fun name -> contains name "readout");
        single =
          find (fun name ->
              contains name "single" || contains name "u2" || contains name "u3");
        cnot =
          find (fun name -> contains name "cnot" || contains name "cx");
      }

let field columns index row =
  match index with
  | None -> None
  | Some i -> List.nth_opt row i |> fun f -> ignore columns; f

(* "Q12" / "q12" / "12" -> 12 *)
let parse_qubit_label label =
  let label = String.trim label in
  let digits =
    if String.length label > 0 && (label.[0] = 'Q' || label.[0] = 'q') then
      String.sub label 1 (String.length label - 1)
    else label
  in
  int_of_string_opt (String.trim digits)

(* "cx0_1: 0.0373; cx0_5: 0.0265" -> [(0, 1, 0.0373); (0, 5, 0.0265)] *)
let parse_cnot_entries text =
  String.split_on_char ';' text
  |> List.filter_map (fun entry ->
         let entry = String.trim entry in
         if entry = "" then None
         else begin
           match String.index_opt entry ':' with
           | None -> Some (Error (Printf.sprintf "bad CNOT entry %S" entry))
           | Some colon ->
             let name = String.trim (String.sub entry 0 colon) in
             let value =
               String.trim
                 (String.sub entry (colon + 1) (String.length entry - colon - 1))
             in
             let name =
               if String.length name > 2 && String.sub name 0 2 = "cx" then
                 String.sub name 2 (String.length name - 2)
               else name
             in
             (match (String.split_on_char '_' name, float_of_string_opt value) with
             | [ a; b ], Some e -> begin
               match (int_of_string_opt a, int_of_string_opt b) with
               | Some u, Some v -> Some (Ok (u, v, e))
               | _ -> Some (Error (Printf.sprintf "bad CNOT qubits in %S" entry))
             end
             | _ -> Some (Error (Printf.sprintf "bad CNOT entry %S" entry)))
         end)

let of_ibm_csv text =
  match lines_of text with
  | [] -> Error "empty CSV"
  | header_line :: rows -> begin
    match locate_columns (split_csv_line header_line) with
    | Error _ as e -> e
    | Ok columns -> begin
      (* first pass: qubit count *)
      let parsed_rows =
        List.map
          (fun line ->
            let row = split_csv_line line in
            match List.nth_opt row columns.qubit with
            | None -> Error (Printf.sprintf "short row %S" line)
            | Some label -> begin
              match parse_qubit_label label with
              | Some q when q >= 0 -> Ok (q, row)
              | Some _ | None ->
                Error (Printf.sprintf "bad qubit label %S" label)
            end)
          rows
      in
      let rec collect acc = function
        | [] -> Ok (List.rev acc)
        | Ok r :: rest -> collect (r :: acc) rest
        | Error e :: _ -> Error e
      in
      match collect [] parsed_rows with
      | Error _ as e -> e
      | Ok rows when rows = [] -> Error "no data rows"
      | Ok rows -> begin
        let n = 1 + List.fold_left (fun acc (q, _) -> max acc q) 0 rows in
        let calibration = Calibration.create n in
        (* both directions of a link may be reported: average them *)
        let link_sums : (int * int, float * int) Hashtbl.t = Hashtbl.create 32 in
        let float_field index row =
          Option.bind (field columns index row) float_of_string_opt
        in
        let error = ref None in
        List.iter
          (fun (q, row) ->
            let default = Calibration.qubit calibration q in
            Calibration.set_qubit calibration q
              {
                Calibration.t1_us =
                  Option.value (float_field columns.t1 row)
                    ~default:default.Calibration.t1_us;
                t2_us =
                  Option.value (float_field columns.t2 row)
                    ~default:default.Calibration.t2_us;
                error_1q =
                  Option.value (float_field columns.single row)
                    ~default:default.Calibration.error_1q;
                error_readout =
                  Option.value (float_field columns.readout row)
                    ~default:default.Calibration.error_readout;
              };
            match field columns columns.cnot row with
            | None -> ()
            | Some cnot_text ->
              List.iter
                (fun entry ->
                  match entry with
                  | Ok (u, v, e) ->
                    let key = (min u v, max u v) in
                    let total, count =
                      Option.value (Hashtbl.find_opt link_sums key)
                        ~default:(0.0, 0)
                    in
                    Hashtbl.replace link_sums key (total +. e, count + 1)
                  | Error message ->
                    if !error = None then error := Some message)
                (parse_cnot_entries cnot_text))
          rows;
        match !error with
        | Some message -> Error message
        | None -> begin
          match
            Hashtbl.fold
              (fun (u, v) (total, count) acc ->
                match acc with
                | Error _ -> acc
                | Ok couplers ->
                  if u >= n || v >= n then
                    Error (Printf.sprintf "CNOT entry references qubit %d" (max u v))
                  else begin
                    Calibration.set_link_error calibration u v
                      (total /. float_of_int count);
                    Ok ((u, v) :: couplers)
                  end)
              link_sums (Ok [])
          with
          | Error _ as e -> e
          | Ok couplers -> Ok (calibration, List.sort compare couplers)
        end
      end
    end
  end

let of_ibm_csv_exn text =
  match of_ibm_csv text with Ok r -> r | Error m -> failwith m

let device_of_ibm_csv ?gate_times ~name text =
  match of_ibm_csv text with
  | Error _ as e -> e
  | Ok (calibration, coupling) -> begin
    match Device.make ?gate_times ~name ~coupling calibration with
    | device -> Ok device
    | exception Invalid_argument message -> Error message
  end

(* Shortest fixed-precision rendering that parses back to the same
   float, so export → import is lossless: the serving layer dumps and
   reloads calibration epochs through this pair and cache fingerprints
   must survive the trip. *)
let float_repr f =
  let s = Printf.sprintf "%.12g" f in
  if float_of_string s = f then s else Printf.sprintf "%.17g" f

let to_ibm_csv calibration =
  let buffer = Buffer.create 512 in
  Buffer.add_string buffer
    "Qubit,T1 (us),T2 (us),Frequency (GHz),Readout error,Single-qubit U2 \
     error rate,CNOT error rate\n";
  let n = Calibration.num_qubits calibration in
  let links = Calibration.links calibration in
  for q = 0 to n - 1 do
    let figures = Calibration.qubit calibration q in
    let cnots =
      links
      |> List.filter_map (fun (u, v, e) ->
             if u = q then Some (Printf.sprintf "cx%d_%d: %s" u v (float_repr e))
             else if v = q then
               Some (Printf.sprintf "cx%d_%d: %s" v u (float_repr e))
             else None)
      |> String.concat "; "
    in
    Buffer.add_string buffer
      (Printf.sprintf "Q%d,%s,%s,5.0,%s,%s,\"%s\"\n" q
         (float_repr figures.Calibration.t1_us)
         (float_repr figures.Calibration.t2_us)
         (float_repr figures.Calibration.error_readout)
         (float_repr figures.Calibration.error_1q)
         cnots)
  done;
  Buffer.contents buffer

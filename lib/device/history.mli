(** Multi-day calibration histories (paper Sections 3.4, 4.4, 6.5).

    Each link (and each qubit figure) gets a persistent {e base} quality
    plus an AR(1) day-to-day deviation in log space, so strong links stay
    strong and weak links stay weak over the horizon — the temporal
    behaviour of paper Figure 8.  A per-day variability factor makes some
    days calmer and some noisier, which drives the per-day spread of
    benefit in Figure 14. *)

type t

val generate :
  ?days:int ->
  ?params:Calibration_model.params ->
  ?persistence:float ->
  ?daily_sigma:float ->
  seed:int ->
  coupling:(int * int) list ->
  int ->
  t
(** [generate ~seed ~coupling n] draws a history ([days] defaults to 52,
    the paper's horizon).  [persistence] is the AR(1) coefficient in
    [\[0, 1)] (default 0.7); [daily_sigma] the log-space innovation scale
    (default 0.22). *)

val days : t -> int
val day : t -> int -> Calibration.t
(** @raise Invalid_argument when out of range. *)

val all : t -> Calibration.t list

val average : t -> Calibration.t
(** Per-link / per-qubit arithmetic mean over all days — the "average
    behaviour across 52 days" configuration the paper evaluates with. *)

val coupling : t -> (int * int) list
(** The coupler list the history was generated over, sorted. *)

val qubit_series : t -> int -> Calibration.qubit array
(** Day-by-day calibration figures of one qubit.
    @raise Invalid_argument when the qubit is out of range. *)

val link_series : t -> int -> int -> float array
(** Day-by-day two-qubit error of one link.
    @raise Not_found if the pair is not a coupler. *)

val daily_dispersion : t -> float array
(** Coefficient of variation (std/mean) of the link errors of each day —
    the "variability of the day" axis of Figure 14. *)

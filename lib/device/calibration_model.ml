module Rng = Vqc_rng.Rng

type link_noise = {
  core_mean : float;
  core_std : float;
  bad_fraction : float;
  bad_lo : float;
  bad_hi : float;
}

type params = {
  t1_mean_us : float;
  t1_std_us : float;
  t2_mean_us : float;
  t2_std_us : float;
  error_1q_mean : float;
  error_1q_std : float;
  error_2q : link_noise;
  error_readout_mean : float;
  error_readout_std : float;
}

let ibm_q20_params =
  {
    t1_mean_us = 80.32;
    t1_std_us = 35.23;
    t2_mean_us = 42.13;
    t2_std_us = 13.34;
    error_1q_mean = 0.006;
    error_1q_std = 0.005;
    (* aggregate: mean ~0.042, std ~0.025, range [0.02, 0.15] -- the
       paper's mean 4.3%, std 3.02%, best 0.02, worst 0.15, 7.5x spread.
       ~8 marginal couplers spread across the chip (so every wide region
       carries a few, as in Figure 9) plus one standout worst link. *)
    error_2q =
      {
        core_mean = 0.031;
        core_std = 0.005;
        bad_fraction = 0.20;
        bad_lo = 0.055;
        bad_hi = 0.15;
      };
    error_readout_mean = 0.035;
    error_readout_std = 0.015;
  }

let ibm_q5_params =
  {
    t1_mean_us = 50.0;
    t1_std_us = 15.0;
    t2_mean_us = 30.0;
    t2_std_us = 10.0;
    error_1q_mean = 0.0015;
    error_1q_std = 0.001;
    (* aggregate: mean ~0.042, worst ~0.12 (paper Section 7) *)
    error_2q =
      {
        core_mean = 0.026;
        core_std = 0.005;
        bad_fraction = 0.15;
        bad_lo = 0.06;
        bad_hi = 0.12;
      };
    error_readout_mean = 0.05;
    error_readout_std = 0.02;
  }

let clamp lo hi x = Float.min hi (Float.max lo x)
let clamp_2q = clamp 0.02 0.18
let clamp_1q = clamp 0.0005 0.045
let clamp_readout = clamp 0.005 0.25

let default_spatial_weight = 0.4

(* Pick roughly [fraction * n] defective qubits, spread across the index
   range rather than i.i.d.: on published devices the weak couplers appear
   in several places on the chip (paper Figure 9), not in one lucky-free
   corner, so wide circuits cannot simply allocate around all of them. *)
let spread_defective rng n ~fraction =
  let defective = Array.make (max n 1) false in
  if n > 0 && fraction > 0.0 then begin
    let count =
      max 1 (int_of_float (Float.round (fraction *. float_of_int n)))
    in
    let count = min count n in
    let stride = float_of_int n /. float_of_int count in
    for slot = 0 to count - 1 do
      let jitter = Rng.float rng in
      let q =
        min (n - 1)
          (int_of_float ((float_of_int slot +. jitter) *. stride))
      in
      defective.(q) <- true
    done
  end;
  defective

(* Log-normal parameters of a distribution with the given arithmetic mean
   and standard deviation. *)
let lognormal_params ~mean ~std =
  let sigma2 = log (1.0 +. (std *. std /. (mean *. mean))) in
  (log mean -. (sigma2 /. 2.0), sqrt sigma2)

let generate ?(params = ibm_q20_params) ?(spatial_weight = default_spatial_weight)
    rng ~coupling n =
  if spatial_weight < 0.0 || spatial_weight > 1.0 then
    invalid_arg "Calibration_model.generate: spatial_weight outside [0, 1]";
  let c = Calibration.create n in
  (* Latent per-qubit quality: fabrication quality varies smoothly across
     the chip, so the error of a link is correlated with its endpoints'
     quality.  Without this, i.i.d. link errors give the router far more
     arbitrage than the published calibration data supports. *)
  let quality = Array.init (max n 1) (fun _ -> Rng.gaussian rng ~mean:0.0 ~std:1.0) in
  (* Defective couplers, stratified across the chip. *)
  let coupling = List.sort compare coupling in
  let defective_link =
    spread_defective rng (List.length coupling)
      ~fraction:params.error_2q.bad_fraction
  in
  for q = 0 to n - 1 do
    let t1_us =
      Rng.truncated_gaussian rng ~mean:params.t1_mean_us ~std:params.t1_std_us
        ~lo:5.0 ~hi:(params.t1_mean_us +. (4.0 *. params.t1_std_us))
    in
    let t2_raw =
      Rng.truncated_gaussian rng ~mean:params.t2_mean_us ~std:params.t2_std_us
        ~lo:2.0 ~hi:(params.t2_mean_us +. (4.0 *. params.t2_std_us))
    in
    (* physical constraint: T2 <= 2 T1 *)
    let t2_us = Float.min t2_raw (2.0 *. t1_us) in
    let error_1q =
      let mu, sigma =
        lognormal_params ~mean:params.error_1q_mean ~std:params.error_1q_std
      in
      let z =
        (spatial_weight *. quality.(q))
        +. (sqrt (1.0 -. (spatial_weight *. spatial_weight))
           *. Rng.gaussian rng ~mean:0.0 ~std:1.0)
      in
      clamp_1q (exp (mu +. (sigma *. z)))
    in
    let error_readout =
      clamp_readout
        (Rng.lognormal rng ~mean:params.error_readout_mean
           ~std:params.error_readout_std)
    in
    Calibration.set_qubit c q { t1_us; t2_us; error_1q; error_readout }
  done;
  let noise = params.error_2q in
  let idiosyncratic = sqrt (1.0 -. (spatial_weight *. spatial_weight)) in
  (* one defective link per chip is the standout "worst link" of paper
     Figure 9 (0.15 against a 0.05-0.10 tail) *)
  let worst_slot =
    let slots = ref [] in
    Array.iteri (fun i d -> if d then slots := i :: !slots) defective_link;
    match !slots with
    | [] -> -1
    | slots -> List.nth slots (Rng.int rng (List.length slots))
  in
  List.iteri
    (fun index (u, v) ->
      let e =
        if index = worst_slot then Rng.uniform rng 0.12 noise.bad_hi
        else if defective_link.(index) then
          Rng.uniform rng noise.bad_lo (0.7 *. noise.bad_hi)
        else begin
          let neighborhood = (quality.(u) +. quality.(v)) /. sqrt 2.0 in
          let z =
            (spatial_weight *. neighborhood)
            +. (idiosyncratic *. Rng.gaussian rng ~mean:0.0 ~std:1.0)
          in
          noise.core_mean +. (noise.core_std *. z)
        end
      in
      Calibration.set_link_error c u v (clamp_2q e))
    coupling;
  c

let ibm_q20 ~seed =
  let rng = Rng.make seed in
  let coupling = Topologies.ibm_q20_tokyo in
  let calibration = generate ~params:ibm_q20_params rng ~coupling 20 in
  Device.make ~name:"ibm-q20-tokyo" ~coupling calibration

let ibm_q5 ~seed =
  let rng = Rng.make seed in
  let coupling = Topologies.ibm_q5_tenerife in
  let calibration = generate ~params:ibm_q5_params rng ~coupling 5 in
  Device.make ~name:"ibm-q5-tenerife" ~coupling calibration

let uniform_device ~name ~coupling n ~error_2q =
  let c = Calibration.create n in
  List.iter (fun (u, v) -> Calibration.set_link_error c u v error_2q) coupling;
  Device.make ~name ~coupling c

(* Every named device profile the model can produce.  The calibration
   lint sweeps this list, so a new profile added here is linted (over
   its full history) from the day it lands. *)

type profile = {
  profile_name : string;
  coupling : (int * int) list;
  qubits : int;
  profile_params : params;
}

let profiles =
  [
    {
      profile_name = "q20-tokyo";
      coupling = Topologies.ibm_q20_tokyo;
      qubits = 20;
      profile_params = ibm_q20_params;
    };
    {
      profile_name = "q5-tenerife";
      coupling = Topologies.ibm_q5_tenerife;
      qubits = 5;
      profile_params = ibm_q5_params;
    };
    {
      profile_name = "q16-melbourne";
      coupling = Topologies.ibm_q16_melbourne;
      qubits = 14;
      profile_params = ibm_q20_params;
    };
    {
      profile_name = "heavy-hex-27";
      coupling = Topologies.heavy_hex_27;
      qubits = 27;
      profile_params = ibm_q20_params;
    };
  ]

let find_profile name =
  List.find_opt (fun p -> p.profile_name = name) profiles

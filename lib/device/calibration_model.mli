(** Synthetic calibration generator.

    The paper's raw input is 52 days of IBM-Q20 calibration reports, which
    are no longer publicly retrievable; this module substitutes a seeded
    statistical model matched to every summary statistic Section 3 reports
    (see DESIGN.md).  Coherence times are truncated Gaussians, gate errors
    are log-normal (strictly positive, right-skewed — matching the
    published histograms), with physical clamps applied. *)

(** Two-qubit error model: a narrow "healthy coupler" core plus a set of
    marginal couplers spread across the chip and one standout worst link.
    The paper's Figure 7 histogram has exactly this shape — a main mode
    below ~6% with a tail out to ~16% — and both the shape and the
    {e placement} of the tail matter:
    - a plain log-normal fit to the same mean/std has a fat cheap tail
      that lets the router find far more strong-link arbitrage than the
      real device offered;
    - i.i.d. defective links leave lucky defect-free regions for VQA to
      find, inflating gains by orders of magnitude.  The weak links of
      paper Figure 9 appear in several places on the chip, so marginal
      couplers here are stratified across the coupler list — every wide
      region carries a few, and the policies' gains come from shaving
      weak-link crossings, not escaping them wholesale. *)
type link_noise = {
  core_mean : float;
  core_std : float;
  bad_fraction : float;  (** fraction of couplers that are marginal *)
  bad_lo : float;
  bad_hi : float;
      (** marginal couplers get errors in [bad_lo, 0.7 * bad_hi]; one
          standout worst coupler per chip lands in [0.12, bad_hi] *)
}

type params = {
  t1_mean_us : float;
  t1_std_us : float;
  t2_mean_us : float;
  t2_std_us : float;
  error_1q_mean : float;
  error_1q_std : float;
  error_2q : link_noise;
  error_readout_mean : float;
  error_readout_std : float;
}

val ibm_q20_params : params
(** Matched to paper Section 3: T1 80.32 ± 35.23 µs, T2 42.13 ± 13.34 µs,
    1-q errors mostly below 1%, 2-q errors 4.3% ± 3.02% overall with best
    links near 2%, the worst near 15-16% (7.5x spread), and ~12% of
    couplers in the defective tail. *)

val ibm_q5_params : params
(** Matched to Section 7: average 2-q error 4.2%, worst link ≈ 12%. *)

val default_spatial_weight : float
(** Share of a healthy coupler's error variance explained by its
    endpoints' latent quality (0.4): fabrication quality varies smoothly
    across a chip, so neighbouring healthy links have similar error
    rates.  Defective links are drawn independently (defects are local).
    Set to 0 for fully i.i.d. links. *)

val spread_defective :
  Vqc_rng.Rng.t -> int -> fraction:float -> bool array
(** Mark roughly [fraction * n] qubits defective, stratified across the
    index range (row-major chip position) rather than i.i.d. — published
    devices have weak couplers in several places on the chip (Figure 9),
    never one lucky defect-free half, so wide circuits cannot allocate
    around all of them.  At least one qubit is marked when
    [fraction > 0]. *)

val generate :
  ?params:params ->
  ?spatial_weight:float ->
  Vqc_rng.Rng.t ->
  coupling:(int * int) list ->
  int ->
  Calibration.t
(** [generate rng ~coupling n] draws a fresh calibration for an [n]-qubit
    machine with the given couplers ([ibm_q20_params] by default).
    @raise Invalid_argument if [spatial_weight] is outside [\[0, 1\]]. *)

val clamp_2q : float -> float
(** The clamp applied to generated two-qubit errors ([\[0.015, 0.18\]] —
    the paper's observed range is 0.02 to 0.15). *)

val ibm_q20 : seed:int -> Device.t
(** A ready-made Q20 Tokyo device with a generated calibration. *)

val ibm_q5 : seed:int -> Device.t
(** A ready-made Q5 Tenerife device with a generated calibration. *)

val uniform_device :
  name:string -> coupling:(int * int) list -> int -> error_2q:float ->
  Device.t
(** A no-variability control: every link has the same error, every qubit
    ideal coherence.  Under it VQM must coincide with the baseline. *)

(** A named device profile the model can produce: topology plus the
    noise parameters its calibrations are drawn from. *)
type profile = {
  profile_name : string;
  coupling : (int * int) list;
  qubits : int;
  profile_params : params;
}

val profiles : profile list
(** Every named profile, in registration order: the paper's Q20 Tokyo
    and Q5 Tenerife, plus Q16 Melbourne and the 27-qubit heavy-hex
    lattice under Q20 noise.  The calibration lint ([vqc-check calib])
    sweeps exactly this list. *)

val find_profile : string -> profile option

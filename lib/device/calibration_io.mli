(** Import/export of IBM-style calibration CSVs.

    IBM Quantum Experience published per-device calibration tables in CSV
    form (the data source of the paper's Section 3); this module parses
    that shape so a user holding downloaded reports can build a
    {!Device.t} from them:

    {v
Qubit,T1 (µs),T2 (µs),Frequency (GHz),Readout error,Single-qubit U2 error rate,CNOT error rate
Q0,83.4,41.2,5.23,0.031,0.0008,"cx0_1: 0.0373; cx0_5: 0.0265"
Q1,71.2,55.1,5.11,0.028,0.0011,"cx1_0: 0.0373; cx1_2: 0.041"
    v}

    Parsing is tolerant: column order is derived from the header (matched
    on keywords, so "T1 (µs)" and "T1 (us)" both work), quoted fields may
    contain commas, the CNOT list accepts [cxA_B: e] entries separated by
    semicolons, and both directions of a link may appear (the entries are
    averaged). *)

val of_ibm_csv : string -> (Calibration.t * (int * int) list, string) result
(** Parse a CSV report into a calibration plus the coupler list implied
    by the CNOT columns.  Qubit indices come from the [QN] labels; the
    qubit count is [max index + 1]. *)

val of_ibm_csv_exn : string -> Calibration.t * (int * int) list
(** @raise Failure on parse errors. *)

val device_of_ibm_csv :
  ?gate_times:Device.gate_times -> name:string -> string ->
  (Device.t, string) result
(** Convenience: parse and assemble the device in one step. *)

val to_ibm_csv : Calibration.t -> string
(** Export a calibration in the same CSV shape (frequency column written
    as 5.0 for every qubit — the library does not model frequencies).
    The export is lossless: floats are printed with enough digits that
    [of_ibm_csv] reproduces the calibration {e exactly}, qubit figures
    and link errors alike — the serving layer relies on this to dump
    and reload its calibration epochs without perturbing plan-cache
    fingerprints. *)

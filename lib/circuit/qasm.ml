let gate_to_qasm gate =
  match gate with
  | Gate.One_qubit (kind, q) -> begin
    match kind with
    | Gate.Rx a -> Printf.sprintf "rx(%.17g) q[%d];" a q
    | Gate.Ry a -> Printf.sprintf "ry(%.17g) q[%d];" a q
    | Gate.Rz a -> Printf.sprintf "rz(%.17g) q[%d];" a q
    | Gate.U1 a -> Printf.sprintf "u1(%.17g) q[%d];" a q
    | Gate.H | Gate.X | Gate.Y | Gate.Z | Gate.S | Gate.Sdg | Gate.T
    | Gate.Tdg ->
      Printf.sprintf "%s q[%d];" (Gate.one_qubit_name kind) q
  end
  | Gate.Cnot { control; target } ->
    Printf.sprintf "cx q[%d],q[%d];" control target
  | Gate.Swap (a, b) -> Printf.sprintf "swap q[%d],q[%d];" a b
  | Gate.Measure { qubit; cbit } ->
    Printf.sprintf "measure q[%d] -> c[%d];" qubit cbit
  | Gate.Barrier [] -> "barrier q;"
  | Gate.Barrier qs ->
    let operands = List.map (Printf.sprintf "q[%d]") qs in
    Printf.sprintf "barrier %s;" (String.concat "," operands)

let to_string c =
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer "OPENQASM 2.0;\n";
  Buffer.add_string buffer "include \"qelib1.inc\";\n";
  Buffer.add_string buffer
    (Printf.sprintf "qreg q[%d];\n" (Circuit.num_qubits c));
  Buffer.add_string buffer
    (Printf.sprintf "creg c[%d];\n" (Circuit.num_cbits c));
  List.iter
    (fun gate ->
      Buffer.add_string buffer (gate_to_qasm gate);
      Buffer.add_char buffer '\n')
    (Circuit.gates c);
  Buffer.contents buffer

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

module Diagnostic = Vqc_diag.Diagnostic

exception Parse_error of string

(* Typed parse failure (out-of-range index, identical operands); the
   statement loop stamps the line number on. *)
exception Diag_error of Diagnostic.t

let fail fmt = Printf.ksprintf (fun message -> raise (Parse_error message)) fmt

let fail_diag code fmt =
  Printf.ksprintf
    (fun message -> raise (Diag_error (Diagnostic.error code message)))
    fmt

let strip_comments text =
  let buffer = Buffer.create (String.length text) in
  let lines = String.split_on_char '\n' text in
  List.iter
    (fun line ->
      let line =
        match String.index_opt line '/' with
        | Some i
          when i + 1 < String.length line && line.[i + 1] = '/' ->
          String.sub line 0 i
        | Some _ | None -> line
      in
      Buffer.add_string buffer line;
      Buffer.add_char buffer '\n')
    lines;
  Buffer.contents buffer

(* Statements with the 1-based line their first token sits on, so parse
   errors can point at the offending statement. *)
let statements text =
  let text = strip_comments text in
  let len = String.length text in
  let result = ref [] in
  let buffer = Buffer.create 64 in
  let line = ref 1 in
  let start_line = ref 0 in
  let flush_statement () =
    let s = String.trim (Buffer.contents buffer) in
    if s <> "" then result := (max 1 !start_line, s) :: !result;
    Buffer.clear buffer;
    start_line := 0
  in
  for i = 0 to len - 1 do
    let c = text.[i] in
    if c = ';' then flush_statement ()
    else begin
      if !start_line = 0 && c <> ' ' && c <> '\t' && c <> '\n' && c <> '\r'
      then start_line := !line;
      Buffer.add_char buffer c
    end;
    if c = '\n' then incr line
  done;
  flush_statement ();
  List.rev !result

(* --- tiny arithmetic evaluator for gate angles --------------------- *)

let eval_angle text =
  let len = String.length text in
  let pos = ref 0 in
  let peek () = if !pos < len then Some text.[!pos] else None in
  let advance () = incr pos in
  let skip_spaces () =
    while !pos < len && (text.[!pos] = ' ' || text.[!pos] = '\t') do
      advance ()
    done
  in
  let rec expression () =
    let left = ref (term ()) in
    let rec more () =
      skip_spaces ();
      match peek () with
      | Some '+' ->
        advance ();
        left := !left +. term ();
        more ()
      | Some '-' ->
        advance ();
        left := !left -. term ();
        more ()
      | Some _ | None -> ()
    in
    more ();
    !left
  and term () =
    let left = ref (factor ()) in
    let rec more () =
      skip_spaces ();
      match peek () with
      | Some '*' ->
        advance ();
        left := !left *. factor ();
        more ()
      | Some '/' ->
        advance ();
        let divisor = factor () in
        if divisor = 0.0 then fail "angle: division by zero";
        left := !left /. divisor;
        more ()
      | Some _ | None -> ()
    in
    more ();
    !left
  and factor () =
    skip_spaces ();
    match peek () with
    | Some '-' ->
      advance ();
      -.factor ()
    | Some '+' ->
      advance ();
      factor ()
    | Some '(' ->
      advance ();
      let value = expression () in
      skip_spaces ();
      (match peek () with
      | Some ')' -> advance ()
      | Some _ | None -> fail "angle: expected ')' in %S" text);
      value
    | Some ('p' | 'P') ->
      if !pos + 1 < len && Char.lowercase_ascii text.[!pos + 1] = 'i' then begin
        pos := !pos + 2;
        Float.pi
      end
      else fail "angle: unexpected identifier in %S" text
    | Some c when (c >= '0' && c <= '9') || c = '.' ->
      let start = !pos in
      while
        !pos < len
        && (let d = text.[!pos] in
            (d >= '0' && d <= '9')
            || d = '.' || d = 'e' || d = 'E'
            || ((d = '+' || d = '-')
               && !pos > start
               && (text.[!pos - 1] = 'e' || text.[!pos - 1] = 'E')))
      do
        advance ()
      done;
      float_of_string (String.sub text start (!pos - start))
    | Some c -> fail "angle: unexpected character %c in %S" c text
    | None -> fail "angle: empty expression"
  in
  let value = expression () in
  skip_spaces ();
  if !pos <> len then fail "angle: trailing garbage in %S" text;
  value

(* --- register tracking --------------------------------------------- *)

type registers = {
  mutable qregs : (string * int * int) list;  (* name, offset, size *)
  mutable cregs : (string * int * int) list;
  mutable qtotal : int;
  mutable ctotal : int;
}

let find_register regs name =
  match List.find_opt (fun (n, _, _) -> n = name) regs with
  | Some entry -> entry
  | None -> fail "unknown register %s" name

(* Parse "name[idx]" or bare "name"; returns flat indices. *)
let resolve regs operand =
  let operand = String.trim operand in
  match String.index_opt operand '[' with
  | Some open_bracket ->
    let close_bracket =
      match String.index_opt operand ']' with
      | Some i -> i
      | None -> fail "missing ']' in %S" operand
    in
    let name = String.trim (String.sub operand 0 open_bracket) in
    let index_text =
      String.sub operand (open_bracket + 1) (close_bracket - open_bracket - 1)
    in
    let index =
      try int_of_string (String.trim index_text)
      with Failure _ -> fail "bad index in %S" operand
    in
    let _, offset, size = find_register regs name in
    if index < 0 || index >= size then
      fail_diag Diagnostic.code_index_range
        "index %d out of range for register %s[%d]" index name size;
    [ offset + index ]
  | None ->
    let _, offset, size = find_register regs (String.trim operand) in
    List.init size (fun i -> offset + i)

let split_operands text = String.split_on_char ',' text |> List.map String.trim

(* Split a statement into "head" (gate name + optional params) and operand
   text: the operands start after the first whitespace that is outside
   parentheses. *)
let split_head statement =
  let len = String.length statement in
  let depth = ref 0 in
  let boundary = ref None in
  (try
     for i = 0 to len - 1 do
       match statement.[i] with
       | '(' -> incr depth
       | ')' -> decr depth
       | ' ' | '\t' | '\n' ->
         if !depth = 0 then begin
           boundary := Some i;
           raise Exit
         end
       | _ -> ()
     done
   with Exit -> ());
  match !boundary with
  | None -> (statement, "")
  | Some i ->
    ( String.sub statement 0 i,
      String.trim (String.sub statement (i + 1) (len - i - 1)) )

let parse_gate_name head =
  match String.index_opt head '(' with
  | None -> (String.trim head, None)
  | Some open_paren ->
    let close_paren =
      match String.rindex_opt head ')' with
      | Some i -> i
      | None -> fail "missing ')' in %S" head
    in
    let name = String.trim (String.sub head 0 open_paren) in
    let angle_text =
      String.sub head (open_paren + 1) (close_paren - open_paren - 1)
    in
    (name, Some (eval_angle angle_text))

let one_qubit_kind name angle =
  match (name, angle) with
  | "h", None -> Gate.H
  | "x", None -> Gate.X
  | "y", None -> Gate.Y
  | "z", None -> Gate.Z
  | "s", None -> Gate.S
  | "sdg", None -> Gate.Sdg
  | "t", None -> Gate.T
  | "tdg", None -> Gate.Tdg
  | "rx", Some a -> Gate.Rx a
  | "ry", Some a -> Gate.Ry a
  | "rz", Some a -> Gate.Rz a
  | "u1", Some a -> Gate.U1 a
  | ("rx" | "ry" | "rz" | "u1"), None -> fail "gate %s requires an angle" name
  | _, Some _ -> fail "gate %s does not take an angle" name
  | _, None -> fail "unsupported gate %s" name

let parse_declaration regs ~quantum body =
  match String.index_opt body '[' with
  | None -> fail "malformed register declaration %S" body
  | Some open_bracket ->
    let close_bracket =
      match String.index_opt body ']' with
      | Some i -> i
      | None -> fail "missing ']' in %S" body
    in
    let name = String.trim (String.sub body 0 open_bracket) in
    let size =
      try
        int_of_string
          (String.trim
             (String.sub body (open_bracket + 1)
                (close_bracket - open_bracket - 1)))
      with Failure _ -> fail "bad register size in %S" body
    in
    if size <= 0 then fail "register %s must have positive size" name;
    if quantum then begin
      regs.qregs <- regs.qregs @ [ (name, regs.qtotal, size) ];
      regs.qtotal <- regs.qtotal + size
    end
    else begin
      regs.cregs <- regs.cregs @ [ (name, regs.ctotal, size) ];
      regs.ctotal <- regs.ctotal + size
    end

(* Split "lhs -> rhs" on the first arrow. *)
let split_on_arrow body =
  let len = String.length body in
  let rec find i =
    if i + 1 >= len then None
    else if body.[i] = '-' && body.[i + 1] = '>' then
      Some
        ( String.trim (String.sub body 0 i),
          String.trim (String.sub body (i + 2) (len - i - 2)) )
    else find (i + 1)
  in
  find 0

let parse_measure regs body =
  match split_on_arrow body with
  | None -> fail "measure without '->' in %S" body
  | Some (source, destination) ->
    let qubits = resolve regs.qregs source in
    let cbits = resolve regs.cregs destination in
    if List.length qubits <> List.length cbits then
      fail "measure arity mismatch in %S" body;
    List.map2 (fun qubit cbit -> Gate.Measure { qubit; cbit }) qubits cbits

let parse_statement regs statement =
  let head, rest = split_head statement in
  match head with
  | "OPENQASM" -> []
  | "include" -> []
  | "qreg" ->
    parse_declaration regs ~quantum:true rest;
    []
  | "creg" ->
    parse_declaration regs ~quantum:false rest;
    []
  | "measure" -> parse_measure regs rest
  | "barrier" ->
    let operands = split_operands rest in
    let qubits = List.concat_map (resolve regs.qregs) operands in
    [ Gate.Barrier qubits ]
  | "cx" | "CX" -> begin
    let two_qubit control target =
      if control = target then
        fail_diag Diagnostic.code_identical_operands
          "cx with identical operands q[%d] in %S" control statement;
      Gate.Cnot { control; target }
    in
    match split_operands rest with
    | [ a; b ] -> begin
      match (resolve regs.qregs a, resolve regs.qregs b) with
      | [ control ], [ target ] -> [ two_qubit control target ]
      | controls, targets when List.length controls = List.length targets ->
        List.map2 two_qubit controls targets
      | _ -> fail "cx arity mismatch in %S" statement
    end
    | _ -> fail "cx expects two operands in %S" statement
  end
  | "swap" -> begin
    match split_operands rest with
    | [ a; b ] -> begin
      match (resolve regs.qregs a, resolve regs.qregs b) with
      | [ qa ], [ qb ] ->
        if qa = qb then
          fail_diag Diagnostic.code_identical_operands
            "swap with identical operands q[%d] in %S" qa statement;
        [ Gate.Swap (qa, qb) ]
      | _ -> fail "swap expects single qubits in %S" statement
    end
    | _ -> fail "swap expects two operands in %S" statement
  end
  | _ ->
    let name, angle = parse_gate_name head in
    let kind = one_qubit_kind name angle in
    let operands = split_operands rest in
    let qubits = List.concat_map (resolve regs.qregs) operands in
    List.map (fun q -> Gate.One_qubit (kind, q)) qubits

let of_string_diag text =
  let regs = { qregs = []; cregs = []; qtotal = 0; ctotal = 0 } in
  let parse_at (line, statement) =
    let located d =
      if d.Diagnostic.location = Diagnostic.Nowhere then
        { d with Diagnostic.location = Diagnostic.Line line }
      else d
    in
    try parse_statement regs statement with
    | Parse_error message ->
      raise
        (Diag_error
           (Diagnostic.error ~location:(Diagnostic.Line line)
              Diagnostic.code_parse message))
    | Diag_error d -> raise (Diag_error (located d))
  in
  try
    let gates = List.concat_map parse_at (statements text) in
    Ok (Circuit.of_gates ~cbits:(max regs.ctotal 0) regs.qtotal gates)
  with
  | Diag_error d -> Error d
  | Invalid_argument message ->
    Error (Diagnostic.error Diagnostic.code_parse message)

let of_string text =
  match of_string_diag text with
  | Ok c -> Ok c
  | Error d ->
    Error
      (match d.Diagnostic.location with
      | Diagnostic.Line line ->
        Printf.sprintf "line %d: %s" line d.Diagnostic.message
      | Diagnostic.Nowhere | Diagnostic.Gate _ | Diagnostic.File_line _ ->
        d.Diagnostic.message)

let of_string_exn text =
  match of_string text with Ok c -> c | Error message -> failwith message

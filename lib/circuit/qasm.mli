(** OpenQASM 2.0 subset: enough to round-trip every circuit this library
    produces and to import the micro-benchmark kernels.

    Supported statements: the [OPENQASM 2.0] header, [include], [qreg],
    [creg], the standard gates [h x y z s sdg t tdg rx ry rz u1 cx swap],
    [barrier] and [measure] (single-bit and whole-register forms).  Angle
    expressions support [+ - * /], parentheses, numeric literals and [pi].
    Multiple quantum registers are flattened into one qubit index space in
    declaration order. *)

val to_string : Circuit.t -> string
(** Emit a program with one register [q] and one classical register [c]. *)

val of_string : string -> (Circuit.t, string) result
(** Parse a program.  [Error message] points at the offending statement
    (rendered from {!of_string_diag}, line number included). *)

val of_string_diag :
  string -> (Circuit.t, Vqc_diag.Diagnostic.t) result
(** Parse with a structured error: out-of-range qubit/cbit indices carry
    {!Vqc_diag.Diagnostic.code_index_range}, two-qubit gates with
    identical operands carry
    {!Vqc_diag.Diagnostic.code_identical_operands}, everything else
    {!Vqc_diag.Diagnostic.code_parse}; the location is the statement's
    1-based source line. *)

val of_string_exn : string -> Circuit.t
(** @raise Failure on parse errors. *)

module Circuit = Vqc_circuit.Circuit
module Qasm = Vqc_circuit.Qasm
module Device = Vqc_device.Device
module Catalog = Vqc_workloads.Catalog
module Compiler = Vqc_mapper.Compiler
module Layout = Vqc_mapper.Layout
module Router = Vqc_mapper.Router
module Pool = Vqc_engine.Pool
module Estimator = Vqc_sim.Estimator
module Monte_carlo = Vqc_sim.Monte_carlo
module Rng = Vqc_rng.Rng
module Metrics = Vqc_obs.Metrics
module Trace = Vqc_obs.Trace
module Json = Vqc_obs.Json
module Verify = Vqc_check.Verify
module Diagnostic = Vqc_diag.Diagnostic
module Staleness = Vqc_drift.Staleness
module Retention = Vqc_drift.Retention
module Recompiler = Vqc_drift.Recompiler

type config = {
  jobs : int;
  cache_capacity : int;
  cache_enabled : bool;
  cache_shards : int;
  queue_limit : int;
  verify : bool;
  drift : Retention.policy option;
}

let default_config =
  {
    jobs = 1;
    cache_capacity = 256;
    cache_enabled = true;
    cache_shards = 1;
    queue_limit = 64;
    verify = false;
    drift = None;
  }

let requests_total = Metrics.counter "service.requests"
let batches_total = Metrics.counter "service.batches"
let failures_total = Metrics.counter "service.failures"
let compiles_total = Metrics.counter "service.compiles"
let estimates_total = Metrics.counter "service.estimates"
let verify_checks_total = Metrics.counter "service.verify.checks"
let verify_ok_total = Metrics.counter "service.verify.ok"
let verify_rejected_total = Metrics.counter "service.verify.rejected"

(* The cache payload keeps the source and routed circuits and the final
   layout alongside the wire plan so cache hits can be re-verified — and
   drift-demoted plans recompiled — without the original request. *)
type cached = {
  plan : Protocol.plan;
  physical : Circuit.t;
  final : int array;
  source : Circuit.t;
}

(* A shared compile store (the "L2" behind the per-session caches of
   the TCP server): content-addressed like the session cache, but keyed
   purely by content — a plan for (circuit, calibration, policy) is
   correct forever, so the store is never invalidated on epoch moves
   and can be shared by sessions sitting at different epochs. *)
type store = cached Plan_cache.t

let shared_store ?shards ~capacity () =
  Plan_cache.create ?shards ~metrics_prefix:"serve.store" ~capacity ()

type t = {
  service_config : config;
  epoch : Epoch.t;
  cache : cached Plan_cache.t;
      (** allocated even when disabled; bypassed (never consulted) so
          hit/miss metrics stay silent with the cache off *)
  store : store option;
      (** cross-session plan store; consulted after a cache miss,
          written through on compile.  Store temperature is visible
          only under ["nd"]/metrics — deterministic response fields
          never depend on it. *)
  queue : Protocol.request Admission.t;
  pool : Pool.t;
  owns_pool : bool;
      (** sessions of one server share a pool; only its owner may shut
          it down *)
}

let create ?(config = default_config) ?pool ?store epoch =
  (match Pool.validate_jobs config.jobs with
  | Ok _ -> ()
  | Error message -> invalid_arg ("Service.create: " ^ message));
  let pool, owns_pool =
    match pool with
    | Some pool -> (pool, false)
    | None -> (Pool.create ~jobs:config.jobs (), true)
  in
  {
    service_config = config;
    epoch;
    cache =
      Plan_cache.create ~shards:config.cache_shards
        ~capacity:config.cache_capacity ();
    store;
    queue = Admission.create ~limit:config.queue_limit;
    pool;
    owns_pool;
  }

let config t = t.service_config
let epoch_manager t = t.epoch

let submit t request = Admission.enqueue t.queue request
let pending t = Admission.depth t.queue

let cache_for_invalidation t =
  if t.service_config.cache_enabled then Some t.cache else None

(* Shared by the request path and the drift recompiler: everything a
   response needs, derived from one compiler result. *)
let payload_of_compiled ~device ~source ~epoch_index ~(key : Plan_cache.key)
    compiled =
  let physical_stats = Circuit.stats compiled.Compiler.physical in
  let plan =
    {
      Protocol.policy = key.Plan_cache.policy;
      epoch = epoch_index;
      qubits = Circuit.num_qubits source;
      layout = Layout.assignment compiled.Compiler.initial;
      swaps = compiled.Compiler.stats.Router.swaps_inserted;
      gates = physical_stats.Circuit.total_gates;
      depth = physical_stats.Circuit.depth;
      log_reliability =
        Compiler.log_gate_reliability device compiled.Compiler.physical;
      circuit_fp = key.Plan_cache.circuit_fp;
      calibration_fp = key.Plan_cache.calibration_fp;
    }
  in
  {
    plan;
    physical = compiled.Compiler.physical;
    final = Layout.assignment compiled.Compiler.final;
    source;
  }

(* ---- drift-aware epoch migration ----------------------------------- *)

(* Selective invalidation (Vqc_drift): score every cached plan against
   the calibration it was compiled for, retain the ones whose predicted
   PST moved less than the threshold (after re-verifying them against
   the new device), and recompile the rest in the background.

   Three phases, mirroring the flush pipeline's discipline:
   scoring runs outside the cache lock (the reliability model is not a
   [migrate] callback's business); the decision application is one
   locked [Plan_cache.migrate] walk in LRU order; the demoted set fans
   out over the worker pool keyed by that same order — so the final
   cache state is a pure function of (request stream, epoch history,
   drift policy), independent of worker count. *)
let drift_migrate t policy ~previous:_ ~current cache =
  let new_device = Epoch.device t.epoch current in
  let new_fp = Epoch.fingerprint t.epoch current in
  let reverified = ref 0 in
  let decisions = Hashtbl.create 16 in
  List.iter
    (fun ((key : Plan_cache.key), payload) ->
      let verdict =
        if String.equal key.Plan_cache.calibration_fp new_fp then
          (* compiled for the calibration that just went live *)
          Some key
        else begin
          (* score against the plan's compile-time device — the payload
             provenance, not the cache key, which may have been re-keyed
             by an earlier retention *)
          match
            Epoch.find_fingerprint t.epoch payload.plan.Protocol.calibration_fp
          with
          | None -> None (* compile-time calibration left the rotation *)
          | Some compile_epoch -> begin
            let before = Epoch.device t.epoch compile_epoch in
            let score =
              Staleness.score ~before ~after:new_device payload.physical
            in
            match Retention.decide policy score with
            | Retention.Recompile -> None
            | Retention.Retain ->
              incr reverified;
              let diagnostics =
                Retention.reverify ~device:new_device ~source:payload.source
                  ~physical:payload.physical
                  ~initial:payload.plan.Protocol.layout ~final:payload.final
                  ~swaps:payload.plan.Protocol.swaps
              in
              if Diagnostic.has_errors diagnostics then None
              else Some { key with Plan_cache.calibration_fp = new_fp }
          end
        end
      in
      Hashtbl.replace decisions key verdict)
    (Plan_cache.entries cache);
  let outcome =
    Plan_cache.migrate cache ~decide:(fun key _ ->
        Option.join (Hashtbl.find_opt decisions key))
  in
  let tasks =
    List.filter_map
      (fun ((key : Plan_cache.key), payload) ->
        match Policies.find key.Plan_cache.policy with
        | None -> None
        | Some entry ->
          Some
            ( key,
              {
                Recompiler.id = Plan_cache.key_to_string key;
                device = new_device;
                policy = entry.Policies.policy;
                source = payload.source;
              } ))
      outcome.Plan_cache.dropped
  in
  let outcomes = Recompiler.run ~pool:t.pool (List.map snd tasks) in
  let recompiled = ref 0 in
  List.iter2
    (fun ((key : Plan_cache.key), task) outcome ->
      match outcome.Recompiler.plan with
      | Error _ -> () (* counted under drift.recompile_failures *)
      | Ok compiled ->
        incr recompiled;
        let key' = { key with Plan_cache.calibration_fp = new_fp } in
        Plan_cache.insert cache key'
          (payload_of_compiled ~device:new_device ~source:task.Recompiler.source
             ~epoch_index:current ~key:key' compiled))
    tasks outcomes;
  {
    Epoch.retained = outcome.Plan_cache.kept;
    reverified = !reverified;
    recompiled = !recompiled;
    invalidated = List.length outcome.Plan_cache.dropped;
  }

(* A wholesale policy (threshold <= 0) must be byte-identical to no
   drift at all, so it simply never installs the migrate seam. *)
let migrate_for t =
  match t.service_config.drift with
  | Some policy when not (Retention.wholesale policy) ->
    Some (fun ~previous ~current cache ->
        drift_migrate t policy ~previous ~current cache)
  | Some _ | None -> None

let advance_epoch t =
  Epoch.advance ?migrate:(migrate_for t) t.epoch (cache_for_invalidation t)

let set_epoch t e =
  Epoch.set ?migrate:(migrate_for t) t.epoch (cache_for_invalidation t) e

(* ---- request resolution -------------------------------------------- *)

type prepared = {
  request : Protocol.request;
  circuit : Circuit.t;
  device : Device.t;
  entry : Policies.entry;
  epoch_index : int;
  key : Plan_cache.key;
}

let estimator_config (er : Protocol.estimate_request) =
  {
    Estimator.default_config with
    Estimator.precision = er.Protocol.precision;
    max_trials = er.Protocol.max_trials;
  }

let resolve t (request : Protocol.request) =
  let circuit =
    match request.Protocol.source with
    | Protocol.Workload name -> begin
      match Catalog.find name with
      | entry -> Ok entry.Catalog.circuit
      | exception Not_found ->
        Error
          (Printf.sprintf "unknown workload %S; available: %s" name
             (String.concat ", " (Catalog.names ())))
    end
    | Protocol.Inline_qasm text -> begin
      match Qasm.of_string text with
      | Ok circuit -> Ok circuit
      | Error message -> Error ("QASM parse error: " ^ message)
    end
  in
  match circuit with
  | Error _ as e -> e
  | Ok circuit -> begin
    match Policies.find request.Protocol.policy with
    | None ->
      Error
        (Printf.sprintf "unknown policy %S; available: %s"
           request.Protocol.policy
           (String.concat ", " (Policies.names ())))
    | Some entry ->
      let epoch_index =
        match request.Protocol.epoch with
        | Some e -> e
        | None -> Epoch.current t.epoch
      in
      if epoch_index < 0 || epoch_index >= Epoch.epochs t.epoch then
        Error
          (Printf.sprintf "epoch %d out of range (service has %d epochs)"
             epoch_index (Epoch.epochs t.epoch))
      else begin
        let device = Epoch.device t.epoch epoch_index in
        if Circuit.num_qubits circuit > Device.num_qubits device then
          Error
            (Printf.sprintf
               "circuit needs %d qubits but device %s has %d"
               (Circuit.num_qubits circuit) (Device.name device)
               (Device.num_qubits device))
        else begin
          let estimate_ok =
            match request.Protocol.estimate with
            | None -> Ok ()
            | Some er ->
              Result.map ignore (Estimator.validate_config (estimator_config er))
          in
          match estimate_ok with
          | Error message -> Error ("estimate: " ^ message)
          | Ok () ->
            Ok
              {
                request;
                circuit;
                device;
                entry;
                epoch_index;
                key =
                  {
                    Plan_cache.circuit_fp = Fingerprint.circuit circuit;
                    calibration_fp = Epoch.fingerprint t.epoch epoch_index;
                    policy = entry.Policies.label;
                  };
              }
        end
      end
  end

(* ---- compilation --------------------------------------------------- *)

(* Worker-side result: pure data, no metrics (workers are domains;
   counters are bumped serially after the fan-in). *)
type compile_result =
  | Plan of cached
  | Invalid_result of Diagnostic.t list
  | Compile_error of string

let compile_plan ~verify prepared =
  let start = Unix.gettimeofday () in
  let elapsed () = Unix.gettimeofday () -. start in
  match
    Compiler.compile prepared.device prepared.entry.Policies.policy
      prepared.circuit
  with
  | compiled ->
    let payload =
      payload_of_compiled ~device:prepared.device ~source:prepared.circuit
        ~epoch_index:prepared.epoch_index ~key:prepared.key compiled
    in
    if not verify then (Plan payload, elapsed ())
    else begin
      let diagnostics =
        Verify.compiled prepared.device prepared.circuit compiled
      in
      if Diagnostic.has_errors diagnostics then
        (Invalid_result diagnostics, elapsed ())
      else (Plan payload, elapsed ())
    end
  | exception Verify.Invalid_plan diagnostics ->
    (* an installed compiler check (Verify.install_compiler_check)
       rejected the plan before it reached us *)
    (Invalid_result diagnostics, elapsed ())
  | exception (Invalid_argument message | Failure message) ->
    (Compile_error message, elapsed ())

(* Re-verify a cache hit against the device of the requested epoch —
   the same replay a drift retention runs, so cache hits and retained
   plans are held to one bar. *)
let verify_cached prepared payload =
  Retention.reverify ~device:prepared.device ~source:prepared.circuit
    ~physical:payload.physical ~initial:payload.plan.Protocol.layout
    ~final:payload.final ~swaps:payload.plan.Protocol.swaps

(* The estimate rider runs serially in admission order on the response
   path (the pool parallelizes the trial chunks *inside* each run), so
   responses stay a deterministic function of the request stream.  The
   RNG is seeded per request — cache hits estimate too: the cache stores
   plans, not estimates, because the seed is the requester's to vary. *)
let run_estimate t prepared payload =
  match prepared.request.Protocol.estimate with
  | None -> None
  | Some er ->
    Metrics.incr estimates_total;
    Some
      (Monte_carlo.run_adaptive ~pool:t.pool ~config:(estimator_config er)
         (Rng.make er.Protocol.mc_seed)
         prepared.device payload.physical)

(* One resolved request, carrying what the lookup phase learned. *)
type slot =
  | Unresolvable of Protocol.request * string
  | Cached of prepared * cached * float  (** lookup seconds *)
  | Stored of prepared * cached * float
      (** session-cache miss served by the shared store.  The payload
          enters the session cache in phase 4 (first-occurrence order),
          exactly where a fresh compile's insert would land — so the
          session cache's LRU evolution, and with it every
          deterministic response field, is byte-identical to a run
          against a cold or absent store. *)
  | Needs_compile of prepared

let trace_response response =
  if Trace.enabled () then begin
    match response with
    | Protocol.Compiled { plan; cache; seconds; _ } ->
      Trace.emit ~source:"service" ~event:"response"
        ~nd:
          [
            ("cache", Json.String (Protocol.cache_status_to_string cache));
            ("seconds", Json.Float seconds);
          ]
        [
          ("status", Json.String "ok");
          ("policy", Json.String plan.Protocol.policy);
          ("epoch", Json.Int plan.Protocol.epoch);
          ("circuit", Json.String plan.Protocol.circuit_fp);
          ("calibration", Json.String plan.Protocol.calibration_fp);
        ]
    | Protocol.Invalid { diagnostics; cache; seconds; _ } ->
      Trace.emit ~source:"service" ~event:"response"
        ~nd:
          [
            ("cache", Json.String (Protocol.cache_status_to_string cache));
            ("seconds", Json.Float seconds);
          ]
        [
          ("status", Json.String "invalid");
          ( "codes",
            Json.List
              (List.map
                 (fun d -> Json.String d.Diagnostic.code)
                 diagnostics) );
        ]
    | Protocol.Failed { error; _ } ->
      Trace.emit ~source:"service" ~event:"response"
        [ ("status", Json.String "error"); ("error", Json.String error) ]
    | Protocol.Rejected _ | Protocol.Control_ack _ -> ()
  end

let flush t =
  let requests = Admission.drain t.queue in
  if requests = [] then []
  else begin
    Metrics.incr batches_total;
    Metrics.add requests_total (List.length requests);
    let batch_start = Unix.gettimeofday () in
    (* Phase 1+2: resolve every request and consult the cache serially,
       in admission order — hit/miss is a pure function of the request
       stream, independent of worker count. *)
    let slots =
      List.map
        (fun request ->
          match resolve t request with
          | Error message -> Unresolvable (request, message)
          | Ok prepared ->
            if not t.service_config.cache_enabled then Needs_compile prepared
            else begin
              let start = Unix.gettimeofday () in
              match Plan_cache.find t.cache prepared.key with
              | Some payload ->
                Cached (prepared, payload, Unix.gettimeofday () -. start)
              | None -> begin
                (* session-cache miss: try the shared store (the
                   compiles of other sessions) before paying for a
                   compile of our own *)
                match
                  Option.bind t.store (fun store ->
                      Plan_cache.find store prepared.key)
                with
                | Some payload ->
                  Stored (prepared, payload, Unix.gettimeofday () -. start)
                | None -> Needs_compile prepared
              end
            end)
        requests
    in
    (* Phase 3: distinct missing keys compile in parallel; duplicates
       within the batch compile once, and keys the shared store already
       holds do not compile at all.  First-occurrence order over {e
       all} misses (stored or not) keys the fan-out and the insertion
       order, so the session cache evolves byte-identically whether the
       store was warm, cold, or absent. *)
    let seen = Hashtbl.create 16 in
    let unique =
      List.filter_map
        (function
          | Stored (prepared, payload, _)
            when not (Hashtbl.mem seen prepared.key) ->
            Hashtbl.add seen prepared.key ();
            Some (prepared, Some payload)
          | Needs_compile prepared when not (Hashtbl.mem seen prepared.key)
            ->
            Hashtbl.add seen prepared.key ();
            Some (prepared, None)
          | _ -> None)
        slots
    in
    let to_compile =
      List.filter_map
        (function p, None -> Some p | _, Some _ -> None)
        unique
    in
    let compiled = Hashtbl.create 16 in
    let verify = t.service_config.verify in
    let results =
      if to_compile = [] then []
      else begin
        Metrics.add compiles_total (List.length to_compile);
        Pool.map t.pool
          ~f:(fun _ prepared -> compile_plan ~verify prepared)
          to_compile
      end
    in
    (* Phase 4: cache insertion is serial and in first-occurrence
       order, so the LRU state after the batch is deterministic too.
       Rejected plans never enter the cache or the store, and
       verification metrics are counted here, outside the worker
       domains. *)
    let remaining = ref results in
    List.iter
      (fun (prepared, stored_payload) ->
        let result =
          match stored_payload with
          | Some payload -> (Plan payload, 0.0)
          | None -> begin
            match !remaining with
            | result :: rest ->
              remaining := rest;
              result
            | [] -> assert false (* one pool result per to_compile entry *)
          end
        in
        Hashtbl.replace compiled prepared.key result;
        match result with
        | Plan payload, _ ->
          if verify && stored_payload = None then begin
            Metrics.incr verify_checks_total;
            Metrics.incr verify_ok_total
          end;
          if t.service_config.cache_enabled then begin
            Plan_cache.insert t.cache prepared.key payload;
            (* write-through: fresh compiles warm the shared store *)
            if stored_payload = None then
              Option.iter
                (fun store -> Plan_cache.insert store prepared.key payload)
                t.store
          end
        | Invalid_result _, _ ->
          if verify then begin
            Metrics.incr verify_checks_total;
            Metrics.incr verify_rejected_total
          end
        | Compile_error _, _ -> ())
      unique;
    (* Phase 5: responses in admission order. *)
    let cache_status =
      if t.service_config.cache_enabled then Protocol.Miss
      else Protocol.Bypass
    in
    let responses =
      List.map
        (fun slot ->
          match slot with
          | Unresolvable (request, error) ->
            Metrics.incr failures_total;
            Protocol.Failed { id = request.Protocol.id; error }
          | Cached (prepared, payload, seconds)
          | Stored (prepared, payload, seconds) ->
            if not t.service_config.verify then
              Protocol.Compiled
                {
                  id = prepared.request.Protocol.id;
                  plan = payload.plan;
                  estimate = run_estimate t prepared payload;
                  cache = Protocol.Hit;
                  seconds;
                }
            else begin
              (* Cache hits are re-verified too — a poisoned or stale
                 entry must not ride the fast path past the checker. *)
              Metrics.incr verify_checks_total;
              let diagnostics = verify_cached prepared payload in
              if Diagnostic.has_errors diagnostics then begin
                Metrics.incr verify_rejected_total;
                Protocol.Invalid
                  {
                    id = prepared.request.Protocol.id;
                    diagnostics;
                    cache = Protocol.Hit;
                    seconds;
                  }
              end
              else begin
                Metrics.incr verify_ok_total;
                Protocol.Compiled
                  {
                    id = prepared.request.Protocol.id;
                    plan = payload.plan;
                    estimate = run_estimate t prepared payload;
                    cache = Protocol.Hit;
                    seconds;
                  }
              end
            end
          | Needs_compile prepared -> begin
            match Hashtbl.find compiled prepared.key with
            | Plan payload, seconds ->
              Protocol.Compiled
                {
                  id = prepared.request.Protocol.id;
                  plan = payload.plan;
                  estimate = run_estimate t prepared payload;
                  cache = cache_status;
                  seconds;
                }
            | Invalid_result diagnostics, seconds ->
              Protocol.Invalid
                {
                  id = prepared.request.Protocol.id;
                  diagnostics;
                  cache = cache_status;
                  seconds;
                }
            | Compile_error error, _ ->
              Metrics.incr failures_total;
              Protocol.Failed { id = prepared.request.Protocol.id; error }
          end)
        slots
    in
    List.iter trace_response responses;
    if Trace.enabled () then begin
      let count status =
        List.length
          (List.filter
             (fun r ->
               match (r, status) with
               | Protocol.Compiled { cache = Protocol.Hit; _ }, `Hit -> true
               | ( Protocol.Compiled
                     { cache = Protocol.Miss | Protocol.Bypass; _ },
                   `Cold ) -> true
               | Protocol.Failed _, `Failed -> true
               | _ -> false)
             responses)
      in
      Trace.emit ~source:"service" ~event:"batch"
        ~nd:[ ("seconds", Json.Float (Unix.gettimeofday () -. batch_start)) ]
        [
          ("size", Json.Int (List.length requests));
          ("hits", Json.Int (count `Hit));
          ("cold", Json.Int (count `Cold));
          ("failed", Json.Int (count `Failed));
        ]
    end;
    responses
  end

let shutdown t = if t.owns_pool then Pool.shutdown t.pool

let with_service ?config epoch f =
  let t = create ?config epoch in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

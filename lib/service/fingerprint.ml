(* FNV-1a, 64-bit: digest = fold (xor byte, * prime) over the bytes.
   Computed in Int64 so the result is identical on 32- and 64-bit
   targets (OCaml's native int is 63-bit). *)

let fnv_offset_basis = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let of_string s =
  let digest = ref fnv_offset_basis in
  String.iter
    (fun c ->
      digest := Int64.logxor !digest (Int64.of_int (Char.code c));
      digest := Int64.mul !digest fnv_prime)
    s;
  Printf.sprintf "%016Lx" !digest

let circuit c = of_string (Vqc_circuit.Qasm.to_string c)
let calibration c = of_string (Vqc_device.Calibration.to_string c)
let device d = of_string (Vqc_device.Device.to_string d)

module Json = Vqc_obs.Json

type source =
  | Workload of string
  | Inline_qasm of string

type estimate_request = {
  precision : float;
  max_trials : int;
  mc_seed : int;
}

type request = {
  id : Json.t option;
  source : source;
  policy : string;
  epoch : int option;
  estimate : estimate_request option;
}

type control =
  | Advance_epoch
  | Set_epoch of int
  | Flush

type input =
  | Compile of request
  | Control of control

let parse_control json op =
  match op with
  | "advance_epoch" -> Ok (Control Advance_epoch)
  | "flush" -> Ok (Control Flush)
  | "set_epoch" -> begin
    match Option.bind (Json_io.member "epoch" json) Json_io.int_value with
    | Some epoch -> Ok (Control (Set_epoch epoch))
    | None -> Error "set_epoch needs an integer \"epoch\" field"
  end
  | other -> Error (Printf.sprintf "unknown op %S" other)

let parse_request json =
  let workload = Option.bind (Json_io.member "workload" json) Json_io.string_value in
  let qasm = Option.bind (Json_io.member "qasm" json) Json_io.string_value in
  let source =
    match (workload, qasm) with
    | Some _, Some _ -> Error "request has both \"workload\" and \"qasm\""
    | Some name, None -> Ok (Workload name)
    | None, Some text -> Ok (Inline_qasm text)
    | None, None -> Error "request needs a \"workload\" or \"qasm\" field"
  in
  match source with
  | Error _ as e -> e
  | Ok source ->
    let policy =
      match Json_io.member "policy" json with
      | None -> Ok Policies.default_label
      | Some value -> begin
        match Json_io.string_value value with
        | Some label -> Ok label
        | None -> Error "\"policy\" must be a string"
      end
    in
    (match policy with
    | Error _ as e -> e
    | Ok policy ->
      let epoch =
        match Json_io.member "epoch" json with
        | None -> Ok None
        | Some value -> begin
          match Json_io.int_value value with
          | Some e -> Ok (Some e)
          | None -> Error "\"epoch\" must be an integer"
        end
      in
      (match epoch with
      | Error _ as e -> e
      | Ok epoch ->
        (* any of precision / max_trials / mc_seed asks for an adaptive
           PST estimate of the compiled plan alongside it *)
        let number ~name ~conv ~default =
          match Json_io.member name json with
          | None -> Ok (None, default)
          | Some value -> begin
            match conv value with
            | Some v -> Ok (Some v, v)
            | None -> Error (Printf.sprintf "%S must be a number" name)
          end
        in
        let defaults = Vqc_sim.Estimator.default_config in
        let estimate =
          match
            number ~name:"precision" ~conv:Json_io.float_value
              ~default:defaults.Vqc_sim.Estimator.precision
          with
          | Error _ as e -> e
          | Ok (precision_given, precision) -> begin
            match
              number ~name:"max_trials" ~conv:Json_io.int_value
                ~default:defaults.Vqc_sim.Estimator.max_trials
            with
            | Error _ as e -> e
            | Ok (max_trials_given, max_trials) -> begin
              match
                number ~name:"mc_seed" ~conv:Json_io.int_value ~default:1
              with
              | Error _ as e -> e
              | Ok (mc_seed_given, mc_seed) ->
                if
                  precision_given = None && max_trials_given = None
                  && mc_seed_given = None
                then Ok None
                else Ok (Some { precision; max_trials; mc_seed })
            end
          end
        in
        (match estimate with
        | Error _ as e -> e
        | Ok estimate ->
          Ok
            (Compile
               {
                 id = Json_io.member "id" json;
                 source;
                 policy;
                 epoch;
                 estimate;
               }))))

let parse_line line =
  match Json_io.parse line with
  | Error message -> Error ("invalid JSON: " ^ message)
  | Ok (Json.Obj _ as json) -> begin
    match Json_io.member "op" json with
    | Some op_value -> begin
      match Json_io.string_value op_value with
      | Some op -> parse_control json op
      | None -> Error "\"op\" must be a string"
    end
    | None -> parse_request json
  end
  | Ok _ -> Error "request must be a JSON object"

type plan = {
  policy : string;
  epoch : int;
  qubits : int;
  layout : int array;
  swaps : int;
  gates : int;
  depth : int;
  log_reliability : float;
  circuit_fp : string;
  calibration_fp : string;
}

type cache_status =
  | Hit
  | Miss
  | Bypass

let cache_status_to_string = function
  | Hit -> "hit"
  | Miss -> "miss"
  | Bypass -> "bypass"

type response =
  | Compiled of {
      id : Json.t option;
      plan : plan;
      estimate : Vqc_sim.Estimator.estimate option;
      cache : cache_status;
      seconds : float;
    }
  | Rejected of {
      id : Json.t option;
      reason : Admission.reason;
    }
  | Invalid of {
      id : Json.t option;
      diagnostics : Vqc_diag.Diagnostic.t list;
      cache : cache_status;
      seconds : float;
    }
  | Failed of {
      id : Json.t option;
      error : string;
    }
  | Control_ack of {
      op : string;
      epoch : int;
      migration : Epoch.migration option;
    }

let id_field = function None -> [] | Some id -> [ ("id", id) ]

let migration_fields = function
  | None -> []
  | Some m ->
    [
      ("retained", Json.Int m.Epoch.retained);
      ("reverified", Json.Int m.Epoch.reverified);
      ("recompiled", Json.Int m.Epoch.recompiled);
      ("invalidated", Json.Int m.Epoch.invalidated);
    ]

(* The adaptive estimate is a deterministic function of the request
   (seeded), so it renders top-level, not under "nd". *)
let estimate_field estimate =
  match estimate with
  | None -> []
  | Some e ->
    let module E = Vqc_sim.Estimator in
    let interval i = Json.List [ Json.Float i.E.lower; Json.Float i.E.upper ] in
    [
      ( "estimate",
        Json.Obj
          [
            ("trials", Json.Int e.E.trials);
            ("successes", Json.Int e.E.successes);
            ("pst", Json.Float e.E.mean);
            ("wilson", interval e.E.wilson);
            ("bernstein", interval e.E.bernstein);
            ("half_width", Json.Float (E.half_width e));
            ("stop", Json.String (E.stop_reason_to_string e.E.stop));
            ("budget", Json.Int e.E.budget);
            ("saved", Json.Int (E.trials_saved e));
          ] );
    ]

let render response =
  let fields =
    match response with
    | Compiled { id; plan; estimate; cache; seconds } ->
      id_field id
      @ [
          ("status", Json.String "ok");
          ("policy", Json.String plan.policy);
          ("epoch", Json.Int plan.epoch);
          ("qubits", Json.Int plan.qubits);
          ( "layout",
            Json.List
              (Array.to_list (Array.map (fun q -> Json.Int q) plan.layout)) );
          ("swaps", Json.Int plan.swaps);
          ("gates", Json.Int plan.gates);
          ("depth", Json.Int plan.depth);
          ("log_reliability", Json.Float plan.log_reliability);
          ("circuit", Json.String plan.circuit_fp);
          ("calibration", Json.String plan.calibration_fp);
        ]
      @ estimate_field estimate
      @ [
          (* run-varying facts — cache temperature and latency — are
             quarantined exactly like Trace's nd section *)
          ( "nd",
            Json.Obj
              [
                ("cache", Json.String (cache_status_to_string cache));
                ("seconds", Json.Float seconds);
              ] );
        ]
    | Invalid { id; diagnostics; cache; seconds } ->
      id_field id
      @ [
          ("status", Json.String "invalid");
          ( "diagnostics",
            Json.List (List.map Vqc_diag.Diagnostic.to_json diagnostics) );
          ( "nd",
            Json.Obj
              [
                ("cache", Json.String (cache_status_to_string cache));
                ("seconds", Json.Float seconds);
              ] );
        ]
    | Rejected { id; reason } ->
      let (Admission.Queue_full { depth; limit }) = reason in
      id_field id
      @ [
          ("status", Json.String "rejected");
          ("reason", Json.String (Admission.reason_to_string reason));
          ("code", Json.String (Admission.code reason));
          ("depth", Json.Int depth);
          ("limit", Json.Int limit);
        ]
    | Failed { id; error } ->
      id_field id
      @ [ ("status", Json.String "error"); ("error", Json.String error) ]
    | Control_ack { op; epoch; migration } ->
      [
        ("status", Json.String "ok");
        ("op", Json.String op);
        ("epoch", Json.Int epoch);
      ]
      @ migration_fields migration
  in
  Json.to_string (Json.Obj fields)

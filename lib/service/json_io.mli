(** Strict JSON parsing for the wire layer.

    The observability layer deliberately only {e emits} JSON
    ({!Vqc_obs.Json}); the serving layer is the first subsystem that has
    to read it — every [vqc-serve] request arrives as one JSON object on
    one line.  This parser accepts exactly RFC 8259 JSON (no comments,
    no trailing commas, no unquoted keys) and produces the same
    {!Vqc_obs.Json.t} tree the emitter consumes, so a parsed value can
    be echoed back verbatim (request ids round-trip through responses).

    Numbers without [.], [e] or [E] that fit in an OCaml [int] parse as
    [Int]; everything else parses as [Float].  [\u] escapes decode to
    UTF-8 (surrogate pairs included). *)

val parse : string -> (Vqc_obs.Json.t, string) result
(** Parse one complete JSON value.  [Error message] includes the byte
    offset of the failure. *)

(** {1 Accessors} *)

val member : string -> Vqc_obs.Json.t -> Vqc_obs.Json.t option
(** Field lookup on an [Obj]; [None] on a missing key or a non-object. *)

val string_value : Vqc_obs.Json.t -> string option
val int_value : Vqc_obs.Json.t -> int option
(** [int_value] accepts [Int] and integral [Float]s. *)

val float_value : Vqc_obs.Json.t -> float option
(** [float_value] accepts any JSON number. *)

(** Content-addressed LRU plan cache.

    The paper's runtime model recompiles every program at every
    calibration update (Section 6, footnote 2); for a service that is a
    cache problem: identical (circuit, calibration, policy) triples
    within one calibration epoch should compile once.  Keys are the
    canonical fingerprints of {!Fingerprint}, so cache identity follows
    content, never object identity.

    The cache is domain-safe (one internal mutex) and bounded: inserting
    beyond [capacity] evicts the least-recently-used entry.  Lookups,
    insertions, evictions and epoch invalidations are counted in
    {!Vqc_obs.Metrics} under [service.cache.*] — the warm/cold behaviour
    of the serving layer is observable without touching its output.

    Determinism contract: the cache stores {e finished plans} keyed by
    content, so a cache hit returns byte-for-byte the value a fresh
    compile would produce (the compiler is deterministic).  Whether a
    response was served hot or cold is visible only in metrics and in
    the response's non-deterministic ["nd"] section. *)

type key = {
  circuit_fp : string;
  calibration_fp : string;
  policy : string;  (** policy label, e.g. ["vqa+vqm"] *)
}

val key_to_string : key -> string
(** Compact rendering for traces and error messages. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity < 1]. *)

val capacity : 'a t -> int
val length : 'a t -> int

val find : 'a t -> key -> 'a option
(** LRU-touching lookup.  Counts [service.cache.hits] or
    [service.cache.misses]. *)

val insert : 'a t -> key -> 'a -> unit
(** Insert (or refresh) a plan; evicts the least-recently-used entry
    when the cache is full, counting [service.cache.evictions]. *)

val retain : 'a t -> (key -> bool) -> int
(** [retain t keep] drops every entry whose key fails [keep] and
    returns the number dropped, counting [service.cache.invalidated].
    Used by the epoch manager: on epoch advance, plans compiled against
    superseded calibrations are invalidated — the paper's
    recompile-per-calibration regime, realized as cache churn. *)

val clear : 'a t -> unit
(** Drop everything (counted as invalidations). *)

(** Content-addressed LRU plan cache.

    The paper's runtime model recompiles every program at every
    calibration update (Section 6, footnote 2); for a service that is a
    cache problem: identical (circuit, calibration, policy) triples
    within one calibration epoch should compile once.  Keys are the
    canonical fingerprints of {!Fingerprint}, so cache identity follows
    content, never object identity.

    The cache is domain-safe (one internal mutex) and bounded: inserting
    beyond [capacity] evicts the least-recently-used entry.  Lookups,
    insertions, evictions and epoch invalidations are counted in
    {!Vqc_obs.Metrics} under [service.cache.*] — the warm/cold behaviour
    of the serving layer is observable without touching its output.

    Determinism contract: the cache stores {e finished plans} keyed by
    content, so a cache hit returns byte-for-byte the value a fresh
    compile would produce (the compiler is deterministic).  Whether a
    response was served hot or cold is visible only in metrics and in
    the response's non-deterministic ["nd"] section. *)

type key = {
  circuit_fp : string;
  calibration_fp : string;
  policy : string;  (** policy label, e.g. ["vqa+vqm"] *)
}

val key_to_string : key -> string
(** Compact rendering for traces and error messages. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity < 1]. *)

val capacity : 'a t -> int
val length : 'a t -> int

val find : 'a t -> key -> 'a option
(** LRU-touching lookup.  Counts [service.cache.hits] or
    [service.cache.misses]. *)

val mem : 'a t -> key -> bool
(** Presence check that neither touches the LRU order nor counts a
    hit/miss — for background passes that must not disturb the
    request-driven cache temperature. *)

val insert : 'a t -> key -> 'a -> unit
(** Insert (or refresh) a plan; evicts the least-recently-used entry
    when the cache is full, counting [service.cache.evictions]. *)

val retain : 'a t -> (key -> bool) -> int
(** [retain t keep] drops every entry whose key fails [keep] and
    returns the number dropped, counting [service.cache.invalidated]
    for the victims and [service.cache.retained] for the survivors.
    Used by the epoch manager: on epoch advance, plans compiled against
    superseded calibrations are invalidated — the paper's
    recompile-per-calibration regime, realized as cache churn. *)

val clear : 'a t -> unit
(** Drop everything (counted as invalidations). *)

val entries : 'a t -> (key * 'a) list
(** Snapshot of the cache in LRU order (most recent first).  The order
    is a deterministic function of the preceding request stream, unlike
    a hash-table fold — selective invalidation walks this list so its
    scoring/recompile order is reproducible. *)

type 'a migration = {
  kept : int;  (** entries that survived, re-keyed or not *)
  dropped : (key * 'a) list;  (** evicted entries, in LRU order *)
}

val migrate : 'a t -> decide:(key -> 'a -> key option) -> 'a migration
(** Selective epoch migration: walk every entry in LRU order and apply
    [decide].  [Some key'] keeps the entry (re-keying it in place when
    [key' <> key]; if [key'] is already occupied the stale duplicate is
    dropped but still counted as kept, since the logical plan survives);
    [None] evicts it.  Counts [service.cache.retained] /
    [service.cache.invalidated] like {!retain}.

    [decide] runs under the cache lock: it must not call back into the
    cache (the mutex is not reentrant). *)

(** Content-addressed, lock-striped LRU plan cache.

    The paper's runtime model recompiles every program at every
    calibration update (Section 6, footnote 2); for a service that is a
    cache problem: identical (circuit, calibration, policy) triples
    within one calibration epoch should compile once.  Keys are the
    canonical fingerprints of {!Fingerprint}, so cache identity follows
    content, never object identity.

    The cache is domain-safe and bounded.  Internally it is split into
    [shards] lock-striped segments; a key's segment is a deterministic
    FNV-1a hash of its fingerprints, so concurrent sessions touching
    different keys rarely contend on the same mutex.  With [shards = 1]
    (the default) the cache is byte-identical in behaviour to the
    pre-sharding single-mutex implementation: one segment, one LRU
    list, same eviction order — the service goldens enforce this.
    Each segment's capacity is [capacity / shards] (the first
    [capacity mod shards] segments get one extra slot), so eviction is
    per-segment LRU, still bounded by [capacity] overall.

    Lookups, insertions, evictions and epoch invalidations are counted
    in {!Vqc_obs.Metrics} under [<metrics_prefix>.*] (default
    [service.cache.*]); counters are aggregated across segments — the
    warm/cold behaviour of the serving layer is observable without
    touching its output.

    Determinism contract: the cache stores {e finished plans} keyed by
    content, so a cache hit returns byte-for-byte the value a fresh
    compile would produce (the compiler is deterministic).  Whether a
    response was served hot or cold is visible only in metrics and in
    the response's non-deterministic ["nd"] section. *)

type key = {
  circuit_fp : string;
  calibration_fp : string;
  policy : string;  (** policy label, e.g. ["vqa+vqm"] *)
}

val key_to_string : key -> string
(** Compact rendering for traces and error messages. *)

type 'a t

val create : ?shards:int -> ?metrics_prefix:string -> capacity:int -> unit -> 'a t
(** [create ~capacity ()] — [shards] defaults to [1] (single-segment,
    byte-identical to the historical cache); [metrics_prefix] defaults
    to ["service.cache"].  Instances sharing a prefix share counters
    (the registry finds-or-creates), so their traffic sums naturally.
    @raise Invalid_argument if [capacity < 1], [shards < 1], or
    [shards > capacity]. *)

val capacity : 'a t -> int
val shards : 'a t -> int
val length : 'a t -> int

val segment_index : 'a t -> key -> int
(** The segment a key lands in: a pure deterministic function of the
    key's fingerprints and the segment count (FNV-1a, never
    [Hashtbl.hash]).  Exposed for the sharding equivalence tests. *)

val find : 'a t -> key -> 'a option
(** LRU-touching lookup.  Counts [<prefix>.hits] or [<prefix>.misses]. *)

val mem : 'a t -> key -> bool
(** Presence check that neither touches the LRU order nor counts a
    hit/miss — for background passes that must not disturb the
    request-driven cache temperature. *)

val insert : 'a t -> key -> 'a -> unit
(** Insert (or refresh) a plan; evicts the least-recently-used entry of
    the key's segment when that segment is full, counting
    [<prefix>.evictions]. *)

val retain : 'a t -> (key -> bool) -> int
(** [retain t keep] drops every entry whose key fails [keep] and
    returns the number dropped, counting [<prefix>.invalidated]
    for the victims and [<prefix>.retained] for the survivors.
    Used by the epoch manager: on epoch advance, plans compiled against
    superseded calibrations are invalidated — the paper's
    recompile-per-calibration regime, realized as cache churn. *)

val clear : 'a t -> unit
(** Drop everything (counted as invalidations). *)

val entries : 'a t -> (key * 'a) list
(** Snapshot in per-segment LRU order (most recent first within each
    segment, segments in index order).  The order is a deterministic
    function of the preceding request stream, unlike a hash-table fold
    — selective invalidation walks this list so its scoring/recompile
    order is reproducible.  With [shards = 1] this is exactly the
    historical whole-cache LRU order. *)

type 'a migration = {
  kept : int;  (** entries that survived, re-keyed or not *)
  dropped : (key * 'a) list;
      (** evicted entries, in {!entries} order *)
}

val migrate : 'a t -> decide:(key -> 'a -> key option) -> 'a migration
(** Selective epoch migration: walk every entry in {!entries} order and
    apply [decide].  [Some key'] keeps the entry (re-keying it, possibly
    into a different segment, when [key' <> key]; if [key'] is already
    occupied the stale duplicate is dropped but still counted as kept,
    since the logical plan survives); [None] evicts it.  Counts
    [<prefix>.retained] / [<prefix>.invalidated] like {!retain}.

    [decide] runs under the owning segment's lock: it must not call
    back into the cache (the mutexes are not reentrant).  Cross-segment
    re-keys are applied after the source segment's lock is released, so
    no two segment locks are ever held at once. *)

module Metrics = Vqc_obs.Metrics

type key = {
  circuit_fp : string;
  calibration_fp : string;
  policy : string;
}

let key_to_string k =
  Printf.sprintf "%s/%s/%s" k.circuit_fp k.calibration_fp k.policy

(* Per-instance metric handles: the session-facing cache keeps today's
   service.cache.* names; other instances (e.g. the shared cross-client
   plan store of the TCP server) register their own family so their
   temperature is observable separately. *)
type metrics = {
  hits : Metrics.counter;
  misses : Metrics.counter;
  evictions : Metrics.counter;
  invalidated : Metrics.counter;
  retained : Metrics.counter;
  entries_gauge : Metrics.gauge;
}

let default_metrics_prefix = "service.cache"

let metrics_for prefix =
  {
    hits = Metrics.counter (prefix ^ ".hits");
    misses = Metrics.counter (prefix ^ ".misses");
    evictions = Metrics.counter (prefix ^ ".evictions");
    invalidated = Metrics.counter (prefix ^ ".invalidated");
    retained = Metrics.counter (prefix ^ ".retained");
    entries_gauge = Metrics.gauge (prefix ^ ".entries");
  }

(* Classic intrusive doubly-linked LRU list over a hash table: [head]
   is the most recently used entry, [tail] the eviction candidate. *)
type 'a node = {
  mutable node_key : key;  (** mutable so {!migrate} can re-key in place *)
  mutable value : 'a;
  mutable prev : 'a node option;  (** toward head (more recent) *)
  mutable next : 'a node option;  (** toward tail (less recent) *)
}

(* One lock-striped segment: exactly the single cache of old, so a
   1-segment instance behaves byte-identically to the pre-sharding
   implementation. *)
type 'a segment = {
  seg_capacity : int;
  table : (key, 'a node) Hashtbl.t;
  mutable head : 'a node option;
  mutable tail : 'a node option;
  lock : Mutex.t;
}

type 'a t = {
  cache_capacity : int;
  segments : 'a segment array;
  m : metrics;
}

(* FNV-1a over the rendered key, reduced mod the segment count: a pure
   function of the fingerprints, so the segment a key lands in is
   deterministic across runs and processes (never Hashtbl.hash, whose
   contract does not promise stability). *)
let fnv_offset_basis = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let segment_index t key =
  let n = Array.length t.segments in
  if n = 1 then 0
  else begin
    let digest = ref fnv_offset_basis in
    let feed s =
      String.iter
        (fun c ->
          digest := Int64.logxor !digest (Int64.of_int (Char.code c));
          digest := Int64.mul !digest fnv_prime)
        s
    in
    feed key.circuit_fp;
    feed key.calibration_fp;
    feed key.policy;
    Int64.to_int (Int64.unsigned_rem !digest (Int64.of_int n))
  end

let segment_of t key = t.segments.(segment_index t key)

let make_segment seg_capacity =
  {
    seg_capacity;
    table = Hashtbl.create (min (max seg_capacity 1) 64);
    head = None;
    tail = None;
    lock = Mutex.create ();
  }

let create ?(shards = 1) ?(metrics_prefix = default_metrics_prefix) ~capacity ()
    =
  if capacity < 1 then
    invalid_arg
      (Printf.sprintf "Plan_cache.create: capacity must be >= 1 (got %d)"
         capacity);
  if shards < 1 then
    invalid_arg
      (Printf.sprintf "Plan_cache.create: shards must be >= 1 (got %d)" shards);
  if shards > capacity then
    invalid_arg
      (Printf.sprintf
         "Plan_cache.create: shards (%d) must not exceed capacity (%d)" shards
         capacity);
  (* spread the capacity as evenly as possible; the first
     [capacity mod shards] segments hold one extra entry *)
  let base = capacity / shards and extra = capacity mod shards in
  {
    cache_capacity = capacity;
    segments =
      Array.init shards (fun i ->
          make_segment (base + if i < extra then 1 else 0));
    m = metrics_for metrics_prefix;
  }

let capacity t = t.cache_capacity
let shards t = Array.length t.segments

let locked seg f =
  Mutex.lock seg.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock seg.lock) f

let length t =
  Array.fold_left
    (fun acc seg -> acc + locked seg (fun () -> Hashtbl.length seg.table))
    0 t.segments

let unlink seg node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> seg.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> seg.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front seg node =
  node.prev <- None;
  node.next <- seg.head;
  (match seg.head with Some h -> h.prev <- Some node | None -> ());
  seg.head <- Some node;
  if seg.tail = None then seg.tail <- Some node

let set_entries_gauge t =
  Metrics.set t.m.entries_gauge (float_of_int (length t))

let find t key =
  let seg = segment_of t key in
  locked seg (fun () ->
      match Hashtbl.find_opt seg.table key with
      | Some node ->
        Metrics.incr t.m.hits;
        unlink seg node;
        push_front seg node;
        Some node.value
      | None ->
        Metrics.incr t.m.misses;
        None)

let evict_tail t seg =
  match seg.tail with
  | None -> ()
  | Some node ->
    unlink seg node;
    Hashtbl.remove seg.table node.node_key;
    Metrics.incr t.m.evictions

(* Core insertion; the caller must hold [seg]'s lock (the mutexes are
   not reentrant). *)
let insert_unlocked t seg key value =
  match Hashtbl.find_opt seg.table key with
  | Some node ->
    node.value <- value;
    unlink seg node;
    push_front seg node
  | None ->
    if Hashtbl.length seg.table >= seg.seg_capacity then evict_tail t seg;
    let node = { node_key = key; value; prev = None; next = None } in
    Hashtbl.replace seg.table key node;
    push_front seg node

let insert t key value =
  let seg = segment_of t key in
  locked seg (fun () -> insert_unlocked t seg key value);
  set_entries_gauge t

let retain t keep =
  let dropped =
    Array.fold_left
      (fun acc seg ->
        locked seg (fun () ->
            let victims =
              Hashtbl.fold
                (fun key node vs -> if keep key then vs else node :: vs)
                seg.table []
            in
            List.iter
              (fun node ->
                unlink seg node;
                Hashtbl.remove seg.table node.node_key)
              victims;
            acc + List.length victims))
      0 t.segments
  in
  Metrics.add t.m.invalidated dropped;
  Metrics.add t.m.retained (length t);
  set_entries_gauge t;
  dropped

let clear t = ignore (retain t (fun _ -> false))

let mem t key =
  let seg = segment_of t key in
  locked seg (fun () -> Hashtbl.mem seg.table key)

(* Walk one segment's LRU list head -> tail: most recent first, a
   deterministic function of the preceding request stream (unlike
   Hashtbl fold order, which depends on bucket layout). *)
let nodes_in_lru_order seg =
  let rec walk acc = function
    | None -> List.rev acc
    | Some node -> walk (node :: acc) node.next
  in
  walk [] seg.head

let entries t =
  Array.to_list t.segments
  |> List.concat_map (fun seg ->
         locked seg (fun () ->
             List.map
               (fun node -> (node.node_key, node.value))
               (nodes_in_lru_order seg)))

type 'a migration = {
  kept : int;
  dropped : (key * 'a) list;
}

let migrate t ~decide =
  let kept = ref 0 in
  let dropped = ref [] in
  (* a re-key can move an entry to a different segment; those moves are
     collected here and applied after the owning segment's lock is
     released, so no two segment locks are ever held at once *)
  let emigrants = ref [] in
  Array.iteri
    (fun seg_index seg ->
      locked seg (fun () ->
          List.iter
            (fun node ->
              match decide node.node_key node.value with
              | Some key when key = node.node_key -> incr kept
              | Some key when segment_index t key = seg_index ->
                if Hashtbl.mem seg.table key then begin
                  (* the target key already holds a (fresher) plan: the
                     logical entry survives, this stale copy goes *)
                  unlink seg node;
                  Hashtbl.remove seg.table node.node_key;
                  incr kept
                end
                else begin
                  Hashtbl.remove seg.table node.node_key;
                  node.node_key <- key;
                  Hashtbl.replace seg.table key node;
                  incr kept
                end
              | Some key ->
                unlink seg node;
                Hashtbl.remove seg.table node.node_key;
                emigrants := (key, node.value) :: !emigrants
              | None ->
                unlink seg node;
                Hashtbl.remove seg.table node.node_key;
                dropped := (node.node_key, node.value) :: !dropped)
            (nodes_in_lru_order seg)))
    t.segments;
  List.iter
    (fun (key, value) ->
      let seg = segment_of t key in
      let survives =
        locked seg (fun () ->
            if Hashtbl.mem seg.table key then false
            else begin
              insert_unlocked t seg key value;
              true
            end)
      in
      (* occupied target: the logical plan survives as the fresher copy *)
      ignore survives;
      incr kept)
    (List.rev !emigrants);
  let dropped = List.rev !dropped in
  Metrics.add t.m.invalidated (List.length dropped);
  Metrics.add t.m.retained !kept;
  set_entries_gauge t;
  { kept = !kept; dropped }

module Metrics = Vqc_obs.Metrics

type key = {
  circuit_fp : string;
  calibration_fp : string;
  policy : string;
}

let key_to_string k =
  Printf.sprintf "%s/%s/%s" k.circuit_fp k.calibration_fp k.policy

let hits = Metrics.counter "service.cache.hits"
let misses = Metrics.counter "service.cache.misses"
let evictions = Metrics.counter "service.cache.evictions"
let invalidated = Metrics.counter "service.cache.invalidated"
let retained = Metrics.counter "service.cache.retained"
let entries_gauge = Metrics.gauge "service.cache.entries"

(* Classic intrusive doubly-linked LRU list over a hash table: [head]
   is the most recently used entry, [tail] the eviction candidate. *)
type 'a node = {
  mutable node_key : key;  (** mutable so {!migrate} can re-key in place *)
  mutable value : 'a;
  mutable prev : 'a node option;  (** toward head (more recent) *)
  mutable next : 'a node option;  (** toward tail (less recent) *)
}

type 'a t = {
  cache_capacity : int;
  table : (key, 'a node) Hashtbl.t;
  mutable head : 'a node option;
  mutable tail : 'a node option;
  lock : Mutex.t;
}

let create ~capacity =
  if capacity < 1 then
    invalid_arg
      (Printf.sprintf "Plan_cache.create: capacity must be >= 1 (got %d)"
         capacity);
  {
    cache_capacity = capacity;
    table = Hashtbl.create (min capacity 64);
    head = None;
    tail = None;
    lock = Mutex.create ();
  }

let capacity t = t.cache_capacity

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let length t = locked t (fun () -> Hashtbl.length t.table)

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.prev <- None;
  node.next <- t.head;
  (match t.head with Some h -> h.prev <- Some node | None -> ());
  t.head <- Some node;
  if t.tail = None then t.tail <- Some node

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some node ->
        Metrics.incr hits;
        unlink t node;
        push_front t node;
        Some node.value
      | None ->
        Metrics.incr misses;
        None)

let evict_tail t =
  match t.tail with
  | None -> ()
  | Some node ->
    unlink t node;
    Hashtbl.remove t.table node.node_key;
    Metrics.incr evictions

let insert t key value =
  locked t (fun () ->
      (match Hashtbl.find_opt t.table key with
      | Some node ->
        node.value <- value;
        unlink t node;
        push_front t node
      | None ->
        if Hashtbl.length t.table >= t.cache_capacity then evict_tail t;
        let node = { node_key = key; value; prev = None; next = None } in
        Hashtbl.replace t.table key node;
        push_front t node);
      Metrics.set entries_gauge (float_of_int (Hashtbl.length t.table)))

let retain t keep =
  locked t (fun () ->
      let victims =
        Hashtbl.fold
          (fun key node acc -> if keep key then acc else node :: acc)
          t.table []
      in
      List.iter
        (fun node ->
          unlink t node;
          Hashtbl.remove t.table node.node_key)
        victims;
      let dropped = List.length victims in
      Metrics.add invalidated dropped;
      Metrics.add retained (Hashtbl.length t.table);
      Metrics.set entries_gauge (float_of_int (Hashtbl.length t.table));
      dropped)

let clear t = ignore (retain t (fun _ -> false))

let mem t key = locked t (fun () -> Hashtbl.mem t.table key)

(* Walk the LRU list head -> tail: most recent first, a deterministic
   function of the preceding request stream (unlike Hashtbl fold order,
   which depends on bucket layout). *)
let nodes_in_lru_order t =
  let rec walk acc = function
    | None -> List.rev acc
    | Some node -> walk (node :: acc) node.next
  in
  walk [] t.head

let entries t =
  locked t (fun () ->
      List.map (fun node -> (node.node_key, node.value)) (nodes_in_lru_order t))

type 'a migration = {
  kept : int;
  dropped : (key * 'a) list;
}

let migrate t ~decide =
  locked t (fun () ->
      let kept = ref 0 in
      let dropped = ref [] in
      List.iter
        (fun node ->
          match decide node.node_key node.value with
          | Some key when key = node.node_key -> incr kept
          | Some key when Hashtbl.mem t.table key ->
            (* the target key already holds a (fresher) plan: the logical
               entry survives, this stale copy goes *)
            unlink t node;
            Hashtbl.remove t.table node.node_key;
            incr kept
          | Some key ->
            Hashtbl.remove t.table node.node_key;
            node.node_key <- key;
            Hashtbl.replace t.table key node;
            incr kept
          | None ->
            unlink t node;
            Hashtbl.remove t.table node.node_key;
            dropped := (node.node_key, node.value) :: !dropped)
        (nodes_in_lru_order t);
      let dropped = List.rev !dropped in
      Metrics.add invalidated (List.length dropped);
      Metrics.add retained !kept;
      Metrics.set entries_gauge (float_of_int (Hashtbl.length t.table));
      { kept = !kept; dropped })

(** Calibration epoch manager.

    The paper's runtime model (Section 6, footnote 2) recompiles every
    program whenever the machine publishes a new calibration — roughly
    twice a day on the IBM machines of Section 3.  The service models
    that cadence as a rotation over a fixed set of {e epochs}, each a
    full {!Vqc_device.Device.t} (same topology, that epoch's
    calibration): requests compile against the current epoch unless they
    pin one explicitly, and {!advance} rotates to the next epoch,
    invalidating every cached plan that was compiled against a
    superseded calibration — so the recompile-per-calibration regime of
    the paper shows up as measurable cache churn
    ([service.cache.invalidated]) rather than as an opaque cost.

    Epoch sources: a synthetic multi-day {!Vqc_device.History} (the
    52-day model of paper Figure 8) or explicit devices, e.g. parsed
    from IBM calibration CSVs via {!Vqc_device.Calibration_io}. *)

type t

val of_devices : Vqc_device.Device.t list -> t
(** One epoch per device, in list order, starting at epoch 0.
    @raise Invalid_argument on an empty list. *)

val of_history :
  ?gate_times:Vqc_device.Device.gate_times ->
  name:string ->
  coupling:(int * int) list ->
  Vqc_device.History.t ->
  t
(** One epoch per history day over a fixed topology. *)

val fork : t -> t
(** An independent cursor over the {e same} device rotation: the fork
    starts at the parent's current epoch and advances on its own.  The
    TCP server forks the boot epoch manager per session, so a client's
    epoch-advance moves only that client's pin — a prerequisite of the
    per-client determinism contract. *)

val epochs : t -> int
val current : t -> int

val device : t -> int -> Vqc_device.Device.t
(** @raise Invalid_argument when the epoch is out of range. *)

val fingerprint : t -> int -> string
(** Calibration fingerprint of an epoch (precomputed at construction).
    @raise Invalid_argument when the epoch is out of range. *)

val current_device : t -> Vqc_device.Device.t
val current_fingerprint : t -> string

val find_fingerprint : t -> string -> int option
(** Epoch index whose calibration fingerprint matches, if any — how a
    drift migration recovers the compile-time device of a cached plan
    from its cache key. *)

type migration = {
  retained : int;  (** plans kept in the cache across the move *)
  reverified : int;
      (** retention candidates replayed through the static checker *)
  recompiled : int;  (** plans recompiled in the background *)
  invalidated : int;  (** plans dropped from the cache *)
}

val no_migration : migration

type 'a migrate = previous:int -> current:int -> 'a Plan_cache.t -> migration
(** Custom invalidation seam: called with the epoch indices of the move
    and the cache, returns the migration tally to report.  The drift
    pipeline ({!Vqc_drift}) plugs in here; when absent, the move takes
    the wholesale path below. *)

val advance : ?migrate:'a migrate -> t -> 'a Plan_cache.t option -> int * migration
(** Rotate to the next epoch (wrapping) and, when a cache is supplied,
    run the invalidation path: [migrate] when given, otherwise the
    wholesale flush that drops every plan not keyed by the new epoch's
    calibration fingerprint (the paper's recompile-per-calibration
    regime).  Returns the new epoch index and the migration tally.
    Counts [service.epoch.advances] and sets the
    [service.epoch.current] gauge.  With a single epoch the rotation
    wraps to itself and the wholesale path invalidates nothing: every
    plan is keyed by the still-live calibration. *)

val set : ?migrate:'a migrate -> t -> 'a Plan_cache.t option -> int -> migration
(** Jump to a specific epoch (same invalidation rule as {!advance}).
    @raise Invalid_argument when the epoch is out of range. *)

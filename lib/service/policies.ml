module Compiler = Vqc_mapper.Compiler

type entry = {
  label : string;
  description : string;
  policy : Compiler.policy;
}

let of_policy description (policy : Compiler.policy) =
  { label = policy.Compiler.label; description; policy }

let all =
  [
    of_policy "locality allocation + SWAP-minimizing A* (variation unaware)"
      Compiler.baseline;
    of_policy "reliability-cost routing (paper Section 5)" Compiler.vqm;
    of_policy "variation-aware allocation and routing (paper Section 6)"
      Compiler.vqa_vqm;
    of_policy "VQA+VQM with the readout-aware placement candidate"
      Compiler.vqa_vqm_readout;
    of_policy "VQM with bridged CNOT execution allowed" Compiler.vqm_bridge;
    of_policy "locality allocation + SABRE hop routing (variation unaware)"
      Compiler.sabre;
    of_policy "VQA allocation + reliability-weighted SABRE"
      Compiler.noise_sabre;
  ]

let find label = List.find_opt (fun e -> e.label = label) all
let names () = List.map (fun e -> e.label) all
let default_label = Compiler.vqa_vqm.Compiler.label

(** Content fingerprints for plan-cache keys.

    The plan cache is addressed by {e what is being compiled against
    what}: a circuit fingerprint, a calibration fingerprint, and a
    policy label.  Fingerprints are FNV-1a 64-bit digests of canonical
    serializations, rendered as 16 lowercase hex digits — stable across
    runs, processes, and machines (the digest depends only on the bytes,
    never on pointer identity or hash-table seeds), which is what lets
    [vqc-serve] responses carry them as deterministic fields.

    FNV-1a is not collision-resistant in an adversarial sense; it is a
    cache key, not a security boundary.  Two circuits that collide would
    share a cache line and get each other's plan — at 64 bits that needs
    ~2^32 distinct entries in one cache before it is likely, far beyond
    any bounded cache this service runs. *)

val of_string : string -> string
(** FNV-1a 64 over the raw bytes, as 16 lowercase hex digits. *)

val circuit : Vqc_circuit.Circuit.t -> string
(** Digest of the canonical OpenQASM rendering ({!Vqc_circuit.Qasm}),
    so structurally equal circuits fingerprint identically however they
    were built (catalog entry, inline QASM, programmatic). *)

val calibration : Vqc_device.Calibration.t -> string
(** Digest of {!Vqc_device.Calibration.to_string} (qubit records in
    index order, links sorted) — one fingerprint per calibration epoch. *)

val device : Vqc_device.Device.t -> string
(** Digest of the full device serialization (name, gate times,
    calibration) — distinguishes epochs even across devices that share
    a calibration table. *)

module Json = Vqc_obs.Json

exception Invalid of string

let utf8_add buffer code =
  if code < 0x80 then Buffer.add_char buffer (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buffer (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buffer (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char buffer (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buffer (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buffer (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buffer (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char buffer (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char buffer (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buffer (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_exn text =
  let pos = ref 0 in
  let len = String.length text in
  let fail message = raise (Invalid (Printf.sprintf "%s at %d" message !pos)) in
  let peek () = if !pos < len then Some text.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let skip_ws () =
    while
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') -> true
      | _ -> false
    do
      advance ()
    done
  in
  let literal word value =
    if !pos + String.length word <= len
       && String.sub text !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let hex4 () =
    if !pos + 4 > len then fail "truncated \\u escape";
    let value = ref 0 in
    for _ = 1 to 4 do
      let digit =
        match peek () with
        | Some ('0' .. '9' as c) -> Char.code c - Char.code '0'
        | Some ('a' .. 'f' as c) -> Char.code c - Char.code 'a' + 10
        | Some ('A' .. 'F' as c) -> Char.code c - Char.code 'A' + 10
        | _ -> fail "bad \\u escape"
      in
      value := (!value lsl 4) lor digit;
      advance ()
    done;
    !value
  in
  let parse_string () =
    expect '"';
    let buffer = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' ->
          Buffer.add_char buffer '"';
          advance ()
        | Some '\\' ->
          Buffer.add_char buffer '\\';
          advance ()
        | Some '/' ->
          Buffer.add_char buffer '/';
          advance ()
        | Some 'n' ->
          Buffer.add_char buffer '\n';
          advance ()
        | Some 'r' ->
          Buffer.add_char buffer '\r';
          advance ()
        | Some 't' ->
          Buffer.add_char buffer '\t';
          advance ()
        | Some 'b' ->
          Buffer.add_char buffer '\b';
          advance ()
        | Some 'f' ->
          Buffer.add_char buffer '\012';
          advance ()
        | Some 'u' ->
          advance ();
          let code = hex4 () in
          if code >= 0xD800 && code <= 0xDBFF then begin
            (* high surrogate: the low half must follow immediately *)
            if not
                 (!pos + 1 < len
                 && text.[!pos] = '\\'
                 && text.[!pos + 1] = 'u')
            then fail "unpaired surrogate";
            pos := !pos + 2;
            let low = hex4 () in
            if low < 0xDC00 || low > 0xDFFF then fail "unpaired surrogate";
            utf8_add buffer
              (0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00))
          end
          else if code >= 0xDC00 && code <= 0xDFFF then
            fail "unpaired surrogate"
          else utf8_add buffer code
        | _ -> fail "bad escape");
        loop ()
      | Some c when Char.code c < 0x20 -> fail "raw control char in string"
      | Some c ->
        Buffer.add_char buffer c;
        advance ();
        loop ()
    in
    loop ();
    Buffer.contents buffer
  in
  let parse_number () =
    let start = !pos in
    let number_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while match peek () with Some c -> number_char c | None -> false do
      advance ()
    done;
    let s = String.sub text start (!pos - start) in
    let integral =
      String.for_all (function '.' | 'e' | 'E' -> false | _ -> true) s
    in
    if integral then
      match int_of_string_opt s with
      | Some i -> Json.Int i
      | None -> fail ("bad number " ^ s)
    else
      match float_of_string_opt s with
      | Some f -> Json.Float f
      | None -> fail ("bad number " ^ s)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Json.Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let value = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, value) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((key, value) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Json.Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Json.List []
      end
      else begin
        let rec items acc =
          let value = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (value :: acc)
          | Some ']' ->
            advance ();
            List.rev (value :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        Json.List (items [])
      end
    | Some '"' -> Json.String (parse_string ())
    | Some 't' -> literal "true" (Json.Bool true)
    | Some 'f' -> literal "false" (Json.Bool false)
    | Some 'n' -> literal "null" Json.Null
    | Some _ -> parse_number ()
  in
  let value = parse_value () in
  skip_ws ();
  if !pos <> len then fail "trailing garbage";
  value

let parse text =
  match parse_exn text with
  | value -> Ok value
  | exception Invalid message -> Error message

let member key json =
  match json with
  | Json.Obj fields -> List.assoc_opt key fields
  | _ -> None

let string_value = function Json.String s -> Some s | _ -> None

let int_value = function
  | Json.Int i -> Some i
  | Json.Float f when Float.is_integer f && Float.abs f <= 2. ** 52. ->
    Some (int_of_float f)
  | _ -> None

let float_value = function
  | Json.Float f -> Some f
  | Json.Int i -> Some (float_of_int i)
  | _ -> None

module Device = Vqc_device.Device
module History = Vqc_device.History
module Metrics = Vqc_obs.Metrics
module Trace = Vqc_obs.Trace

let advances = Metrics.counter "service.epoch.advances"
let current_gauge = Metrics.gauge "service.epoch.current"

type t = {
  devices : Device.t array;
  fingerprints : string array;
  mutable current : int;
  lock : Mutex.t;
}

let of_devices devices =
  if devices = [] then invalid_arg "Epoch.of_devices: no devices";
  let devices = Array.of_list devices in
  {
    devices;
    fingerprints = Array.map (fun d -> Fingerprint.calibration (Device.calibration d)) devices;
    current = 0;
    lock = Mutex.create ();
  }

let of_history ?gate_times ~name ~coupling history =
  of_devices
    (List.map
       (fun calibration -> Device.make ?gate_times ~name ~coupling calibration)
       (History.all history))

let epochs t = Array.length t.devices

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let current t = locked t (fun () -> t.current)

let check t epoch =
  if epoch < 0 || epoch >= Array.length t.devices then
    invalid_arg
      (Printf.sprintf "epoch %d out of range (service has %d epochs)" epoch
         (Array.length t.devices))

let device t epoch =
  check t epoch;
  t.devices.(epoch)

let fingerprint t epoch =
  check t epoch;
  t.fingerprints.(epoch)

let current_device t = device t (current t)
let current_fingerprint t = fingerprint t (current t)

(* Invalidation reproduces the paper's recompile-per-calibration
   regime: after a calibration update only plans for the live
   calibration survive; anything pinned to a superseded epoch will
   recompile on its next request. *)
let move t cache epoch =
  let previous = locked t (fun () ->
      let previous = t.current in
      t.current <- epoch;
      previous)
  in
  Metrics.incr advances;
  Metrics.set current_gauge (float_of_int epoch);
  let live = t.fingerprints.(epoch) in
  let dropped =
    match cache with
    | Some cache ->
      Plan_cache.retain cache (fun key ->
          key.Plan_cache.calibration_fp = live)
    | None -> 0
  in
  if Trace.enabled () then
    Trace.emit ~source:"service" ~event:"epoch_advance"
      [
        ("from", Vqc_obs.Json.Int previous);
        ("to", Vqc_obs.Json.Int epoch);
        ("invalidated", Vqc_obs.Json.Int dropped);
      ]

let advance t cache =
  let next = (current t + 1) mod epochs t in
  move t cache next;
  next

let set t cache epoch =
  check t epoch;
  move t cache epoch

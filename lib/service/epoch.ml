module Device = Vqc_device.Device
module History = Vqc_device.History
module Metrics = Vqc_obs.Metrics
module Trace = Vqc_obs.Trace

let advances = Metrics.counter "service.epoch.advances"
let current_gauge = Metrics.gauge "service.epoch.current"

type t = {
  devices : Device.t array;
  fingerprints : string array;
  mutable current : int;
  lock : Mutex.t;
}

let of_devices devices =
  if devices = [] then invalid_arg "Epoch.of_devices: no devices";
  let devices = Array.of_list devices in
  {
    devices;
    fingerprints = Array.map (fun d -> Fingerprint.calibration (Device.calibration d)) devices;
    current = 0;
    lock = Mutex.create ();
  }

let of_history ?gate_times ~name ~coupling history =
  of_devices
    (List.map
       (fun calibration -> Device.make ?gate_times ~name ~coupling calibration)
       (History.all history))

let epochs t = Array.length t.devices

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let current t = locked t (fun () -> t.current)

(* A fork shares the (immutable) device rotation but owns its cursor:
   sessions of the TCP server each fork the boot epoch manager so one
   client's epoch-advance cannot move another client's pin. *)
let fork t =
  {
    devices = t.devices;
    fingerprints = t.fingerprints;
    current = current t;
    lock = Mutex.create ();
  }

let check t epoch =
  if epoch < 0 || epoch >= Array.length t.devices then
    invalid_arg
      (Printf.sprintf "epoch %d out of range (service has %d epochs)" epoch
         (Array.length t.devices))

let device t epoch =
  check t epoch;
  t.devices.(epoch)

let fingerprint t epoch =
  check t epoch;
  t.fingerprints.(epoch)

let current_device t = device t (current t)
let current_fingerprint t = fingerprint t (current t)

let find_fingerprint t fp =
  let rec scan i =
    if i >= Array.length t.fingerprints then None
    else if String.equal t.fingerprints.(i) fp then Some i
    else scan (i + 1)
  in
  scan 0

type migration = {
  retained : int;
  reverified : int;
  recompiled : int;
  invalidated : int;
}

let no_migration =
  { retained = 0; reverified = 0; recompiled = 0; invalidated = 0 }

type 'a migrate = previous:int -> current:int -> 'a Plan_cache.t -> migration

(* Wholesale invalidation reproduces the paper's
   recompile-per-calibration regime: after a calibration update only
   plans for the live calibration survive; anything pinned to a
   superseded epoch will recompile on its next request. *)
let flush_superseded t cache epoch =
  let live = t.fingerprints.(epoch) in
  let dropped =
    Plan_cache.retain cache (fun key -> key.Plan_cache.calibration_fp = live)
  in
  {
    no_migration with
    retained = Plan_cache.length cache;
    invalidated = dropped;
  }

let move ?migrate t cache epoch =
  let previous =
    locked t (fun () ->
        let previous = t.current in
        t.current <- epoch;
        previous)
  in
  Metrics.incr advances;
  Metrics.set current_gauge (float_of_int epoch);
  let migration =
    match cache with
    | None -> no_migration
    | Some cache -> (
      match migrate with
      | Some migrate -> migrate ~previous ~current:epoch cache
      | None -> flush_superseded t cache epoch)
  in
  if Trace.enabled () then
    Trace.emit ~source:"service" ~event:"epoch_advance"
      [
        ("from", Vqc_obs.Json.Int previous);
        ("to", Vqc_obs.Json.Int epoch);
        ("retained", Vqc_obs.Json.Int migration.retained);
        ("reverified", Vqc_obs.Json.Int migration.reverified);
        ("recompiled", Vqc_obs.Json.Int migration.recompiled);
        ("invalidated", Vqc_obs.Json.Int migration.invalidated);
      ];
  migration

let advance ?migrate t cache =
  let next = (current t + 1) mod epochs t in
  let migration = move ?migrate t cache next in
  (next, migration)

let set ?migrate t cache epoch =
  check t epoch;
  move ?migrate t cache epoch

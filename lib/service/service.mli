(** Compilation-as-a-service: the orchestrator behind [vqc-serve].

    A service owns four pieces: a calibration {!Epoch} rotation, a
    bounded {!Admission} queue, a content-addressed {!Plan_cache}, and a
    persistent {!Vqc_engine.Pool} of worker domains.  Requests are
    {!submit}ted (possibly rejected — backpressure is typed, never an
    exception) and processed in admission order by {!flush}:

    + each request resolves to (circuit, device, policy) — catalog
      lookup or inline-QASM parse, policy-label lookup, epoch pin;
    + the plan cache is consulted {e serially, in request order}, so
      hit/miss patterns are a pure function of the request stream;
    + distinct missing keys compile {e in parallel} on the pool
      (duplicates within a batch compile once);
    + finished plans enter the cache in request order and responses are
      assembled in request order.

    Determinism contract: every response's deterministic fields are a
    pure function of (request stream, service configuration, epoch
    rotation).  Worker count and cache temperature can change only the
    ["nd"] section of a response — asserted by the test suite across
    [jobs 1/4] and cache on/off. *)

type config = {
  jobs : int;  (** worker domains for batch compilation (>= 1) *)
  cache_capacity : int;
  cache_enabled : bool;
  cache_shards : int;
      (** lock stripes of the plan cache (>= 1).  Sharding changes lock
          contention only: with any shard count the cache serves the
          same hits and evicts per-segment LRU, and a single-session
          service is byte-identical for the same request stream.  The
          default [1] is byte-identical to the historical single-mutex
          cache. *)
  queue_limit : int;
  verify : bool;
      (** statically verify every plan ({!Vqc_check.Verify}) before it
          is served — fresh compiles {e and} cache hits.  A plan that
          fails verification becomes a [Protocol.Invalid] response and
          never enters the cache.  Counted under [service.verify.*]. *)
  drift : Vqc_drift.Retention.policy option;
      (** selective epoch invalidation: on an epoch move, score each
          cached plan against its compile-time calibration
          ({!Vqc_drift.Staleness}), retain the ones within the
          threshold after re-verification, and recompile the demoted
          rest in the background on the worker pool.  [None] — or a
          {!Vqc_drift.Retention.wholesale} policy ([threshold <= 0]) —
          keeps the paper's wholesale flush, byte-identically. *)
}

val default_config : config
(** jobs 1, capacity 256, cache enabled, 1 shard, queue limit 64,
    verify off, drift off. *)

type t

type store
(** A cross-session compile store (the "L2" behind the per-session
    caches of the TCP server).  Content-addressed like the session
    cache — a plan for (circuit, calibration, policy) is correct for
    as long as those fingerprints name it — so it is {e never}
    invalidated on epoch moves and can be shared by sessions pinned to
    different epochs.  Consulted after a session-cache miss; written
    through on every fresh compile.  Store temperature is visible only
    in metrics ([serve.store.*]) and the ["nd"] response section:
    deterministic response fields never depend on it. *)

val shared_store : ?shards:int -> capacity:int -> unit -> store
(** [shards] defaults to [1]; see {!Plan_cache.create} for the
    constraints. *)

val create : ?config:config -> ?pool:Vqc_engine.Pool.t -> ?store:store -> Epoch.t -> t
(** [?pool] shares an existing worker pool instead of spawning one —
    {!shutdown} then leaves the pool running (its owner stops it).
    [?store] attaches a shared compile store.  Both seams exist for the
    TCP server, whose sessions are each a service over common workers
    and a common store.
    @raise Invalid_argument on a non-positive [jobs], [cache_capacity]
    or [queue_limit]. *)

val config : t -> config
val epoch_manager : t -> Epoch.t

val submit : t -> Protocol.request -> (unit, Admission.reason) result
(** Queue a request for the next {!flush}. *)

val pending : t -> int

val flush : t -> Protocol.response list
(** Compile everything queued (batched onto the pool) and return the
    responses in admission order.  Never raises on a bad request —
    resolution and compilation failures become [Failed] responses, and
    (with [verify] on) plans the verifier refuses become [Invalid]
    responses. *)

val advance_epoch : t -> int * Epoch.migration
(** Rotate the calibration epoch and run the configured invalidation
    path — the wholesale flush by default, the drift pipeline when
    [config.drift] carries a non-wholesale policy.  Returns the new
    epoch index and the migration tally. *)

val set_epoch : t -> int -> Epoch.migration
(** Jump to a specific epoch (same invalidation path as
    {!advance_epoch}).
    @raise Invalid_argument when the epoch is out of range. *)

val shutdown : t -> unit
(** Stop the worker domains (no-op when the pool was supplied via
    [?pool] — the owner stops it).  Idempotent; the service must not
    be flushed afterwards. *)

val with_service : ?config:config -> Epoch.t -> (t -> 'a) -> 'a
(** Run with a fresh service, shutting it down afterwards (also on
    exception). *)

module Metrics = Vqc_obs.Metrics

type reason = Queue_full of { depth : int; limit : int }

let reason_to_string (Queue_full _) = "queue_full"
let code (Queue_full _) = Vqc_diag.Diagnostic.code_queue_full

let accepted = Metrics.counter "service.queue.accepted"
let rejected = Metrics.counter "service.queue.rejected"
let depth_gauge = Metrics.gauge "service.queue.depth"

type 'a t = {
  queue_limit : int;
  items : 'a Queue.t;
  lock : Mutex.t;
}

let create ~limit =
  if limit < 1 then
    invalid_arg
      (Printf.sprintf "Admission.create: limit must be >= 1 (got %d)" limit);
  { queue_limit = limit; items = Queue.create (); lock = Mutex.create () }

let limit t = t.queue_limit

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let depth t = locked t (fun () -> Queue.length t.items)

let enqueue t item =
  locked t (fun () ->
      let depth = Queue.length t.items in
      if depth >= t.queue_limit then begin
        Metrics.incr rejected;
        Error (Queue_full { depth; limit = t.queue_limit })
      end
      else begin
        Queue.add item t.items;
        Metrics.incr accepted;
        Metrics.set depth_gauge (float_of_int (depth + 1));
        Ok ()
      end)

let drain t =
  locked t (fun () ->
      let items = List.of_seq (Queue.to_seq t.items) in
      Queue.clear t.items;
      Metrics.set depth_gauge 0.0;
      items)

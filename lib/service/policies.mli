(** The compilation policies a service request can name.

    One registry row per {!Vqc_mapper.Compiler} preset that needs no
    extra parameter, keyed by the policy's own label (the same string
    the experiments print), so the wire format, the plan-cache key and
    the report tables all agree on policy identity. *)

type entry = {
  label : string;  (** wire id, e.g. ["vqa+vqm"] *)
  description : string;
  policy : Vqc_mapper.Compiler.policy;
}

val all : entry list
(** Paper-order: baseline, vqm, vqa+vqm, then the extensions. *)

val find : string -> entry option
val names : unit -> string list

val default_label : string
(** ["vqa+vqm"] — the paper's headline policy; used when a request
    omits ["policy"]. *)

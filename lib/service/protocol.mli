(** Wire protocol of [vqc-serve]: newline-delimited JSON.

    One request object per input line, one response object per output
    line, in request order.  Requests:

    {v
    {"id": 1, "workload": "bv-16", "policy": "vqa+vqm"}
    {"id": "job-7", "qasm": "OPENQASM 2.0; ...", "epoch": 3}
    {"op": "advance_epoch"}
    v}

    - exactly one of ["workload"] (catalog name) or ["qasm"] (inline
      OpenQASM 2.0) selects the circuit;
    - ["policy"] is optional (default {!Policies.default_label});
    - ["epoch"] optionally pins a calibration epoch (default: the
      service's current epoch);
    - any of ["precision"], ["max_trials"], ["mc_seed"] additionally
      requests an adaptive Monte-Carlo PST estimate of the compiled plan
      ({!Vqc_sim.Estimator}); unspecified members default to the
      estimator's defaults (precision 1e-3, budget 1000000) and seed 1.
      The estimate is a deterministic function of the request, so it
      renders top-level (an ["estimate"] object with trials, successes,
      pst, wilson/bernstein intervals, half_width, stop reason, budget
      and trials saved), not under ["nd"];
    - ["id"] is echoed back verbatim (any JSON value);
    - control lines carry ["op"]: [advance_epoch], [set_epoch] (with
      ["epoch"]), or [flush].

    Responses always carry ["status"]: ["ok"] (a compiled plan or a
    control acknowledgement), ["rejected"] (admission control),
    ["invalid"] (the plan verifier refused the plan; see
    {!Vqc_check.Verify}), or ["error"].  Every deterministic field — layout, SWAP count,
    estimated log gate reliability, fingerprints — is a top-level
    field; anything that can vary between runs of the same input
    (latency, cache temperature) is quarantined under ["nd"], exactly
    like {!Vqc_obs.Trace} events, so consumers and tests strip
    non-determinism in one place. *)

type source =
  | Workload of string  (** catalog name, e.g. ["bv-16"] *)
  | Inline_qasm of string

(** An adaptive PST estimate rider on a compile request.  Bounds are
    range-validated by the service (not the parser), so an out-of-range
    value fails only its own request. *)
type estimate_request = {
  precision : float;  (** target CI half-width; 0 = run the full budget *)
  max_trials : int;
  mc_seed : int;  (** RNG seed — same seed, same estimate, bit for bit *)
}

type request = {
  id : Vqc_obs.Json.t option;  (** echoed verbatim in the response *)
  source : source;
  policy : string;  (** policy label; validated by the service *)
  epoch : int option;  (** pinned calibration epoch *)
  estimate : estimate_request option;
}

type control =
  | Advance_epoch
  | Set_epoch of int
  | Flush

type input =
  | Compile of request
  | Control of control

val parse_line : string -> (input, string) result
(** Parse one NDJSON line. *)

(** The deterministic payload of a successful compilation. *)
type plan = {
  policy : string;
  epoch : int;
  qubits : int;  (** program qubits *)
  layout : int array;  (** initial program→physical assignment *)
  swaps : int;  (** SWAPs inserted by routing *)
  gates : int;  (** total gates of the physical circuit *)
  depth : int;  (** dependency depth of the physical circuit *)
  log_reliability : float;  (** estimated [sum log p_success] *)
  circuit_fp : string;
  calibration_fp : string;
}

type cache_status =
  | Hit
  | Miss
  | Bypass  (** cache disabled *)

val cache_status_to_string : cache_status -> string

type response =
  | Compiled of {
      id : Vqc_obs.Json.t option;
      plan : plan;
      estimate : Vqc_sim.Estimator.estimate option;
          (** present iff the request asked for one; deterministic,
              rendered top-level *)
      cache : cache_status;
      seconds : float;  (** wall-clock service time; rendered under nd *)
    }
  | Rejected of {
      id : Vqc_obs.Json.t option;
      reason : Admission.reason;
    }
  | Invalid of {
      id : Vqc_obs.Json.t option;
      diagnostics : Vqc_diag.Diagnostic.t list;
          (** the verifier's findings; deterministic, rendered top-level *)
      cache : cache_status;
      seconds : float;
    }  (** verification was requested and the plan failed it *)
  | Failed of {
      id : Vqc_obs.Json.t option;
      error : string;
    }
  | Control_ack of {
      op : string;
      epoch : int;  (** the service's epoch after the operation *)
      migration : Epoch.migration option;
          (** for epoch moves, the cache-migration tally (retained /
              reverified / recompiled / invalidated), rendered as four
              integer fields; [None] (e.g. for [flush]) renders
              nothing.  Deterministic: a pure function of the request
              stream, epoch history and drift configuration. *)
    }

val render : response -> string
(** One JSON object, no trailing newline; ["nd"] is always the last
    field when present. *)

(** Bounded admission queue: backpressure instead of crashes.

    The service accepts requests into a FIFO queue of configurable
    depth; once the queue is full, further requests are {e rejected}
    with a typed reason that the wire layer turns into a structured
    response — an overloaded [vqc-serve] sheds load, it never raises.
    Accepted/rejected totals and the live depth are tracked in
    {!Vqc_obs.Metrics} under [service.queue.*]. *)

type reason = Queue_full of { depth : int; limit : int }

val reason_to_string : reason -> string
(** e.g. ["queue_full"] — the stable wire identifier of the reason. *)

val code : reason -> string
(** The {!Vqc_diag} code of the rejection (e.g. [VQC130]) — the same
    code renders in the [rejected] wire response on every front end
    (stdin and TCP), so clients can switch on it uniformly. *)

type 'a t

val create : limit:int -> 'a t
(** @raise Invalid_argument if [limit < 1]. *)

val limit : 'a t -> int
val depth : 'a t -> int

val enqueue : 'a t -> 'a -> (unit, reason) result
(** Admit an item, or reject it when [depth t = limit t].  Counts
    [service.queue.accepted] / [service.queue.rejected]. *)

val drain : 'a t -> 'a list
(** Remove and return every queued item in admission order. *)

module Metrics = Vqc_obs.Metrics
module Trace = Vqc_obs.Trace
module Json = Vqc_obs.Json

(* Registered once; recording is atomic, so chunk completions on any
   worker domain feed them without extra synchronization. *)
let fanouts_total = Metrics.counter "engine.pool.fanouts"
let chunks_total = Metrics.counter "engine.pool.chunks"
let tasks_total = Metrics.counter "engine.pool.tasks"
let chunk_seconds = Metrics.histogram "engine.pool.chunk_seconds"

let validate_jobs jobs =
  if jobs >= 1 then Ok jobs
  else Error (Printf.sprintf "jobs must be a positive integer (got %d)" jobs)

type t = {
  size : int;
  queue : (unit -> unit) Queue.t;
  lock : Mutex.t;
  work_available : Condition.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

let now () = Unix.gettimeofday ()

(* Workers sleep on [work_available] between fan-outs and run queued
   chunk closures to completion.  A closure owns all its bookkeeping
   (results slot, error slot, completion counter), so several [map]
   calls — including from nested pools on other domains — can share the
   queue safely. *)
let rec worker_loop pool =
  Mutex.lock pool.lock;
  while Queue.is_empty pool.queue && not pool.stopping do
    Condition.wait pool.work_available pool.lock
  done;
  if Queue.is_empty pool.queue then Mutex.unlock pool.lock
  else begin
    let task = Queue.pop pool.queue in
    Mutex.unlock pool.lock;
    task ();
    worker_loop pool
  end

let create ?jobs () =
  let size =
    match jobs with Some n -> n | None -> Domain.recommended_domain_count ()
  in
  (match validate_jobs size with
  | Ok _ -> ()
  | Error message -> invalid_arg ("Pool.create: " ^ message));
  let pool =
    {
      size;
      queue = Queue.create ();
      lock = Mutex.create ();
      work_available = Condition.create ();
      stopping = false;
      workers = [];
    }
  in
  pool.workers <-
    List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let jobs pool = pool.size

let shutdown pool =
  Mutex.lock pool.lock;
  let workers = pool.workers in
  pool.stopping <- true;
  pool.workers <- [];
  Condition.broadcast pool.work_available;
  Mutex.unlock pool.lock;
  List.iter Domain.join workers

let with_pool ?jobs f =
  let pool = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

type progress = {
  total : int;
  completed : int;
  chunk_index : int;
  chunk_size : int;
  chunk_seconds : float;
  elapsed_seconds : float;
}

let map ?(chunk_size = 1) ?report pool ~f xs =
  if chunk_size < 1 then invalid_arg "Pool.map: chunk_size must be >= 1";
  let items = Array.of_list xs in
  let n = Array.length items in
  if n = 0 then []
  else begin
    let nchunks = (n + chunk_size - 1) / chunk_size in
    let results = Array.make n None in
    (* lowest-chunk-index failure wins, whatever the completion order *)
    let error = ref None in
    let completed_chunks = ref 0 in
    let completed_tasks = ref 0 in
    let finished = Condition.create () in
    let started_at = now () in
    let run_chunk k =
      let lo = k * chunk_size in
      let hi = min n (lo + chunk_size) - 1 in
      let chunk_started = now () in
      (try
         for i = lo to hi do
           results.(i) <- Some (f i items.(i))
         done
       with exn ->
         let backtrace = Printexc.get_raw_backtrace () in
         Mutex.lock pool.lock;
         (match !error with
         | Some (k', _, _) when k' <= k -> ()
         | _ -> error := Some (k, exn, backtrace));
         Mutex.unlock pool.lock);
      let finished_at = now () in
      Mutex.lock pool.lock;
      incr completed_chunks;
      completed_tasks := !completed_tasks + (hi - lo + 1);
      let progress =
        {
          total = n;
          completed = !completed_tasks;
          chunk_index = k;
          chunk_size = hi - lo + 1;
          chunk_seconds = finished_at -. chunk_started;
          elapsed_seconds = finished_at -. started_at;
        }
      in
      (match report with None -> () | Some fn -> fn progress);
      Metrics.incr chunks_total;
      Metrics.add tasks_total progress.chunk_size;
      Metrics.observe chunk_seconds progress.chunk_seconds;
      if Trace.enabled () then
        Trace.emit ~source:"engine" ~event:"pool_chunk"
          ~nd:
            [
              ("chunk_seconds", Json.Float progress.chunk_seconds);
              ("elapsed_seconds", Json.Float progress.elapsed_seconds);
            ]
          [
            ("chunk_index", Json.Int progress.chunk_index);
            ("chunk_size", Json.Int progress.chunk_size);
            ("completed", Json.Int progress.completed);
            ("total", Json.Int progress.total);
          ];
      if !completed_chunks = nchunks then Condition.broadcast finished;
      Mutex.unlock pool.lock
    in
    Metrics.incr fanouts_total;
    Mutex.lock pool.lock;
    for k = 0 to nchunks - 1 do
      Queue.push (fun () -> run_chunk k) pool.queue
    done;
    Condition.broadcast pool.work_available;
    (* the calling domain is a worker too: drain the queue, then wait
       for chunks still in flight on other domains *)
    let rec drain () =
      if not (Queue.is_empty pool.queue) then begin
        let task = Queue.pop pool.queue in
        Mutex.unlock pool.lock;
        task ();
        Mutex.lock pool.lock;
        drain ()
      end
    in
    drain ();
    while !completed_chunks < nchunks do
      Condition.wait finished pool.lock
    done;
    Mutex.unlock pool.lock;
    (match !error with
    | Some (_, exn, backtrace) -> Printexc.raise_with_backtrace exn backtrace
    | None -> ());
    Array.to_list (Array.map Option.get results)
  end

let map_reduce ?chunk_size ?report pool ~f ~combine ~init xs =
  map ?chunk_size ?report pool ~f xs |> List.fold_left combine init

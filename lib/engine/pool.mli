(** Deterministic parallel execution engine ([Domain]-backed worker pool).

    Every headline number of the reproduction — PST per benchmark, the
    52-day daily study, seed sweeps, Monte-Carlo fault injection — is
    embarrassingly parallel: an indexed list of independent tasks whose
    results are combined in index order.  This pool fans such task lists
    across OCaml 5 domains while keeping the results {e bit-identical
    regardless of worker count}: tasks are split into contiguous chunks
    by index, each chunk is a unit of scheduling, and results land in an
    index-addressed array, so neither completion order nor the number of
    domains can influence the output.  Callers that need randomness give
    each task (or chunk) its own pre-split {!Vqc_rng.Rng} stream keyed
    by index — see {!Vqc_sim.Monte_carlo} for the canonical use.

    A pool is cheap: [jobs - 1] worker domains plus the calling domain,
    which participates in the work (so [jobs = 1] spawns nothing and
    runs everything inline, in index order).  Worker domains block on a
    condition variable between fan-outs. *)

type t

val validate_jobs : int -> (int, string) result
(** [validate_jobs n] is [Ok n] for a usable worker count ([n >= 1])
    and [Error message] otherwise, with a message fit for a CLI
    ("jobs must be a positive integer (got 0)").  {!create} enforces
    the same rule; CLIs validate up front to report the flag error
    without an exception. *)

val create : ?jobs:int -> unit -> t
(** [create ?jobs ()] starts a pool of [jobs] workers (default
    {!Domain.recommended_domain_count}, i.e. the hardware parallelism;
    always overridable).  [jobs - 1] domains are spawned — the caller of
    {!map} is the remaining worker.
    @raise Invalid_argument if [jobs < 1]. *)

val jobs : t -> int
(** Worker count the pool was created with (including the caller). *)

val shutdown : t -> unit
(** Stop the worker domains and join them.  Idempotent.  Outstanding
    tasks already queued are finished first. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool ?jobs f] runs [f] with a fresh pool and shuts it down
    afterwards (also on exception). *)

(** Telemetry handed to the optional reporter after each chunk
    completes.  Reporters run serialized (under the pool lock) but from
    whichever domain finished the chunk — keep them short, and do not
    call back into the pool from one. *)
type progress = {
  total : int;  (** tasks in this fan-out *)
  completed : int;  (** tasks finished so far, including this chunk *)
  chunk_index : int;  (** index of the chunk that just finished *)
  chunk_size : int;  (** tasks in that chunk *)
  chunk_seconds : float;  (** wall-clock time of that chunk *)
  elapsed_seconds : float;  (** wall clock since the fan-out started *)
}

val map :
  ?chunk_size:int ->
  ?report:(progress -> unit) ->
  t ->
  f:(int -> 'a -> 'b) ->
  'a list ->
  'b list
(** [map pool ~f [x0; x1; ...]] is [[f 0 x0; f 1 x1; ...]], computed on
    the pool's workers.  Tasks are grouped into contiguous chunks of
    [chunk_size] (default 1); within a chunk tasks run in index order.
    The result list order — and, provided [f] is deterministic per
    [(index, element)], its content — is independent of the worker
    count.  If any task raises, the remaining queued chunks still run;
    at the join the exception of the lowest-indexed failing chunk is
    re-raised (with its backtrace) on the calling domain.
    @raise Invalid_argument if [chunk_size < 1]. *)

val map_reduce :
  ?chunk_size:int ->
  ?report:(progress -> unit) ->
  t ->
  f:(int -> 'a -> 'b) ->
  combine:('acc -> 'b -> 'acc) ->
  init:'acc ->
  'a list ->
  'acc
(** [map_reduce pool ~f ~combine ~init xs] folds [combine] over the
    results of {!map} in index order — a deterministic parallel fold:
    [combine (... (combine init (f 0 x0)) ...) (f n xn)]. *)

(** Structured static-analysis diagnostics.

    Every finding of the {!Vqc_check} linter, plan verifier and source
    self-lint — and every positioned {!Vqc_circuit.Qasm} parse error —
    is one value of {!t}: a stable code, a severity, a human message and
    a location.  The type lives in its own library so the circuit layer
    can report through it without depending on the checkers (which in
    turn depend on the circuit layer).

    Stable codes (never renumber; retire by leaving a gap).  The
    machine-readable form of this table is {!all_codes}; SARIF rule
    metadata ({!Vqc_check.Sarif}) is generated from it.

    {b VQC00x — circuit & QASM lint} ([Vqc_check.Lint], QASM front end):

    - [VQC000] — unstructured QASM parse error
    - [VQC001] — qubit or classical-bit index out of range
    - [VQC002] — gate applied to a qubit after its measurement
    - [VQC003] — declared qubit is never used
    - [VQC004] — two-qubit gate with identical operands
    - [VQC005] — trivially cancellable adjacent gate pair

    {b VQC10x — plan verification} ([Vqc_check.Verify], translation
    validation of compiled plans):

    - [VQC101] — two-qubit gate on a pair that is not a coupler
    - [VQC102] — replay mismatch: physical gate matches no ready source
      gate (dependency order or semantics broken)
    - [VQC103] — measurement mapping broken (wrong qubit or cbit)
    - [VQC104] — SWAP count disagrees with the router's accounting
    - [VQC105] — final layout disagrees with the replayed permutation
    - [VQC106] — source gates missing from the physical circuit
    - [VQC107] — calibration sanity violation (dead qubit/link, error
      rate outside [0, 1])
    - [VQC108] — malformed layout or circuit shape

    {b VQC12x — calibration-data lint} ([Vqc_check.Calib_lint], over
    every profile {!Vqc_device.Calibration_model} can produce and over
    multi-day histories):

    - [VQC120] — error rate non-finite, negative or above 1
    - [VQC121] — coherence or readout figure outside its physical range
    - [VQC122] — T2 exceeds the [2 * T1] dephasing bound
    - [VQC123] — qubit effectively dead (error at ceiling, vanished
      coherence, or no live incident coupler)
    - [VQC124] — coupling map and link calibration disagree
      (uncalibrated coupler, or calibrated non-coupler)
    - [VQC125] — calibration figure frozen across days (stuck sensor)

    {b VQC13x — serving backpressure} ([Vqc_service.Admission] and the
    [Vqc_serve_net] TCP front end; rendered on the wire, identically on
    the stdin and TCP paths):

    - [VQC130] — per-session admission queue full; the request is
      rejected with a typed [rejected] response, never dropped silently
    - [VQC131] — server at its [--clients-max] connection capacity; the
      connection is refused with one [rejected] line and closed

    {b VQC2xx — repository source analysis} ([Vqc_check.Rules], over
    the comment/string-aware token stream of every [.ml] source):

    - [VQC201] — determinism-hygiene violation (environment-seeded RNG;
      wall/CPU-clock read outside the allow-listed timing sites)
    - [VQC202] — stdout print in library code
    - [VQC210] — top-level mutable state that is neither [Atomic] nor
      registered as lock-protected
    - [VQC211] — [Mutex.lock] without a matching unlock/protect shape
    - [VQC212] — nested lock acquisition outside the canonical order

    Rendering is deterministic: equal diagnostics render to equal JSON,
    and {!render_list} sorts before printing. *)

type severity =
  | Error  (** the artifact is wrong; reject it *)
  | Warning  (** almost certainly a mistake, but well-formed *)
  | Info  (** improvement opportunity *)

type location =
  | Nowhere
  | Line of int  (** 1-based line in a QASM source text *)
  | Gate of int  (** 0-based gate index in a circuit *)
  | File_line of {
      file : string;
      line : int;  (** 1-based line in a repository source file *)
    }

type t = {
  code : string;  (** stable identifier, e.g. ["VQC101"] *)
  severity : severity;
  message : string;
  location : location;
}

(** {1 Codes} *)

val code_parse : string
val code_index_range : string
val code_gate_after_measure : string
val code_unused_qubit : string
val code_identical_operands : string
val code_cancellable_pair : string
val code_illegal_coupling : string
val code_replay_mismatch : string
val code_measurement_mapping : string
val code_swap_count : string
val code_final_layout : string
val code_unreplayed_gates : string
val code_calibration : string
val code_malformed_plan : string
val code_calib_error_range : string
val code_calib_coherence : string
val code_calib_t2_bound : string
val code_calib_dead_qubit : string
val code_calib_coupler : string
val code_calib_stuck_sensor : string
val code_queue_full : string
val code_server_full : string
val code_determinism : string
val code_stdout_hygiene : string
val code_unguarded_state : string
val code_lock_shape : string
val code_lock_order : string

val all_codes : (string * string) list
(** Every assigned code paired with its one-line description, in code
    order — the machine-readable code table. *)

val describe : string -> string
(** One-line description of a code (["unknown diagnostic code"] for
    anything not in {!all_codes}) — used as SARIF rule metadata. *)

(** {1 Construction} *)

val make : ?location:location -> severity -> string -> string -> t
(** [make ~location severity code message].  [location] defaults to
    {!Nowhere}. *)

val error : ?location:location -> string -> string -> t
val warning : ?location:location -> string -> string -> t
val info : ?location:location -> string -> string -> t

val errorf :
  ?location:location -> string -> ('a, unit, string, t) format4 -> 'a

val warningf :
  ?location:location -> string -> ('a, unit, string, t) format4 -> 'a

val infof : ?location:location -> string -> ('a, unit, string, t) format4 -> 'a

(** {1 Inspection} *)

val is_error : t -> bool

val has_errors : t list -> bool
(** Whether any diagnostic has severity {!Error}. *)

val severity_to_string : severity -> string
(** ["error"], ["warning"], ["info"]. *)

val compare : t -> t -> int
(** Order by location (files, then lines, then gate indices), then code,
    then message — the order {!render_list} prints in. *)

(** {1 Rendering} *)

val to_json : t -> Vqc_obs.Json.t
(** One JSON object: [code], [severity], [message], plus the location's
    fields ([line], [gate], or [file] + [line]); key order fixed. *)

val to_string : t -> string
(** Human-readable one-liner, e.g.
    ["error[VQC001] line 3: index 9 out of range ..."]. *)

val render_list : t list -> string
(** Deterministic JSON array, one diagnostic per line (["[]"] when
    empty); the input is sorted with {!compare} first. *)

val pp : Format.formatter -> t -> unit

module Json = Vqc_obs.Json

type severity =
  | Error
  | Warning
  | Info

type location =
  | Nowhere
  | Line of int
  | Gate of int
  | File_line of {
      file : string;
      line : int;
    }

type t = {
  code : string;
  severity : severity;
  message : string;
  location : location;
}

let code_parse = "VQC000"
let code_index_range = "VQC001"
let code_gate_after_measure = "VQC002"
let code_unused_qubit = "VQC003"
let code_identical_operands = "VQC004"
let code_cancellable_pair = "VQC005"
let code_illegal_coupling = "VQC101"
let code_replay_mismatch = "VQC102"
let code_measurement_mapping = "VQC103"
let code_swap_count = "VQC104"
let code_final_layout = "VQC105"
let code_unreplayed_gates = "VQC106"
let code_calibration = "VQC107"
let code_malformed_plan = "VQC108"
let code_calib_error_range = "VQC120"
let code_calib_coherence = "VQC121"
let code_calib_t2_bound = "VQC122"
let code_calib_dead_qubit = "VQC123"
let code_calib_coupler = "VQC124"
let code_calib_stuck_sensor = "VQC125"
let code_queue_full = "VQC130"
let code_server_full = "VQC131"
let code_determinism = "VQC201"
let code_stdout_hygiene = "VQC202"
let code_unguarded_state = "VQC210"
let code_lock_shape = "VQC211"
let code_lock_order = "VQC212"

let all_codes =
  [
    (code_parse, "OpenQASM parse error");
    (code_index_range, "register index out of declared range");
    (code_gate_after_measure, "gate acts on a qubit after its measurement");
    (code_unused_qubit, "qubit declared but never used");
    (code_identical_operands, "two-qubit gate with identical operands");
    (code_cancellable_pair, "adjacent gates cancel exactly");
    (code_illegal_coupling, "physical two-qubit gate on an uncoupled pair");
    (code_replay_mismatch, "physical gate matches no ready source gate");
    (code_measurement_mapping, "measurement readout mapping broken");
    (code_swap_count, "inserted-SWAP count disagrees with router accounting");
    (code_final_layout, "declared final layout differs from replayed layout");
    (code_unreplayed_gates, "source gates left over after replay");
    (code_calibration, "plan compiled against insane calibration data");
    (code_malformed_plan, "plan shape malformed");
    (code_calib_error_range, "error rate non-finite, negative or above 1");
    (code_calib_coherence, "coherence or readout figure outside physical range");
    (code_calib_t2_bound, "T2 exceeds the 2*T1 physical bound");
    (code_calib_dead_qubit, "qubit effectively dead");
    (code_calib_coupler, "coupling map and link calibration disagree");
    (code_calib_stuck_sensor, "calibration figure frozen across days");
    (code_queue_full, "admission queue full; request rejected");
    (code_server_full, "server at client capacity; connection rejected");
    (code_determinism, "determinism-breaking call in source");
    (code_stdout_hygiene, "stdout print in library code");
    (code_unguarded_state, "top-level mutable state neither Atomic nor guarded");
    (code_lock_shape, "Mutex.lock without matching unlock/protect shape");
    (code_lock_order, "nested lock acquisition outside the canonical order");
  ]

let describe code =
  match List.assoc_opt code all_codes with
  | Some description -> description
  | None -> "unknown diagnostic code"

let make ?(location = Nowhere) severity code message =
  { code; severity; message; location }

let error ?location code message = make ?location Error code message
let warning ?location code message = make ?location Warning code message
let info ?location code message = make ?location Info code message

let errorf ?location code fmt = Printf.ksprintf (error ?location code) fmt
let warningf ?location code fmt = Printf.ksprintf (warning ?location code) fmt
let infof ?location code fmt = Printf.ksprintf (info ?location code) fmt

let is_error d = d.severity = Error
let has_errors ds = List.exists is_error ds

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

(* Files first (alphabetically), then in-text lines, then gate indices,
   then location-free diagnostics; ties break on code then message. *)
let location_rank = function
  | File_line _ -> 0
  | Line _ -> 1
  | Gate _ -> 2
  | Nowhere -> 3

let compare_location a b =
  match (a, b) with
  | File_line x, File_line y ->
    let c = String.compare x.file y.file in
    if c <> 0 then c else Int.compare x.line y.line
  | Line x, Line y -> Int.compare x y
  | Gate x, Gate y -> Int.compare x y
  | Nowhere, Nowhere -> 0
  | _ -> Int.compare (location_rank a) (location_rank b)

let compare a b =
  let c = compare_location a.location b.location in
  if c <> 0 then c
  else begin
    let c = String.compare a.code b.code in
    if c <> 0 then c else String.compare a.message b.message
  end

let location_fields = function
  | Nowhere -> []
  | Line line -> [ ("line", Json.Int line) ]
  | Gate index -> [ ("gate", Json.Int index) ]
  | File_line { file; line } ->
    [ ("file", Json.String file); ("line", Json.Int line) ]

let to_json d =
  Json.Obj
    ([
       ("code", Json.String d.code);
       ("severity", Json.String (severity_to_string d.severity));
       ("message", Json.String d.message);
     ]
    @ location_fields d.location)

let location_to_string = function
  | Nowhere -> ""
  | Line line -> Printf.sprintf " line %d:" line
  | Gate index -> Printf.sprintf " gate %d:" index
  | File_line { file; line } -> Printf.sprintf " %s:%d:" file line

let to_string d =
  Printf.sprintf "%s[%s]%s %s"
    (severity_to_string d.severity)
    d.code
    (location_to_string d.location)
    d.message

let render_list ds =
  match List.sort compare ds with
  | [] -> "[]"
  | sorted ->
    let lines = List.map (fun d -> Json.to_string (to_json d)) sorted in
    "[\n" ^ String.concat ",\n" lines ^ "\n]"

let pp ppf d = Format.pp_print_string ppf (to_string d)

module Diagnostic = Vqc_diag.Diagnostic

type t = string list

let empty = []

let fingerprint d =
  let file =
    match d.Diagnostic.location with
    | Diagnostic.File_line { file; _ } -> file
    | Diagnostic.Nowhere | Diagnostic.Line _ | Diagnostic.Gate _ -> "-"
  in
  d.Diagnostic.code ^ "\t" ^ file ^ "\t" ^ d.Diagnostic.message

let of_string text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None else Some line)
  |> List.sort_uniq String.compare

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> Ok (of_string text)
  | exception Sys_error message -> Error message

let mem baseline d = List.mem (fingerprint d) baseline

let partition baseline diagnostics =
  List.partition (fun d -> not (mem baseline d)) diagnostics

let filter_new baseline diagnostics = fst (partition baseline diagnostics)

let render diagnostics =
  let lines =
    List.sort_uniq String.compare (List.map fingerprint diagnostics)
  in
  String.concat "\n"
    ([
       "# vqc-check baseline: one accepted finding per line,";
       "# 'code<TAB>file<TAB>message' (file is '-' for location-free";
       "# findings; line numbers are deliberately excluded so edits";
       "# elsewhere in a file do not churn the baseline).  CI fails";
       "# only on findings absent from this file.";
     ]
    @ lines)
  ^ "\n"

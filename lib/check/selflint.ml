module Diagnostic = Vqc_diag.Diagnostic

(* The pattern literals are assembled at runtime so this file (and any
   test exercising it) does not flag itself. *)
type rule = {
  pattern : string;
  describe : string;
  allowed : string -> bool;
}

let allowed_wall_clock =
  [
    "lib/obs/span.ml";
    "lib/engine/pool.ml";
    "lib/sim/monte_carlo.ml";
    "lib/service/service.ml";
    "lib/drift/recompiler.ml";
    "bench/main.ml";
  ]

let has_suffix ~suffix path =
  let lp = String.length path and ls = String.length suffix in
  lp >= ls && String.sub path (lp - ls) ls = suffix

let rules =
  [
    {
      pattern = "Random." ^ "self_init";
      describe = "environment-seeded RNG breaks reproducibility";
      allowed = (fun _ -> false);
    };
    {
      pattern = "Unix." ^ "gettimeofday";
      describe =
        "wall-clock read outside the allow-listed timing sites breaks \
         determinism";
      allowed =
        (fun file ->
          List.exists (fun suffix -> has_suffix ~suffix file) allowed_wall_clock);
    };
  ]

(* All start positions of [pattern] in [text]. *)
let occurrences pattern text =
  let lp = String.length pattern and lt = String.length text in
  let hits = ref [] in
  if lp > 0 then
    for i = lt - lp downto 0 do
      if String.sub text i lp = pattern then hits := i :: !hits
    done;
  !hits

let line_of text position =
  let line = ref 1 in
  for i = 0 to min position (String.length text) - 1 do
    if text.[i] = '\n' then incr line
  done;
  !line

let scan_source ~file text =
  List.concat_map
    (fun rule ->
      if rule.allowed file then []
      else
        List.map
          (fun position ->
            Diagnostic.errorf
              ~location:
                (Diagnostic.File_line { file; line = line_of text position })
              Diagnostic.code_determinism "%s: %s" rule.pattern rule.describe)
          (occurrences rule.pattern text))
    rules

let roots = [ "lib"; "bin"; "examples"; "test"; "bench" ]

let rec ml_files directory =
  match Sys.readdir directory with
  | entries ->
    Array.sort compare entries;
    Array.fold_left
      (fun acc entry ->
        if entry = "_build" || (entry <> "" && entry.[0] = '.') then acc
        else begin
          let path = Filename.concat directory entry in
          if Sys.is_directory path then acc @ ml_files path
          else if Filename.check_suffix entry ".ml" then acc @ [ path ]
          else acc
        end)
      [] entries
  | exception Sys_error _ -> []

let scan_tree ~root =
  List.concat_map
    (fun top ->
      let directory = Filename.concat root top in
      if Sys.file_exists directory && Sys.is_directory directory then
        List.concat_map
          (fun path ->
            match In_channel.with_open_text path In_channel.input_all with
            | text ->
              (* report paths relative to the root, '/'-separated *)
              let file =
                if root = "." || root = "" then path
                else if String.length path > String.length root
                        && String.sub path 0 (String.length root) = root then
                  String.sub path
                    (String.length root + 1)
                    (String.length path - String.length root - 1)
                else path
              in
              scan_source ~file text
            | exception Sys_error message ->
              [
                Diagnostic.errorf
                  ~location:(Diagnostic.File_line { file = path; line = 1 })
                  Diagnostic.code_determinism "unreadable source file: %s"
                  message;
              ])
          (ml_files directory)
      else [])
    roots
  |> List.sort Diagnostic.compare

module Diagnostic = Vqc_diag.Diagnostic

let allowed_wall_clock = Rules.allowed_wall_clock
let scan_source = Rules.scan_source

let roots = [ "lib"; "bin"; "examples"; "test"; "bench" ]

let rec ml_files directory =
  match Sys.readdir directory with
  | entries ->
    Array.sort compare entries;
    Array.fold_left
      (fun acc entry ->
        if entry = "_build" || (entry <> "" && entry.[0] = '.') then acc
        else begin
          let path = Filename.concat directory entry in
          if Sys.is_directory path then acc @ ml_files path
          else if Filename.check_suffix entry ".ml" then acc @ [ path ]
          else acc
        end)
      [] entries
  | exception Sys_error _ -> []

let scan_tree ~root =
  List.concat_map
    (fun top ->
      let directory = Filename.concat root top in
      if Sys.file_exists directory && Sys.is_directory directory then
        List.concat_map
          (fun path ->
            match In_channel.with_open_text path In_channel.input_all with
            | text ->
              (* report paths relative to the root, '/'-separated *)
              let file =
                if root = "." || root = "" then path
                else if String.length path > String.length root
                        && String.sub path 0 (String.length root) = root then
                  String.sub path
                    (String.length root + 1)
                    (String.length path - String.length root - 1)
                else path
              in
              scan_source ~file text
            | exception Sys_error message ->
              [
                Diagnostic.errorf
                  ~location:(Diagnostic.File_line { file = path; line = 1 })
                  Diagnostic.code_determinism "unreadable source file: %s"
                  message;
              ])
          (ml_files directory)
      else [])
    roots
  |> List.sort Diagnostic.compare

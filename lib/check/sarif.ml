module Diagnostic = Vqc_diag.Diagnostic
module Json = Vqc_obs.Json

let schema = "https://json.schemastore.org/sarif-2.1.0.json"

let level d =
  match d.Diagnostic.severity with
  | Diagnostic.Error -> "error"
  | Diagnostic.Warning -> "warning"
  | Diagnostic.Info -> "note"

let locations d =
  match d.Diagnostic.location with
  | Diagnostic.File_line { file; line } ->
    [
      ( "locations",
        Json.List
          [
            Json.Obj
              [
                ( "physicalLocation",
                  Json.Obj
                    [
                      ( "artifactLocation",
                        Json.Obj [ ("uri", Json.String file) ] );
                      ("region", Json.Obj [ ("startLine", Json.Int line) ]);
                    ] );
              ];
          ] );
    ]
  (* Line/Gate locations position within a linted artifact, not a
     repository file; SARIF results may omit locations. *)
  | Diagnostic.Nowhere | Diagnostic.Line _ | Diagnostic.Gate _ -> []

let result d =
  Json.Obj
    ([
       ("ruleId", Json.String d.Diagnostic.code);
       ("level", Json.String (level d));
       ("message", Json.Obj [ ("text", Json.String d.Diagnostic.message) ]);
     ]
    @ locations d)

let rule code =
  Json.Obj
    [
      ("id", Json.String code);
      ( "shortDescription",
        Json.Obj [ ("text", Json.String (Diagnostic.describe code)) ] );
    ]

let to_json diagnostics =
  let sorted = List.sort Diagnostic.compare diagnostics in
  let codes =
    List.sort_uniq String.compare
      (List.map (fun d -> d.Diagnostic.code) sorted)
  in
  Json.Obj
    [
      ("$schema", Json.String schema);
      ("version", Json.String "2.1.0");
      ( "runs",
        Json.List
          [
            Json.Obj
              [
                ( "tool",
                  Json.Obj
                    [
                      ( "driver",
                        Json.Obj
                          [
                            ("name", Json.String "vqc-check");
                            ("rules", Json.List (List.map rule codes));
                          ] );
                    ] );
                ("results", Json.List (List.map result sorted));
              ];
          ] );
    ]

let render diagnostics = Json.to_string (to_json diagnostics)

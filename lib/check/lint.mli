(** Circuit and QASM lint: structural findings that are legal but almost
    certainly mistakes.

    The linter never rejects a well-formed circuit — it reports
    {!Vqc_diag.Diagnostic.Warning} and {!Vqc_diag.Diagnostic.Info}
    findings; {!Vqc_diag.Diagnostic.Error} only appears via {!qasm} when
    the text does not parse at all (the parser's positioned diagnostics
    pass straight through).  Checks:

    - [VQC002] (warning): a unitary gate applied to a qubit after that
      qubit was measured (one finding per qubit, at the first offender);
    - [VQC003] (warning): a declared qubit no gate ever touches;
    - [VQC005] (info): two gates that are adjacent on every qubit they
      touch and cancel exactly ([H H], [X X], [Y Y], [Z Z], [S Sdg],
      [T Tdg], same-operand [CNOT CNOT], same-pair [SWAP SWAP]) —
      {!Vqc_opt.Peephole} would delete both;
    - [VQC001]/[VQC004] (error): out-of-range indices and identical
      two-qubit operands, which {!Vqc_circuit.Circuit} refuses to build,
      are reported by {!qasm} with the parser's source line. *)

open Vqc_circuit

val circuit : Circuit.t -> Vqc_diag.Diagnostic.t list
(** Lint a built circuit.  Locations are 0-based gate indices; findings
    are sorted with {!Vqc_diag.Diagnostic.compare}. *)

val qasm : string -> Vqc_diag.Diagnostic.t list
(** Parse and lint QASM text.  A parse failure yields exactly the
    parser's diagnostic; otherwise the result is {!circuit} on the
    parsed program. *)

(** Comment- and string-literal-aware OCaml tokenizer.

    The source-analysis rules ({!Rules}) need to know whether a banned
    call name appears in {e code} or merely inside a comment, a string
    literal or a quoted string — a raw substring scan cannot tell.
    This scanner produces a flat token stream with enough OCaml lexical
    structure to decide that: nested [(* ... *)] comments (with
    strings inside comments skipped whole, as the real lexer does),
    ["..."] literals with backslash escapes, [{|...|}] / [{id|...|id}]
    quoted strings, char literals distinguished from type variables,
    and {e dotted identifier paths} ([Unix.gettimeofday], [pool.lock])
    joined into single tokens so rules match call names directly.

    It is a lexer, not a parser: no precedence, no AST — exactly the
    fidelity the token-level rules need, and robust on any input (no
    token is ever rejected; unterminated forms extend to end of
    input). *)

type kind =
  | Ident  (** identifier or dotted path, e.g. ["Random.self_init"] *)
  | Number
  | String  (** string or quoted-string literal, delimiters included *)
  | Char  (** char literal; type variables lex as {!Punct} + {!Ident} *)
  | Comment  (** whole comment, nested comments included *)
  | Punct  (** any other single character *)

type token = {
  kind : kind;
  text : string;
  line : int;  (** 1-based line of the token's first character *)
  column : int;  (** 0-based column of the token's first character *)
}

val scan : string -> token list
(** Tokenize a source text, in order.  Whitespace is dropped. *)

(** {1 Line-offset index}

    One index per file replaces the per-hit prefix rescan the old
    self-lint used (quadratic on pathological files): build it once,
    then each lookup is a binary search. *)

val line_index : string -> int array
(** [line_index text] maps 0-based line number to the byte offset of
    that line's first character ([index.(0) = 0] always). *)

val line_of : int array -> int -> int
(** [line_of index position] is the 1-based line containing byte
    [position] — equal to [1 + number of '\n' before position]. *)

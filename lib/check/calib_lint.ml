module Diagnostic = Vqc_diag.Diagnostic
module Calibration = Vqc_device.Calibration
module History = Vqc_device.History

let dead_error = 0.5
let dead_t1_us = 1.0
let max_coherence_us = 20_000.0
let stuck_run_days = 5

let error_code = Diagnostic.code_calib_error_range
let is_rate e = Float.is_finite e && e >= 0.0 && e <= 1.0

let rate_findings ~name ~what e =
  if is_rate e then []
  else
    [
      Diagnostic.errorf error_code "%s: %s error rate %g is not in [0, 1]"
        name what e;
    ]

let coherence_findings ~name ~what t =
  if Float.is_finite t && t > 0.0 && t <= max_coherence_us then []
  else
    [
      Diagnostic.errorf Diagnostic.code_calib_coherence
        "%s: %s %g us is outside (0, %g] us" name what t max_coherence_us;
    ]

let qubit_findings ~name ~coupling calibration q =
  let qn = Printf.sprintf "%s: qubit %d" name q in
  let figures = Calibration.qubit calibration q in
  let t1 = figures.Calibration.t1_us and t2 = figures.Calibration.t2_us in
  let rates =
    rate_findings ~name:qn ~what:"single-qubit" figures.Calibration.error_1q
    @ rate_findings ~name:qn ~what:"readout" figures.Calibration.error_readout
  in
  let coherence =
    coherence_findings ~name:qn ~what:"T1" t1
    @ coherence_findings ~name:qn ~what:"T2" t2
  in
  let t2_bound =
    if
      Float.is_finite t1 && Float.is_finite t2 && t1 > 0.0
      && t2 > 2.0 *. t1 *. (1.0 +. 1e-9)
    then
      [
        Diagnostic.errorf Diagnostic.code_calib_t2_bound
          "%s: T2 %g us exceeds the dephasing bound 2*T1 = %g us" qn t2
          (2.0 *. t1);
      ]
    else []
  in
  let incident =
    List.filter (fun (u, v) -> u = q || v = q) coupling
  in
  let live (u, v) =
    match Calibration.link_error calibration u v with
    | Some e -> is_rate e && e < dead_error
    | None -> false
  in
  let dead =
    if
      Float.is_finite figures.Calibration.error_1q
      && figures.Calibration.error_1q >= dead_error
    then Some (Printf.sprintf "single-qubit error %g" figures.Calibration.error_1q)
    else if
      Float.is_finite figures.Calibration.error_readout
      && figures.Calibration.error_readout >= dead_error
    then Some (Printf.sprintf "readout error %g" figures.Calibration.error_readout)
    else if Float.is_finite t1 && t1 > 0.0 && t1 < dead_t1_us then
      Some (Printf.sprintf "T1 %g us" t1)
    else if incident <> [] && not (List.exists live incident) then
      Some "no live incident coupler"
    else None
  in
  let dead =
    match dead with
    | Some reason ->
      [
        Diagnostic.errorf Diagnostic.code_calib_dead_qubit
          "%s: effectively dead (%s)" qn reason;
      ]
    | None -> []
  in
  rates @ coherence @ t2_bound @ dead

let link_findings ~name ~coupling calibration =
  let coupling = List.sort compare (List.map (fun (u, v) -> (min u v, max u v)) coupling) in
  let calibrated = Calibration.links calibration in
  let missing =
    List.filter_map
      (fun (u, v) ->
        match Calibration.link_error calibration u v with
        | Some _ -> None
        | None ->
          Some
            (Diagnostic.errorf Diagnostic.code_calib_coupler
               "%s: coupler (%d, %d) has no calibration entry" name u v))
      coupling
  in
  let extras_and_ranges =
    List.concat_map
      (fun (u, v, e) ->
        let extra =
          if List.mem (u, v) coupling then []
          else
            [
              Diagnostic.errorf Diagnostic.code_calib_coupler
                "%s: calibrated pair (%d, %d) is not in the coupling map"
                name u v;
            ]
        in
        extra
        @ rate_findings
            ~name:(Printf.sprintf "%s: link (%d, %d)" name u v)
            ~what:"two-qubit" e)
      calibrated
  in
  missing @ extras_and_ranges

let profile ~name ~coupling calibration =
  let n = Calibration.num_qubits calibration in
  let qubits =
    List.concat_map
      (fun q -> qubit_findings ~name ~coupling calibration q)
      (List.init n Fun.id)
  in
  List.sort Diagnostic.compare (qubits @ link_findings ~name ~coupling calibration)

(* ---- history --------------------------------------------------------- *)

(* Longest run of exactly-equal consecutive values.  Real sensors
   re-measure with jitter — the AR(1) model never repeats a float — so
   a long frozen run means the figure is copied forward, not
   measured. *)
let longest_run series =
  let best = ref 1 and current = ref 1 in
  for i = 1 to Array.length series - 1 do
    if Float.equal series.(i) series.(i - 1) then begin
      incr current;
      if !current > !best then best := !current
    end
    else current := 1
  done;
  (!best, if Array.length series = 0 then nan else series.(0))

let stuck ~name ~what series =
  let run, _ = longest_run series in
  if Array.length series >= stuck_run_days && run >= stuck_run_days then
    [
      Diagnostic.errorf Diagnostic.code_calib_stuck_sensor
        "%s: %s frozen for %d consecutive days (stuck sensor)" name what run;
    ]
  else []

let history ~name h =
  let coupling = History.coupling h in
  let daily =
    List.concat_map
      (fun d ->
        profile
          ~name:(Printf.sprintf "%s day %d" name d)
          ~coupling (History.day h d))
      (List.init (History.days h) Fun.id)
  in
  let n = Calibration.num_qubits (History.day h 0) in
  let qubit_stuck =
    List.concat_map
      (fun q ->
        let series = History.qubit_series h q in
        let field what get =
          stuck
            ~name:(Printf.sprintf "%s: qubit %d" name q)
            ~what
            (Array.map get series)
        in
        field "T1" (fun c -> c.Calibration.t1_us)
        @ field "T2" (fun c -> c.Calibration.t2_us)
        @ field "single-qubit error" (fun c -> c.Calibration.error_1q)
        @ field "readout error" (fun c -> c.Calibration.error_readout))
      (List.init n Fun.id)
  in
  let link_stuck =
    List.concat_map
      (fun (u, v) ->
        stuck
          ~name:(Printf.sprintf "%s: link (%d, %d)" name u v)
          ~what:"two-qubit error" (History.link_series h u v))
      coupling
  in
  List.sort Diagnostic.compare (daily @ qubit_stuck @ link_stuck)

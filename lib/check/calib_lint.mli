(** Calibration-data lint (VQC12x).

    The paper's whole argument — and every policy in this repo — is
    bounded by the quality of the calibration data feeding it.  This
    pass family checks the data itself, per profile and across
    multi-day histories:

    - [VQC120] error rates (single-qubit, readout, two-qubit) that are
      non-finite, negative or above 1;
    - [VQC121] coherence times outside [(0, {!max_coherence_us}]] µs;
    - [VQC122] [T2 > 2*T1] — physically impossible dephasing;
    - [VQC123] effectively dead qubits: gate/readout error at or above
      {!dead_error}, T1 below {!dead_t1_us} µs, or every incident
      coupler missing/dead;
    - [VQC124] coupling-map/calibration asymmetry: a coupler without a
      calibration entry, or a calibrated pair that is not a coupler;
    - [VQC125] stuck sensors: a per-link or per-qubit figure frozen
      (exactly equal) for {!stuck_run_days}+ consecutive days of a
      history — measured values jitter; frozen ones are copied
      forward.

    All findings are location-free diagnostics whose messages carry
    the profile name, day, and qubit/link — deterministic given the
    calibration, so clean sweeps and baselines are stable. *)

val dead_error : float
val dead_t1_us : float
val max_coherence_us : float
val stuck_run_days : int

val profile :
  name:string ->
  coupling:(int * int) list ->
  Vqc_device.Calibration.t ->
  Vqc_diag.Diagnostic.t list
(** Lint one calibration snapshot against its coupling map.  [name]
    prefixes every message (e.g. ["q20-tokyo day 3"]).  Sorted. *)

val history : name:string -> Vqc_device.History.t -> Vqc_diag.Diagnostic.t list
(** Lint every day of a history ({!profile} per day) plus the
    cross-day stuck-sensor pass over every qubit figure and link
    series.  Sorted. *)

module Diagnostic = Vqc_diag.Diagnostic

(* Call names are assembled at runtime so this file (and any test
   exercising it) does not flag itself. *)
let dot a b = a ^ "." ^ b

let allowed_wall_clock =
  [
    "lib/obs/span.ml";
    "lib/engine/pool.ml";
    "lib/sim/monte_carlo.ml";
    "lib/service/service.ml";
    "lib/drift/recompiler.ml";
    (* load generator: wall-clock reads feed per-request latency
       percentiles, which are reported under "nd" only *)
    "lib/serve_net/load.ml";
    "bench/main.ml";
  ]

let allowed_stdout = []
let canonical_lock_order = [ "registry_lock"; "hlock" ]

let has_suffix ~suffix path =
  let lp = String.length path and ls = String.length suffix in
  lp >= ls && String.sub path (lp - ls) ls = suffix

let has_prefix ~prefix path =
  let lp = String.length path and ls = String.length prefix in
  lp >= ls && String.sub path 0 ls = prefix

let in_list suffixes file =
  List.exists (fun suffix -> has_suffix ~suffix file) suffixes

let contains ~needle haystack =
  let ln = String.length needle and lh = String.length haystack in
  let rec at i = i + ln <= lh && (String.sub haystack i ln = needle || at (i + 1)) in
  ln > 0 && at 0

(* ---- determinism & stdout hygiene (VQC201, VQC202) ------------------- *)

let wall_clock_calls = [ dot "Unix" "gettimeofday"; dot "Sys" "time" ]

let stdout_calls =
  [
    "print_endline";
    "print_string";
    "print_newline";
    "print_char";
    "print_int";
    "print_float";
    dot "Printf" "printf";
    dot "Format" "printf";
    dot "Format" "print_string";
    dot "Format" "print_newline";
  ]

let banned_calls ~file tokens =
  let self_init = dot "Random" "self_init" in
  let clock_allowed = in_list allowed_wall_clock file in
  let stdout_checked =
    has_prefix ~prefix:"lib/" file && not (in_list allowed_stdout file)
  in
  List.filter_map
    (fun (t : Tokens.token) ->
      if t.Tokens.kind <> Tokens.Ident then None
      else begin
        let at = Diagnostic.File_line { file; line = t.Tokens.line } in
        if t.Tokens.text = self_init then
          Some
            (Diagnostic.errorf ~location:at Diagnostic.code_determinism
               "%s: environment-seeded RNG breaks reproducibility"
               t.Tokens.text)
        else if List.mem t.Tokens.text wall_clock_calls && not clock_allowed
        then
          Some
            (Diagnostic.errorf ~location:at Diagnostic.code_determinism
               "%s: wall-clock read outside the allow-listed timing sites \
                breaks determinism"
               t.Tokens.text)
        else if stdout_checked && List.mem t.Tokens.text stdout_calls then
          Some
            (Diagnostic.errorf ~location:at Diagnostic.code_stdout_hygiene
               "%s: library code must not print to stdout (return data, or \
                take a formatter)"
               t.Tokens.text)
        else None
      end)
    tokens

(* ---- top-level mutable state (VQC210) -------------------------------- *)

let guard_markers = [ "guarded by"; "domain-safe" ]

let comment_guards tokens =
  List.filter_map
    (fun (t : Tokens.token) ->
      if
        t.Tokens.kind = Tokens.Comment
        && List.exists (fun m -> contains ~needle:m t.Tokens.text) guard_markers
      then Some t.Tokens.line
      else None)
    tokens

(* A shared mutable global is a top-level [let] (column 0) whose
   binding line mentions [ref] or [Hashtbl.create].  Single-line
   heuristic by design: every such binding in this repo fits on one
   line, and the rule is a tripwire, not a proof.  Suppressed when the
   value is [Atomic], or when the line (or the line above) carries a
   comment registering the guard — "guarded by <lock>" or
   "domain-safe". *)
let unguarded_state ~file tokens =
  if not (has_prefix ~prefix:"lib/" file) then []
  else begin
    let guards = comment_guards tokens in
    let line_tokens line =
      List.filter (fun (t : Tokens.token) -> t.Tokens.line = line) tokens
    in
    List.filter_map
      (fun (t : Tokens.token) ->
        if
          t.Tokens.kind = Tokens.Ident
          && t.Tokens.text = "let"
          && t.Tokens.column = 0
        then begin
          let on_line = line_tokens t.Tokens.line in
          let mentions name =
            List.exists
              (fun (u : Tokens.token) ->
                u.Tokens.kind = Tokens.Ident && u.Tokens.text = name)
              on_line
          in
          let atomic =
            List.exists
              (fun (u : Tokens.token) ->
                u.Tokens.kind = Tokens.Ident
                && has_prefix ~prefix:"Atomic." u.Tokens.text)
              on_line
          in
          let registered =
            List.mem t.Tokens.line guards || List.mem (t.Tokens.line - 1) guards
          in
          if
            (mentions "ref" || mentions (dot "Hashtbl" "create"))
            && (not atomic) && not registered
          then
            Some
              (Diagnostic.errorf
                 ~location:
                   (Diagnostic.File_line { file; line = t.Tokens.line })
                 Diagnostic.code_unguarded_state
                 "top-level mutable state must be Atomic or carry a \
                  '(* guarded by <lock> *)' registration")
          else None
        end
        else None)
      tokens
  end

(* ---- lock discipline (VQC211, VQC212) -------------------------------- *)

let last_component path =
  match String.rindex_opt path '.' with
  | None -> path
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)

(* The identifier the lock call is applied to, if syntactically
   evident ("?" for computed lock expressions). *)
let lockee rest =
  match rest with
  | (u : Tokens.token) :: _ when u.Tokens.kind = Tokens.Ident ->
    last_component u.Tokens.text
  | _ -> "?"

let lock_rules ~file tokens =
  let lock_call = dot "Mutex" "lock" in
  let unlock_call = dot "Mutex" "unlock" in
  let protect_call = dot "Mutex" "protect" in
  let locks = ref 0 in
  let releases = ref 0 in
  let first_lock_line = ref 0 in
  let held = ref [] in
  let order_findings = ref [] in
  let rank name =
    let rec index i = function
      | [] -> None
      | x :: rest -> if x = name then Some i else index (i + 1) rest
    in
    index 0 canonical_lock_order
  in
  let rec walk = function
    | [] -> ()
    | (t : Tokens.token) :: rest ->
      (if t.Tokens.kind = Tokens.Ident then begin
         if t.Tokens.text = lock_call then begin
           incr locks;
           if !first_lock_line = 0 then first_lock_line := t.Tokens.line;
           let name = lockee rest in
           (match !held with
           | (holding, _) :: _ when holding <> "?" && name <> "?" ->
             let ordered =
               match (rank holding, rank name) with
               | Some a, Some b -> a < b
               | _ -> false
             in
             if not ordered then
               order_findings :=
                 Diagnostic.errorf
                   ~location:
                     (Diagnostic.File_line { file; line = t.Tokens.line })
                   Diagnostic.code_lock_order
                   "lock '%s' acquired while holding '%s': nested \
                    acquisition must follow the canonical order (%s)"
                   name holding
                   (String.concat " < " canonical_lock_order)
                 :: !order_findings
           | _ -> ());
           held := (name, t.Tokens.line) :: !held
         end
         else if t.Tokens.text = unlock_call then begin
           incr releases;
           let name = lockee rest in
           let rec drop = function
             | [] -> []
             | (holding, line) :: remaining ->
               if holding = name || holding = "?" || name = "?" then remaining
               else (holding, line) :: drop remaining
           in
           held := drop !held
         end
         else if t.Tokens.text = protect_call then incr releases
       end;
       walk rest)
  in
  walk tokens;
  let shape =
    if !locks > !releases then
      [
        Diagnostic.errorf
          ~location:(Diagnostic.File_line { file; line = !first_lock_line })
          Diagnostic.code_lock_shape
          "%d Mutex.lock call(s) against %d unlock/protect site(s): a \
           raising path between them leaks the lock"
          !locks !releases;
      ]
    else []
  in
  shape @ !order_findings

(* ---- entry ----------------------------------------------------------- *)

let scan_source ~file text =
  let tokens = Tokens.scan text in
  banned_calls ~file tokens
  @ unguarded_state ~file tokens
  @ lock_rules ~file tokens
  |> List.sort Diagnostic.compare

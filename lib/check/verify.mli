(** Static plan verification (translation validation).

    A compiled plan is the mapper's claim that a physical circuit over
    the device's qubits faithfully implements a source program from a
    given initial layout.  The verifier re-derives that claim from
    first principles — it replays the physical gate stream against the
    source dependency DAG, tracking the logical→physical permutation
    through every inserted SWAP — and reports a
    {!Vqc_diag.Diagnostic.t} for each invariant that fails:

    - [VQC101]: a physical two-qubit gate sits on a pair that is not a
      coupler of the device;
    - [VQC102]: a physical gate matches no dependency-ready source gate
      under the current permutation (order or semantics broken);
    - [VQC103]: a measurement reads the wrong physical qubit or writes
      the wrong classical bit;
    - [VQC104]: the number of inserted SWAPs found by replay disagrees
      with the router's [swaps_inserted] accounting;
    - [VQC105]: the layout reached by replay differs from the plan's
      declared final layout;
    - [VQC106]: source gates never appeared in the physical circuit;
    - [VQC107]: calibration sanity — a referenced qubit or link is dead
      (error rate 1, non-positive coherence time) or any error rate
      falls outside [0, 1];
    - [VQC108]: shape errors (layout sizes, qubit/cbit counts) that make
      the plan malformed before replay is even meaningful.

    Bridged CNOTs (see {!Vqc_mapper.Router.route}) are recognized: a
    source CNOT may be implemented as the 4-CNOT bridge
    [cx u m; cx m v; cx u m; cx m v] through a coupled middle qubit.

    The verifier accepts every plan the in-tree compiler produces (a
    property-tested invariant) and is deterministic: equal inputs yield
    equal diagnostics in equal order. *)

open Vqc_circuit

type subject = {
  device : Vqc_device.Device.t;
  source : Circuit.t;  (** the program the user asked to run *)
  physical : Circuit.t;  (** the routed circuit over device qubits *)
  initial : Vqc_mapper.Layout.t;
  final : Vqc_mapper.Layout.t;
  swaps_inserted : int;  (** the router's accounting *)
}

val check : subject -> Vqc_diag.Diagnostic.t list
(** All violated invariants, sorted with {!Vqc_diag.Diagnostic.compare};
    [[]] means the plan is proven legal and faithful. *)

val compiled :
  Vqc_device.Device.t ->
  Circuit.t ->
  Vqc_mapper.Compiler.compiled ->
  Vqc_diag.Diagnostic.t list
(** [compiled device source plan] is {!check} on a
    {!Vqc_mapper.Compiler.compiled} value. *)

exception Invalid_plan of Vqc_diag.Diagnostic.t list
(** Raised by the installed compiler check; the payload is the error
    diagnostics.  Registered with a human-readable printer. *)

val install_compiler_check : unit -> unit
(** Make {!Vqc_mapper.Compiler.compile} verify every plan it emits,
    raising {!Invalid_plan} on a violation.  Counts [check.plans] and
    [check.plan_failures] in {!Vqc_obs.Metrics}.  Idempotent. *)

val uninstall_compiler_check : unit -> unit

(** SARIF 2.1.0 emitter.

    Renders a diagnostic list as one SARIF run so findings flow into
    code-scanning UIs and CI artifact viewers: every distinct code
    becomes a [reportingDescriptor] under [tool.driver.rules] (with
    its description from {!Vqc_diag.Diagnostic.all_codes}), every
    diagnostic a [result] with [ruleId], [level] ([Info] maps to
    SARIF's ["note"]) and, for file-positioned findings, a
    [physicalLocation].  Output is deterministic: diagnostics are
    sorted, key order is fixed, and the encoding is the compact
    single-line {!Vqc_obs.Json} form — so SARIF logs can be golden-
    pinned like every other artifact. *)

val schema : string
(** The SARIF 2.1.0 schema URI embedded under ["$schema"]. *)

val to_json : Vqc_diag.Diagnostic.t list -> Vqc_obs.Json.t
val render : Vqc_diag.Diagnostic.t list -> string

(** Repository source hygiene: the tree walker over {!Rules}.

    The repo's core contract is bit-identical output for identical
    inputs (goldens, the service's determinism tests, the engine's
    chunked RNG), and the coming multi-client server adds a
    domain-safety contract on top.  This module walks every [.ml] file
    under the source roots and runs the tokenizer-driven rule set
    ({!Rules} over {!Tokens}): determinism hygiene ([VQC201]), stdout
    hygiene ([VQC202]) and lock/state discipline ([VQC210]-[VQC212]).
    Pattern hits inside comments and string literals do not flag —
    the scan is token-aware, not a substring grep.

    [.mli] files are not scanned (documentation may name the calls). *)

val allowed_wall_clock : string list
(** Alias of {!Rules.allowed_wall_clock}. *)

val scan_source : file:string -> string -> Vqc_diag.Diagnostic.t list
(** Alias of {!Rules.scan_source} — lints one file's contents; pure,
    exposed for tests. *)

val scan_tree : root:string -> Vqc_diag.Diagnostic.t list
(** Scan [lib/], [bin/], [examples/], [test/] and [bench/] under
    [root] (directories that don't exist are skipped, [_build] is
    ignored), in sorted path order. *)

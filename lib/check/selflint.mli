(** Repository determinism-hygiene lint.

    The repo's core contract is bit-identical output for identical
    inputs (goldens, the service's determinism tests, the engine's
    chunked RNG).  Two stdlib calls quietly break that contract when
    they creep into compute paths: seeding the RNG from the environment,
    and reading the wall clock.  This lint greps every [.ml] file under
    the source roots for those calls and reports [VQC201] errors, with a
    fixed allow-list for the sites that legitimately measure wall-clock
    time (observability spans, engine progress, simulator chunk timing,
    service latency — all quarantined under ["nd"] by construction).

    [.mli] files are not scanned (documentation may name the calls). *)

val allowed_wall_clock : string list
(** Path suffixes (['/']-separated) where wall-clock reads are
    deliberate, e.g. ["lib/obs/span.ml"]. *)

val scan_source : file:string -> string -> Vqc_diag.Diagnostic.t list
(** [scan_source ~file text] lints one file's contents; [file] is the
    path reported in locations and matched against the allow-list.
    Pure — exposed for tests. *)

val scan_tree : root:string -> Vqc_diag.Diagnostic.t list
(** Scan [lib/], [bin/], [examples/], [test/] and [bench/] under
    [root] (directories that don't exist are skipped, [_build] is
    ignored), in sorted path order. *)

(** Source-analysis rules over the {!Tokens} stream.

    Two rule families, both feeding {!Selflint.scan_tree}:

    {b Determinism & output hygiene.}  [VQC201] flags
    environment-seeded RNG anywhere and wall/CPU-clock reads
    ([Unix.gettimeofday], [Sys.time]) outside {!allowed_wall_clock};
    [VQC202] flags stdout prints in library code (under [lib/], minus
    {!allowed_stdout}) — library output goes through formatters or
    return values, never the process's stdout, which belongs to the
    CLI layer and the goldens.

    {b Domain-safety discipline} — the contract the fleet-scale
    concurrent server depends on:
    - [VQC210]: a top-level [let] binding a [ref] or [Hashtbl.create]
      in library code is shared mutable state; it must be [Atomic] or
      carry a registration comment — ["guarded by <lock>"] or
      ["domain-safe"] on the binding line or the line above.
      (Single-line token heuristic: a tripwire, not a proof; [mutable]
      record fields are per-instance state and out of scope.)
    - [VQC211]: a file whose [Mutex.lock] count exceeds its
      [Mutex.unlock] + [Mutex.protect] count has a lock that leaks on
      some (raising) path.
    - [VQC212]: nested lock acquisition (a [Mutex.lock] while another
      lock is held, tracked linearly through the token stream) must
      follow {!canonical_lock_order}; any nesting of locks outside
      that list is flagged.

    All rules are pure functions of the file path and text. *)

val allowed_wall_clock : string list
(** Path suffixes (['/']-separated) where wall-clock reads are
    deliberate, e.g. ["lib/obs/span.ml"] — all quarantined under the
    non-deterministic ["nd"] output fields by construction. *)

val allowed_stdout : string list
(** Path suffixes under [lib/] allowed to print to stdout (empty: the
    library keeps stdout clean today). *)

val canonical_lock_order : string list
(** The declared acquisition order for locks that legitimately nest,
    outermost first (by the lock variable's name). *)

val scan_source : file:string -> string -> Vqc_diag.Diagnostic.t list
(** [scan_source ~file text] runs every rule over one file's contents;
    [file] is the path reported in locations and matched against the
    allow-lists (rules scoped to library code fire only under
    [lib/]).  Sorted with {!Vqc_diag.Diagnostic.compare}. *)

(** Committed baselines: gate on {e no new findings}, not zero
    findings.

    A static-analysis gate that demands a spotless repo can never land
    a new rule over an old codebase; a baseline file records the
    accepted findings so CI fails only when a {e new} one appears (and
    a finding's removal is a free improvement).  The format is plain
    text: one fingerprint per line, [#] comments and blank lines
    ignored.  A fingerprint is [code TAB file TAB message] — the line
    number is deliberately excluded so unrelated edits to a file do
    not churn the baseline; [file] is ["-"] for location-free findings
    (the calibration lint's, whose messages carry their own
    coordinates). *)

type t

val empty : t

val fingerprint : Vqc_diag.Diagnostic.t -> string

val of_string : string -> t

val load : string -> (t, string) result
(** Read a baseline file; [Error message] when unreadable. *)

val mem : t -> Vqc_diag.Diagnostic.t -> bool

val partition :
  t -> Vqc_diag.Diagnostic.t list ->
  Vqc_diag.Diagnostic.t list * Vqc_diag.Diagnostic.t list
(** [partition baseline ds] is [(fresh, suppressed)]: the findings not
    in the baseline, and the ones it accepts.  Order preserved. *)

val filter_new : t -> Vqc_diag.Diagnostic.t list -> Vqc_diag.Diagnostic.t list

val render : Vqc_diag.Diagnostic.t list -> string
(** The baseline file accepting exactly these findings (sorted,
    deduplicated, with the format header) — what [--update-baseline]
    writes. *)

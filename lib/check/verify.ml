open Vqc_circuit
module Device = Vqc_device.Device
module Calibration = Vqc_device.Calibration
module Layout = Vqc_mapper.Layout
module Compiler = Vqc_mapper.Compiler
module Router = Vqc_mapper.Router
module Diagnostic = Vqc_diag.Diagnostic
module Metrics = Vqc_obs.Metrics

type subject = {
  device : Device.t;
  source : Circuit.t;
  physical : Circuit.t;
  initial : Layout.t;
  final : Layout.t;
  swaps_inserted : int;
}

(* ---- VQC108: shapes ------------------------------------------------ *)

(* When these fail, replaying (or even asking the device about the
   physical circuit's qubits) is meaningless, so [check] stops here. *)
let shape_diagnostics s =
  let n_device = Device.num_qubits s.device in
  let n_source = Circuit.num_qubits s.source in
  let errs = ref [] in
  let err fmt =
    Printf.ksprintf
      (fun m -> errs := Diagnostic.error Diagnostic.code_malformed_plan m :: !errs)
      fmt
  in
  let layout_shape name layout =
    if Layout.programs layout <> n_source then
      err "%s layout places %d program qubits but the source has %d" name
        (Layout.programs layout) n_source;
    if Layout.physicals layout <> n_device then
      err "%s layout spans %d physical qubits but device %s has %d" name
        (Layout.physicals layout) (Device.name s.device) n_device
  in
  layout_shape "initial" s.initial;
  layout_shape "final" s.final;
  if Circuit.num_qubits s.physical <> n_device then
    err "physical circuit has %d qubits but device %s has %d"
      (Circuit.num_qubits s.physical) (Device.name s.device) n_device;
  if Circuit.num_cbits s.physical <> Circuit.num_cbits s.source then
    err "physical circuit has %d classical bits but the source has %d"
      (Circuit.num_cbits s.physical) (Circuit.num_cbits s.source);
  List.rev !errs

(* ---- VQC101: adjacency legality ------------------------------------ *)

let adjacency_diagnostics s =
  List.concat
    (List.mapi
       (fun index gate ->
         match gate with
         | Gate.Cnot { control = u; target = v } | Gate.Swap (u, v) ->
           if Device.connected s.device u v then []
           else
             [
               Diagnostic.errorf
                 ~location:(Diagnostic.Gate index)
                 Diagnostic.code_illegal_coupling
                 "%s uses pair (%d,%d), not a coupler of %s"
                 (Gate.to_string gate) u v (Device.name s.device);
             ]
         | Gate.One_qubit _ | Gate.Measure _ | Gate.Barrier _ -> [])
       (Circuit.gates s.physical))

(* ---- VQC107: calibration sanity ------------------------------------ *)

let calibration_diagnostics s =
  let cal = Device.calibration s.device in
  let n = Device.num_qubits s.device in
  let ds = ref [] in
  let err fmt =
    Printf.ksprintf
      (fun m -> ds := Diagnostic.error Diagnostic.code_calibration m :: !ds)
      fmt
  in
  let used = Array.make (max n 1) false in
  List.iter (fun p -> used.(p) <- true) (Layout.used_physicals s.initial);
  List.iter (fun p -> used.(p) <- true) (Circuit.used_qubits s.physical);
  let in_unit x = x >= 0.0 && x <= 1.0 in
  for q = 0 to n - 1 do
    let k = Calibration.qubit cal q in
    if not (in_unit k.Calibration.error_1q && in_unit k.Calibration.error_readout)
    then
      err "qubit %d has an error rate outside [0,1] (1q %g, readout %g)" q
        k.Calibration.error_1q k.Calibration.error_readout
    else if
      used.(q)
      && (k.Calibration.error_1q >= 1.0
         || k.Calibration.error_readout >= 1.0
         || k.Calibration.t1_us <= 0.0
         || k.Calibration.t2_us <= 0.0)
    then
      err "plan references dead qubit %d (1q %g, readout %g, T1 %g, T2 %g)" q
        k.Calibration.error_1q k.Calibration.error_readout k.Calibration.t1_us
        k.Calibration.t2_us
  done;
  let seen = Hashtbl.create 16 in
  List.iter
    (fun gate ->
      match gate with
      | Gate.Cnot { control = u; target = v } | Gate.Swap (u, v) ->
        let key = (min u v, max u v) in
        if (not (Hashtbl.mem seen key)) && Device.connected s.device u v then begin
          Hashtbl.replace seen key ();
          match Calibration.link_error cal u v with
          | None -> err "link (%d,%d) has no calibration entry" u v
          | Some e ->
            if not (in_unit e) then
              err "link (%d,%d) has error rate %g outside [0,1]" u v e
            else if e >= 1.0 then
              err "plan references dead link (%d,%d) (error rate %g)" u v e
        end
      | Gate.One_qubit _ | Gate.Measure _ | Gate.Barrier _ -> ())
    (Circuit.gates s.physical);
  List.rev !ds

(* ---- replay: VQC102..VQC106 ----------------------------------------

   Walk the physical gate stream in order, holding the logical→physical
   permutation [sigma] (initially the plan's initial layout) and the set
   of dependency-ready source gates.  Every physical gate must either
   match a ready source gate under [sigma] (consuming it), open a
   4-CNOT bridge implementing a ready source CNOT, or be an inserted
   routing SWAP (which permutes [sigma]).  Matching a ready gate proves
   dependency-order preservation by construction: a source gate only
   becomes ready once everything it depends on was matched. *)

let replay_diagnostics s =
  let dag = Dag.build s.source in
  let count = Dag.gate_count dag in
  let pred_left = Array.init count (Dag.predecessor_count dag) in
  let ready = Hashtbl.create 16 in
  Array.iteri
    (fun i left -> if left = 0 then Hashtbl.replace ready i ())
    pred_left;
  let consumed = ref 0 in
  let consume i =
    Hashtbl.remove ready i;
    incr consumed;
    List.iter
      (fun successor ->
        pred_left.(successor) <- pred_left.(successor) - 1;
        if pred_left.(successor) = 0 then Hashtbl.replace ready successor ())
      (Dag.successors dag i)
  in
  let sigma = ref s.initial in
  let phys q = Layout.physical_of_program !sigma q in
  let find_ready predicate =
    Hashtbl.fold (fun i () acc -> i :: acc) ready []
    |> List.sort compare
    |> List.find_opt (fun i -> predicate (Dag.gate dag i))
  in
  let pgates = Array.of_list (Circuit.gates s.physical) in
  let total = Array.length pgates in
  let inserted = ref 0 in
  let mismatch = ref None in
  let stop d = mismatch := Some d in
  let index = ref 0 in
  while !mismatch = None && !index < total do
    let i = !index in
    let location = Diagnostic.Gate i in
    let gate = pgates.(i) in
    let no_match () =
      stop
        (Diagnostic.errorf ~location Diagnostic.code_replay_mismatch
           "physical gate %s matches no dependency-ready source gate under \
            the current permutation"
           (Gate.to_string gate))
    in
    (match gate with
    | Gate.One_qubit (kind, p) -> begin
      match
        find_ready (function
          | Gate.One_qubit (k, q) -> k = kind && phys q = p
          | _ -> false)
      with
      | Some j ->
        consume j;
        incr index
      | None -> no_match ()
    end
    | Gate.Barrier ps -> begin
      match
        find_ready (function
          | Gate.Barrier qs -> List.map phys qs = ps
          | _ -> false)
      with
      | Some j ->
        consume j;
        incr index
      | None -> no_match ()
    end
    | Gate.Measure { qubit = p; cbit = c } -> begin
      match
        find_ready (function
          | Gate.Measure { qubit; cbit } -> phys qubit = p && cbit = c
          | _ -> false)
      with
      | Some j ->
        consume j;
        incr index
      | None -> begin
        (* near-miss: a ready measurement shares the cbit or the qubit
           but not both — the readout mapping itself is broken *)
        match
          find_ready (function
            | Gate.Measure { qubit; cbit } -> phys qubit = p || cbit = c
            | _ -> false)
        with
        | Some j -> begin
          match Dag.gate dag j with
          | Gate.Measure { qubit; cbit } ->
            stop
              (Diagnostic.errorf ~location
                 Diagnostic.code_measurement_mapping
                 "measurement of physical qubit %d into cbit %d does not \
                  implement source measurement of qubit %d (now on physical \
                  %d) into cbit %d"
                 p c qubit (phys qubit) cbit)
          | _ -> no_match ()
        end
        | None -> no_match ()
      end
    end
    | Gate.Swap (u, v) -> begin
      match
        find_ready (function
          | Gate.Swap (a, b) ->
            let pa, pb = (phys a, phys b) in
            (pa, pb) = (u, v) || (pa, pb) = (v, u)
          | _ -> false)
      with
      | Some j ->
        consume j;
        incr index
      | None ->
        (* an inserted routing SWAP: permutes physical occupancy *)
        sigma := Layout.swap_physical !sigma u v;
        incr inserted;
        incr index
    end
    | Gate.Cnot { control = u; target = v } -> begin
      match
        find_ready (function
          | Gate.Cnot { control; target } -> phys control = u && phys target = v
          | _ -> false)
      with
      | Some j ->
        consume j;
        incr index
      | None -> begin
        (* bridge: [cx u m; cx m w; cx u m; cx m w] implements a source
           CNOT with control on u and target on w, through middle m = v *)
        let m = v in
        match
          find_ready (function
            | Gate.Cnot { control; target } ->
              phys control = u
              && i + 3 < total
              &&
              let w = phys target in
              w <> m && w <> u
              && pgates.(i + 1) = Gate.Cnot { control = m; target = w }
              && pgates.(i + 2) = Gate.Cnot { control = u; target = m }
              && pgates.(i + 3) = Gate.Cnot { control = m; target = w }
            | _ -> false)
        with
        | Some j ->
          consume j;
          index := i + 4
        | None -> no_match ()
      end
    end);
    ()
  done;
  match !mismatch with
  | Some d -> [ d ]
  | None ->
    let ds = ref [] in
    if !consumed < count then begin
      let missing = count - !consumed in
      let example =
        match
          Hashtbl.fold (fun i () acc -> i :: acc) ready [] |> List.sort compare
        with
        | i :: _ -> Printf.sprintf " (first: %s)" (Gate.to_string (Dag.gate dag i))
        | [] -> ""
      in
      ds :=
        Diagnostic.errorf Diagnostic.code_unreplayed_gates
          "%d source gate%s never appeared in the physical circuit%s" missing
          (if missing = 1 then "" else "s")
          example
        :: !ds
    end;
    if !inserted <> s.swaps_inserted then
      ds :=
        Diagnostic.errorf Diagnostic.code_swap_count
          "replay found %d inserted SWAPs but the router accounted %d"
          !inserted s.swaps_inserted
        :: !ds;
    if not (Layout.equal !sigma s.final) then
      ds :=
        Diagnostic.errorf Diagnostic.code_final_layout
          "replayed permutation disagrees with the plan's final layout"
        :: !ds;
    List.rev !ds

let check s =
  match shape_diagnostics s with
  | _ :: _ as shape -> List.sort Diagnostic.compare shape
  | [] ->
    List.sort Diagnostic.compare
      (adjacency_diagnostics s
      @ calibration_diagnostics s
      @ replay_diagnostics s)

let compiled device source (c : Compiler.compiled) =
  check
    {
      device;
      source;
      physical = c.Compiler.physical;
      initial = c.Compiler.initial;
      final = c.Compiler.final;
      swaps_inserted = c.Compiler.stats.Router.swaps_inserted;
    }

(* ---- compiler hook ------------------------------------------------- *)

exception Invalid_plan of Diagnostic.t list

let () =
  Printexc.register_printer (function
    | Invalid_plan ds ->
      Some
        ("Invalid_plan:\n"
        ^ String.concat "\n" (List.map Diagnostic.to_string ds))
    | _ -> None)

let plans_total = Metrics.counter "check.plans"
let plan_failures_total = Metrics.counter "check.plan_failures"

let install_compiler_check () =
  Compiler.set_plan_check (fun device source result ->
      Metrics.incr plans_total;
      let errors = List.filter Diagnostic.is_error (compiled device source result) in
      if errors <> [] then begin
        Metrics.incr plan_failures_total;
        raise (Invalid_plan errors)
      end)

let uninstall_compiler_check () = Compiler.clear_plan_check ()

open Vqc_circuit
module Diagnostic = Vqc_diag.Diagnostic

(* Does [second] undo [first] exactly?  Only the involution and
   inverse-pair rules — the "trivially cancellable" subset of
   Vqc_opt.Peephole (rotation merging needs arithmetic and is an
   optimization, not a smell). *)
let cancels first second =
  match (first, second) with
  | Gate.One_qubit (a, q), Gate.One_qubit (b, q') when q = q' -> begin
    match (a, b) with
    | Gate.H, Gate.H
    | Gate.X, Gate.X
    | Gate.Y, Gate.Y
    | Gate.Z, Gate.Z
    | Gate.S, Gate.Sdg
    | Gate.Sdg, Gate.S
    | Gate.T, Gate.Tdg
    | Gate.Tdg, Gate.T -> true
    | _ -> false
  end
  | Gate.Cnot { control = c1; target = t1 }, Gate.Cnot { control = c2; target = t2 }
    ->
    c1 = c2 && t1 = t2
  | Gate.Swap (a1, b1), Gate.Swap (a2, b2) ->
    (a1, b1) = (a2, b2) || (a1, b1) = (b2, a2)
  | _ -> false

let circuit c =
  let n = Circuit.num_qubits c in
  let diagnostics = ref [] in
  let report d = diagnostics := d :: !diagnostics in
  (* last.(q): index of the last gate touching qubit q, if it is still
     "adjacent" (no barrier or measurement fenced it off). *)
  let last = Array.make (max n 1) None in
  let measured_at = Array.make (max n 1) None in
  let flagged_after_measure = Array.make (max n 1) false in
  let touched = Array.make (max n 1) false in
  List.iteri
    (fun index gate ->
      let qubits = Gate.qubits gate in
      List.iter (fun q -> touched.(q) <- true) qubits;
      (match gate with
      | Gate.Barrier [] ->
        Array.fill last 0 (Array.length last) None
      | Gate.Barrier qs -> List.iter (fun q -> last.(q) <- None) qs
      | Gate.Measure { qubit; _ } ->
        measured_at.(qubit) <- Some index;
        last.(qubit) <- None
      | Gate.One_qubit _ | Gate.Cnot _ | Gate.Swap _ ->
        (* measured-then-reused *)
        List.iter
          (fun q ->
            match measured_at.(q) with
            | Some m when not flagged_after_measure.(q) ->
              flagged_after_measure.(q) <- true;
              report
                (Diagnostic.warningf
                   ~location:(Diagnostic.Gate index)
                   Diagnostic.code_gate_after_measure
                   "gate %s acts on qubit %d after its measurement (gate %d)"
                   (Gate.to_string gate) q m)
            | _ -> ())
          qubits;
        (* cancellable adjacency: every operand's previous gate is the
           same gate, and the pair annihilates *)
        (match qubits with
        | q0 :: rest -> begin
          match last.(q0) with
          | Some (prev_index, prev_gate)
            when List.for_all
                   (fun q -> last.(q) = Some (prev_index, prev_gate))
                   rest
                 && List.sort compare (Gate.qubits prev_gate)
                    = List.sort compare qubits
                 && cancels prev_gate gate ->
            report
              (Diagnostic.infof
                 ~location:(Diagnostic.Gate prev_index)
                 Diagnostic.code_cancellable_pair
                 "gates %d and %d cancel: %s then %s" prev_index index
                 (Gate.to_string prev_gate) (Gate.to_string gate))
          | _ -> ()
        end
        | [] -> ());
        List.iter (fun q -> last.(q) <- Some (index, gate)) qubits))
    (Circuit.gates c);
  for q = 0 to n - 1 do
    if not touched.(q) then
      report
        (Diagnostic.warningf Diagnostic.code_unused_qubit
           "qubit %d is declared but never used" q)
  done;
  List.sort Diagnostic.compare !diagnostics

let qasm text =
  match Qasm.of_string_diag text with
  | Error d -> [ d ]
  | Ok c -> circuit c

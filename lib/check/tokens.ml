type kind =
  | Ident
  | Number
  | String
  | Char
  | Comment
  | Punct

type token = {
  kind : kind;
  text : string;
  line : int;
  column : int;
}

(* ---- line-offset index ---------------------------------------------- *)

let line_index text =
  let lines = ref 1 in
  String.iter (fun c -> if c = '\n' then incr lines) text;
  let index = Array.make !lines 0 in
  let line = ref 1 in
  String.iteri
    (fun i c ->
      if c = '\n' && !line < !lines then begin
        index.(!line) <- i + 1;
        incr line
      end)
    text;
  index

let line_of index position =
  (* greatest i with index.(i) <= position, as a 1-based line *)
  let lo = ref 0 and hi = ref (Array.length index - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if index.(mid) <= position then lo := mid else hi := mid - 1
  done;
  !lo + 1

(* ---- scanner -------------------------------------------------------- *)

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9') || c = '\''

let is_digit c = c >= '0' && c <= '9'

let scan text =
  let len = String.length text in
  let tokens = ref [] in
  let line = ref 1 in
  let bol = ref 0 in
  let i = ref 0 in
  let peek offset =
    if !i + offset < len then Some text.[!i + offset] else None
  in
  let advance () =
    if text.[!i] = '\n' then begin
      incr line;
      bol := !i + 1
    end;
    incr i
  in
  let emit kind start start_line start_column =
    tokens :=
      {
        kind;
        text = String.sub text start (!i - start);
        line = start_line;
        column = start_column;
      }
      :: !tokens
  in
  (* Skip a string literal body after its opening quote was consumed;
     backslash escapes any following character. *)
  let skip_string () =
    let closed = ref false in
    while (not !closed) && !i < len do
      match text.[!i] with
      | '\\' ->
        advance ();
        if !i < len then advance ()
      | '"' ->
        advance ();
        closed := true
      | _ -> advance ()
    done
  in
  (* Quoted string {id|...|id}: [delim] is the raw "id" between the
     brace and the bar.  Consumes through the closing brace. *)
  let skip_quoted delim =
    let close = "|" ^ delim ^ "}" in
    let cl = String.length close in
    let closed = ref false in
    while (not !closed) && !i < len do
      if !i + cl <= len && String.sub text !i cl = close then begin
        for _ = 1 to cl do
          advance ()
        done;
        closed := true
      end
      else advance ()
    done
  in
  (* Nested comment body after the opening "(*": strings inside
     comments are skipped whole (OCaml requires them balanced, so a
     "*)" inside one must not close the comment). *)
  let skip_comment () =
    let depth = ref 1 in
    while !depth > 0 && !i < len do
      match (text.[!i], peek 1) with
      | '(', Some '*' ->
        advance ();
        advance ();
        incr depth
      | '*', Some ')' ->
        advance ();
        advance ();
        decr depth
      | '"', _ ->
        advance ();
        skip_string ()
      | _ -> advance ()
    done
  in
  while !i < len do
    let c = text.[!i] in
    let start = !i and start_line = !line and start_column = !i - !bol in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '(' && peek 1 = Some '*' then begin
      advance ();
      advance ();
      skip_comment ();
      emit Comment start start_line start_column
    end
    else if c = '"' then begin
      advance ();
      skip_string ();
      emit String start start_line start_column
    end
    else if c = '{' then begin
      (* {|...|} or {id|...|id} quoted string; plain '{' otherwise *)
      let j = ref (!i + 1) in
      while
        !j < len && (is_ident_start text.[!j] || is_digit text.[!j])
      do
        incr j
      done;
      if !j < len && text.[!j] = '|' then begin
        let delim = String.sub text (!i + 1) (!j - !i - 1) in
        while !i <= !j do
          advance ()
        done;
        skip_quoted delim;
        emit String start start_line start_column
      end
      else begin
        advance ();
        emit Punct start start_line start_column
      end
    end
    else if c = '\'' then begin
      (* char literal only when it closes: 'x' or an escape; otherwise
         a type variable / standalone quote *)
      match (peek 1, peek 2) with
      | Some '\\', _ ->
        advance ();
        advance ();
        let closed = ref false in
        while (not !closed) && !i < len do
          let d = text.[!i] in
          advance ();
          if d = '\'' then closed := true
        done;
        emit Char start start_line start_column
      | Some _, Some '\'' ->
        advance ();
        advance ();
        advance ();
        emit Char start start_line start_column
      | _ ->
        advance ();
        emit Punct start start_line start_column
    end
    else if is_ident_start c then begin
      let continue = ref true in
      while !continue do
        while !i < len && is_ident_char text.[!i] do
          advance ()
        done;
        (* extend "Unix" across ".gettimeofday" into one dotted path *)
        match (peek 0, peek 1) with
        | Some '.', Some d when is_ident_start d ->
          advance ()
        | _ -> continue := false
      done;
      emit Ident start start_line start_column
    end
    else if is_digit c then begin
      while
        !i < len
        && (is_ident_char text.[!i] || text.[!i] = '.')
      do
        advance ()
      done;
      emit Number start start_line start_column
    end
    else begin
      advance ();
      emit Punct start start_line start_column
    end
  done;
  List.rev !tokens

(** One NDJSON serving session over a channel pair.

    This is {e the} protocol loop of [vqc-serve]: the stdin front end
    runs it over [stdin]/[stdout], and every accepted TCP connection of
    {!Server} runs it over the socket's channels — single-client TCP
    responses are byte-identical to the stdin loop by construction,
    because they are the same code.

    Per session: requests batch into the session's {!Vqc_service}
    ([config.batch] accepted requests per flush, plus an implicit flush
    on every control line and at EOF), responses leave in input order,
    and a full admission queue yields structured [rejected] responses
    (carrying the [VQC130] code) instead of an exception.

    Determinism contract: the deterministic fields of the response
    stream are a pure function of the input stream and the service
    configuration — independent of [--jobs], cache shard count, store
    temperature, and whatever other sessions do concurrently (sessions
    share only the worker pool and the content-addressed store, neither
    of which can change a deterministic field). *)

type config = {
  batch : int;  (** flush the admission queue every [batch] accepts *)
  max_line : int;
      (** refuse input lines beyond this many bytes; an oversized line
          ends the session with a typed error response *)
}

val default_config : config
(** batch 16, max_line 1 MiB. *)

type outcome =
  | Eof  (** client closed its stream; every response was written *)
  | Oversized of int
      (** an input line exceeded [max_line] bytes; pending responses
          and a final typed error were written before giving up *)
  | Disconnected
      (** the peer vanished mid-session (broken pipe / reset); some
          responses may not have been delivered *)

val run : ?config:config -> Vqc_service.Service.t -> in_channel -> out_channel -> outcome
(** Serve one session to completion.  Never raises on malformed input
    — parse errors become [Failed] responses and the loop continues;
    only the conditions in {!outcome} end it. *)

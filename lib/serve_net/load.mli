(** In-process load generator for the TCP server.

    Clients are system threads (not domains — they only block on
    sockets), each owning one connection and one NDJSON request
    stream.  Used by the determinism tests (replay a stream, capture
    the exact response bytes) and by [bench serve-load] (pipelined
    streams with per-request latency timestamps). *)

type result = {
  lines : string list;  (** response lines, in request order *)
  latencies : float array;
      (** seconds between sending request [i] and reading response
          [i]; meaningful under pipelining ([window]), where a request
          is sent only after earlier responses drained *)
}

val client :
  port:int -> ?window:int -> requests:string list -> unit -> result
(** Replay one request stream against [127.0.0.1:port].  With
    [window], at most that many requests are in flight at once;
    without it, the whole stream is written, the write side
    half-closed, and every response read back — byte-equivalent to
    [vqc-serve < file] on the stdin front end.
    @raise Unix.Unix_error if the connection fails
    @raise End_of_file if the server closes before answering every
    request (e.g. a [server_full] rejection or an oversized line). *)

val run :
  port:int ->
  clients:int ->
  ?window:int ->
  requests:(int -> string list) ->
  unit ->
  (result, string) Stdlib.result array
(** Run [clients] concurrent clients, client [i] replaying
    [requests i].  Per-client failures are captured, not raised, so
    one refused connection cannot hide the other clients' results. *)

type result = {
  lines : string list;
  latencies : float array;
}

(* One client over one connection.  With [window] the client pipelines:
   at most [window] requests are in flight, each new send first drains
   a response once the window is full — necessary both for honest
   per-request latencies and to avoid the write-write deadlock of
   pushing an entire stream into finite socket buffers.  Without
   [window] the client writes everything, half-closes, and reads the
   full response stream — the exact shape of `vqc-serve < file`, used
   by the determinism tests.

   The service answers one response line per request line, in order
   (rejections and parse failures included), so request [i] pairs with
   response [i]. *)
let client ~port ?window ~requests () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      let requests = Array.of_list requests in
      let total = Array.length requests in
      let send_times = Array.make total 0.0 in
      let latencies = Array.make total 0.0 in
      let received = ref 0 in
      let lines = ref [] in
      let receive_one () =
        let line = input_line ic in
        latencies.(!received) <- Unix.gettimeofday () -. send_times.(!received);
        lines := line :: !lines;
        incr received
      in
      let send i =
        send_times.(i) <- Unix.gettimeofday ();
        output_string oc requests.(i);
        output_char oc '\n'
      in
      (match window with
      | Some window ->
        for i = 0 to total - 1 do
          if i - !received >= window then receive_one ();
          send i;
          flush oc
        done
      | None ->
        Array.iteri (fun i _ -> send i) requests;
        flush oc);
      (* half-close: the session sees EOF and flushes whatever is still
         batched, without losing the read direction *)
      Unix.shutdown fd Unix.SHUTDOWN_SEND;
      while !received < total do
        receive_one ()
      done;
      { lines = List.rev !lines; latencies })

let run ~port ~clients ?window ~requests () =
  let results = Array.make clients None in
  let threads =
    List.init clients (fun index ->
        Thread.create
          (fun () ->
            let outcome =
              match client ~port ?window ~requests:(requests index) () with
              | result -> Ok result
              | exception e -> Error (Printexc.to_string e)
            in
            results.(index) <- Some outcome)
          ())
  in
  List.iter Thread.join threads;
  Array.map
    (function
      | Some outcome -> outcome
      | None -> Error "client thread died without reporting")
    results

module Service = Vqc_service.Service
module Epoch = Vqc_service.Epoch
module Protocol = Vqc_service.Protocol

type config = {
  batch : int;
  max_line : int;
}

let default_config = { batch = 16; max_line = 1 lsl 20 }

type outcome =
  | Eof
  | Oversized of int
  | Disconnected

(* Like [input_line] but refuses lines beyond [max_line] bytes: an
   unbounded reader lets one client pin the session's memory with a
   single endless line.  Matches [input_line] at EOF — a final partial
   line (mid-line disconnect) is still delivered, and then fails JSON
   parsing like any other garbage. *)
type read =
  | Line of string
  | Too_long
  | End

let input_bounded_line ic ~max_line =
  let buffer = Buffer.create 256 in
  let rec go () =
    match input_char ic with
    | '\n' -> Line (Buffer.contents buffer)
    | c ->
      if Buffer.length buffer >= max_line then Too_long
      else begin
        Buffer.add_char buffer c;
        go ()
      end
    | exception End_of_file ->
      if Buffer.length buffer = 0 then End else Line (Buffer.contents buffer)
  in
  go ()

(* Responses must leave in input order, but rejections and parse errors
   are known immediately while accepted requests wait for the flush.
   Each input line claims a slot; flushing fills the queued slots from
   the service's responses (both are in admission order) and writes. *)
type slot =
  | Ready of Protocol.response
  | Queued

let run ?(config = default_config) service ic oc =
  let slots = ref [] in
  let queued = ref 0 in
  let emit response =
    output_string oc (Protocol.render response);
    output_char oc '\n'
  in
  let flush_slots () =
    let responses = ref (Service.flush service) in
    List.iter
      (fun slot ->
        match slot with
        | Ready response -> emit response
        | Queued -> begin
          match !responses with
          | response :: rest ->
            responses := rest;
            emit response
          | [] -> assert false
        end)
      (List.rev !slots);
    slots := [];
    queued := 0;
    flush oc
  in
  let ack ?migration op =
    emit
      (Protocol.Control_ack
         { op; epoch = Epoch.current (Service.epoch_manager service); migration });
    flush oc
  in
  let rec loop () =
    match input_bounded_line ic ~max_line:config.max_line with
    | End ->
      flush_slots ();
      Eof
    | Too_long ->
      (* the tail of the oversized line is unread, so the stream is no
         longer line-aligned: answer what was already accepted, report,
         and die — the caller closes the connection *)
      flush_slots ();
      emit
        (Protocol.Failed
           {
             id = None;
             error =
               Printf.sprintf
                 "input line exceeds the %d-byte limit; closing session"
                 config.max_line;
           });
      flush oc;
      Oversized config.max_line
    | Line line when String.trim line = "" -> loop ()
    | Line line ->
      (match Protocol.parse_line line with
      | Error message ->
        slots := Ready (Protocol.Failed { id = None; error = message }) :: !slots
      | Ok (Protocol.Control Protocol.Flush) ->
        flush_slots ();
        ack "flush"
      | Ok (Protocol.Control Protocol.Advance_epoch) ->
        (* plans queued against the old epoch compile against it *)
        flush_slots ();
        let _, migration = Service.advance_epoch service in
        ack ~migration "advance_epoch"
      | Ok (Protocol.Control (Protocol.Set_epoch epoch)) ->
        flush_slots ();
        (match Service.set_epoch service epoch with
        | migration -> ack ~migration "set_epoch"
        | exception Invalid_argument message ->
          emit (Protocol.Failed { id = None; error = message });
          flush oc)
      | Ok (Protocol.Compile request) -> begin
        match Service.submit service request with
        | Ok () ->
          slots := Queued :: !slots;
          incr queued;
          if !queued >= config.batch then flush_slots ()
        | Error reason ->
          slots :=
            Ready (Protocol.Rejected { id = request.Protocol.id; reason })
            :: !slots
      end);
      loop ()
  in
  (* a client that vanishes mid-write (broken pipe, reset) ends the
     session, not the server — SIGPIPE is ignored by Server.start, so
     the failure surfaces as a Sys_error here *)
  try loop () with Sys_error _ -> Disconnected

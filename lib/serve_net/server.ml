module Service = Vqc_service.Service
module Epoch = Vqc_service.Epoch
module Pool = Vqc_engine.Pool
module Metrics = Vqc_obs.Metrics
module Json = Vqc_obs.Json
module Diagnostic = Vqc_diag.Diagnostic

type config = {
  port : int;
  clients_max : int;
  session : Session.config;
  service : Service.config;
  store_capacity : int;
}

let default_config =
  {
    port = 0;
    clients_max = 64;
    session = Session.default_config;
    service = Service.default_config;
    store_capacity = 1024;
  }

(* Session domains are tracked so they can be reaped (joined) as they
   finish — the runtime caps live domains, so a long-lived server must
   recycle the slots of departed clients. *)
type registry = {
  reg_lock : Mutex.t;
  mutable live : (Domain.id * unit Domain.t) list;
      (** guarded by reg_lock *)
  mutable done_ids : Domain.id list;  (** guarded by reg_lock *)
}

type t = {
  listener : Unix.file_descr;
  server_port : int;
  server_config : config;
  epoch : Epoch.t;
  pool : Pool.t;
  store : Service.store;
  stopping : bool Atomic.t;
  active : int Atomic.t;
  registry : registry;
  mutable accept_domain : unit Domain.t option;
  connections_total : Metrics.counter;
  rejected_total : Metrics.counter;
  sessions_gauge : Metrics.gauge;
}

let port t = t.server_port

let locked_registry registry f =
  Mutex.lock registry.reg_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry.reg_lock) f

let register t domain =
  locked_registry t.registry (fun () ->
      t.registry.live <- (Domain.get_id domain, domain) :: t.registry.live)

let mark_done t id =
  locked_registry t.registry (fun () ->
      t.registry.done_ids <- id :: t.registry.done_ids)

(* Join every session domain that has announced completion.  Runs on
   the accept path (before each spawn) and in [stop]. *)
let reap t =
  let finished =
    locked_registry t.registry (fun () ->
        let finished, live =
          List.partition
            (fun (id, _) -> List.mem id t.registry.done_ids)
            t.registry.live
        in
        t.registry.live <- live;
        t.registry.done_ids <-
          List.filter
            (fun id -> not (List.mem_assoc id finished))
            t.registry.done_ids;
        finished)
  in
  List.iter (fun (_, domain) -> Domain.join domain) finished

(* A refused connection still gets one well-formed response line — the
   same "rejected" shape the admission queue uses, with the VQC131
   server-capacity code — before the socket closes, so clients can tell
   load-shedding from a network failure. *)
let reject_connection t fd =
  Metrics.incr t.rejected_total;
  let line =
    Json.to_string
      (Json.Obj
         [
           ("status", Json.String "rejected");
           ("reason", Json.String "server_full");
           ("code", Json.String Diagnostic.code_server_full);
           ("limit", Json.Int t.server_config.clients_max);
         ])
    ^ "\n"
  in
  (try ignore (Unix.write_substring fd line 0 (String.length line))
   with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let run_session t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  Fun.protect
    ~finally:(fun () ->
      (* close_out flushes and closes the shared descriptor; close_in
         then finds it already gone *)
      (try close_out oc with Sys_error _ -> ());
      (try close_in ic with Sys_error _ -> ());
      Atomic.decr t.active;
      Metrics.set t.sessions_gauge (float_of_int (Atomic.get t.active));
      mark_done t (Domain.self ()))
    (fun () ->
      (* each session is a full service of its own — private plan
         cache, private admission queue, private epoch cursor — over
         the server's shared pool and store *)
      let service =
        Service.create ~config:t.server_config.service ~pool:t.pool
          ~store:t.store
          (Epoch.fork t.epoch)
      in
      ignore (Session.run ~config:t.server_config.session service ic oc))

let spawn_session t fd =
  Metrics.incr t.connections_total;
  Atomic.incr t.active;
  Metrics.set t.sessions_gauge (float_of_int (Atomic.get t.active));
  match Domain.spawn (fun () -> run_session t fd) with
  | domain -> register t domain
  | exception Failure _ ->
    (* domain limit: shed the connection like a clients_max overflow *)
    Atomic.decr t.active;
    Metrics.set t.sessions_gauge (float_of_int (Atomic.get t.active));
    reject_connection t fd

let rec accept_loop t =
  match Unix.accept t.listener with
  | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) -> accept_loop t
  | exception Unix.Unix_error (_, _, _) ->
    () (* listener closed under us: stopping *)
  | fd, _ ->
    if Atomic.get t.stopping then begin
      try Unix.close fd with Unix.Unix_error _ -> ()
    end
    else begin
      reap t;
      if Atomic.get t.active >= t.server_config.clients_max then
        reject_connection t fd
      else spawn_session t fd;
      accept_loop t
    end

let start ?(config = default_config) epoch =
  if config.clients_max < 1 then
    invalid_arg
      (Printf.sprintf "Server.start: clients_max must be >= 1 (got %d)"
         config.clients_max);
  if config.port < 0 || config.port > 65535 then
    invalid_arg
      (Printf.sprintf "Server.start: port out of range (got %d)" config.port);
  (* a client that disappears mid-write must surface as an error on the
     session, not kill the process *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (match
     Unix.setsockopt listener Unix.SO_REUSEADDR true;
     Unix.bind listener
       (Unix.ADDR_INET (Unix.inet_addr_loopback, config.port));
     Unix.listen listener 128
   with
  | () -> ()
  | exception e ->
    (try Unix.close listener with Unix.Unix_error _ -> ());
    raise e);
  let server_port =
    match Unix.getsockname listener with
    | Unix.ADDR_INET (_, port) -> port
    | Unix.ADDR_UNIX _ -> assert false
  in
  let t =
    {
      listener;
      server_port;
      server_config = config;
      epoch;
      pool = Pool.create ~jobs:config.service.Service.jobs ();
      store =
        Service.shared_store ~shards:config.service.Service.cache_shards
          ~capacity:config.store_capacity ();
      stopping = Atomic.make false;
      active = Atomic.make 0;
      registry =
        { reg_lock = Mutex.create (); live = []; done_ids = [] };
      accept_domain = None;
      connections_total = Metrics.counter "serve.net.connections";
      rejected_total = Metrics.counter "serve.net.rejected";
      sessions_gauge = Metrics.gauge "serve.net.sessions";
    }
  in
  t.accept_domain <- Some (Domain.spawn (fun () -> accept_loop t));
  t

let wait t = Option.iter Domain.join t.accept_domain

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (* wake the accept loop with a throwaway connection so it observes
       the stopping flag *)
    (let wake = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
     (try
        Unix.connect wake
          (Unix.ADDR_INET (Unix.inet_addr_loopback, t.server_port))
      with Unix.Unix_error _ -> ());
     try Unix.close wake with Unix.Unix_error _ -> ());
    (match t.accept_domain with
    | Some domain ->
      Domain.join domain;
      t.accept_domain <- None
    | None -> ());
    (try Unix.close t.listener with Unix.Unix_error _ -> ());
    (* sessions end when their clients hang up; wait for the stragglers *)
    let live =
      locked_registry t.registry (fun () ->
          let live = t.registry.live in
          t.registry.live <- [];
          t.registry.done_ids <- [];
          live)
    in
    List.iter (fun (_, domain) -> Domain.join domain) live;
    Pool.shutdown t.pool
  end
